(* Benchmark harness regenerating every table and figure of the
   thesis's evaluation chapter (ch. 7).  See EXPERIMENTS.md for the
   mapping from thesis experiment to harness section and for the
   recorded results.

   Usage: main.exe [all|raw|queries|struct|fig44|fig45|fig46|tax|ablation|tables|schema|micro|recovery|storage|query|obs|repl|integrity|mvcc|serving]
                   [--out DIR]

   Sections that emit machine-readable trajectory records
   (BENCH_PR2.json .. BENCH_PR8.json) write them to the
   current directory by default; --out DIR redirects them so CI can
   validate fresh records without clobbering the committed ones. *)

open Pmodel
module O7 = Oo7bench.Oo7_schema
module Gen = Oo7bench.Oo7_gen
module RawDb = Oo7bench.Oo7_raw
module Ops = Oo7bench.Oo7_ops

let tmp_counter = ref 0

(* Where trajectory records (BENCH_PR*.json) land; see --out. *)
let out_dir = ref "."

let write_record name contents =
  let path = Filename.concat !out_dir name in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s\n" path

let tmp_path prefix =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s_%d_%d.db" prefix (Unix.getpid ()) !tmp_counter)

let cleanup path =
  if Sys.file_exists path then Sys.remove path;
  if Sys.file_exists (path ^ ".journal") then Sys.remove (path ^ ".journal")

(* ------------------------------------------------------------------ *)
(* Timing helpers                                                      *)
(* ------------------------------------------------------------------ *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (r, (t1 -. t0) *. 1000.)

(** Median wall-clock of [runs] executions, in ms. *)
let time_median ?(runs = 3) f =
  let samples = List.init runs (fun _ -> snd (time_once f)) in
  match List.sort compare samples with
  | [] -> nan
  | l -> List.nth l (List.length l / 2)

(* ------------------------------------------------------------------ *)
(* Bechamel integration                                                *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let run_bechamel (test : Test.t) : (string * float) list =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw_results = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw_results in
  Hashtbl.fold
    (fun name ols acc ->
      let est =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> Float.nan
      in
      (name, est /. 1e6 (* ns -> ms *)) :: acc)
    results []
  |> List.sort compare

let print_two_column_table ~title ~unit rows =
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%-12s %14s %14s %10s\n" "operation" ("prometheus " ^ unit) ("raw " ^ unit) "overhead";
  List.iter
    (fun (name, prom, raw) ->
      Printf.printf "%-12s %14.3f %14.3f %9.2fx\n" name prom raw
        (if raw > 0. then prom /. raw else nan))
    rows;
  flush stdout

(* ------------------------------------------------------------------ *)
(* Database construction                                               *)
(* ------------------------------------------------------------------ *)

type pair = {
  prom : Ops.Prom.ctx;
  raw : Ops.Raw.ctx;
  prom_path : string;
  raw_path : string;
  pdb : Database.t;
  rdb : RawDb.t;
}

let build_pair ?(params = O7.tiny) ?cache_pages () : pair =
  let prom_path = tmp_path "oo7_prom" in
  let raw_path = tmp_path "oo7_raw" in
  let pdb = Database.open_ ?cache_pages prom_path in
  O7.install pdb;
  let ph = Gen.generate pdb params in
  let rdb = RawDb.open_ ?cache_pages raw_path in
  let rh = RawDb.generate rdb params in
  {
    prom = { Ops.Prom.db = pdb; h = ph };
    raw = { Ops.Raw.t = rdb; h = rh };
    prom_path;
    raw_path;
    pdb;
    rdb;
  }

let destroy_pair pair =
  Database.close pair.pdb;
  RawDb.close pair.rdb;
  cleanup pair.prom_path;
  cleanup pair.raw_path

(* ------------------------------------------------------------------ *)
(* Section: raw performance (traversals T1-T6)                          *)
(* ------------------------------------------------------------------ *)

let bench_raw_performance () =
  let pair = build_pair ~params:O7.small () in
  let p = pair.prom and r = pair.raw in
  let t name fp fr =
    Test.make_grouped ~name
      [
        Test.make ~name:"prometheus" (Staged.stage (fun () -> ignore (fp p)));
        Test.make ~name:"raw" (Staged.stage (fun () -> ignore (fr r)));
      ]
  in
  let tests =
    Test.make_grouped ~name:"traversals"
      [
        t "T1" Ops.Prom.t1 Ops.Raw.t1;
        t "T2" Ops.Prom.t2 Ops.Raw.t2;
        t "T3" Ops.Prom.t3 Ops.Raw.t3;
        t "T5" Ops.Prom.t5 Ops.Raw.t5;
        t "T6" Ops.Prom.t6 Ops.Raw.t6;
      ]
  in
  let results = run_bechamel tests in
  let get name =
    try List.assoc name results with Not_found -> nan
  in
  print_two_column_table ~title:"Raw performance: traversals (thesis 7.2.1.2.1)" ~unit:"(ms)"
    (List.map
       (fun op ->
         ( op,
           get (Printf.sprintf "traversals/%s/prometheus" op),
           get (Printf.sprintf "traversals/%s/raw" op) ))
       [ "T1"; "T2"; "T3"; "T5"; "T6" ]);
  Printf.printf "(T1 visits %d atomic parts on both backends)\n"
    (Ops.Prom.t1 p);
  assert (Ops.Prom.t5 p = Ops.Raw.t5 r);
  destroy_pair pair

(* ------------------------------------------------------------------ *)
(* Section: queries (Q1-Q8)                                             *)
(* ------------------------------------------------------------------ *)

let bench_queries () =
  let pair = build_pair ~params:O7.small () in
  let p = pair.prom and r = pair.raw in
  (* Q1 uses the index layer on the Prometheus side (thesis 6.1.5.2) *)
  Database.create_index pair.pdb O7.atomic_part "id";
  let t name fp fr =
    Test.make_grouped ~name
      [
        Test.make ~name:"prometheus" (Staged.stage (fun () -> ignore (fp p)));
        Test.make ~name:"raw" (Staged.stage (fun () -> ignore (fr r)));
      ]
  in
  let tests =
    Test.make_grouped ~name:"queries"
      [
        t "Q1" (Ops.Prom.q1 ~n:10) (Ops.Raw.q1 ~n:10);
        t "Q2" (Ops.Prom.q_range ~pct:1) (Ops.Raw.q_range ~pct:1);
        t "Q3" (Ops.Prom.q_range ~pct:10) (Ops.Raw.q_range ~pct:10);
        t "Q4" Ops.Prom.q4 Ops.Raw.q4;
        t "Q7" Ops.Prom.q7 Ops.Raw.q7;
        t "Q8" (Ops.Prom.q8 ~len:100) (Ops.Raw.q8 ~len:100);
      ]
  in
  let results = run_bechamel tests in
  let get name = try List.assoc name results with Not_found -> nan in
  print_two_column_table ~title:"Queries (thesis 7.2.1.2.2)" ~unit:"(ms)"
    (List.map
       (fun op ->
         (op, get (Printf.sprintf "queries/%s/prometheus" op), get (Printf.sprintf "queries/%s/raw" op)))
       [ "Q1"; "Q2"; "Q3"; "Q4"; "Q7"; "Q8" ]);
  (* POOL end-to-end query for reference *)
  let pool_ms = time_median (fun () -> ignore (Ops.Prom.q7_pool p)) in
  Printf.printf "(Q7 through the full POOL pipeline: %.3f ms)\n" pool_ms;
  (* both backends scan the same number of atomic parts *)
  assert (Ops.Prom.q7 p = Ops.Raw.q7 r);
  destroy_pair pair

(* ------------------------------------------------------------------ *)
(* Section: structural modifications (S1/S2)                            *)
(* ------------------------------------------------------------------ *)

let bench_struct () =
  let pair = build_pair ~params:O7.small () in
  let p = pair.prom and r = pair.raw in
  let k = 5 and parts_per_comp = 10 in
  (* measured as insert-then-delete pairs so state stays stable *)
  let tests =
    Test.make_grouped ~name:"structural"
      [
        Test.make_grouped ~name:"S1S2"
          [
            Test.make ~name:"prometheus"
              (Staged.stage (fun () ->
                   let cs = Ops.Prom.s1 p ~k ~parts_per_comp in
                   Ops.Prom.s2 p cs));
            Test.make ~name:"raw"
              (Staged.stage (fun () ->
                   let cs = Ops.Raw.s1 r ~k ~parts_per_comp in
                   Ops.Raw.s2 r cs));
          ];
      ]
  in
  let results = run_bechamel tests in
  let get name = try List.assoc name results with Not_found -> nan in
  print_two_column_table
    ~title:
      (Printf.sprintf "Structural modifications: S1 insert + S2 delete of %d composites (thesis 7.2.1.2.3)" k)
    ~unit:"(ms)"
    [
      ( "S1+S2",
        get "structural/S1S2/prometheus",
        get "structural/S1S2/raw" );
    ];
  (* separate one-shot S1 and S2 timings *)
  let s1p, s1pt = time_once (fun () -> Ops.Prom.s1 p ~k ~parts_per_comp) in
  let _, s2pt = time_once (fun () -> Ops.Prom.s2 p s1p) in
  let s1r, s1rt = time_once (fun () -> Ops.Raw.s1 r ~k ~parts_per_comp) in
  let _, s2rt = time_once (fun () -> Ops.Raw.s2 r s1r) in
  Printf.printf "one-shot: S1 prom %.2f ms / raw %.2f ms; S2 prom %.2f ms / raw %.2f ms\n" s1pt
    s1rt s2pt s2rt;
  destroy_pair pair

(* ------------------------------------------------------------------ *)
(* Figures 44-46: cost vs database size                                 *)
(* ------------------------------------------------------------------ *)

(* The sweeps run with a constrained buffer pool (256 pages), so that
   larger databases genuinely exercise the storage layer rather than
   sitting wholly in cache — the regime the thesis's curves measure. *)
let sweep_cache_pages = 256

let size_sweep ~title ~op_name fprom fraw =
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%-12s %16s %16s %12s %12s\n" "composites" "prometheus (ms)" "raw (ms)"
    "prom/size" "raw/size";
  List.iter
    (fun n ->
      let pair = build_pair ~params:(O7.with_composites O7.tiny n) ~cache_pages:sweep_cache_pages () in
      let pm = time_median ~runs:3 (fun () -> ignore (fprom pair.prom)) in
      let rm = time_median ~runs:3 (fun () -> ignore (fraw pair.raw)) in
      Printf.printf "%-12d %16.3f %16.3f %12.5f %12.5f\n" n pm rm (pm /. float_of_int n)
        (rm /. float_of_int n);
      flush stdout;
      destroy_pair pair)
    [ 25; 50; 100; 200; 400 ];
  Printf.printf "(%s: per-composite cost column flags constant vs non-constant growth)\n" op_name

let bench_fig44 () =
  size_sweep ~title:"Figure 44: increase in cost of T5 with database size"
    ~op_name:"T5" Ops.Prom.t5 Ops.Raw.t5

let bench_fig45 () =
  size_sweep ~title:"Figure 45: increase in cost of S1 with database size" ~op_name:"S1"
    (fun p ->
      let cs = Ops.Prom.s1 p ~k:20 ~parts_per_comp:10 in
      Ops.Prom.s2 p cs (* restore so the size axis stays honest *))
    (fun r ->
      let cs = Ops.Raw.s1 r ~k:20 ~parts_per_comp:10 in
      Ops.Raw.s2 r cs)

let bench_fig46 () =
  Printf.printf "\n== Figure 46: increase in cost of S2 with database size ==\n";
  Printf.printf "%-12s %16s %16s\n" "composites" "prometheus (ms)" "raw (ms)";
  List.iter
    (fun n ->
      let pair = build_pair ~params:(O7.with_composites O7.tiny n) ~cache_pages:sweep_cache_pages () in
      (* time delete alone: inserts happen outside the timer; median
         of 3 insert/delete rounds *)
      let pm =
        let samples =
          List.init 3 (fun _ ->
              let cs = Ops.Prom.s1 pair.prom ~k:20 ~parts_per_comp:10 in
              snd (time_once (fun () -> Ops.Prom.s2 pair.prom cs)))
        in
        List.nth (List.sort compare samples) 1
      in
      let rm =
        let samples =
          List.init 3 (fun _ ->
              let cs = Ops.Raw.s1 pair.raw ~k:20 ~parts_per_comp:10 in
              snd (time_once (fun () -> Ops.Raw.s2 pair.raw cs)))
        in
        List.nth (List.sort compare samples) 1
      in
      Printf.printf "%-12d %16.3f %16.3f\n" n pm rm;
      flush stdout;
      destroy_pair pair)
    [ 25; 50; 100; 200; 400 ]

(* ------------------------------------------------------------------ *)
(* Section: taxonomic workloads (thesis 7.1.3.1)                        *)
(* ------------------------------------------------------------------ *)

let bench_tax () =
  let path = tmp_path "tax" in
  let db = Database.open_ path in
  Taxonomy.Tax_schema.install db;
  let params =
    { Taxonomy.Flora_gen.families = 3; genera_per_family = 6; species_per_genus = 8; specimens_per_species = 3; seed = 11 }
  in
  let flora = Taxonomy.Flora_gen.generate db ~params () in
  let ctx2 = Taxonomy.Flora_gen.perturb db flora () in
  let root = List.hd flora.Taxonomy.Flora_gen.root_taxa in
  let ctx = flora.Taxonomy.Flora_gen.ctx in
  Printf.printf "\n== Taxonomic workloads (thesis 7.1) ==\n";
  Printf.printf "flora: %d species taxa, %d specimens, 2 overlapping classifications\n"
    (List.length flora.Taxonomy.Flora_gen.species_taxa)
    (List.length flora.Taxonomy.Flora_gen.specimens);
  let report name ms = Printf.printf "%-38s %10.3f ms\n" name ms in
  report "recursive circumscription (family)"
    (time_median (fun () ->
         ignore (Taxonomy.Classify.specimens_of db ~ctx root)));
  report "name derivation (whole family)"
    (time_median ~runs:3 (fun () ->
         ignore (Taxonomy.Derivation.derive db ~ctx ~root ())));
  report "specimen-based synonym detection"
    (time_median ~runs:3 (fun () -> ignore (Taxonomy.Synonymy.find db ~ctx_a:ctx ~ctx_b:ctx2)));
  report "name-based synonym detection"
    (time_median ~runs:3 (fun () ->
         ignore (Taxonomy.Synonymy.find_by_name db ~ctx_a:ctx ~ctx_b:ctx2)));
  report "classification comparison (Compare)"
    (time_median ~runs:3 (fun () ->
         ignore
           (Pgraph.Compare.compare_contexts db ~rel:Taxonomy.Tax_schema.circumscribes
              ~ctx_a:ctx ~ctx_b:ctx2 ())));
  let env = [ ("root", Value.VRef root); ("ctx", Value.VRef ctx) ] in
  report "POOL: names at rank Species"
    (time_median (fun () ->
         ignore
           (Pool_lang.Pool.query db "count(select n from Name n where n.rank = 'Species')")));
  report "POOL: taxa below root in context"
    (time_median (fun () ->
         ignore
           (Pool_lang.Pool.query ~env db
              "count(select t from Taxon t where t in descendants(root, 'Circumscribes') in context ctx)")));
  Database.close db;
  cleanup path

(* ------------------------------------------------------------------ *)
(* Section: ablations (DESIGN.md design decisions)                      *)
(* ------------------------------------------------------------------ *)

let bench_ablation () =
  Printf.printf "\n== Ablations ==\n";
  (* 1. index layer on/off for Q1-style lookups *)
  let pair = build_pair ~params:O7.small () in
  let p = pair.prom in
  let without = time_median (fun () -> ignore (Ops.Prom.q1 p ~n:10)) in
  Database.create_index pair.pdb O7.atomic_part "id";
  let with_ = time_median (fun () -> ignore (Ops.Prom.q1 p ~n:10)) in
  Printf.printf "index layer:    Q1 without index %10.3f ms, with index %10.3f ms (%.1fx)\n"
    without with_ (without /. with_);
  destroy_pair pair;
  (* 2. rules engine on/off for S1 *)
  let pair = build_pair ~params:O7.small () in
  let engine = Prules.Engine.create pair.pdb in
  (* install a representative rule load *)
  Prules.Engine.add_rule engine
    (Prules.Rule.invariant "positive_build_date" ~class_name:O7.atomic_part (fun _ o ->
         match Pmodel.Obj.get o "buildDate" with Value.VInt d -> d >= 0 | _ -> true));
  let with_rules =
    time_median ~runs:3 (fun () ->
        let cs = Ops.Prom.s1 pair.prom ~k:5 ~parts_per_comp:10 in
        Ops.Prom.s2 pair.prom cs)
  in
  Prules.Engine.set_enabled engine false;
  let without_rules =
    time_median ~runs:3 (fun () ->
        let cs = Ops.Prom.s1 pair.prom ~k:5 ~parts_per_comp:10 in
        Ops.Prom.s2 pair.prom cs)
  in
  Printf.printf "rules layer:    S1+S2 with rules %9.3f ms, without %9.3f ms (%.2fx)\n" with_rules
    without_rules
    (with_rules /. without_rules);
  destroy_pair pair;
  (* 3. transaction batching (journal) for bulk writes *)
  let path = tmp_path "batch" in
  let store = Pstore.Store.open_ path in
  let n = 500 in
  let batched =
    time_median ~runs:3 (fun () ->
        Pstore.Store.with_tx store (fun () ->
            for i = 1 to n do
              Pstore.Store.put store ~oid:(Pstore.Store.fresh_oid store) (string_of_int i)
            done))
  in
  let per_op =
    time_median ~runs:3 (fun () ->
        for i = 1 to n do
          Pstore.Store.with_tx store (fun () ->
              Pstore.Store.put store ~oid:(Pstore.Store.fresh_oid store) (string_of_int i))
        done)
  in
  Printf.printf
    "journal:        %d puts, one tx %9.3f ms vs one tx per put %9.3f ms (%.1fx)\n" n batched
    per_op (per_op /. batched);
  Pstore.Store.close store;
  cleanup path

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks: storage primitives and the POOL pipeline           *)
(* ------------------------------------------------------------------ *)

let bench_micro () =
  let spath = tmp_path "micro_store" in
  let store = Pstore.Store.open_ spath in
  let payload = String.make 128 'p' in
  let preloaded = Array.init 1000 (fun _ -> Pstore.Store.fresh_oid store) in
  Array.iter (fun oid -> Pstore.Store.put store ~oid payload) preloaded;
  let ppath = tmp_path "micro_pool" in
  let db = Database.open_ ppath in
  ignore (Database.define_class db "Item" [ Meta.attr "v" Value.TInt ]);
  ignore (Database.define_class db "Scratch" [ Meta.attr "v" Value.TInt ]);
  for i = 1 to 500 do
    ignore (Database.create db "Item" [ ("v", Value.VInt i) ])
  done;
  let q = "select i.v from Item i where i.v > 250 order by i.v" in
  let cursor = ref 0 in
  let tests =
    Test.make_grouped ~name:"micro"
      [
        Test.make ~name:"store_get"
          (Staged.stage (fun () ->
               cursor := (!cursor + 1) mod 1000;
               ignore (Pstore.Store.get store ~oid:preloaded.(!cursor))));
        Test.make ~name:"store_put"
          (Staged.stage (fun () ->
               cursor := (!cursor + 1) mod 1000;
               Pstore.Store.put store ~oid:preloaded.(!cursor) payload));
        Test.make ~name:"obj_create"
          (Staged.stage (fun () -> ignore (Database.create db "Scratch" [ ("v", Value.VInt 0) ])));
        Test.make ~name:"pool_parse" (Staged.stage (fun () -> ignore (Pool_lang.Parser.parse q)));
        Test.make ~name:"pool_query" (Staged.stage (fun () -> ignore (Pool_lang.Pool.query db q)));
      ]
  in
  let results = run_bechamel tests in
  Printf.printf "\n== Micro-benchmarks ==\n";
  List.iter (fun (name, ms) -> Printf.printf "%-24s %12.6f ms\n" name ms) results;
  Database.close db;
  Pstore.Store.close store;
  cleanup spath;
  cleanup ppath

(* ------------------------------------------------------------------ *)
(* Tables 4 and 5: comparative matrices                                 *)
(* ------------------------------------------------------------------ *)

(* Table 5's Prometheus column is *verified*: each feature row runs a
   live POOL probe against a scratch database. *)
let bench_tables () =
  Printf.printf "\n== Table 4: database models vs classification requirements (thesis ch. 4) ==\n";
  let rows =
    (* requirement, relational, object-oriented, graph-based, extended-OO, prometheus *)
    [
      ("tree/graph structure", "poor", "partial", "yes", "yes", "yes");
      ("directed graphs", "no", "partial", "yes", "most", "yes");
      ("multiple classifications", "no", "views only", "no", "no", "yes");
      ("traceability", "no", "no", "no", "attrs only", "yes");
      ("composite objects", "no", "partial", "no", "partial", "yes");
      ("population-based classif.", "yes", "no", "yes", "yes", "yes");
      ("roles", "views only", "limited", "no", "ADAM only", "yes");
      ("rules/constraints", "yes", "yes", "some", "some", "yes");
      ("recursive behaviour", "limited", "rare", "yes", "some", "yes");
      ("integration w/ existing", "yes", "partial", "graph only", "yes", "yes");
      ("generic classifications", "generic only", "is-a/is-of", "untyped", "yes", "yes");
      ("orthogonal classification", "no", "no", "no", "partial", "yes");
    ]
  in
  Printf.printf "%-28s %-14s %-12s %-12s %-12s %-12s\n" "requirement" "relational" "object-or."
    "graph" "extended-OO" "prometheus";
  List.iter
    (fun (r, a, b, c, d, e) ->
      Printf.printf "%-28s %-14s %-12s %-12s %-12s %-12s\n" r a b c d e)
    rows;
  (* live verification of the Prometheus column's key claims *)
  let path = tmp_path "probe" in
  let db = Database.open_ path in
  ignore (Database.define_class db "N" [ Meta.attr "v" Value.TInt ]);
  ignore (Database.define_rel db "E" ~origin:"N" ~destination:"N" ~attrs:[ Meta.attr "why" Value.TString ]);
  let a = Database.create db "N" [ ("v", Value.VInt 1) ] in
  let b = Database.create db "N" [ ("v", Value.VInt 2) ] in
  let c1 = Database.create_context db "c1" in
  let c2 = Database.create_context db "c2" in
  ignore (Database.link db "E" ~context:c1 ~origin:a ~destination:b ~attrs:[ ("why", Value.VString "traceable") ]);
  ignore (Database.link db "E" ~context:c2 ~origin:b ~destination:a);
  Printf.printf "\n== Table 5: query language features (thesis ch. 5) — POOL column live-verified ==\n";
  let env = [ ("a", Value.VRef a); ("ctx1", Value.VRef c1) ] in
  let probe name sql oql graphql query expect =
    let ok =
      try Value.equal_value (Pool_lang.Pool.query ~env db query) expect with _ -> false
    in
    Printf.printf "%-30s %-10s %-10s %-10s POOL: %s\n" name sql oql graphql
      (if ok then "yes (verified)" else "PROBE FAILED")
  in
  probe "relationships as objects" "no" "no" "edges" "count(select e from E e)" (Value.VInt 2);
  probe "recursion / closure" "limited" "no" "yes" "count(closure(a, 'E', null))" (Value.VInt 2);
  probe "graph extraction" "no" "no" "some" "count(nodes(graph(a, 'E', null)))" (Value.VInt 2);
  probe "classification context" "no" "no" "no"
    "count(select n from N n where n in descendants(a, 'E') in context ctx1)" (Value.VInt 1);
  probe "selective downcast" "n/a" "cast only" "no" "count((N) (select x from N x))" (Value.VInt 2);
  probe "aggregates" "yes" "yes" "some" "sum(select n.v from N n)" (Value.VInt 3);
  probe "edge attributes" "n/a" "n/a" "some" "first(select e.why from E e where e.why != null)"
    (Value.VString "traceable");
  Database.close db;
  cleanup path

let print_schema () =
  Printf.printf "\n== Benchmark schemas (thesis figs. 41-43, 47-48) ==\n";
  let path = tmp_path "schema" in
  let db = Database.open_ path in
  O7.install db;
  let schema = Database.schema db in
  Printf.printf "-- classes --\n";
  List.iter
    (fun (c : Meta.class_def) ->
      if not (String.length c.Meta.class_name > 1 && c.Meta.class_name.[0] = '_') then
        Printf.printf "  class %-16s supers=[%s] attrs=[%s]%s\n" c.Meta.class_name
          (String.concat "," c.Meta.supers)
          (String.concat ","
             (List.map (fun (a : Meta.attr_def) -> a.Meta.attr_name) c.Meta.attrs))
          (if c.Meta.abstract then " (abstract)" else ""))
    (List.sort compare (Meta.classes schema));
  Printf.printf "-- relationship classes --\n";
  List.iter
    (fun (r : Meta.rel_def) ->
      Printf.printf "  rel %-16s %s -> %s [%s%s%s%s]\n" r.Meta.rel_name r.Meta.origin
        r.Meta.destination
        (match r.Meta.kind with Meta.Aggregation -> "aggregation" | Meta.Association -> "association")
        (if r.Meta.exclusive then ", exclusive" else "")
        (if not r.Meta.sharable then ", non-sharable" else "")
        (if r.Meta.lifetime_dep then ", lifetime-dep" else ""))
    (List.sort compare (Meta.rels schema));
  Database.close db;
  cleanup path

(* ------------------------------------------------------------------ *)
(* Recovery: reopen after a crash                                      *)
(* ------------------------------------------------------------------ *)

(* Journal replay cost, isolated at the pager level: populate N pages,
   open a transaction that touches all of them (N before-image frames),
   simulate a process crash, then time the reopen that replays the
   journal.  See EXPERIMENTS.md "Crash-torture sweep". *)
let bench_recovery () =
  let module P = Pstore.Pager in
  Printf.printf "\n== recovery: reopen after crash (journal replay) ==\n";
  Printf.printf "%-8s %12s %12s\n" "frames" "journal KiB" "reopen ms";
  List.iter
    (fun n ->
      let samples =
        List.init 3 (fun _ ->
            let path = tmp_path "recovery" in
            let p = P.open_file path in
            let pages = List.init n (fun _ -> P.allocate p) in
            List.iter
              (fun no -> P.with_write p no (fun b -> Bytes.fill b 0 P.page_size 'a'))
              pages;
            P.begin_tx p;
            List.iter
              (fun no -> P.with_write p no (fun b -> Bytes.fill b 0 P.page_size 'b'))
              pages;
            (* force the buffered before-image frames to disk so the
               crash leaves a full n-frame journal to replay *)
            P.flush_all p;
            P.crash p;
            let _, ms = time_once (fun () -> P.close (P.open_file path)) in
            cleanup path;
            ms)
      in
      let med = match List.sort compare samples with l -> List.nth l 1 in
      Printf.printf "%-8d %12.1f %12.3f\n" n
        (float_of_int (n * P.journal_frame_size) /. 1024.)
        med)
    [ 16; 128; 1024 ]

(* ------------------------------------------------------------------ *)
(* Section: storage hot paths (pager/journal overhaul)                  *)
(* ------------------------------------------------------------------ *)

(* Measures the pager's hot paths with the optimisations on
   ([Pager.default_config]) against the faithful pre-overhaul paths
   ([Pager.legacy_config]: per-frame three-copy journal appends,
   unconditional checkpoint flush/fsync, hash-order per-page writeback,
   full-cache sort eviction), in three environments:

   - inmem-faultvfs: the in-memory fault VFS with no injection — zero
     device cost, isolating the software path the overhaul targets;
   - tmpfs-devshm: real syscalls against tmpfs (fsync is nearly free);
   - disk-tmp: the real temp filesystem, where fsync dominates and the
     win is bounded by the 4->3 fsync reduction per commit.

   Results land in BENCH_PR2.json (machine-readable trajectory). *)
let bench_storage () =
  let module P = Pstore.Pager in
  let module S = Pstore.Store in
  let module F = Pstore.Fault in
  Printf.printf "\n== storage hot paths (legacy vs optimized pager) ==\n";
  (* many-small-transactions commit throughput: one 64-byte object per
     commit, the workload named by the acceptance criterion *)
  let commit_workload config ~vfs ~path =
    let s = S.open_ ~config ~vfs path in
    let payload = String.make 64 'c' in
    let n = 200 in
    let (), ms =
      time_once (fun () ->
          for _ = 1 to n do
            S.with_tx s (fun () -> S.put s ~oid:(S.fresh_oid s) payload)
          done)
    in
    S.close s;
    float_of_int n /. (ms /. 1000.)
  in
  (* page-churn scan: rewrite 512 pages through a 64-page cache, so
     every round is dominated by eviction choice + dirty writeback *)
  let churn_workload config ~vfs ~path =
    let p = P.open_file ~cache_pages:64 ~config ~vfs path in
    let pages = List.init 512 (fun _ -> P.allocate p) in
    P.flush_all p;
    let rounds = 20 in
    let (), ms =
      time_once (fun () ->
          for r = 1 to rounds do
            List.iter (fun no -> P.with_write p no (fun b -> Bytes.set_uint16_le b 0 r)) pages
          done;
          P.flush_all p)
    in
    P.close p;
    float_of_int (rounds * List.length pages) /. (ms /. 1000.)
  in
  (* journal append rate: transactions that touch 256 pages each, so
     the cost is dominated by before-image frame encoding + landing *)
  let journal_workload config ~vfs ~path =
    let p = P.open_file ~cache_pages:1024 ~config ~vfs path in
    let pages = List.init 256 (fun _ -> P.allocate p) in
    P.flush_all p;
    let rounds = 10 in
    let (), ms =
      time_once (fun () ->
          for r = 1 to rounds do
            P.begin_tx p;
            List.iter (fun no -> P.with_write p no (fun b -> Bytes.set_uint16_le b 0 r)) pages;
            P.commit p
          done)
    in
    let st = P.stats p in
    P.close p;
    float_of_int st.P.s_journal_bytes /. 1048576. /. (ms /. 1000.)
  in
  let in_memory f =
    let fs = F.create ~seed:42 () in
    F.set_short_transfers fs false;
    f ~vfs:(F.vfs fs) ~path:"bench_pr2.db"
  in
  let in_dir dir f =
    let path =
      incr tmp_counter;
      Filename.concat dir (Printf.sprintf "bench_pr2_%d_%d.db" (Unix.getpid ()) !tmp_counter)
    in
    Fun.protect ~finally:(fun () -> cleanup path) (fun () -> f ~vfs:Pstore.Vfs.unix ~path)
  in
  let envs =
    [ ("inmem-faultvfs", "in-memory VFS, no device cost (software path only)", in_memory) ]
    @ (if Sys.file_exists "/dev/shm" && Sys.is_directory "/dev/shm" then
         [ ("tmpfs-devshm", "tmpfs: real syscalls, near-free fsync", in_dir "/dev/shm") ]
       else [])
    @ [ ("disk-tmp", "real filesystem: fsync-bound", in_dir (Filename.get_temp_dir_name ())) ]
  in
  let measure workload =
    (* median of 3 per config; legacy first so cold-start noise, if
       any, penalises the baseline's opponent not the baseline *)
    let med config =
      let samples = List.init 3 (fun _ -> workload config) in
      match List.sort compare samples with l -> List.nth l 1
    in
    let legacy = med P.legacy_config in
    let optimized = med P.default_config in
    (legacy, optimized)
  in
  let results =
    List.map
      (fun (ename, enote, env) ->
        let commit = measure (fun config -> env (commit_workload config)) in
        let churn = measure (fun config -> env (churn_workload config)) in
        let journal = measure (fun config -> env (journal_workload config)) in
        Printf.printf "%s (%s)\n" ename enote;
        let line name unit (legacy, optimized) =
          Printf.printf "  %-24s legacy %12.0f %s   optimized %12.0f %s   (%.2fx)\n" name legacy
            unit optimized unit (optimized /. legacy)
        in
        line "commit throughput" "tx/s" commit;
        line "page-churn scan" "pages/s" churn;
        line "journal append" "MiB/s" journal;
        (ename, enote, commit, churn, journal))
      envs
  in
  let best_commit_speedup =
    List.fold_left
      (fun acc (_, _, (l, o), _, _) -> Float.max acc (o /. l))
      0. results
  in
  Printf.printf "best commit-throughput speedup: %.2fx\n" best_commit_speedup;
  (* machine-readable trajectory *)
  let buf = Buffer.create 2048 in
  let fl x = Printf.sprintf "%.1f" x in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"storage_hot_paths\",\n";
  Buffer.add_string buf "  \"pr\": 2,\n";
  Buffer.add_string buf (Printf.sprintf "  \"page_size\": %d,\n" P.page_size);
  Buffer.add_string buf
    (Printf.sprintf "  \"journal_buffer_frames\": %d,\n" P.journal_buffer_frames);
  Buffer.add_string buf (Printf.sprintf "  \"max_extent_pages\": %d,\n" P.max_extent_pages);
  Buffer.add_string buf "  \"environments\": [\n";
  List.iteri
    (fun i (ename, enote, commit, churn, journal) ->
      let metric name unit (legacy, optimized) last =
        Printf.sprintf
          "      \"%s\": { \"unit\": \"%s\", \"legacy\": %s, \"optimized\": %s, \"speedup\": \
           %s }%s\n"
          name unit (fl legacy) (fl optimized)
          (Printf.sprintf "%.2f" (optimized /. legacy))
          (if last then "" else ",")
      in
      Buffer.add_string buf "    {\n";
      Buffer.add_string buf (Printf.sprintf "      \"name\": \"%s\",\n" ename);
      Buffer.add_string buf (Printf.sprintf "      \"note\": \"%s\",\n" enote);
      Buffer.add_string buf (metric "commit_tx_per_s" "tx/s" commit false);
      Buffer.add_string buf (metric "churn_pages_per_s" "pages/s" churn false);
      Buffer.add_string buf (metric "journal_mib_per_s" "MiB/s" journal true);
      Buffer.add_string buf
        (Printf.sprintf "    }%s\n" (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"acceptance\": {\n";
  Buffer.add_string buf
    "    \"criterion\": \"commit throughput >= 2x on many-small-transactions vs pre-PR \
     pager\",\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"best_commit_speedup\": %.2f,\n" best_commit_speedup);
  Buffer.add_string buf
    (Printf.sprintf "    \"pass\": %b\n" (best_commit_speedup >= 2.0));
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  write_record "BENCH_PR2.json" (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Section: query engine (compiled plans vs legacy interpreter)        *)
(* ------------------------------------------------------------------ *)

(* Measures the plan-then-run POOL engine ([Pool.default_config]:
   index range/prefix pushdown, hash joins, plan cache, CSR adjacency
   snapshots) against the faithful pre-overhaul tree-walking
   interpreter ([Pool.legacy_config]), on four workloads:

   - deep-descent: graph traversal over a flora classification — CSR
     int-array BFS vs per-node mirror lookups;
   - a POOL query wrapping that same traversal (end-to-end pipeline);
   - join-heavy: a self-join that the planner turns into a hash join,
     vs the legacy O(n*m) nested loop;
   - range and LIKE-prefix predicates that push down into the ordered
     secondary index vs full extent scans.

   Every workload first asserts that both engines return identical
   values, then times each.  Results land in BENCH_PR3.json. *)
let bench_query () =
  let module T = Pgraph.Traverse in
  Printf.printf "\n== query engine (legacy interpreter vs compiled plans) ==\n";
  let path = tmp_path "query" in
  let db = Database.open_ path in
  Taxonomy.Tax_schema.install db;
  let params =
    { Taxonomy.Flora_gen.families = 4; genera_per_family = 8; species_per_genus = 10; specimens_per_species = 3; seed = 7 }
  in
  let flora = Taxonomy.Flora_gen.generate db ~params () in
  let root = List.hd flora.Taxonomy.Flora_gen.root_taxa in
  let ctx = flora.Taxonomy.Flora_gen.ctx in
  let rel = Taxonomy.Tax_schema.circumscribes in
  (* synthetic tables for the join and predicate workloads *)
  ignore
    (Database.define_class db "Item"
       [ Meta.attr "v" Value.TInt; Meta.attr "label" Value.TString ]);
  ignore
    (Database.define_class db "J" [ Meta.attr "k" Value.TInt; Meta.attr "tag" Value.TString ]);
  for i = 1 to 2000 do
    ignore
      (Database.create db "Item"
         [ ("v", Value.VInt i); ("label", Value.VString (Printf.sprintf "item%04d" i)) ])
  done;
  for i = 1 to 400 do
    ignore
      (Database.create db "J"
         [ ("k", Value.VInt (i mod 50)); ("tag", Value.VString (Printf.sprintf "t%d" i)) ])
  done;
  Database.create_index db "Item" "v";
  Database.create_index db "Item" "label";
  let env = [ ("root", Value.VRef root); ("ctx", Value.VRef ctx) ] in
  let measure ~legacy ~optimized =
    (* median of 5; legacy first, so warm-up noise penalises the
       optimized side, and the first optimized run pays the CSR build
       and the plan-cache miss (amortised in the median, exactly as in
       production use) *)
    let leg = time_median ~runs:5 legacy in
    let opt = time_median ~runs:5 optimized in
    (leg, opt)
  in
  let pool_workload q =
    (* both engines must return bit-identical values *)
    let o = Pool_lang.Pool.query ~env db q in
    let l = Pool_lang.Pool.query ~env ~config:Pool_lang.Pool.legacy_config db q in
    assert (Value.compare_value o l = 0);
    measure
      ~legacy:(fun () -> ignore (Pool_lang.Pool.query ~env ~config:Pool_lang.Pool.legacy_config db q))
      ~optimized:(fun () -> ignore (Pool_lang.Pool.query ~env db q))
  in
  let results =
    [
      ( "deep_descent",
        "Traverse.descendants over the flora classification",
        (let o = T.descendants db ~context:ctx ~csr:true ~rel root in
         let l = T.descendants db ~context:ctx ~csr:false ~rel root in
         assert (Database.OidSet.equal o l);
         measure
           ~legacy:(fun () -> ignore (T.descendants db ~context:ctx ~csr:false ~rel root))
           ~optimized:(fun () -> ignore (T.descendants db ~context:ctx ~csr:true ~rel root))) );
      ( "pool_descent",
        "the same traversal through the full POOL pipeline",
        pool_workload
          "count(select t from Taxon t where t in descendants(root, 'Circumscribes') in context ctx)"
      );
      ( "join_heavy",
        "self-join on an unindexed key: hash join vs nested loop",
        pool_workload "count(select a.tag from J a, J b where a.k = b.k and a.tag != b.tag)" );
      ( "range_predicate",
        "range predicate over an indexed attribute",
        pool_workload "count(select i.v from Item i where i.v >= 100 and i.v < 160)" );
      ( "like_prefix",
        "LIKE with a literal prefix over an indexed attribute",
        pool_workload "count(select i.label from Item i where i.label like 'item19%')" );
    ]
  in
  List.iter
    (fun (name, _, (l, o)) ->
      Printf.printf "  %-16s legacy %10.3f ms   optimized %10.3f ms   (%.2fx)\n" name l o
        (l /. o))
    results;
  let q = Pool_lang.Pool.stats db in
  Printf.printf
    "engine counters: %d probes, %d range scans, %d hash joins, %d extent scans, %d/%d plan \
     cache hits/misses, %d CSR rebuilds\n"
    q.Pool_lang.Eval.index_probes q.Pool_lang.Eval.range_scans q.Pool_lang.Eval.hash_joins
    q.Pool_lang.Eval.extent_scans q.Pool_lang.Eval.plan_cache_hits
    q.Pool_lang.Eval.plan_cache_misses q.Pool_lang.Eval.adjacency_rebuilds;
  (* acceptance: >= 2x median speedup on at least two of deep-descent,
     join-heavy, range-predicate *)
  let speedup name =
    let _, _, (l, o) = List.find (fun (n, _, _) -> n = name) results in
    l /. o
  in
  let gates = [ "deep_descent"; "join_heavy"; "range_predicate" ] in
  let passed = List.length (List.filter (fun n -> speedup n >= 2.0) gates) in
  Printf.printf "acceptance: %d/3 gated workloads at >= 2x (need 2)\n" passed;
  (* machine-readable trajectory *)
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"query_engine\",\n";
  Buffer.add_string buf "  \"pr\": 3,\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"dataset\": { \"taxa\": %d, \"items\": 2000, \"join_rows\": 400 },\n"
       (Database.OidSet.cardinal (T.descendants db ~context:ctx ~rel root) + 1));
  Buffer.add_string buf "  \"workloads\": [\n";
  List.iteri
    (fun i (name, note, (l, o)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"note\": \"%s\", \"unit\": \"ms\", \"legacy\": %.3f, \
            \"optimized\": %.3f, \"speedup\": %.2f }%s\n"
           name note l o (l /. o)
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"acceptance\": {\n";
  Buffer.add_string buf
    "    \"criterion\": \">= 2x median speedup over legacy on >= 2 of deep-descent, \
     join-heavy, range-predicate\",\n";
  Buffer.add_string buf (Printf.sprintf "    \"workloads_at_2x\": %d,\n" passed);
  Buffer.add_string buf (Printf.sprintf "    \"pass\": %b\n" (passed >= 2));
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  write_record "BENCH_PR3.json" (Buffer.contents buf);
  Database.close db;
  cleanup path

(* ------------------------------------------------------------------ *)
(* Section: observability overhead (metrics on vs off)                 *)
(* ------------------------------------------------------------------ *)

(* The PR4 acceptance gate: re-run the PR2/PR3 gated workloads — the
   many-small-transactions commit loop, the CSR deep descent, the hash
   join and the index range predicate — with the metrics registry
   enabled and disabled, and record the relative overhead.  Every
   counter increment and histogram observation in the hot paths is
   live in the "on" configuration; "off" exercises the single-branch
   guard.  Tracing stays off in both: it is disabled by default and
   its overhead budget is "free when off", which the obs unit tests
   cover.  Results land in BENCH_PR4.json; the gate is max overhead
   < 5%. *)
let bench_obs () =
  let module S = Pstore.Store in
  let module F = Pstore.Fault in
  let module T = Pgraph.Traverse in
  Printf.printf "\n== observability overhead (metrics on vs off) ==\n";
  (* PR2 gated workload: one 64-byte object per commit on the
     in-memory fault VFS — pure software path, where per-commit
     instrumentation is proportionally largest *)
  let commit_workload () =
    let fs = F.create ~seed:42 () in
    F.set_short_transfers fs false;
    let s = S.open_ ~vfs:(F.vfs fs) "bench_pr4.db" in
    let payload = String.make 64 'c' in
    let (), ms =
      time_once (fun () ->
          for _ = 1 to 400 do
            S.with_tx s (fun () -> S.put s ~oid:(S.fresh_oid s) payload)
          done)
    in
    S.close s;
    ms
  in
  (* PR3 gated workloads, against one shared database *)
  let path = tmp_path "obs" in
  let db = Database.open_ path in
  Taxonomy.Tax_schema.install db;
  let params =
    { Taxonomy.Flora_gen.families = 4; genera_per_family = 8; species_per_genus = 10; specimens_per_species = 3; seed = 7 }
  in
  let flora = Taxonomy.Flora_gen.generate db ~params () in
  let root = List.hd flora.Taxonomy.Flora_gen.root_taxa in
  let ctx = flora.Taxonomy.Flora_gen.ctx in
  let rel = Taxonomy.Tax_schema.circumscribes in
  ignore
    (Database.define_class db "Item"
       [ Meta.attr "v" Value.TInt; Meta.attr "label" Value.TString ]);
  ignore
    (Database.define_class db "J" [ Meta.attr "k" Value.TInt; Meta.attr "tag" Value.TString ]);
  for i = 1 to 2000 do
    ignore
      (Database.create db "Item"
         [ ("v", Value.VInt i); ("label", Value.VString (Printf.sprintf "item%04d" i)) ])
  done;
  for i = 1 to 400 do
    ignore
      (Database.create db "J"
         [ ("k", Value.VInt (i mod 50)); ("tag", Value.VString (Printf.sprintf "t%d" i)) ])
  done;
  Database.create_index db "Item" "v";
  let env = [ ("root", Value.VRef root); ("ctx", Value.VRef ctx) ] in
  let pool_loop q reps () =
    let (), ms =
      time_once (fun () ->
          for _ = 1 to reps do
            ignore (Pool_lang.Pool.query ~env db q)
          done)
    in
    ms
  in
  let descent_loop () =
    let (), ms =
      time_once (fun () ->
          for _ = 1 to 200 do
            ignore (T.descendants db ~context:ctx ~csr:true ~rel root)
          done)
    in
    ms
  in
  let workloads =
    [
      ("pr2_commit_tx", "400 one-object commits, in-memory fault VFS", commit_workload);
      ("pr3_deep_descent", "CSR descent over the flora, x200", descent_loop);
      ( "pr3_join_heavy",
        "hash self-join through POOL, x25",
        pool_loop "count(select a.tag from J a, J b where a.k = b.k and a.tag != b.tag)" 25 );
      ( "pr3_range_predicate",
        "indexed range predicate through POOL, x200",
        pool_loop "count(select i.v from Item i where i.v >= 100 and i.v < 160)" 200 );
    ]
  in
  let saved = !Pobs.Metrics.enabled in
  let results =
    Fun.protect
      ~finally:(fun () -> Pobs.Metrics.enabled := saved)
      (fun () ->
        List.map
          (fun (name, note, w) ->
            ignore (w ()) (* warm-up: CSR snapshots, plan cache, page cache *);
            (* interleave off/on samples so allocator or frequency
               drift during the run cancels instead of biasing one
               configuration *)
            let pairs =
              List.init 7 (fun _ ->
                  Pobs.Metrics.enabled := false;
                  let off = w () in
                  Pobs.Metrics.enabled := true;
                  let on = w () in
                  (off, on))
            in
            (* min, not median: the fastest pass is the code's actual
               cost; anything above it is scheduler/GC noise, which a
               median can still let bias one arm *)
            let fmin l = List.fold_left Float.min infinity l in
            let off = fmin (List.map fst pairs) and on = fmin (List.map snd pairs) in
            let pct = (on -. off) /. off *. 100. in
            Printf.printf "  %-20s off %9.3f ms   on %9.3f ms   overhead %+6.2f%%\n" name off
              on pct;
            (name, note, off, on, pct))
          workloads)
  in
  Database.close db;
  cleanup path;
  let max_pct = List.fold_left (fun a (_, _, _, _, p) -> Float.max a p) neg_infinity results in
  let pass = max_pct < 5.0 in
  Printf.printf "max overhead with metrics on: %.2f%% (gate: < 5%%)\n" max_pct;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"observability_overhead\",\n";
  Buffer.add_string buf "  \"pr\": 4,\n";
  Buffer.add_string buf "  \"workloads\": [\n";
  List.iteri
    (fun i (name, note, off, on, pct) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"note\": \"%s\", \"unit\": \"ms\", \"metrics_off\": \
            %.3f, \"metrics_on\": %.3f, \"overhead_pct\": %.2f }%s\n"
           name note off on pct
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"acceptance\": {\n";
  Buffer.add_string buf
    "    \"criterion\": \"< 5% overhead with metrics enabled on the PR2/PR3 gated \
     workloads\",\n";
  Buffer.add_string buf (Printf.sprintf "    \"max_overhead_pct\": %.2f,\n" max_pct);
  Buffer.add_string buf (Printf.sprintf "    \"pass\": %b\n" pass);
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  write_record "BENCH_PR4.json" (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Section: replication (PR5 tentpole)                                 *)
(* ------------------------------------------------------------------ *)

(* Three numbers, two software-only and one end-to-end:

   - ship: encode a captured redo stream into wire frames (the
     primary's per-conn cost once the delta is in the backlog)
   - apply: replay snapshot + deltas through a fresh replica pager on
     the in-memory fault VFS (the replica's software ceiling)
   - lag: a live loopback primary/replica pair; sample
     (primary LSN - applied LSN) after every commit, then wait for
     convergence and demand byte-identical files.

   Results land in BENCH_PR5.json; the gate is convergence to LSN
   equality with identical bytes plus nonzero throughputs. *)
let bench_repl () =
  let module S = Pstore.Store in
  let module F = Pstore.Fault in
  let module W = Prepl.Wire in
  let module Feed = Prepl.Feed in
  let module R = Prepl.Replica in
  Printf.printf "\n== replication: ship / apply throughput, steady-state lag ==\n";
  let median l = List.nth (List.sort compare l) (List.length l / 2) in
  let mib = 1024. *. 1024. in
  (* --- capture a redo stream on the in-memory fault VFS ------------- *)
  let fs = F.create ~seed:42 () in
  F.set_short_transfers fs false;
  let s = S.open_ ~vfs:(F.vfs fs) "bench_repl.db" in
  let feed = Feed.create s in
  S.with_tx s (fun () -> S.put s ~oid:1 "snapshot floor");
  let snap_lsn, snap_data = Feed.snapshot feed in
  let commits = 300 in
  for i = 1 to commits do
    (* mix of small objects and page-crossing blobs *)
    let payload = String.make (64 + (i mod 7 * 900)) 'r' in
    S.with_tx s (fun () -> S.put s ~oid:(S.fresh_oid s) payload)
  done;
  let stream_id = Feed.stream_id feed in
  let deltas =
    List.map (fun r -> (r.Feed.r_lsn, r.Feed.r_pages)) (Feed.deltas_after feed ~after:0)
  in
  Feed.detach feed;
  S.close s;
  let delta_bytes =
    List.fold_left
      (fun a (_, pages) ->
        List.fold_left (fun a (_, data) -> a + String.length data) a pages)
      0 deltas
  in
  (* --- ship: wire-encode the whole stream --------------------------- *)
  let encode_all () =
    List.fold_left
      (fun a (lsn, pages) -> a + String.length (W.encode (W.Delta { lsn; pages })))
      0 deltas
  in
  let wire_bytes = encode_all () in
  let reps = 10 in
  let ship_ms =
    median
      (List.init 5 (fun _ ->
           snd (time_once (fun () -> for _ = 1 to reps do ignore (encode_all ()) done))))
  in
  let ship_mib_s = float_of_int (wire_bytes * reps) /. mib /. (ship_ms /. 1000.) in
  Printf.printf "  ship   %7.1f MiB/s  (%d records, %.2f MiB on the wire)\n" ship_mib_s
    (List.length deltas)
    (float_of_int wire_bytes /. mib);
  (* --- apply: replay through a fresh replica pager ------------------- *)
  let replay () =
    let rfs = F.create ~seed:7 () in
    F.set_short_transfers rfs false;
    let ap = R.Apply.create ~vfs:(F.vfs rfs) "replica.db" in
    let (), ms =
      time_once (fun () ->
          R.Apply.install_snapshot ap ~stream_id ~lsn:snap_lsn ~data:snap_data;
          List.iter (fun (lsn, pages) -> ignore (R.Apply.apply_delta ap ~lsn ~pages)) deltas)
    in
    ms
  in
  let apply_ms = median (List.init 5 (fun _ -> replay ())) in
  let apply_payload = delta_bytes + String.length snap_data in
  let apply_mib_s = float_of_int apply_payload /. mib /. (apply_ms /. 1000.) in
  Printf.printf "  apply  %7.1f MiB/s  (%.2f MiB snapshot+deltas)\n" apply_mib_s
    (float_of_int apply_payload /. mib);
  (* --- lag: live loopback pair --------------------------------------- *)
  let ppath = tmp_path "repl_primary" and rpath = tmp_path "repl_replica" in
  let scrub path =
    cleanup path;
    List.iter
      (fun suffix ->
        let p = path ^ suffix in
        if Sys.file_exists p then Sys.remove p)
      [ ".replid"; ".replid.tmp"; ".snap" ]
  in
  scrub ppath;
  scrub rpath;
  let s = S.open_ ppath in
  let feed = Feed.create s in
  S.with_tx s (fun () -> S.put s ~oid:1 "bootstrap floor");
  let srv = Feed.serve feed ~port:0 in
  let sess = R.start ~host:"127.0.0.1" ~port:srv.Feed.port rpath in
  let read_disk path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let lag_commits = 150 in
  let result =
    Fun.protect
      ~finally:(fun () ->
        R.stop sess;
        (try Feed.stop_server srv with _ -> ());
        Feed.detach feed;
        S.close s;
        scrub ppath;
        scrub rpath)
      (fun () ->
        let caught_up () = R.Apply.last_lsn sess.R.apply = S.lsn s in
        let deadline = Unix.gettimeofday () +. 30. in
        while (not (caught_up ())) && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.005
        done;
        let samples = ref [] in
        for i = 1 to lag_commits do
          S.with_tx s (fun () -> S.put s ~oid:(S.fresh_oid s) (String.make (200 + (i mod 5 * 800)) 'l'));
          samples := (S.lsn s - R.Apply.last_lsn sess.R.apply) :: !samples
        done;
        let (), catch_up_ms =
          time_once (fun () ->
              let deadline = Unix.gettimeofday () +. 30. in
              while (not (caught_up ())) && Unix.gettimeofday () < deadline do
                Unix.sleepf 0.002
              done)
        in
        let lags = !samples in
        let n = float_of_int (List.length lags) in
        let mean_lag = float_of_int (List.fold_left ( + ) 0 lags) /. n in
        let max_lag = List.fold_left max 0 lags in
        let lsn_equal = caught_up () in
        let identical = lsn_equal && read_disk ppath = read_disk rpath in
        Printf.printf
          "  lag    mean %5.2f LSNs  max %3d LSNs over %d commits; converged=%b \
           identical=%b (%.1f ms)\n"
          mean_lag max_lag lag_commits lsn_equal identical catch_up_ms;
        (mean_lag, max_lag, catch_up_ms, lsn_equal, identical))
  in
  let mean_lag, max_lag, catch_up_ms, lsn_equal, identical = result in
  let pass = lsn_equal && identical && ship_mib_s > 0. && apply_mib_s > 0. in
  Printf.printf "replication gate: %s\n" (if pass then "PASS" else "FAIL");
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"replication\",\n";
  Buffer.add_string buf "  \"pr\": 5,\n";
  Buffer.add_string buf "  \"workloads\": [\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    { \"name\": \"ship_encode\", \"note\": \"wire-encode %d captured delta \
        records\", \"unit\": \"MiB/s\", \"mib_per_s\": %.1f, \"wire_mib\": %.2f },\n"
       (List.length deltas) ship_mib_s
       (float_of_int wire_bytes /. mib));
  Buffer.add_string buf
    (Printf.sprintf
       "    { \"name\": \"apply_replay\", \"note\": \"snapshot + delta replay through a \
        fresh replica pager, fault VFS\", \"unit\": \"MiB/s\", \"mib_per_s\": %.1f, \
        \"payload_mib\": %.2f },\n"
       apply_mib_s
       (float_of_int apply_payload /. mib));
  Buffer.add_string buf
    (Printf.sprintf
       "    { \"name\": \"steady_state_lag\", \"note\": \"per-commit (primary LSN - \
        applied LSN) over a live loopback pair\", \"unit\": \"lsns\", \"commits\": %d, \
        \"mean_lag_lsns\": %.2f, \"max_lag_lsns\": %d, \"catch_up_ms\": %.1f }\n"
       lag_commits mean_lag max_lag catch_up_ms);
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"acceptance\": {\n";
  Buffer.add_string buf
    "    \"criterion\": \"replica converges to the primary LSN with byte-identical files; \
     ship and apply throughputs nonzero\",\n";
  Buffer.add_string buf (Printf.sprintf "    \"final_lsn_equal\": %b,\n" lsn_equal);
  Buffer.add_string buf (Printf.sprintf "    \"files_identical\": %b,\n" identical);
  Buffer.add_string buf (Printf.sprintf "    \"pass\": %b\n" pass);
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  write_record "BENCH_PR5.json" (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Section: page integrity (PR6)                                       *)
(* ------------------------------------------------------------------ *)

(* The PR6 acceptance gate: per-page CRC verification must cost < 5%
   on steady-state verified reads vs. the checksums-off config, on the
   in-memory fault VFS (so the comparison measures the CRC, not the
   disk).  Cold full-file scans, scrub throughput and detection are
   reported alongside, ungated.  Results land in BENCH_PR6.json. *)
let bench_integrity () =
  let module S = Pstore.Store in
  let module P = Pstore.Pager in
  let module F = Pstore.Fault in
  Printf.printf "\n== integrity: verified-read overhead, scrub throughput ==\n";
  let median l = List.nth (List.sort compare l) (List.length l / 2) in
  let mib = 1024. *. 1024. in
  let objects = 600 in
  let checksums_off = { P.default_config with P.checksums = false } in
  (* one populated store per config, same workload, same VFS seed *)
  let build config =
    let fs = F.create ~seed:6 () in
    F.set_short_transfers fs false;
    let vfs = F.vfs fs in
    let s = S.open_ ~vfs ~config "bench_integrity.db" in
    for i = 1 to objects do
      S.with_tx s (fun () ->
          S.put s ~oid:i (String.make (100 + (i * 631 mod 3200)) 'i'))
    done;
    S.close s;
    (fs, vfs)
  in
  (* steady-state verified reads: verification runs only on cache
     misses, so after one warm-up sweep fills (and verifies) the cache
     the measured sweeps see the as-deployed read path.  The cold_scan
     row below reports the unamortised miss-path cost. *)
  let read_pass vfs config =
    let s = S.open_ ~vfs ~config "bench_integrity.db" in
    let sweep () =
      for i = 1 to objects do
        ignore (S.get s ~oid:i)
      done
    in
    sweep ();
    let (), ms =
      time_once (fun () ->
          for _ = 1 to 20 do
            sweep ()
          done)
    in
    S.close s;
    ms
  in
  (* interleave the two configs so CPU-frequency / scheduler drift hits
     both equally, and take the min: the fastest achievable pass is the
     robust basis for an overhead comparison *)
  let _fs_on, vfs_on = build P.default_config in
  let _fs_off, vfs_off = build checksums_off in
  let on_samples = ref [] and off_samples = ref [] in
  for _ = 1 to 9 do
    on_samples := read_pass vfs_on P.default_config :: !on_samples;
    off_samples := read_pass vfs_off checksums_off :: !off_samples
  done;
  let on_ms = List.fold_left Float.min infinity !on_samples in
  let off_ms = List.fold_left Float.min infinity !off_samples in
  let overhead_pct = ((on_ms /. off_ms) -. 1.) *. 100. in
  Printf.printf "  verified reads  on %7.2f ms   off %7.2f ms   overhead %+.2f%%\n"
    on_ms off_ms overhead_pct;
  (* cold scan: every page of the file read once through a fresh pager *)
  let cold_scan config =
    let _fs, vfs = build config in
    let scan () =
      let p = P.open_file ~vfs ~config "bench_integrity.db" in
      let n = P.page_count p in
      for no = 0 to n - 1 do
        ignore (P.read p no)
      done;
      P.close p;
      n
    in
    let pages = scan () in
    let ms = median (List.init 7 (fun _ -> snd (time_once (fun () -> ignore (scan ()))))) in
    (pages, ms)
  in
  let pages, cold_on_ms = cold_scan P.default_config in
  let _, cold_off_ms = cold_scan checksums_off in
  let page_mib n = float_of_int (n * P.page_size) /. mib in
  Printf.printf "  cold scan       on %7.2f ms   off %7.2f ms   (%d pages)\n"
    cold_on_ms cold_off_ms pages;
  (* scrub: the background verifier's full-file throughput *)
  let _fs, vfs = build P.default_config in
  let p = P.open_file ~vfs "bench_integrity.db" in
  let scrub_ms =
    median
      (List.init 7 (fun _ ->
           snd (time_once (fun () -> ignore (P.scrub p)))))
  in
  let scrub_report = P.scrub p in
  P.close p;
  let scrub_mib_s = page_mib scrub_report.P.scrub_scanned /. (scrub_ms /. 1000.) in
  Printf.printf "  scrub           %7.1f MiB/s  (%d pages, %.2f ms/pass)\n" scrub_mib_s
    scrub_report.P.scrub_scanned scrub_ms;
  (* detection sanity: one flipped bit must surface as Page_corrupt *)
  let detected =
    let fs, vfs = build P.default_config in
    F.flip_bit fs "bench_integrity.db" ~off:((2 * P.page_size) + 99) ~bit:5;
    let p = P.open_file ~vfs "bench_integrity.db" in
    Fun.protect
      ~finally:(fun () -> P.close p)
      (fun () ->
        match P.read p 2 with
        | _ -> false
        | exception P.Page_corrupt _ -> true)
  in
  let pass = detected && overhead_pct < 5. in
  Printf.printf "  detection: %b\nintegrity gate: %s (overhead %.2f%% < 5%%)\n" detected
    (if pass then "PASS" else "FAIL")
    overhead_pct;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"integrity\",\n";
  Buffer.add_string buf "  \"pr\": 6,\n";
  Buffer.add_string buf "  \"workloads\": [\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    { \"name\": \"verified_read\", \"note\": \"steady-state gets after warm-up, \
        %d objects, in-memory VFS; verification runs at cache-miss time\", \"unit\": \
        \"ms\", \"checksums_on_ms\": %.2f, \"checksums_off_ms\": %.2f, \
        \"overhead_pct\": %.2f },\n"
       objects on_ms off_ms overhead_pct);
  Buffer.add_string buf
    (Printf.sprintf
       "    { \"name\": \"cold_scan\", \"note\": \"every page read once through a fresh \
        pager\", \"unit\": \"ms\", \"pages\": %d, \"checksums_on_ms\": %.2f, \
        \"checksums_off_ms\": %.2f },\n"
       pages cold_on_ms cold_off_ms);
  Buffer.add_string buf
    (Printf.sprintf
       "    { \"name\": \"scrub\", \"note\": \"full-file checksum pass, no cache \
        pollution\", \"unit\": \"MiB/s\", \"mib_per_s\": %.1f, \"pages\": %d, \
        \"pass_ms\": %.2f },\n"
       scrub_mib_s scrub_report.P.scrub_scanned scrub_ms);
  Buffer.add_string buf
    (Printf.sprintf
       "    { \"name\": \"detection\", \"note\": \"one flipped bit raises typed \
        Page_corrupt\", \"detected\": %b }\n"
       detected);
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"acceptance\": {\n";
  Buffer.add_string buf
    "    \"criterion\": \"verified-read overhead < 5% vs checksums-off on the in-memory \
     VFS; bit-rot detected as Page_corrupt\",\n";
  Buffer.add_string buf (Printf.sprintf "    \"overhead_pct\": %.2f,\n" overhead_pct);
  Buffer.add_string buf (Printf.sprintf "    \"detection\": %b,\n" detected);
  Buffer.add_string buf (Printf.sprintf "    \"pass\": %b\n" pass);
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  write_record "BENCH_PR6.json" (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Section: MVCC reader scaling and group commit (PR7)                 *)
(* ------------------------------------------------------------------ *)

(* Two workloads.  (1) Reader scaling: aggregate POOL query throughput
   over frozen snapshot views from 1/2/4 OCaml domains — each domain
   owns a clone of the same frozen LSN, so reads are lock-free against
   the version chains.  The acceptance gate asks for >= 2x aggregate
   throughput at 4 domains vs 1 when the host actually has >= 4 cores;
   on smaller hosts true parallel speedup is physically unavailable, so
   the gate degrades to "no contention collapse" (4-domain aggregate
   >= 0.5x of 1 domain) and the core count is recorded.  (2) Group
   commit: commits/s of 4 concurrent submitters batched through
   [Store.Group] vs the same number of serial fsync'd transactions —
   reported, ungated.  Results land in BENCH_PR7.json. *)
let bench_mvcc () =
  let module S = Pstore.Store in
  let module F = Pstore.Fault in
  Printf.printf "\n== mvcc: snapshot reader scaling, group commit ==\n";
  (* --- reader scaling over snapshot views --------------------------- *)
  let fs = F.create ~seed:7 () in
  F.set_short_transfers fs false;
  let vfs = F.vfs fs in
  let db = Database.open_ ~vfs "bench_mvcc.db" in
  ignore
    (Database.define_class db "Rec"
       [ Meta.attr "n" Value.TInt; Meta.attr "pad" Value.TString ]);
  Database.create_index db "Rec" "n";
  let n_objects = 2000 in
  Database.with_tx db (fun () ->
      for i = 0 to n_objects - 1 do
        ignore
          (Database.create db "Rec"
             [ ("n", Value.VInt (i mod 500)); ("pad", Value.VString (String.make 32 'r')) ])
      done);
  let view = Database.snapshot db in
  let thresholds = [| 60; 110; 170; 230; 290; 350; 410; 470 |] in
  let queries_per_domain = 120 in
  let query_at v t =
    ignore
      (Pool_lang.Pool.scalar v
         (Printf.sprintf "count(select r from Rec r where r.n < %d)" t))
  in
  let run_queries v =
    (* a larger per-domain minor heap keeps the stop-the-world minor-GC
       barrier (whose cost multiplies with domain count) off the
       measured path; applied identically at every domain count *)
    Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 };
    for i = 1 to queries_per_domain do
      query_at v thresholds.(i mod Array.length thresholds)
    done
  in
  let aggregate n_domains =
    (* each domain gets its own clone of the frozen LSN: independent
       plan caches, shared immutable version chains *)
    let clones = List.init n_domains (fun _ -> Database.snapshot_clone view) in
    (* warm each clone's plan cache outside the timed region *)
    List.iter (fun v -> Array.iter (query_at v) thresholds) clones;
    let (), ms =
      time_once (fun () ->
          let ds = List.map (fun v -> Domain.spawn (fun () -> run_queries v)) clones in
          List.iter Domain.join ds)
    in
    List.iter Database.close clones;
    float_of_int (n_domains * queries_per_domain) /. (ms /. 1000.)
  in
  let best f = List.fold_left Float.max neg_infinity (List.init 3 (fun _ -> f ())) in
  let thr1 = best (fun () -> aggregate 1) in
  let thr2 = best (fun () -> aggregate 2) in
  let thr4 = best (fun () -> aggregate 4) in
  let speedup = thr4 /. thr1 in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "  readers   1 domain %8.0f q/s   2 domains %8.0f q/s   4 domains %8.0f q/s\n" thr1
    thr2 thr4;
  Printf.printf "  aggregate speedup 4 vs 1: %.2fx  (%d core%s available)\n" speedup cores
    (if cores = 1 then "" else "s");
  Database.close view;
  Database.close db;
  let scaling_pass = if cores >= 4 then speedup >= 2.0 else speedup >= 0.5 in
  (* --- group commit vs serial fsync'd transactions ------------------ *)
  let path = tmp_path "mvcc_gc" in
  let st = S.open_ path in
  let payload = String.make 120 'g' in
  let total = 240 in
  let serial_ms =
    snd
      (time_once (fun () ->
           for i = 1 to total do
             S.with_tx st (fun () -> S.put st ~oid:i payload)
           done))
  in
  let g = S.Group.start ~max_batch:64 st in
  let n_workers = 4 in
  let per = total / n_workers in
  let group_ms =
    snd
      (time_once (fun () ->
           let ds =
             List.init n_workers (fun w ->
                 Domain.spawn (fun () ->
                     for j = 1 to per do
                       ignore
                         (S.Group.submit g (fun st ->
                              S.put st ~oid:(10_000 + (w * per) + j) payload))
                     done))
           in
           List.iter Domain.join ds))
  in
  let gstats = S.Group.group_stats g in
  S.Group.stop g;
  S.close st;
  cleanup path;
  let serial_cps = float_of_int total /. (serial_ms /. 1000.) in
  let group_cps = float_of_int total /. (group_ms /. 1000.) in
  Printf.printf
    "  group commit  serial %8.0f commits/s   grouped %8.0f commits/s  (%d commits in %d \
     batches)\n"
    serial_cps group_cps gstats.S.Group.commits gstats.S.Group.batches;
  Printf.printf "mvcc gate: %s (speedup %.2fx, %d cores)\n"
    (if scaling_pass then "PASS" else "FAIL")
    speedup cores;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"mvcc\",\n";
  Buffer.add_string buf "  \"pr\": 7,\n";
  Buffer.add_string buf "  \"workloads\": [\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    { \"name\": \"reader_scaling\", \"note\": \"POOL count queries over frozen \
        snapshot views, %d objects, %d queries/domain, one clone per domain, in-memory \
        VFS\", \"unit\": \"queries/s\", \"domains_1\": %.0f, \"domains_2\": %.0f, \
        \"domains_4\": %.0f, \"speedup_4_vs_1\": %.2f, \"cores\": %d },\n"
       n_objects queries_per_domain thr1 thr2 thr4 speedup cores);
  Buffer.add_string buf
    (Printf.sprintf
       "    { \"name\": \"group_commit\", \"note\": \"%d puts: serial fsync'd \
        transactions vs 4 concurrent submitters batched through Store.Group \
        (max_batch 64)\", \"unit\": \"commits/s\", \"serial_commits_per_s\": %.0f, \
        \"group_commits_per_s\": %.0f, \"batches\": %d, \"commits\": %d }\n"
       total serial_cps group_cps gstats.S.Group.batches gstats.S.Group.commits);
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"acceptance\": {\n";
  Buffer.add_string buf
    "    \"criterion\": \"aggregate snapshot-read throughput at 4 domains >= 2x 1 domain \
     when >= 4 cores are available; on smaller hosts the gate degrades to >= 0.5x (no \
     contention collapse). group commit is reported ungated.\",\n";
  Buffer.add_string buf (Printf.sprintf "    \"speedup_4_vs_1\": %.2f,\n" speedup);
  Buffer.add_string buf (Printf.sprintf "    \"cores\": %d,\n" cores);
  Buffer.add_string buf (Printf.sprintf "    \"pass\": %b\n" scaling_pass);
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  write_record "BENCH_PR7.json" (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Section: snapshot serving — reader pool QPS + read-your-writes (PR8) *)
(* ------------------------------------------------------------------ *)

(* The serving path introduced for `pdb serve --readers`: a
   {!Pserver.Reader_pool} of N reader domains, each holding a clone of
   the current snapshot generation, fed one job per request by client
   threads (exactly the server's handler-thread shape).

   (1) Serving scaling: aggregate POOL query throughput through the
   pool at 1/2/4 reader domains, driven by 8 submitter threads, vs the
   single-handle baseline the server had before the pool (every query
   sequential on the live handle).  The gate asks for >= 2x aggregate
   QPS at 4 readers vs single-handle when the host has >= 4 cores; on
   smaller hosts it degrades to "no collapse" (>= 0.5x) and records
   the core count.

   (2) Write-heavy mix: concurrent writers push creates through
   [Database.Writer] (group commit) while tokened reads present each
   write's LSN back as min_lsn — read-your-writes must hold for every
   single write (violations are gated at zero).  Pool read p99 under
   the mix is reported alongside the single-handle mix p99, ungated. *)
let bench_serving () =
  let module F = Pstore.Fault in
  let module RP = Pserver.Reader_pool in
  Printf.printf "\n== serving: reader-pool scaling, read-your-writes under writes ==\n";
  let fs = F.create ~seed:8 () in
  F.set_short_transfers fs false;
  let vfs = F.vfs fs in
  let db = Database.open_ ~vfs "bench_serving.db" in
  ignore
    (Database.define_class db "Rec"
       [ Meta.attr "n" Value.TInt; Meta.attr "pad" Value.TString ]);
  let n_objects = 8000 in
  Database.with_tx db (fun () ->
      for i = 0 to n_objects - 1 do
        ignore
          (Database.create db "Rec"
             [ ("n", Value.VInt (i mod 1000)); ("pad", Value.VString (String.make 32 's')) ])
      done);
  (* No index on [n]: every count is an extent scan with a predicate,
     i.e. a query heavy enough to stand in for a real request — the
     pool pays one enqueue/condvar round-trip per request, so
     per-request work must dominate for scaling to be visible, exactly
     as it does on the HTTP path. *)
  let thresholds = [| 120; 220; 370; 430; 540; 660; 780; 910 |] in
  let query_at v t =
    ignore
      (Pool_lang.Pool.scalar v
         (Printf.sprintf "count(select r from Rec r where r.n < %d)" t))
  in
  let total_queries = 480 in
  let submitters = 8 in
  let best f = List.fold_left Float.max neg_infinity (List.init 3 (fun _ -> f ())) in
  (* --- single-handle baseline: the pre-pool server loop ------------- *)
  Array.iter (query_at db) thresholds;
  let qps_single =
    best (fun () ->
        let (), ms =
          time_once (fun () ->
              for i = 1 to total_queries do
                query_at db thresholds.(i mod Array.length thresholds)
              done)
        in
        float_of_int total_queries /. (ms /. 1000.))
  in
  (* --- pooled serving at 1/2/4 reader domains ----------------------- *)
  let pooled n_readers =
    let pool = RP.create ~max_lag_ms:50. ~readers:n_readers (RP.primary_source db) in
    (* warm every reader's plan cache (jobs land on whichever reader is
       free, so warm with several rounds) *)
    for _ = 1 to 3 * n_readers do
      Array.iter (fun t -> ignore (RP.read pool (fun v -> query_at v t))) thresholds
    done;
    let per = total_queries / submitters in
    let (), ms =
      time_once (fun () ->
          let ths =
            List.init submitters (fun s ->
                Thread.create
                  (fun () ->
                    for j = 1 to per do
                      ignore
                        (RP.read pool (fun v ->
                             query_at v thresholds.((s + j) mod Array.length thresholds)))
                    done)
                  ())
          in
          List.iter Thread.join ths)
    in
    RP.stop pool;
    float_of_int total_queries /. (ms /. 1000.)
  in
  let qps1 = best (fun () -> pooled 1) in
  let qps2 = best (fun () -> pooled 2) in
  let qps4 = best (fun () -> pooled 4) in
  let speedup = qps4 /. qps_single in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "  serving   single-handle %8.0f q/s   pool x1 %8.0f   x2 %8.0f   x4 %8.0f q/s\n"
    qps_single qps1 qps2 qps4;
  Printf.printf "  aggregate speedup pool x4 vs single-handle: %.2fx  (%d core%s)\n" speedup
    cores
    (if cores = 1 then "" else "s");
  let scaling_pass = if cores >= 4 then speedup >= 2.0 else speedup >= 0.5 in
  (* --- write-heavy mix: read-your-writes + p99 ---------------------- *)
  let pool = RP.create ~max_lag_ms:25. ~readers:4 (RP.primary_source db) in
  let w = Database.Writer.start db in
  let violations = Atomic.make 0 in
  let n_writers = 4 and writes_each = 30 in
  let n_readers_mix = 4 and reads_each = 120 in
  let pool_lat = Array.make (n_readers_mix * reads_each) 0 in
  let marker_count v m =
    match
      Pool_lang.Pool.scalar v
        (Printf.sprintf "count(select r from Rec r where r.n = %d)" m)
    with
    | Value.VInt c -> c
    | _ -> 0
  in
  let (), mix_ms =
    time_once (fun () ->
        let writer_ths =
          List.init n_writers (fun wi ->
              Thread.create
                (fun () ->
                  for j = 1 to writes_each do
                    let marker = 100_000 + (wi * writes_each) + j in
                    let lsn, _oid =
                      Database.Writer.submit w (fun db ->
                          Database.create db "Rec"
                            [ ("n", Value.VInt marker); ("pad", Value.VString "w") ])
                    in
                    (* read-your-writes: the token must make this write
                       visible, on the pool or via the primary *)
                    let seen =
                      match RP.read pool ~min_lsn:lsn (fun v -> marker_count v marker) with
                      | RP.Served (c, _) -> c >= 1
                      | RP.Behind _ -> (
                          match Database.Writer.read w (fun db -> marker_count db marker) with
                          | _, Ok c -> c >= 1
                          | _, Error _ -> false)
                    in
                    if not seen then Atomic.incr violations
                  done)
                ())
        in
        let reader_ths =
          List.init n_readers_mix (fun ri ->
              Thread.create
                (fun () ->
                  for j = 0 to reads_each - 1 do
                    let t0 = Pobs.Monotonic.now_ns () in
                    ignore
                      (RP.read pool (fun v ->
                           query_at v thresholds.(j mod Array.length thresholds)));
                    pool_lat.((ri * reads_each) + j) <- Pobs.Monotonic.now_ns () - t0
                  done)
                ())
        in
        List.iter Thread.join writer_ths;
        List.iter Thread.join reader_ths)
  in
  let wstats = Database.Writer.stats w in
  Database.Writer.stop w;
  RP.stop pool;
  (* single-handle mix: same op schedule on one thread, each write a
     full fsync'd transaction — the latency a read pays when it shares
     the one handle with the write stream *)
  let single_lat = Array.make (n_readers_mix * reads_each) 0 in
  let total_writes = n_writers * writes_each in
  let reads_per_write = Array.length single_lat / total_writes in
  let (), single_mix_ms =
    time_once (fun () ->
        let r = ref 0 in
        for wi = 1 to total_writes do
          Database.with_tx db (fun () ->
              ignore
                (Database.create db "Rec"
                   [ ("n", Value.VInt (200_000 + wi)); ("pad", Value.VString "w") ]));
          for _ = 1 to reads_per_write do
            if !r < Array.length single_lat then begin
              let t0 = Pobs.Monotonic.now_ns () in
              query_at db thresholds.(!r mod Array.length thresholds);
              single_lat.(!r) <- Pobs.Monotonic.now_ns () - t0;
              incr r
            end
          done
        done)
  in
  let p99 a =
    let a = Array.copy a in
    Array.sort compare a;
    float_of_int a.(min (Array.length a - 1) (Array.length a * 99 / 100)) /. 1e6
  in
  let pool_p99 = p99 pool_lat and single_p99 = p99 single_lat in
  let rywr_violations = Atomic.get violations in
  Printf.printf
    "  write mix  %d writes (%d batches, %d commits)  %d reads  rywr violations %d\n"
    total_writes wstats.Pstore.Store.Group.batches wstats.Pstore.Store.Group.commits
    (Array.length pool_lat) rywr_violations;
  Printf.printf "  read p99   pooled %.2f ms   single-handle mix %.2f ms\n" pool_p99
    single_p99;
  let pass = scaling_pass && rywr_violations = 0 in
  Printf.printf "serving gate: %s (speedup %.2fx, %d cores, %d rywr violations)\n"
    (if pass then "PASS" else "FAIL")
    speedup cores rywr_violations;
  Database.close db;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"serving\",\n";
  Buffer.add_string buf "  \"pr\": 8,\n";
  Buffer.add_string buf "  \"workloads\": [\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    { \"name\": \"serving_scaling\", \"note\": \"POOL count queries (extent \
        scan, %d objects) through Reader_pool, %d submitter threads, one job per \
        request, vs sequential single-handle serving; in-memory VFS\", \"unit\": \
        \"queries/s\", \"single_handle\": %.0f, \"pool_1\": %.0f, \"pool_2\": %.0f, \
        \"pool_4\": %.0f, \"speedup_pool4_vs_single\": %.2f, \"cores\": %d },\n"
       n_objects submitters qps_single qps1 qps2 qps4 speedup cores);
  Buffer.add_string buf
    (Printf.sprintf
       "    { \"name\": \"write_mix\", \"note\": \"%d creates through Database.Writer \
        (group commit) from %d threads, each followed by a tokened read (X-PDB-Min-LSN \
        semantics); %d concurrent untokened reads; single-handle mix interleaves the \
        same ops on one thread; group_commits also counts tokened reads that fell \
        through to the primary, which serialize through the same group\", \
        \"writes\": %d, \"group_batches\": %d, \
        \"group_commits\": %d, \"reads\": %d, \"rywr_violations\": %d, \
        \"pool_read_p99_ms\": %.2f, \"single_handle_read_p99_ms\": %.2f, \
        \"pool_mix_ms\": %.0f, \"single_mix_ms\": %.0f }\n"
       total_writes n_writers (Array.length pool_lat) total_writes
       wstats.Pstore.Store.Group.batches wstats.Pstore.Store.Group.commits
       (Array.length pool_lat) rywr_violations pool_p99 single_p99 mix_ms single_mix_ms);
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"acceptance\": {\n";
  Buffer.add_string buf
    "    \"criterion\": \"aggregate served QPS at 4 reader domains >= 2x the \
     single-handle baseline when >= 4 cores are available (>= 0.5x no-collapse floor on \
     smaller hosts), and read-your-writes holds for every write under the write-heavy \
     mix (zero violations)\",\n";
  Buffer.add_string buf (Printf.sprintf "    \"speedup_pool4_vs_single\": %.2f,\n" speedup);
  Buffer.add_string buf (Printf.sprintf "    \"cores\": %d,\n" cores);
  Buffer.add_string buf (Printf.sprintf "    \"rywr_violations\": %d,\n" rywr_violations);
  Buffer.add_string buf (Printf.sprintf "    \"pass\": %b\n" pass);
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  write_record "BENCH_PR8.json" (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* PR 9: load generator — event-loop connection scaling               *)
(* ------------------------------------------------------------------ *)

(* Connection-scaling curves over the event-loop front-end: the same
   tiny POOL query driven through four client shapes — HTTP with a
   connection per request, HTTP keep-alive, the binary protocol one
   query per round trip, and the binary protocol batched — at rising
   concurrent-connection counts, plus an admission-control probe
   asserting that connections over [max_conns] are answered 503 rather
   than dropped.  The query is deliberately cheap (a count over 100
   objects): the curve is meant to measure the serving surface, not
   the query engine.  LOADGEN=soak multiplies the request budget for
   the nightly run. *)
let bench_loadgen () =
  let module F = Pstore.Fault in
  Printf.printf "\n== loadgen: event-loop connection scaling, HTTP vs binary ==\n";
  let soak = match Sys.getenv_opt "LOADGEN" with Some "soak" -> true | _ -> false in
  let fs = F.create ~seed:9 () in
  F.set_short_transfers fs false;
  let vfs = F.vfs fs in
  let db = Database.open_ ~vfs "bench_loadgen.db" in
  ignore (Database.define_class db "Rec" [ Meta.attr "n" Value.TInt ]);
  Database.with_tx db (fun () ->
      for i = 0 to 99 do
        ignore (Database.create db "Rec" [ ("n", Value.VInt i) ])
      done);
  let query = "count(select r from Rec r where r.n < 50)" in
  let query_enc =
    let b = Buffer.create 64 in
    String.iter
      (function
        | ('A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '-' | '_' | '.' | '~') as c ->
            Buffer.add_char b c
        | c -> Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
      query;
    Buffer.contents b
  in
  let start_server ?max_conns () =
    let stop = ref false in
    let ports = ref (0, 0) in
    let m = Mutex.create () and c = Condition.create () in
    let set f =
      Mutex.lock m;
      ports := f !ports;
      Condition.broadcast c;
      Mutex.unlock m
    in
    let th =
      Thread.create
        (fun () ->
          try
            Pserver.Http_server.serve db ~port:0 ~binary_port:0 ?max_conns ~stop
              ~ready:(fun p -> set (fun (_, b) -> (p, b)))
              ~binary_ready:(fun b -> set (fun (p, _) -> (p, b)))
              ()
          with e -> Printf.eprintf "loadgen server died: %s\n%!" (Printexc.to_string e))
        ()
    in
    Mutex.lock m;
    while fst !ports = 0 || snd !ports = 0 do
      Condition.wait c m
    done;
    let http_port, bin_port = !ports in
    Mutex.unlock m;
    (http_port, bin_port, stop, th)
  in
  let stop_server (stop, th) =
    stop := true;
    Thread.join th
  in
  (* raw-socket client plumbing *)
  let send_all fd s =
    let b = Bytes.unsafe_of_string s in
    let pos = ref 0 in
    while !pos < String.length s do
      pos := !pos + Unix.write fd b !pos (String.length s - !pos)
    done
  in
  let recv_until_eof fd =
    let b = Buffer.create 512 in
    let chunk = Bytes.create 4096 in
    let rec go () =
      match Unix.read fd chunk 0 4096 with
      | 0 -> ()
      | n ->
          Buffer.add_subbytes b chunk 0 n;
          go ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
    in
    go ();
    Buffer.contents b
  in
  let find_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      if i + nn > nh then None else if String.sub hay i nn = needle then Some i else go (i + 1)
    in
    go 0
  in
  (* read exactly one Content-Length-framed response off a keep-alive
     connection, leaving pipelined extras in [bufr] *)
  let read_response fd bufr =
    let chunk = Bytes.create 4096 in
    let refill () =
      match Unix.read fd chunk 0 4096 with
      | 0 -> failwith "connection closed mid-response"
      | n -> bufr := !bufr ^ Bytes.sub_string chunk 0 n
    in
    let rec head_end () =
      match find_sub !bufr "\r\n\r\n" with
      | Some i -> i + 4
      | None ->
          refill ();
          head_end ()
    in
    let he = head_end () in
    let head = String.lowercase_ascii (String.sub !bufr 0 he) in
    let clen =
      match find_sub head "content-length:" with
      | None -> 0
      | Some i ->
          let rest = String.sub head (i + 15) (String.length head - i - 15) in
          int_of_string (String.trim (List.hd (String.split_on_char '\r' rest)))
    in
    while String.length !bufr < he + clen do
      refill ()
    done;
    bufr := String.sub !bufr (he + clen) (String.length !bufr - he - clen)
  in
  let p99_ms (a : int array) =
    let a = Array.copy a in
    Array.sort compare a;
    if Array.length a = 0 then 0.
    else float_of_int a.(min (Array.length a - 1) (Array.length a * 99 / 100)) /. 1e6
  in
  (* Run [conns] concurrent client threads, each doing [per] round
     trips; [mk ci] builds a (round, finish) pair where [round]
     returns the number of requests it completed. *)
  let run_cell ~conns ~per mk =
    let lat = Array.make (conns * per) 0 in
    let completed = Atomic.make 0 in
    let (), ms =
      time_once (fun () ->
          let ths =
            List.init conns (fun ci ->
                Thread.create
                  (fun () ->
                    try
                      let round, finish = mk ci in
                      for j = 0 to per - 1 do
                        let t0 = Pobs.Monotonic.now_ns () in
                        let n = round () in
                        lat.((ci * per) + j) <- Pobs.Monotonic.now_ns () - t0;
                        ignore (Atomic.fetch_and_add completed n)
                      done;
                      finish ()
                    with e ->
                      Printf.eprintf "loadgen client: %s\n%!" (Printexc.to_string e))
                  ())
          in
          List.iter Thread.join ths)
    in
    let reqs = Atomic.get completed in
    (float_of_int reqs /. (ms /. 1000.), p99_ms lat, reqs)
  in
  let http_port, bin_port, stop, th = start_server () in
  let close_req =
    Printf.sprintf "GET /query?q=%s HTTP/1.0\r\nHost: x\r\n\r\n" query_enc
  in
  let ka_req = Printf.sprintf "GET /query?q=%s HTTP/1.1\r\nHost: x\r\n\r\n" query_enc in
  let mk_http_close _ci =
    ( (fun () ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, http_port));
            send_all fd close_req;
            ignore (recv_until_eof fd));
        1),
      fun () -> () )
  in
  let mk_http_keepalive _ci =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, http_port));
    let buf = ref "" in
    ( (fun () ->
        send_all fd ka_req;
        read_response fd buf;
        1),
      fun () -> try Unix.close fd with Unix.Unix_error _ -> () )
  in
  let mk_binary _ci =
    let cl = Pserver.Client.connect ~port:bin_port () in
    ( (fun () ->
        ignore (Pserver.Client.query cl query);
        1),
      fun () -> Pserver.Client.close cl )
  in
  let batch_size = 16 in
  let mk_binary_batch _ci =
    let cl = Pserver.Client.connect ~port:bin_port () in
    let qs = List.init batch_size (fun _ -> query) in
    ( (fun () ->
        ignore (Pserver.Client.batch cl qs);
        batch_size),
      fun () -> Pserver.Client.close cl )
  in
  let budget = if soak then 16384 else 2048 in
  let conn_levels = [ 16; 64; 256 ] in
  let scenarios =
    [
      ("http_close", mk_http_close, 1);
      ("http_keepalive", mk_http_keepalive, 1);
      ("binary", mk_binary, 1);
      ("binary_batch", mk_binary_batch, batch_size);
    ]
  in
  (* warm every path once *)
  List.iter
    (fun (_, mk, _) ->
      let round, finish = mk 0 in
      ignore (round ());
      finish ())
    scenarios;
  let results =
    List.map
      (fun (name, mk, per_round) ->
        let curve =
          List.map
            (fun conns ->
              let per = max 1 (budget / (conns * per_round)) in
              let qps, p99, reqs = run_cell ~conns ~per mk in
              Printf.printf "  %-14s %4d conns  %8.0f req/s   p99 %6.2f ms  (%d reqs)\n%!"
                name conns qps p99 reqs;
              (conns, qps, p99, reqs))
            conn_levels
        in
        (name, curve))
      scenarios
  in
  stop_server (stop, th);
  let qps_at name conns =
    let curve = List.assoc name results in
    let _, qps, _, _ = List.find (fun (c, _, _, _) -> c = conns) curve in
    qps
  in
  let p99_at name conns =
    let curve = List.assoc name results in
    let _, _, p99, _ = List.find (fun (c, _, _, _) -> c = conns) curve in
    p99
  in
  let sat = 256 in
  let speedup = qps_at "binary_batch" sat /. qps_at "http_close" sat in
  let cores = Domain.recommended_domain_count () in
  (* --- admission control: over capacity is answered, never dropped --- *)
  let cap = 8 and probes = 32 in
  let http_port2, _bin2, stop2, th2 = start_server ~max_conns:cap () in
  let served = Atomic.make 0 and rejected = Atomic.make 0 and dropped = Atomic.make 0 in
  let fds =
    List.init probes (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, http_port2));
        fd)
  in
  let ths =
    List.map
      (fun fd ->
        Thread.create
          (fun () ->
            (try
               send_all fd "GET / HTTP/1.0\r\nHost: x\r\n\r\n";
               let r = recv_until_eof fd in
               if String.length r >= 12 && String.sub r 9 3 = "200" then Atomic.incr served
               else if String.length r >= 12 && String.sub r 9 3 = "503" then
                 Atomic.incr rejected
               else Atomic.incr dropped
             with _ -> Atomic.incr dropped);
            try Unix.close fd with Unix.Unix_error _ -> ())
          ())
      fds
  in
  List.iter Thread.join ths;
  stop_server (stop2, th2);
  Database.close db;
  let n_served = Atomic.get served
  and n_rejected = Atomic.get rejected
  and n_dropped = Atomic.get dropped in
  Printf.printf
    "  admission  cap %d, %d probes: %d served, %d rejected with 503, %d dropped\n" cap
    probes n_served n_rejected n_dropped;
  let floor_ok = if cores >= 4 then speedup >= 2.0 else speedup >= 0.5 in
  let pass = floor_ok && n_dropped = 0 in
  Printf.printf
    "loadgen gate: %s (binary-batch vs http-close at %d conns: %.2fx, %d core%s; \
     dropped-without-503: %d)\n"
    (if pass then "PASS" else "FAIL")
    sat speedup cores
    (if cores = 1 then "" else "s")
    n_dropped;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"loadgen\",\n";
  Buffer.add_string buf "  \"pr\": 9,\n";
  Buffer.add_string buf (Printf.sprintf "  \"soak\": %b,\n" soak);
  Buffer.add_string buf "  \"workloads\": [\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    { \"name\": \"connection_scaling\", \"note\": \"closed-loop clients over \
        the event-loop server, one tiny POOL count query (%d objects, in-memory VFS) \
        per request; http_close opens a connection per request, http_keepalive reuses \
        one, binary is one Query frame per round trip, binary_batch packs %d queries \
        per Batch frame; ~%d-request budget per cell\", \"unit\": \"requests/s\",\n"
       100 batch_size budget);
  Buffer.add_string buf "      \"scenarios\": [\n";
  List.iteri
    (fun i (name, curve) ->
      Buffer.add_string buf (Printf.sprintf "        { \"proto\": \"%s\", \"curve\": [" name);
      List.iteri
        (fun j (conns, qps, p99, reqs) ->
          Buffer.add_string buf
            (Printf.sprintf "%s{ \"conns\": %d, \"qps\": %.0f, \"p99_ms\": %.2f, \"requests\": %d }"
               (if j = 0 then " " else ", ")
               conns qps p99 reqs))
        curve;
      Buffer.add_string buf
        (Printf.sprintf " ] }%s\n" (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "      ] },\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    { \"name\": \"admission_control\", \"note\": \"%d concurrent probes \
        against max_conns=%d: every connection over capacity must be answered 503 + \
        Retry-After, never silently dropped\", \"probes\": %d, \"max_conns\": %d, \
        \"served\": %d, \"rejected_503\": %d, \"dropped_without_503\": %d }\n"
       probes cap probes cap n_served n_rejected n_dropped);
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"acceptance\": {\n";
  Buffer.add_string buf
    "    \"criterion\": \"binary-batched QPS >= 2x HTTP/close QPS at 256 connections \
     on >= 4 cores (>= 0.5x no-collapse floor on smaller hosts); p99 at saturation \
     recorded for every protocol; zero connections dropped without a 503 under \
     admission control\",\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"qps_http_close_256\": %.0f,\n" (qps_at "http_close" sat));
  Buffer.add_string buf
    (Printf.sprintf "    \"qps_http_keepalive_256\": %.0f,\n" (qps_at "http_keepalive" sat));
  Buffer.add_string buf
    (Printf.sprintf "    \"qps_binary_256\": %.0f,\n" (qps_at "binary" sat));
  Buffer.add_string buf
    (Printf.sprintf "    \"qps_binary_batch_256\": %.0f,\n" (qps_at "binary_batch" sat));
  Buffer.add_string buf
    (Printf.sprintf "    \"p99_http_close_256_ms\": %.2f,\n" (p99_at "http_close" sat));
  Buffer.add_string buf
    (Printf.sprintf "    \"p99_binary_batch_256_ms\": %.2f,\n" (p99_at "binary_batch" sat));
  Buffer.add_string buf
    (Printf.sprintf "    \"speedup_batch_vs_close_256\": %.2f,\n" speedup);
  Buffer.add_string buf (Printf.sprintf "    \"cores\": %d,\n" cores);
  Buffer.add_string buf (Printf.sprintf "    \"dropped_without_503\": %d,\n" n_dropped);
  Buffer.add_string buf (Printf.sprintf "    \"pass\": %b\n" pass);
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  write_record "BENCH_PR9.json" (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* cluster: router replica scaling, lagging-replica tail, failover     *)
(* ------------------------------------------------------------------ *)

let bench_cluster () =
  let module CP = Pcluster.Promote in
  let module CR = Pcluster.Router in
  Printf.printf "\n== cluster: replica-fleet router, failover, promotion ==\n";
  (* --- raw HTTP client plumbing (HTTP/1.0, one connection/request) --- *)
  let send_all fd s =
    let b = Bytes.unsafe_of_string s in
    let pos = ref 0 in
    while !pos < String.length s do
      pos := !pos + Unix.write fd b !pos (String.length s - !pos)
    done
  in
  let recv_until_eof fd =
    let b = Buffer.create 512 in
    let chunk = Bytes.create 4096 in
    let rec go () =
      match Unix.read fd chunk 0 4096 with
      | 0 -> ()
      | n ->
          Buffer.add_subbytes b chunk 0 n;
          go ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
    in
    go ();
    Buffer.contents b
  in
  let talk port req =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        send_all fd req;
        Unix.shutdown fd Unix.SHUTDOWN_SEND;
        recv_until_eof fd)
  in
  let http_get ?(headers = []) port target =
    let hs =
      String.concat ""
        (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
    in
    talk port (Printf.sprintf "GET %s HTTP/1.0\r\nHost: x\r\n%s\r\n" target hs)
  in
  let http_post port target =
    talk port (Printf.sprintf "POST %s HTTP/1.0\r\nHost: x\r\n\r\n" target)
  in
  let is_200 r = String.length r >= 12 && String.sub r 9 3 = "200" in
  let header_of r name =
    (* the router re-emits backend headers lowercased *)
    let lower = String.lowercase_ascii r in
    let tag = "\r\n" ^ name ^ ":" in
    match
      let nh = String.length lower and nn = String.length tag in
      let rec go i =
        if i + nn > nh then None
        else if String.sub lower i nn = tag then Some i
        else go (i + 1)
      in
      go 0
    with
    | None -> None
    | Some i -> (
        let at = i + String.length tag in
        let rest = String.sub lower at (min 64 (String.length lower - at)) in
        match String.split_on_char '\r' rest with
        | v :: _ -> int_of_string_opt (String.trim v)
        | [] -> None)
  in
  let p99_ms (a : int array) =
    let a = Array.copy a in
    Array.sort compare a;
    if Array.length a = 0 then 0.
    else float_of_int a.(min (Array.length a - 1) (Array.length a * 99 / 100)) /. 1e6
  in
  (* --- fleet plumbing ---------------------------------------------------- *)
  let cleanup_node p =
    List.iter
      (fun q -> if Sys.file_exists q then Sys.remove q)
      [ p; p ^ ".journal"; p ^ ".replid"; p ^ ".replid.tmp"; p ^ ".snap" ]
  in
  let seed path =
    let db = Database.open_ path in
    ignore (Database.define_class db "Rec" [ Meta.attr "n" Value.TInt ]);
    Database.with_tx db (fun () ->
        for i = 0 to 99 do
          ignore (Database.create db "Rec" [ ("n", Value.VInt i) ])
        done);
    Database.close db
  in
  let start_node node =
    let stop = ref false in
    let m = Mutex.create () and cv = Condition.create () in
    let bbox = ref 0 in
    let th =
      Thread.create
        (fun () ->
          try
            CP.serve node ~stop ~binary_port:0
              ~binary_ready:(fun p ->
                Mutex.lock m;
                bbox := p;
                Condition.broadcast cv;
                Mutex.unlock m)
              ~port:0 ()
          with e ->
            Printf.eprintf "cluster bench node died: %s\n%!" (Printexc.to_string e))
        ()
    in
    Mutex.lock m;
    while !bbox = 0 do
      Condition.wait cv m
    done;
    Mutex.unlock m;
    (!bbox, stop, th)
  in
  let kill_node node (bport, stop, th) =
    stop := true;
    (try
       ignore
         (Pserver.Client.close (Pserver.Client.connect ~port:bport ()))
     with _ -> ());
    (try Thread.join th with _ -> ());
    CP.shutdown node
  in
  let feed_port node =
    match node.CP.n_state with
    | CP.Leading l -> l.l_fsrv.Prepl.Feed.port
    | CP.Following _ -> failwith "bench node is not leading"
  in
  (* A fleet: one primary, [replicas] followers, one router over all of
     them.  Returns the router port plus a closure tearing it all down. *)
  let mk_fleet ?(sync_writes = false) replicas =
    let pp = tmp_path "bench_cluster_p" in
    seed pp;
    let prim = CP.create_leading ~readers:1 ~path:pp ~host:"127.0.0.1" ~repl_port:0 () in
    let upstream = Printf.sprintf "127.0.0.1:%d" (feed_port prim) in
    let lp = start_node prim in
    let reps =
      List.init replicas (fun _ ->
          let p = tmp_path "bench_cluster_r" in
          match
            CP.create_following ~readers:1 ~path:p ~host:"127.0.0.1" ~repl_port:0
              ~upstream ()
          with
          | Ok n -> (p, n, start_node n)
          | Error e -> failwith ("cluster bench follower: " ^ e))
    in
    let bport (b, _, _) = b in
    let r =
      CR.create ~sync_writes ~probe_every_s:0.05 ~fail_threshold:3
        (("127.0.0.1", bport lp)
        :: List.map (fun (_, _, ln) -> ("127.0.0.1", bport ln)) reps)
    in
    let rstop = ref false in
    let m = Mutex.create () and cv = Condition.create () in
    let pbox = ref 0 in
    let rth =
      Thread.create
        (fun () ->
          try
            CR.serve r ~stop:rstop
              ~ready:(fun p ->
                Mutex.lock m;
                pbox := p;
                Condition.broadcast cv;
                Mutex.unlock m)
              ~port:0 ()
          with e ->
            Printf.eprintf "cluster bench router died: %s\n%!" (Printexc.to_string e))
        ()
    in
    Mutex.lock m;
    while !pbox = 0 do
      Condition.wait cv m
    done;
    Mutex.unlock m;
    let teardown () =
      rstop := true;
      (try ignore (http_get !pbox "/") with _ -> ());
      (try Thread.join rth with _ -> ());
      List.iter (fun (_, n, ln) -> kill_node n ln) reps;
      kill_node prim lp;
      cleanup_node pp;
      List.iter (fun (p, _, _) -> cleanup_node p) reps
    in
    (!pbox, prim, lp, reps, teardown)
  in
  let query_target = "/query?q=count(select%20r%20from%20Rec%20r%20where%20r.n%20%3C%2050)" in
  let run_gets ?headers ~conns ~per port =
    let lat = Array.make (conns * per) 0 in
    let ok = Atomic.make 0 and stale = Atomic.make 0 in
    let min_lsn =
      match headers with
      | Some [ (_, v) ] -> Option.value (int_of_string_opt v) ~default:0
      | _ -> 0
    in
    let (), ms =
      time_once (fun () ->
          let ths =
            List.init conns (fun ci ->
                Thread.create
                  (fun () ->
                    for j = 0 to per - 1 do
                      let t0 = Pobs.Monotonic.now_ns () in
                      (try
                         let r = http_get ?headers port query_target in
                         if is_200 r then begin
                           Atomic.incr ok;
                           match header_of r "x-pdb-lsn" with
                           | Some served when served < min_lsn -> Atomic.incr stale
                           | _ -> ()
                         end
                       with _ -> ());
                      lat.((ci * per) + j) <- Pobs.Monotonic.now_ns () - t0
                    done)
                  ())
          in
          List.iter Thread.join ths)
    in
    (float_of_int (Atomic.get ok) /. (ms /. 1000.), p99_ms lat, Atomic.get ok, Atomic.get stale)
  in
  (* --- aggregate GET QPS vs replica count ------------------------------- *)
  let conns = 8 and per = 50 in
  let scaling =
    List.map
      (fun replicas ->
        let rport, _prim, _lp, _reps, teardown = mk_fleet replicas in
        (* warm the routed path once *)
        ignore (http_get rport query_target);
        let qps, p99, okc, _ = run_gets ~conns ~per rport in
        teardown ();
        Printf.printf "  %d replica%s   %8.0f GET/s   p99 %6.2f ms  (%d ok)\n%!"
          replicas
          (if replicas = 1 then " " else "s")
          qps p99 okc;
        (replicas, qps, p99, okc))
      [ 1; 2; 4 ]
  in
  let qps_at k =
    let _, qps, _, _ = List.find (fun (r, _, _, _) -> r = k) scaling in
    qps
  in
  let scaling_4_vs_1 = qps_at 4 /. qps_at 1 in
  (* --- tail latency with one lagging replica ----------------------------- *)
  (* Freeze one replica's applier (its session loop exits; the node
     stays up, healthy, role "replica", LSN frozen): tokened reads must
     steer around it — stale answers are gated at zero, and the p99
     shows the cost of the detour. *)
  let rport, prim, _lp, reps, teardown = mk_fleet 2 in
  let lagging_p99, lag_stale =
    match reps with
    | (_, lagger, _) :: _ ->
        (match lagger.CP.n_state with
        | CP.Following f -> f.f_sess.Prepl.Replica.running := false
        | CP.Leading _ -> ());
        (* advance the primary past the frozen replica *)
        let acked_lsn = ref 0 in
        for i = 0 to 19 do
          let r = http_post rport (Printf.sprintf "/create?class=Rec&n=%d" (1000 + i)) in
          match header_of r "x-pdb-lsn" with
          | Some l when l > !acked_lsn -> acked_lsn := l
          | _ -> ()
        done;
        let _, p99, _, stale =
          run_gets
            ~headers:[ ("X-PDB-Min-LSN", string_of_int !acked_lsn) ]
            ~conns ~per:25 rport
        in
        (p99, stale)
    | [] -> (0., 0)
  in
  ignore prim;
  teardown ();
  Printf.printf "  lagging replica: tokened-read p99 %6.2f ms, %d stale answers\n%!"
    lagging_p99 lag_stale;
  (* --- failover: primary kill -> first successful routed write ----------- *)
  let rport, _prim, lp, reps, teardown = mk_fleet ~sync_writes:true 2 in
  ignore (http_get rport query_target);
  let acked = ref 0 and last_lsn = ref 0 in
  let write i =
    let r = http_post rport (Printf.sprintf "/create?class=Rec&n=%d" (2000 + i)) in
    if is_200 r then begin
      incr acked;
      (match header_of r "x-pdb-lsn" with
      | Some l when l > !last_lsn -> last_lsn := l
      | _ -> ());
      true
    end
    else false
  in
  for i = 0 to 9 do
    ignore (write i)
  done;
  let stop_load = ref false in
  let rywr_violations = ref 0 in
  let reader =
    Thread.create
      (fun () ->
        while not !stop_load do
          let tok = !last_lsn in
          (try
             let r =
               http_get
                 ~headers:[ ("X-PDB-Min-LSN", string_of_int tok) ]
                 rport query_target
             in
             if is_200 r then
               match header_of r "x-pdb-lsn" with
               | Some served when served < tok -> incr rywr_violations
               | _ -> ()
           with _ -> ());
          Thread.delay 0.01
        done)
      ()
  in
  let prim_node = _prim in
  let t_kill = Unix.gettimeofday () in
  kill_node prim_node lp;
  let rec until_write i =
    if write i then Unix.gettimeofday ()
    else begin
      Thread.delay 0.01;
      until_write (i + 1)
    end
  in
  let t_ok = until_write 10 in
  let failover_ms = (t_ok -. t_kill) *. 1000. in
  for i = 1000 to 1009 do
    ignore (write i)
  done;
  stop_load := true;
  Thread.join reader;
  (* zero acknowledged writes lost: every acked create is a row over
     the 100 seeded ones, served by the promoted primary *)
  let rows =
    let r =
      http_get
        ~headers:[ ("X-PDB-Min-LSN", string_of_int !last_lsn) ]
        rport "/query?q=count(select%20r%20from%20Rec%20r)"
    in
    if not (is_200 r) then -1
    else
      let body_at =
        let nh = String.length r in
        let rec go i =
          if i + 4 > nh then nh
          else if String.sub r i 4 = "\r\n\r\n" then i + 4
          else go (i + 1)
        in
        go 0
      in
      let digits =
        String.to_seq (String.sub r body_at (String.length r - body_at))
        |> Seq.filter (fun c -> c >= '0' && c <= '9')
        |> String.of_seq
      in
      Option.value (int_of_string_opt digits) ~default:(-1)
  in
  let promoted =
    List.exists
      (fun (_, n, _) -> match n.CP.n_state with CP.Leading _ -> true | _ -> false)
      reps
  in
  teardown ();
  let acked_writes_lost = if rows < 0 then !acked else max 0 (!acked - (rows - 100)) in
  Printf.printf
    "  failover: %.0f ms to first routed write after primary kill (%d acked, %d rows, promoted=%b)\n%!"
    failover_ms !acked rows promoted;
  let cores = Domain.recommended_domain_count () in
  let floor_ok =
    if cores >= 4 then scaling_4_vs_1 >= 1.8 else scaling_4_vs_1 >= 0.5
  in
  let pass =
    floor_ok && lag_stale = 0 && acked_writes_lost = 0 && !rywr_violations = 0
    && promoted
  in
  Printf.printf
    "cluster gate: %s (4-replica vs 1-replica GET QPS: %.2fx, %d core%s; lagging-replica \
     stale reads: %d; failover %.0f ms; acked writes lost: %d; rywr violations: %d)\n"
    (if pass then "PASS" else "FAIL")
    scaling_4_vs_1 cores
    (if cores = 1 then "" else "s")
    lag_stale failover_ms acked_writes_lost !rywr_violations;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"cluster\",\n";
  Buffer.add_string buf "  \"pr\": 10,\n";
  Buffer.add_string buf "  \"workloads\": [\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    { \"name\": \"replica_scaling\", \"note\": \"aggregate GET QPS through \
        the router, %d closed-loop HTTP clients, count query over 100 objects, \
        replica fleet behind one router on one host; every fleet is built fresh \
        and torn down\", \"unit\": \"requests/s\",\n"
       conns);
  Buffer.add_string buf "      \"curve\": [";
  List.iteri
    (fun j (replicas, qps, p99, okc) ->
      Buffer.add_string buf
        (Printf.sprintf
           "%s{ \"replicas\": %d, \"qps\": %.0f, \"p99_ms\": %.2f, \"requests\": %d }"
           (if j = 0 then " " else ", ")
           replicas qps p99 okc))
    scaling;
  Buffer.add_string buf " ] },\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    { \"name\": \"lagging_replica\", \"note\": \"one of two replicas has its \
        applier frozen; tokened reads must steer around it — stale answers gated at \
        zero\", \"lagging_p99_ms\": %.2f, \"stale_reads\": %d },\n"
       lagging_p99 lag_stale);
  Buffer.add_string buf
    (Printf.sprintf
       "    { \"name\": \"failover\", \"note\": \"primary killed under concurrent \
        semi-sync writes and tokened reads; time from kill to the first successful \
        routed write on the promoted replica; acknowledged-write loss and \
        read-your-writes violations gated at zero\", \"failover_ms\": %.0f, \
        \"acked_writes\": %d, \"rows_after\": %d, \"replica_promoted\": %b }\n"
       failover_ms !acked rows promoted);
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"acceptance\": {\n";
  Buffer.add_string buf
    "    \"criterion\": \"aggregate routed GET QPS at 4 replicas >= 1.8x the \
     1-replica fleet on >= 4 cores (>= 0.5x no-collapse floor on smaller hosts); \
     failover time recorded; zero acknowledged writes lost, zero read-your-writes \
     violations, zero stale answers from the lagging replica; a replica must be \
     promoted\",\n";
  Buffer.add_string buf (Printf.sprintf "    \"qps_1_replica\": %.0f,\n" (qps_at 1));
  Buffer.add_string buf (Printf.sprintf "    \"qps_2_replicas\": %.0f,\n" (qps_at 2));
  Buffer.add_string buf (Printf.sprintf "    \"qps_4_replicas\": %.0f,\n" (qps_at 4));
  Buffer.add_string buf
    (Printf.sprintf "    \"scaling_4_vs_1\": %.2f,\n" scaling_4_vs_1);
  Buffer.add_string buf (Printf.sprintf "    \"lagging_p99_ms\": %.2f,\n" lagging_p99);
  Buffer.add_string buf (Printf.sprintf "    \"lagging_stale_reads\": %d,\n" lag_stale);
  Buffer.add_string buf (Printf.sprintf "    \"failover_ms\": %.0f,\n" failover_ms);
  Buffer.add_string buf
    (Printf.sprintf "    \"acked_writes_lost\": %d,\n" acked_writes_lost);
  Buffer.add_string buf
    (Printf.sprintf "    \"rywr_violations\": %d,\n" !rywr_violations);
  Buffer.add_string buf (Printf.sprintf "    \"replica_promoted\": %b,\n" promoted);
  Buffer.add_string buf (Printf.sprintf "    \"cores\": %d,\n" cores);
  Buffer.add_string buf (Printf.sprintf "    \"pass\": %b\n" pass);
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  write_record "BENCH_PR10.json" (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* validate: real JSON validation of emitted bench records             *)
(* ------------------------------------------------------------------ *)

(* A small strict JSON reader — enough to parse what this harness
   emits (and reject what it must not emit).  `validate FILE KEY...`
   replaces ci.sh's old grep of `"pass": false`: the file must parse,
   every KEY must be present somewhere, and no object anywhere may
   carry a false "pass". *)
module Json_check = struct
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of v list
    | Obj of (string * v) list

  exception Bad of string

  let parse (s : string) : v =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let rec skip_ws () =
      match peek () with Some (' ' | '\t' | '\n' | '\r') -> incr pos; skip_ws () | _ -> ()
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let lit word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ word)
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              incr pos;
              if !pos >= n then fail "unterminated escape";
              (match s.[!pos] with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 't' -> Buffer.add_char b '\t'
              | 'r' -> Buffer.add_char b '\r'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'u' ->
                  if !pos + 4 >= n then fail "truncated \\u escape";
                  (* raw passthrough: key comparison never needs it *)
                  Buffer.add_string b (String.sub s (!pos - 1) 6);
                  pos := !pos + 4
              | c -> fail (Printf.sprintf "bad escape \\%c" c));
              incr pos;
              go ()
          | c ->
              Buffer.add_char b c;
              incr pos;
              go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' -> obj ()
      | Some '[' -> arr ()
      | Some '"' -> Str (string_lit ())
      | Some 't' -> lit "true" (Bool true)
      | Some 'f' -> lit "false" (Bool false)
      | Some 'n' -> lit "null" Null
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> fail "expected a value"
    and obj () =
      expect '{';
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
              incr pos;
              members ()
          | Some '}' -> incr pos
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    and arr () =
      expect '[';
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          items := value () :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
              incr pos;
              elements ()
          | Some ']' -> incr pos
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        Arr (List.rev !items)
      end
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing bytes after the document";
    v

  (* every object key, plus every string value of a "name" field —
     workloads are addressed by name, so `validate FILE deep_descent`
     must find { "name": "deep_descent", ... } *)
  let rec all_keys = function
    | Obj fields ->
        List.concat_map
          (fun (k, v) ->
            match (k, v) with
            | "name", Str s -> [ k; s ]
            | _ -> k :: all_keys v)
          fields
    | Arr items -> List.concat_map all_keys items
    | _ -> []

  (* every object carrying "pass": false, as a breadcrumb path *)
  let rec failed_gates path = function
    | Obj fields ->
        let here =
          match List.assoc_opt "pass" fields with
          | Some (Bool false) -> [ path ]
          | _ -> []
        in
        here
        @ List.concat_map (fun (k, v) -> failed_gates (path ^ "." ^ k) v) fields
    | Arr items ->
        List.concat (List.mapi (fun i v -> failed_gates (Printf.sprintf "%s[%d]" path i) v) items)
    | _ -> []
end

let validate_record file keys =
  let contents =
    match open_in_bin file with
    | exception Sys_error m ->
        Printf.eprintf "validate: cannot read %s: %s\n" file m;
        exit 1
    | ic ->
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
  in
  match Json_check.parse contents with
  | exception Json_check.Bad m ->
      Printf.eprintf "validate: %s: malformed JSON: %s\n" file m;
      exit 1
  | Json_check.Obj _ as v ->
      let present = Json_check.all_keys v in
      let missing = List.filter (fun k -> not (List.mem k present)) keys in
      if missing <> [] then begin
        Printf.eprintf "validate: %s: missing keys: %s\n" file (String.concat ", " missing);
        exit 1
      end;
      (match Json_check.failed_gates "$" v with
      | [] ->
          Printf.printf "validate: %s: ok (%d keys checked, all gates pass)\n" file
            (List.length keys)
      | gates ->
          Printf.eprintf "validate: %s: failed acceptance gates: %s\n" file
            (String.concat ", " gates);
          exit 1)
  | _ ->
      Printf.eprintf "validate: %s: top level is not a JSON object\n" file;
      exit 1

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  (* extract --out DIR wherever it appears; the first remaining
     argument is the section *)
  let rest = ref [] in
  let i = ref 1 in
  let argc = Array.length Sys.argv in
  while !i < argc do
    (match Sys.argv.(!i) with
    | "--out" when !i + 1 < argc ->
        out_dir := Sys.argv.(!i + 1);
        incr i
    | a -> rest := a :: !rest);
    incr i
  done;
  let args = List.rev !rest in
  let section = match args with s :: _ -> s | [] -> "all" in
  (match args with
  | "validate" :: file :: keys ->
      validate_record file keys;
      exit 0
  | "validate" :: [] ->
      Printf.eprintf "usage: validate FILE [KEY...]\n";
      exit 1
  | _ -> ());
  let run = function
    | "raw" -> bench_raw_performance ()
    | "micro" -> bench_micro ()
    | "queries" -> bench_queries ()
    | "struct" -> bench_struct ()
    | "fig44" -> bench_fig44 ()
    | "fig45" -> bench_fig45 ()
    | "fig46" -> bench_fig46 ()
    | "tax" -> bench_tax ()
    | "ablation" -> bench_ablation ()
    | "tables" -> bench_tables ()
    | "recovery" -> bench_recovery ()
    | "storage" -> bench_storage ()
    | "query" -> bench_query ()
    | "obs" -> bench_obs ()
    | "repl" -> bench_repl ()
    | "integrity" -> bench_integrity ()
    | "mvcc" -> bench_mvcc ()
    | "serving" -> bench_serving ()
    | "loadgen" -> bench_loadgen ()
    | "cluster" -> bench_cluster ()
    | "schema" -> print_schema ()
    | s ->
        Printf.eprintf "unknown section %s\n" s;
        exit 1
  in
  match section with
  | "all" ->
      print_schema ();
      bench_tables ();
      bench_raw_performance ();
      bench_queries ();
      bench_struct ();
      bench_fig44 ();
      bench_fig45 ();
      bench_fig46 ();
      bench_tax ();
      bench_ablation ();
      bench_micro ();
      bench_recovery ();
      bench_storage ();
      bench_query ();
      bench_obs ();
      bench_repl ();
      bench_integrity ();
      bench_mvcc ();
      bench_serving ();
      bench_loadgen ();
      bench_cluster ()
  | s -> run s
