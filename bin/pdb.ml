(* pdb — the Prometheus database command-line tool.

   Subcommands:
     pdb query FILE QUERY       run a POOL query against a database
     pdb check FILE QUERY       static-check a POOL query
     pdb schema FILE            print classes and relationship classes
     pdb contexts FILE          list classifications
     pdb stats FILE             storage statistics
     pdb metrics FILE           Prometheus text exposition of all metrics
     pdb trace FILE QUERY       run a query with span tracing, print the tree
     pdb serve FILE [-p PORT]   HTTP interface (thesis 6.1.7)
     pdb demo FILE              populate FILE with a demo flora
*)

open Cmdliner
open Pmodel

let db_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Database file.")

let with_db file f =
  let db = Database.open_ file in
  Fun.protect ~finally:(fun () -> Database.close db) (fun () -> f db)

(* --- query ----------------------------------------------------------- *)

let query_cmd =
  let q = Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"POOL query.") in
  let run file query =
    with_db file (fun db ->
        match Pool_lang.Pool.query db query with
        | Value.VList rows ->
            List.iter (fun r -> print_endline (Value.to_string r)) rows;
            Printf.printf "(%d rows)\n" (List.length rows)
        | v -> print_endline (Value.to_string v))
  in
  Cmd.v (Cmd.info "query" ~doc:"Run a POOL query.") Term.(const run $ db_arg $ q)

let check_cmd =
  let q = Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"POOL query.") in
  let run file query =
    with_db file (fun db ->
        match Pool_lang.Typecheck.check_string (Database.schema db) query with
        | [] -> print_endline "ok"
        | errs ->
            List.iter
              (fun (e : Pool_lang.Typecheck.error) ->
                Printf.printf "error: %s\n  in: %s\n" e.Pool_lang.Typecheck.message
                  e.Pool_lang.Typecheck.expr)
              errs;
            exit 1)
  in
  Cmd.v (Cmd.info "check" ~doc:"Static-check a POOL query.") Term.(const run $ db_arg $ q)

(* --- introspection ------------------------------------------------------ *)

let schema_cmd =
  let run file = with_db file (fun db -> print_string (Pserver.Http_server.schema_text db)) in
  Cmd.v (Cmd.info "schema" ~doc:"Print the database schema.") Term.(const run $ db_arg)

let contexts_cmd =
  let run file =
    with_db file (fun db ->
        List.iter (fun (oid, name) -> Printf.printf "#%d %s\n" oid name) (Database.contexts db))
  in
  Cmd.v (Cmd.info "contexts" ~doc:"List classifications.") Term.(const run $ db_arg)

let stats_cmd =
  let run file =
    with_db file (fun db ->
        let s = Pstore.Store.stats (Database.store db) in
        Printf.printf
          "objects       %d\npages         %d\npage reads    %d\npage writes   %d\nevictions     %d\njournal bytes %d\n"
          s.Pstore.Store.objects s.Pstore.Store.pages s.Pstore.Store.page_reads
          s.Pstore.Store.page_writes s.Pstore.Store.evictions s.Pstore.Store.journal_bytes;
        let q = Pool_lang.Pool.stats db in
        Printf.printf
          "index probes  %d\nrange scans   %d\nhash joins    %d\nextent scans  %d\nplan hits     %d\nplan misses   %d\nadj rebuilds  %d\n"
          q.Pool_lang.Eval.index_probes q.Pool_lang.Eval.range_scans q.Pool_lang.Eval.hash_joins
          q.Pool_lang.Eval.extent_scans q.Pool_lang.Eval.plan_cache_hits
          q.Pool_lang.Eval.plan_cache_misses q.Pool_lang.Eval.adjacency_rebuilds)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print storage statistics.") Term.(const run $ db_arg)

let metrics_cmd =
  let run file = with_db file (fun db -> print_string (Pserver.Http_server.metrics_text db)) in
  Cmd.v
    (Cmd.info "metrics" ~doc:"Print all metrics in Prometheus text exposition format.")
    Term.(const run $ db_arg)

let trace_cmd =
  let q = Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"POOL query.") in
  let run file query =
    with_db file (fun db ->
        Pobs.Trace.enabled := true;
        Pobs.Trace.set_capacity 4096;
        let v = Pool_lang.Pool.query db query in
        Pobs.Trace.enabled := false;
        let rows = match v with Value.VList l | Value.VSet l | Value.VBag l -> l | v -> [ v ] in
        Printf.printf "(%d rows)\n\n" (List.length rows);
        print_string (Pobs.Trace.to_text ()))
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run a POOL query with span tracing and print the span tree.")
    Term.(const run $ db_arg $ q)

(* --- server --------------------------------------------------------------- *)

let port_arg =
  Arg.(value & opt int 8080 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Port to listen on.")

let slowlog_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slowlog-ms" ] ~docv:"MS"
        ~doc:"Slow-query log threshold in milliseconds (default 10).")

let apply_slowlog = function
  | Some ms -> Pobs.Slowlog.set_threshold_ms ms
  | None -> ()

let serve_cmd =
  let primary =
    Arg.(
      value
      & opt (some int) None
      & info [ "primary" ] ~docv:"RPORT"
          ~doc:"Also act as a replication primary: stream page deltas to replicas on $(docv) (0 = ephemeral).")
  in
  let run file port primary slowlog_ms =
    apply_slowlog slowlog_ms;
    with_db file (fun db ->
        match primary with
        | None -> Pserver.Http_server.serve db ~port ()
        | Some rport ->
            let feed = Prepl.Feed.create (Database.store db) in
            let srv = Prepl.Feed.serve feed ~port:rport in
            Printf.printf "prometheus: replication feed on port %d (stream %d)\n%!"
              srv.Prepl.Feed.port (Prepl.Feed.stream_id feed);
            Fun.protect
              ~finally:(fun () ->
                Prepl.Feed.stop_server srv;
                Prepl.Feed.detach feed)
              (fun () ->
                Pserver.Http_server.serve db ~port
                  ~repl_status:(fun () -> Prepl.Feed.status_json feed)
                  ()))
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Serve the database over HTTP (optionally as a replication primary).")
    Term.(const run $ db_arg $ port_arg $ primary $ slowlog_arg)

let replica_cmd =
  let from =
    Arg.(
      required
      & opt (some string) None
      & info [ "from" ] ~docv:"HOST:PORT" ~doc:"Primary replication feed to follow.")
  in
  let run file from port slowlog_ms =
    apply_slowlog slowlog_ms;
    let host, rport =
      match String.rindex_opt from ':' with
      | Some i -> (
          let h = String.sub from 0 i in
          let p = String.sub from (i + 1) (String.length from - i - 1) in
          match int_of_string_opt p with
          | Some p -> ((if h = "" then "127.0.0.1" else h), p)
          | None -> (Printf.eprintf "pdb replica: bad --from %S\n" from; exit 2))
      | None -> (Printf.eprintf "pdb replica: bad --from %S (want HOST:PORT)\n" from; exit 2)
    in
    let sess = Prepl.Replica.start ~host ~port:rport file in
    let apply = sess.Prepl.Replica.apply in
    (* Wait for the bootstrap snapshot before serving: until it lands
       there is no database file to open. *)
    while
      Prepl.Replica.Apply.with_lock apply (fun () ->
          apply.Prepl.Replica.Apply.pager = None)
    do
      Thread.delay 0.05
    done;
    (* Serve a read-only database handle, refreshed (under the applier
       lock) whenever the applied LSN has advanced.  The model layer's
       mirror is loaded eagerly at open, so requests never touch pages
       the applier is rewriting. *)
    let cached : (int * Database.t) option ref = ref None in
    let provider () =
      Prepl.Replica.Apply.with_lock apply (fun () ->
          let lsn =
            match apply.Prepl.Replica.Apply.pager with
            | Some p -> Pstore.Pager.lsn p
            | None -> -1
          in
          match !cached with
          | Some (l, db) when l = lsn -> db
          | prev ->
              (match prev with Some (_, db) -> (try Database.close db with _ -> ()) | None -> ());
              let db = Database.open_ ~readonly:true file in
              cached := Some (lsn, db);
              db)
    in
    let db = provider () in
    Fun.protect
      ~finally:(fun () ->
        Prepl.Replica.stop sess;
        match !cached with Some (_, db) -> (try Database.close db with _ -> ()) | None -> ())
      (fun () ->
        Pserver.Http_server.serve db ~port ~readonly:true ~db_provider:provider
          ~repl_status:(fun () -> Prepl.Replica.status_json sess)
          ())
  in
  Cmd.v
    (Cmd.info "replica"
       ~doc:"Follow a primary's replication feed and serve the replica read-only over HTTP.")
    Term.(const run $ db_arg $ from $ port_arg $ slowlog_arg)

(* --- schema loading ----------------------------------------------------------- *)

let load_schema_cmd =
  let odl =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"ODL" ~doc:"ODL schema file.")
  in
  let run file odl =
    with_db file (fun db ->
        Podl.Odl.load_file db odl;
        Printf.printf "schema loaded from %s into %s\n" odl file)
  in
  Cmd.v (Cmd.info "load-schema" ~doc:"Load an ODL schema file into the database.")
    Term.(const run $ db_arg $ odl)

let dump_schema_cmd =
  let run file =
    with_db file (fun db -> print_string (Podl.Odl.print (Database.schema db)))
  in
  Cmd.v (Cmd.info "dump-schema" ~doc:"Export the schema as ODL text.")
    Term.(const run $ db_arg)

(* --- demo ------------------------------------------------------------------- *)

let demo_cmd =
  let run file =
    with_db file (fun db ->
        Taxonomy.Tax_schema.install db;
        let flora = Taxonomy.Flora_gen.generate db () in
        let ctx2 = Taxonomy.Flora_gen.perturb db flora () in
        let root = List.hd flora.Taxonomy.Flora_gen.root_taxa in
        ignore (Taxonomy.Derivation.derive db ~ctx:flora.Taxonomy.Flora_gen.ctx ~root ());
        Printf.printf
          "demo flora written to %s:\n  %d species taxa, %d specimens\n  classifications: #%d and #%d\n\
           try: pdb query %s \"select n.epithet from Name n where n.rank = 'Species'\"\n"
          file
          (List.length flora.Taxonomy.Flora_gen.species_taxa)
          (List.length flora.Taxonomy.Flora_gen.specimens)
          flora.Taxonomy.Flora_gen.ctx ctx2 file)
  in
  Cmd.v (Cmd.info "demo" ~doc:"Populate a demo taxonomic database.") Term.(const run $ db_arg)

let () =
  let info = Cmd.info "pdb" ~version:"1.0" ~doc:"Prometheus taxonomic database tool" in
  exit (Cmd.eval (Cmd.group info [ query_cmd; check_cmd; schema_cmd; contexts_cmd; stats_cmd; metrics_cmd; trace_cmd; serve_cmd; replica_cmd; demo_cmd; load_schema_cmd; dump_schema_cmd ]))
