(* pdb — the Prometheus database command-line tool.

   Subcommands:
     pdb query FILE QUERY       run a POOL query against a database
     pdb check FILE QUERY       static-check a POOL query
     pdb schema FILE            print classes and relationship classes
     pdb contexts FILE          list classifications
     pdb stats FILE             storage statistics
     pdb metrics FILE           Prometheus text exposition of all metrics
     pdb trace FILE QUERY       run a query with span tracing, print the tree
     pdb serve FILE [-p PORT]   HTTP interface (thesis 6.1.7)
     pdb demo FILE              populate FILE with a demo flora
*)

open Cmdliner
open Pmodel

let db_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Database file.")

let with_db file f =
  let db = Database.open_ file in
  Fun.protect ~finally:(fun () -> Database.close db) (fun () -> f db)

(* --- query ----------------------------------------------------------- *)

let query_cmd =
  let q = Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"POOL query.") in
  let run file query =
    with_db file (fun db ->
        match Pool_lang.Pool.query db query with
        | Value.VList rows ->
            List.iter (fun r -> print_endline (Value.to_string r)) rows;
            Printf.printf "(%d rows)\n" (List.length rows)
        | v -> print_endline (Value.to_string v))
  in
  Cmd.v (Cmd.info "query" ~doc:"Run a POOL query.") Term.(const run $ db_arg $ q)

let check_cmd =
  let q = Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"POOL query.") in
  let run file query =
    with_db file (fun db ->
        match Pool_lang.Typecheck.check_string (Database.schema db) query with
        | [] -> print_endline "ok"
        | errs ->
            List.iter
              (fun (e : Pool_lang.Typecheck.error) ->
                Printf.printf "error: %s\n  in: %s\n" e.Pool_lang.Typecheck.message
                  e.Pool_lang.Typecheck.expr)
              errs;
            exit 1)
  in
  Cmd.v (Cmd.info "check" ~doc:"Static-check a POOL query.") Term.(const run $ db_arg $ q)

(* --- introspection ------------------------------------------------------ *)

let schema_cmd =
  let run file = with_db file (fun db -> print_string (Pserver.Http_server.schema_text db)) in
  Cmd.v (Cmd.info "schema" ~doc:"Print the database schema.") Term.(const run $ db_arg)

let contexts_cmd =
  let run file =
    with_db file (fun db ->
        List.iter (fun (oid, name) -> Printf.printf "#%d %s\n" oid name) (Database.contexts db))
  in
  Cmd.v (Cmd.info "contexts" ~doc:"List classifications.") Term.(const run $ db_arg)

let stats_cmd =
  let run file =
    with_db file (fun db ->
        let s = Pstore.Store.stats (Database.store db) in
        Printf.printf
          "objects       %d\npages         %d\npage reads    %d\npage writes   %d\nevictions     %d\njournal bytes %d\n"
          s.Pstore.Store.objects s.Pstore.Store.pages s.Pstore.Store.page_reads
          s.Pstore.Store.page_writes s.Pstore.Store.evictions s.Pstore.Store.journal_bytes;
        let q = Pool_lang.Pool.stats db in
        Printf.printf
          "index probes  %d\nrange scans   %d\nhash joins    %d\nextent scans  %d\nplan hits     %d\nplan misses   %d\nadj rebuilds  %d\n"
          q.Pool_lang.Eval.index_probes q.Pool_lang.Eval.range_scans q.Pool_lang.Eval.hash_joins
          q.Pool_lang.Eval.extent_scans q.Pool_lang.Eval.plan_cache_hits
          q.Pool_lang.Eval.plan_cache_misses q.Pool_lang.Eval.adjacency_rebuilds)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print storage statistics.") Term.(const run $ db_arg)

let metrics_cmd =
  let run file = with_db file (fun db -> print_string (Pserver.Http_server.metrics_text db)) in
  Cmd.v
    (Cmd.info "metrics" ~doc:"Print all metrics in Prometheus text exposition format.")
    Term.(const run $ db_arg)

let trace_cmd =
  let q = Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"POOL query.") in
  let run file query =
    with_db file (fun db ->
        Pobs.Trace.enabled := true;
        Pobs.Trace.set_capacity 4096;
        let v = Pool_lang.Pool.query db query in
        Pobs.Trace.enabled := false;
        let rows = match v with Value.VList l | Value.VSet l | Value.VBag l -> l | v -> [ v ] in
        Printf.printf "(%d rows)\n\n" (List.length rows);
        print_string (Pobs.Trace.to_text ()))
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run a POOL query with span tracing and print the span tree.")
    Term.(const run $ db_arg $ q)

(* --- server --------------------------------------------------------------- *)

let serve_cmd =
  let port =
    Arg.(value & opt int 8080 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Port to listen on.")
  in
  let run file port = with_db file (fun db -> Pserver.Http_server.serve db ~port ()) in
  Cmd.v (Cmd.info "serve" ~doc:"Serve the database over HTTP.") Term.(const run $ db_arg $ port)

(* --- schema loading ----------------------------------------------------------- *)

let load_schema_cmd =
  let odl =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"ODL" ~doc:"ODL schema file.")
  in
  let run file odl =
    with_db file (fun db ->
        Podl.Odl.load_file db odl;
        Printf.printf "schema loaded from %s into %s\n" odl file)
  in
  Cmd.v (Cmd.info "load-schema" ~doc:"Load an ODL schema file into the database.")
    Term.(const run $ db_arg $ odl)

let dump_schema_cmd =
  let run file =
    with_db file (fun db -> print_string (Podl.Odl.print (Database.schema db)))
  in
  Cmd.v (Cmd.info "dump-schema" ~doc:"Export the schema as ODL text.")
    Term.(const run $ db_arg)

(* --- demo ------------------------------------------------------------------- *)

let demo_cmd =
  let run file =
    with_db file (fun db ->
        Taxonomy.Tax_schema.install db;
        let flora = Taxonomy.Flora_gen.generate db () in
        let ctx2 = Taxonomy.Flora_gen.perturb db flora () in
        let root = List.hd flora.Taxonomy.Flora_gen.root_taxa in
        ignore (Taxonomy.Derivation.derive db ~ctx:flora.Taxonomy.Flora_gen.ctx ~root ());
        Printf.printf
          "demo flora written to %s:\n  %d species taxa, %d specimens\n  classifications: #%d and #%d\n\
           try: pdb query %s \"select n.epithet from Name n where n.rank = 'Species'\"\n"
          file
          (List.length flora.Taxonomy.Flora_gen.species_taxa)
          (List.length flora.Taxonomy.Flora_gen.specimens)
          flora.Taxonomy.Flora_gen.ctx ctx2 file)
  in
  Cmd.v (Cmd.info "demo" ~doc:"Populate a demo taxonomic database.") Term.(const run $ db_arg)

let () =
  let info = Cmd.info "pdb" ~version:"1.0" ~doc:"Prometheus taxonomic database tool" in
  exit (Cmd.eval (Cmd.group info [ query_cmd; check_cmd; schema_cmd; contexts_cmd; stats_cmd; metrics_cmd; trace_cmd; serve_cmd; demo_cmd; load_schema_cmd; dump_schema_cmd ]))
