(* pdb — the Prometheus database command-line tool.

   Subcommands:
     pdb query FILE QUERY       run a POOL query against a database
     pdb check FILE QUERY       static-check a POOL query
     pdb schema FILE            print classes and relationship classes
     pdb contexts FILE          list classifications
     pdb stats FILE             storage statistics
     pdb metrics FILE           Prometheus text exposition of all metrics
     pdb trace FILE QUERY       run a query with span tracing, print the tree
     pdb verify FILE            verify every page checksum (exit 1 on corruption)
     pdb scrub FILE [--from H:P] scrub checksums; repair from a primary
     pdb serve FILE [-p PORT]   HTTP interface (thesis 6.1.7)
     pdb replica FILE --from H:P  follow a primary, serve read-only
     pdb router --backends H:P,H:P  fleet front-end: balance, failover
     pdb demo FILE              populate FILE with a demo flora
*)

open Cmdliner
open Pmodel

let db_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Database file.")

let with_db file f =
  let db = Database.open_ file in
  Fun.protect ~finally:(fun () -> Database.close db) (fun () -> f db)

(* --- query ----------------------------------------------------------- *)

let query_cmd =
  let q = Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"POOL query.") in
  let run file query =
    with_db file (fun db ->
        match Pool_lang.Pool.query db query with
        | Value.VList rows ->
            List.iter (fun r -> print_endline (Value.to_string r)) rows;
            Printf.printf "(%d rows)\n" (List.length rows)
        | v -> print_endline (Value.to_string v))
  in
  Cmd.v (Cmd.info "query" ~doc:"Run a POOL query.") Term.(const run $ db_arg $ q)

let check_cmd =
  let q = Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"POOL query.") in
  let run file query =
    with_db file (fun db ->
        match Pool_lang.Typecheck.check_string (Database.schema db) query with
        | [] -> print_endline "ok"
        | errs ->
            List.iter
              (fun (e : Pool_lang.Typecheck.error) ->
                Printf.printf "error: %s\n  in: %s\n" e.Pool_lang.Typecheck.message
                  e.Pool_lang.Typecheck.expr)
              errs;
            exit 1)
  in
  Cmd.v (Cmd.info "check" ~doc:"Static-check a POOL query.") Term.(const run $ db_arg $ q)

(* --- introspection ------------------------------------------------------ *)

let schema_cmd =
  let run file = with_db file (fun db -> print_string (Pserver.Http_server.schema_text db)) in
  Cmd.v (Cmd.info "schema" ~doc:"Print the database schema.") Term.(const run $ db_arg)

let contexts_cmd =
  let run file =
    with_db file (fun db ->
        List.iter (fun (oid, name) -> Printf.printf "#%d %s\n" oid name) (Database.contexts db))
  in
  Cmd.v (Cmd.info "contexts" ~doc:"List classifications.") Term.(const run $ db_arg)

(* Minimal HTTP/1.0 GET, for `pdb stats --url` — good enough to ask a
   server (or a router) for its /stats without pulling in a client
   library. *)
let http_get_url (url : string) : string =
  let rest =
    if String.length url >= 7 && String.sub url 0 7 = "http://" then
      String.sub url 7 (String.length url - 7)
    else url
  in
  let hostport, path =
    match String.index_opt rest '/' with
    | Some i -> (String.sub rest 0 i, String.sub rest i (String.length rest - i))
    | None -> (rest, "/stats")
  in
  let host, port =
    match String.rindex_opt hostport ':' with
    | Some i -> (
        let h = String.sub hostport 0 i in
        let p = String.sub hostport (i + 1) (String.length hostport - i - 1) in
        match int_of_string_opt p with
        | Some p -> ((if h = "" then "127.0.0.1" else h), p)
        | None ->
            Printf.eprintf "pdb stats: bad --url %S\n" url;
            exit 2)
    | None -> (hostport, 80)
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with _ -> ())
    (fun () ->
      (try Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
       with Unix.Unix_error (e, _, _) ->
         Printf.eprintf "pdb stats: connect %s:%d: %s\n" host port (Unix.error_message e);
         exit 1);
      let req =
        Printf.sprintf "GET %s HTTP/1.0\r\nHost: %s\r\nConnection: close\r\n\r\n" path host
      in
      let _ = Unix.write_substring sock req 0 (String.length req) in
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read sock chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
      in
      drain ();
      let all = Buffer.contents buf in
      (* strip the header block *)
      let n = String.length all in
      let rec find i =
        if i + 3 >= n then None
        else if all.[i] = '\r' && all.[i + 1] = '\n' && all.[i + 2] = '\r' && all.[i + 3] = '\n'
        then Some (i + 4)
        else find (i + 1)
      in
      match find 0 with Some i -> String.sub all i (n - i) | None -> all)

let stats_cmd =
  let url =
    Arg.(
      value
      & opt (some string) None
      & info [ "url" ] ~docv:"URL"
          ~doc:
            "Fetch statistics from a running server (or cluster router) over \
             HTTP instead of opening a database file. $(docv) may omit the \
             path, which defaults to /stats.")
  in
  let file_opt =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Database file.")
  in
  let run_url url = print_string (http_get_url url) in
  let run_file file =
    with_db file (fun db ->
        let s = Pstore.Store.stats (Database.store db) in
        Printf.printf
          "objects       %d\npages         %d\npage reads    %d\npage writes   %d\nevictions     %d\njournal bytes %d\nsnapshots     %d\npinned vers   %d\nsnap reads    %d\n"
          s.Pstore.Store.objects s.Pstore.Store.pages s.Pstore.Store.page_reads
          s.Pstore.Store.page_writes s.Pstore.Store.evictions s.Pstore.Store.journal_bytes
          s.Pstore.Store.snapshots s.Pstore.Store.pinned_versions s.Pstore.Store.snapshot_reads;
        let q = Pool_lang.Pool.stats db in
        Printf.printf
          "index probes  %d\nrange scans   %d\nhash joins    %d\nextent scans  %d\nplan hits     %d\nplan misses   %d\nadj rebuilds  %d\n"
          q.Pool_lang.Eval.index_probes q.Pool_lang.Eval.range_scans q.Pool_lang.Eval.hash_joins
          q.Pool_lang.Eval.extent_scans q.Pool_lang.Eval.plan_cache_hits
          q.Pool_lang.Eval.plan_cache_misses q.Pool_lang.Eval.adjacency_rebuilds)
  in
  let run file url =
    match (url, file) with
    | Some u, _ -> run_url u
    | None, Some f -> run_file f
    | None, None ->
        Printf.eprintf "pdb stats: need a database FILE or --url URL\n";
        exit 2
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print storage statistics (local file or a running server's /stats).")
    Term.(const run $ file_opt $ url)

let metrics_cmd =
  let run file = with_db file (fun db -> print_string (Pserver.Http_server.metrics_text db)) in
  Cmd.v
    (Cmd.info "metrics" ~doc:"Print all metrics in Prometheus text exposition format.")
    Term.(const run $ db_arg)

let trace_cmd =
  let q = Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"POOL query.") in
  let run file query =
    with_db file (fun db ->
        Pobs.Trace.enabled := true;
        Pobs.Trace.set_capacity 4096;
        let v = Pool_lang.Pool.query db query in
        Pobs.Trace.enabled := false;
        let rows = match v with Value.VList l | Value.VSet l | Value.VBag l -> l | v -> [ v ] in
        Printf.printf "(%d rows)\n\n" (List.length rows);
        print_string (Pobs.Trace.to_text ()))
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run a POOL query with span tracing and print the span tree.")
    Term.(const run $ db_arg $ q)

let parse_host_port ~what spec =
  match String.rindex_opt spec ':' with
  | Some i -> (
      let h = String.sub spec 0 i in
      let p = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt p with
      | Some p -> ((if h = "" then "127.0.0.1" else h), p)
      | None ->
          Printf.eprintf "pdb %s: bad --from %S\n" what spec;
          exit 2)
  | None ->
      Printf.eprintf "pdb %s: bad --from %S (want HOST:PORT)\n" what spec;
      exit 2

(* --- integrity ------------------------------------------------------------ *)

let print_scrub_report (r : Pstore.Pager.scrub_report) =
  List.iter
    (fun (no, expected, got) ->
      Printf.printf "page %6d CORRUPT: stored crc 0x%08x computed 0x%08x\n" no
        expected got)
    r.Pstore.Pager.scrub_corrupt;
  Printf.printf "%d pages scanned, %d skipped, %d corrupt\n"
    r.Pstore.Pager.scrub_scanned r.Pstore.Pager.scrub_skipped
    (List.length r.Pstore.Pager.scrub_corrupt)

(* Scan FILE's checksums and report; exit status is the verdict.
   0 = every page verified, 1 = corruption found (per-page report on
   stdout), 2 = the file cannot be checked at all. *)
let verify_run file =
  if not (Sys.file_exists file) then begin
    Printf.eprintf "pdb verify: no such file: %s\n" file;
    exit 2
  end;
  match Pstore.Pager.open_file file with
  | exception Pstore.Pager.Page_corrupt { page; expected; got } ->
      (* header damage: the file cannot even be opened *)
      Printf.printf "page %6d CORRUPT: stored crc 0x%08x computed 0x%08x\n" page
        expected got;
      Printf.printf "header page corrupt: repair from a peer or restore from a snapshot\n";
      exit 1
  | p ->
      let code =
        Fun.protect
          ~finally:(fun () -> Pstore.Pager.close p)
          (fun () ->
            if not (Pstore.Pager.checksums_enabled p) then begin
              Printf.printf "%s: checksums not enabled (legacy file); nothing to verify\n" file;
              0
            end
            else begin
              let r = Pstore.Pager.scrub p in
              print_scrub_report r;
              if r.Pstore.Pager.scrub_corrupt = [] then 0 else 1
            end)
      in
      exit code

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Verify every page checksum of a database file. Exits 0 when clean, \
          1 with a per-page report when corruption is found.")
    Term.(const verify_run $ db_arg)

let scrub_cmd =
  let from =
    Arg.(
      value
      & opt (some string) None
      & info [ "from" ] ~docv:"HOST:PORT"
          ~doc:
            "Repair corrupt pages from the replication primary at $(docv); \
             without it the scrub only detects and reports.")
  in
  let run file from =
    match from with
    | None -> verify_run file
    | Some spec -> (
        let host, rport = parse_host_port ~what:"scrub" spec in
        match Prepl.Replica.scrub_repair ~host ~port:rport file with
        | `Clean n ->
            Printf.printf "%d pages scanned, 0 corrupt\n" n;
            exit 0
        | `Repaired pages ->
            Printf.printf "repaired %d corrupt page(s) from %s: %s\n"
              (List.length pages) spec
              (String.concat " " (List.map string_of_int pages));
            exit 0
        | `Rebootstrapped lsn ->
            Printf.printf "repair impossible: re-bootstrapped from a full snapshot at lsn %d\n" lsn;
            exit 0
        | exception e ->
            Printf.eprintf "pdb scrub: %s\n" (Printexc.to_string e);
            exit 1)
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Scrub a database file's checksums; with --from, heal corrupt pages \
          from a replication primary (falling back to a full re-bootstrap \
          when in-place repair is impossible).")
    Term.(const run $ db_arg $ from)

(* --- server --------------------------------------------------------------- *)

let port_arg =
  Arg.(value & opt int 8080 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Port to listen on.")

let slowlog_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slowlog-ms" ] ~docv:"MS"
        ~doc:"Slow-query log threshold in milliseconds (default 10).")

let apply_slowlog = function
  | Some ms -> Pobs.Slowlog.set_threshold_ms ms
  | None -> ()

let readers_arg ~default =
  Arg.(
    value
    & opt int default
    & info [ "readers" ] ~docv:"N"
        ~doc:
          "Snapshot-serving reader domains. With $(docv) > 0, GET traffic is \
           served from frozen snapshot views refreshed at the configured lag \
           and mutations batch through the group-commit writer; 0 keeps the \
           legacy single-threaded path.")

let max_lag_arg =
  Arg.(
    value
    & opt float 50.
    & info [ "max-lag-ms" ] ~docv:"MS"
        ~doc:"Maximum staleness of the reader pool's snapshot generation.")

let serve_cmd =
  let primary =
    Arg.(
      value
      & opt (some int) None
      & info [ "primary" ] ~docv:"RPORT"
          ~doc:"Also act as a replication primary: stream page deltas to replicas on $(docv) (0 = ephemeral).")
  in
  let proto =
    Arg.(
      value
      & opt (enum [ ("http", `Http); ("binary", `Binary) ]) `Http
      & info [ "proto" ] ~docv:"PROTO"
          ~doc:
            "Wire protocols to serve. $(b,http) serves HTTP only; $(b,binary) \
             additionally opens a second port speaking the length-prefixed \
             CRC-framed binary POOL protocol (Query/Batch frames).")
  in
  let binary_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "binary-port" ] ~docv:"BPORT"
          ~doc:
            "Port for the binary protocol listener (with --proto binary); \
             defaults to PORT+1.")
  in
  let max_conns =
    Arg.(
      value
      & opt int 1024
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Admission-control bound: connections beyond $(docv) are answered \
             503 + Retry-After and closed instead of being queued without limit.")
  in
  let cluster =
    Arg.(
      value & flag
      & info [ "cluster" ]
          ~doc:
            "Serve as a promotable cluster node (requires --primary RPORT). \
             The binary port accepts Ping/Ctl cluster verbs, so a router can \
             health-check this node and a deposed primary can be demoted to \
             follow a newly elected one in place.")
  in
  let run file port primary proto binary_port max_conns slowlog_ms readers max_lag_ms cluster =
    apply_slowlog slowlog_ms;
    let binary_port =
      match (proto, binary_port) with
      | `Binary, Some p -> Some p
      | `Binary, None -> Some (if port = 0 then 0 else port + 1)
      | `Http, _ -> None
    in
    if cluster then begin
      let rport =
        match primary with
        | Some r -> r
        | None ->
            Printf.eprintf "pdb serve: --cluster requires --primary RPORT\n";
            exit 2
      in
      (* cluster verbs ride the binary protocol: always open that port *)
      let binary_port =
        match binary_port with Some p -> p | None -> (if port = 0 then 0 else port + 1)
      in
      let node =
        Pcluster.Promote.create_leading ~readers:(max 1 readers) ~max_lag_ms
          ~path:file ~host:"127.0.0.1" ~repl_port:rport ()
      in
      Fun.protect
        ~finally:(fun () -> Pcluster.Promote.shutdown node)
        (fun () -> Pcluster.Promote.serve node ~binary_port ~port ())
    end
    else
    with_db file (fun db ->
        match primary with
        | None ->
            Pserver.Http_server.serve db ~port ~readers ~max_lag_ms ~max_conns ?binary_port ()
        | Some rport ->
            let feed = Prepl.Feed.create (Database.store db) in
            let srv = Prepl.Feed.serve feed ~port:rport in
            Printf.printf "prometheus: replication feed on port %d (stream %d)\n%!"
              srv.Prepl.Feed.port (Prepl.Feed.stream_id feed);
            Fun.protect
              ~finally:(fun () ->
                Prepl.Feed.stop_server srv;
                Prepl.Feed.detach feed)
              (fun () ->
                Pserver.Http_server.serve db ~port ~readers ~max_lag_ms ~max_conns ?binary_port
                  ~repl_status:(fun () -> Prepl.Feed.status_json feed)
                  ()))
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Serve the database over HTTP (optionally as a replication primary).")
    Term.(
      const run $ db_arg $ port_arg $ primary $ proto $ binary_port $ max_conns $ slowlog_arg
      $ readers_arg ~default:0 $ max_lag_arg $ cluster)

let replica_cmd =
  let from =
    Arg.(
      required
      & opt (some string) None
      & info [ "from" ] ~docv:"HOST:PORT" ~doc:"Primary replication feed to follow.")
  in
  let scrub_interval =
    Arg.(
      value
      & opt (some float) None
      & info [ "scrub-interval" ] ~docv:"SEC"
          ~doc:
            "Background-scrub the replica file every $(docv) seconds, \
             repairing corrupt pages from the primary.")
  in
  let promotable =
    Arg.(
      value
      & opt (some int) None
      & info [ "promotable" ] ~docv:"RPORT"
          ~doc:
            "Run as a promotable cluster node: open the binary port for \
             Ping/Ctl cluster verbs so a router can elect this replica \
             primary; after promotion it serves its replication feed on \
             $(docv) (0 = ephemeral).")
  in
  let serve_repl =
    Arg.(
      value & flag
      & info [ "serve-repl" ]
          ~doc:
            "Chained replication: republish everything this replica applies \
             as a replication feed on the --promotable port, so downstream \
             replicas can follow this node instead of the primary.")
  in
  let binary_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "binary-port" ] ~docv:"BPORT"
          ~doc:"Binary-protocol port (with --promotable); defaults to PORT+1.")
  in
  let run file from port slowlog_ms scrub_every_s readers max_lag_ms promotable serve_repl
      binary_port =
    apply_slowlog slowlog_ms;
    match promotable with
    | Some rport -> (
        let bport =
          match binary_port with Some b -> b | None -> (if port = 0 then 0 else port + 1)
        in
        match
          Pcluster.Promote.create_following ~readers:(max 1 readers) ~max_lag_ms
            ~cascade:serve_repl ~path:file ~host:"127.0.0.1" ~repl_port:rport
            ~upstream:from ()
        with
        | Error e ->
            Printf.eprintf "pdb replica: %s\n" e;
            exit 1
        | Ok node ->
            Fun.protect
              ~finally:(fun () -> Pcluster.Promote.shutdown node)
              (fun () -> Pcluster.Promote.serve node ~binary_port:bport ~port ()))
    | None ->
    let host, rport = parse_host_port ~what:"replica" from in
    let sess = Prepl.Replica.start ?scrub_every_s ~host ~port:rport file in
    let apply = sess.Prepl.Replica.apply in
    (* Wait for the bootstrap snapshot before serving: until it lands
       there is no database file to open. *)
    while
      Prepl.Replica.Apply.with_lock apply (fun () ->
          apply.Prepl.Replica.Apply.pager = None)
    do
      Thread.delay 0.05
    done;
    (* Replica serving goes through the same snapshot-routing path as
       the primary: a reader pool whose generations are read-only
       handles opened under the applier lock, so requests never race
       delta apply, and a client's X-PDB-Min-LSN token is answered
       honestly (catch-up wait, then 503) instead of from a handle the
       applier is rewriting. *)
    let readers = max 1 readers in
    let open_view () =
      Prepl.Replica.Apply.with_lock apply (fun () -> Database.open_ ~readonly:true file)
    in
    let source =
      {
        Pserver.Reader_pool.src_lsn =
          (fun () ->
            Prepl.Replica.Apply.with_lock apply (fun () ->
                match apply.Prepl.Replica.Apply.pager with
                | Some p -> Pstore.Pager.lsn p
                | None -> -1));
        src_build =
          (fun n ->
            (* One read-only handle per generation, shared by all
               readers: the mirror is immutable once loaded. *)
            let db = open_view () in
            (Array.make n db, [ db ]));
      }
    in
    let pool = Pserver.Reader_pool.create ~max_lag_ms ~readers source in
    let db = open_view () in
    Fun.protect
      ~finally:(fun () ->
        Prepl.Replica.stop sess;
        Pserver.Reader_pool.stop pool;
        try Database.close db with _ -> ())
      (fun () ->
        Pserver.Http_server.serve db ~port ~readonly:true ~pool
          ~repl_status:(fun () -> Prepl.Replica.status_json sess)
          ())
  in
  Cmd.v
    (Cmd.info "replica"
       ~doc:"Follow a primary's replication feed and serve the replica read-only over HTTP.")
    Term.(
      const run $ db_arg $ from $ port_arg $ slowlog_arg $ scrub_interval
      $ readers_arg ~default:1 $ max_lag_arg $ promotable $ serve_repl $ binary_port)

(* --- router ---------------------------------------------------------------- *)

let router_cmd =
  let backends =
    Arg.(
      required
      & opt (some string) None
      & info [ "backends" ] ~docv:"HOST:BPORT,..."
          ~doc:
            "Comma-separated binary-protocol addresses of the fleet's \
             backends (primaries and replicas alike — roles are discovered \
             by health probing).")
  in
  let sync_writes =
    Arg.(
      value & flag
      & info [ "sync-writes" ]
          ~doc:
            "Semi-synchronous writes: acknowledge a mutation only once some \
             healthy replica reports having applied its LSN, so a primary \
             dying right after the ack cannot lose acknowledged writes. \
             Degrades to asynchronous when no healthy replica is in view.")
  in
  let probe_interval =
    Arg.(
      value
      & opt float 0.1
      & info [ "probe-interval" ] ~docv:"SEC"
          ~doc:"Health-probe period per backend.")
  in
  let fail_threshold =
    Arg.(
      value
      & opt int 3
      & info [ "fail-threshold" ] ~docv:"N"
          ~doc:"Consecutive failed probes before a backend is marked down.")
  in
  let run port backends sync_writes probe_interval fail_threshold =
    let addrs =
      String.split_on_char ',' backends
      |> List.filter (fun s -> String.trim s <> "")
      |> List.map (fun s -> parse_host_port ~what:"router" (String.trim s))
    in
    if addrs = [] then begin
      Printf.eprintf "pdb router: --backends lists no addresses\n";
      exit 2
    end;
    let r =
      Pcluster.Router.create ~sync_writes ~probe_every_s:probe_interval
        ~fail_threshold addrs
    in
    Pcluster.Router.serve r ~port ()
  in
  Cmd.v
    (Cmd.info "router"
       ~doc:
         "Front a replica fleet: load-balance reads across healthy replicas \
          (honouring X-PDB-Min-LSN read-your-writes tokens), forward writes \
          to the primary, and promote a replica when the primary dies.")
    Term.(const run $ port_arg $ backends $ sync_writes $ probe_interval $ fail_threshold)

(* --- schema loading ----------------------------------------------------------- *)

let load_schema_cmd =
  let odl =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"ODL" ~doc:"ODL schema file.")
  in
  let run file odl =
    with_db file (fun db ->
        Podl.Odl.load_file db odl;
        Printf.printf "schema loaded from %s into %s\n" odl file)
  in
  Cmd.v (Cmd.info "load-schema" ~doc:"Load an ODL schema file into the database.")
    Term.(const run $ db_arg $ odl)

let dump_schema_cmd =
  let run file =
    with_db file (fun db -> print_string (Podl.Odl.print (Database.schema db)))
  in
  Cmd.v (Cmd.info "dump-schema" ~doc:"Export the schema as ODL text.")
    Term.(const run $ db_arg)

(* --- demo ------------------------------------------------------------------- *)

let demo_cmd =
  let run file =
    with_db file (fun db ->
        Taxonomy.Tax_schema.install db;
        let flora = Taxonomy.Flora_gen.generate db () in
        let ctx2 = Taxonomy.Flora_gen.perturb db flora () in
        let root = List.hd flora.Taxonomy.Flora_gen.root_taxa in
        ignore (Taxonomy.Derivation.derive db ~ctx:flora.Taxonomy.Flora_gen.ctx ~root ());
        Printf.printf
          "demo flora written to %s:\n  %d species taxa, %d specimens\n  classifications: #%d and #%d\n\
           try: pdb query %s \"select n.epithet from Name n where n.rank = 'Species'\"\n"
          file
          (List.length flora.Taxonomy.Flora_gen.species_taxa)
          (List.length flora.Taxonomy.Flora_gen.specimens)
          flora.Taxonomy.Flora_gen.ctx ctx2 file)
  in
  Cmd.v (Cmd.info "demo" ~doc:"Populate a demo taxonomic database.") Term.(const run $ db_arg)

let () =
  let info = Cmd.info "pdb" ~version:"1.0" ~doc:"Prometheus taxonomic database tool" in
  exit (Cmd.eval (Cmd.group info [ query_cmd; check_cmd; schema_cmd; contexts_cmd; stats_cmd; metrics_cmd; trace_cmd; verify_cmd; scrub_cmd; serve_cmd; replica_cmd; router_cmd; demo_cmd; load_schema_cmd; dump_schema_cmd ]))
