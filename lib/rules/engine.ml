(** The rules layer: subscribes rules to the event bus and schedules
    their evaluation (thesis 5.2.2 and 6.1.6).

    - Immediate rules run synchronously inside the mutating operation;
      a Violation propagates out of the operation and the enclosing
      [with_tx] aborts, realising "automatic transaction abortion".
    - Deferred rules are queued and evaluated when the commit event
      fires, against the final state of the transaction, in priority
      order; a violation vetoes the commit.
    - Repair actions may themselves trigger events; a cascade depth
      limit guards against non-terminating rule cascades. *)

open Pevent
open Pmodel

let src = Logs.Src.create "prometheus.rules" ~doc:"Prometheus rule engine"

module Log = (val Logs.src_log src)

let m_firings =
  Pobs.Metrics.counter "pdb_rule_firings_total" ~help:"Rule evaluations (applicable rules)"

let m_violations =
  Pobs.Metrics.counter "pdb_rule_violations_total" ~help:"Rule conditions that failed"

let m_aborts =
  Pobs.Metrics.counter "pdb_rule_aborts_total" ~help:"Violations that aborted a transaction"

let m_repairs = Pobs.Metrics.counter "pdb_rule_repairs_total" ~help:"Repair actions run"

(* OCaml only links an archive member that is referenced; the server
   calls this before exposition so the rule-engine families above are
   always present in /metrics, rules loaded or not. *)
let ensure_metrics () = ()

type queued = { rule : Rule.t; ev : Event.primitive }

type t = {
  db : Database.t;
  mutable subs : (string * Bus.sub_id) list;
  deferred : queued Queue.t;
  mutable warnings : (string * string) list; (* rule name, message *)
  mutable cascade_depth : int;
  max_cascade : int;
  mutable enabled : bool;
  (* built-in deferred validation of minimum cardinalities *)
  mutable check_min_cards : bool;
}

let warnings t = List.rev t.warnings
let clear_warnings t = t.warnings <- []
let set_enabled t b = t.enabled <- b

let handle_violation t (rule : Rule.t) ev =
  Pobs.Metrics.inc m_violations;
  let message =
    Format.asprintf "%s (event: %a)" rule.Rule.message Event.pp_primitive ev
  in
  let abort ~message =
    Pobs.Metrics.inc m_aborts;
    raise (Rule.violation ~rule:rule.Rule.name ~message)
  in
  match rule.Rule.on_violation with
  | Rule.Abort -> abort ~message
  | Rule.Warn ->
      Log.warn (fun m -> m "rule %s violated: %s" rule.Rule.name message);
      t.warnings <- (rule.Rule.name, message) :: t.warnings
  | Rule.Repair f ->
      if t.cascade_depth >= t.max_cascade then
        abort ~message:(message ^ " (repair cascade limit reached)");
      Pobs.Metrics.inc m_repairs;
      t.cascade_depth <- t.cascade_depth + 1;
      Fun.protect ~finally:(fun () -> t.cascade_depth <- t.cascade_depth - 1) (fun () -> f t.db ev)
  | Rule.Interactive ask -> if not (ask message) then abort ~message

let applies (rule : Rule.t) db ev =
  match rule.Rule.applicability with None -> true | Some p -> p db ev

let evaluate t (rule : Rule.t) ev =
  if applies rule t.db ev then begin
    Pobs.Metrics.inc m_firings;
    if not (rule.Rule.condition t.db ev) then handle_violation t rule ev
  end

let run_deferred t =
  (* drain in priority order, stable within a priority *)
  let items = List.of_seq (Queue.to_seq t.deferred) in
  Queue.clear t.deferred;
  let items =
    List.stable_sort (fun a b -> compare a.rule.Rule.priority b.rule.Rule.priority) items
  in
  List.iter (fun { rule; ev } -> evaluate t rule ev) items;
  if t.check_min_cards then
    match Database.validate_min_cards t.db with
    | [] -> ()
    | errs ->
        raise (Rule.violation ~rule:"__min_cardinality" ~message:(String.concat "; " errs))

let create ?(max_cascade = 16) ?(check_min_cards = true) db : t =
  let t =
    {
      db;
      subs = [];
      deferred = Queue.create ();
      warnings = [];
      cascade_depth = 0;
      max_cascade;
      enabled = true;
      check_min_cards;
    }
  in
  let bus = Database.bus db in
  (* commit/abort handling for the deferred queue *)
  ignore
    (Bus.subscribe bus ~name:"__rules_commit" Event.On_commit (fun _ ->
         if t.enabled then run_deferred t else Queue.clear t.deferred));
  ignore
    (Bus.subscribe bus ~name:"__rules_abort" Event.On_abort (fun _ -> Queue.clear t.deferred));
  t

let add_rule t (rule : Rule.t) : unit =
  let bus = Database.bus t.db in
  let id =
    Bus.subscribe bus ~name:rule.Rule.name rule.Rule.event (fun ev ->
        if t.enabled then
          match rule.Rule.timing with
          | Rule.Immediate -> evaluate t rule ev
          | Rule.Deferred ->
              if Database.in_tx t.db then Queue.add { rule; ev } t.deferred
              else evaluate t rule ev (* outside a tx, deferred = immediate *))
  in
  t.subs <- (rule.Rule.name, id) :: t.subs

let add_rules t rules = List.iter (add_rule t) rules

let remove_rule t name =
  let bus = Database.bus t.db in
  List.iter (fun (n, id) -> if n = name then Bus.unsubscribe bus id) t.subs;
  t.subs <- List.filter (fun (n, _) -> n <> name) t.subs

let rule_names t = List.rev_map fst t.subs
