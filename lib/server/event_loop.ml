(** An epoll/poll-based event loop: the serving front-end.

    One loop thread owns every socket: it accepts, reads, parses
    protocol frames out of bounded per-connection buffers, and writes
    responses — all on non-blocking file descriptors multiplexed
    through epoll (Linux) or [Unix.select] (fallback, or forced with
    [PDB_POLLER=select]).  Parsed requests are executed on a small pool
    of worker threads (request handlers may block: reader-pool condvar
    waits, group-commit fsyncs), and completed responses come back to
    the loop over a self-pipe, so the loop thread itself never blocks
    on anything but the poller.

    Per-connection state machine:

    {v
      Accept -> Reading -(complete request)-> Executing -> Writing
                   ^                                          |
                   +---------------- keep-alive --------------+
    v}

    - {b Pipelining}: a read may complete several requests; they queue
      per connection and execute one at a time, responses written in
      request order.  The pending queue is bounded ([pipeline_depth]);
      past it the loop simply stops reading that socket — backpressure
      into the kernel buffer, never unbounded memory.
    - {b Bounded buffers}: input is capped by the parser's own limits
      (it must reject oversized frames), output by [max_buffer]; a
      connection over the output cap stops being read until it drains.
    - {b Admission control}: at most [max_conns] connections are
      served; beyond that, new arrivals are still accepted but answered
      with the listener's [l_overload] response (HTTP: 503 +
      Retry-After) and closed — never silently dropped.
    - {b Deadlines}: a connection holding a partial request past
      [timeout_s] is answered with [l_timeout] (HTTP: 408) and closed;
      an idle keep-alive connection past the deadline is closed
      silently.  The wall clock spans all reads of one request, so a
      byte-at-a-time trickle cannot hold a slot forever.
    - {b Ordering}: a protocol violation or deadline in the middle of a
      pipelined burst is answered {e after} the responses to the
      requests already parsed, never interleaved ahead of them.

    The protocol is pluggable (the [l_parse]/[execute] pair), so the
    HTTP front-end and the binary POOL protocol share this loop, and
    one loop serves both on different listening sockets. *)

(* --- poller: epoll with a select fallback ------------------------------- *)

external raw_epoll_create : unit -> int = "pdb_epoll_create"
external raw_epoll_ctl : int -> int -> int -> int -> int = "pdb_epoll_ctl"
external raw_epoll_wait : int -> int -> int array = "pdb_epoll_wait"

let ev_read = 1
let ev_write = 2

(* Unix.file_descr is an int on every Unix port of OCaml; the poller
   traffics in ints so the epoll stub stays trivial. *)
let fd_int : Unix.file_descr -> int = Obj.magic
let int_fd : int -> Unix.file_descr = Obj.magic

module Poller = struct
  type backend = Epoll of int | Select

  type t = {
    backend : backend;
    interest : (int, int) Hashtbl.t; (* fd -> mask, the registered set *)
  }

  let backend_name t = match t.backend with Epoll _ -> "epoll" | Select -> "select"

  let create () : t =
    let want_select =
      match Sys.getenv_opt "PDB_POLLER" with Some "select" -> true | _ -> false
    in
    let backend =
      if want_select then Select
      else match raw_epoll_create () with ep when ep >= 0 -> Epoll ep | _ -> Select
    in
    { backend; interest = Hashtbl.create 64 }

  (** Set the interest mask for [fd]; [mask = 0] deregisters. *)
  let set t (fd : Unix.file_descr) (mask : int) =
    let fd = fd_int fd in
    let prev = Hashtbl.find_opt t.interest fd in
    match (prev, mask) with
    | None, 0 -> ()
    | Some m, _ when m = mask -> ()
    | _ ->
        if mask = 0 then Hashtbl.remove t.interest fd
        else Hashtbl.replace t.interest fd mask;
        (match t.backend with
        | Select -> ()
        | Epoll ep ->
            let op =
              match (prev, mask) with
              | None, _ -> 0 (* add *)
              | Some _, 0 -> 2 (* del *)
              | Some _, _ -> 1 (* mod *)
            in
            ignore (raw_epoll_ctl ep op fd mask))

  let remove t fd = set t fd 0

  (** Wait for events; returns [(fd, mask)] pairs.  A poller error or
      EINTR returns the empty list — callers re-check their stop flag
      and come back. *)
  let wait t ~timeout_s : (Unix.file_descr * int) list =
    match t.backend with
    | Epoll ep ->
        let a = raw_epoll_wait ep (int_of_float (timeout_s *. 1000.)) in
        let n = Array.length a / 2 in
        List.init n (fun i -> (int_fd a.(2 * i), a.((2 * i) + 1)))
    | Select -> (
        let rd = ref [] and wr = ref [] in
        Hashtbl.iter
          (fun fd m ->
            if m land ev_read <> 0 then rd := int_fd fd :: !rd;
            if m land ev_write <> 0 then wr := int_fd fd :: !wr)
          t.interest;
        match Unix.select !rd !wr [] timeout_s with
        | r, w, _ ->
            let tbl = Hashtbl.create 16 in
            List.iter (fun fd -> Hashtbl.replace tbl (fd_int fd) ev_read) r;
            List.iter
              (fun fd ->
                let prev = Option.value ~default:0 (Hashtbl.find_opt tbl (fd_int fd)) in
                Hashtbl.replace tbl (fd_int fd) (prev lor ev_write))
              w;
            Hashtbl.fold (fun fd m acc -> (int_fd fd, m) :: acc) tbl []
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> [])

  let close t =
    match t.backend with
    | Epoll ep -> ( try Unix.close (int_fd ep) with Unix.Unix_error _ -> ())
    | Select -> ()
end

(* --- protocol seam ------------------------------------------------------- *)

type response = {
  rsp_data : string;  (** raw bytes to write back *)
  rsp_close : bool;  (** close the connection after the write drains *)
}

type 'req parse_result =
  | Parsed of 'req * int  (** one complete request and the bytes it consumed *)
  | Incomplete  (** need more bytes *)
  | Reject of response
      (** protocol violation: answer this (after any already-parsed
          requests) and close — the parser is the layer that enforces
          size bounds (414/431/oversized frame) *)

type 'req listener = {
  l_sock : Unix.file_descr;  (** listening socket; the loop owns it *)
  l_parse : string -> off:int -> 'req parse_result;
      (** try to extract one request from the unconsumed input *)
  l_overload : response;  (** admission-control answer (503) *)
  l_timeout : response;  (** mid-request deadline answer (408) *)
}

(* --- connections --------------------------------------------------------- *)

type 'req conn = {
  c_fd : Unix.file_descr;
  c_lst : 'req listener;
  mutable c_in : string;  (** unconsumed input bytes *)
  mutable c_out : string;  (** response bytes not yet fully written *)
  mutable c_out_off : int;
  mutable c_busy : bool;  (** a request is executing on a worker *)
  c_pending : 'req Queue.t;  (** parsed requests awaiting execution *)
  mutable c_final : response option;
      (** reject/timeout response, emitted after pending drains *)
  mutable c_close_after : bool;  (** stop reading; close once drained *)
  mutable c_lingering : bool;  (** write side shut; draining client bytes *)
  mutable c_deadline : int;  (** monotonic ns; request-read deadline *)
  mutable c_closed : bool;
  mutable c_mask : int;  (** current poller interest *)
}

type 'req t = {
  poller : Poller.t;
  listeners : 'req listener list;
  execute : 'req -> response;
  conns : (int, 'req conn) Hashtbl.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  jobs : ('req conn * 'req) Queue.t;
  jmu : Mutex.t;
  jcv : Condition.t;
  done_q : ('req conn * response) Queue.t;
  dmu : Mutex.t;
  mutable stop_workers : bool;
  max_conns : int;
  max_buffer : int;
  pipeline_depth : int;
  timeout_ns : int;
  handled : int Atomic.t;  (** requests answered (all protocols) *)
  mutable accepted : int;
  mutable overloaded : int;  (** connections answered with l_overload *)
  mutable timeouts : int;  (** connections answered with l_timeout *)
  mutable draining : bool;
}

let m_conns =
  Pobs.Metrics.gauge "pdb_loop_connections"
    ~help:"Connections currently held by the event loop"

let m_accepted =
  Pobs.Metrics.counter "pdb_loop_accepted_total"
    ~help:"Connections accepted by the event loop"

let m_overload =
  Pobs.Metrics.counter "pdb_loop_overload_total"
    ~help:"Connections answered with the admission-control overload response"

let m_timeout =
  Pobs.Metrics.counter "pdb_loop_timeouts_total"
    ~help:"Connections that hit the request-read deadline"

(* How often the loop wakes with no events to check stop flags and
   sweep deadlines.  Bounds shutdown latency. *)
let poll_interval_s = 0.25

(* Worker threads: execute handlers, post completions, poke the pipe.
   [execute] is expected to be total (the protocol layer catches its
   own errors); if it raises anyway the connection is closed without a
   response rather than wedged forever. *)
let worker_loop (t : _ t) =
  let rec go () =
    Mutex.lock t.jmu;
    while Queue.is_empty t.jobs && not t.stop_workers do
      Condition.wait t.jcv t.jmu
    done;
    (* drain before exiting: every parsed request gets a response *)
    if Queue.is_empty t.jobs then Mutex.unlock t.jmu
    else begin
      let conn, req = Queue.pop t.jobs in
      Mutex.unlock t.jmu;
      let resp =
        try t.execute req with _ -> { rsp_data = ""; rsp_close = true }
      in
      Mutex.lock t.dmu;
      Queue.push (conn, resp) t.done_q;
      Mutex.unlock t.dmu;
      (try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
       with
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _)
        ->
          ());
      go ()
    end
  in
  go ()

let create ?(max_conns = 1024) ?(max_buffer = 4 lsl 20) ?(pipeline_depth = 64)
    ?(timeout_s = 10.) ~workers ~execute (listeners : 'req listener list) :
    'req t * Thread.t array =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      poller = Poller.create ();
      listeners;
      execute;
      conns = Hashtbl.create 256;
      wake_r;
      wake_w;
      jobs = Queue.create ();
      jmu = Mutex.create ();
      jcv = Condition.create ();
      done_q = Queue.create ();
      dmu = Mutex.create ();
      stop_workers = false;
      max_conns;
      max_buffer;
      pipeline_depth;
      timeout_ns = int_of_float (timeout_s *. 1e9);
      handled = Atomic.make 0;
      accepted = 0;
      overloaded = 0;
      timeouts = 0;
      draining = false;
    }
  in
  List.iter
    (fun l ->
      Unix.set_nonblock l.l_sock;
      Poller.set t.poller l.l_sock ev_read)
    listeners;
  Poller.set t.poller t.wake_r ev_read;
  let ths = Array.init (max 1 workers) (fun _ -> Thread.create worker_loop t) in
  (t, ths)

let backend_name t = Poller.backend_name t.poller
let requests_handled t = Atomic.get t.handled

(* --- connection plumbing ------------------------------------------------- *)

let out_pending (c : _ conn) = String.length c.c_out - c.c_out_off > 0

let update_interest t (c : _ conn) =
  if not c.c_closed then begin
    let want_read =
      c.c_lingering
      || (not c.c_close_after) && (not t.draining)
         && Queue.length c.c_pending < t.pipeline_depth
         && String.length c.c_out - c.c_out_off < t.max_buffer
    in
    let want_write = out_pending c in
    let mask =
      (if want_read then ev_read else 0) lor if want_write then ev_write else 0
    in
    if mask <> c.c_mask then begin
      c.c_mask <- mask;
      Poller.set t.poller c.c_fd mask
    end
  end

let close_conn t (c : _ conn) =
  if not c.c_closed then begin
    c.c_closed <- true;
    Poller.remove t.poller c.c_fd;
    Hashtbl.remove t.conns (fd_int c.c_fd);
    Pobs.Metrics.seti m_conns (Hashtbl.length t.conns);
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
  end

(* Append response bytes; compact the consumed prefix when it dominates. *)
let push_out (c : _ conn) (data : string) =
  if c.c_out_off > 0 && (c.c_out_off = String.length c.c_out || c.c_out_off > 1 lsl 16)
  then begin
    c.c_out <- String.sub c.c_out c.c_out_off (String.length c.c_out - c.c_out_off);
    c.c_out_off <- 0
  end;
  c.c_out <- (if c.c_out = "" then data else c.c_out ^ data)

(* Lingering close: when the loop answers *before* reading everything
   the client sent (an overload 503, a reject, a Connection: close
   response with pipelined requests behind it), a full [close] would
   make the kernel RST the socket on the next late-arriving byte —
   destroying the response in flight.  Instead shut down the write
   side only, keep reading and discarding until the client's EOF (or
   a short linger deadline), then close. *)
let linger_ns = 1_000_000_000

let start_linger t (c : _ conn) =
  if not (c.c_closed || c.c_lingering) then begin
    c.c_lingering <- true;
    c.c_deadline <- Pobs.Monotonic.now_ns () + linger_ns;
    match Unix.shutdown c.c_fd Unix.SHUTDOWN_SEND with
    | () -> update_interest t c
    | exception Unix.Unix_error _ -> close_conn t c
  end

(* Write as much pending output as the socket accepts.  Errors close
   the connection: the client is gone, nothing to salvage. *)
let flush_out t (c : _ conn) =
  if not c.c_closed then begin
    let len = String.length c.c_out in
    let buf = Bytes.unsafe_of_string c.c_out in
    let continue = ref true in
    while !continue && c.c_out_off < len do
      match Unix.write c.c_fd buf c.c_out_off (len - c.c_out_off) with
      | 0 -> continue := false
      | n -> c.c_out_off <- c.c_out_off + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          continue := false
      | exception _ ->
          close_conn t c;
          continue := false
    done;
    if (not c.c_closed) && c.c_out_off >= String.length c.c_out then begin
      c.c_out <- "";
      c.c_out_off <- 0;
      if
        c.c_close_after && (not c.c_busy)
        && Queue.is_empty c.c_pending
        && c.c_final = None
      then start_linger t c
    end;
    if not c.c_closed then update_interest t c
  end

(* Drive the connection forward: start the next pending request on a
   worker, emit the deferred reject/timeout once pending work drains,
   flush.  Every event path funnels through here. *)
let advance t (c : _ conn) =
  if not c.c_closed then begin
    if (not c.c_busy) && not (Queue.is_empty c.c_pending) then begin
      let req = Queue.pop c.c_pending in
      c.c_busy <- true;
      Mutex.lock t.jmu;
      Queue.push (c, req) t.jobs;
      Condition.signal t.jcv;
      Mutex.unlock t.jmu
    end;
    (match c.c_final with
    | Some r when (not c.c_busy) && Queue.is_empty c.c_pending ->
        c.c_final <- None;
        Atomic.incr t.handled;
        push_out c r.rsp_data
    | _ -> ());
    flush_out t c
  end

(* Parse as many complete requests as the buffer holds. *)
let parse_available t (c : _ conn) =
  let continue = ref true in
  let off = ref 0 in
  while !continue && (not c.c_close_after) && c.c_final = None do
    match c.c_lst.l_parse c.c_in ~off:!off with
    | Parsed (req, consumed) ->
        off := !off + consumed;
        Queue.push req c.c_pending;
        if Queue.length c.c_pending >= t.pipeline_depth then continue := false
    | Incomplete -> continue := false
    | Reject resp ->
        (* protocol violation: stop reading; the response is emitted
           after the requests already parsed, then the conn closes *)
        c.c_final <- Some resp;
        c.c_close_after <- true;
        continue := false
  done;
  if !off > 0 then c.c_in <- String.sub c.c_in !off (String.length c.c_in - !off);
  (* the deadline covers reading one full request: re-arm it whenever
     no partial request is sitting in the buffer (idle timeout) *)
  if c.c_in = "" then c.c_deadline <- Pobs.Monotonic.now_ns () + t.timeout_ns;
  advance t c

let read_chunk = 65536

let handle_readable t (c : _ conn) =
  let buf = Bytes.create read_chunk in
  if c.c_lingering then begin
    (* drain and discard until the client's EOF closes us cleanly *)
    match Unix.read c.c_fd buf 0 read_chunk with
    | 0 -> close_conn t c
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception _ -> close_conn t c
  end
  else
  match Unix.read c.c_fd buf 0 read_chunk with
  | 0 ->
      (* EOF: finish what is already parsed, then close *)
      if c.c_busy || (not (Queue.is_empty c.c_pending)) || out_pending c then begin
        c.c_close_after <- true;
        advance t c
      end
      else close_conn t c
  | n ->
      let was_empty = c.c_in = "" in
      c.c_in <-
        (if was_empty then Bytes.sub_string buf 0 n
         else c.c_in ^ Bytes.sub_string buf 0 n);
      if was_empty then c.c_deadline <- Pobs.Monotonic.now_ns () + t.timeout_ns;
      parse_available t c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
  | exception _ -> close_conn t c

let accept_ready t (l : _ listener) =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true l.l_sock with
    | client, _addr ->
        Unix.set_nonblock client;
        (try Unix.setsockopt client Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        t.accepted <- t.accepted + 1;
        Pobs.Metrics.inc m_accepted;
        let c =
          {
            c_fd = client;
            c_lst = l;
            c_in = "";
            c_out = "";
            c_out_off = 0;
            c_busy = false;
            c_pending = Queue.create ();
            c_final = None;
            c_close_after = false;
            c_lingering = false;
            c_deadline = Pobs.Monotonic.now_ns () + t.timeout_ns;
            c_closed = false;
            c_mask = 0;
          }
        in
        Hashtbl.replace t.conns (fd_int client) c;
        Pobs.Metrics.seti m_conns (Hashtbl.length t.conns);
        if Hashtbl.length t.conns > t.max_conns || t.draining then begin
          (* admission control: over capacity we still *answer* — a 503
             the client can retry — instead of leaving the connection
             to rot in the backlog or resetting it *)
          t.overloaded <- t.overloaded + 1;
          Pobs.Metrics.inc m_overload;
          Atomic.incr t.handled;
          push_out c l.l_overload.rsp_data;
          c.c_close_after <- true;
          flush_out t c
        end
        else update_interest t c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

let drain_completions t =
  let b = Bytes.create 64 in
  (try
     while Unix.read t.wake_r b 0 64 > 0 do
       ()
     done
   with Unix.Unix_error _ -> ());
  let batch = ref [] in
  Mutex.lock t.dmu;
  while not (Queue.is_empty t.done_q) do
    batch := Queue.pop t.done_q :: !batch
  done;
  Mutex.unlock t.dmu;
  List.iter
    (fun (c, (resp : response)) ->
      Atomic.incr t.handled;
      c.c_busy <- false;
      if not c.c_closed then begin
        push_out c resp.rsp_data;
        if resp.rsp_close then c.c_close_after <- true;
        (* more pipelined input may already be buffered *)
        if not c.c_close_after then parse_available t c else advance t c
      end)
    (List.rev !batch)

let sweep_deadlines t =
  let now = Pobs.Monotonic.now_ns () in
  let expired =
    Hashtbl.fold
      (fun _ c acc ->
        if (not c.c_closed) && (not c.c_busy) && now > c.c_deadline then c :: acc
        else acc)
      t.conns []
  in
  List.iter
    (fun c ->
      if c.c_lingering then
        (* client never sent its EOF: give up on the half-close *)
        close_conn t c
      else if c.c_in <> "" && c.c_final = None && not c.c_close_after then begin
        (* a partial request trickling past the deadline: 408 *)
        t.timeouts <- t.timeouts + 1;
        Pobs.Metrics.inc m_timeout;
        c.c_final <- Some c.c_lst.l_timeout;
        c.c_close_after <- true;
        advance t c
      end
      else if
        c.c_in = "" && Queue.is_empty c.c_pending && c.c_final = None
        && not (out_pending c)
      then
        (* idle keep-alive connection past the deadline: close silently *)
        close_conn t c)
    expired

(* --- main loop ----------------------------------------------------------- *)

type stats = {
  s_accepted : int;
  s_overloaded : int;
  s_timeouts : int;
  s_handled : int;
  s_open_conns : int;
}

let stats t : stats =
  {
    s_accepted = t.accepted;
    s_overloaded = t.overloaded;
    s_timeouts = t.timeouts;
    s_handled = Atomic.get t.handled;
    s_open_conns = Hashtbl.length t.conns;
  }

(** Run the loop until [continue ()] is false, then drain: stop
    accepting new work (late arrivals are answered with the overload
    response), finish in-flight and pipelined requests (bounded by
    [grace_s]), flush, close everything, join the workers. *)
let run (t : 'req t) (workers : Thread.t array) ~(continue : unit -> bool)
    ?(grace_s = 2.0) () =
  let listener_fds = List.map (fun l -> (fd_int l.l_sock, l)) t.listeners in
  let step timeout =
    let events = Poller.wait t.poller ~timeout_s:timeout in
    drain_completions t;
    List.iter
      (fun (fd, mask) ->
        if fd = t.wake_r then ()
        else
          match List.assoc_opt (fd_int fd) listener_fds with
          | Some l -> accept_ready t l
          | None -> (
              match Hashtbl.find_opt t.conns (fd_int fd) with
              | None -> ()
              | Some c ->
                  if mask land ev_write <> 0 then flush_out t c;
                  if mask land ev_read <> 0 && not c.c_closed then
                    handle_readable t c))
      events;
    sweep_deadlines t
  in
  while continue () do
    step poll_interval_s
  done;
  t.draining <- true;
  Hashtbl.iter (fun _ c -> update_interest t c) t.conns;
  let deadline = Pobs.Monotonic.now_ns () + int_of_float (grace_s *. 1e9) in
  let in_flight () =
    Hashtbl.fold
      (fun _ c acc ->
        acc || c.c_busy
        || (not (Queue.is_empty c.c_pending))
        || c.c_final <> None || out_pending c)
      t.conns false
  in
  while in_flight () && Pobs.Monotonic.now_ns () < deadline do
    step 0.02
  done;
  drain_completions t;
  (* tear down *)
  List.iter (fun l -> Poller.remove t.poller l.l_sock) t.listeners;
  Mutex.lock t.jmu;
  t.stop_workers <- true;
  Condition.broadcast t.jcv;
  Mutex.unlock t.jmu;
  Array.iter Thread.join workers;
  let remaining = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  List.iter (fun c -> flush_out t c) remaining;
  List.iter (fun c -> close_conn t c) remaining;
  Poller.remove t.poller t.wake_r;
  Poller.close t.poller;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()
