/* epoll(7) bindings for the event-loop serving core.
 *
 * The OCaml side (Event_loop.Poller) treats these as an optional fast
 * backend: on Linux, pdb_epoll_create returns a real epoll instance;
 * elsewhere it returns -1 and the poller falls back to Unix.select.
 *
 * File descriptors cross the boundary as plain ints (Unix.file_descr
 * is an int on every Unix port of OCaml).  pdb_epoll_wait releases the
 * runtime lock around the blocking wait so worker threads and other
 * domains keep running.
 *
 * Event masks are a tiny private encoding shared with event_loop.ml:
 *   1 = readable (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP)
 *   2 = writable (EPOLLOUT)
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/threads.h>

#ifdef __linux__

#include <sys/epoll.h>
#include <string.h>
#include <unistd.h>
#include <errno.h>

#define PDB_EV_READ 1
#define PDB_EV_WRITE 2
#define PDB_MAX_EVENTS 256

CAMLprim value pdb_epoll_create(value unit)
{
  (void)unit;
  return Val_int(epoll_create1(EPOLL_CLOEXEC));
}

/* op: 0 = add, 1 = mod, 2 = del */
CAMLprim value pdb_epoll_ctl(value vep, value vop, value vfd, value vmask)
{
  struct epoll_event ev;
  int op, r;
  memset(&ev, 0, sizeof ev);
  ev.data.fd = Int_val(vfd);
  ev.events = 0;
  if (Int_val(vmask) & PDB_EV_READ)
    ev.events |= EPOLLIN;
  if (Int_val(vmask) & PDB_EV_WRITE)
    ev.events |= EPOLLOUT;
  switch (Int_val(vop)) {
  case 0:
    op = EPOLL_CTL_ADD;
    break;
  case 1:
    op = EPOLL_CTL_MOD;
    break;
  default:
    op = EPOLL_CTL_DEL;
    break;
  }
  r = epoll_ctl(Int_val(vep), op, Int_val(vfd), &ev);
  return Val_int(r);
}

/* Returns a fresh int array [| fd0; mask0; fd1; mask1; ... |].  EINTR
 * (and any other failure) surfaces as the empty array: the caller's
 * loop re-checks its stop flag and polls again. */
CAMLprim value pdb_epoll_wait(value vep, value vtimeout_ms)
{
  CAMLparam2(vep, vtimeout_ms);
  CAMLlocal1(arr);
  struct epoll_event evs[PDB_MAX_EVENTS];
  int ep = Int_val(vep);
  int timeout = Int_val(vtimeout_ms);
  int n, i;

  caml_release_runtime_system();
  n = epoll_wait(ep, evs, PDB_MAX_EVENTS, timeout);
  caml_acquire_runtime_system();

  if (n <= 0)
    CAMLreturn(Atom(0));
  arr = caml_alloc(2 * n, 0);
  for (i = 0; i < n; i++) {
    int mask = 0;
    if (evs[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLPRI))
      mask |= PDB_EV_READ;
    if (evs[i].events & EPOLLOUT)
      mask |= PDB_EV_WRITE;
    /* An error with neither IN nor OUT still has to wake the
       connection so the loop can discover the failure on read. */
    if (mask == 0)
      mask = PDB_EV_READ;
    Store_field(arr, 2 * i, Val_int(evs[i].data.fd));
    Store_field(arr, 2 * i + 1, Val_int(mask));
  }
  CAMLreturn(arr);
}

#else /* !__linux__ */

CAMLprim value pdb_epoll_create(value unit)
{
  (void)unit;
  return Val_int(-1);
}

CAMLprim value pdb_epoll_ctl(value vep, value vop, value vfd, value vmask)
{
  (void)vep;
  (void)vop;
  (void)vfd;
  (void)vmask;
  return Val_int(-1);
}

CAMLprim value pdb_epoll_wait(value vep, value vtimeout_ms)
{
  (void)vep;
  (void)vtimeout_ms;
  return Atom(0);
}

#endif
