(** A pool of reader domains serving read traffic from frozen
    [Database.snapshot] views.

    The pool holds one {e generation} at a time: a base snapshot of the
    source plus one [snapshot_clone] per reader domain, all frozen at
    the same LSN.  A background refresher domain swaps in a new
    generation whenever the source has moved past the configured lag
    (or eagerly, when a read presents a newer read-your-writes token);
    the old generation is released only after its last in-flight
    request drains.

    Read jobs are queued and executed {e inside} the reader domains —
    callers (connection-handler threads) block only on a condition
    variable, so query CPU runs in parallel across domains while the
    accept path stays cheap.

    The source is abstract so the primary server (live database ->
    [Database.snapshot]) and a replica (read-only reopen under the
    applier lock) share the exact same routing path. *)

module Database = Pmodel.Database

(* --- source abstraction ------------------------------------------------- *)

type source = {
  src_lsn : unit -> int;  (** latest LSN available upstream *)
  src_build : int -> Database.t array * Database.t list;
      (** [src_build n] returns one view per reader, all frozen at a
          single LSN, plus the distinct handles to close when the
          generation retires (views may share a handle). *)
}

(** Source for a live writable database: a fresh [Database.snapshot]
    cloned once per reader.  Safe to build while a [Database.Writer]
    group is running — snapshot creation blocks until the current batch
    commits. *)
let primary_source (db : Database.t) : source =
  (* A freshly created database's schema record sits dirty in the page
     cache until the first commit ([Database.open_] writes it outside
     any transaction), and a snapshot frozen before that commit would
     see no schema at all.  An empty transaction flushes it: pager
     commits cover every dirty cache page, not just this tx's. *)
  if not (Pstore.Store.is_readonly (Database.store db)) then
    Database.with_tx db (fun () -> ());
  {
    src_lsn = (fun () -> Pstore.Store.lsn (Database.store db));
    src_build =
      (fun n ->
        let base = Database.snapshot db in
        let views = Array.init n (fun _ -> Database.snapshot_clone base) in
        (views, base :: Array.to_list views));
  }

(* --- pool --------------------------------------------------------------- *)

type gen = {
  gen_lsn : int;
  views : Database.t array;
  handles : Database.t list;
  mutable inflight : int;
  mutable retired : bool;
  mutable closed : bool;
}

type job = {
  j_exec : Database.t -> unit; (* wraps the caller's body; never raises *)
  j_gen : gen;
  j_mu : Mutex.t;
  j_cv : Condition.t;
  mutable j_done : bool;
}

type t = {
  src : source;
  n : int;
  max_lag_s : float;
  mu : Mutex.t;
  work_cv : Condition.t;
  jobs : job Queue.t;
  mutable cur : gen;
  mutable draining : gen list; (* retired, waiting for in-flight drain *)
  mutable want_refresh : bool; (* eager refresh requested by a waiter *)
  mutable stopping : bool;
  mutable last_refresh_ns : int;
  mutable refreshes : int;
  mutable refresh_errors : int;
  mutable routed : int;
  mutable catchup_waits : int;
  mutable readers : unit Domain.t array;
  mutable refresher : unit Domain.t option;
  g_lsn : Pobs.Metrics.gauge array;
  g_age : Pobs.Metrics.gauge array;
}

let m_routed =
  Pobs.Metrics.counter "pdb_serving_routed_reads_total"
    ~help:"Read requests served from pool snapshot views"

let m_catchup =
  Pobs.Metrics.counter "pdb_serving_catchup_waits_total"
    ~help:"Reads that waited for a snapshot refresh to satisfy X-PDB-Min-LSN"

let m_refreshes =
  Pobs.Metrics.counter "pdb_serving_refreshes_total"
    ~help:"Snapshot generation refreshes"

let close_handles (g : gen) =
  List.iter (fun v -> try Database.close v with _ -> ()) g.handles

(* Drop an in-flight reference; the last one out closes a retired
   generation (outside the pool lock — closing releases pinned page
   versions under the pager's own lock). *)
let release_gen t (g : gen) =
  Mutex.lock t.mu;
  g.inflight <- g.inflight - 1;
  let close_now = g.retired && g.inflight = 0 && not g.closed in
  if close_now then begin
    g.closed <- true;
    t.draining <- List.filter (fun x -> x != g) t.draining
  end;
  Mutex.unlock t.mu;
  if close_now then close_handles g

(* Each reader domain serves queries for its whole lifetime; a larger
   minor heap keeps the cross-domain stop-the-world minor-GC barrier —
   whose cost multiplies with domain count — off the request path.
   Gc.set is per-domain in OCaml 5, so this touches nobody else. *)
let reader_gc_setup () =
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 }

let rec reader_loop t idx =
  Mutex.lock t.mu;
  while Queue.is_empty t.jobs && not t.stopping do
    Condition.wait t.work_cv t.mu
  done;
  (* On stop, drain the queue before exiting so no submitter is left
     blocked on a job nobody will run. *)
  if Queue.is_empty t.jobs then Mutex.unlock t.mu
  else begin
    let j = Queue.pop t.jobs in
    Mutex.unlock t.mu;
    j.j_exec j.j_gen.views.(idx);
    Mutex.lock j.j_mu;
    j.j_done <- true;
    Condition.broadcast j.j_cv;
    Mutex.unlock j.j_mu;
    release_gen t j.j_gen;
    reader_loop t idx
  end

let set_lsn_gauges t lsn = Array.iter (fun g -> Pobs.Metrics.seti g lsn) t.g_lsn

(* Build a new generation and swap it in; only the refresher domain
   calls this, so there is never more than one build in flight. *)
let refresh t =
  match t.src.src_build t.n with
  | exception _ ->
      Mutex.lock t.mu;
      t.refresh_errors <- t.refresh_errors + 1;
      t.want_refresh <- false;
      Mutex.unlock t.mu
  | views, handles ->
      let g =
        {
          gen_lsn = Database.view_lsn views.(0);
          views;
          handles;
          inflight = 0;
          retired = false;
          closed = false;
        }
      in
      Mutex.lock t.mu;
      let old = t.cur in
      t.cur <- g;
      t.refreshes <- t.refreshes + 1;
      t.last_refresh_ns <- Pobs.Monotonic.now_ns ();
      t.want_refresh <- false;
      old.retired <- true;
      let close_old = old.inflight = 0 && not old.closed in
      if close_old then old.closed <- true else t.draining <- old :: t.draining;
      Mutex.unlock t.mu;
      Pobs.Metrics.inc m_refreshes;
      set_lsn_gauges t g.gen_lsn;
      if close_old then close_handles old

let refresher_loop t =
  let poll_s = 0.005 in
  let lag_ns = int_of_float (t.max_lag_s *. 1e9) in
  while not t.stopping do
    Unix.sleepf poll_s;
    if not t.stopping then begin
      Mutex.lock t.mu;
      let stale =
        t.want_refresh
        || (t.src.src_lsn () > t.cur.gen_lsn
           && Pobs.Monotonic.now_ns () - t.last_refresh_ns >= lag_ns)
      in
      Mutex.unlock t.mu;
      if stale then refresh t
    end
  done

let create ?(max_lag_ms = 50.) ~readers (src : source) : t =
  if readers < 1 then invalid_arg "Reader_pool.create: readers must be >= 1";
  let views, handles = src.src_build readers in
  let g0 =
    {
      gen_lsn = Database.view_lsn views.(0);
      views;
      handles;
      inflight = 0;
      retired = false;
      closed = false;
    }
  in
  let labeled name help =
    Array.init readers (fun i ->
        Pobs.Metrics.gauge name ~labels:[ ("reader", string_of_int i) ] ~help)
  in
  let t =
    {
      src;
      n = readers;
      max_lag_s = max_lag_ms /. 1000.;
      mu = Mutex.create ();
      work_cv = Condition.create ();
      jobs = Queue.create ();
      cur = g0;
      draining = [];
      want_refresh = false;
      stopping = false;
      last_refresh_ns = Pobs.Monotonic.now_ns ();
      refreshes = 0;
      refresh_errors = 0;
      routed = 0;
      catchup_waits = 0;
      readers = [||];
      refresher = None;
      g_lsn = labeled "pdb_serving_reader_lsn" "Snapshot LSN served by this pool reader";
      g_age =
        labeled "pdb_serving_reader_age_ms"
          "Age of this pool reader's snapshot generation (ms)";
    }
  in
  set_lsn_gauges t g0.gen_lsn;
  t.readers <-
    Array.init readers (fun i ->
        Domain.spawn (fun () ->
            reader_gc_setup ();
            reader_loop t i));
  t.refresher <- Some (Domain.spawn (fun () -> refresher_loop t));
  t

(** Number of reader domains. *)
let size t = t.n

(** LSN of the generation currently serving. *)
let lsn t =
  Mutex.lock t.mu;
  let l = t.cur.gen_lsn in
  Mutex.unlock t.mu;
  l

(** Result of routing a read through the pool: [Served (v, lsn)] with
    the LSN of the view that served it, or [Behind best] when the
    caller's [min_lsn] could not be satisfied within the bounded
    catch-up wait (route the request to the primary, or report the lag
    to the client). *)
type 'a outcome = Served of 'a * int | Behind of int

(* How long a read carrying a too-new token waits for the refresher to
   catch up before falling through. *)
let catchup_wait_s t = Float.max 0.05 (Float.min t.max_lag_s 1.0)

exception Stopped

(** Route [f] to a reader domain against the current generation's view.
    [min_lsn] is the client's read-your-writes token: when the pool is
    behind it, request an eager refresh and wait (bounded) for it.
    Exceptions raised by [f] re-raise at the caller. *)
let read (t : t) ?min_lsn (f : Database.t -> 'a) : 'a outcome =
  Mutex.lock t.mu;
  if t.stopping then begin
    Mutex.unlock t.mu;
    raise Stopped
  end;
  (match min_lsn with
  | Some m when m > t.cur.gen_lsn && t.src.src_lsn () >= m ->
      t.catchup_waits <- t.catchup_waits + 1;
      Pobs.Metrics.inc m_catchup;
      t.want_refresh <- true;
      let deadline =
        Pobs.Monotonic.now_ns () + int_of_float (catchup_wait_s t *. 1e9)
      in
      while
        t.cur.gen_lsn < m
        && Pobs.Monotonic.now_ns () < deadline
        && not t.stopping
      do
        Mutex.unlock t.mu;
        Unix.sleepf 0.002;
        Mutex.lock t.mu
      done
  | _ -> ());
  match min_lsn with
  | Some m when m > t.cur.gen_lsn ->
      let best = t.cur.gen_lsn in
      Mutex.unlock t.mu;
      Behind best
  | _ ->
      let g = t.cur in
      g.inflight <- g.inflight + 1;
      let out = ref None in
      let j =
        {
          j_exec = (fun db -> out := Some (try Ok (f db) with e -> Error e));
          j_gen = g;
          j_mu = Mutex.create ();
          j_cv = Condition.create ();
          j_done = false;
        }
      in
      Queue.push j t.jobs;
      t.routed <- t.routed + 1;
      Condition.signal t.work_cv;
      Mutex.unlock t.mu;
      Pobs.Metrics.inc m_routed;
      Mutex.lock j.j_mu;
      while not j.j_done do
        Condition.wait j.j_cv j.j_mu
      done;
      Mutex.unlock j.j_mu;
      (match !out with
      | Some (Ok v) -> Served (v, g.gen_lsn)
      | Some (Error e) -> raise e
      | None -> assert false)

(** Stop the pool: drain queued jobs, join the reader and refresher
    domains, release every generation.  Idempotent. *)
let stop t =
  Mutex.lock t.mu;
  if t.stopping then Mutex.unlock t.mu
  else begin
    t.stopping <- true;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.mu;
    Array.iter Domain.join t.readers;
    t.readers <- [||];
    (match t.refresher with Some d -> Domain.join d | None -> ());
    t.refresher <- None;
    Mutex.lock t.mu;
    let gens = t.cur :: t.draining in
    t.draining <- [];
    let to_close = List.filter (fun g -> not g.closed) gens in
    List.iter
      (fun g ->
        g.retired <- true;
        g.closed <- true)
      to_close;
    Mutex.unlock t.mu;
    List.iter close_handles to_close
  end

(* --- introspection ------------------------------------------------------ *)

type pstats = {
  p_readers : int;
  p_gen_lsn : int;
  p_age_ms : float;
  p_refreshes : int;
  p_refresh_errors : int;
  p_routed : int;
  p_catchup_waits : int;
  p_draining : int;
}

let stats t : pstats =
  Mutex.lock t.mu;
  let s =
    {
      p_readers = t.n;
      p_gen_lsn = t.cur.gen_lsn;
      p_age_ms = float_of_int (Pobs.Monotonic.now_ns () - t.last_refresh_ns) /. 1e6;
      p_refreshes = t.refreshes;
      p_refresh_errors = t.refresh_errors;
      p_routed = t.routed;
      p_catchup_waits = t.catchup_waits;
      p_draining = List.length t.draining;
    }
  in
  Mutex.unlock t.mu;
  s

(** Push current generation age into the per-reader gauges (called at
    scrape time). *)
let update_metrics t =
  let s = stats t in
  Array.iter (fun g -> Pobs.Metrics.set g s.p_age_ms) t.g_age
