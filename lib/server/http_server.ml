(** The HTTP front-end to a Prometheus database (thesis 6.1.7).

    The thesis prototype exposed the database to user interfaces
    through an HTTP server; this module provides the same access path:

    - [GET /]            — usage;
    - [GET /query?q=...] — run a POOL query (URL-encoded), text result;
    - [GET /check?q=...] — static-check a POOL query;
    - [GET /schema]      — the schema, classes and relationship classes;
    - [GET /contexts]    — the classifications in the database;
    - [GET /stats]       — storage/query/observability statistics, JSON;
    - [GET /metrics]     — Prometheus text exposition (format 0.0.4);
    - [POST /create?class=C&attr=v...]                  — create an object;
    - [POST /update?oid=N&attr=A&value=V]               — set an attribute;
    - [POST /delete?oid=N]                              — delete (cascades);
    - [POST /link?rel=R&origin=N&destination=M]         — relate two objects;
    - [POST /unlink?oid=N]                              — remove a rel instance.

    {b I/O model}: all connections are served by an {!Event_loop} —
    non-blocking sockets multiplexed through epoll/select on one loop
    thread, with request handlers running on worker threads.  The loop
    gives every mode HTTP keep-alive and pipelining, bounded buffers,
    admission control (503 + [Retry-After] over [max_conns]), and the
    slowloris bounds (414/431 on oversized framing, 408 on a request
    trickling past the deadline).  Responses keep the [HTTP/1.0]
    status line of the original server; keep-alive is honoured when
    the client asks for it (HTTP/1.1 default, or an explicit
    [Connection: keep-alive]) and framed by [Content-Length].

    Two execution modes:

    {b Legacy} ([readers = 0], the default): one worker thread — all
    handlers run single-threaded against the live handle, mutations
    inside [Database.with_tx].  This is the mode the object layer's
    single-user heritage assumes, kept bit-compatible for tests and
    small deployments; the event loop still multiplexes any number of
    concurrent connections onto that one executor.

    {b Snapshot serving} ([readers = N > 0], or an explicit [?pool]):
    GET traffic is routed to a {!Reader_pool} of N reader domains, each
    holding a frozen [Database.snapshot] view refreshed at a bounded
    LSN lag; mutations are funnelled through a [Database.Writer] group
    so concurrent HTTP writers share fsync cycles.  Read-your-writes:
    every mutating response carries an [X-PDB-LSN] header; a GET
    presenting [X-PDB-Min-LSN] waits (bounded) for a refresh to catch
    up or falls through to the primary handle, serialised with the
    write stream.  Responses state their route in [X-PDB-Route]
    ([pool] or [primary]).  A read-only replica given an external
    [?pool] serves the same way but answers 503 when it cannot catch up
    to a client's token.

    {b Binary protocol}: [?binary_port] opens a second listener
    speaking {!Binary_proto} — length-prefixed CRC-framed Query/Batch
    frames for POOL queries, answered from the same pool/writer
    plumbing.  One [Batch] frame costs one read burst and one write
    per side for N queries; see {!Client} for the reference client. *)

open Pmodel

let url_decode (s : string) : string =
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    (match s.[!i] with
    | '+' -> Buffer.add_char b ' '
    | '%' when !i + 2 < n ->
        (try
           Buffer.add_char b (Char.chr (int_of_string ("0x" ^ String.sub s (!i + 1) 2)));
           i := !i + 2
         with _ -> Buffer.add_char b '%')
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; _version ] -> Some (meth, target)
  | _ -> None

let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
      let path = String.sub target 0 i in
      let qs = String.sub target (i + 1) (String.length target - i - 1) in
      let params =
        String.split_on_char '&' qs
        |> List.filter_map (fun kv ->
               match String.index_opt kv '=' with
               | Some j ->
                   Some
                     ( String.sub kv 0 j,
                       url_decode (String.sub kv (j + 1) (String.length kv - j - 1)) )
               | None -> Some (kv, ""))
      in
      (path, params)

let schema_text db =
  let schema = Database.schema db in
  let b = Buffer.create 512 in
  List.iter
    (fun (c : Meta.class_def) ->
      if c.Meta.class_name = "" || c.Meta.class_name.[0] <> '_' then
        Buffer.add_string b
          (Printf.sprintf "class %s supers=[%s] attrs=[%s]%s\n" c.Meta.class_name
             (String.concat "," c.Meta.supers)
             (String.concat ","
                (List.map (fun (a : Meta.attr_def) -> a.Meta.attr_name) c.Meta.attrs))
             (if c.Meta.abstract then " abstract" else "")))
    (List.sort compare (Meta.classes schema));
  List.iter
    (fun (r : Meta.rel_def) ->
      Buffer.add_string b
        (Printf.sprintf "rel %s : %s -> %s (%s)\n" r.Meta.rel_name r.Meta.origin
           r.Meta.destination
           (match r.Meta.kind with Meta.Aggregation -> "aggregation" | Meta.Association -> "association")))
    (List.sort compare (Meta.rels schema));
  Buffer.contents b

let usage =
  "Prometheus HTTP interface\n\
   GET /query?q=<pool query>   run a POOL query\n\
   GET /check?q=<pool query>   static-check a POOL query\n\
   GET /schema                 list classes and relationship classes\n\
   GET /contexts               list classifications\n\
   GET /stats                  storage/query/observability statistics (JSON)\n\
   GET /metrics                Prometheus text exposition\n\
   POST /create?class=C&a=v     create an object (other params are attributes)\n\
   POST /update?oid=N&attr=A&value=V\n\
   POST /delete?oid=N           delete an object (cascades)\n\
   POST /link?rel=R&origin=N&destination=M[&context=K]\n\
   POST /unlink?oid=N           remove a relationship instance\n\
   Mutating responses carry X-PDB-LSN; send it back as X-PDB-Min-LSN\n\
   on GETs for read-your-writes.\n"

(* --- observability surfaces ------------------------------------------- *)

let m_requests =
  Pobs.Metrics.counter "pdb_http_requests_total" ~help:"HTTP requests handled"

let m_request_ns = Pobs.Metrics.histogram "pdb_http_request_ns" ~help:"HTTP request latency"

let m_bin_queries =
  Pobs.Metrics.counter "pdb_binary_queries_total"
    ~help:"POOL queries answered over the binary protocol"

let m_fallthrough =
  Pobs.Metrics.counter "pdb_serving_fallthrough_total"
    ~help:"Reads that fell through the snapshot pool to the primary handle"

let m_group_writes =
  Pobs.Metrics.counter "pdb_serving_group_writes_total"
    ~help:"HTTP mutations routed through the group-commit writer"

let g_objects = Pobs.Metrics.gauge "pdb_store_objects" ~help:"Objects in the database"
let g_pages = Pobs.Metrics.gauge "pdb_store_pages" ~help:"Pages in the database file"

(* Gauges are snapshots of store state, refreshed at scrape time.  The
   object count comes from the mirror, not a B-tree walk: scrapes run
   concurrently with the group writer in pool mode, and walking the
   live tree through the page cache from another thread is unsafe. *)
let refresh_gauges db =
  let s = Pstore.Store.stats ~count_objects:false (Database.store db) in
  Pobs.Metrics.seti g_objects (Database.object_count db);
  Pobs.Metrics.seti g_pages s.Pstore.Store.pages

(** The /metrics body: the whole process-wide registry in Prometheus
    text exposition format.  [ensure_metrics] forces the rule-engine
    module to link so its families are present even before any rule is
    loaded. *)
let metrics_text db : string =
  Prules.Engine.ensure_metrics ();
  refresh_gauges db;
  Pobs.Metrics.expose ()

let metrics_content_type = "text/plain; version=0.0.4; charset=utf-8"

(** The /stats body: a JSON superset of the old plaintext document —
    per-database storage and query counters, observability switches,
    the slow-query log, and a JSON mirror of the metric registry.  All
    serialisation goes through {!Pobs.Json}, so no attribute value can
    produce malformed output.  [?serving], when present, contributes a
    "serving" section (snapshot pool + group writer + event loop). *)
let stats_json ?serving (db : Database.t) : string =
  Prules.Engine.ensure_metrics ();
  refresh_gauges db;
  let s = Pstore.Store.stats ~count_objects:false (Database.store db) in
  let q = Pool_lang.Pool.stats db in
  let open Pobs.Json in
  let sections =
    [
      ( "storage",
        Obj
          [
            ("objects", Int (Database.object_count db));
            ("pages", Int s.Pstore.Store.pages);
            ("page_reads", Int s.Pstore.Store.page_reads);
            ("page_writes", Int s.Pstore.Store.page_writes);
            ("cache_hits", Int s.Pstore.Store.cache_hits);
            ("cache_misses", Int s.Pstore.Store.cache_misses);
            ("evictions", Int s.Pstore.Store.evictions);
            ("journal_bytes", Int s.Pstore.Store.journal_bytes);
            ("snapshots", Int s.Pstore.Store.snapshots);
            ("pinned_versions", Int s.Pstore.Store.pinned_versions);
            ("snapshot_reads", Int s.Pstore.Store.snapshot_reads);
          ] );
      ( "query",
        Obj
          [
            ("index_probes", Int q.Pool_lang.Eval.index_probes);
            ("range_scans", Int q.Pool_lang.Eval.range_scans);
            ("hash_joins", Int q.Pool_lang.Eval.hash_joins);
            ("extent_scans", Int q.Pool_lang.Eval.extent_scans);
            ("plan_cache_hits", Int q.Pool_lang.Eval.plan_cache_hits);
            ("plan_cache_misses", Int q.Pool_lang.Eval.plan_cache_misses);
            ("adjacency_rebuilds", Int q.Pool_lang.Eval.adjacency_rebuilds);
          ] );
      ( "integrity",
        (* checksum/scrub posture of this database plus the
           process-wide detection counters *)
        let pager = Pstore.Store.pager (Database.store db) in
        let cnt (c : Pobs.Metrics.counter) = Int (int_of_float (Pobs.Metrics.counter_value c)) in
        Obj
          [
            ("checksums_enabled", Bool (Pstore.Pager.checksums_enabled pager));
            ( "quarantined_pages",
              List (List.map (fun no -> Int no) (Pstore.Pager.quarantined pager)) );
            ("pages_corrupt_detected", cnt Pstore.Pager.m_page_corrupt);
            ("scrub_runs", cnt Pstore.Pager.m_scrub_runs);
            ("scrub_pages", cnt Pstore.Pager.m_scrub_pages);
            ("scrub_corrupt", cnt Pstore.Pager.m_scrub_corrupt);
            ("recovery_torn_tails", cnt Pstore.Pager.m_torn_tail);
          ] );
      ( "observability",
        Obj
          [
            ("metrics_enabled", Bool !Pobs.Metrics.enabled);
            ("trace_enabled", Bool !Pobs.Trace.enabled);
            ("trace_spans_recorded", Int (Pobs.Trace.recorded ()));
            ("slow_query_threshold_ns", Int !Pobs.Slowlog.threshold_ns);
          ] );
    ]
  in
  let serving_section =
    match serving with None -> [] | Some f -> [ ("serving", f ()) ]
  in
  to_string
    (Obj
       (sections @ serving_section
       @ [ ("slow_queries", Pobs.Slowlog.to_json ()); ("metrics", Pobs.Metrics.expose_json ()) ]
       ))

let handle ?serving (db : Database.t) (path : string) (params : (string * string) list) :
    string * string =
  match path with
  | "/" -> ("200 OK", usage)
  | "/query" -> (
      match List.assoc_opt "q" params with
      | None | Some "" -> ("400 Bad Request", "missing q parameter\n")
      | Some q -> (
          try ("200 OK", Value.to_string (Pool_lang.Pool.query db q) ^ "\n") with
          | Pool_lang.Lexer.Syntax_error (m, pos) ->
              ("400 Bad Request", Printf.sprintf "syntax error at %d: %s\n" pos m)
          | Pool_lang.Eval.Eval_error m -> ("400 Bad Request", "evaluation error: " ^ m ^ "\n")
          | e -> ("500 Internal Server Error", Printexc.to_string e ^ "\n")))
  | "/check" -> (
      match List.assoc_opt "q" params with
      | None | Some "" -> ("400 Bad Request", "missing q parameter\n")
      | Some q -> (
          try
            match Pool_lang.Typecheck.check_string (Database.schema db) q with
            | [] -> ("200 OK", "ok\n")
            | errs ->
                ( "200 OK",
                  String.concat ""
                    (List.map
                       (fun (e : Pool_lang.Typecheck.error) ->
                         Printf.sprintf "error: %s (in %s)\n" e.Pool_lang.Typecheck.message
                           e.Pool_lang.Typecheck.expr)
                       errs) )
          with Pool_lang.Lexer.Syntax_error (m, pos) ->
            ("400 Bad Request", Printf.sprintf "syntax error at %d: %s\n" pos m)))
  | "/schema" -> ("200 OK", schema_text db)
  | "/contexts" ->
      ( "200 OK",
        String.concat ""
          (List.map
             (fun (oid, name) -> Printf.sprintf "#%d %s\n" oid name)
             (Database.contexts db)) )
  | "/stats" -> ("200 OK", stats_json ?serving db ^ "\n")
  | "/metrics" -> ("200 OK", metrics_text db)
  | _ -> ("404 Not Found", "not found\n")

(* Content type per endpoint; everything else is plain text. *)
let content_type_of_path = function
  | "/stats" -> "application/json; charset=utf-8"
  | "/metrics" -> metrics_content_type
  | _ -> "text/plain; charset=utf-8"

(* --- mutation endpoints ------------------------------------------------ *)

exception Bad_param of string

let bad fmt = Format.kasprintf (fun s -> raise (Bad_param s)) fmt

(* Typed literal syntax for attribute values in query strings: null,
   true/false, integer, float, #oid references; everything else is a
   string. *)
let parse_value (s : string) : Value.t =
  if s = "null" then Value.VNull
  else if s = "true" then Value.VBool true
  else if s = "false" then Value.VBool false
  else if String.length s > 1 && s.[0] = '#' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some oid -> Value.VRef oid
    | None -> Value.VString s
  else
    match int_of_string_opt s with
    | Some i -> Value.VInt i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Value.VFloat f
        | None -> Value.VString s)

let oid_of_string k s =
  let s = if String.length s > 1 && s.[0] = '#' then String.sub s 1 (String.length s - 1) else s in
  match int_of_string_opt s with Some oid -> oid | None -> bad "%s: not an oid: %s" k s

let str_param params k =
  match List.assoc_opt k params with
  | Some v when v <> "" -> v
  | _ -> bad "missing %s parameter" k

let oid_param params k = oid_of_string k (str_param params k)

let attr_params ~reserved params =
  List.filter_map
    (fun (k, v) -> if List.mem k reserved then None else Some (k, parse_value v))
    params

type mutation =
  | MCreate of string * (string * Value.t) list
  | MUpdate of int * string * Value.t
  | MDelete of int
  | MLink of {
      rel : string;
      origin : int;
      destination : int;
      context : int option;
      attrs : (string * Value.t) list;
    }
  | MUnlink of int

let write_paths = [ "/create"; "/update"; "/delete"; "/link"; "/unlink" ]

(* Parsing happens before the body is submitted to the writer: a
   malformed request must cost a 400, never a group-batch rollback. *)
let parse_mutation (path : string) params : mutation =
  match path with
  | "/create" -> MCreate (str_param params "class", attr_params ~reserved:[ "class" ] params)
  | "/update" ->
      MUpdate
        ( oid_param params "oid",
          str_param params "attr",
          parse_value (match List.assoc_opt "value" params with Some v -> v | None -> bad "missing value parameter") )
  | "/delete" -> MDelete (oid_param params "oid")
  | "/link" ->
      MLink
        {
          rel = str_param params "rel";
          origin = oid_param params "origin";
          destination = oid_param params "destination";
          context = Option.map (oid_of_string "context") (List.assoc_opt "context" params);
          attrs = attr_params ~reserved:[ "rel"; "origin"; "destination"; "context" ] params;
        }
  | "/unlink" -> MUnlink (oid_param params "oid")
  | _ -> bad "not a mutation endpoint: %s" path

let apply_mutation (db : Database.t) (m : mutation) : string =
  match m with
  | MCreate (cls, attrs) -> Printf.sprintf "created #%d\n" (Database.create db cls attrs)
  | MUpdate (oid, attr, v) ->
      Database.update db oid attr v;
      "ok\n"
  | MDelete oid ->
      Database.delete db oid;
      "ok\n"
  | MLink { rel; origin; destination; context; attrs } ->
      Printf.sprintf "created #%d\n"
        (Database.link db ?context ~attrs rel ~origin ~destination)
  | MUnlink oid ->
      Database.unlink db oid;
      "ok\n"

(* --- HTTP framing ------------------------------------------------------- *)

(* Bounds on what a client may send before we stop listening to it: the
   server must not let one connection buffer without limit (memory) or
   trickle bytes forever (a slowloris holding a connection hostage). *)
let max_request_line = 8192
let max_header_bytes = 65536
let max_header_count = 100
let max_body_bytes = 1 lsl 20
let client_timeout_s = 10.

(** One parsed HTTP request, as extracted from a connection buffer by
    {!parse_http}. *)
type http_req = {
  r_meth : string;
  r_target : string;
  r_headers : (string * string) list; (* lowercased names, trimmed values *)
  r_keep_alive : bool;
  r_bad : bool; (* request line was not [METHOD TARGET VERSION] *)
}

(** Serialise a response.  Status lines stay in the original server's
    [HTTP/1.0] form (clients and tests match on the exact string);
    keep-alive is explicit via the [Connection] header and framed by
    [Content-Length]. *)
let response_string ?(content_type = "text/plain; charset=utf-8") ?(extra = [])
    ~keep_alive ~status ~body () : string =
  let b = Buffer.create (256 + String.length body) in
  Buffer.add_string b (Printf.sprintf "HTTP/1.0 %s\r\n" status);
  Buffer.add_string b (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string b (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v)) extra;
  Buffer.add_string b
    (if keep_alive then "Connection: keep-alive\r\n\r\n" else "Connection: close\r\n\r\n");
  Buffer.add_string b body;
  Buffer.contents b

let close_response ?content_type ?extra ~status ~body () : Event_loop.response =
  {
    Event_loop.rsp_data = response_string ?content_type ?extra ~keep_alive:false ~status ~body ();
    rsp_close = true;
  }

let resp_414 = close_response ~status:"414 URI Too Long" ~body:"request line too long\n" ()

let resp_431 =
  close_response ~status:"431 Request Header Fields Too Large" ~body:"header block too large\n" ()

let resp_413 = close_response ~status:"413 Content Too Large" ~body:"request body too large\n" ()

let resp_408 =
  close_response ~status:"408 Request Timeout" ~body:"timed out reading request\n" ()

let resp_503 =
  close_response
    ~extra:[ ("Retry-After", "1") ]
    ~status:"503 Service Unavailable" ~body:"overloaded\n" ()

(** Try to extract one request from the connection buffer starting at
    [off].  Enforces the framing bounds incrementally: an oversized
    request line rejects with 414 and an oversized header block with
    431 {e before} the terminator arrives, so a hostile sender cannot
    make the server buffer past the bound.  A request body
    (Content-Length) is consumed and discarded — no endpoint takes a
    body, but it must not desynchronise keep-alive framing. *)
let parse_http (buf : string) ~(off : int) : http_req Event_loop.parse_result =
  match String.index_from_opt buf off '\n' with
  | None ->
      if String.length buf - off > max_request_line then Event_loop.Reject resp_414
      else Event_loop.Incomplete
  | Some eol ->
      if eol - off > max_request_line then Event_loop.Reject resp_414
      else begin
        let line = String.trim (String.sub buf off (eol - off)) in
        (* header block *)
        let rec go pos acc count total =
          match String.index_from_opt buf pos '\n' with
          | None ->
              let tail = String.length buf - pos in
              if tail > max_request_line || total + tail > max_header_bytes then `Rej resp_431
              else `Inc
          | Some e ->
              if e - pos > max_request_line then `Rej resp_431
              else
                let l = String.trim (String.sub buf pos (e - pos)) in
                if l = "" then `Done (List.rev acc, e + 1)
                else
                  let total = total + String.length l in
                  if total > max_header_bytes || count + 1 > max_header_count then `Rej resp_431
                  else
                    let acc =
                      match String.index_opt l ':' with
                      | Some i ->
                          let k = String.lowercase_ascii (String.trim (String.sub l 0 i)) in
                          let v = String.trim (String.sub l (i + 1) (String.length l - i - 1)) in
                          (k, v) :: acc
                      | None -> acc
                    in
                    go (e + 1) acc (count + 1) total
        in
        match go (eol + 1) [] 0 0 with
        | `Inc -> Event_loop.Incomplete
        | `Rej r -> Event_loop.Reject r
        | `Done (headers, body_off) -> (
            let body_len =
              match Option.bind (List.assoc_opt "content-length" headers) int_of_string_opt with
              | Some n when n > 0 -> n
              | _ -> 0
            in
            if body_len > max_body_bytes then Event_loop.Reject resp_413
            else if String.length buf - body_off < body_len then Event_loop.Incomplete
            else
              let consumed = body_off + body_len - off in
              match parse_request_line line with
              | None ->
                  Event_loop.Parsed
                    ( { r_meth = ""; r_target = ""; r_headers = headers; r_keep_alive = false; r_bad = true },
                      consumed )
              | Some (meth, target) ->
                  let version =
                    match String.rindex_opt line ' ' with
                    | Some i -> String.sub line (i + 1) (String.length line - i - 1)
                    | None -> ""
                  in
                  let keep_alive =
                    match
                      Option.map String.lowercase_ascii (List.assoc_opt "connection" headers)
                    with
                    | Some "close" -> false
                    | Some "keep-alive" -> true
                    | _ -> version = "HTTP/1.1"
                  in
                  Event_loop.Parsed
                    ( { r_meth = meth; r_target = target; r_headers = headers; r_keep_alive = keep_alive; r_bad = false },
                      consumed ))
      end

(* --- request dispatch --------------------------------------------------- *)

(* Cluster identity and control hooks (PR 10): answer [Ping] and [Ctl]
   frames so a router can health-check this node and steer failover. *)
type cluster_hooks = {
  c_role : unit -> string; (* "primary" | "replica" *)
  c_lsn : unit -> int; (* durable (primary) / applied (replica) LSN *)
  c_stream_id : unit -> int; (* replication stream identity, 0 if none *)
  c_repl_port : unit -> int; (* port a Feed listens on, -1 if none *)
  c_ctl : verb:string -> arg:string -> (string, string) result;
}

(* Everything a request handler needs; one value per [serve] call,
   shared by all worker threads.  Handlers fetch the current ctx from
   an [Atomic.t] per request, so a cluster node can swap its whole
   serving role (replica -> primary) in place without restarting the
   event loop. *)
type ctx = {
  x_db : Database.t;
  x_readonly : bool;
  x_repl_status : (unit -> string) option;
  x_pool : Reader_pool.t option;
  x_writer : Database.Writer.w option;
  x_serving : (unit -> Pobs.Json.t) option;
  x_cluster : cluster_hooks option;
}

(* A handler's verdict, before HTTP serialisation. *)
type answer = {
  a_status : string;
  a_content_type : string;
  a_extra : (string * string) list;
  a_body : string;
}

let plain ?(extra = []) status body =
  { a_status = status; a_content_type = "text/plain; charset=utf-8"; a_extra = extra; a_body = body }

(* GET endpoints safe to serve from a frozen snapshot view. *)
let pool_routable = function
  | "/" | "/query" | "/check" | "/schema" | "/contexts" | "/stats" | "/metrics" -> true
  | _ -> false

let lsn_header lsn = ("X-PDB-LSN", string_of_int lsn)

let serve_get (x : ctx) path params headers : answer =
  let content_type =
    if path = "/repl" then "application/json; charset=utf-8" else content_type_of_path path
  in
  let mk ?(extra = []) (status, body) =
    { a_status = status; a_content_type = content_type; a_extra = extra; a_body = body }
  in
  let timed f = Pobs.Metrics.time m_request_ns f in
  match (path, x.x_repl_status) with
  | "/repl", Some f -> mk (timed (fun () -> ("200 OK", f () ^ "\n")))
  | _ -> (
      match x.x_pool with
      | Some pool when pool_routable path -> (
          let min_lsn =
            Option.bind (List.assoc_opt "x-pdb-min-lsn" headers) int_of_string_opt
          in
          match
            Reader_pool.read pool ?min_lsn (fun view ->
                timed (fun () -> handle ?serving:x.x_serving view path params))
          with
          | Reader_pool.Served (sb, lsn) ->
              mk ~extra:[ lsn_header lsn; ("X-PDB-Route", "pool") ] sb
          | Reader_pool.Behind best -> (
              match x.x_writer with
              | Some w -> (
                  (* Primary fallthrough: run the read in the writer
                     domain, serialised with the mutation stream — the
                     only safe way to touch the live handle. *)
                  Pobs.Metrics.inc m_fallthrough;
                  let lsn, r =
                    Database.Writer.read w (fun live ->
                        timed (fun () -> handle ?serving:x.x_serving live path params))
                  in
                  match r with
                  | Ok sb -> mk ~extra:[ lsn_header lsn; ("X-PDB-Route", "primary") ] sb
                  | Error e ->
                      plain "500 Internal Server Error" (Printexc.to_string e ^ "\n"))
              | None ->
                  (* A replica has no primary handle to fall through
                     to: be honest about the lag. *)
                  plain
                    ~extra:[ lsn_header best; ("Retry-After", "1") ]
                    "503 Service Unavailable"
                    (Printf.sprintf "behind: serving lsn %d\n" best))
          | exception Reader_pool.Stopped ->
              plain "503 Service Unavailable" "shutting down\n"
          | exception e ->
              plain "500 Internal Server Error" (Printexc.to_string e ^ "\n"))
      | _ ->
          let sb = timed (fun () -> handle ?serving:x.x_serving x.x_db path params) in
          let extra =
            match x.x_pool with
            | None -> [ lsn_header (Pstore.Store.lsn (Database.store x.x_db)) ]
            | Some _ -> []
          in
          mk ~extra sb)

let serve_mutation (x : ctx) path params : answer =
  match parse_mutation path params with
  | exception Bad_param m -> plain "400 Bad Request" ("error: " ^ m ^ "\n")
  | mut -> (
      match
        Pobs.Metrics.time m_request_ns (fun () ->
            match x.x_writer with
            | Some w ->
                (* Group-commit routing: the body runs in the writer
                   domain as one soft transaction; concurrent HTTP
                   writers share the batch's single fsync. *)
                let lsn, body = Database.Writer.submit w (fun live -> apply_mutation live mut) in
                Pobs.Metrics.inc m_group_writes;
                (lsn, body)
            | None ->
                let body = Database.with_tx x.x_db (fun () -> apply_mutation x.x_db mut) in
                (Pstore.Store.lsn (Database.store x.x_db), body))
      with
      | lsn, body -> plain ~extra:[ lsn_header lsn ] "200 OK" body
      | exception Database.Model_error m -> plain "400 Bad Request" ("error: " ^ m ^ "\n")
      | exception Pstore.Store.Group.Stopped ->
          plain "503 Service Unavailable" "shutting down\n"
      | exception e -> plain "500 Internal Server Error" (Printexc.to_string e ^ "\n"))

(* Dispatch one parsed HTTP request to an answer.  [m_requests] counts
   every routed request — a pipelined connection is as many requests
   as it carries, not one. *)
let dispatch (x : ctx) (r : http_req) : answer =
  if r.r_bad then plain "400 Bad Request" "bad request\n"
  else
    match r.r_meth with
    | "GET" ->
        let path, params = split_target r.r_target in
        Pobs.Metrics.inc m_requests;
        serve_get x path params r.r_headers
    | _ when x.x_readonly -> plain "403 Forbidden" "read-only replica\n"
    | "POST" when List.mem (fst (split_target r.r_target)) write_paths ->
        let path, params = split_target r.r_target in
        Pobs.Metrics.inc m_requests;
        serve_mutation x path params
    | _ -> plain "405 Method Not Allowed" "GET only\n"

let execute_http (x : ctx) (r : http_req) : Event_loop.response =
  let a = dispatch x r in
  let keep_alive = r.r_keep_alive && not r.r_bad in
  {
    Event_loop.rsp_data =
      response_string ~content_type:a.a_content_type ~extra:a.a_extra ~keep_alive
        ~status:a.a_status ~body:a.a_body ();
    rsp_close = not keep_alive;
  }

(* --- binary protocol dispatch ------------------------------------------- *)

(* Run one POOL query through the same routing as GET /query: the
   snapshot pool when present (falling through to the writer-serialised
   primary when the pool is behind), the live handle otherwise. *)
let run_query (x : ctx) (q : string) : (string, string) result =
  let on db =
    match Pobs.Metrics.time m_request_ns (fun () -> Pool_lang.Pool.query db q) with
    | v -> Ok (Value.to_string v)
    | exception Pool_lang.Lexer.Syntax_error (m, pos) ->
        Error (Printf.sprintf "syntax error at %d: %s" pos m)
    | exception Pool_lang.Eval.Eval_error m -> Error ("evaluation error: " ^ m)
    | exception e -> Error (Printexc.to_string e)
  in
  Pobs.Metrics.inc m_bin_queries;
  match x.x_pool with
  | None -> on x.x_db
  | Some pool -> (
      match Reader_pool.read pool (fun view -> on view) with
      | Reader_pool.Served (r, _) -> r
      | Reader_pool.Behind best -> (
          match x.x_writer with
          | Some w -> (
              Pobs.Metrics.inc m_fallthrough;
              match Database.Writer.read w (fun live -> on live) with
              | _, Ok r -> r
              | _, Error e -> Error (Printexc.to_string e))
          | None -> Error (Printf.sprintf "behind: serving lsn %d" best))
      | exception Reader_pool.Stopped -> Error "shutting down"
      | exception e -> Error (Printexc.to_string e))

let execute_bin (x : ctx) (f : Binary_proto.frame) : Event_loop.response =
  let answer (id, q) : string =
    let frame =
      match run_query x q with
      | Ok v -> Binary_proto.Result { id; v }
      | Error msg -> Binary_proto.Error { id; msg }
    in
    try Binary_proto.encode frame
    with Binary_proto.Malformed m ->
      Binary_proto.encode (Binary_proto.Error { id; msg = "response too large: " ^ m })
  in
  let reply frame =
    try { Event_loop.rsp_data = Binary_proto.encode frame; rsp_close = false }
    with Binary_proto.Malformed m ->
      {
        Event_loop.rsp_data =
          Binary_proto.encode
            (Binary_proto.Error { id = 0; msg = "response too large: " ^ m });
        rsp_close = false;
      }
  in
  match f with
  | Binary_proto.Query { id; q } -> { Event_loop.rsp_data = answer (id, q); rsp_close = false }
  | Binary_proto.Batch qs ->
      let b = Buffer.create 256 in
      List.iter (fun iq -> Buffer.add_string b (answer iq)) qs;
      { Event_loop.rsp_data = Buffer.contents b; rsp_close = false }
  | Binary_proto.Hreq { id; meth; target; headers } ->
      (* An HTTP-shaped request riding the binary connection: same
         dispatch as the HTTP listener, answered as [Hresp].  Header
         names arrive lowercased from {!Client.http}. *)
      let r =
        {
          r_meth = meth;
          r_target = target;
          r_headers = List.map (fun (k, v) -> (String.lowercase_ascii k, v)) headers;
          r_keep_alive = true;
          r_bad = false;
        }
      in
      let a = dispatch x r in
      let status =
        match int_of_string_opt (String.sub a.a_status 0 (min 3 (String.length a.a_status))) with
        | Some s -> s
        | None -> 500
      in
      reply
        (Binary_proto.Hresp
           {
             id;
             status;
             headers =
               ("content-type", a.a_content_type)
               :: List.map (fun (k, v) -> (String.lowercase_ascii k, v)) a.a_extra;
             body = a.a_body;
           })
  | Binary_proto.Ping { id } ->
      let pong =
        match x.x_cluster with
        | Some c ->
            Binary_proto.Pong
              {
                id;
                role = c.c_role ();
                lsn = c.c_lsn ();
                stream_id = c.c_stream_id ();
                repl_port = c.c_repl_port ();
              }
        | None ->
            Binary_proto.Pong
              {
                id;
                role = (if x.x_readonly then "replica" else "primary");
                lsn = Pstore.Store.lsn (Database.store x.x_db);
                stream_id = 0;
                repl_port = -1;
              }
      in
      reply pong
  | Binary_proto.Ctl { id; verb; arg } -> (
      match x.x_cluster with
      | None -> reply (Binary_proto.Error { id; msg = "no cluster control on this node" })
      | Some c -> (
          match c.c_ctl ~verb ~arg with
          | Ok v -> reply (Binary_proto.Result { id; v })
          | Error msg -> reply (Binary_proto.Error { id; msg })
          | exception e ->
              reply (Binary_proto.Error { id; msg = Printexc.to_string e })))
  | Binary_proto.Result _ | Binary_proto.Error _ | Binary_proto.Hresp _ | Binary_proto.Pong _ ->
      (* only clients send answers; a server receiving one is talking
         to something confused — answer in kind and hang up *)
      {
        Event_loop.rsp_data =
          Binary_proto.encode (Binary_proto.Error { id = 0; msg = "unexpected frame type" });
        rsp_close = true;
      }

let bin_error msg = Binary_proto.encode (Binary_proto.Error { id = 0; msg })

(* --- the server --------------------------------------------------------- *)

type req = RHttp of http_req | RBin of Binary_proto.frame

let http_listener sock : req Event_loop.listener =
  {
    Event_loop.l_sock = sock;
    l_parse =
      (fun buf ~off ->
        match parse_http buf ~off with
        | Event_loop.Parsed (r, n) -> Event_loop.Parsed (RHttp r, n)
        | Event_loop.Incomplete -> Event_loop.Incomplete
        | Event_loop.Reject r -> Event_loop.Reject r);
    l_overload = resp_503;
    l_timeout = resp_408;
  }

let bin_listener sock : req Event_loop.listener =
  {
    Event_loop.l_sock = sock;
    l_parse =
      (fun buf ~off ->
        match Binary_proto.parse buf ~off with
        | Binary_proto.Frame (f, n) -> Event_loop.Parsed (RBin f, n)
        | Binary_proto.Need_more -> Event_loop.Incomplete
        | Binary_proto.Bad m ->
            Event_loop.Reject { Event_loop.rsp_data = bin_error m; rsp_close = true });
    l_overload = { Event_loop.rsp_data = bin_error "overloaded"; rsp_close = true };
    l_timeout = { Event_loop.rsp_data = bin_error "timed out reading frame"; rsp_close = true };
  }

(** Serve [db] on [port] until [max_requests] requests have been
    handled (None = forever), [stop] is set, or a SIGTERM/SIGINT
    arrives.

    Graceful shutdown: signals only set a flag; in-flight requests are
    always finished and responded to, then the listen socket is closed,
    the previous signal dispositions are restored, and [serve] returns
    so the caller can flush and close the store.  The event loop polls
    with a short timeout, so a stop request on an idle server is
    honoured within a fraction of a second.

    Snapshot serving: [?readers] > 0 builds a {!Reader_pool} over [db]
    (refreshed within [?max_lag_ms]) plus a [Database.Writer] group;
    [?pool] supplies an external pool instead (the read-only replica
    path — no writer is started when [readonly]).  Both are stopped
    before [serve] returns iff they were created here.

    Replication hooks: [?readonly] rejects every non-GET method with
    403 (a read-only replica serves queries but accepts no writes) and
    [?repl_status] is exposed verbatim as [GET /repl] (JSON).
    [?ready] is called with the actually bound port (useful with
    [~port:0]) once the socket is listening; [?binary_port] opens a
    second listener speaking {!Binary_proto} and reports its bound
    port through [?binary_ready].

    Robust against misbehaving clients: SIGPIPE is ignored, framing is
    size-bounded (414/431/413 and oversized binary frames), a
    wall-clock deadline spans each request's reads (408 on a partial
    request, silent close when idle), and connections past [max_conns]
    are answered 503 + [Retry-After] — the event loop's admission
    control — instead of being silently dropped. *)
let serve ?(host = "127.0.0.1") ?max_requests ?stop ?ready ?(readonly = false)
    ?repl_status ?(readers = 0) ?(max_lag_ms = 50.) ?pool
    ?(client_timeout = client_timeout_s) ?(max_conns = 1024) ?binary_port ?binary_ready
    ?cluster ?ctx_cell (db : Database.t) ~port () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> () (* no SIGPIPE on this platform *));
  let stop = match stop with Some r -> r | None -> ref false in
  let install signum =
    try Some (signum, Sys.signal signum (Sys.Signal_handle (fun _ -> stop := true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let saved = List.filter_map install [ Sys.sigterm; Sys.sigint ] in
  let own_pool, pool =
    match pool with
    | Some p -> (false, Some p)
    | None when readers > 0 ->
        (true, Some (Reader_pool.create ~max_lag_ms ~readers (Reader_pool.primary_source db)))
    | None -> (false, None)
  in
  let writer =
    match pool with Some _ when not readonly -> Some (Database.Writer.start db) | _ -> None
  in
  let loop_ref = ref None in
  let loop_json () =
    match !loop_ref with
    | None -> []
    | Some t ->
        let ls = Event_loop.stats t in
        let open Pobs.Json in
        [
          ( "loop",
            Obj
              [
                ("backend", Str (Event_loop.backend_name t));
                ("accepted", Int ls.Event_loop.s_accepted);
                ("overloaded", Int ls.Event_loop.s_overloaded);
                ("timeouts", Int ls.Event_loop.s_timeouts);
                ("handled", Int ls.Event_loop.s_handled);
                ("open_connections", Int ls.Event_loop.s_open_conns);
              ] );
        ]
  in
  (* always present: legacy mode still reports the event loop *)
  let serving_json =
    Some
      (fun () ->
        let open Pobs.Json in
        let cnt c = Int (int_of_float (Pobs.Metrics.counter_value c)) in
        let pool_part =
          match pool with
          | None -> []
          | Some p ->
              Reader_pool.update_metrics p;
              let ps = Reader_pool.stats p in
              let p99 =
                let v = Pobs.Metrics.hist_quantile m_request_ns 0.99 /. 1e6 in
                Float (if Float.is_nan v then 0. else v)
              in
              [
                ("readers", Int ps.Reader_pool.p_readers);
                ("generation_lsn", Int ps.Reader_pool.p_gen_lsn);
                ("generation_age_ms", Float ps.Reader_pool.p_age_ms);
                ("refreshes", Int ps.Reader_pool.p_refreshes);
                ("refresh_errors", Int ps.Reader_pool.p_refresh_errors);
                ("routed_reads", Int ps.Reader_pool.p_routed);
                ("catchup_waits", Int ps.Reader_pool.p_catchup_waits);
                ("draining_generations", Int ps.Reader_pool.p_draining);
                ("fallthroughs", cnt m_fallthrough);
                ("request_p99_ms", p99);
              ]
        in
        let group =
          match writer with
          | None -> []
          | Some w ->
              let gs = Database.Writer.stats w in
              [
                ( "group",
                  Obj
                    [
                      ("batches", Int gs.Pstore.Store.Group.batches);
                      ("commits", Int gs.Pstore.Store.Group.commits);
                      ("aborts", Int gs.Pstore.Store.Group.aborts);
                      ("queued", Int gs.Pstore.Store.Group.queued);
                      ("group_writes", cnt m_group_writes);
                    ] );
              ]
        in
        Obj (pool_part @ group @ loop_json ()))
  in
  let ctx =
    {
      x_db = db;
      x_readonly = readonly;
      x_repl_status = repl_status;
      x_pool = pool;
      x_writer = writer;
      x_serving = serving_json;
      x_cluster = cluster;
    }
  in
  (* Handlers read the ctx through this cell on every request; a
     cluster node hands in its own [?ctx_cell] and swaps a new ctx in
     when its role flips. *)
  let ctx_cell =
    match ctx_cell with
    | Some cell ->
        Atomic.set cell ctx;
        cell
    | None -> Atomic.make ctx
  in
  let bind_sock port =
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    (* the backlog must absorb a full admission-control burst: a SYN
       dropped off a short queue is retransmitted after ~1 s, which
       reads as a one-second connect stall, not backpressure *)
    Unix.listen sock (max 128 max_conns);
    let bound = match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> port in
    (sock, bound)
  in
  let sock, bound_port = bind_sock port in
  (match ready with Some f -> f bound_port | None -> ());
  let bin =
    match binary_port with
    | None -> None
    | Some p ->
        let bsock, bport = bind_sock p in
        (match binary_ready with Some f -> f bport | None -> ());
        Some (bsock, bport)
  in
  let listeners =
    http_listener sock :: (match bin with Some (b, _) -> [ bin_listener b ] | None -> [])
  in
  (* Legacy mode executes on exactly one worker thread — the live
     handle keeps its single-threaded discipline; pool mode sizes the
     executor to the reader fleet, as handlers block on reader-domain
     results and group-commit fsyncs. *)
  let workers =
    match pool with Some p -> max 4 (2 * Reader_pool.size p) | None -> 1
  in
  let execute = function
    | RHttp r -> execute_http (Atomic.get ctx_cell) r
    | RBin f -> execute_bin (Atomic.get ctx_cell) f
  in
  let t, worker_threads =
    Event_loop.create ~max_conns ~timeout_s:client_timeout ~workers ~execute listeners
  in
  loop_ref := Some t;
  Printf.printf "prometheus: serving on http://%s:%d/%s%s%s (%s)\n%!" host bound_port
    (if readonly then " (read-only replica)" else "")
    (match pool with
    | Some p -> Printf.sprintf " (snapshot pool: %d readers)" (Reader_pool.size p)
    | None -> "")
    (match bin with
    | Some (_, bp) -> Printf.sprintf " (binary protocol on %d)" bp
    | None -> "")
    (Event_loop.backend_name t);
  let continue () =
    (not !stop)
    && match max_requests with None -> true | Some m -> Event_loop.requests_handled t < m
  in
  Event_loop.run t worker_threads ~continue ();
  Unix.close sock;
  (match bin with Some (b, _) -> Unix.close b | None -> ());
  List.iter
    (fun (signum, prev) -> try Sys.set_signal signum prev with Invalid_argument _ | Sys_error _ -> ())
    saved;
  (match writer with Some w -> ( try Database.Writer.stop w with _ -> ()) | None -> ());
  if own_pool then match pool with Some p -> Reader_pool.stop p | None -> ()
