(** An HTTP/1.0 front-end to a Prometheus database (thesis 6.1.7).

    The thesis prototype exposed the database to user interfaces
    through an HTTP server; this module provides the same access path:

    - [GET /]            — usage;
    - [GET /query?q=...] — run a POOL query (URL-encoded), text result;
    - [GET /check?q=...] — static-check a POOL query;
    - [GET /schema]      — the schema, classes and relationship classes;
    - [GET /contexts]    — the classifications in the database;
    - [GET /stats]       — storage/query/observability statistics, JSON;
    - [GET /metrics]     — Prometheus text exposition (format 0.0.4);
    - [POST /create?class=C&attr=v...]                  — create an object;
    - [POST /update?oid=N&attr=A&value=V]               — set an attribute;
    - [POST /delete?oid=N]                              — delete (cascades);
    - [POST /link?rel=R&origin=N&destination=M]         — relate two objects;
    - [POST /unlink?oid=N]                              — remove a rel instance.

    Two serving modes:

    {b Legacy} ([readers = 0], the default): single-threaded — one
    connection at a time against the live handle, mutations inside
    [Database.with_tx].  This is the mode the object layer's
    single-user heritage assumes, kept bit-compatible for tests and
    small deployments.

    {b Snapshot serving} ([readers = N > 0], or an explicit [?pool]):
    GET traffic is routed to a {!Reader_pool} of N reader domains, each
    holding a frozen [Database.snapshot] view refreshed at a bounded
    LSN lag; mutations are funnelled through a [Database.Writer] group
    so concurrent HTTP writers share fsync cycles.  Read-your-writes:
    every mutating response carries an [X-PDB-LSN] header; a GET
    presenting [X-PDB-Min-LSN] waits (bounded) for a refresh to catch
    up or falls through to the primary handle, serialised with the
    write stream.  Responses state their route in [X-PDB-Route]
    ([pool] or [primary]).  A read-only replica given an external
    [?pool] serves the same way but answers 503 when it cannot catch up
    to a client's token. *)

open Pmodel

let url_decode (s : string) : string =
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    (match s.[!i] with
    | '+' -> Buffer.add_char b ' '
    | '%' when !i + 2 < n ->
        (try
           Buffer.add_char b (Char.chr (int_of_string ("0x" ^ String.sub s (!i + 1) 2)));
           i := !i + 2
         with _ -> Buffer.add_char b '%')
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; _version ] -> Some (meth, target)
  | _ -> None

let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
      let path = String.sub target 0 i in
      let qs = String.sub target (i + 1) (String.length target - i - 1) in
      let params =
        String.split_on_char '&' qs
        |> List.filter_map (fun kv ->
               match String.index_opt kv '=' with
               | Some j ->
                   Some
                     ( String.sub kv 0 j,
                       url_decode (String.sub kv (j + 1) (String.length kv - j - 1)) )
               | None -> Some (kv, ""))
      in
      (path, params)

let respond ?(content_type = "text/plain; charset=utf-8") ?(extra = []) out ~status ~body =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "HTTP/1.0 %s\r\n" status);
  Buffer.add_string b (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string b (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v)) extra;
  Buffer.add_string b "Connection: close\r\n\r\n";
  output_string out (Buffer.contents b);
  output_string out body

let schema_text db =
  let schema = Database.schema db in
  let b = Buffer.create 512 in
  List.iter
    (fun (c : Meta.class_def) ->
      if c.Meta.class_name = "" || c.Meta.class_name.[0] <> '_' then
        Buffer.add_string b
          (Printf.sprintf "class %s supers=[%s] attrs=[%s]%s\n" c.Meta.class_name
             (String.concat "," c.Meta.supers)
             (String.concat ","
                (List.map (fun (a : Meta.attr_def) -> a.Meta.attr_name) c.Meta.attrs))
             (if c.Meta.abstract then " abstract" else "")))
    (List.sort compare (Meta.classes schema));
  List.iter
    (fun (r : Meta.rel_def) ->
      Buffer.add_string b
        (Printf.sprintf "rel %s : %s -> %s (%s)\n" r.Meta.rel_name r.Meta.origin
           r.Meta.destination
           (match r.Meta.kind with Meta.Aggregation -> "aggregation" | Meta.Association -> "association")))
    (List.sort compare (Meta.rels schema));
  Buffer.contents b

let usage =
  "Prometheus HTTP interface\n\
   GET /query?q=<pool query>   run a POOL query\n\
   GET /check?q=<pool query>   static-check a POOL query\n\
   GET /schema                 list classes and relationship classes\n\
   GET /contexts               list classifications\n\
   GET /stats                  storage/query/observability statistics (JSON)\n\
   GET /metrics                Prometheus text exposition\n\
   POST /create?class=C&a=v     create an object (other params are attributes)\n\
   POST /update?oid=N&attr=A&value=V\n\
   POST /delete?oid=N           delete an object (cascades)\n\
   POST /link?rel=R&origin=N&destination=M[&context=K]\n\
   POST /unlink?oid=N           remove a relationship instance\n\
   Mutating responses carry X-PDB-LSN; send it back as X-PDB-Min-LSN\n\
   on GETs for read-your-writes.\n"

(* --- observability surfaces ------------------------------------------- *)

let m_requests =
  Pobs.Metrics.counter "pdb_http_requests_total" ~help:"HTTP requests handled"

let m_request_ns = Pobs.Metrics.histogram "pdb_http_request_ns" ~help:"HTTP request latency"

let m_fallthrough =
  Pobs.Metrics.counter "pdb_serving_fallthrough_total"
    ~help:"Reads that fell through the snapshot pool to the primary handle"

let m_group_writes =
  Pobs.Metrics.counter "pdb_serving_group_writes_total"
    ~help:"HTTP mutations routed through the group-commit writer"

let g_objects = Pobs.Metrics.gauge "pdb_store_objects" ~help:"Objects in the database"
let g_pages = Pobs.Metrics.gauge "pdb_store_pages" ~help:"Pages in the database file"

(* Gauges are snapshots of store state, refreshed at scrape time.  The
   object count comes from the mirror, not a B-tree walk: scrapes run
   concurrently with the group writer in pool mode, and walking the
   live tree through the page cache from another thread is unsafe. *)
let refresh_gauges db =
  let s = Pstore.Store.stats ~count_objects:false (Database.store db) in
  Pobs.Metrics.seti g_objects (Database.object_count db);
  Pobs.Metrics.seti g_pages s.Pstore.Store.pages

(** The /metrics body: the whole process-wide registry in Prometheus
    text exposition format.  [ensure_metrics] forces the rule-engine
    module to link so its families are present even before any rule is
    loaded. *)
let metrics_text db : string =
  Prules.Engine.ensure_metrics ();
  refresh_gauges db;
  Pobs.Metrics.expose ()

let metrics_content_type = "text/plain; version=0.0.4; charset=utf-8"

(** The /stats body: a JSON superset of the old plaintext document —
    per-database storage and query counters, observability switches,
    the slow-query log, and a JSON mirror of the metric registry.  All
    serialisation goes through {!Pobs.Json}, so no attribute value can
    produce malformed output.  [?serving], when present, contributes a
    "serving" section (snapshot pool + group writer). *)
let stats_json ?serving (db : Database.t) : string =
  Prules.Engine.ensure_metrics ();
  refresh_gauges db;
  let s = Pstore.Store.stats ~count_objects:false (Database.store db) in
  let q = Pool_lang.Pool.stats db in
  let open Pobs.Json in
  let sections =
    [
      ( "storage",
        Obj
          [
            ("objects", Int (Database.object_count db));
            ("pages", Int s.Pstore.Store.pages);
            ("page_reads", Int s.Pstore.Store.page_reads);
            ("page_writes", Int s.Pstore.Store.page_writes);
            ("cache_hits", Int s.Pstore.Store.cache_hits);
            ("cache_misses", Int s.Pstore.Store.cache_misses);
            ("evictions", Int s.Pstore.Store.evictions);
            ("journal_bytes", Int s.Pstore.Store.journal_bytes);
            ("snapshots", Int s.Pstore.Store.snapshots);
            ("pinned_versions", Int s.Pstore.Store.pinned_versions);
            ("snapshot_reads", Int s.Pstore.Store.snapshot_reads);
          ] );
      ( "query",
        Obj
          [
            ("index_probes", Int q.Pool_lang.Eval.index_probes);
            ("range_scans", Int q.Pool_lang.Eval.range_scans);
            ("hash_joins", Int q.Pool_lang.Eval.hash_joins);
            ("extent_scans", Int q.Pool_lang.Eval.extent_scans);
            ("plan_cache_hits", Int q.Pool_lang.Eval.plan_cache_hits);
            ("plan_cache_misses", Int q.Pool_lang.Eval.plan_cache_misses);
            ("adjacency_rebuilds", Int q.Pool_lang.Eval.adjacency_rebuilds);
          ] );
      ( "integrity",
        (* checksum/scrub posture of this database plus the
           process-wide detection counters *)
        let pager = Pstore.Store.pager (Database.store db) in
        let cnt (c : Pobs.Metrics.counter) = Int (int_of_float (Pobs.Metrics.counter_value c)) in
        Obj
          [
            ("checksums_enabled", Bool (Pstore.Pager.checksums_enabled pager));
            ( "quarantined_pages",
              List (List.map (fun no -> Int no) (Pstore.Pager.quarantined pager)) );
            ("pages_corrupt_detected", cnt Pstore.Pager.m_page_corrupt);
            ("scrub_runs", cnt Pstore.Pager.m_scrub_runs);
            ("scrub_pages", cnt Pstore.Pager.m_scrub_pages);
            ("scrub_corrupt", cnt Pstore.Pager.m_scrub_corrupt);
            ("recovery_torn_tails", cnt Pstore.Pager.m_torn_tail);
          ] );
      ( "observability",
        Obj
          [
            ("metrics_enabled", Bool !Pobs.Metrics.enabled);
            ("trace_enabled", Bool !Pobs.Trace.enabled);
            ("trace_spans_recorded", Int (Pobs.Trace.recorded ()));
            ("slow_query_threshold_ns", Int !Pobs.Slowlog.threshold_ns);
          ] );
    ]
  in
  let serving_section =
    match serving with None -> [] | Some f -> [ ("serving", f ()) ]
  in
  to_string
    (Obj
       (sections @ serving_section
       @ [ ("slow_queries", Pobs.Slowlog.to_json ()); ("metrics", Pobs.Metrics.expose_json ()) ]
       ))

let handle ?serving (db : Database.t) (path : string) (params : (string * string) list) :
    string * string =
  match path with
  | "/" -> ("200 OK", usage)
  | "/query" -> (
      match List.assoc_opt "q" params with
      | None | Some "" -> ("400 Bad Request", "missing q parameter\n")
      | Some q -> (
          try ("200 OK", Value.to_string (Pool_lang.Pool.query db q) ^ "\n") with
          | Pool_lang.Lexer.Syntax_error (m, pos) ->
              ("400 Bad Request", Printf.sprintf "syntax error at %d: %s\n" pos m)
          | Pool_lang.Eval.Eval_error m -> ("400 Bad Request", "evaluation error: " ^ m ^ "\n")
          | e -> ("500 Internal Server Error", Printexc.to_string e ^ "\n")))
  | "/check" -> (
      match List.assoc_opt "q" params with
      | None | Some "" -> ("400 Bad Request", "missing q parameter\n")
      | Some q -> (
          try
            match Pool_lang.Typecheck.check_string (Database.schema db) q with
            | [] -> ("200 OK", "ok\n")
            | errs ->
                ( "200 OK",
                  String.concat ""
                    (List.map
                       (fun (e : Pool_lang.Typecheck.error) ->
                         Printf.sprintf "error: %s (in %s)\n" e.Pool_lang.Typecheck.message
                           e.Pool_lang.Typecheck.expr)
                       errs) )
          with Pool_lang.Lexer.Syntax_error (m, pos) ->
            ("400 Bad Request", Printf.sprintf "syntax error at %d: %s\n" pos m)))
  | "/schema" -> ("200 OK", schema_text db)
  | "/contexts" ->
      ( "200 OK",
        String.concat ""
          (List.map
             (fun (oid, name) -> Printf.sprintf "#%d %s\n" oid name)
             (Database.contexts db)) )
  | "/stats" -> ("200 OK", stats_json ?serving db ^ "\n")
  | "/metrics" -> ("200 OK", metrics_text db)
  | _ -> ("404 Not Found", "not found\n")

(* Content type per endpoint; everything else is plain text. *)
let content_type_of_path = function
  | "/stats" -> "application/json; charset=utf-8"
  | "/metrics" -> metrics_content_type
  | _ -> "text/plain; charset=utf-8"

(* --- mutation endpoints ------------------------------------------------ *)

exception Bad_param of string

let bad fmt = Format.kasprintf (fun s -> raise (Bad_param s)) fmt

(* Typed literal syntax for attribute values in query strings: null,
   true/false, integer, float, #oid references; everything else is a
   string. *)
let parse_value (s : string) : Value.t =
  if s = "null" then Value.VNull
  else if s = "true" then Value.VBool true
  else if s = "false" then Value.VBool false
  else if String.length s > 1 && s.[0] = '#' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some oid -> Value.VRef oid
    | None -> Value.VString s
  else
    match int_of_string_opt s with
    | Some i -> Value.VInt i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Value.VFloat f
        | None -> Value.VString s)

let oid_of_string k s =
  let s = if String.length s > 1 && s.[0] = '#' then String.sub s 1 (String.length s - 1) else s in
  match int_of_string_opt s with Some oid -> oid | None -> bad "%s: not an oid: %s" k s

let str_param params k =
  match List.assoc_opt k params with
  | Some v when v <> "" -> v
  | _ -> bad "missing %s parameter" k

let oid_param params k = oid_of_string k (str_param params k)

let attr_params ~reserved params =
  List.filter_map
    (fun (k, v) -> if List.mem k reserved then None else Some (k, parse_value v))
    params

type mutation =
  | MCreate of string * (string * Value.t) list
  | MUpdate of int * string * Value.t
  | MDelete of int
  | MLink of {
      rel : string;
      origin : int;
      destination : int;
      context : int option;
      attrs : (string * Value.t) list;
    }
  | MUnlink of int

let write_paths = [ "/create"; "/update"; "/delete"; "/link"; "/unlink" ]

(* Parsing happens before the body is submitted to the writer: a
   malformed request must cost a 400, never a group-batch rollback. *)
let parse_mutation (path : string) params : mutation =
  match path with
  | "/create" -> MCreate (str_param params "class", attr_params ~reserved:[ "class" ] params)
  | "/update" ->
      MUpdate
        ( oid_param params "oid",
          str_param params "attr",
          parse_value (match List.assoc_opt "value" params with Some v -> v | None -> bad "missing value parameter") )
  | "/delete" -> MDelete (oid_param params "oid")
  | "/link" ->
      MLink
        {
          rel = str_param params "rel";
          origin = oid_param params "origin";
          destination = oid_param params "destination";
          context = Option.map (oid_of_string "context") (List.assoc_opt "context" params);
          attrs = attr_params ~reserved:[ "rel"; "origin"; "destination"; "context" ] params;
        }
  | "/unlink" -> MUnlink (oid_param params "oid")
  | _ -> bad "not a mutation endpoint: %s" path

let apply_mutation (db : Database.t) (m : mutation) : string =
  match m with
  | MCreate (cls, attrs) -> Printf.sprintf "created #%d\n" (Database.create db cls attrs)
  | MUpdate (oid, attr, v) ->
      Database.update db oid attr v;
      "ok\n"
  | MDelete oid ->
      Database.delete db oid;
      "ok\n"
  | MLink { rel; origin; destination; context; attrs } ->
      Printf.sprintf "created #%d\n"
        (Database.link db ?context ~attrs rel ~origin ~destination)
  | MUnlink oid ->
      Database.unlink db oid;
      "ok\n"

(* --- request framing bounds -------------------------------------------- *)

(* Bounds on what a client may send before we stop listening to it: the
   server must not let one connection buffer without limit (memory) or
   trickle bytes forever (a slowloris holding a handler hostage). *)
let max_request_line = 8192
let max_header_bytes = 65536
let max_header_count = 100
let client_timeout_s = 10.

exception Line_too_long
exception Headers_too_large
exception Header_timeout

(* Read one LF-terminated line of at most [max] bytes (the caller trims
   the CR).  [input_line] is unbounded — a hostile client could feed an
   endless request line and exhaust memory.  [deadline] (monotonic ns)
   caps the wall-clock spent across reads: the socket's SO_RCVTIMEO
   only bounds each syscall, so a client trickling one byte per
   almost-timeout would otherwise hold the handler forever. *)
let read_line_bounded ?deadline inp ~max =
  let b = Buffer.create 128 in
  let rec go () =
    (match deadline with
    | Some d when Pobs.Monotonic.now_ns () > d -> raise Header_timeout
    | _ -> ());
    match input_char inp with
    | '\n' -> Buffer.contents b
    | c ->
        if Buffer.length b >= max then raise Line_too_long;
        Buffer.add_char b c;
        go ()
  in
  go ()

(* Read and parse the header block: lowercased names, trimmed values.
   Raises [Headers_too_large] (431) when the block exceeds the byte or
   count bound, [Header_timeout] (408) past the deadline. *)
let read_headers ?deadline inp : (string * string) list =
  let rec go acc count total =
    let line =
      try read_line_bounded ?deadline inp ~max:max_request_line
      with Line_too_long -> raise Headers_too_large
    in
    let line = String.trim line in
    if line = "" then List.rev acc
    else begin
      let total = total + String.length line in
      if total > max_header_bytes || count + 1 > max_header_count then raise Headers_too_large;
      let acc =
        match String.index_opt line ':' with
        | Some i ->
            let k = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
            let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
            (k, v) :: acc
        | None -> acc
      in
      go acc (count + 1) total
    end
  in
  go [] 0 0

(* --- request dispatch --------------------------------------------------- *)

(* Everything a connection handler needs; one value per [serve] call,
   shared by all handler threads. *)
type ctx = {
  x_db : Database.t;
  x_readonly : bool;
  x_repl_status : (unit -> string) option;
  x_pool : Reader_pool.t option;
  x_writer : Database.Writer.w option;
  x_serving : (unit -> Pobs.Json.t) option;
  x_timeout_s : float;
}

(* GET endpoints safe to serve from a frozen snapshot view. *)
let pool_routable = function
  | "/" | "/query" | "/check" | "/schema" | "/contexts" | "/stats" | "/metrics" -> true
  | _ -> false

let lsn_header lsn = ("X-PDB-LSN", string_of_int lsn)

let serve_get (x : ctx) out path params headers =
  let content_type =
    if path = "/repl" then "application/json; charset=utf-8" else content_type_of_path path
  in
  let timed f = Pobs.Metrics.time m_request_ns f in
  match (path, x.x_repl_status) with
  | "/repl", Some f ->
      let status, body = timed (fun () -> ("200 OK", f () ^ "\n")) in
      respond out ~status ~content_type ~body
  | _ -> (
      match x.x_pool with
      | Some pool when pool_routable path -> (
          let min_lsn =
            Option.bind (List.assoc_opt "x-pdb-min-lsn" headers) int_of_string_opt
          in
          match
            Reader_pool.read pool ?min_lsn (fun view ->
                timed (fun () -> handle ?serving:x.x_serving view path params))
          with
          | Reader_pool.Served ((status, body), lsn) ->
              respond out ~status ~content_type
                ~extra:[ lsn_header lsn; ("X-PDB-Route", "pool") ]
                ~body
          | Reader_pool.Behind best -> (
              match x.x_writer with
              | Some w -> (
                  (* Primary fallthrough: run the read in the writer
                     domain, serialised with the mutation stream — the
                     only safe way to touch the live handle. *)
                  Pobs.Metrics.inc m_fallthrough;
                  let lsn, r =
                    Database.Writer.read w (fun live ->
                        timed (fun () -> handle ?serving:x.x_serving live path params))
                  in
                  match r with
                  | Ok (status, body) ->
                      respond out ~status ~content_type
                        ~extra:[ lsn_header lsn; ("X-PDB-Route", "primary") ]
                        ~body
                  | Error e ->
                      respond out ~status:"500 Internal Server Error"
                        ~body:(Printexc.to_string e ^ "\n"))
              | None ->
                  (* A replica has no primary handle to fall through
                     to: be honest about the lag. *)
                  respond out ~status:"503 Service Unavailable"
                    ~extra:[ lsn_header best; ("Retry-After", "1") ]
                    ~body:(Printf.sprintf "behind: serving lsn %d\n" best))
          | exception Reader_pool.Stopped ->
              respond out ~status:"503 Service Unavailable" ~body:"shutting down\n"
          | exception e ->
              respond out ~status:"500 Internal Server Error"
                ~body:(Printexc.to_string e ^ "\n"))
      | _ ->
          let status, body =
            timed (fun () -> handle ?serving:x.x_serving x.x_db path params)
          in
          let extra =
            match x.x_pool with
            | None -> [ lsn_header (Pstore.Store.lsn (Database.store x.x_db)) ]
            | Some _ -> []
          in
          respond out ~status ~content_type ~extra ~body)

let serve_mutation (x : ctx) out path params =
  match parse_mutation path params with
  | exception Bad_param m ->
      respond out ~status:"400 Bad Request" ~body:("error: " ^ m ^ "\n")
  | mut -> (
      match
        Pobs.Metrics.time m_request_ns (fun () ->
            match x.x_writer with
            | Some w ->
                (* Group-commit routing: the body runs in the writer
                   domain as one soft transaction; concurrent HTTP
                   writers share the batch's single fsync. *)
                let lsn, body = Database.Writer.submit w (fun live -> apply_mutation live mut) in
                Pobs.Metrics.inc m_group_writes;
                (lsn, body)
            | None ->
                let body = Database.with_tx x.x_db (fun () -> apply_mutation x.x_db mut) in
                (Pstore.Store.lsn (Database.store x.x_db), body))
      with
      | lsn, body -> respond out ~status:"200 OK" ~extra:[ lsn_header lsn ] ~body
      | exception Database.Model_error m ->
          respond out ~status:"400 Bad Request" ~body:("error: " ^ m ^ "\n")
      | exception Pstore.Store.Group.Stopped ->
          respond out ~status:"503 Service Unavailable" ~body:"shutting down\n"
      | exception e ->
          respond out ~status:"500 Internal Server Error" ~body:(Printexc.to_string e ^ "\n"))

let dispatch (x : ctx) out line headers =
  match parse_request_line (String.trim line) with
  | Some ("GET", target) ->
      let path, params = split_target target in
      Pobs.Metrics.inc m_requests;
      serve_get x out path params headers
  | Some _ when x.x_readonly ->
      respond out ~status:"403 Forbidden" ~body:"read-only replica\n"
  | Some ("POST", target) when List.mem (fst (split_target target)) write_paths ->
      let path, params = split_target target in
      Pobs.Metrics.inc m_requests;
      serve_mutation x out path params
  | Some _ -> respond out ~status:"405 Method Not Allowed" ~body:"GET only\n"
  | None -> respond out ~status:"400 Bad Request" ~body:"bad request\n"

(* One full connection: framing, dispatch, response, close.  Never
   raises — per-connection errors are logged and the server moves on. *)
let handle_conn (x : ctx) client =
  (try
     (try
        Unix.setsockopt_float client Unix.SO_RCVTIMEO x.x_timeout_s;
        Unix.setsockopt_float client Unix.SO_SNDTIMEO x.x_timeout_s
      with Unix.Unix_error _ -> ());
     let inp = Unix.in_channel_of_descr client in
     let out = Unix.out_channel_of_descr client in
     let deadline = Pobs.Monotonic.now_ns () + int_of_float (x.x_timeout_s *. 1e9) in
     (match read_line_bounded ~deadline inp ~max:max_request_line with
     | line -> (
         match read_headers ~deadline inp with
         | headers -> dispatch x out line headers
         | exception Headers_too_large ->
             respond out ~status:"431 Request Header Fields Too Large"
               ~body:"header block too large\n"
         | exception Header_timeout ->
             respond out ~status:"408 Request Timeout" ~body:"timed out reading headers\n"
         | exception End_of_file ->
             respond out ~status:"400 Bad Request" ~body:"bad request\n")
     | exception End_of_file -> () (* client disconnected before sending *)
     | exception Line_too_long ->
         respond out ~status:"414 URI Too Long" ~body:"request line too long\n"
     | exception Header_timeout ->
         respond out ~status:"408 Request Timeout" ~body:"timed out reading request\n");
     flush out
   with e ->
     (* EPIPE/ECONNRESET/timeout from this client: log and move on;
        one broken connection must never take the server down. *)
     Printf.eprintf "prometheus: client error: %s\n%!" (Printexc.to_string e));
  try Unix.close client with Unix.Unix_error _ -> ()

(* How often the accept loop wakes to check the stop flag when no
   connection is pending.  Bounds shutdown latency. *)
let accept_poll_s = 0.25

(* Connections queued for handler threads in pool mode; beyond this the
   accept loop stops accepting (backpressure into the listen backlog). *)
let conn_queue_cap = 128

(** Serve [db] on [port] until [max_requests] requests have been
    handled (None = forever), [stop] is set, or a SIGTERM/SIGINT
    arrives.

    Graceful shutdown: signals only set a flag; in-flight requests are
    always finished and responded to, then the listen socket is closed,
    the previous signal dispositions are restored, and [serve] returns
    so the caller can flush and close the store.  The accept loop waits
    in [select] with a short timeout rather than a blocking [accept],
    so a stop request on an idle server is honoured within
    {!accept_poll_s}.

    Snapshot serving: [?readers] > 0 builds a {!Reader_pool} over [db]
    (refreshed within [?max_lag_ms]) plus a [Database.Writer] group,
    and handles connections on a small thread pool so slow clients
    don't serialise the accept loop; [?pool] supplies an external
    pool instead (the read-only replica path — no writer is started
    when [readonly]).  Both are stopped before [serve] returns iff
    they were created here.

    Replication hooks: [?readonly] rejects every non-GET method with
    403 (a read-only replica serves queries but accepts no writes) and
    [?repl_status] is exposed verbatim as [GET /repl] (JSON).
    [?ready] is called with the actually bound port (useful with
    [~port:0]) once the socket is listening.

    Robust against misbehaving clients: SIGPIPE is ignored (a client
    closing mid-response must surface as [EPIPE], not kill the
    process), per-connection errors are logged and the loop continues,
    request lines and header blocks are size- and count-bounded (414 /
    431), and a wall-clock deadline spans all request reads (408), so
    neither a flood nor a trickle can wedge a handler. *)
let serve ?(host = "127.0.0.1") ?max_requests ?stop ?ready ?(readonly = false)
    ?repl_status ?(readers = 0) ?(max_lag_ms = 50.) ?pool
    ?(client_timeout = client_timeout_s) (db : Database.t) ~port () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> () (* no SIGPIPE on this platform *));
  let stop = match stop with Some r -> r | None -> ref false in
  let install signum =
    try Some (signum, Sys.signal signum (Sys.Signal_handle (fun _ -> stop := true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let saved = List.filter_map install [ Sys.sigterm; Sys.sigint ] in
  let own_pool, pool =
    match pool with
    | Some p -> (false, Some p)
    | None when readers > 0 ->
        (true, Some (Reader_pool.create ~max_lag_ms ~readers (Reader_pool.primary_source db)))
    | None -> (false, None)
  in
  let writer =
    match pool with Some _ when not readonly -> Some (Database.Writer.start db) | _ -> None
  in
  let serving_json =
    match pool with
    | None -> None
    | Some p ->
        Some
          (fun () ->
            Reader_pool.update_metrics p;
            let ps = Reader_pool.stats p in
            let open Pobs.Json in
            let cnt c = Int (int_of_float (Pobs.Metrics.counter_value c)) in
            let p99 =
              let v = Pobs.Metrics.hist_quantile m_request_ns 0.99 /. 1e6 in
              Float (if Float.is_nan v then 0. else v)
            in
            let base =
              [
                ("readers", Int ps.Reader_pool.p_readers);
                ("generation_lsn", Int ps.Reader_pool.p_gen_lsn);
                ("generation_age_ms", Float ps.Reader_pool.p_age_ms);
                ("refreshes", Int ps.Reader_pool.p_refreshes);
                ("refresh_errors", Int ps.Reader_pool.p_refresh_errors);
                ("routed_reads", Int ps.Reader_pool.p_routed);
                ("catchup_waits", Int ps.Reader_pool.p_catchup_waits);
                ("draining_generations", Int ps.Reader_pool.p_draining);
                ("fallthroughs", cnt m_fallthrough);
                ("request_p99_ms", p99);
              ]
            in
            let group =
              match writer with
              | None -> []
              | Some w ->
                  let gs = Database.Writer.stats w in
                  [
                    ( "group",
                      Obj
                        [
                          ("batches", Int gs.Pstore.Store.Group.batches);
                          ("commits", Int gs.Pstore.Store.Group.commits);
                          ("aborts", Int gs.Pstore.Store.Group.aborts);
                          ("queued", Int gs.Pstore.Store.Group.queued);
                          ("group_writes", cnt m_group_writes);
                        ] );
                  ]
            in
            Obj (base @ group))
  in
  let ctx =
    {
      x_db = db;
      x_readonly = readonly;
      x_repl_status = repl_status;
      x_pool = pool;
      x_writer = writer;
      x_serving = serving_json;
      x_timeout_s = client_timeout;
    }
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock 64;
  let bound_port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  (match ready with Some f -> f bound_port | None -> ());
  Printf.printf "prometheus: serving on http://%s:%d/%s%s\n%!" host bound_port
    (if readonly then " (read-only replica)" else "")
    (match pool with
    | Some p -> Printf.sprintf " (snapshot pool: %d readers)" (Reader_pool.size p)
    | None -> "");
  let handled = Atomic.make 0 in
  let continue () =
    (not !stop) && match max_requests with None -> true | Some m -> Atomic.get handled < m
  in
  (* Pool mode handles connections on a small thread pool: handler
     threads block on reader-domain results and on client I/O, so a
     slow client no longer serialises everyone behind it. *)
  let pooled = Option.is_some pool in
  let conn_q = Queue.create () in
  let conn_mu = Mutex.create () in
  let conn_cv = Condition.create () in
  let conn_stop = ref false in
  let worker () =
    let rec loop () =
      Mutex.lock conn_mu;
      while Queue.is_empty conn_q && not !conn_stop do
        Condition.wait conn_cv conn_mu
      done;
      (* drain before exiting: every accepted connection gets a response *)
      if Queue.is_empty conn_q then Mutex.unlock conn_mu
      else begin
        let c = Queue.pop conn_q in
        Condition.broadcast conn_cv;
        Mutex.unlock conn_mu;
        handle_conn ctx c;
        Atomic.incr handled;
        loop ()
      end
    in
    loop ()
  in
  let workers =
    if pooled then
      let n = max 4 (2 * match pool with Some p -> Reader_pool.size p | None -> 0) in
      Array.init n (fun _ -> Thread.create worker ())
    else [||]
  in
  while continue () do
    (* Wait for a connection with a bounded select so [stop] — set by a
       signal handler or another thread — is noticed on an idle server.
       EINTR (the signal itself) just re-checks the flag. *)
    let pending =
      match Unix.select [ sock ] [] [] accept_poll_s with
      | [], _, _ -> false
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if pending && continue () then begin
      let client, _addr = Unix.accept sock in
      if pooled then begin
        Mutex.lock conn_mu;
        while Queue.length conn_q >= conn_queue_cap && not !conn_stop do
          Condition.wait conn_cv conn_mu
        done;
        Queue.push client conn_q;
        Condition.broadcast conn_cv;
        Mutex.unlock conn_mu
      end
      else begin
        handle_conn ctx client;
        Atomic.incr handled
      end
    end
  done;
  if pooled then begin
    Mutex.lock conn_mu;
    conn_stop := true;
    Condition.broadcast conn_cv;
    Mutex.unlock conn_mu;
    Array.iter Thread.join workers
  end;
  Unix.close sock;
  List.iter
    (fun (signum, prev) -> try Sys.set_signal signum prev with Invalid_argument _ | Sys_error _ -> ())
    saved;
  (match writer with Some w -> ( try Database.Writer.stop w with _ -> ()) | None -> ());
  if own_pool then match pool with Some p -> Reader_pool.stop p | None -> ()
