(** A small HTTP/1.0 front-end to a Prometheus database (thesis 6.1.7).

    The thesis prototype exposed the database to user interfaces
    through an HTTP server; this module provides the same access path:

    - [GET /]            — usage;
    - [GET /query?q=...] — run a POOL query (URL-encoded), text result;
    - [GET /check?q=...] — static-check a POOL query;
    - [GET /schema]      — the schema, classes and relationship classes;
    - [GET /contexts]    — the classifications in the database;
    - [GET /stats]       — storage/query/observability statistics, JSON;
    - [GET /metrics]     — Prometheus text exposition (format 0.0.4).

    Single-threaded by design: the object layer is not re-entrant and
    taxonomic interfaces are single-user editors (the thesis's
    multi-user distribution is listed as future work). *)

open Pmodel

let url_decode (s : string) : string =
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    (match s.[!i] with
    | '+' -> Buffer.add_char b ' '
    | '%' when !i + 2 < n ->
        (try
           Buffer.add_char b (Char.chr (int_of_string ("0x" ^ String.sub s (!i + 1) 2)));
           i := !i + 2
         with _ -> Buffer.add_char b '%')
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; _version ] -> Some (meth, target)
  | _ -> None

let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
      let path = String.sub target 0 i in
      let qs = String.sub target (i + 1) (String.length target - i - 1) in
      let params =
        String.split_on_char '&' qs
        |> List.filter_map (fun kv ->
               match String.index_opt kv '=' with
               | Some j ->
                   Some
                     ( String.sub kv 0 j,
                       url_decode (String.sub kv (j + 1) (String.length kv - j - 1)) )
               | None -> Some (kv, ""))
      in
      (path, params)

let respond ?(content_type = "text/plain; charset=utf-8") out ~status ~body =
  let headers =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      status content_type (String.length body)
  in
  output_string out headers;
  output_string out body

let schema_text db =
  let schema = Database.schema db in
  let b = Buffer.create 512 in
  List.iter
    (fun (c : Meta.class_def) ->
      if c.Meta.class_name = "" || c.Meta.class_name.[0] <> '_' then
        Buffer.add_string b
          (Printf.sprintf "class %s supers=[%s] attrs=[%s]%s\n" c.Meta.class_name
             (String.concat "," c.Meta.supers)
             (String.concat ","
                (List.map (fun (a : Meta.attr_def) -> a.Meta.attr_name) c.Meta.attrs))
             (if c.Meta.abstract then " abstract" else "")))
    (List.sort compare (Meta.classes schema));
  List.iter
    (fun (r : Meta.rel_def) ->
      Buffer.add_string b
        (Printf.sprintf "rel %s : %s -> %s (%s)\n" r.Meta.rel_name r.Meta.origin
           r.Meta.destination
           (match r.Meta.kind with Meta.Aggregation -> "aggregation" | Meta.Association -> "association")))
    (List.sort compare (Meta.rels schema));
  Buffer.contents b

let usage =
  "Prometheus HTTP interface\n\
   GET /query?q=<pool query>   run a POOL query\n\
   GET /check?q=<pool query>   static-check a POOL query\n\
   GET /schema                 list classes and relationship classes\n\
   GET /contexts               list classifications\n\
   GET /stats                  storage/query/observability statistics (JSON)\n\
   GET /metrics                Prometheus text exposition\n"

(* --- observability surfaces ------------------------------------------- *)

let m_requests =
  Pobs.Metrics.counter "pdb_http_requests_total" ~help:"HTTP requests handled"

let m_request_ns = Pobs.Metrics.histogram "pdb_http_request_ns" ~help:"HTTP request latency"

let g_objects = Pobs.Metrics.gauge "pdb_store_objects" ~help:"Objects in the database"
let g_pages = Pobs.Metrics.gauge "pdb_store_pages" ~help:"Pages in the database file"

(* Gauges are snapshots of store state, refreshed at scrape time. *)
let refresh_gauges db =
  let s = Pstore.Store.stats (Database.store db) in
  Pobs.Metrics.seti g_objects s.Pstore.Store.objects;
  Pobs.Metrics.seti g_pages s.Pstore.Store.pages

(** The /metrics body: the whole process-wide registry in Prometheus
    text exposition format.  [ensure_metrics] forces the rule-engine
    module to link so its families are present even before any rule is
    loaded. *)
let metrics_text db : string =
  Prules.Engine.ensure_metrics ();
  refresh_gauges db;
  Pobs.Metrics.expose ()

let metrics_content_type = "text/plain; version=0.0.4; charset=utf-8"

(** The /stats body: a JSON superset of the old plaintext document —
    per-database storage and query counters, observability switches,
    the slow-query log, and a JSON mirror of the metric registry.  All
    serialisation goes through {!Pobs.Json}, so no attribute value can
    produce malformed output. *)
let stats_json (db : Database.t) : string =
  Prules.Engine.ensure_metrics ();
  refresh_gauges db;
  let s = Pstore.Store.stats (Database.store db) in
  let q = Pool_lang.Pool.stats db in
  let open Pobs.Json in
  to_string
    (Obj
       [
         ( "storage",
           Obj
             [
               ("objects", Int s.Pstore.Store.objects);
               ("pages", Int s.Pstore.Store.pages);
               ("page_reads", Int s.Pstore.Store.page_reads);
               ("page_writes", Int s.Pstore.Store.page_writes);
               ("cache_hits", Int s.Pstore.Store.cache_hits);
               ("cache_misses", Int s.Pstore.Store.cache_misses);
               ("evictions", Int s.Pstore.Store.evictions);
               ("journal_bytes", Int s.Pstore.Store.journal_bytes);
               ("snapshots", Int s.Pstore.Store.snapshots);
               ("pinned_versions", Int s.Pstore.Store.pinned_versions);
               ("snapshot_reads", Int s.Pstore.Store.snapshot_reads);
             ] );
         ( "query",
           Obj
             [
               ("index_probes", Int q.Pool_lang.Eval.index_probes);
               ("range_scans", Int q.Pool_lang.Eval.range_scans);
               ("hash_joins", Int q.Pool_lang.Eval.hash_joins);
               ("extent_scans", Int q.Pool_lang.Eval.extent_scans);
               ("plan_cache_hits", Int q.Pool_lang.Eval.plan_cache_hits);
               ("plan_cache_misses", Int q.Pool_lang.Eval.plan_cache_misses);
               ("adjacency_rebuilds", Int q.Pool_lang.Eval.adjacency_rebuilds);
             ] );
         ( "integrity",
           (* checksum/scrub posture of this database plus the
              process-wide detection counters *)
           let pager = Pstore.Store.pager (Database.store db) in
           let cnt (c : Pobs.Metrics.counter) = Int (int_of_float (Pobs.Metrics.counter_value c)) in
           Obj
             [
               ("checksums_enabled", Bool (Pstore.Pager.checksums_enabled pager));
               ( "quarantined_pages",
                 List (List.map (fun no -> Int no) (Pstore.Pager.quarantined pager)) );
               ("pages_corrupt_detected", cnt Pstore.Pager.m_page_corrupt);
               ("scrub_runs", cnt Pstore.Pager.m_scrub_runs);
               ("scrub_pages", cnt Pstore.Pager.m_scrub_pages);
               ("scrub_corrupt", cnt Pstore.Pager.m_scrub_corrupt);
               ("recovery_torn_tails", cnt Pstore.Pager.m_torn_tail);
             ] );
         ( "observability",
           Obj
             [
               ("metrics_enabled", Bool !Pobs.Metrics.enabled);
               ("trace_enabled", Bool !Pobs.Trace.enabled);
               ("trace_spans_recorded", Int (Pobs.Trace.recorded ()));
               ("slow_query_threshold_ns", Int !Pobs.Slowlog.threshold_ns);
             ] );
         ("slow_queries", Pobs.Slowlog.to_json ());
         ("metrics", Pobs.Metrics.expose_json ());
       ])

let handle (db : Database.t) (path : string) (params : (string * string) list) :
    string * string =
  match path with
  | "/" -> ("200 OK", usage)
  | "/query" -> (
      match List.assoc_opt "q" params with
      | None | Some "" -> ("400 Bad Request", "missing q parameter\n")
      | Some q -> (
          try ("200 OK", Value.to_string (Pool_lang.Pool.query db q) ^ "\n") with
          | Pool_lang.Lexer.Syntax_error (m, pos) ->
              ("400 Bad Request", Printf.sprintf "syntax error at %d: %s\n" pos m)
          | Pool_lang.Eval.Eval_error m -> ("400 Bad Request", "evaluation error: " ^ m ^ "\n")
          | e -> ("500 Internal Server Error", Printexc.to_string e ^ "\n")))
  | "/check" -> (
      match List.assoc_opt "q" params with
      | None | Some "" -> ("400 Bad Request", "missing q parameter\n")
      | Some q -> (
          try
            match Pool_lang.Typecheck.check_string (Database.schema db) q with
            | [] -> ("200 OK", "ok\n")
            | errs ->
                ( "200 OK",
                  String.concat ""
                    (List.map
                       (fun (e : Pool_lang.Typecheck.error) ->
                         Printf.sprintf "error: %s (in %s)\n" e.Pool_lang.Typecheck.message
                           e.Pool_lang.Typecheck.expr)
                       errs) )
          with Pool_lang.Lexer.Syntax_error (m, pos) ->
            ("400 Bad Request", Printf.sprintf "syntax error at %d: %s\n" pos m)))
  | "/schema" -> ("200 OK", schema_text db)
  | "/contexts" ->
      ( "200 OK",
        String.concat ""
          (List.map
             (fun (oid, name) -> Printf.sprintf "#%d %s\n" oid name)
             (Database.contexts db)) )
  | "/stats" -> ("200 OK", stats_json db ^ "\n")
  | "/metrics" -> ("200 OK", metrics_text db)
  | _ -> ("404 Not Found", "not found\n")

(* Content type per endpoint; everything else is plain text. *)
let content_type_of_path = function
  | "/stats" -> "application/json; charset=utf-8"
  | "/metrics" -> metrics_content_type
  | _ -> "text/plain; charset=utf-8"

(* Bounds on what a client may send before we stop listening to it: a
   single-threaded server must not let one connection buffer without
   limit or stall the accept loop. *)
let max_request_line = 8192
let max_header_bytes = 65536
let client_timeout_s = 10.

exception Line_too_long

(* Read one LF-terminated line of at most [max] bytes (the caller trims
   the CR).  [input_line] is unbounded — a hostile client could feed an
   endless request line and exhaust memory. *)
let read_line_bounded inp ~max =
  let b = Buffer.create 128 in
  let rec go () =
    match input_char inp with
    | '\n' -> Buffer.contents b
    | c ->
        if Buffer.length b >= max then raise Line_too_long;
        Buffer.add_char b c;
        go ()
  in
  go ()

let drain_headers inp =
  let total = ref 0 in
  try
    let rec go () =
      let line = read_line_bounded inp ~max:max_request_line in
      total := !total + String.length line;
      if String.trim line <> "" && !total < max_header_bytes then go ()
    in
    go ()
  with End_of_file | Line_too_long -> ()

(* How often the accept loop wakes to check the stop flag when no
   connection is pending.  Bounds shutdown latency. *)
let accept_poll_s = 0.25

(** Serve [db] on [port] until [max_requests] requests have been
    handled (None = forever), [stop] is set, or a SIGTERM/SIGINT
    arrives.

    Graceful shutdown: signals only set a flag; the in-flight request
    is always finished and responded to, then the listen socket is
    closed, the previous signal dispositions are restored, and [serve]
    returns so the caller can flush and close the store.  The accept
    loop waits in [select] with a short timeout rather than a blocking
    [accept], so a stop request on an idle server is honoured within
    {!accept_poll_s}.

    Replication hooks: [?readonly] rejects every non-GET method with
    403 (a read-only replica serves queries but accepts no writes),
    [?repl_status] is exposed verbatim as [GET /repl] (JSON), and
    [?db_provider], when given, supplies the database handle per
    request — the replica swaps in a fresh read-only handle as applied
    LSNs advance.  [?ready] is called with the actually bound port
    (useful with [~port:0]) once the socket is listening.

    Robust against misbehaving clients: SIGPIPE is ignored (a client
    closing mid-response must surface as [EPIPE], not kill the
    process), per-connection errors are logged and the loop continues,
    request lines and headers are size-bounded, and sockets carry
    send/receive timeouts so a stalled client cannot wedge the
    single-threaded accept loop. *)
let serve ?(host = "127.0.0.1") ?max_requests ?stop ?ready ?(readonly = false)
    ?repl_status ?db_provider (db : Database.t) ~port () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> () (* no SIGPIPE on this platform *));
  let stop = match stop with Some r -> r | None -> ref false in
  let install signum =
    try Some (signum, Sys.signal signum (Sys.Signal_handle (fun _ -> stop := true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let saved = List.filter_map install [ Sys.sigterm; Sys.sigint ] in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock 16;
  let bound_port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  (match ready with Some f -> f bound_port | None -> ());
  Printf.printf "prometheus: serving on http://%s:%d/%s\n%!" host bound_port
    (if readonly then " (read-only replica)" else "");
  let handled = ref 0 in
  let continue () =
    (not !stop) && match max_requests with None -> true | Some m -> !handled < m
  in
  while continue () do
    (* Wait for a connection with a bounded select so [stop] — set by a
       signal handler or another thread — is noticed on an idle server.
       EINTR (the signal itself) just re-checks the flag. *)
    let pending =
      match Unix.select [ sock ] [] [] accept_poll_s with
      | [], _, _ -> false
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if pending && continue () then begin
      let client, _addr = Unix.accept sock in
      (try
         (try
            Unix.setsockopt_float client Unix.SO_RCVTIMEO client_timeout_s;
            Unix.setsockopt_float client Unix.SO_SNDTIMEO client_timeout_s
          with Unix.Unix_error _ -> ());
         let inp = Unix.in_channel_of_descr client in
         let out = Unix.out_channel_of_descr client in
         (match read_line_bounded inp ~max:max_request_line with
         | line -> (
             drain_headers inp;
             match parse_request_line (String.trim line) with
             | Some ("GET", target) ->
                 let db = match db_provider with Some f -> f () | None -> db in
                 let path, params = split_target target in
                 Pobs.Metrics.inc m_requests;
                 let status, body =
                   Pobs.Metrics.time m_request_ns (fun () ->
                       match (path, repl_status) with
                       | "/repl", Some f -> ("200 OK", f () ^ "\n")
                       | _ -> handle db path params)
                 in
                 let content_type =
                   if path = "/repl" then "application/json; charset=utf-8"
                   else content_type_of_path path
                 in
                 respond out ~status ~content_type ~body
             | Some _ when readonly ->
                 respond out ~status:"403 Forbidden" ~body:"read-only replica\n"
             | Some _ -> respond out ~status:"405 Method Not Allowed" ~body:"GET only\n"
             | None -> respond out ~status:"400 Bad Request" ~body:"bad request\n")
         | exception End_of_file -> () (* client disconnected before sending *)
         | exception Line_too_long ->
             respond out ~status:"414 URI Too Long" ~body:"request line too long\n");
         flush out
       with e ->
         (* EPIPE/ECONNRESET/timeout from this client: log and move on;
            one broken connection must never take the server down. *)
         Printf.eprintf "prometheus: client error: %s\n%!" (Printexc.to_string e));
      (try Unix.close client with Unix.Unix_error _ -> ());
      incr handled
    end
  done;
  Unix.close sock;
  List.iter
    (fun (signum, prev) -> try Sys.set_signal signum prev with Invalid_argument _ | Sys_error _ -> ())
    saved
