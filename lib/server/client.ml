(** Blocking client for the binary POOL protocol.

    Deliberately small and dependency-free: connect, send
    {!Binary_proto} frames, read answers.  [query] is the one-shot
    path; [batch] is the amortisation path — one [Batch] frame out, N
    answers back in request order, one write syscall and one read burst
    instead of N round trips.  The load generator and the protocol
    tests are both built on this module, and it is the reference
    implementation for anyone speaking the protocol from another
    language. *)

type t = {
  fd : Unix.file_descr;
  mutable buf : string; (* received, not yet parsed *)
  mutable next_id : int;
}

type answer = Ok of string | Err of string

let connect ?(host = "127.0.0.1") ~port () : t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  { fd; buf = ""; next_id = 0 }

let close (t : t) = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_all (t : t) (s : string) =
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < String.length s do
    off := !off + Unix.write t.fd b !off (String.length s - !off)
  done

exception Protocol_error of string

(** Read frames until one arrives; connection EOF or framing damage
    raises {!Protocol_error}. *)
let recv_frame (t : t) : Binary_proto.frame =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Binary_proto.parse t.buf ~off:0 with
    | Binary_proto.Frame (f, consumed) ->
        t.buf <- String.sub t.buf consumed (String.length t.buf - consumed);
        f
    | Binary_proto.Bad m -> raise (Protocol_error m)
    | Binary_proto.Need_more -> (
        match Unix.read t.fd chunk 0 (Bytes.length chunk) with
        | 0 -> raise (Protocol_error "connection closed mid-frame")
        | n ->
            t.buf <- t.buf ^ Bytes.sub_string chunk 0 n;
            go ())
  in
  go ()

let answer_of (id : int) (f : Binary_proto.frame) : answer =
  match f with
  | Binary_proto.Result r when r.id = id -> Ok r.v
  | Binary_proto.Error e when e.id = id -> Err e.msg
  | Binary_proto.Result _ | Binary_proto.Error _ ->
      raise (Protocol_error "answer id does not match query id")
  | _ -> raise (Protocol_error "unexpected frame type in answer")

(** Run one POOL query; returns its printed value or error text. *)
let query (t : t) (q : string) : answer =
  let id = t.next_id in
  t.next_id <- id + 1;
  send_all t (Binary_proto.encode (Binary_proto.Query { id; q }));
  answer_of id (recv_frame t)

(** Run a batch of POOL queries in one frame; answers come back in
    query order. *)
let batch (t : t) (qs : string list) : answer list =
  let ids =
    List.map
      (fun q ->
        let id = t.next_id in
        t.next_id <- id + 1;
        (id, q))
      qs
  in
  send_all t (Binary_proto.encode (Binary_proto.Batch ids));
  List.map (fun (id, _) -> answer_of id (recv_frame t)) ids
