(** Blocking client for the binary POOL protocol.

    Deliberately small and dependency-free: connect, send
    {!Binary_proto} frames, read answers.  [query] is the one-shot
    path; [batch] is the amortisation path — one [Batch] frame out, N
    answers back in request order, one write syscall and one read burst
    instead of N round trips.  The load generator, the router's backend
    pool and the protocol tests are all built on this module, and it is
    the reference implementation for anyone speaking the protocol from
    another language.

    Transport failures — refused connects, resets, EOF mid-frame — are
    surfaced as the typed {!Backend_down} instead of raw [Unix_error],
    so callers distinguish "this backend is gone, try a peer" from
    programming errors.  {!Protocol_error} still means framing damage:
    the stream cannot be resynchronised and the connection must die. *)

type t = {
  fd : Unix.file_descr;
  mutable buf : string; (* received, not yet parsed *)
  mutable next_id : int;
}

type answer = Ok of string | Err of string

exception Backend_down of string
exception Protocol_error of string

let down fmt = Printf.ksprintf (fun m -> raise (Backend_down m)) fmt

(* Map transport-level Unix errors to the typed failure; anything else
   (EBADF from a caller bug, say) still escapes as Unix_error. *)
let transport_errors =
  Unix.
    [
      ECONNREFUSED;
      ECONNRESET;
      ECONNABORTED;
      EPIPE;
      ETIMEDOUT;
      EHOSTUNREACH;
      ENETUNREACH;
      ENETDOWN;
      EHOSTDOWN;
      EADDRNOTAVAIL;
    ]

let wrap_unix (what : string) (f : unit -> 'a) : 'a =
  try f ()
  with Unix.Unix_error (e, _, _) when List.mem e transport_errors ->
    down "%s: %s" what (Unix.error_message e)

let connect ?(host = "127.0.0.1") ~port () : t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  (try
     wrap_unix
       (Printf.sprintf "connect %s:%d" host port)
       (fun () ->
         Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port)))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; buf = ""; next_id = 0 }

(** Connect with capped exponential backoff: [attempts] tries, delays
    [base_s], 2*[base_s], ... capped at [cap_s].  Raises the last
    {!Backend_down} if every attempt fails. *)
let connect_retry ?(host = "127.0.0.1") ~port ?(attempts = 5)
    ?(base_s = 0.05) ?(cap_s = 2.0) () : t =
  let rec go n delay =
    match connect ~host ~port () with
    | t -> t
    | exception Backend_down _ when n < attempts ->
        Thread.delay delay;
        go (n + 1) (Float.min cap_s (delay *. 2.))
  in
  go 1 base_s

let close (t : t) = try Unix.close t.fd with Unix.Unix_error _ -> ()
let fd (t : t) = t.fd

let fresh_id (t : t) : int =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let send_all (t : t) (s : string) =
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  wrap_unix "write" (fun () ->
      while !off < String.length s do
        match Unix.write t.fd b !off (String.length s - !off) with
        | 0 -> down "write: no progress"
        | n -> off := !off + n
      done)

let send_frame (t : t) (f : Binary_proto.frame) =
  send_all t (Binary_proto.encode f)

(** Read frames until one arrives; framing damage raises
    {!Protocol_error}, connection loss raises {!Backend_down}. *)
let recv_frame (t : t) : Binary_proto.frame =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Binary_proto.parse t.buf ~off:0 with
    | Binary_proto.Frame (f, consumed) ->
        t.buf <- String.sub t.buf consumed (String.length t.buf - consumed);
        f
    | Binary_proto.Bad m -> raise (Protocol_error m)
    | Binary_proto.Need_more -> (
        match
          wrap_unix "read" (fun () -> Unix.read t.fd chunk 0 (Bytes.length chunk))
        with
        | 0 -> down "connection closed mid-frame"
        | n ->
            t.buf <- t.buf ^ Bytes.sub_string chunk 0 n;
            go ())
  in
  go ()

(** True when a frame is already buffered or bytes are readable within
    [timeout_s]; lets a pool reader wait without committing to a read. *)
let poll ?(timeout_s = 0.) (t : t) : bool =
  (match Binary_proto.parse t.buf ~off:0 with
  | Binary_proto.Frame _ | Binary_proto.Bad _ -> true
  | Binary_proto.Need_more -> false)
  ||
  match Unix.select [ t.fd ] [] [] timeout_s with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let answer_of (id : int) (f : Binary_proto.frame) : answer =
  match f with
  | Binary_proto.Result r when r.id = id -> Ok r.v
  | Binary_proto.Error e when e.id = id -> Err e.msg
  | Binary_proto.Result _ | Binary_proto.Error _ ->
      raise (Protocol_error "answer id does not match query id")
  | _ -> raise (Protocol_error "unexpected frame type in answer")

(** Run one POOL query; returns its printed value or error text. *)
let query (t : t) (q : string) : answer =
  let id = fresh_id t in
  send_frame t (Binary_proto.Query { id; q });
  answer_of id (recv_frame t)

(** Run a batch of POOL queries in one frame; answers come back in
    query order. *)
let batch (t : t) (qs : string list) : answer list =
  let ids = List.map (fun q -> (fresh_id t, q)) qs in
  send_frame t (Binary_proto.Batch ids);
  List.map (fun (id, _) -> answer_of id (recv_frame t)) ids

(** One HTTP-shaped request over the binary connection.  Returns
    (status, headers, body).  A request body rides in the
    ["x-pdb-body"] header — mutation bodies are small form-encoded
    strings, far under the frame cap. *)
let http (t : t) ~(meth : string) ~(target : string)
    ?(headers : (string * string) list = []) ?(body : string = "") () :
    int * (string * string) list * string =
  let id = fresh_id t in
  let headers =
    if body = "" then headers else ("x-pdb-body", body) :: headers
  in
  send_frame t (Binary_proto.Hreq { id; meth; target; headers });
  match recv_frame t with
  | Binary_proto.Hresp r when r.id = id -> (r.status, r.headers, r.body)
  | Binary_proto.Error e when e.id = id -> raise (Protocol_error e.msg)
  | _ -> raise (Protocol_error "unexpected frame type in http answer")

let header_opt (headers : (string * string) list) (k : string) : string option
    =
  List.assoc_opt (String.lowercase_ascii k)
    (List.map (fun (k, v) -> (String.lowercase_ascii k, v)) headers)

(** {!http}, honoring [Retry-After] on 503: sleep the advertised delay
    (capped at [cap_s]) and retry, up to [attempts] tries.  The final
    503 is returned, not raised — overload is an answer, not a
    transport failure. *)
let http_retry ?(attempts = 3) ?(cap_s = 1.0) (t : t) ~meth ~target ?headers
    ?body () : int * (string * string) list * string =
  let rec go n =
    let ((status, hs, _) as r) = http t ~meth ~target ?headers ?body () in
    if status = 503 && n < attempts then (
      let delay =
        match header_opt hs "retry-after" with
        | Some s -> ( match float_of_string_opt s with Some f -> f | None -> 0.1)
        | None -> 0.1
      in
      Thread.delay (Float.min cap_s (Float.max 0.01 delay));
      go (n + 1))
    else r
  in
  go 1

type pong = { p_role : string; p_lsn : int; p_stream_id : int; p_repl_port : int }

(** Health-check probe: who are you, how far have you applied? *)
let ping (t : t) : pong =
  let id = fresh_id t in
  send_frame t (Binary_proto.Ping { id });
  match recv_frame t with
  | Binary_proto.Pong p when p.id = id ->
      {
        p_role = p.role;
        p_lsn = p.lsn;
        p_stream_id = p.stream_id;
        p_repl_port = p.repl_port;
      }
  | Binary_proto.Error e when e.id = id -> raise (Protocol_error e.msg)
  | _ -> raise (Protocol_error "unexpected frame type in ping answer")

(** Send a cluster control verb ("promote" / "demote" / "follow"). *)
let ctl (t : t) ~(verb : string) ~(arg : string) : answer =
  let id = fresh_id t in
  send_frame t (Binary_proto.Ctl { id; verb; arg });
  answer_of id (recv_frame t)
