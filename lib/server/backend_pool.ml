(** Pipelined connection pool to one backend's binary port.

    The router keeps one of these per backend.  Each pool holds a small
    fixed set of {e channels}; a channel is one TCP connection plus a
    dedicated reader thread, a table of in-flight requests keyed by
    frame id, and a condition variable the requesters sleep on.  Many
    router workers can have requests outstanding on the same connection
    at once — true pipelining: the send is one locked write, the reader
    dispatches answers by id as they arrive, in whatever order the
    backend produces them.

    Failure discipline: any transport error, framing damage or request
    timeout kills the whole channel — every in-flight request on it
    fails with {!Client.Backend_down}, the connection is closed, and
    the channel enters capped exponential backoff (50 ms doubling to
    2 s).  While in backoff the channel {e fails fast} instead of
    re-dialing a dead host on every request; health probes pass
    [~force:true] to bypass the gate, so probe cadence — not request
    traffic — decides when a recovered backend is re-admitted. *)

let backoff_initial = 0.05
let backoff_cap = 2.0

(* The reader's poll tick: SO_RCVTIMEO on the connection, so an idle
   reader wakes this often to expire stale requests and notice close. *)
let reader_tick_s = 0.25

type slot = {
  s_at : float; (* enqueue time, for the request timeout *)
  mutable s_reply : Binary_proto.frame option;
  mutable s_fail : string option;
}

type chan = {
  cm : Mutex.t;
  cv : Condition.t;
  mutable c_conn : Client.t option;
  c_pending : (int, slot) Hashtbl.t;
  mutable c_outstanding : int;
  mutable c_next_try : float; (* earliest re-dial when down *)
  mutable c_delay : float; (* current backoff step *)
  mutable c_closed : bool;
  mutable c_reader : Thread.t option;
}

type t = {
  host : string;
  port : int;
  timeout_s : float;
  chans : chan array;
  sent : int Atomic.t;
  failed : int Atomic.t;
}

let frame_id = function
  | Binary_proto.Query { id; _ }
  | Binary_proto.Result { id; _ }
  | Binary_proto.Error { id; _ }
  | Binary_proto.Hreq { id; _ }
  | Binary_proto.Hresp { id; _ }
  | Binary_proto.Ping { id }
  | Binary_proto.Pong { id; _ }
  | Binary_proto.Ctl { id; _ } ->
      id
  | Binary_proto.Batch _ -> -1

(* Kill the channel: fail every in-flight request, close the
   connection, arm the backoff.  Caller holds [cm]. *)
let fail_channel_locked (ch : chan) (msg : string) =
  (match ch.c_conn with Some c -> Client.close c | None -> ());
  ch.c_conn <- None;
  Hashtbl.iter (fun _ s -> s.s_fail <- Some msg) ch.c_pending;
  Hashtbl.reset ch.c_pending;
  ch.c_outstanding <- 0;
  ch.c_next_try <- Unix.gettimeofday () +. ch.c_delay;
  ch.c_delay <- Float.min backoff_cap (ch.c_delay *. 2.);
  Condition.broadcast ch.cv

(* Dedicated per-channel reader: dispatch answers by id; on transport
   death or a stale request, kill the channel.  Exits when the pool
   closes. *)
let reader_loop (t : t) (ch : chan) =
  let rec go () =
    Mutex.lock ch.cm;
    while ch.c_conn = None && not ch.c_closed do
      Condition.wait ch.cv ch.cm
    done;
    if ch.c_closed then Mutex.unlock ch.cm
    else begin
      let conn = Option.get ch.c_conn in
      Mutex.unlock ch.cm;
      (match Client.recv_frame conn with
      | f ->
          Mutex.lock ch.cm;
          (* [==] on the payload: a fresh [Some] box would never be
             physically equal *)
          (if (match ch.c_conn with Some c -> c == conn | None -> false) then
             match Hashtbl.find_opt ch.c_pending (frame_id f) with
             | Some s ->
                 s.s_reply <- Some f;
                 Hashtbl.remove ch.c_pending (frame_id f);
                 ch.c_outstanding <- ch.c_outstanding - 1;
                 Condition.broadcast ch.cv
             | None -> () (* answer to nothing we sent: ignore *));
          Mutex.unlock ch.cm
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          (* receive-timeout tick: expire requests past the deadline —
             a timed-out request poisons the channel, because its
             answer may still arrive and must not be matched to a
             recycled id on a fresh exchange *)
          let now = Unix.gettimeofday () in
          Mutex.lock ch.cm;
          (if (match ch.c_conn with Some c -> c == conn | None -> false) then
             let stale =
               Hashtbl.fold
                 (fun _ s acc -> acc || now -. s.s_at > t.timeout_s)
                 ch.c_pending false
             in
             if stale then fail_channel_locked ch "request timed out");
          Mutex.unlock ch.cm
      | exception e ->
          let msg =
            match e with
            | Client.Backend_down m -> m
            | Client.Protocol_error m -> "protocol: " ^ m
            | e -> Printexc.to_string e
          in
          Mutex.lock ch.cm;
          if (match ch.c_conn with Some c -> c == conn | None -> false) then
            fail_channel_locked ch msg;
          Mutex.unlock ch.cm);
      go ()
    end
  in
  go ()

let create ?(channels = 2) ?(timeout_s = 10.) ~host ~port () : t =
  let mk_chan () =
    {
      cm = Mutex.create ();
      cv = Condition.create ();
      c_conn = None;
      c_pending = Hashtbl.create 16;
      c_outstanding = 0;
      c_next_try = 0.;
      c_delay = backoff_initial;
      c_closed = false;
      c_reader = None;
    }
  in
  let t =
    {
      host;
      port;
      timeout_s;
      chans = Array.init (max 1 channels) (fun _ -> mk_chan ());
      sent = Atomic.make 0;
      failed = Atomic.make 0;
    }
  in
  Array.iter
    (fun ch -> ch.c_reader <- Some (Thread.create (fun () -> reader_loop t ch) ()))
    t.chans;
  t

(* Dial if down.  Caller holds [cm].  [force] bypasses the backoff gate
   (health probes); everyone else fails fast while the gate is armed. *)
let ensure_conn_locked (t : t) (ch : chan) ~force =
  if ch.c_closed then raise (Client.Backend_down "pool closed");
  match ch.c_conn with
  | Some _ -> ()
  | None ->
      if (not force) && Unix.gettimeofday () < ch.c_next_try then
        raise
          (Client.Backend_down
             (Printf.sprintf "%s:%d down (in backoff)" t.host t.port));
      (match Client.connect ~host:t.host ~port:t.port () with
      | conn ->
          (try Unix.setsockopt_float (Client.fd conn) Unix.SO_RCVTIMEO reader_tick_s
           with Unix.Unix_error _ | Invalid_argument _ -> ());
          ch.c_conn <- Some conn;
          ch.c_delay <- backoff_initial;
          Condition.broadcast ch.cv (* wake the reader *)
      | exception Client.Backend_down m ->
          ch.c_next_try <- Unix.gettimeofday () +. ch.c_delay;
          ch.c_delay <- Float.min backoff_cap (ch.c_delay *. 2.);
          raise (Client.Backend_down m))

(* Least-outstanding channel, preferring live connections. *)
let pick (t : t) : chan =
  let best = ref t.chans.(0) in
  let score ch = (if ch.c_conn = None then 1_000_000 else 0) + ch.c_outstanding in
  Array.iter (fun ch -> if score ch < score !best then best := ch) t.chans;
  !best

let outstanding (t : t) : int =
  Array.fold_left (fun acc ch -> acc + ch.c_outstanding) 0 t.chans

let connected (t : t) : int =
  Array.fold_left (fun acc ch -> acc + if ch.c_conn <> None then 1 else 0) 0 t.chans

(** Send one frame (built around a fresh id by [mk]) and wait for its
    answer.  Raises {!Client.Backend_down} on transport failure or
    timeout, {!Client.Protocol_error} on framing damage. *)
let request ?(force = false) (t : t) (mk : int -> Binary_proto.frame) :
    Binary_proto.frame =
  let ch = pick t in
  Mutex.lock ch.cm;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock ch.cm)
    (fun () ->
      (try ensure_conn_locked t ch ~force
       with e ->
         Atomic.incr t.failed;
         raise e);
      let conn = Option.get ch.c_conn in
      let id = Client.fresh_id conn in
      let slot = { s_at = Unix.gettimeofday (); s_reply = None; s_fail = None } in
      Hashtbl.replace ch.c_pending id slot;
      ch.c_outstanding <- ch.c_outstanding + 1;
      (try Client.send_frame conn (mk id)
       with e ->
         Atomic.incr t.failed;
         fail_channel_locked ch
           (match e with Client.Backend_down m -> m | e -> Printexc.to_string e);
         raise
           (match e with
           | Client.Backend_down _ -> e
           | e -> Client.Backend_down (Printexc.to_string e)));
      Atomic.incr t.sent;
      while slot.s_reply = None && slot.s_fail = None do
        Condition.wait ch.cv ch.cm
      done;
      match (slot.s_reply, slot.s_fail) with
      | Some f, _ -> f
      | None, Some m ->
          Atomic.incr t.failed;
          raise (Client.Backend_down m)
      | None, None -> assert false)

(* --- typed request surface --------------------------------------------- *)

let http ?(headers = []) ?(body = "") (t : t) ~meth ~target :
    int * (string * string) list * string =
  let headers = if body = "" then headers else ("x-pdb-body", body) :: headers in
  match request t (fun id -> Binary_proto.Hreq { id; meth; target; headers }) with
  | Binary_proto.Hresp { status; headers; body; _ } -> (status, headers, body)
  | Binary_proto.Error { msg; _ } -> raise (Client.Protocol_error msg)
  | _ -> raise (Client.Protocol_error "unexpected frame type in http answer")

let ping ?(force = true) (t : t) : Client.pong =
  match request ~force t (fun id -> Binary_proto.Ping { id }) with
  | Binary_proto.Pong p ->
      {
        Client.p_role = p.role;
        p_lsn = p.lsn;
        p_stream_id = p.stream_id;
        p_repl_port = p.repl_port;
      }
  | Binary_proto.Error { msg; _ } -> raise (Client.Protocol_error msg)
  | _ -> raise (Client.Protocol_error "unexpected frame type in ping answer")

let ctl (t : t) ~verb ~arg : Client.answer =
  match request t (fun id -> Binary_proto.Ctl { id; verb; arg }) with
  | Binary_proto.Result { v; _ } -> Client.Ok v
  | Binary_proto.Error { msg; _ } -> Client.Err msg
  | _ -> raise (Client.Protocol_error "unexpected frame type in ctl answer")

let query (t : t) (q : string) : Client.answer =
  match request t (fun id -> Binary_proto.Query { id; q }) with
  | Binary_proto.Result { v; _ } -> Client.Ok v
  | Binary_proto.Error { msg; _ } -> Client.Err msg
  | _ -> raise (Client.Protocol_error "unexpected frame type in query answer")

let close (t : t) =
  Array.iter
    (fun ch ->
      Mutex.lock ch.cm;
      ch.c_closed <- true;
      fail_channel_locked ch "pool closed";
      Mutex.unlock ch.cm)
    t.chans;
  Array.iter
    (fun ch ->
      match ch.c_reader with
      | Some th -> ( try Thread.join th with _ -> ())
      | None -> ())
    t.chans
