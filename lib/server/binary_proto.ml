(** Compact binary wire protocol for POOL queries.

    Same envelope discipline as the replication link ([Prepl.Wire]):

    {v
      off 0 : u32  magic "PDBQ"
      off 4 : u8   frame type
      off 5 : u32  payload length
      off 9 : payload bytes
      then  : u32  CRC-32 of the payload
    v}

    The magic is distinct from the replication magic ("PDRL") so a
    client pointed at the wrong port fails loudly instead of decoding
    garbage.  Payloads are capped at 1 MiB — a query text or printed
    result beyond that is a protocol violation, not a bigger
    allocation.

    Frames:
    - [Query {id; q}] — one POOL query; [id] is an opaque client token
      echoed back in the answer so batched responses can be matched up.
    - [Result {id; v}] — the printed value of a successful query.
    - [Error {id; msg}] — the error text of a failed query.
    - [Batch qs] — several queries in one frame; the server answers
      with one [Result]/[Error] frame per query, in order.  Batching is
      the client-side amortisation lever: one write syscall, one read
      burst, N answers.

    Cluster frames (PR 10) — the router speaks these to backends so a
    whole HTTP request can ride the pipelined binary connection instead
    of a second HTTP socket:
    - [Hreq {id; meth; target; headers}] — an HTTP-shaped request
      (GET/POST + target + selected headers, e.g. [x-pdb-min-lsn] and a
      body smuggled under [x-pdb-body]); answered by [Hresp].
    - [Hresp {id; status; headers; body}] — status + headers (the
      backend's applied LSN rides in [x-pdb-lsn]) + body.
    - [Ping {id}] / [Pong {id; role; lsn; stream_id; repl_port}] — the
      health-check probe; [role] is ["primary"] or ["replica"], [lsn]
      the applied/durable LSN, [stream_id] the replication stream
      identity, [repl_port] the port a [Feed] (primary or cascade)
      listens on, or [-1].
    - [Ctl {id; verb; arg}] — a control verb ("promote", "demote",
      "follow") used during failover; answered with [Result]/[Error]. *)

let magic = 0x50444251 (* "PDBQ" *)
let header_size = 9 (* magic u32 + type u8 + length u32 *)
let max_payload = 1 lsl 20
let max_batch = 4096

let max_headers = 64

type frame =
  | Query of { id : int; q : string }
  | Result of { id : int; v : string }
  | Error of { id : int; msg : string }
  | Batch of (int * string) list
  | Hreq of {
      id : int;
      meth : string;
      target : string;
      headers : (string * string) list;
    }
  | Hresp of {
      id : int;
      status : int;
      headers : (string * string) list;
      body : string;
    }
  | Ping of { id : int }
  | Pong of {
      id : int;
      role : string;
      lsn : int;
      stream_id : int;
      repl_port : int;
    }
  | Ctl of { id : int; verb : string; arg : string }

let tag = function
  | Query _ -> 1
  | Result _ -> 2
  | Error _ -> 3
  | Batch _ -> 4
  | Hreq _ -> 5
  | Hresp _ -> 6
  | Ping _ -> 7
  | Pong _ -> 8
  | Ctl _ -> 9

let encode_payload (f : frame) : string =
  let open Pstore.Codec in
  let e = Enc.create () in
  (match f with
  | Query { id; q } ->
      Enc.int e id;
      Enc.string e q
  | Result { id; v } ->
      Enc.int e id;
      Enc.string e v
  | Error { id; msg } ->
      Enc.int e id;
      Enc.string e msg
  | Batch qs ->
      Enc.u32 e (List.length qs);
      List.iter
        (fun (id, q) ->
          Enc.int e id;
          Enc.string e q)
        qs
  | Hreq { id; meth; target; headers } ->
      Enc.int e id;
      Enc.string e meth;
      Enc.string e target;
      Enc.u32 e (List.length headers);
      List.iter
        (fun (k, v) ->
          Enc.string e k;
          Enc.string e v)
        headers
  | Hresp { id; status; headers; body } ->
      Enc.int e id;
      Enc.u32 e status;
      Enc.u32 e (List.length headers);
      List.iter
        (fun (k, v) ->
          Enc.string e k;
          Enc.string e v)
        headers;
      Enc.string e body
  | Ping { id } -> Enc.int e id
  | Pong { id; role; lsn; stream_id; repl_port } ->
      Enc.int e id;
      Enc.string e role;
      Enc.int e lsn;
      Enc.int e stream_id;
      Enc.int e repl_port
  | Ctl { id; verb; arg } ->
      Enc.int e id;
      Enc.string e verb;
      Enc.string e arg);
  Enc.to_string e

exception Malformed of string

let decode_payload (ty : int) (payload : string) : frame =
  let open Pstore.Codec in
  let d = Dec.of_string payload in
  try
    let f =
      match ty with
      | 1 ->
          let id = Dec.int d in
          Query { id; q = Dec.string d }
      | 2 ->
          let id = Dec.int d in
          Result { id; v = Dec.string d }
      | 3 ->
          let id = Dec.int d in
          Error { id; msg = Dec.string d }
      | 4 ->
          let n = Dec.u32 d in
          if n > max_batch then
            raise (Malformed (Printf.sprintf "batch of %d queries" n));
          Batch
            (List.init n (fun _ ->
                 let id = Dec.int d in
                 (id, Dec.string d)))
      | 5 ->
          let id = Dec.int d in
          let meth = Dec.string d in
          let target = Dec.string d in
          let n = Dec.u32 d in
          if n > max_headers then
            raise (Malformed (Printf.sprintf "%d request headers" n));
          let headers =
            List.init n (fun _ ->
                let k = Dec.string d in
                (k, Dec.string d))
          in
          Hreq { id; meth; target; headers }
      | 6 ->
          let id = Dec.int d in
          let status = Dec.u32 d in
          let n = Dec.u32 d in
          if n > max_headers then
            raise (Malformed (Printf.sprintf "%d response headers" n));
          let headers =
            List.init n (fun _ ->
                let k = Dec.string d in
                (k, Dec.string d))
          in
          Hresp { id; status; headers; body = Dec.string d }
      | 7 -> Ping { id = Dec.int d }
      | 8 ->
          let id = Dec.int d in
          let role = Dec.string d in
          let lsn = Dec.int d in
          let stream_id = Dec.int d in
          Pong { id; role; lsn; stream_id; repl_port = Dec.int d }
      | 9 ->
          let id = Dec.int d in
          let verb = Dec.string d in
          Ctl { id; verb; arg = Dec.string d }
      | ty -> raise (Malformed (Printf.sprintf "unknown frame type %d" ty))
    in
    if Dec.remaining d <> 0 then raise (Malformed "trailing payload bytes");
    f
  with Corrupt m -> raise (Malformed m)

let crc_of (payload : string) : int =
  Int32.to_int (Pstore.Codec.Crc32.digest payload) land 0xffffffff

(** The complete on-wire encoding of a frame.  Oversized payloads raise
    [Malformed] on the sender — the receiver would reject the length
    field anyway, and failing at the source is where the bug is
    visible. *)
let encode (f : frame) : string =
  let open Pstore.Codec in
  let payload = encode_payload f in
  if String.length payload > max_payload then
    raise
      (Malformed
         (Printf.sprintf "frame payload of %d bytes exceeds the %d-byte cap"
            (String.length payload) max_payload));
  let e = Enc.create ~size:(header_size + String.length payload + 4) () in
  Enc.u32 e magic;
  Enc.u8 e (tag f);
  Enc.u32 e (String.length payload);
  Enc.raw e payload;
  Enc.u32 e (crc_of payload);
  Enc.to_string e

type parsed = Frame of frame * int | Need_more | Bad of string

let u32_at (buf : string) (at : int) : int =
  Char.code buf.[at]
  lor (Char.code buf.[at + 1] lsl 8)
  lor (Char.code buf.[at + 2] lsl 16)
  lor (Char.code buf.[at + 3] lsl 24)

(** Try to extract one frame starting at [off] in a stream buffer.
    [Frame (f, n)] means [n] bytes were consumed.  Any envelope
    violation — wrong magic, unknown type, oversized length, CRC
    mismatch, malformed payload — is [Bad]: there is no resynchronising
    a byte stream after corrupt framing, the connection must die. *)
let parse (buf : string) ~(off : int) : parsed =
  let avail = String.length buf - off in
  if avail < header_size then Need_more
  else
    let m = u32_at buf off in
    if m <> magic then Bad (Printf.sprintf "bad magic 0x%08x" m)
    else
      let ty = Char.code buf.[off + 4] in
      let len = u32_at buf (off + 5) in
      if len > max_payload then
        Bad (Printf.sprintf "oversized frame (%d-byte payload)" len)
      else if avail < header_size + len + 4 then Need_more
      else
        let payload = String.sub buf (off + header_size) len in
        let expect = u32_at buf (off + header_size + len) in
        if crc_of payload <> expect then Bad "frame CRC mismatch"
        else
          match decode_payload ty payload with
          | f -> Frame (f, header_size + len + 4)
          | exception Malformed m -> Bad m
