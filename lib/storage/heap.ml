(** Slotted-page record heap with overflow (blob) chains.

    Records are byte strings addressed by a [rid] (page number, slot
    index).  Small records live inline in slotted heap pages; records
    larger than {!inline_threshold} are stored in a chain of dedicated
    blob pages and the heap slot holds a 12-byte pointer record.

    Heap page layout:
    {v
      off 0 : u8  kind (= 2)
      off 1 : u16 nslots
      off 3 : u16 free_start   (first free byte after records)
      off 5 : u16 free_end     (last free byte, before slot array)
      7 .. free_start-1        record bytes
      free_end .. page_capacity-1  slot array, growing downwards
    v}
    The page's last {!Pager.trailer_size} bytes (from [page_capacity])
    belong to the pager's checksum trailer and are never used here.
    Each slot is 4 bytes: [u16 off; u16 len].  A dead slot has off
    0xFFFF (len 0 is a valid empty record).
    A blob-pointer slot has the high bit of len set (stored len 12).

    Blob page layout: [u8 kind (= 4); u32 next_page; u16 len; data]. *)

exception Heap_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Heap_error s)) fmt

type rid = { page : int; slot : int }

let rid_equal a b = a.page = b.page && a.slot = b.slot
let pp_rid ppf r = Format.fprintf ppf "(%d,%d)" r.page r.slot

let kind_heap = 2
let kind_blob = 4
let header_size = 7
let slot_size = 4
let blob_header = 7
let blob_capacity = Pager.page_capacity - blob_header
let inline_threshold = 3500
let blob_ptr_len = 12
let len_blob_flag = 0x8000
let dead_off = 0xFFFF

(** Page allocation callbacks, provided by the store (which owns the
    free-page list in the header). *)
type page_alloc = { alloc_page : unit -> int; free_page : int -> unit }

type t = {
  pager : Pager.t option; (* [None] for read-only snapshot heaps *)
  read : int -> Bytes.t; (* all read paths go through this seam *)
  pa : page_alloc;
  (* In-memory free-space map: page -> free bytes.  Built lazily; pages
     not present are assumed full.  Survives only for the process
     lifetime, which merely costs some space reuse across restarts. *)
  avail : (int, int) Hashtbl.t;
}

let wpager t =
  match t.pager with Some p -> p | None -> fail "heap: read-only (snapshot)"

let create pager pa =
  { pager = Some pager; read = Pager.read pager; pa; avail = Hashtbl.create 256 }

(** A read-only heap over an arbitrary page source (a frozen pager
    snapshot).  Mutators raise {!Heap_error}. *)
let create_reader ~(read : int -> Bytes.t) =
  let ro _ = fail "heap: read-only (snapshot)" in
  {
    pager = None;
    read;
    pa = { alloc_page = (fun () -> ro 0); free_page = ro };
    avail = Hashtbl.create 1;
  }

(* --- page accessors ------------------------------------------------- *)

let get_nslots b = Bytes.get_uint16_le b 1
let set_nslots b v = Bytes.set_uint16_le b 1 v
let get_free_start b = Bytes.get_uint16_le b 3
let set_free_start b v = Bytes.set_uint16_le b 3 v
let get_free_end b = Bytes.get_uint16_le b 5
let set_free_end b v = Bytes.set_uint16_le b 5 v
let slot_pos i = Pager.page_capacity - (slot_size * (i + 1))
let get_slot b i = (Bytes.get_uint16_le b (slot_pos i), Bytes.get_uint16_le b (slot_pos i + 2))

let set_slot b i ~off ~len =
  Bytes.set_uint16_le b (slot_pos i) off;
  Bytes.set_uint16_le b (slot_pos i + 2) len

let init_heap_page b =
  Bytes.fill b 0 Pager.page_size '\000';
  Bytes.set_uint8 b 0 kind_heap;
  set_nslots b 0;
  set_free_start b header_size;
  set_free_end b Pager.page_capacity

let page_contiguous_free b =
  let fe = get_free_end b and fs = get_free_start b in
  if fe >= fs then fe - fs else 0

(* Total reclaimable free space: contiguous space plus holes left by
   deleted or shrunk records (recoverable by compaction). *)
let page_total_free b =
  let nslots = get_nslots b in
  let live = ref 0 in
  for i = 0 to nslots - 1 do
    let off, len = get_slot b i in
    if off <> dead_off then live := !live + (len land lnot len_blob_flag)
  done;
  Pager.page_capacity - header_size - (slot_size * nslots) - !live

(* --- blob chains ---------------------------------------------------- *)

let write_blob t (data : string) : int =
  let len = String.length data in
  let n_pages = max 1 ((len + blob_capacity - 1) / blob_capacity) in
  let pages = List.init n_pages (fun _ -> t.pa.alloc_page ()) in
  let rec go pages off =
    match pages with
    | [] -> ()
    | p :: rest ->
        let chunk = min blob_capacity (len - off) in
        Pager.with_write (wpager t) p (fun b ->
            Bytes.fill b 0 Pager.page_size '\000';
            Bytes.set_uint8 b 0 kind_blob;
            let next = match rest with [] -> 0 | q :: _ -> q in
            Bytes.set_int32_le b 1 (Int32.of_int next);
            Bytes.set_uint16_le b 5 chunk;
            Bytes.blit_string data off b blob_header chunk);
        go rest (off + chunk)
  in
  go pages 0;
  List.hd pages

let read_blob t first total_len : string =
  let buf = Buffer.create total_len in
  let rec go page =
    if page <> 0 then begin
      let b = t.read page in
      if Bytes.get_uint8 b 0 <> kind_blob then fail "blob chain hits non-blob page %d" page;
      let next = Int32.to_int (Bytes.get_int32_le b 1) in
      let len = Bytes.get_uint16_le b 5 in
      Buffer.add_subbytes buf b blob_header len;
      go next
    end
  in
  go first;
  let s = Buffer.contents buf in
  if String.length s <> total_len then
    fail "blob length mismatch: expected %d got %d" total_len (String.length s);
  s

let free_blob t first =
  let rec go page =
    if page <> 0 then begin
      let next =
        let b = t.read page in
        Int32.to_int (Bytes.get_int32_le b 1)
      in
      t.pa.free_page page;
      go next
    end
  in
  go first

(* --- slotted page operations ---------------------------------------- *)

(* Compact a heap page in place: repack live records to remove holes. *)
let compact_page b =
  let nslots = get_nslots b in
  let live = ref [] in
  for i = 0 to nslots - 1 do
    let off, len = get_slot b i in
    let real_len = len land lnot len_blob_flag in
    if off <> dead_off then live := (i, off, len, real_len) :: !live
  done;
  (* copy live records into a scratch buffer, then repack *)
  let scratch =
    List.map (fun (i, off, len, real_len) -> (i, len, Bytes.sub b off real_len)) !live
  in
  let pos = ref header_size in
  List.iter
    (fun (i, len, data) ->
      Bytes.blit data 0 b !pos (Bytes.length data);
      set_slot b i ~off:!pos ~len;
      pos := !pos + Bytes.length data)
    (List.rev scratch);
  set_free_start b !pos

(* Find a slot index to reuse (dead) or append a new one. Returns
   (slot_index, extra_space_needed_for_slot_array). *)
let find_slot b =
  let nslots = get_nslots b in
  let rec find i = if i >= nslots then None else
      let off, _ = get_slot b i in
      if off = dead_off then Some i else find (i + 1)
  in
  match find 0 with Some i -> (i, 0) | None -> (nslots, slot_size)

let insert_into_page t page (payload : string) (len_field : int) : rid =
  let slot_ref = ref (-1) in
  Pager.with_write (wpager t) page (fun b ->
      let need = String.length payload in
      let slot, extra = find_slot b in
      if page_total_free b < need + extra then fail "insert_into_page: no space";
      (* ensure contiguous space *)
      if page_contiguous_free b < need + extra then compact_page b;
      let off = get_free_start b in
      Bytes.blit_string payload 0 b off need;
      set_free_start b (off + need);
      if extra > 0 then begin
        set_nslots b (get_nslots b + 1);
        set_free_end b (get_free_end b - slot_size)
      end;
      set_slot b slot ~off ~len:len_field;
      slot_ref := slot;
      Hashtbl.replace t.avail page (page_total_free b));
  { page; slot = !slot_ref }

let find_page_with_space t need =
  let found = ref None in
  (try
     Hashtbl.iter
       (fun page free ->
         if free >= need + slot_size then begin
           found := Some page;
           raise Exit
         end)
       t.avail
   with Exit -> ());
  match !found with
  | Some p -> p
  | None ->
      let p = t.pa.alloc_page () in
      Pager.with_write (wpager t) p (fun b -> init_heap_page b);
      Hashtbl.replace t.avail p (Pager.page_capacity - header_size);
      p

(* --- public record operations --------------------------------------- *)

let encode_blob_ptr first total =
  let e = Codec.Enc.create ~size:blob_ptr_len () in
  Codec.Enc.u32 e first;
  Codec.Enc.u32 e total;
  Codec.Enc.u32 e 0;
  Codec.Enc.to_string e

let insert t (data : string) : rid =
  let len = String.length data in
  if len <= inline_threshold then begin
    let page = find_page_with_space t len in
    insert_into_page t page data len
  end
  else begin
    let first = write_blob t data in
    let ptr = encode_blob_ptr first len in
    let page = find_page_with_space t blob_ptr_len in
    insert_into_page t page ptr (blob_ptr_len lor len_blob_flag)
  end

let get t (r : rid) : string =
  let b = t.read r.page in
  if Bytes.get_uint8 b 0 <> kind_heap then fail "rid %a points to non-heap page" pp_rid r;
  if r.slot >= get_nslots b then fail "rid %a: slot out of range" pp_rid r;
  let off, len = get_slot b r.slot in
  if off = dead_off then fail "rid %a: dead slot" pp_rid r;
  if len land len_blob_flag <> 0 then begin
    (* decode the 8-byte blob pointer in place; this is the record-fetch
       hot path, so avoid the Dec cursor's intermediate sub_string *)
    let first = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff in
    let total = Int32.to_int (Bytes.get_int32_le b (off + 4)) land 0xffffffff in
    read_blob t first total
  end
  else Bytes.sub_string b off len

let delete t (r : rid) : unit =
  Pager.with_write (wpager t) r.page (fun b ->
      if Bytes.get_uint8 b 0 <> kind_heap then fail "delete %a: non-heap page" pp_rid r;
      let off, len = get_slot b r.slot in
      if off = dead_off then fail "delete %a: dead slot" pp_rid r;
      if len land len_blob_flag <> 0 then begin
        let first = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff in
        free_blob t first
      end;
      set_slot b r.slot ~off:dead_off ~len:0;
      (* If this was the last record we can reset the page cheaply. *)
      let any_live = ref false in
      for i = 0 to get_nslots b - 1 do
        let o, _ = get_slot b i in
        if o <> dead_off then any_live := true
      done;
      if not !any_live then init_heap_page b;
      Hashtbl.replace t.avail r.page (page_total_free b))

(** Update record [r] with [data]; returns the (possibly new) rid. *)
let update t (r : rid) (data : string) : rid =
  let b = t.read r.page in
  let off, len = get_slot b r.slot in
  if off = dead_off then fail "update %a: dead slot" pp_rid r;
  let is_blob = len land len_blob_flag <> 0 in
  let new_len = String.length data in
  if (not is_blob) && new_len <= len then begin
    (* fits in place *)
    Pager.with_write (wpager t) r.page (fun b ->
        Bytes.blit_string data 0 b off new_len;
        set_slot b r.slot ~off ~len:new_len;
        Hashtbl.replace t.avail r.page (page_total_free b));
    r
  end
  else begin
    delete t r;
    insert t data
  end

(** Structural validation of one heap page, used by [Store.check]
    after crash recovery.  Verifies the header bounds, the exact
    free-end/slot-array accounting, and that every live slot's extent
    lies inside the record area — so a torn page that survived
    recovery is detected rather than silently served. *)
let validate_page t page =
  let b = t.read page in
  if Bytes.get_uint8 b 0 <> kind_heap then
    fail "validate: page %d is not a heap page (kind %d)" page (Bytes.get_uint8 b 0);
  let nslots = get_nslots b in
  let fs = get_free_start b and fe = get_free_end b in
  if fs < header_size || fs > Pager.page_capacity then
    fail "validate: page %d free_start %d out of bounds" page fs;
  if fe <> Pager.page_capacity - (slot_size * nslots) then
    fail "validate: page %d free_end %d inconsistent with %d slots" page fe nslots;
  if fe < fs then fail "validate: page %d slot array overlaps records" page;
  for i = 0 to nslots - 1 do
    let off, len = get_slot b i in
    if off <> dead_off then begin
      let real = len land lnot len_blob_flag in
      if len land len_blob_flag <> 0 && real <> blob_ptr_len then
        fail "validate: page %d slot %d bad blob pointer length %d" page i real;
      if off < header_size || off + real > fs then
        fail "validate: page %d slot %d extent [%d,%d) escapes record area" page i off
          (off + real)
    end
  done

(** Iterate over all live records of heap page [page]. *)
let iter_page t page (f : rid -> string -> unit) =
  let b = t.read page in
  if Bytes.get_uint8 b 0 = kind_heap then
    for i = 0 to get_nslots b - 1 do
      let off, _ = get_slot b i in
      if off <> dead_off then f { page; slot = i } (get t { page; slot = i })
    done
