(** Virtual file system: the seam between the pager and the disk.

    Every file operation the storage substrate performs goes through a
    {!t}, so tests can substitute an in-memory, fault-injecting
    implementation (see {!Fault}) and prove crash recovery correct with
    exhaustive syscall-level fault sweeps — the test-VFS discipline of
    production storage engines.

    The operations deliberately mirror raw syscalls: [pread]/[pwrite]
    are single-shot and may transfer fewer bytes than asked (short
    transfers are the caller's problem, exactly as with the syscalls
    they model), and durability must be requested explicitly with
    [fsync].  Path-level operations ([rename]/[remove]/[exists]) cover
    what vacuum and journal recovery need. *)

(** Raised by fault-injecting implementations at a simulated power
    cut.  Deliberately not a [Unix_error]: the pager must let it escape
    untouched, so a torture harness can distinguish "the simulated
    machine died" from an I/O error the pager is expected to handle. *)
exception Crash

(** An open file.  All offsets are absolute; there is no seek state. *)
type file = {
  pread : buf:Bytes.t -> off:int -> len:int -> at:int -> int;
      (** Read up to [len] bytes at file offset [at] into [buf] at
          [off]; returns the transfer count, 0 at end of file. *)
  pwrite : buf:Bytes.t -> off:int -> len:int -> at:int -> int;
      (** Write up to [len] bytes from [buf] at [off] to file offset
          [at]; returns the transfer count. *)
  pwrite_extent : buf:Bytes.t -> off:int -> len:int -> at:int -> int;
      (** Like [pwrite], but announces that the caller submits the
          whole range as one contiguous extent (the pager's coalesced
          writeback of adjacent dirty pages).  Same short-transfer
          contract.  The real implementation is a single write;
          fault-injecting implementations must model the extra freedom
          a large write gives the disk — at a power cut an arbitrary
          per-sector subset of the extent may have reached the platter,
          not merely a prefix. *)
  fsync : unit -> unit;
  truncate : int -> unit;
  size : unit -> int;
  close : unit -> unit;
}

type t = {
  open_file : ?trunc:bool -> string -> file;
      (** Open (creating if missing) a file for read/write.
          [~trunc:true] empties it first. *)
  rename : string -> string -> unit;
  remove : string -> unit;
  exists : string -> bool;
}

(* ------------------------------------------------------------------ *)
(* The real thing                                                      *)
(* ------------------------------------------------------------------ *)

let unix : t =
  let open_file ?(trunc = false) path =
    let flags = [ Unix.O_RDWR; Unix.O_CREAT ] @ if trunc then [ Unix.O_TRUNC ] else [] in
    let fd = Unix.openfile path flags 0o644 in
    (* The stdlib Unix module exposes no pread/pwrite, so positioned
       I/O is lseek + read/write on a shared fd — two syscalls that
       must not interleave now that MVCC snapshot readers pread from
       other domains while the writer does writeback.  One mutex per
       open file serialises the seek+transfer pairs; each page-sized
       transfer is then atomic with respect to the others. *)
    let io_mu = Mutex.create () in
    let positioned op ~buf ~off ~len ~at =
      Mutex.lock io_mu;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock io_mu)
        (fun () ->
          ignore (Unix.lseek fd at Unix.SEEK_SET);
          op fd buf off len)
    in
    let pwrite = positioned Unix.write in
    {
      pread = positioned Unix.read;
      pwrite;
      pwrite_extent = pwrite;
      fsync = (fun () -> Unix.fsync fd);
      truncate = (fun n -> Unix.ftruncate fd n);
      size = (fun () -> (Unix.fstat fd).Unix.st_size);
      close = (fun () -> Unix.close fd);
    }
  in
  {
    open_file;
    rename = Sys.rename;
    remove = Sys.remove;
    exists = Sys.file_exists;
  }
