(** Persistent B+-tree mapping int64 keys to heap record ids.

    Used as the object directory (oid -> rid).  Nodes live in pager
    pages and are updated through {!Pager.with_write}, so all tree
    mutations participate in the pager's journaled transactions.

    Node layouts:
    {v
      leaf:     u8 kind(=3) | u8 is_leaf(=1) | u16 nkeys |
                nkeys * (i64 key, u32 page, u16 slot)
      internal: u8 kind(=3) | u8 is_leaf(=0) | u16 nkeys |
                u32 child0, nkeys * (i64 key, u32 child)
    v}
    Internal separators follow B+-tree convention: keys [>=] separator
    are in the right subtree.  Deletion is lazy (no rebalancing):
    correctness is preserved, occupancy may degrade under heavy
    deletion, which is acceptable for an object directory where oids
    are allocated monotonically. *)

exception Btree_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Btree_error s)) fmt

let kind_btree = 3
let leaf_entry = 14
let leaf_max = 290
let internal_max = 330

type t = {
  pager : Pager.t option; (* [None] for read-only snapshot trees *)
  read : int -> Bytes.t; (* all read paths go through this seam *)
  mutable root : int;
  set_root : int -> unit; (* persist the root page number (store header) *)
  alloc_page : unit -> int;
}

(* The pager, or fail: every mutator goes through this, so a tree built
   over a frozen snapshot rejects writes instead of corrupting it. *)
let wpager t =
  match t.pager with Some p -> p | None -> fail "btree: read-only (snapshot)"

(* --- node accessors -------------------------------------------------- *)

let is_leaf b = Bytes.get_uint8 b 1 = 1
let nkeys b = Bytes.get_uint16_le b 2
let set_nkeys b n = Bytes.set_uint16_le b 2 n

let init_node b ~leaf =
  Bytes.fill b 0 Pager.page_size '\000';
  Bytes.set_uint8 b 0 kind_btree;
  Bytes.set_uint8 b 1 (if leaf then 1 else 0);
  set_nkeys b 0

(* leaf entries *)
let l_off i = 8 + (leaf_entry * i)
let l_key b i = Bytes.get_int64_le b (l_off i)

let l_get b i : Heap.rid =
  { Heap.page = Int32.to_int (Bytes.get_int32_le b (l_off i + 8)); slot = Bytes.get_uint16_le b (l_off i + 12) }

let l_set b i key (r : Heap.rid) =
  Bytes.set_int64_le b (l_off i) key;
  Bytes.set_int32_le b (l_off i + 8) (Int32.of_int r.Heap.page);
  Bytes.set_uint16_le b (l_off i + 12) r.Heap.slot

let l_blit b src dst n = Bytes.blit b (l_off src) b (l_off dst) (leaf_entry * n)

(* internal entries: child i at 8+12i, key i at 8+12i+4 (keys 0..nkeys-1) *)
let i_child_off i = 8 + (12 * i)
let i_key_off i = 8 + (12 * i) + 4
let i_child b i = Int32.to_int (Bytes.get_int32_le b (i_child_off i))
let i_set_child b i v = Bytes.set_int32_le b (i_child_off i) (Int32.of_int v)
let i_key b i = Bytes.get_int64_le b (i_key_off i)
let i_set_key b i v = Bytes.set_int64_le b (i_key_off i) v

(* --- search helpers -------------------------------------------------- *)

(* First index i in [0,n) with key < keys[i]; n if none. *)
let upper_bound_internal b key =
  let n = nkeys b in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare key (i_key b mid) < 0 then hi := mid else lo := mid + 1
  done;
  !lo

(* Position of key in leaf, or insertion point.  Returns (idx, found). *)
let leaf_search b key =
  let n = nkeys b in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare (l_key b mid) key < 0 then lo := mid + 1 else hi := mid
  done;
  let i = !lo in
  (i, i < n && Int64.equal (l_key b i) key)

(* --- lifecycle -------------------------------------------------------- *)

let create pager ~root ~set_root ~alloc_page =
  let t = { pager = Some pager; read = Pager.read pager; root; set_root; alloc_page } in
  if root = 0 then begin
    let r = alloc_page () in
    Pager.with_write pager r (fun b -> init_node b ~leaf:true);
    t.root <- r;
    set_root r
  end;
  t

(** A read-only tree over an arbitrary page source (a frozen pager
    snapshot).  Mutators raise {!Btree_error}. *)
let create_reader ~(read : int -> Bytes.t) ~root =
  {
    pager = None;
    read;
    root;
    set_root = (fun _ -> fail "btree: read-only (snapshot)");
    alloc_page = (fun () -> fail "btree: read-only (snapshot)");
  }

(* --- find ------------------------------------------------------------- *)

let find t (key : int64) : Heap.rid option =
  let rec go page =
    let b = t.read page in
    if is_leaf b then begin
      let i, found = leaf_search b key in
      if found then Some (l_get b i) else None
    end
    else go (i_child b (upper_bound_internal b key))
  in
  go t.root

let mem t key = Option.is_some (find t key)

(* --- insert ----------------------------------------------------------- *)

(* Split the full child at index [ci] of internal node [parent_pg].
   Allocates a right sibling; promotes a separator into the parent
   (which must not be full). *)
let split_child t parent_pg ci child_pg =
  let right_pg = t.alloc_page () in
  let sep = ref 0L in
  let child_b = Bytes.copy (t.read child_pg) in
  Pager.with_write (wpager t) right_pg (fun rb ->
      if is_leaf child_b then begin
        let n = nkeys child_b in
        let m = n / 2 in
        init_node rb ~leaf:true;
        Bytes.blit child_b (l_off m) rb (l_off 0) (leaf_entry * (n - m));
        set_nkeys rb (n - m);
        sep := l_key child_b m
      end
      else begin
        let n = nkeys child_b in
        let m = n / 2 in
        init_node rb ~leaf:false;
        (* right gets keys m+1..n-1 and children m+1..n *)
        i_set_child rb 0 (i_child child_b (m + 1));
        for j = m + 1 to n - 1 do
          i_set_key rb (j - m - 1) (i_key child_b j);
          i_set_child rb (j - m) (i_child child_b (j + 1))
        done;
        set_nkeys rb (n - m - 1);
        sep := i_key child_b m
      end);
  Pager.with_write (wpager t) child_pg (fun cb ->
      let n = nkeys cb in
      let m = n / 2 in
      set_nkeys cb m);
  Pager.with_write (wpager t) parent_pg (fun pb ->
      let n = nkeys pb in
      (* shift keys/children right of position ci *)
      for j = n - 1 downto ci do
        i_set_key pb (j + 1) (i_key pb j);
        i_set_child pb (j + 2) (i_child pb (j + 1))
      done;
      i_set_key pb ci !sep;
      i_set_child pb (ci + 1) right_pg;
      set_nkeys pb (n + 1))

let node_full b = if is_leaf b then nkeys b >= leaf_max else nkeys b >= internal_max

let insert t (key : int64) (rid : Heap.rid) : unit =
  (* grow root if full *)
  let root_b = t.read t.root in
  if node_full root_b then begin
    let new_root = t.alloc_page () in
    let old_root = t.root in
    Pager.with_write (wpager t) new_root (fun b ->
        init_node b ~leaf:false;
        i_set_child b 0 old_root);
    t.root <- new_root;
    t.set_root new_root;
    split_child t new_root 0 old_root
  end;
  let rec go page =
    let b = t.read page in
    if is_leaf b then begin
      Pager.with_write (wpager t) page (fun b ->
          let i, found = leaf_search b key in
          if found then l_set b i key rid
          else begin
            let n = nkeys b in
            if n - i > 0 then l_blit b i (i + 1) (n - i);
            l_set b i key rid;
            set_nkeys b (n + 1)
          end)
    end
    else begin
      let ci = upper_bound_internal b key in
      let child = i_child b ci in
      let cb = t.read child in
      if node_full cb then begin
        split_child t page ci child;
        let b = t.read page in
        let ci = upper_bound_internal b key in
        go (i_child b ci)
      end
      else go child
    end
  in
  go t.root

(* --- delete (lazy) ----------------------------------------------------- *)

let delete t (key : int64) : bool =
  let rec go page =
    let b = t.read page in
    if is_leaf b then begin
      let i, found = leaf_search b key in
      if found then begin
        Pager.with_write (wpager t) page (fun b ->
            let n = nkeys b in
            if n - i - 1 > 0 then l_blit b (i + 1) i (n - i - 1);
            set_nkeys b (n - 1));
        true
      end
      else false
    end
    else go (i_child b (upper_bound_internal b key))
  in
  go t.root

(* --- iteration --------------------------------------------------------- *)

(* Copy only the used prefix of a node page — header plus occupied entry
   array — instead of all 4 KiB.  Iteration and checking snapshot every
   node they visit (the callback may re-enter the pager and evict the
   page), so this trims their allocation to the node's actual fill. *)
let snapshot page_b =
  let n = nkeys page_b in
  let used = if is_leaf page_b then l_off n else i_child_off n + 4 in
  Bytes.sub page_b 0 (min (max used 8) Pager.page_size)

let iter t (f : int64 -> Heap.rid -> unit) : unit =
  let rec go page =
    let b = snapshot (t.read page) in
    if is_leaf b then
      for i = 0 to nkeys b - 1 do
        f (l_key b i) (l_get b i)
      done
    else begin
      let n = nkeys b in
      for i = 0 to n do
        go (i_child b i)
      done
    end
  in
  go t.root

let fold t f acc =
  let acc = ref acc in
  iter t (fun k r -> acc := f !acc k r);
  !acc

let cardinal t = fold t (fun n _ _ -> n + 1) 0

(* Structural invariant check (used by tests): keys sorted within nodes,
   subtree key ranges respect separators. Returns number of keys. *)
let check t =
  let count = ref 0 in
  let rec go page lo hi =
    let b = snapshot (t.read page) in
    if Bytes.get_uint8 b 0 <> kind_btree then fail "check: page %d is not a btree node" page;
    if is_leaf b then
      for i = 0 to nkeys b - 1 do
        let k = l_key b i in
        incr count;
        (match lo with Some l when Int64.compare k l < 0 -> fail "check: key below range" | _ -> ());
        (match hi with Some h when Int64.compare k h >= 0 -> fail "check: key above range" | _ -> ());
        if i > 0 && Int64.compare (l_key b (i - 1)) k >= 0 then fail "check: leaf keys unsorted"
      done
    else begin
      let n = nkeys b in
      for i = 0 to n - 1 do
        if i > 0 && Int64.compare (i_key b (i - 1)) (i_key b i) >= 0 then
          fail "check: internal keys unsorted"
      done;
      for i = 0 to n do
        let lo' = if i = 0 then lo else Some (i_key b (i - 1)) in
        let hi' = if i = n then hi else Some (i_key b i) in
        go (i_child b i) lo' hi'
      done
    end
  in
  go t.root None None;
  !count
