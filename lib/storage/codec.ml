(** Binary encoding and decoding of primitive values.

    All multi-byte quantities are little-endian.  Strings are
    length-prefixed with an unsigned 32-bit length.  This module is the
    single place in the storage substrate that defines the on-disk
    representation of scalars; higher layers (object serialisation,
    B-tree nodes, page headers) build on it. *)

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

(** Encoder: an append-only buffer of bytes. *)
module Enc = struct
  type t = Buffer.t

  let create ?(size = 256) () : t = Buffer.create size
  let to_string (t : t) = Buffer.contents t
  let length (t : t) = Buffer.length t
  let u8 t v = Buffer.add_uint8 t (v land 0xff)
  let u16 t v = Buffer.add_uint16_le t (v land 0xffff)
  let u32 t v = Buffer.add_int32_le t (Int32.of_int v)
  let i64 t v = Buffer.add_int64_le t v
  let int t v = Buffer.add_int64_le t (Int64.of_int v)
  let bool t v = u8 t (if v then 1 else 0)
  let float t v = Buffer.add_int64_le t (Int64.bits_of_float v)

  let string t s =
    u32 t (String.length s);
    Buffer.add_string t s

  let raw t s = Buffer.add_string t s
end

(** In-place little-endian stores, for encoding fixed-layout frames
    directly into a caller-owned buffer.  The pager's group-journal
    buffer is encoded this way: the frame header lands straight in the
    write buffer, with no intermediate [Buffer]/[string]/[Bytes]
    copies on the hot path. *)
module Put = struct
  let u8 b off v = Bytes.set_uint8 b off (v land 0xff)
  let u16 b off v = Bytes.set_uint16_le b off (v land 0xffff)
  let u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
  let i64 b off v = Bytes.set_int64_le b off v
end

(** Decoder: a cursor over an immutable string. *)
module Dec = struct
  type t = { src : string; mutable pos : int }

  let of_string ?(pos = 0) src = { src; pos }
  let remaining t = String.length t.src - t.pos
  let eof t = remaining t <= 0

  let need t n =
    if remaining t < n then
      corrupt "decoder underrun: need %d bytes, have %d" n (remaining t)

  let u8 t =
    need t 1;
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2;
    let v = String.get_uint16_le t.src t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    need t 4;
    let v = Int32.to_int (String.get_int32_le t.src t.pos) in
    t.pos <- t.pos + 4;
    v land 0xffffffff

  let i64 t =
    need t 8;
    let v = String.get_int64_le t.src t.pos in
    t.pos <- t.pos + 8;
    v

  let int t = Int64.to_int (i64 t)
  let bool t = u8 t <> 0
  let float t = Int64.float_of_bits (i64 t)

  let string t =
    let n = u32 t in
    need t n;
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s
end

(** CRC-32 (IEEE 802.3 polynomial), used to validate journal frames.

    The digest runs once per 4 KiB journal frame on the transaction
    commit path, so it is computed with native-[int] arithmetic: OCaml
    [Int32] values are boxed, and the original [Int32]-based loop
    allocated on every byte, costing ~26 us per frame — more than the
    rest of the frame encode put together.  The unboxed loop below is
    an order of magnitude faster and bit-identical. *)
module Crc32 = struct
  let poly = 0xEDB88320

  (* Slicing-by-4: tables.(k).(n) is the CRC contribution of byte [n]
     seen [k] positions before the end of a 4-byte word, letting the
     main loop consume 32 bits per iteration. *)
  let tables =
    lazy
      (let t = Array.make_matrix 4 256 0 in
       for n = 0 to 255 do
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then poly lxor (!c lsr 1) else !c lsr 1
         done;
         t.(0).(n) <- !c
       done;
       for k = 1 to 3 do
         for n = 0 to 255 do
           t.(k).(n) <- t.(0).(t.(k - 1).(n) land 0xff) lxor (t.(k - 1).(n) lsr 8)
         done
       done;
       t)

  let digest_sub s pos len =
    let t = Lazy.force tables in
    let t0 = t.(0) and t1 = t.(1) and t2 = t.(2) and t3 = t.(3) in
    let c = ref 0xFFFFFFFF in
    let i = ref pos in
    let stop = pos + len in
    while stop - !i >= 4 do
      (* two unboxed 16-bit reads; [String.get_int32_le] would box *)
      let d = String.get_uint16_le s !i lor (String.get_uint16_le s (!i + 2) lsl 16) in
      let x = !c lxor d in
      c :=
        Array.unsafe_get t3 (x land 0xff)
        lxor Array.unsafe_get t2 ((x lsr 8) land 0xff)
        lxor Array.unsafe_get t1 ((x lsr 16) land 0xff)
        lxor Array.unsafe_get t0 ((x lsr 24) land 0xff);
      i := !i + 4
    done;
    while !i < stop do
      c :=
        Array.unsafe_get t0 ((!c lxor Char.code (String.unsafe_get s !i)) land 0xff)
        lxor (!c lsr 8);
      incr i
    done;
    Int32.of_int (!c lxor 0xFFFFFFFF)

  let digest s = digest_sub s 0 (String.length s)
  let digest_bytes b = digest (Bytes.unsafe_to_string b)
  let digest_bytes_sub b pos len = digest_sub (Bytes.unsafe_to_string b) pos len

  (* The pre-overhaul boxed-[Int32] implementation, kept wired into the
     legacy journal path ([Pager.legacy_config]) so ablation benchmarks
     measure the commit path the overhaul actually replaced. *)
  let table_boxed =
    lazy
      (Array.init 256 (fun n ->
           let c = ref (Int32.of_int n) in
           for _ = 0 to 7 do
             if Int32.logand !c 1l <> 0l then
               c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else c := Int32.shift_right_logical !c 1
           done;
           !c))

  let digest_bytes_boxed b =
    let s = Bytes.unsafe_to_string b in
    let table = Lazy.force table_boxed in
    let c = ref 0xFFFFFFFFl in
    for i = 0 to String.length s - 1 do
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xffl) in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
    done;
    Int32.logxor !c 0xFFFFFFFFl
end
