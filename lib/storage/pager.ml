(** Page cache and transactional page I/O.

    The pager owns the database file and an undo journal.  All access to
    the file goes through fixed-size pages ({!page_size} bytes).  A
    transaction protocol provides atomic multi-page updates:

    - Before a page is modified for the first time inside a transaction,
      its before-image is appended to the journal file.
    - Dirty pages may be written back to the main file at any time
      (steal), but only after the journal containing their before-image
      has been fsynced.
    - [commit] flushes all dirty pages, fsyncs the main file, then
      truncates the journal (the commit point).
    - [abort] (or crash recovery on open) copies the before-images from
      the journal back into the main file.

    Page 0 is reserved for the store header and is managed like any
    other page (so header updates are also journaled and thus atomic).

    Hot paths are tuned (see DESIGN.md "Commit path & page cache"):
    writeback sorts dirty pages and merges contiguous runs into single
    extent writes; before-image frames are encoded in place into a
    reusable group buffer and land with one write + one fsync per sync
    point; eviction picks victims from an O(log n) LRU map instead of
    sorting the whole cache; and a dirty counter lets [begin_tx] skip
    its checkpoint flush/fsync when the cache is already clean (the
    common case right after a commit).  Each optimisation can be
    switched back to the pre-overhaul behaviour through {!config} —
    [legacy_config] reproduces the old hot paths for ablation
    benchmarks ([bench/main.exe storage]).

    All file I/O goes through a {!Vfs.t} (defaulting to {!Vfs.unix}),
    so the crash-recovery protocol can be proven correct under the
    fault-injecting VFS ({!Fault}) by sweeping a simulated power cut
    across every syscall of a workload (see [test/test_crash.ml]).

    {1 MVCC page versioning}

    Since PR 7 the cache is backed by an LSN-keyed {e version chain}
    (DESIGN.md "MVCC & group commit").  The single writer keeps the
    journalled path above unchanged, but each committing transaction
    publishes immutable after-images of its dirty pages keyed by the
    commit LSN, and the first mutation of a page captures its committed
    before-image as a base version.  {!snapshot} hands out a frozen-LSN
    read handle ({!Snapshot}) that other OCaml 5 domains use without
    taking any lock on the read path: a page read resolves to the
    newest version at-or-below the snapshot LSN, falling back to a
    [pread] of the data file revalidated against the version map
    (publish happens-before the first mutation, which happens-before
    any writeback, so a page absent from the map after the pread is
    proven to carry its committed bytes).  Old versions stay pinned
    while any snapshot at an older LSN is live and are reclaimed at
    each commit by a min-active-LSN watermark.  Version bookkeeping is
    skipped entirely while no snapshot is registered, so the PR 2
    write paths are unchanged when the feature is idle, and
    {!config}[.mvcc] ablates it outright.

    A group-commit batch (driven by [Store.Group]) runs several
    transactions inside one journal lifetime: {!soft_begin} /
    {!commit_soft} give each its own LSN and rollback scope (an
    in-memory undo set — the shared undo journal still rolls back the
    {e whole} batch on crash, which is exactly the unacknowledged
    suffix), and a single {!commit_hard} pays the flush + fsync cycle
    for all of them. *)

let page_size = 4096

(** Per-page checksum trailer: the last {!trailer_size} bytes of every
    page hold a CRC-32 over the first {!page_capacity} bytes.  The
    trailer is part of the page layout regardless of configuration —
    higher layers (heap, free list) never place data there — so the
    same file format serves both the checksummed and the ablation
    (no-verify) pager; {!config}[.checksums] only controls whether the
    trailer is stamped on writeback and verified on read. *)
let trailer_size = 4

(** Bytes of a page available to higher layers ([page_size] minus the
    checksum trailer). *)
let page_capacity = page_size - trailer_size

let crc_off = page_capacity

exception Pager_error of string

(** A page read from disk whose content does not hash to its stored
    checksum trailer: media-level corruption (bit rot, torn hardware
    write, misdirected I/O).  [expected] is the stored trailer CRC,
    [got] the CRC computed over the page content as read. *)
exception Page_corrupt of { page : int; expected : int; got : int }

(** Typed I/O failure: an operating-system error surfaced by the
    underlying VFS, annotated with the operation and file it hit.
    Callers never see raw [Unix.Unix_error] from the pager. *)
exception Io_error of { op : string; path : string; error : Unix.error }

let fail fmt = Format.kasprintf (fun s -> raise (Pager_error s)) fmt

(* Run one VFS operation: retry on EINTR, wrap any other OS error into
   {!Io_error}.  A simulated power cut ({!Vfs.Crash}) is deliberately
   not caught anywhere in the pager: the "machine" is gone and the
   torture harness above us owns what happens next. *)
let io ~op ~path f =
  let rec go () =
    match f () with
    | v -> v
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (error, _, _) -> raise (Io_error { op; path; error })
  in
  go ()

(* Process-wide observability handles (DESIGN.md "Observability").
   They mirror the per-pager [stats] fields aggregated across every
   open database; the per-pager fields stay authoritative for
   single-database accounting. *)
let m_pread_ns =
  Pobs.Metrics.histogram "pdb_pager_pread_ns" ~help:"Data/journal file pread latency"

let m_pwrite_ns =
  Pobs.Metrics.histogram "pdb_pager_pwrite_ns" ~help:"Data/journal file pwrite latency"

let m_fsync_ns = Pobs.Metrics.histogram "pdb_pager_fsync_ns" ~help:"fsync latency"

let m_page_reads =
  Pobs.Metrics.counter "pdb_pager_page_reads_total" ~help:"Pages read from disk"

let m_page_writes =
  Pobs.Metrics.counter "pdb_pager_page_writes_total" ~help:"Pages written back to disk"

let m_cache_hits = Pobs.Metrics.counter "pdb_pager_cache_hits_total" ~help:"Page-cache hits"

let m_cache_misses =
  Pobs.Metrics.counter "pdb_pager_cache_misses_total" ~help:"Page-cache misses"

let m_evictions = Pobs.Metrics.counter "pdb_pager_evictions_total" ~help:"Pages evicted"

let m_journal_bytes =
  Pobs.Metrics.counter "pdb_pager_journal_bytes_total" ~help:"Bytes appended to undo journals"

let m_coalesced_runs =
  Pobs.Metrics.counter "pdb_pager_coalesced_runs_total"
    ~help:"Contiguous dirty-page runs written as single extents"

let m_extent_pages =
  Pobs.Metrics.counter "pdb_pager_extent_pages_total"
    ~help:"Pages written through coalesced extent writes"

let m_commits = Pobs.Metrics.counter "pdb_pager_commits_total" ~help:"Pager-level commits"
let m_aborts = Pobs.Metrics.counter "pdb_pager_aborts_total" ~help:"Pager-level aborts"

let m_recoveries =
  Pobs.Metrics.counter "pdb_pager_recoveries_total"
    ~help:"Journal replays performed on open or abort"

let m_page_corrupt =
  Pobs.Metrics.counter "pdb_page_corrupt_total"
    ~help:"Pages whose checksum verification failed"

let m_torn_tail =
  Pobs.Metrics.counter "pdb_recovery_torn_tail_total"
    ~help:"Journal recoveries that discarded a corrupt or torn tail"

let m_scrub_runs = Pobs.Metrics.counter "pdb_scrub_runs_total" ~help:"Scrub passes completed"

let m_scrub_pages =
  Pobs.Metrics.counter "pdb_scrub_pages_total" ~help:"Pages verified by scrub passes"

let m_scrub_corrupt =
  Pobs.Metrics.counter "pdb_scrub_corrupt_total" ~help:"Corrupt pages found by scrub passes"

let m_scrub_run_ns =
  Pobs.Metrics.histogram "pdb_scrub_run_ns" ~help:"Wall-clock duration of scrub passes"

let m_snap_reads =
  Pobs.Metrics.counter "pdb_mvcc_snapshot_reads_total"
    ~help:"Page reads served to frozen-LSN snapshot handles"

let m_version_pins =
  Pobs.Metrics.counter "pdb_mvcc_versions_published_total"
    ~help:"Page versions published into the MVCC version chains"

let m_snapshots_active =
  Pobs.Metrics.gauge "pdb_mvcc_snapshots_active" ~help:"Live frozen-LSN snapshot handles"

(* ------------------------------------------------------------------ *)
(* Log sequence numbers and redo records                               *)
(* ------------------------------------------------------------------ *)

(** Byte offset of the commit LSN inside the header page (page 0).  The
    store header uses offsets 0..27 (magic, version, next_oid, dir_root,
    free_head); the LSN claims the next 8 bytes.  Pre-PR5 files carry
    zeroes here, which reads back as LSN 0 — "never replicated". *)
let lsn_header_off = 28

(** Byte offset of the checksum flag inside the header page:
    {!checksum_flag_on} when the file's pages carry stamped CRC
    trailers, 0 otherwise.  Written together with the LSN at every
    page-dirtying commit, so the flag is journaled and rolls back with
    the data.  A file whose flag is 0 is never verified even under a
    checksumming config (its trailers were never maintained); vacuum
    rewrites every page and so upgrades such a file.  The "on" value is
    a bit pattern rather than 1 so that any {e single-bit} flip of the
    flag byte itself yields an invalid value — detected as header
    corruption — instead of silently disabling verification. *)
let checksum_flag_off = 36

let checksum_flag_on = 0xA5

(** A committed transaction's after-images: every page dirtied since the
    previous commit, captured at the commit point, stamped with the LSN
    the commit advanced the header to.  This is what physical
    replication ships: the pager journals *before*-images for rollback,
    so the redo stream is the complement — the coalesced writeback set.
    Pages are sorted by page number; images are immutable copies. *)
type redo_record = { lsn : int; pages : (int * string) list }

type page = {
  no : int;
  data : Bytes.t;
  mutable dirty : bool;
  mutable lru : int; (* last-touch tick, for eviction *)
}

(** Hot-path switches.  The default is all optimisations on; each
    [false] re-enables the corresponding pre-overhaul code path so
    benchmarks can measure every optimisation against the pager it
    replaced. *)
type config = {
  coalesce : bool;
      (** sort dirty pages, merge contiguous runs into extent writes
          (off: one write per page, cache-hash order) *)
  group_journal : bool;
      (** encode before-image frames in place into a reusable buffer,
          one journal write per sync point (off: three 4 KiB copies
          and one write per frame) *)
  lazy_checkpoint : bool;
      (** track dirtiness so a clean cache skips the [begin_tx]
          checkpoint flush/fsync and an empty journal skips the
          commit-time truncate/fsync (off: unconditional) *)
  logn_evict : bool;
      (** pick eviction victims from an O(log n) LRU map (off: sort
          the whole cache by last touch on every eviction) *)
  checksums : bool;
      (** stamp a CRC-32 trailer into every page on writeback and
          verify it on every cache-miss read, raising {!Page_corrupt}
          on mismatch (off: trailers neither stamped nor checked — the
          ablation path; the page layout is identical either way) *)
  mvcc : bool;
      (** maintain LSN-keyed page versions so {!snapshot} can hand out
          frozen-LSN read handles to concurrent domains (off: snapshots
          refuse; zero version bookkeeping anywhere) *)
}

let default_config =
  {
    coalesce = true;
    group_journal = true;
    lazy_checkpoint = true;
    logn_evict = true;
    checksums = true;
    mvcc = true;
  }

(** The pre-overhaul pager, kept wired for ablation benchmarks. *)
let legacy_config =
  {
    coalesce = false;
    group_journal = false;
    lazy_checkpoint = false;
    logn_evict = false;
    checksums = false;
    mvcc = false;
  }

(* ------------------------------------------------------------------ *)
(* Page checksum helpers                                               *)
(* ------------------------------------------------------------------ *)

(* CRC of the content region, and the CRC the trailer claims. *)
let image_crc b = Int32.to_int (Codec.Crc32.digest_bytes_sub b 0 page_capacity) land 0xffffffff
let stored_crc b = Int32.to_int (Bytes.get_int32_le b crc_off) land 0xffffffff

(** Stamp the checksum trailer of a full page image in place.  Exposed
    for layers that fabricate page images outside the pager (the
    replication feed's snapshot mirror, tests). *)
let stamp_image (b : Bytes.t) = Codec.Put.u32 b crc_off (image_crc b)

(* A page that is entirely zero is "never written": the file was
   extended past it (sparse tail, crash-torn growth) without its
   content ever landing.  No live page is all-zero — every page kind
   sets byte 0 — so accepting it cannot mask real data corruption,
   while rejecting it would fail states a clean crash can produce. *)
let is_zero_page b =
  let rec go i = i >= page_size || (Bytes.get_int64_le b i = 0L && go (i + 8)) in
  go 0

(** Verify a full page image against its trailer; raises
    {!Page_corrupt} (and counts it) on mismatch. *)
let verify_image ~page (b : Bytes.t) =
  let expected = stored_crc b and got = image_crc b in
  if expected <> got && not (is_zero_page b) then begin
    Pobs.Metrics.inc m_page_corrupt;
    raise (Page_corrupt { page; expected; got })
  end

(* LRU index: last-touch tick -> page.  Ticks are strictly increasing,
   so every cached page (except pinned page 0) owns exactly one key and
   eviction victims are the smallest bindings. *)
module Lru = Map.Make (Int)

(* MVCC version store: page number -> versions, newest first, each a
   [(created_lsn, image)] pair.  The map is immutable and swapped
   atomically by the single writer, so reader domains get a consistent
   view from one [Atomic.get] with no lock.  Invariants:

   - the newest version of an entry always equals the page's current
     committed content (base versions are captured from committed
     bytes before the first mutation; every later commit that touches
     the page prepends its after-image);
   - version lists are sorted by descending LSN, with at most one
     version at or below any live snapshot's LSN ever needed (the
     lookup takes the first version <= the snapshot LSN);
   - a base version captured before the first commit that touches the
     page under protection carries LSN 0: it is content from at or
     before the reclamation watermark, so it serves every live
     snapshot correctly. *)
module Pmap = Map.Make (Int)

type versions = (int * string) list Pmap.t

type t = {
  vfs : Vfs.t;
  fd : Vfs.file;
  path : string;
  journal_path : string;
  created : bool; (* the file was empty when opened (after recovery) *)
  readonly : bool;
  cfg : config;
  mutable verify : bool;
      (* checksums active for this file: [cfg.checksums] and the file
         actually carries stamped trailers (created by us, or header
         flag set) *)
  quarantined : (int, unit) Hashtbl.t;
      (* known-corrupt pages awaiting repair: reads skip verification
         (so a repair transaction can journal the damaged before-image)
         and scrub skips re-reporting them *)
  mutable page_count : int;
  mutable lsn : int; (* header LSN; advanced by each page-dirtying commit *)
  mutable redo_hook : (redo_record -> unit) option;
  since_commit : (int, unit) Hashtbl.t;
      (* pages dirtied since the last commit — the candidate after-image
         set for the next redo record.  A safe superset: entries from
         aborted transactions or out-of-tx writes stay and ship their
         (reverted or checkpointed) on-disk content harmlessly. *)
  cache : (int, page) Hashtbl.t;
  mutable cache_cap : int;
  mutable tick : int;
  mutable lru_map : page Lru.t; (* maintained only when [cfg.logn_evict] *)
  mutable dirty_list : page list;
      (* pages that turned dirty since the last flush; entries whose
         page was cleaned in the meantime (eviction writeback) are
         stale and skipped *)
  mutable dirty_count : int;
  mutable unsynced_writes : bool; (* data-file writes since its last fsync *)
  mutable wbuf : Bytes.t; (* reusable extent-write scratch *)
  (* transaction state *)
  mutable in_tx : bool;
  mutable journaled : (int, unit) Hashtbl.t; (* pages whose before-image is in the journal *)
  mutable jfd : Vfs.file option;
  mutable journal_len : int; (* bytes of valid frames on disk; buffered and
                                retried appends land here, so a torn append
                                (ENOSPC mid-frame) is overwritten on retry *)
  mutable journal_synced : bool;
  mutable jbuf : Bytes.t; (* group-journal frame buffer *)
  mutable jbuf_len : int;
  mutable tx_new_pages : (int, unit) Hashtbl.t; (* pages allocated in this tx *)
  (* MVCC version store (all fields writer-owned unless noted) *)
  versions : versions Atomic.t; (* read lock-free by snapshot domains *)
  snap_mu : Mutex.t;
      (* Guards the snapshot registry — and is held by the writer for
         the whole duration of every transaction (begin_tx .. commit /
         commit_hard / abort), so snapshots can only be taken between
         transactions, when the disk image is exactly the committed
         state at the published LSN.  That boundary is what makes the
         lock-free read protocol sound: a page the version map does not
         cover is proven unchanged on disk since the snapshot froze. *)
  snaps : (int, int) Hashtbl.t; (* snapshot id -> frozen LSN; under snap_mu *)
  mutable next_snap_id : int; (* under snap_mu *)
  active_snaps : int Atomic.t; (* = Hashtbl.length snaps, readable anywhere *)
  snap_reads : int Atomic.t; (* pages served to snapshot handles *)
  mutable tx_protect : bool;
      (* sampled at begin_tx: at least one snapshot is live (or stale
         versions remain), so this transaction must capture base
         versions and publish after-images.  False = zero MVCC work. *)
  (* group-commit batch state (writer-owned) *)
  mutable soft_mode : bool; (* inside a Store.Group batch *)
  tx_touched : (int, unit) Hashtbl.t; (* pages touched by the current soft tx *)
  mutable tx_undo : (int * Bytes.t) list; (* their pre-images, for soft_abort *)
  mutable pending_redo : redo_record list;
      (* soft-committed records, newest first; fired in commit order by
         commit_hard once the batch is durable — replication must never
         see a commit that could still be rolled back *)
  (* statistics *)
  mutable reads : int;
  mutable writes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable journal_bytes : int;
}

(* Read exactly [len] bytes at [file_off], zero-filling past EOF.
   Short transfers and EINTR are retried. *)
let really_pread ~path (fd : Vfs.file) buf ~off ~len ~file_off =
  let rec go pos remaining =
    if remaining > 0 then begin
      let n =
        io ~op:"pread" ~path (fun () ->
            fd.Vfs.pread ~buf ~off:(off + pos) ~len:remaining ~at:(file_off + pos))
      in
      if n = 0 then Bytes.fill buf (off + pos) remaining '\000'
      else go (pos + n) (remaining - n)
    end
  in
  Pobs.Metrics.time m_pread_ns (fun () -> go 0 len)

(* Write [len] bytes of [buf] from [off] at [file_off], retrying short
   transfers and EINTR. *)
let really_write ~path (fd : Vfs.file) buf ~off ~len ~file_off =
  let rec go pos =
    if pos < len then begin
      let n =
        io ~op:"pwrite" ~path (fun () ->
            fd.Vfs.pwrite ~buf ~off:(off + pos) ~len:(len - pos) ~at:(file_off + pos))
      in
      if n <= 0 then raise (Io_error { op = "pwrite"; path; error = Unix.EIO });
      go (pos + n)
    end
  in
  Pobs.Metrics.time m_pwrite_ns (fun () -> go 0)

(* Same, through the extent entry point (coalesced multi-page runs). *)
let really_write_extent ~path (fd : Vfs.file) buf ~off ~len ~file_off =
  let rec go pos =
    if pos < len then begin
      let n =
        io ~op:"pwrite_extent" ~path (fun () ->
            fd.Vfs.pwrite_extent ~buf ~off:(off + pos) ~len:(len - pos) ~at:(file_off + pos))
      in
      if n <= 0 then raise (Io_error { op = "pwrite_extent"; path; error = Unix.EIO });
      go (pos + n)
    end
  in
  Pobs.Metrics.time m_pwrite_ns (fun () -> go 0)

(* All fsyncs go through here so the latency histogram covers every
   durability point (journal sync, commit flush, recovery). *)
let fsync_file ~path (fd : Vfs.file) =
  Pobs.Metrics.time m_fsync_ns (fun () ->
      io ~op:"fsync" ~path (fun () -> fd.Vfs.fsync ()))

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

(* Journal frame layout: magic u32 | page_no i64 | crc32 u32 | page bytes *)
let journal_frame_magic = 0x4A524E4C (* "JRNL" *)
let journal_frame_size = 4 + 8 + 4 + page_size

(** Group-journal buffer capacity, in frames.  A transaction touching
    more pages than this flushes the buffer (plain write, no fsync) at
    each boundary, bounding memory at ~128 KiB. *)
let journal_buffer_frames = 32

let journal_open t =
  match t.jfd with
  | Some fd -> fd
  | None ->
      let fd =
        io ~op:"open" ~path:t.journal_path (fun () ->
            t.vfs.Vfs.open_file ~trunc:true t.journal_path)
      in
      t.jfd <- Some fd;
      t.journal_len <- 0;
      fd

(* Write the buffered frames at the journal's valid end.  On failure
   (ENOSPC, ...) nothing is consumed: [journal_len] and the buffer are
   unchanged, so a retry overwrites the torn tail rather than
   appending after it. *)
let journal_flush t =
  if t.jbuf_len > 0 then begin
    let jfd = journal_open t in
    really_write ~path:t.journal_path jfd t.jbuf ~off:0 ~len:t.jbuf_len
      ~file_off:t.journal_len;
    t.journal_len <- t.journal_len + t.jbuf_len;
    t.journal_bytes <- t.journal_bytes + t.jbuf_len;
    Pobs.Metrics.addi m_journal_bytes t.jbuf_len;
    t.jbuf_len <- 0
  end

(* The pre-overhaul append: a fresh encoder per frame — three full-page
   copies (Buffer, to_string, of_string), a boxed-Int32 CRC, and one
   write. *)
let journal_append_legacy t jfd page_no (data : Bytes.t) =
  let e = Codec.Enc.create ~size:journal_frame_size () in
  Codec.Enc.u32 e journal_frame_magic;
  Codec.Enc.i64 e (Int64.of_int page_no);
  Codec.Enc.u32 e (Int32.to_int (Codec.Crc32.digest_bytes_boxed data) land 0xffffffff);
  Codec.Enc.raw e (Bytes.to_string data);
  really_write ~path:t.journal_path jfd
    (Bytes.of_string (Codec.Enc.to_string e))
    ~off:0 ~len:journal_frame_size ~file_off:t.journal_len;
  t.journal_len <- t.journal_len + journal_frame_size;
  t.journal_bytes <- t.journal_bytes + journal_frame_size;
  Pobs.Metrics.addi m_journal_bytes journal_frame_size

let journal_append t page_no (data : Bytes.t) =
  let jfd = journal_open t in
  if not t.cfg.group_journal then journal_append_legacy t jfd page_no data
  else begin
    let cap = journal_buffer_frames * journal_frame_size in
    if Bytes.length t.jbuf < cap then begin
      let b = Bytes.create cap in
      Bytes.blit t.jbuf 0 b 0 t.jbuf_len;
      t.jbuf <- b
    end;
    if t.jbuf_len + journal_frame_size > cap then journal_flush t;
    (* encode the frame in place: header stores + one page blit, no
       intermediate copies *)
    let off = t.jbuf_len in
    Codec.Put.u32 t.jbuf off journal_frame_magic;
    Codec.Put.i64 t.jbuf (off + 4) (Int64.of_int page_no);
    Codec.Put.u32 t.jbuf (off + 12)
      (Int32.to_int (Codec.Crc32.digest_bytes data) land 0xffffffff);
    Bytes.blit data 0 t.jbuf (off + 16) page_size;
    t.jbuf_len <- off + journal_frame_size
  end;
  t.journal_synced <- false

let journal_truncate t =
  (* Frames still buffered belong to the transaction being finished:
     their pages never reached the data file (the steal barrier syncs
     the whole buffer first), so they are simply dropped. *)
  t.jbuf_len <- 0;
  (match t.jfd with
  | Some fd ->
      (* A journal that is already empty on disk has nothing to cut; a
         commit that journaled nothing then skips both syscalls. *)
      if t.journal_len > 0 || not t.cfg.lazy_checkpoint then begin
        io ~op:"truncate" ~path:t.journal_path (fun () -> fd.Vfs.truncate 0);
        fsync_file ~path:t.journal_path fd
      end
  | None -> ());
  t.journal_len <- 0;
  Hashtbl.reset t.journaled;
  Hashtbl.reset t.tx_new_pages;
  t.journal_synced <- true

(* Sync point: land the buffered frames with one write, then one fsync. *)
let journal_sync t =
  if not t.journal_synced then begin
    journal_flush t;
    (match t.jfd with
    | Some fd -> fsync_file ~path:t.journal_path fd
    | None -> ());
    t.journal_synced <- true
  end

(* Read all valid frames from the journal file at [path]; returns the
   frames in order.  Stops at the first corrupt/truncated frame: a torn
   tail (magic mismatch, bad CRC, or a short final frame) marks the end
   of the trustworthy prefix. *)
let journal_read_frames ~(vfs : Vfs.t) path =
  if not (vfs.Vfs.exists path) then []
  else begin
    let fd = io ~op:"open" ~path (fun () -> vfs.Vfs.open_file path) in
    let frames = ref [] in
    let torn = ref false in
    (try
       let len = io ~op:"size" ~path (fun () -> fd.Vfs.size ()) in
       let bytes = Bytes.create len in
       really_pread ~path fd bytes ~off:0 ~len ~file_off:0;
       let buf = Bytes.unsafe_to_string bytes in
       let d = Codec.Dec.of_string buf in
       let continue = ref true in
       while !continue && Codec.Dec.remaining d >= journal_frame_size do
         let magic = Codec.Dec.u32 d in
         let page_no = Int64.to_int (Codec.Dec.i64 d) in
         let crc = Codec.Dec.u32 d in
         let start = d.Codec.Dec.pos in
         let data = String.sub buf start page_size in
         d.Codec.Dec.pos <- start + page_size;
         if
           magic = journal_frame_magic
           && page_no >= 0
           && Int32.to_int (Codec.Crc32.digest data) land 0xffffffff = crc
         then frames := (page_no, data) :: !frames
         else continue := false
       done;
       (* Anything left behind the valid prefix — a frame that failed
          its magic/CRC check, or a short final frame — is a torn tail:
          expected after a power cut mid-append, but worth a trace
          rather than a silent discard. *)
       if (not !continue) || Codec.Dec.remaining d > 0 then torn := true
     with Codec.Corrupt _ -> torn := true);
    io ~op:"close" ~path (fun () -> fd.Vfs.close ());
    if !torn then begin
      Pobs.Metrics.inc m_torn_tail;
      Printf.eprintf "pager: journal %s: discarded corrupt/torn tail after %d valid frame(s)\n%!"
        path (List.length !frames)
    end;
    List.rev !frames
  end

(* ------------------------------------------------------------------ *)
(* Cache management                                                    *)
(* ------------------------------------------------------------------ *)

let touch t (p : page) =
  t.tick <- t.tick + 1;
  if t.cfg.logn_evict && p.no <> 0 then begin
    if p.lru > 0 then t.lru_map <- Lru.remove p.lru t.lru_map;
    t.lru_map <- Lru.add t.tick p t.lru_map
  end;
  p.lru <- t.tick

let mark_dirty t (p : page) =
  Hashtbl.replace t.since_commit p.no ();
  if not p.dirty then begin
    p.dirty <- true;
    t.dirty_count <- t.dirty_count + 1;
    t.dirty_list <- p :: t.dirty_list
  end

let mark_clean t (p : page) =
  if p.dirty then begin
    p.dirty <- false;
    t.dirty_count <- t.dirty_count - 1
  end

(** Longest run of contiguous page numbers an extent write may merge
    (bounds the scratch buffer at 256 KiB). *)
let max_extent_pages = 64

(** Merge a sorted list of page numbers into [(start, len)] runs of
    contiguous pages, each at most {!max_extent_pages} long.  Exposed
    for unit tests. *)
let coalesce_runs (nos : int list) : (int * int) list =
  let rec go start len rest acc =
    match rest with
    | no :: tl when no = start + len && len < max_extent_pages ->
        go start (len + 1) tl acc
    | no :: tl -> go no 1 tl ((start, len) :: acc)
    | [] -> List.rev ((start, len) :: acc)
  in
  match nos with [] -> [] | no :: tl -> go no 1 tl []

(* Write a batch of dirty pages back to the data file, enforcing the
   steal barrier: if any page in the batch has a journaled
   before-image, the journal is flushed and fsynced before the first
   data write.  With [cfg.coalesce] the batch is sorted by page number
   and contiguous runs land as single extent writes; otherwise one
   write per page, in the order given (the pre-overhaul path). *)
let write_batch t (pages : page list) =
  if pages <> [] then begin
    (* Stamp trailers in place (the cached image keeps the stamp, so
       before-images journaled on a later first-touch stay
       self-consistent) before any byte reaches the journal or file. *)
    if t.verify then List.iter (fun p -> stamp_image p.data) pages;
    if t.in_tx && List.exists (fun p -> Hashtbl.mem t.journaled p.no) pages then
      journal_sync t;
    t.unsynced_writes <- true;
    if not t.cfg.coalesce then
      List.iter
        (fun p ->
          really_write ~path:t.path t.fd p.data ~off:0 ~len:page_size
            ~file_off:(p.no * page_size);
          t.writes <- t.writes + 1;
          Pobs.Metrics.inc m_page_writes;
          mark_clean t p)
        pages
    else begin
      let arr = Array.of_list pages in
      Array.sort (fun a b -> compare a.no b.no) arr;
      let runs = coalesce_runs (Array.to_list (Array.map (fun p -> p.no) arr)) in
      let idx = ref 0 in
      List.iter
        (fun (start, len) ->
          if len = 1 then
            really_write ~path:t.path t.fd arr.(!idx).data ~off:0 ~len:page_size
              ~file_off:(start * page_size)
          else begin
            let bytes = len * page_size in
            if Bytes.length t.wbuf < bytes then t.wbuf <- Bytes.create (max_extent_pages * page_size);
            for k = 0 to len - 1 do
              Bytes.blit arr.(!idx + k).data 0 t.wbuf (k * page_size) page_size
            done;
            really_write_extent ~path:t.path t.fd t.wbuf ~off:0 ~len:bytes
              ~file_off:(start * page_size);
            Pobs.Metrics.inc m_coalesced_runs;
            Pobs.Metrics.addi m_extent_pages len
          end;
          for k = 0 to len - 1 do
            mark_clean t arr.(!idx + k)
          done;
          t.writes <- t.writes + len;
          Pobs.Metrics.addi m_page_writes len;
          idx := !idx + len)
        runs
    end
  end

let evict_if_needed t =
  let n = Hashtbl.length t.cache in
  if n > t.cache_cap then begin
    (* Evict the ~25% least recently used pages (page 0 is pinned). *)
    let n_evict = max 1 (n / 4) in
    let victims =
      if t.cfg.logn_evict then begin
        (* pop the smallest ticks from the LRU map *)
        let rec take k seq acc =
          if k = 0 then acc
          else
            match seq () with
            | Seq.Nil -> acc
            | Seq.Cons ((_, p), rest) -> take (k - 1) rest (p :: acc)
        in
        List.rev (take n_evict (Lru.to_seq t.lru_map) [])
      end
      else begin
        (* pre-overhaul path: sort the whole cache by last touch *)
        let pages = Hashtbl.fold (fun _ p acc -> p :: acc) t.cache [] in
        let sorted = List.sort (fun a b -> compare a.lru b.lru) pages in
        List.filteri (fun i _ -> i < n_evict) sorted
        |> List.filter (fun p -> p.no <> 0)
      end
    in
    write_batch t (List.filter (fun p -> p.dirty) victims);
    List.iter
      (fun p ->
        Hashtbl.remove t.cache p.no;
        if t.cfg.logn_evict then t.lru_map <- Lru.remove p.lru t.lru_map;
        t.evictions <- t.evictions + 1;
        Pobs.Metrics.inc m_evictions)
      victims
  end

let load_page t no =
  match Hashtbl.find_opt t.cache no with
  | Some p ->
      touch t p;
      t.hits <- t.hits + 1;
      Pobs.Metrics.inc m_cache_hits;
      p
  | None ->
      t.misses <- t.misses + 1;
      Pobs.Metrics.inc m_cache_misses;
      let data = Bytes.create page_size in
      if no < t.page_count then begin
        really_pread ~path:t.path t.fd data ~off:0 ~len:page_size ~file_off:(no * page_size);
        t.reads <- t.reads + 1;
        Pobs.Metrics.inc m_page_reads;
        (* Verify before caching: a corrupt page must never enter the
           cache (each retry re-reads and re-raises).  Quarantined pages
           skip the check so a repair transaction can journal and
           overwrite the damaged image. *)
        if t.verify && not (Hashtbl.mem t.quarantined no) then verify_image ~page:no data
      end
      else Bytes.fill data 0 page_size '\000';
      let p = { no; data; dirty = false; lru = 0 } in
      Hashtbl.replace t.cache no p;
      touch t p;
      evict_if_needed t;
      p

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

(* Undo-journal replay.  The *first* before-image of a page wins: it is
   the page's pre-transaction state, and any later duplicate (which a
   crashed, re-run recovery or a buggy writer could leave behind) must
   not override it.  Recovery is idempotent and re-runnable: the journal
   is only removed after the restored pages are durable, so a crash at
   any point during recovery simply means recovery runs again from the
   same journal on the next open. *)
let recover_from_journal ~(vfs : Vfs.t) path journal_path =
  let frames = journal_read_frames ~vfs journal_path in
  if frames <> [] then begin
    let fd = io ~op:"open" ~path (fun () -> vfs.Vfs.open_file path) in
    let applied = Hashtbl.create 64 in
    List.iter
      (fun (page_no, data) ->
        if not (Hashtbl.mem applied page_no) then begin
          Hashtbl.replace applied page_no ();
          really_write ~path fd (Bytes.of_string data) ~off:0 ~len:page_size
            ~file_off:(page_no * page_size)
        end)
      frames;
    fsync_file ~path fd;
    io ~op:"close" ~path (fun () -> fd.Vfs.close ());
    Pobs.Metrics.inc m_recoveries
  end;
  if vfs.Vfs.exists journal_path then
    io ~op:"remove" ~path:journal_path (fun () -> vfs.Vfs.remove journal_path)

let open_file ?(cache_pages = 2048) ?(config = default_config) ?(vfs = Vfs.unix)
    ?(readonly = false) path =
  let journal_path = path ^ ".journal" in
  if readonly then begin
    (* A read-only pager must not write — and recovery both writes the
       data file and *removes* the journal, which would pull the rug out
       from under a concurrent writer (e.g. a replica applier holding the
       same path).  A journal with valid frames means the file needs
       recovery; refuse loudly rather than serve a torn image. *)
    if not (vfs.Vfs.exists path) then fail "readonly open: %s does not exist" path;
    if journal_read_frames ~vfs journal_path <> [] then
      fail "readonly open: %s has a journal with pending frames" path
  end
  else if vfs.Vfs.exists path then recover_from_journal ~vfs path journal_path;
  let fd = io ~op:"open" ~path (fun () -> vfs.Vfs.open_file path) in
  let size = io ~op:"size" ~path (fun () -> fd.Vfs.size ()) in
  let page_count = (size + page_size - 1) / page_size in
  let t =
  {
    vfs;
    fd;
    path;
    journal_path;
    created = size = 0;
    readonly;
    cfg = config;
    verify = size = 0 && config.checksums;
    quarantined = Hashtbl.create 4;
    page_count = max page_count 1;
    lsn = 0;
    redo_hook = None;
    since_commit = Hashtbl.create 64;
    cache = Hashtbl.create 1024;
    cache_cap = cache_pages;
    tick = 0;
    lru_map = Lru.empty;
    dirty_list = [];
    dirty_count = 0;
    unsynced_writes = false;
    wbuf = Bytes.create 0;
    in_tx = false;
    journaled = Hashtbl.create 64;
    jfd = None;
    journal_len = 0;
    journal_synced = true;
    jbuf = Bytes.create 0;
    jbuf_len = 0;
    tx_new_pages = Hashtbl.create 16;
    versions = Atomic.make Pmap.empty;
    snap_mu = Mutex.create ();
    snaps = Hashtbl.create 8;
    next_snap_id = 1;
    active_snaps = Atomic.make 0;
    snap_reads = Atomic.make 0;
    tx_protect = false;
    soft_mode = false;
    tx_touched = Hashtbl.create 16;
    tx_undo = [];
    pending_redo = [];
    reads = 0;
    writes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    journal_bytes = 0;
  }
  in
  if size > 0 then begin
    (* Seed the LSN from the header page; a pre-PR5 file reads 0.
       [t.verify] is still false here, so this load skips verification
       — the checksum flag that decides whether to verify lives on this
       very page. *)
    let hdr = (load_page t 0).data in
    t.lsn <- Int64.to_int (Bytes.get_int64_le hdr lsn_header_off);
    let flag = Bytes.get_uint8 hdr checksum_flag_off in
    if config.checksums then begin
      (* An invalid flag value is itself header corruption: the flag is
         only ever written as [checksum_flag_on] or 0, so a flipped bit
         in the byte cannot silently disable verification.  An all-zero
         header is a store whose initialisation was rolled back — treat
         it as fresh and start (re)stamping. *)
      if flag <> 0 && flag <> checksum_flag_on then begin
        Pobs.Metrics.inc m_page_corrupt;
        raise (Page_corrupt { page = 0; expected = stored_crc hdr; got = image_crc hdr })
      end;
      t.verify <- flag = checksum_flag_on || is_zero_page hdr;
      if flag = checksum_flag_on then verify_image ~page:0 hdr
    end
  end;
  t

let page_count t = t.page_count

(** The header LSN: the sequence number of the last page-dirtying commit
    applied to this file.  0 on a fresh (or pre-PR5) store. *)
let lsn t = t.lsn

let is_readonly t = t.readonly

(** Install the redo hook.  After every commit that dirtied at least one
    page, the hook receives the {!redo_record} of after-images.  It runs
    *after* the commit point (journal truncated, data durable);
    exceptions it raises are logged and swallowed — a replication
    subscriber must never wedge the committing writer. *)
let set_redo_hook t f = t.redo_hook <- Some f

let clear_redo_hook t = t.redo_hook <- None

(** True if the file was empty when this pager opened it (i.e. the
    store is brand new, not merely missing its header magic). *)
let created t = t.created

let path t = t.path

(** Test hook: is page [no] currently held in the cache? *)
let cached t no = Hashtbl.mem t.cache no

(* ------------------------------------------------------------------ *)
(* Integrity: verification, quarantine, scrub                          *)
(* ------------------------------------------------------------------ *)

(** Whether pages of this file are actively checksummed: the config
    asks for it and the file carries stamped trailers. *)
let checksums_enabled t = t.verify

(** Mark page [no] known-corrupt: it is dropped from the cache and
    reads stop verifying it, so a repair transaction can journal the
    damaged before-image and overwrite it.  The journal stays sound —
    its frames checksum the bytes actually appended — and an abort
    merely restores the same damaged image. *)
let quarantine t no =
  (match Hashtbl.find_opt t.cache no with
  | Some p ->
      mark_clean t p;
      Hashtbl.remove t.cache no;
      if t.cfg.logn_evict && p.lru > 0 then t.lru_map <- Lru.remove p.lru t.lru_map
  | None -> ());
  Hashtbl.replace t.quarantined no ()

(** Lift the quarantine of page [no]; subsequent cache-miss reads
    verify it again. *)
let unquarantine t no = Hashtbl.remove t.quarantined no

(** Currently quarantined pages, ascending. *)
let quarantined t =
  Hashtbl.fold (fun no () acc -> no :: acc) t.quarantined [] |> List.sort compare

(** Re-read page [no] from disk (bypassing the cache) and verify its
    trailer; raises {!Page_corrupt} on mismatch.  Used to prove a
    repair actually landed. *)
let verify_page t no =
  if no < 0 || no >= t.page_count then
    fail "verify_page: page %d out of range (count %d)" no t.page_count;
  let b = Bytes.create page_size in
  really_pread ~path:t.path t.fd b ~off:0 ~len:page_size ~file_off:(no * page_size);
  if t.verify then verify_image ~page:no b

(** One scrub pass over the whole file. *)
type scrub_report = {
  scrub_scanned : int;  (** pages whose checksum was verified *)
  scrub_skipped : int;  (** pages skipped: quarantined, or dirty in cache *)
  scrub_corrupt : (int * int * int) list;
      (** corrupt pages as [(page, expected, got)], ascending *)
}

(** Verify every page of the file without polluting the page cache:
    uncached pages are read into a scratch buffer and never inserted;
    cached clean pages are verified from their resident image (their
    disk bytes matched at load/writeback time, and a raw re-read could
    race a concurrent writeback); cached dirty pages and quarantined
    pages are skipped.  Corruption is {e reported}, not raised — the
    caller decides whether to quarantine, repair, or fail.  A pass over
    a file without checksums scans nothing.  [sleep_s] > 0 throttles
    the pass by sleeping between [batch_pages]-page batches. *)
let scrub ?(batch_pages = 256) ?(sleep_s = 0.) t =
  Pobs.Metrics.time m_scrub_run_ns (fun () ->
      Pobs.Metrics.inc m_scrub_runs;
      let size = io ~op:"size" ~path:t.path (fun () -> t.fd.Vfs.size ()) in
      let n = if t.verify then min t.page_count (size / page_size) else 0 in
      let buf = Bytes.create page_size in
      let corrupt = ref [] and scanned = ref 0 and skipped = ref 0 in
      let check no b =
        incr scanned;
        let expected = stored_crc b and got = image_crc b in
        if expected <> got && not (is_zero_page b) then begin
          Pobs.Metrics.inc m_page_corrupt;
          corrupt := (no, expected, got) :: !corrupt
        end
      in
      for no = 0 to n - 1 do
        if sleep_s > 0. && no > 0 && no mod batch_pages = 0 then Unix.sleepf sleep_s;
        if Hashtbl.mem t.quarantined no then incr skipped
        else
          match Hashtbl.find_opt t.cache no with
          | Some p when p.dirty -> incr skipped
          | Some p -> check no p.data
          | None ->
              really_pread ~path:t.path t.fd buf ~off:0 ~len:page_size
                ~file_off:(no * page_size);
              check no buf
      done;
      Pobs.Metrics.addi m_scrub_pages !scanned;
      Pobs.Metrics.addi m_scrub_corrupt (List.length !corrupt);
      {
        scrub_scanned = !scanned;
        scrub_skipped = !skipped;
        scrub_corrupt = List.sort compare !corrupt;
      })

(** Read access to a page.  The returned bytes must not be mutated; use
    {!with_write} for mutation. *)
let read t no : Bytes.t =
  if no < 0 || no >= t.page_count then fail "read: page %d out of range (count %d)" no t.page_count;
  (load_page t no).data

(** Mutate page [no].  Inside a transaction the before-image is
    journaled on first touch; while snapshots are live, the first touch
    since the last commit also captures the committed image as an MVCC
    base version (published {e before} the mutation, so a concurrent
    snapshot read racing a stolen writeback always finds cover). *)
let with_write t no (f : Bytes.t -> 'a) : 'a =
  if t.readonly then fail "write: pager is read-only";
  if no < 0 || no >= t.page_count then fail "write: page %d out of range (count %d)" no t.page_count;
  let p = load_page t no in
  if t.in_tx && (not (Hashtbl.mem t.journaled no)) && not (Hashtbl.mem t.tx_new_pages no)
  then begin
    journal_append t no p.data;
    Hashtbl.replace t.journaled no ()
  end;
  if t.tx_protect && not (Hashtbl.mem t.since_commit no) then begin
    let m = Atomic.get t.versions in
    if not (Pmap.mem no m) then begin
      Atomic.set t.versions (Pmap.add no [ (0, Bytes.to_string p.data) ] m);
      Pobs.Metrics.inc m_version_pins
    end
  end;
  if t.soft_mode && not (Hashtbl.mem t.tx_touched no) then begin
    Hashtbl.replace t.tx_touched no ();
    (* Pages allocated by this soft transaction have nothing to restore;
       pages from earlier in the batch (or before it) keep a private
       pre-image so commit_soft/soft_abort can scope rollback to one
       transaction while the shared undo journal still covers the whole
       batch for crash recovery. *)
    if not (Hashtbl.mem t.tx_new_pages no) then
      t.tx_undo <- (no, Bytes.copy p.data) :: t.tx_undo
  end;
  mark_dirty t p;
  f p.data

(** Allocate a fresh page at the end of the file; returns its number.
    The page is zero-filled. *)
let allocate t : int =
  if t.readonly then fail "allocate: pager is read-only";
  let no = t.page_count in
  t.page_count <- t.page_count + 1;
  let data = Bytes.make page_size '\000' in
  let p = { no; data; dirty = false; lru = 0 } in
  Hashtbl.replace t.cache no p;
  touch t p;
  mark_dirty t p;
  if t.in_tx then Hashtbl.replace t.tx_new_pages no ();
  evict_if_needed t;
  no

let flush_all t =
  if t.dirty_count > 0 then begin
    let ds = List.filter (fun p -> p.dirty) t.dirty_list in
    t.dirty_list <- [];
    write_batch t ds
  end
  else t.dirty_list <- [];
  if t.unsynced_writes || not t.cfg.lazy_checkpoint then begin
    fsync_file ~path:t.path t.fd;
    t.unsynced_writes <- false
  end

let begin_tx t =
  if t.readonly then fail "begin_tx: pager is read-only";
  if t.in_tx then fail "nested transactions are not supported at the pager level";
  (* Hold the snapshot-registry lock for the whole transaction: new
     snapshots can only freeze at commit boundaries, where disk +
     version map are provably consistent.  Uncontended this is a few
     nanoseconds; a reader registering mid-transaction blocks until the
     commit point — the natural MVCC grain. *)
  Mutex.lock t.snap_mu;
  (* Sample the protection gate once per transaction (the registry
     cannot change while we hold the lock).  Stale version chains keep
     the gate on so their "newest = committed" invariant is maintained
     until the next watermark prune empties them. *)
  t.tx_protect <-
    t.cfg.mvcc
    && (Atomic.get t.active_snaps > 0 || not (Pmap.is_empty (Atomic.get t.versions)));
  (* Checkpoint: pre-transaction state must be durable on disk, because
     abort discards the cache and reconstructs state from the file plus
     the journal's before-images.  A clean, synced cache — the common
     case right after a commit — already satisfies this and skips the
     flush and its fsync entirely.  If the checkpoint fails, no
     transaction has begun: release the registry lock on the way out. *)
  (try
     if (not t.cfg.lazy_checkpoint) || t.dirty_count > 0 || t.unsynced_writes then
       flush_all t
   with e ->
     Mutex.unlock t.snap_mu;
     raise e);
  t.in_tx <- true;
  Hashtbl.reset t.journaled;
  Hashtbl.reset t.tx_new_pages

(* Commit: advance the LSN iff the commit set is non-empty, capture the
   after-images for the redo hook, then make everything durable.

   The LSN lives on page 0 and is written through {!with_write}, so its
   before-image is journaled: a crash before the commit point rolls the
   LSN back together with the data it stamps.  Commits that dirtied
   nothing skip the bump entirely — this preserves the lazy-checkpoint
   fast path where an empty-journal commit costs no syscalls.

   [?lsn] lets a replica applier stamp the *primary's* LSN instead of
   incrementing, keeping both headers (and so both files) byte-identical.

   The hook runs strictly after the commit point with exceptions logged
   and swallowed: the transaction is already durable, and letting a
   subscriber failure escape would leave the store's tx bookkeeping
   wedged over data that in fact committed. *)
(* The logical commit point shared by [commit] and [commit_soft]:
   advance the LSN iff the commit set is non-empty, capture the
   after-images (for the redo hook and/or the MVCC version chains),
   publish them, and reset the commit set.  Publication happens before
   any writeback of the captured pages — that ordering is what lets a
   snapshot reader trust a pread the version map does not cover. *)
let capture_publish ?lsn t =
  let advanced = Hashtbl.length t.since_commit > 0 in
  if advanced then begin
    let next = match lsn with Some l -> l | None -> t.lsn + 1 in
    with_write t 0 (fun hdr ->
        Bytes.set_int64_le hdr lsn_header_off (Int64.of_int next);
        (* Keep the checksum flag truthful at every commit: set while
           trailers are being maintained, cleared by the first commit
           under a no-checksum config (whose writeback stops refreshing
           them). *)
        Bytes.set_uint8 hdr checksum_flag_off (if t.verify then checksum_flag_on else 0));
    t.lsn <- next
  end;
  let need_redo = advanced && t.redo_hook <> None in
  let need_versions = advanced && t.tx_protect in
  let record =
    if not (need_redo || need_versions) then None
    else begin
      (* Pages allocated by a since-aborted transaction can linger in
         the set above the current page count; they no longer exist.
         The captured images are stamped: writeback has not run yet,
         so cached trailers may be stale, but replicas install these
         bytes verbatim and verify them on read-back. *)
      let pages =
        Hashtbl.fold
          (fun no () acc ->
            if no < t.page_count then begin
              let b = Bytes.copy (read t no) in
              if t.verify then stamp_image b;
              (no, Bytes.unsafe_to_string b) :: acc
            end
            else acc)
          t.since_commit []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      if need_versions then begin
        let m = ref (Atomic.get t.versions) in
        List.iter
          (fun (no, img) ->
            m :=
              Pmap.update no
                (function
                  | Some vs -> Some ((t.lsn, img) :: vs)
                  | None -> Some [ (t.lsn, img) ])
                !m)
          pages;
        Atomic.set t.versions !m;
        Pobs.Metrics.addi m_version_pins (List.length pages)
      end;
      Some { lsn = t.lsn; pages }
    end
  in
  Hashtbl.reset t.since_commit;
  if need_redo then record else None

(* Reclaim versions no live snapshot can reach.  Runs at the end of
   every (hard) commit, with [snap_mu] held and the data file flushed:
   the watermark W is the oldest frozen LSN still registered (or the
   current LSN if none).  Per chain, everything newer than W is kept,
   plus one pivot — the newest version at or below W, which serves all
   snapshots in [pivot, W].  A chain whose newest version is at or
   below W is dropped outright: its content is exactly what the data
   file now holds, so the disk serves those readers.  With no
   registered snapshots this empties the map. *)
let prune_versions t =
  let m = Atomic.get t.versions in
  if not (Pmap.is_empty m) then begin
    let w = Hashtbl.fold (fun _ l acc -> min l acc) t.snaps t.lsn in
    let m' =
      Pmap.filter_map
        (fun _no vs ->
          match vs with
          | (l, _) :: _ when l <= w -> None
          | _ ->
              let rec cut = function
                | [] -> []
                | (l, img) :: rest -> if l <= w then [ (l, img) ] else (l, img) :: cut rest
              in
              Some (cut vs))
        m
    in
    Atomic.set t.versions m'
  end

let fire_record t record =
  match (record, t.redo_hook) with
  | Some r, Some hook -> (
      try hook r
      with e ->
        Printf.eprintf "pager: redo hook failed at lsn %d: %s\n%!" r.lsn
          (Printexc.to_string e))
  | _ -> ()

let commit ?lsn t =
  if not t.in_tx then fail "commit outside transaction";
  if t.soft_mode then fail "commit inside a group batch (use commit_soft/commit_hard)";
  let record = capture_publish ?lsn t in
  flush_all t;
  journal_truncate t;
  t.in_tx <- false;
  prune_versions t;
  Mutex.unlock t.snap_mu;
  Pobs.Metrics.inc m_commits;
  fire_record t record

(* --- group-commit batch protocol (driven by Store.Group) ------------- *)

(** Open the rollback scope of one transaction inside a batch
    ({!begin_tx} must already hold).  Each soft transaction keeps a
    private in-memory undo set; the shared undo journal keeps covering
    the whole batch, which a crash rolls back in full — exactly the
    unacknowledged suffix, since no caller is woken before
    {!commit_hard}. *)
let soft_begin t =
  if not t.in_tx then fail "soft_begin outside transaction";
  t.soft_mode <- true;
  Hashtbl.reset t.tx_touched;
  (* Reset the fresh-page set per soft transaction: a page allocated by
     an earlier transaction of the batch is real committed state to the
     later ones, so their touches must journal (and undo-capture) it. *)
  Hashtbl.reset t.tx_new_pages;
  t.tx_undo <- []

(** Logically commit the current soft transaction: advance the LSN,
    publish versions, buffer the redo record.  Nothing is flushed or
    fsynced — durability (and the redo hook) comes with the batch's
    {!commit_hard}.  Returns the LSN the caller owns once the batch is
    durable. *)
let commit_soft ?lsn t =
  if not (t.in_tx && t.soft_mode) then fail "commit_soft outside a group batch";
  let record = capture_publish ?lsn t in
  (match record with Some r -> t.pending_redo <- r :: t.pending_redo | None -> ());
  Hashtbl.reset t.tx_touched;
  t.tx_undo <- [];
  t.lsn

(** Roll back the current soft transaction only: restore its pre-images
    into the cache as dirty pages (they re-land on disk with the batch
    flush, overwriting any stolen writeback).  The journal needs no
    surgery — the restored content is exactly what its frames already
    hold for these pages, and first-image-wins replay keeps any crash
    rollback correct.  Pages the transaction allocated leak until the
    next vacuum, matching {!abort}'s contract. *)
let soft_abort t =
  if not (t.in_tx && t.soft_mode) then fail "soft_abort outside a group batch";
  List.iter
    (fun (no, img) ->
      let p =
        match Hashtbl.find_opt t.cache no with
        | Some p -> p
        | None ->
            let p = { no; data = Bytes.create page_size; dirty = false; lru = 0 } in
            Hashtbl.replace t.cache no p;
            touch t p;
            p
      in
      Bytes.blit img 0 p.data 0 page_size;
      mark_dirty t p)
    t.tx_undo;
  Hashtbl.reset t.tx_touched;
  t.tx_undo <- [];
  Pobs.Metrics.inc m_aborts

(** Make every soft-committed transaction of the batch durable with one
    flush + journal-truncate cycle, then fire the buffered redo records
    in commit order.  The caller wakes its waiters after this returns:
    each owns the LSN its {!commit_soft} reported. *)
let commit_hard t =
  if not (t.in_tx && t.soft_mode) then fail "commit_hard outside a group batch";
  flush_all t;
  journal_truncate t;
  t.in_tx <- false;
  t.soft_mode <- false;
  Hashtbl.reset t.tx_touched;
  t.tx_undo <- [];
  let records = List.rev t.pending_redo in
  t.pending_redo <- [];
  prune_versions t;
  Mutex.unlock t.snap_mu;
  Pobs.Metrics.inc m_commits;
  List.iter (fun r -> fire_record t (Some r)) records

let abort t =
  if not t.in_tx then fail "abort outside transaction";
  (* Buffered frames are not needed for the rollback: the steal barrier
     syncs the whole buffer before any journaled page reaches the data
     file, so a page whose before-image never left the buffer still has
     its pre-transaction content on disk. *)
  t.jbuf_len <- 0;
  (* Drop all cached state, then restore before-images from the journal. *)
  (match t.jfd with
  | Some fd ->
      fsync_file ~path:t.journal_path fd;
      io ~op:"close" ~path:t.journal_path (fun () -> fd.Vfs.close ());
      t.jfd <- None
  | None -> ());
  Hashtbl.reset t.cache;
  t.lru_map <- Lru.empty;
  t.dirty_list <- [];
  t.dirty_count <- 0;
  recover_from_journal ~vfs:t.vfs t.path t.journal_path;
  Hashtbl.reset t.journaled;
  Hashtbl.reset t.tx_new_pages;
  t.journal_len <- 0;
  t.journal_synced <- true;
  let size = io ~op:"size" ~path:t.path (fun () -> t.fd.Vfs.size ()) in
  t.page_count <- max ((size + page_size - 1) / page_size) 1;
  (* The rollback may have restored a pre-bump header (a commit that
     crashed after stamping the LSN but before its commit point);
     re-read it so the in-memory LSN cannot drift ahead of disk. *)
  if size > 0 then
    t.lsn <- Int64.to_int (Bytes.get_int64_le (load_page t 0).data lsn_header_off);
  (* Versions published by soft commits (or a commit that failed after
     its publish step) now carry LSNs ahead of the restored header —
     they describe state the rollback erased.  Drop them; versions at
     or below the restored LSN still serve live snapshots, whose frozen
     LSNs are necessarily at or below it too. *)
  let m = Atomic.get t.versions in
  if not (Pmap.is_empty m) then
    Atomic.set t.versions
      (Pmap.filter_map
         (fun _no vs ->
           match List.filter (fun (l, _) -> l <= t.lsn) vs with
           | [] -> None
           | vs -> Some vs)
         m);
  t.pending_redo <- [];
  t.soft_mode <- false;
  Hashtbl.reset t.tx_touched;
  t.tx_undo <- [];
  t.in_tx <- false;
  Mutex.unlock t.snap_mu;
  Pobs.Metrics.inc m_aborts

let close t =
  if t.in_tx then abort t;
  if not t.readonly then flush_all t;
  (match t.jfd with
  | Some fd -> io ~op:"close" ~path:t.journal_path (fun () -> fd.Vfs.close ())
  | None -> ());
  t.jfd <- None;
  io ~op:"close" ~path:t.path (fun () -> t.fd.Vfs.close ())

(** Test/bench hook: abandon the pager the way a crashed process would —
    close the underlying files without flushing dirty pages, committing,
    or truncating the journal.  Whatever is on disk stays on disk; a
    subsequent {!open_file} runs crash recovery. *)
let crash t =
  (match t.jfd with Some fd -> (try fd.Vfs.close () with _ -> ()) | None -> ());
  t.jfd <- None;
  (try t.fd.Vfs.close () with _ -> ())

type stats = {
  s_reads : int;
  s_writes : int;
  s_hits : int;
  s_misses : int;
  s_pages : int;
  s_evictions : int;
  s_journal_bytes : int;
  s_snapshots : int;  (** live frozen-LSN snapshot handles *)
  s_pinned_versions : int;
      (** page images pinned in the MVCC version chains (0 in steady
          state with no snapshots: the watermark reclaims everything) *)
  s_snapshot_reads : int;  (** pages served to snapshot handles *)
}

let stats t =
  {
    s_reads = t.reads;
    s_writes = t.writes;
    s_hits = t.hits;
    s_misses = t.misses;
    s_pages = t.page_count;
    s_evictions = t.evictions;
    s_journal_bytes = t.journal_bytes;
    s_snapshots = Atomic.get t.active_snaps;
    s_pinned_versions =
      Pmap.fold (fun _ vs acc -> acc + List.length vs) (Atomic.get t.versions) 0;
    s_snapshot_reads = Atomic.get t.snap_reads;
  }

(* ------------------------------------------------------------------ *)
(* Frozen-LSN snapshots                                                *)
(* ------------------------------------------------------------------ *)

module Snapshot = struct
  type pager = t

  (** A frozen-LSN read handle.  Registration pins every page version
      needed to reconstruct the file as of the frozen LSN; reads are
      lock-free (one [Atomic.get] of the version map, plus an unlocked
      [pread] fall-through for pages the map does not cover).  A handle
      is {e single-domain}: its private page cache is unsynchronised.
      Use {!clone} to give each domain its own handle at the same LSN,
      and {!release} every handle so the watermark can advance. *)
  type t = {
    s_pager : pager;
    s_id : int;
    s_lsn : int;
    s_page_count : int;
    s_cache : (int, Bytes.t) Hashtbl.t; (* private, single-domain *)
    s_cache_cap : int;
    mutable s_released : bool;
  }

  let lsn s = s.s_lsn
  let page_count s = s.s_page_count

  (* Register a handle at the current published LSN.  Blocks while a
     transaction (or group batch) is running: snapshots freeze only at
     commit boundaries. *)
  let create ?(cache_pages = 1024) (t : pager) : t =
    if not t.cfg.mvcc then fail "snapshot: disabled by config (mvcc = false)";
    Mutex.lock t.snap_mu;
    let id = t.next_snap_id in
    t.next_snap_id <- id + 1;
    Hashtbl.replace t.snaps id t.lsn;
    ignore (Atomic.fetch_and_add t.active_snaps 1);
    let s =
      {
        s_pager = t;
        s_id = id;
        s_lsn = t.lsn;
        s_page_count = t.page_count;
        s_cache = Hashtbl.create 256;
        s_cache_cap = cache_pages;
        s_released = false;
      }
    in
    Mutex.unlock t.snap_mu;
    Pobs.Metrics.seti m_snapshots_active (Atomic.get t.active_snaps);
    s

  (** A second handle at the same frozen LSN, with its own private
      cache — the way to fan one logical snapshot out to N domains. *)
  let clone (s : t) : t =
    if s.s_released then fail "snapshot: cloning a released handle";
    let t = s.s_pager in
    Mutex.lock t.snap_mu;
    let id = t.next_snap_id in
    t.next_snap_id <- id + 1;
    Hashtbl.replace t.snaps id s.s_lsn;
    ignore (Atomic.fetch_and_add t.active_snaps 1);
    Mutex.unlock t.snap_mu;
    Pobs.Metrics.seti m_snapshots_active (Atomic.get t.active_snaps);
    { s with s_id = id; s_cache = Hashtbl.create 256; s_released = false }

  (** Unregister the handle.  Idempotent.  The versions it pinned are
      reclaimed by the watermark prune of the next commit. *)
  let release (s : t) : unit =
    if not s.s_released then begin
      s.s_released <- true;
      let t = s.s_pager in
      Mutex.lock t.snap_mu;
      Hashtbl.remove t.snaps s.s_id;
      ignore (Atomic.fetch_and_add t.active_snaps (-1));
      Mutex.unlock t.snap_mu;
      Pobs.Metrics.seti m_snapshots_active (Atomic.get t.active_snaps)
    end

  (* Newest version at or below the frozen LSN, if the chain covers
     this page. *)
  let lookup (m : versions) ~snap_lsn no : string option =
    match Pmap.find_opt no m with
    | None -> None
    | Some vs ->
        let rec go = function
          | [] -> None
          | (l, img) :: rest -> if l <= snap_lsn then Some img else go rest
        in
        go vs

  (** Read page [no] as of the frozen LSN.  The returned bytes are
      owned by the handle's cache and must not be mutated.

      The fall-through protocol: if the version map has no chain for
      the page, [pread] the data file, then re-check the map.  A chain
      appearing in between means the writer began mutating the page
      while we read it (base versions publish {e before} the first
      mutation, and writeback happens after that) — the chain now holds
      the cover we need.  If the map still has no chain, no mutation
      can have started before our read completed, so the bytes are the
      committed content — which registration froze at our LSN. *)
  let read (s : t) (no : int) : Bytes.t =
    if s.s_released then fail "snapshot: read after release";
    if no < 0 || no >= s.s_page_count then
      fail "snapshot read: page %d out of range (count %d)" no s.s_page_count;
    match Hashtbl.find_opt s.s_cache no with
    | Some b -> b
    | None ->
        let t = s.s_pager in
        let b =
          match lookup (Atomic.get t.versions) ~snap_lsn:s.s_lsn no with
          | Some img -> Bytes.of_string img
          | None ->
              let buf = Bytes.create page_size in
              really_pread ~path:t.path t.fd buf ~off:0 ~len:page_size
                ~file_off:(no * page_size);
              (match lookup (Atomic.get t.versions) ~snap_lsn:s.s_lsn no with
              | Some img -> Bytes.blit_string img 0 buf 0 page_size
              | None -> if t.verify then verify_image ~page:no buf);
              buf
        in
        ignore (Atomic.fetch_and_add t.snap_reads 1);
        Pobs.Metrics.inc m_snap_reads;
        if Hashtbl.length s.s_cache < s.s_cache_cap then Hashtbl.replace s.s_cache no b;
        b
end

(** Register a frozen-LSN snapshot of the current committed state — the
    entry point [Store.snapshot] builds on.  See {!Snapshot}. *)
let snapshot ?cache_pages t = Snapshot.create ?cache_pages t
