(** Page cache and transactional page I/O.

    The pager owns the database file and an undo journal.  All access to
    the file goes through fixed-size pages ({!page_size} bytes).  A
    transaction protocol provides atomic multi-page updates:

    - Before a page is modified for the first time inside a transaction,
      its before-image is appended to the journal file.
    - Dirty pages may be written back to the main file at any time
      (steal), but only after the journal containing their before-image
      has been fsynced.
    - [commit] flushes all dirty pages, fsyncs the main file, then
      truncates the journal (the commit point).
    - [abort] (or crash recovery on open) copies the before-images from
      the journal back into the main file.

    Page 0 is reserved for the store header and is managed like any
    other page (so header updates are also journaled and thus atomic).

    All file I/O goes through a {!Vfs.t} (defaulting to {!Vfs.unix}),
    so the crash-recovery protocol can be proven correct under the
    fault-injecting VFS ({!Fault}) by sweeping a simulated power cut
    across every syscall of a workload (see [test/test_crash.ml]). *)

let page_size = 4096

exception Pager_error of string

(** Typed I/O failure: an operating-system error surfaced by the
    underlying VFS, annotated with the operation and file it hit.
    Callers never see raw [Unix.Unix_error] from the pager. *)
exception Io_error of { op : string; path : string; error : Unix.error }

let fail fmt = Format.kasprintf (fun s -> raise (Pager_error s)) fmt

(* Run one VFS operation: retry on EINTR, wrap any other OS error into
   {!Io_error}.  A simulated power cut ({!Vfs.Crash}) is deliberately
   not caught anywhere in the pager: the "machine" is gone and the
   torture harness above us owns what happens next. *)
let io ~op ~path f =
  let rec go () =
    match f () with
    | v -> v
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (error, _, _) -> raise (Io_error { op; path; error })
  in
  go ()

type page = {
  no : int;
  data : Bytes.t;
  mutable dirty : bool;
  mutable lru : int; (* last-touch tick, for eviction *)
}

type t = {
  vfs : Vfs.t;
  fd : Vfs.file;
  path : string;
  journal_path : string;
  created : bool; (* the file was empty when opened (after recovery) *)
  mutable page_count : int;
  cache : (int, page) Hashtbl.t;
  mutable cache_cap : int;
  mutable tick : int;
  (* transaction state *)
  mutable in_tx : bool;
  mutable journaled : (int, unit) Hashtbl.t; (* pages whose before-image is in the journal *)
  mutable jfd : Vfs.file option;
  mutable journal_len : int; (* bytes of valid frames; appends land here, so a torn
                                append (ENOSPC mid-frame) is overwritten on retry *)
  mutable journal_synced : bool;
  mutable tx_new_pages : (int, unit) Hashtbl.t; (* pages allocated in this tx *)
  (* statistics *)
  mutable reads : int;
  mutable writes : int;
  mutable hits : int;
  mutable misses : int;
}

(* Read exactly [len] bytes at [file_off], zero-filling past EOF.
   Short transfers and EINTR are retried. *)
let really_pread ~path (fd : Vfs.file) buf ~off ~len ~file_off =
  let rec go pos remaining =
    if remaining > 0 then begin
      let n =
        io ~op:"pread" ~path (fun () ->
            fd.Vfs.pread ~buf ~off:(off + pos) ~len:remaining ~at:(file_off + pos))
      in
      if n = 0 then Bytes.fill buf (off + pos) remaining '\000'
      else go (pos + n) (remaining - n)
    end
  in
  go 0 len

(* Write all of [buf] at [file_off], retrying short transfers and EINTR. *)
let really_write ~path (fd : Vfs.file) buf ~file_off =
  let len = Bytes.length buf in
  let rec go pos =
    if pos < len then begin
      let n =
        io ~op:"pwrite" ~path (fun () ->
            fd.Vfs.pwrite ~buf ~off:pos ~len:(len - pos) ~at:(file_off + pos))
      in
      if n <= 0 then raise (Io_error { op = "pwrite"; path; error = Unix.EIO });
      go (pos + n)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

(* Journal frame layout: magic u32 | page_no i64 | crc32 u32 | page bytes *)
let journal_frame_magic = 0x4A524E4C (* "JRNL" *)
let journal_frame_size = 4 + 8 + 4 + page_size

let journal_append t page_no (data : Bytes.t) =
  let jfd =
    match t.jfd with
    | Some fd -> fd
    | None ->
        let fd =
          io ~op:"open" ~path:t.journal_path (fun () ->
              t.vfs.Vfs.open_file ~trunc:true t.journal_path)
        in
        t.jfd <- Some fd;
        t.journal_len <- 0;
        fd
  in
  let e = Codec.Enc.create ~size:journal_frame_size () in
  Codec.Enc.u32 e journal_frame_magic;
  Codec.Enc.i64 e (Int64.of_int page_no);
  Codec.Enc.u32 e (Int32.to_int (Codec.Crc32.digest_bytes data) land 0xffffffff);
  Codec.Enc.raw e (Bytes.to_string data);
  really_write ~path:t.journal_path jfd
    (Bytes.of_string (Codec.Enc.to_string e))
    ~file_off:t.journal_len;
  t.journal_len <- t.journal_len + journal_frame_size;
  t.journal_synced <- false

let journal_truncate t =
  (match t.jfd with
  | Some fd ->
      io ~op:"truncate" ~path:t.journal_path (fun () -> fd.Vfs.truncate 0);
      io ~op:"fsync" ~path:t.journal_path (fun () -> fd.Vfs.fsync ())
  | None -> ());
  t.journal_len <- 0;
  Hashtbl.reset t.journaled;
  Hashtbl.reset t.tx_new_pages;
  t.journal_synced <- true

let journal_sync t =
  if not t.journal_synced then begin
    (match t.jfd with
    | Some fd -> io ~op:"fsync" ~path:t.journal_path (fun () -> fd.Vfs.fsync ())
    | None -> ());
    t.journal_synced <- true
  end

(* Read all valid frames from the journal file at [path]; returns the
   frames in order.  Stops at the first corrupt/truncated frame: a torn
   tail (magic mismatch, bad CRC, or a short final frame) marks the end
   of the trustworthy prefix. *)
let journal_read_frames ~(vfs : Vfs.t) path =
  if not (vfs.Vfs.exists path) then []
  else begin
    let fd = io ~op:"open" ~path (fun () -> vfs.Vfs.open_file path) in
    let frames = ref [] in
    (try
       let len = io ~op:"size" ~path (fun () -> fd.Vfs.size ()) in
       let bytes = Bytes.create len in
       really_pread ~path fd bytes ~off:0 ~len ~file_off:0;
       let buf = Bytes.unsafe_to_string bytes in
       let d = Codec.Dec.of_string buf in
       let continue = ref true in
       while !continue && Codec.Dec.remaining d >= journal_frame_size do
         let magic = Codec.Dec.u32 d in
         let page_no = Int64.to_int (Codec.Dec.i64 d) in
         let crc = Codec.Dec.u32 d in
         let start = d.Codec.Dec.pos in
         let data = String.sub buf start page_size in
         d.Codec.Dec.pos <- start + page_size;
         if
           magic = journal_frame_magic
           && page_no >= 0
           && Int32.to_int (Codec.Crc32.digest data) land 0xffffffff = crc
         then frames := (page_no, data) :: !frames
         else continue := false
       done
     with Codec.Corrupt _ -> ());
    io ~op:"close" ~path (fun () -> fd.Vfs.close ());
    List.rev !frames
  end

(* ------------------------------------------------------------------ *)
(* Cache management                                                    *)
(* ------------------------------------------------------------------ *)

let write_page_to_disk t (p : page) =
  (* A dirty page must never hit the disk before its before-image is
     durable in the journal. *)
  if t.in_tx && Hashtbl.mem t.journaled p.no then journal_sync t;
  really_write ~path:t.path t.fd p.data ~file_off:(p.no * page_size);
  t.writes <- t.writes + 1;
  p.dirty <- false

let evict_if_needed t =
  if Hashtbl.length t.cache > t.cache_cap then begin
    (* Evict the ~25% least recently used pages. *)
    let pages = Hashtbl.fold (fun _ p acc -> p :: acc) t.cache [] in
    let sorted = List.sort (fun a b -> compare a.lru b.lru) pages in
    let n_evict = max 1 (List.length sorted / 4) in
    List.iteri
      (fun i p ->
        if i < n_evict && p.no <> 0 then begin
          if p.dirty then write_page_to_disk t p;
          Hashtbl.remove t.cache p.no
        end)
      sorted
  end

let load_page t no =
  match Hashtbl.find_opt t.cache no with
  | Some p ->
      t.tick <- t.tick + 1;
      p.lru <- t.tick;
      t.hits <- t.hits + 1;
      p
  | None ->
      t.misses <- t.misses + 1;
      let data = Bytes.create page_size in
      if no < t.page_count then begin
        really_pread ~path:t.path t.fd data ~off:0 ~len:page_size ~file_off:(no * page_size);
        t.reads <- t.reads + 1
      end
      else Bytes.fill data 0 page_size '\000';
      t.tick <- t.tick + 1;
      let p = { no; data; dirty = false; lru = t.tick } in
      Hashtbl.replace t.cache no p;
      evict_if_needed t;
      p

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

(* Undo-journal replay.  The *first* before-image of a page wins: it is
   the page's pre-transaction state, and any later duplicate (which a
   crashed, re-run recovery or a buggy writer could leave behind) must
   not override it.  Recovery is idempotent and re-runnable: the journal
   is only removed after the restored pages are durable, so a crash at
   any point during recovery simply means recovery runs again from the
   same journal on the next open. *)
let recover_from_journal ~(vfs : Vfs.t) path journal_path =
  let frames = journal_read_frames ~vfs journal_path in
  if frames <> [] then begin
    let fd = io ~op:"open" ~path (fun () -> vfs.Vfs.open_file path) in
    let applied = Hashtbl.create 64 in
    List.iter
      (fun (page_no, data) ->
        if not (Hashtbl.mem applied page_no) then begin
          Hashtbl.replace applied page_no ();
          really_write ~path fd (Bytes.of_string data) ~file_off:(page_no * page_size)
        end)
      frames;
    io ~op:"fsync" ~path (fun () -> fd.Vfs.fsync ());
    io ~op:"close" ~path (fun () -> fd.Vfs.close ())
  end;
  if vfs.Vfs.exists journal_path then
    io ~op:"remove" ~path:journal_path (fun () -> vfs.Vfs.remove journal_path)

let open_file ?(cache_pages = 2048) ?(vfs = Vfs.unix) path =
  let journal_path = path ^ ".journal" in
  if vfs.Vfs.exists path then recover_from_journal ~vfs path journal_path;
  let fd = io ~op:"open" ~path (fun () -> vfs.Vfs.open_file path) in
  let size = io ~op:"size" ~path (fun () -> fd.Vfs.size ()) in
  let page_count = (size + page_size - 1) / page_size in
  {
    vfs;
    fd;
    path;
    journal_path;
    created = size = 0;
    page_count = max page_count 1;
    cache = Hashtbl.create 1024;
    cache_cap = cache_pages;
    tick = 0;
    in_tx = false;
    journaled = Hashtbl.create 64;
    jfd = None;
    journal_len = 0;
    journal_synced = true;
    tx_new_pages = Hashtbl.create 16;
    reads = 0;
    writes = 0;
    hits = 0;
    misses = 0;
  }

let page_count t = t.page_count

(** True if the file was empty when this pager opened it (i.e. the
    store is brand new, not merely missing its header magic). *)
let created t = t.created

let path t = t.path

(** Read access to a page.  The returned bytes must not be mutated; use
    {!with_write} for mutation. *)
let read t no : Bytes.t =
  if no < 0 || no >= t.page_count then fail "read: page %d out of range (count %d)" no t.page_count;
  (load_page t no).data

(** Mutate page [no].  Inside a transaction the before-image is
    journaled on first touch. *)
let with_write t no (f : Bytes.t -> 'a) : 'a =
  if no < 0 || no >= t.page_count then fail "write: page %d out of range (count %d)" no t.page_count;
  let p = load_page t no in
  if t.in_tx && (not (Hashtbl.mem t.journaled no)) && not (Hashtbl.mem t.tx_new_pages no)
  then begin
    journal_append t no p.data;
    Hashtbl.replace t.journaled no ()
  end;
  p.dirty <- true;
  f p.data

(** Allocate a fresh page at the end of the file; returns its number.
    The page is zero-filled. *)
let allocate t : int =
  let no = t.page_count in
  t.page_count <- t.page_count + 1;
  let data = Bytes.make page_size '\000' in
  t.tick <- t.tick + 1;
  let p = { no; data; dirty = true; lru = t.tick } in
  Hashtbl.replace t.cache no p;
  if t.in_tx then Hashtbl.replace t.tx_new_pages no ();
  evict_if_needed t;
  no

let flush_all t =
  Hashtbl.iter (fun _ p -> if p.dirty then write_page_to_disk t p) t.cache;
  io ~op:"fsync" ~path:t.path (fun () -> t.fd.Vfs.fsync ())

let begin_tx t =
  if t.in_tx then fail "nested transactions are not supported at the pager level";
  (* Checkpoint: pre-transaction state must be durable on disk, because
     abort discards the cache and reconstructs state from the file plus
     the journal's before-images. *)
  flush_all t;
  t.in_tx <- true;
  Hashtbl.reset t.journaled;
  Hashtbl.reset t.tx_new_pages

let commit t =
  if not t.in_tx then fail "commit outside transaction";
  flush_all t;
  journal_truncate t;
  t.in_tx <- false

let abort t =
  if not t.in_tx then fail "abort outside transaction";
  (* Drop all cached state, then restore before-images from the journal. *)
  (match t.jfd with
  | Some fd ->
      io ~op:"fsync" ~path:t.journal_path (fun () -> fd.Vfs.fsync ());
      io ~op:"close" ~path:t.journal_path (fun () -> fd.Vfs.close ());
      t.jfd <- None
  | None -> ());
  Hashtbl.reset t.cache;
  recover_from_journal ~vfs:t.vfs t.path t.journal_path;
  Hashtbl.reset t.journaled;
  Hashtbl.reset t.tx_new_pages;
  t.journal_synced <- true;
  let size = io ~op:"size" ~path:t.path (fun () -> t.fd.Vfs.size ()) in
  t.page_count <- max ((size + page_size - 1) / page_size) 1;
  t.in_tx <- false

let close t =
  if t.in_tx then abort t;
  flush_all t;
  (match t.jfd with
  | Some fd -> io ~op:"close" ~path:t.journal_path (fun () -> fd.Vfs.close ())
  | None -> ());
  t.jfd <- None;
  io ~op:"close" ~path:t.path (fun () -> t.fd.Vfs.close ())

(** Test/bench hook: abandon the pager the way a crashed process would —
    close the underlying files without flushing dirty pages, committing,
    or truncating the journal.  Whatever is on disk stays on disk; a
    subsequent {!open_file} runs crash recovery. *)
let crash t =
  (match t.jfd with Some fd -> (try fd.Vfs.close () with _ -> ()) | None -> ());
  t.jfd <- None;
  (try t.fd.Vfs.close () with _ -> ())

type stats = { s_reads : int; s_writes : int; s_hits : int; s_misses : int; s_pages : int }

let stats t =
  { s_reads = t.reads; s_writes = t.writes; s_hits = t.hits; s_misses = t.misses; s_pages = t.page_count }
