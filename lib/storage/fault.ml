(** Fault-injecting, in-memory {!Vfs} implementation.

    This is the torture half of the test-VFS discipline: a complete
    in-memory filesystem that models what a real disk is allowed to do
    to you, driven by a deterministic plan:

    - {b crash} — a simulated power cut at the Nth mutating syscall.
      The write in flight is torn at a pseudo-random byte offset (for
      an extent write — the pager's coalesced writeback — the extent is
      instead modelled as independent per-sector writes, so an
      arbitrary {e subset} of its sectors survives, not merely a
      prefix), then
      every file is frozen to a pseudo-random {e legal} crash image:
      each 512-byte sector independently holds either its last-written
      content or its content as of the last [fsync] (the page cache may
      flush sectors in any order), and the file length itself is either
      the current or the last-synced length.  All handles from before
      the crash are dead; {!revive} re-enables the filesystem so
      recovery can be driven over the frozen images.
    - {b short transfers} — sparse deterministic short reads/writes,
      exercising the pager's retry loops.
    - {b I/O errors} — the Nth write fails with a chosen [Unix.error]
      ([ENOSPC]/[EIO]); the Nth fsync fails with [EIO]; or fsync
      silently no-ops (a lying disk), which withdraws all durability
      guarantees at the next crash.

    Only mutating operations ([pwrite], [fsync], [truncate],
    [open_file], [rename], [remove]) advance the syscall counter: a
    crash between two reads freezes the very same disk image as a crash
    before the first, so sweeping crash points over mutating syscalls
    alone covers every reachable post-crash state.

    Per-fault counters are exposed so tests can prove each injection
    branch actually fired. *)

type counters = {
  mutable syscalls : int;  (** mutating syscalls so far *)
  mutable writes : int;
  mutable extent_writes : int;  (** of [writes], how many were extent writes *)
  mutable fsyncs : int;
  mutable torn_writes : int;
  mutable short_writes : int;
  mutable short_reads : int;
  mutable failed_writes : int;
  mutable failed_fsyncs : int;
  mutable noop_fsyncs : int;
  mutable crashes : int;
  mutable bit_flips : int;  (** at-rest bits flipped by rot injection *)
}

type image = { mutable data : Bytes.t; mutable len : int }

type node = { mutable cur : image; mutable synced : image }

type t = {
  files : (string, node) Hashtbl.t;
  c : counters;
  mu : Mutex.t;
      (* One lock over the whole simulated disk: images, counters and
         the injection plan are plain mutable state, and MVCC snapshot
         readers pread from other domains while the writer mutates.
         Serialising every operation also matches the per-file lock
         the real [Vfs.unix] takes around its seek+transfer pairs. *)
  seed : int;
  mutable gen : int; (* bumped at crash: invalidates all open handles *)
  mutable crash_at : int; (* crash when [c.syscalls] reaches this; 0 = off *)
  mutable write_error_at : int; (* fail the Nth pwrite; 0 = off *)
  mutable write_error : Unix.error;
  mutable fsync_fail_at : int; (* fail the Nth fsync; 0 = off *)
  mutable fsync_noop : bool;
  mutable short_transfers : bool;
  mutable reads : int; (* read counter (not a syscall) for short-read cadence *)
}

let create ?(seed = 0) () =
  {
    files = Hashtbl.create 16;
    mu = Mutex.create ();
    c =
      {
        syscalls = 0;
        writes = 0;
        extent_writes = 0;
        fsyncs = 0;
        torn_writes = 0;
        short_writes = 0;
        short_reads = 0;
        failed_writes = 0;
        failed_fsyncs = 0;
        noop_fsyncs = 0;
        crashes = 0;
        bit_flips = 0;
      };
    seed;
    gen = 0;
    crash_at = 0;
    write_error_at = 0;
    write_error = Unix.ENOSPC;
    fsync_fail_at = 0;
    fsync_noop = false;
    short_transfers = true;
    reads = 0;
  }

(* Run [f] with the disk lock held; [Vfs.Crash] and injected
   [Unix_error]s propagate with the lock released. *)
let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let counters t = t.c
let syscalls t = locked t (fun () -> t.c.syscalls)
let set_crash_at t n = locked t (fun () -> t.crash_at <- n)
let fail_write t ~nth err =
  locked t (fun () ->
      t.write_error_at <- nth;
      t.write_error <- err)
let fail_fsync t ~nth = locked t (fun () -> t.fsync_fail_at <- nth)
let set_fsync_noop t v = locked t (fun () -> t.fsync_noop <- v)
let set_short_transfers t v = locked t (fun () -> t.short_transfers <- v)

(** Disarm all injections (the crash itself has already frozen the
    files); the next opens see the frozen images, as a process
    restarting after a power cut would. *)
let revive t =
  locked t (fun () ->
      t.crash_at <- 0;
      t.write_error_at <- 0;
      t.fsync_fail_at <- 0;
      t.fsync_noop <- false)

(* --- images --------------------------------------------------------- *)

let img_copy i = { data = Bytes.sub i.data 0 i.len; len = i.len }

let img_reserve i n =
  if Bytes.length i.data < n then begin
    let d = Bytes.make (max n (2 * Bytes.length i.data)) '\000' in
    Bytes.blit i.data 0 d 0 i.len;
    i.data <- d
  end

let img_read i ~buf ~off ~len ~at =
  if at >= i.len then 0
  else begin
    let n = min len (i.len - at) in
    Bytes.blit i.data at buf off n;
    n
  end

let img_write i ~buf ~off ~len ~at =
  img_reserve i (at + len);
  (* a sparse write past EOF zero-fills the gap, like a real file *)
  if at > i.len then Bytes.fill i.data i.len (at - i.len) '\000';
  Bytes.blit buf off i.data at len;
  i.len <- max i.len (at + len)

let img_truncate i n =
  if n <= i.len then i.len <- n
  else begin
    img_reserve i n;
    Bytes.fill i.data i.len (n - i.len) '\000';
    i.len <- n
  end

(* --- crash ----------------------------------------------------------- *)

let sector = 512

(* Freeze [node] to a legal power-cut image: pick the surviving length
   (current or last-synced), then overlay in-flight sectors over the
   durable base.

   The base is the last-synced content: sectors the current image never
   touched keep it — a shrinking truncate whose length update is lost
   does not zero the data blocks it logically cut off, and sectors
   where [cur] and [synced] agree were never in flight at all.  Only
   sectors [cur] actually reaches may independently surface their new
   content (the page cache flushes them in any order); a region past
   both lengths (an unsynced extension whose data never landed) reads
   as zeros.  Anything more adversarial — e.g. zeroing sectors that
   were durable and untouched — would fail states real hardware cannot
   produce. *)
let freeze_node rng node =
  let cur = node.cur and syn = node.synced in
  let len = if Random.State.bool rng then cur.len else syn.len in
  let img = Bytes.make len '\000' in
  Bytes.blit syn.data 0 img 0 (min len syn.len);
  let pos = ref 0 in
  while !pos < len do
    let stop = min len (!pos + sector) in
    if Random.State.bool rng && !pos < cur.len then
      Bytes.blit cur.data !pos img !pos (min stop cur.len - !pos);
    pos := stop
  done;
  node.cur <- { data = img; len };
  node.synced <- img_copy node.cur

let do_crash t =
  t.c.crashes <- t.c.crashes + 1;
  t.gen <- t.gen + 1;
  let rng = Random.State.make [| t.seed; t.c.syscalls; 0x6372 |] in
  let paths = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.files []) in
  List.iter (fun p -> freeze_node rng (Hashtbl.find t.files p)) paths;
  raise Vfs.Crash

let check_alive t gen = if t.gen <> gen then raise Vfs.Crash

(* Count a mutating syscall; crash here if the plan says so.  Returns
   a per-crash rng when the caller (pwrite) must tear the in-flight
   write first. *)
let tick t =
  t.c.syscalls <- t.c.syscalls + 1;
  if t.crash_at > 0 && t.c.syscalls >= t.crash_at then do_crash t

let tick_write t ~len =
  t.c.syscalls <- t.c.syscalls + 1;
  t.c.writes <- t.c.writes + 1;
  if t.crash_at > 0 && t.c.syscalls >= t.crash_at then begin
    (* tear the in-flight write: only a prefix reaches the file *)
    let rng = Random.State.make [| t.seed; t.c.syscalls; 0x746f |] in
    let k = if len <= 1 then 0 else Random.State.int rng len in
    if k > 0 then t.c.torn_writes <- t.c.torn_writes + 1;
    Some k
  end
  else begin
    if t.write_error_at > 0 && t.c.writes = t.write_error_at then begin
      t.c.failed_writes <- t.c.failed_writes + 1;
      raise (Unix.Unix_error (t.write_error, "write", ""))
    end;
    None
  end

(* --- the vfs --------------------------------------------------------- *)

let find_node t path = Hashtbl.find_opt t.files path

let get_node t path =
  match find_node t path with
  | Some n -> n
  | None ->
      let n =
        {
          cur = { data = Bytes.create 0; len = 0 };
          synced = { data = Bytes.create 0; len = 0 };
        }
      in
      Hashtbl.replace t.files path n;
      n

let vfs t : Vfs.t =
  let open_file ?(trunc = false) path =
    let node, gen =
      locked t (fun () ->
          check_alive t t.gen;
          tick t;
          (* creat: the node exists from here on *)
          let node = get_node t path in
          if trunc then img_truncate node.cur 0;
          (node, t.gen))
    in
    {
      Vfs.pread =
        (fun ~buf ~off ~len ~at ->
          locked t (fun () ->
              check_alive t gen;
              t.reads <- t.reads + 1;
              let len =
                if t.short_transfers && len > 1 && t.reads mod 13 = 0 then begin
                  t.c.short_reads <- t.c.short_reads + 1;
                  (len + 1) / 2
                end
                else len
              in
              img_read node.cur ~buf ~off ~len ~at));
      pwrite =
        (fun ~buf ~off ~len ~at ->
          locked t @@ fun () ->
          check_alive t gen;
          match tick_write t ~len with
          | Some k ->
              (* crash point: apply the torn prefix, then die *)
              if k > 0 then img_write node.cur ~buf ~off ~len:k ~at;
              do_crash t
          | None ->
              let len =
                if t.short_transfers && len > 1 && t.c.writes mod 17 = 0 then begin
                  t.c.short_writes <- t.c.short_writes + 1;
                  (len + 1) / 2
                end
                else len
              in
              img_write node.cur ~buf ~off ~len ~at;
              len);
      pwrite_extent =
        (fun ~buf ~off ~len ~at ->
          (* Modelled as per-sector writes: a multi-page extent gives
             the disk freedom to land its sectors in any order, so at a
             power cut an arbitrary subset of the extent's sectors
             survives — strictly more adversarial than [pwrite]'s
             prefix tear. *)
          locked t @@ fun () ->
          check_alive t gen;
          t.c.extent_writes <- t.c.extent_writes + 1;
          match tick_write t ~len with
          | Some _ ->
              let rng = Random.State.make [| t.seed; t.c.syscalls; 0x6578 |] in
              let landed = ref 0 and sectors = ref 0 in
              let pos = ref 0 in
              while !pos < len do
                let chunk = min sector (len - !pos) in
                incr sectors;
                if Random.State.bool rng then begin
                  img_write node.cur ~buf ~off:(off + !pos) ~len:chunk ~at:(at + !pos);
                  incr landed
                end;
                pos := !pos + chunk
              done;
              if !landed > 0 && !landed < !sectors then
                t.c.torn_writes <- t.c.torn_writes + 1;
              do_crash t
          | None ->
              let len =
                if t.short_transfers && len > sector && t.c.writes mod 17 = 0 then begin
                  t.c.short_writes <- t.c.short_writes + 1;
                  (* cut at a sector boundary, like a mid-extent stall *)
                  max sector (len / 2 / sector * sector)
                end
                else len
              in
              img_write node.cur ~buf ~off ~len ~at;
              len);
      fsync =
        (fun () ->
          locked t @@ fun () ->
          check_alive t gen;
          tick t;
          t.c.fsyncs <- t.c.fsyncs + 1;
          if t.fsync_fail_at > 0 && t.c.fsyncs = t.fsync_fail_at then begin
            t.c.failed_fsyncs <- t.c.failed_fsyncs + 1;
            raise (Unix.Unix_error (Unix.EIO, "fsync", path))
          end;
          if t.fsync_noop then t.c.noop_fsyncs <- t.c.noop_fsyncs + 1
          else node.synced <- img_copy node.cur);
      truncate =
        (fun n ->
          locked t @@ fun () ->
          check_alive t gen;
          tick t;
          img_truncate node.cur n);
      size =
        (fun () ->
          locked t @@ fun () ->
          check_alive t gen;
          node.cur.len);
      close = (fun () -> ());
    }
  in
  {
    Vfs.open_file;
    rename =
      (fun src dst ->
        locked t @@ fun () ->
        check_alive t t.gen;
        tick t;
        (match find_node t src with
        | None -> raise (Unix.Unix_error (Unix.ENOENT, "rename", src))
        | Some n ->
            Hashtbl.remove t.files src;
            Hashtbl.replace t.files dst n));
    remove =
      (fun path ->
        locked t @@ fun () ->
        check_alive t t.gen;
        tick t;
        if not (Hashtbl.mem t.files path) then
          raise (Unix.Unix_error (Unix.ENOENT, "unlink", path));
        Hashtbl.remove t.files path);
    exists =
      (fun path ->
        locked t @@ fun () ->
        check_alive t t.gen;
        Hashtbl.mem t.files path);
  }

(* --- at-rest bit rot -------------------------------------------------- *)

(* Flip one bit in both the current and the last-synced image: media
   decay damages the platter itself, so the corruption survives any
   subsequent crash freeze.  Not a syscall — rot happens while the
   "machine" does nothing. *)
let flip_in_node t node ~off ~bit =
  let flip img =
    if off < img.len then begin
      let v = Bytes.get_uint8 img.data off in
      Bytes.set_uint8 img.data off (v lxor (1 lsl bit))
    end
  in
  flip node.cur;
  flip node.synced;
  t.c.bit_flips <- t.c.bit_flips + 1

(** Flip bit [bit] (0..7) of the byte at offset [off] in [path] — at
    rest, in both the current and last-synced images.  Raises [ENOENT]
    on a missing file; an offset past EOF flips nothing (but still
    counts: the decayed sector is unreadable anyway). *)
let flip_bit t path ~off ~bit =
  locked t @@ fun () ->
  match find_node t path with
  | None -> raise (Unix.Unix_error (Unix.ENOENT, "flip_bit", path))
  | Some node -> flip_in_node t node ~off ~bit

(** Flip [count] pseudo-random bits (deterministic in the VFS seed and
    [salt]) within the byte range [at, at+len) of [path]. *)
let flip_bits ?(salt = 0) t path ~at ~len ~count =
  locked t @@ fun () ->
  match find_node t path with
  | None -> raise (Unix.Unix_error (Unix.ENOENT, "flip_bits", path))
  | Some node ->
      let rng = Random.State.make [| t.seed; salt; at; len; 0x726f74 |] in
      for _ = 1 to count do
        let off = at + Random.State.int rng (max len 1) in
        let bit = Random.State.int rng 8 in
        flip_in_node t node ~off ~bit
      done

(* --- debugging helpers ---------------------------------------------- *)

let file_size t path =
  locked t (fun () ->
      match find_node t path with Some n -> Some n.cur.len | None -> None)

let pp_counters ppf c =
  Format.fprintf ppf
    "syscalls=%d writes=%d extent_w=%d fsyncs=%d torn=%d short_w=%d short_r=%d failed_w=%d failed_fsync=%d noop_fsync=%d crashes=%d bit_flips=%d"
    c.syscalls c.writes c.extent_writes c.fsyncs c.torn_writes c.short_writes c.short_reads
    c.failed_writes c.failed_fsyncs c.noop_fsyncs c.crashes c.bit_flips
