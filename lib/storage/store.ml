(** The persistent object store: the storage substrate Prometheus sits on.

    In the thesis the prototype was layered on the commercial POET
    OODBMS; this module is our substitute substrate.  It exposes a flat
    transactional map from object identifiers (oids) to byte records:

    - records are stored in a slotted-page {!Heap},
    - an oid -> rid directory is kept in a persistent {!Btree},
    - atomic commit/abort is provided by the {!Pager} undo journal,
    - freed pages are recycled through a free-page list rooted in the
      header page.

    Durability contract (see DESIGN.md "Durability & recovery
    guarantees"): mutations made inside a transaction are atomic and,
    once [commit] returns, durable across crashes; mutations made
    outside any transaction are not crash-safe until the next
    successful commit or close.  The store's own metadata (header,
    including [next_oid]) is only ever written under the pager journal,
    so a power cut can never tear it.

    Header page (page 0) layout:
    {v
      off 0  : 8-byte magic "PROMDB01"
      off 8  : u32 version
      off 12 : i64 next_oid
      off 20 : u32 directory btree root page
      off 24 : u32 free-page list head
    v} *)

exception Store_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Store_error s)) fmt

let magic = "PROMDB01"
let version = 1
let kind_free = 5

type t = {
  pager : Pager.t;
  vfs : Vfs.t;
  mutable heap : Heap.t;
  mutable dir : Btree.t;
  mutable next_oid : int;
  mutable tx_depth : int; (* supports nested begin via counting *)
  mutable group_active : bool; (* a Group writer domain owns the write path *)
  path : string;
}

(* --- header accessors -------------------------------------------------- *)

let hdr_read_next_oid pager = Int64.to_int (Bytes.get_int64_le (Pager.read pager 0) 12)

let hdr_write_next_oid pager v =
  Pager.with_write pager 0 (fun b -> Bytes.set_int64_le b 12 (Int64.of_int v))

let hdr_read_dir_root pager = Int32.to_int (Bytes.get_int32_le (Pager.read pager 0) 20)

let hdr_write_dir_root pager v =
  Pager.with_write pager 0 (fun b -> Bytes.set_int32_le b 20 (Int32.of_int v))

let hdr_read_free_head pager = Int32.to_int (Bytes.get_int32_le (Pager.read pager 0) 24)

let hdr_write_free_head pager v =
  Pager.with_write pager 0 (fun b -> Bytes.set_int32_le b 24 (Int32.of_int v))

(* --- free-page list ----------------------------------------------------- *)

let alloc_page pager () =
  let head = hdr_read_free_head pager in
  if head <> 0 then begin
    let next =
      let b = Pager.read pager head in
      Int32.to_int (Bytes.get_int32_le b 1)
    in
    hdr_write_free_head pager next;
    Pager.with_write pager head (fun b -> Bytes.fill b 0 Pager.page_size '\000');
    head
  end
  else Pager.allocate pager

let free_page pager no =
  let head = hdr_read_free_head pager in
  Pager.with_write pager no (fun b ->
      Bytes.fill b 0 Pager.page_size '\000';
      Bytes.set_uint8 b 0 kind_free;
      Bytes.set_int32_le b 1 (Int32.of_int head));
  hdr_write_free_head pager no

(* --- lifecycle ----------------------------------------------------------- *)

let build_components pager =
  let pa = { Heap.alloc_page = alloc_page pager; free_page = free_page pager } in
  let heap = Heap.create pager pa in
  let dir =
    Btree.create pager ~root:(hdr_read_dir_root pager)
      ~set_root:(fun r -> hdr_write_dir_root pager r)
      ~alloc_page:(alloc_page pager)
  in
  (heap, dir)

let header_all_zero hdr =
  let rec go i = i >= Bytes.length hdr || (Bytes.get hdr i = '\000' && go (i + 1)) in
  go 0

let open_ ?cache_pages ?config ?(vfs = Vfs.unix) ?readonly path =
  let pager = Pager.open_file ?cache_pages ?config ~vfs ?readonly path in
  let hdr = Pager.read pager 0 in
  (* A brand-new store is an empty file, or one whose header page
     recovery rolled back to zeros (a crash during initialisation).  A
     non-empty file with a damaged header is *corruption* and must fail
     loudly, never be silently re-initialised over. *)
  let fresh = Pager.created pager || header_all_zero hdr in
  if fresh && Pager.is_readonly pager then
    fail "%s: readonly open of an uninitialised store" path;
  if fresh then begin
    (* Initialise under the journal so a crash mid-initialisation rolls
       the header back to zeros instead of leaving a torn half-header.
       Component construction must happen inside the same transaction:
       [Btree.create] eagerly allocates its root page and points the
       header at it, and that header write must be journaled — flushed
       unjournaled by a later [begin_tx], a crash between the two
       writes would leave a header referencing a page that never made
       it to disk. *)
    Pager.begin_tx pager;
    Pager.with_write pager 0 (fun b ->
        Bytes.fill b 0 Pager.page_size '\000';
        Bytes.blit_string magic 0 b 0 8;
        Bytes.set_int32_le b 8 (Int32.of_int version);
        Bytes.set_int64_le b 12 1L;
        Bytes.set_int32_le b 20 0l;
        Bytes.set_int32_le b 24 0l);
    ignore (build_components pager);
    Pager.commit pager
  end
  else if Bytes.sub_string hdr 0 8 <> magic then fail "%s: corrupt store header (bad magic)" path
  else if Int32.to_int (Bytes.get_int32_le hdr 8) <> version then
    fail "%s: unsupported store version" path;
  let heap, dir = build_components pager in
  {
    pager;
    vfs;
    heap;
    dir;
    next_oid = hdr_read_next_oid pager;
    tx_depth = 0;
    group_active = false;
    path;
  }

let path t = t.path

(** The underlying pager — the replication layer feeds from and applies
    through it directly. *)
let pager t = t.pager

(** The header LSN of the last page-dirtying commit (see {!Pager.lsn}). *)
let lsn t = Pager.lsn t.pager

let is_readonly t = Pager.is_readonly t.pager

(** Install the pager redo hook: called after every page-dirtying commit
    with the LSN-stamped after-image record (see {!Pager.set_redo_hook}). *)
let set_redo_hook t f = Pager.set_redo_hook t.pager f

let clear_redo_hook t = Pager.clear_redo_hook t.pager

(* --- transactions ---------------------------------------------------------- *)

let m_tx_commits =
  Pobs.Metrics.counter "pdb_store_tx_commits_total" ~help:"Store transactions committed"

let m_tx_aborts =
  Pobs.Metrics.counter "pdb_store_tx_aborts_total" ~help:"Store transactions aborted"

let in_tx t = t.tx_depth > 0

let begin_tx t =
  if t.tx_depth = 0 then begin
    Pager.begin_tx t.pager;
    (* Persist the oid high-water mark under the journal (first touch
       of the header appends its before-image).  [abort] below keeps
       the in-memory mark, so rolled-back transactions still never
       reuse an oid that was handed out. *)
    hdr_write_next_oid t.pager t.next_oid
  end;
  t.tx_depth <- t.tx_depth + 1

let commit t =
  if t.tx_depth <= 0 then fail "commit outside transaction";
  (* Decrement only after the pager commit succeeds: if it raises
     (ENOSPC, failed fsync, ...) the transaction is still open and the
     caller can — must — [abort] it. *)
  if t.tx_depth = 1 then begin
    hdr_write_next_oid t.pager t.next_oid;
    Pager.commit t.pager;
    Pobs.Metrics.inc m_tx_commits
  end;
  t.tx_depth <- t.tx_depth - 1

let abort t =
  if t.tx_depth <= 0 then fail "abort outside transaction";
  t.tx_depth <- 0;
  Pager.abort t.pager;
  Pobs.Metrics.inc m_tx_aborts;
  (* In-memory state may be stale after rollback: rebuild.  Keep the
     in-memory oid high-water mark: rollback restores the header's
     pre-transaction value, but oids handed out since must stay
     retired. *)
  let heap, dir = build_components t.pager in
  t.heap <- heap;
  t.dir <- dir;
  t.next_oid <- max t.next_oid (hdr_read_next_oid t.pager)

let close t =
  if t.tx_depth > 0 then abort t;
  (* Persist the oid high-water mark under the journal: an unjournaled
     header write here could be torn by a crash and take the whole
     store with it. *)
  if (not (Pager.is_readonly t.pager)) && hdr_read_next_oid t.pager <> t.next_oid then begin
    Pager.begin_tx t.pager;
    hdr_write_next_oid t.pager t.next_oid;
    Pager.commit t.pager
  end;
  Pager.close t.pager

let with_tx t f =
  begin_tx t;
  match
    let v = f () in
    (* commit must be inside the handler too: a commit that fails
       (ENOSPC, failed fsync) leaves the transaction open, and it must
       be rolled back before the error escapes. *)
    commit t;
    v
  with
  | v -> v
  | exception e ->
      if t.tx_depth > 0 then abort t;
      raise e

(* --- records ------------------------------------------------------------------ *)

let fresh_oid t =
  let oid = t.next_oid in
  t.next_oid <- t.next_oid + 1;
  oid

let key_of_oid oid = Int64.of_int oid

let put t ~oid (data : string) : unit =
  match Btree.find t.dir (key_of_oid oid) with
  | Some rid ->
      let rid' = Heap.update t.heap rid data in
      if not (Heap.rid_equal rid rid') then Btree.insert t.dir (key_of_oid oid) rid'
  | None ->
      let rid = Heap.insert t.heap data in
      Btree.insert t.dir (key_of_oid oid) rid

let get t ~oid : string option =
  match Btree.find t.dir (key_of_oid oid) with
  | Some rid -> Some (Heap.get t.heap rid)
  | None -> None

let mem t ~oid = Btree.mem t.dir (key_of_oid oid)

let delete t ~oid : bool =
  match Btree.find t.dir (key_of_oid oid) with
  | Some rid ->
      Heap.delete t.heap rid;
      Btree.delete t.dir (key_of_oid oid)
  | None -> false

(** Iterate all records in oid order. *)
let iter t (f : int -> string -> unit) =
  Btree.iter t.dir (fun k rid -> f (Int64.to_int k) (Heap.get t.heap rid))

let count t = Btree.cardinal t.dir

type stats = {
  pages : int;
  objects : int;
  page_reads : int;
  page_writes : int;
  cache_hits : int;
  cache_misses : int;
  evictions : int;
  journal_bytes : int;
  snapshots : int; (* live MVCC snapshot handles *)
  pinned_versions : int; (* page versions pinned by those snapshots *)
  snapshot_reads : int; (* pages served to snapshot readers *)
}

(* [count_objects:false] skips the B-tree walk behind [objects]
   (reported as 0): counter snapshots are safe to read from any thread,
   but walking the live tree through the page cache is not while a
   {!Group} writer domain owns the write path. *)
let stats ?(count_objects = true) t =
  let s = Pager.stats t.pager in
  {
    pages = s.Pager.s_pages;
    objects = (if count_objects then count t else 0);
    page_reads = s.Pager.s_reads;
    page_writes = s.Pager.s_writes;
    cache_hits = s.Pager.s_hits;
    cache_misses = s.Pager.s_misses;
    evictions = s.Pager.s_evictions;
    journal_bytes = s.Pager.s_journal_bytes;
    snapshots = s.Pager.s_snapshots;
    pinned_versions = s.Pager.s_pinned_versions;
    snapshot_reads = s.Pager.s_snapshot_reads;
  }

(** One checksum scrub pass over the underlying file — every page
    verified against its CRC trailer without polluting the page cache
    (see {!Pager.scrub}). *)
let scrub ?batch_pages ?sleep_s t = Pager.scrub ?batch_pages ?sleep_s t.pager

(** Consistency check used by tests and the crash-torture harness:

    - the directory B-tree is structurally valid;
    - every directory entry resolves to a live heap record (blob chains
      are followed and length-checked by [Heap.get]);
    - every heap page holding a referenced record is structurally sound
      ({!Heap.validate_page}: header bounds, slot-array accounting,
      slot extents);
    - the free-page list stays inside the file, is cycle-free, and
      every page on it is marked free.

    Pages reachable from none of these (e.g. pages allocated by an
    uncommitted transaction that crashed) may hold arbitrary bytes;
    that is not corruption, merely leaked space that vacuum reclaims. *)
let check t =
  let n = Btree.check t.dir in
  let heap_pages = Hashtbl.create 64 in
  Btree.iter t.dir (fun _ rid ->
      if not (Hashtbl.mem heap_pages rid.Heap.page) then begin
        Heap.validate_page t.heap rid.Heap.page;
        Hashtbl.replace heap_pages rid.Heap.page ()
      end;
      ignore (Heap.get t.heap rid));
  let seen = Hashtbl.create 64 in
  let rec walk no =
    if no <> 0 then begin
      if no < 0 || no >= Pager.page_count t.pager then
        fail "free list escapes the file (page %d)" no;
      if Hashtbl.mem seen no then fail "free list cycle at page %d" no;
      Hashtbl.replace seen no ();
      let b = Pager.read t.pager no in
      if Bytes.get_uint8 b 0 <> kind_free then
        fail "free list page %d is not marked free (kind %d)" no (Bytes.get_uint8 b 0);
      walk (Int32.to_int (Bytes.get_int32_le b 1))
    end
  in
  walk (hdr_read_free_head t.pager);
  n

(** Vacuum: rewrite the store into a fresh compact file, dropping dead
    pages (fragmentation from deletes, lazily-deleted B-tree space,
    abandoned pages after aborts) and renaming it over the original.
    The store must not be inside a transaction.  Returns the new store
    handle — the old one is consumed.

    Crash-safe: a crash anywhere before the rename leaves the original
    file (and any journal it needs) untouched; the rename itself is
    atomic; and any stale journal for the original path is removed
    {e before} the rename, so a journal that predates the vacuum can
    never be replayed over the freshly written file. *)
let vacuum t : t =
  if in_tx t then fail "vacuum inside a transaction";
  let vfs = t.vfs in
  let tmp = t.path ^ ".vacuum" in
  if vfs.Vfs.exists tmp then vfs.Vfs.remove tmp;
  if vfs.Vfs.exists (tmp ^ ".journal") then vfs.Vfs.remove (tmp ^ ".journal");
  let fresh = open_ ~vfs tmp in
  (* The rebuild runs outside a transaction on purpose: journaling it
     would double the I/O, and a crash mid-rebuild only loses the tmp
     file, which the next vacuum removes. *)
  iter t (fun oid data -> put fresh ~oid data);
  fresh.next_oid <- t.next_oid;
  let path = t.path in
  close t;
  close fresh (* flushes, persists next_oid under the journal, fsyncs *);
  (* Commit point.  First drop any journal left over for [path]: after
     the rename it would hold before-images of the *old* file and
     replaying it over the new one would corrupt it. *)
  if vfs.Vfs.exists (path ^ ".journal") then vfs.Vfs.remove (path ^ ".journal");
  vfs.Vfs.rename tmp path;
  if vfs.Vfs.exists (tmp ^ ".journal") then vfs.Vfs.remove (tmp ^ ".journal");
  open_ ~vfs path

(* --- MVCC snapshots ----------------------------------------------------- *)

(** A frozen, read-only view of the store at one commit LSN.

    Built over {!Pager.Snapshot}: the handle pins the page versions
    current at its LSN, so [get]/[iter]/[count] return exactly what a
    single-threaded reader would have seen at that commit — bit for bit
    — no matter how many transactions the writer retires meanwhile.
    Handles are single-domain; to fan a query out across N domains,
    [clone] the handle once per domain (clones share nothing mutable
    and each pins the same LSN). *)
module Snapshot = struct
  type store = t

  type s = {
    psnap : Pager.Snapshot.t;
    s_heap : Heap.t;
    s_dir : Btree.t;
    s_next_oid : int;
  }

  let of_psnap (psnap : Pager.Snapshot.t) : s =
    let read no = Pager.Snapshot.read psnap no in
    let hdr = read 0 in
    if Bytes.sub_string hdr 0 8 <> magic then
      fail "snapshot: corrupt store header (bad magic)";
    let dir_root = Int32.to_int (Bytes.get_int32_le hdr 20) in
    {
      psnap;
      s_heap = Heap.create_reader ~read;
      s_dir = Btree.create_reader ~read ~root:dir_root;
      s_next_oid = Int64.to_int (Bytes.get_int64_le hdr 12);
    }

  (** Freeze the current committed state.  Blocks while a transaction
      is open on another domain (snapshots register only at commit
      boundaries); calling with a transaction open on {e this} domain
      would self-deadlock, so that is rejected — except while a
      {!Group} writer owns the write path, where the tx flag belongs to
      the writer domain and the pager's own snapshot lock provides the
      commit-boundary blocking. *)
  let create ?cache_pages (t : store) : s =
    if in_tx t && not t.group_active then fail "snapshot inside a transaction";
    of_psnap (Pager.snapshot ?cache_pages t.pager)

  let lsn s = Pager.Snapshot.lsn s.psnap
  let next_oid s = s.s_next_oid

  (** An independent handle at the same LSN for another domain. *)
  let clone (s : s) : s = of_psnap (Pager.Snapshot.clone s.psnap)

  let release (s : s) : unit = Pager.Snapshot.release s.psnap

  let get (s : s) ~oid : string option =
    match Btree.find s.s_dir (key_of_oid oid) with
    | Some rid -> Some (Heap.get s.s_heap rid)
    | None -> None

  let mem (s : s) ~oid = Btree.mem s.s_dir (key_of_oid oid)

  let iter (s : s) (f : int -> string -> unit) =
    Btree.iter s.s_dir (fun k rid -> f (Int64.to_int k) (Heap.get s.s_heap rid))

  let count (s : s) = Btree.cardinal s.s_dir
end

let snapshot ?cache_pages t = Snapshot.create ?cache_pages t

(* --- group commit ------------------------------------------------------- *)

(** Group commit: a dedicated writer domain drains a bounded queue of
    transaction bodies, runs each as a soft transaction (LSN advance +
    version publish, no fsync), and retires the whole batch with one
    journal-flush/fsync/truncate cycle.  Every submitter blocks until
    its own commit is durable and is woken with its commit LSN, so the
    per-caller contract is exactly [with_tx] — only the fsyncs are
    amortised K-into-1.

    The store must not be driven through [begin_tx]/[with_tx] by other
    code while a group is running: the group's writer domain owns the
    write path. *)
module Group = struct
  type store = t

  type job = {
    body : store -> unit;
    j_mu : Mutex.t;
    j_cv : Condition.t;
    mutable j_res : (int, exn) result option;
  }

  type g = {
    g_store : store;
    q : job Queue.t;
    q_mu : Mutex.t;
    q_cv : Condition.t;
    q_cap : int;
    max_batch : int;
    on_rollback : (unit -> unit) option;
        (* called in the writer domain after any store rollback (a job
           soft-abort or a failed hard commit), once the store's own
           components are rebuilt — lets layers stacked on the store
           (the Database mirror) resynchronise *)
    mutable g_stopping : bool;
    mutable g_dead : exn option; (* writer died; submissions now fail *)
    mutable g_writer : unit Domain.t option;
    mutable g_batches : int; (* hard-commit (fsync) cycles *)
    mutable g_commits : int; (* soft commits retired *)
    mutable g_aborts : int; (* bodies that raised *)
  }

  exception Stopped

  let finish (j : job) (res : (int, exn) result) =
    Mutex.lock j.j_mu;
    j.j_res <- Some res;
    Condition.broadcast j.j_cv;
    Mutex.unlock j.j_mu

  (* Run one batch of jobs inside a single pager transaction.  Each
     job's soft commit gets its own LSN; one commit_hard makes them all
     durable.  A body that raises is soft-aborted (in-memory page
     restore) and reported to its submitter; the rest of the batch is
     unaffected.  If the hard commit itself fails, every job in the
     batch is reported failed — none of their LSNs became durable. *)
  let run_batch g (jobs : job list) =
    let t = g.g_store in
    begin_tx t;
    match
      List.map
        (fun j ->
          match
            Pager.soft_begin t.pager;
            j.body t;
            hdr_write_next_oid t.pager t.next_oid;
            Pager.commit_soft t.pager
          with
          | lsn ->
              g.g_commits <- g.g_commits + 1;
              (j, Ok lsn)
          | exception e ->
              Pager.soft_abort t.pager;
              (* In-memory component state may be stale after the page
                 restore (cached btree root, heap free-space map). *)
              let heap, dir = build_components t.pager in
              t.heap <- heap;
              t.dir <- dir;
              t.next_oid <- max t.next_oid (hdr_read_next_oid t.pager);
              (match g.on_rollback with Some f -> f () | None -> ());
              g.g_aborts <- g.g_aborts + 1;
              (j, Error e))
        jobs
    with
    | results -> (
        match
          hdr_write_next_oid t.pager t.next_oid;
          Pager.commit_hard t.pager
        with
        | () ->
            t.tx_depth <- 0;
            g.g_batches <- g.g_batches + 1;
            Pobs.Metrics.inc m_tx_commits;
            List.iter (fun (j, r) -> finish j r) results
        | exception e ->
            (* Durability failed: nothing in this batch committed. *)
            t.tx_depth <- 1;
            (try abort t with _ -> ());
            (match g.on_rollback with Some f -> (try f () with _ -> ()) | None -> ());
            List.iter (fun (j, _) -> finish j (Error e)) results;
            raise e)
    | exception e ->
        (* begin_tx itself failed *)
        List.iter (fun j -> finish j (Error e)) jobs;
        raise e

  let writer_loop g =
    let rec loop () =
      Mutex.lock g.q_mu;
      while Queue.is_empty g.q && not g.g_stopping do
        Condition.wait g.q_cv g.q_mu
      done;
      let jobs = ref [] in
      while (not (Queue.is_empty g.q)) && List.length !jobs < g.max_batch do
        jobs := Queue.pop g.q :: !jobs
      done;
      Condition.broadcast g.q_cv (* wake submitters blocked on a full queue *);
      Mutex.unlock g.q_mu;
      let jobs = List.rev !jobs in
      if jobs = [] then (if not g.g_stopping then loop ())
      else begin
        run_batch g jobs;
        loop ()
      end
    in
    match loop () with
    | () -> ()
    | exception e ->
        (* The writer died (simulated power cut, I/O error).  Fail every
           queued job and every future submission instead of letting
           submitters block forever. *)
        Mutex.lock g.q_mu;
        g.g_dead <- Some e;
        g.g_stopping <- true;
        let orphans = Queue.fold (fun acc j -> j :: acc) [] g.q in
        Queue.clear g.q;
        Condition.broadcast g.q_cv;
        Mutex.unlock g.q_mu;
        List.iter (fun j -> finish j (Error e)) (List.rev orphans)

  let start ?(max_batch = 32) ?(queue_cap = 256) ?on_rollback (t : store) : g =
    if in_tx t then fail "group start inside a transaction";
    if t.group_active then fail "group already running on this store";
    if max_batch < 1 || queue_cap < 1 then fail "group: bad configuration";
    let g =
      {
        g_store = t;
        q = Queue.create ();
        q_mu = Mutex.create ();
        q_cv = Condition.create ();
        q_cap = queue_cap;
        max_batch;
        on_rollback;
        g_stopping = false;
        g_dead = None;
        g_writer = None;
        g_batches = 0;
        g_commits = 0;
        g_aborts = 0;
      }
    in
    t.group_active <- true;
    g.g_writer <- Some (Domain.spawn (fun () -> writer_loop g));
    g

  (** Submit a transaction body and block until it is durable.  Returns
      the commit LSN.  Re-raises the body's exception if it raised (the
      body's effects are rolled back), or the I/O error that killed the
      batch.  Raises {!Stopped} if the group has been stopped. *)
  let submit (g : g) (body : store -> unit) : int =
    let j =
      { body; j_mu = Mutex.create (); j_cv = Condition.create (); j_res = None }
    in
    Mutex.lock g.q_mu;
    while Queue.length g.q >= g.q_cap && not g.g_stopping do
      Condition.wait g.q_cv g.q_mu
    done;
    if g.g_stopping then begin
      let e = match g.g_dead with Some e -> e | None -> Stopped in
      Mutex.unlock g.q_mu;
      raise e
    end;
    Queue.push j g.q;
    Condition.broadcast g.q_cv;
    Mutex.unlock g.q_mu;
    Mutex.lock j.j_mu;
    while j.j_res = None do
      Condition.wait j.j_cv j.j_mu
    done;
    Mutex.unlock j.j_mu;
    match j.j_res with
    | Some (Ok lsn) -> lsn
    | Some (Error e) -> raise e
    | None -> assert false

  (** Drain the queue, retire the writer domain, and surface the error
      that killed it, if any.  Idempotent. *)
  let stop (g : g) : unit =
    Mutex.lock g.q_mu;
    g.g_stopping <- true;
    Condition.broadcast g.q_cv;
    Mutex.unlock g.q_mu;
    (match g.g_writer with
    | Some d ->
        g.g_writer <- None;
        Domain.join d;
        g.g_store.group_active <- false
    | None -> ());
    match g.g_dead with Some Vfs.Crash -> raise Vfs.Crash | _ -> ()

  type gstats = { batches : int; commits : int; aborts : int; queued : int }

  let group_stats (g : g) : gstats =
    Mutex.lock g.q_mu;
    let s =
      {
        batches = g.g_batches;
        commits = g.g_commits;
        aborts = g.g_aborts;
        queued = Queue.length g.q;
      }
    in
    Mutex.unlock g.q_mu;
    s
end
