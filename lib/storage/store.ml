(** The persistent object store: the storage substrate Prometheus sits on.

    In the thesis the prototype was layered on the commercial POET
    OODBMS; this module is our substitute substrate.  It exposes a flat
    transactional map from object identifiers (oids) to byte records:

    - records are stored in a slotted-page {!Heap},
    - an oid -> rid directory is kept in a persistent {!Btree},
    - atomic commit/abort is provided by the {!Pager} undo journal,
    - freed pages are recycled through a free-page list rooted in the
      header page.

    Durability contract (see DESIGN.md "Durability & recovery
    guarantees"): mutations made inside a transaction are atomic and,
    once [commit] returns, durable across crashes; mutations made
    outside any transaction are not crash-safe until the next
    successful commit or close.  The store's own metadata (header,
    including [next_oid]) is only ever written under the pager journal,
    so a power cut can never tear it.

    Header page (page 0) layout:
    {v
      off 0  : 8-byte magic "PROMDB01"
      off 8  : u32 version
      off 12 : i64 next_oid
      off 20 : u32 directory btree root page
      off 24 : u32 free-page list head
    v} *)

exception Store_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Store_error s)) fmt

let magic = "PROMDB01"
let version = 1
let kind_free = 5

type t = {
  pager : Pager.t;
  vfs : Vfs.t;
  mutable heap : Heap.t;
  mutable dir : Btree.t;
  mutable next_oid : int;
  mutable tx_depth : int; (* supports nested begin via counting *)
  path : string;
}

(* --- header accessors -------------------------------------------------- *)

let hdr_read_next_oid pager = Int64.to_int (Bytes.get_int64_le (Pager.read pager 0) 12)

let hdr_write_next_oid pager v =
  Pager.with_write pager 0 (fun b -> Bytes.set_int64_le b 12 (Int64.of_int v))

let hdr_read_dir_root pager = Int32.to_int (Bytes.get_int32_le (Pager.read pager 0) 20)

let hdr_write_dir_root pager v =
  Pager.with_write pager 0 (fun b -> Bytes.set_int32_le b 20 (Int32.of_int v))

let hdr_read_free_head pager = Int32.to_int (Bytes.get_int32_le (Pager.read pager 0) 24)

let hdr_write_free_head pager v =
  Pager.with_write pager 0 (fun b -> Bytes.set_int32_le b 24 (Int32.of_int v))

(* --- free-page list ----------------------------------------------------- *)

let alloc_page pager () =
  let head = hdr_read_free_head pager in
  if head <> 0 then begin
    let next =
      let b = Pager.read pager head in
      Int32.to_int (Bytes.get_int32_le b 1)
    in
    hdr_write_free_head pager next;
    Pager.with_write pager head (fun b -> Bytes.fill b 0 Pager.page_size '\000');
    head
  end
  else Pager.allocate pager

let free_page pager no =
  let head = hdr_read_free_head pager in
  Pager.with_write pager no (fun b ->
      Bytes.fill b 0 Pager.page_size '\000';
      Bytes.set_uint8 b 0 kind_free;
      Bytes.set_int32_le b 1 (Int32.of_int head));
  hdr_write_free_head pager no

(* --- lifecycle ----------------------------------------------------------- *)

let build_components pager =
  let pa = { Heap.alloc_page = alloc_page pager; free_page = free_page pager } in
  let heap = Heap.create pager pa in
  let dir =
    Btree.create pager ~root:(hdr_read_dir_root pager)
      ~set_root:(fun r -> hdr_write_dir_root pager r)
      ~alloc_page:(alloc_page pager)
  in
  (heap, dir)

let header_all_zero hdr =
  let rec go i = i >= Bytes.length hdr || (Bytes.get hdr i = '\000' && go (i + 1)) in
  go 0

let open_ ?cache_pages ?config ?(vfs = Vfs.unix) ?readonly path =
  let pager = Pager.open_file ?cache_pages ?config ~vfs ?readonly path in
  let hdr = Pager.read pager 0 in
  (* A brand-new store is an empty file, or one whose header page
     recovery rolled back to zeros (a crash during initialisation).  A
     non-empty file with a damaged header is *corruption* and must fail
     loudly, never be silently re-initialised over. *)
  let fresh = Pager.created pager || header_all_zero hdr in
  if fresh && Pager.is_readonly pager then
    fail "%s: readonly open of an uninitialised store" path;
  if fresh then begin
    (* Initialise under the journal so a crash mid-initialisation rolls
       the header back to zeros instead of leaving a torn half-header.
       Component construction must happen inside the same transaction:
       [Btree.create] eagerly allocates its root page and points the
       header at it, and that header write must be journaled — flushed
       unjournaled by a later [begin_tx], a crash between the two
       writes would leave a header referencing a page that never made
       it to disk. *)
    Pager.begin_tx pager;
    Pager.with_write pager 0 (fun b ->
        Bytes.fill b 0 Pager.page_size '\000';
        Bytes.blit_string magic 0 b 0 8;
        Bytes.set_int32_le b 8 (Int32.of_int version);
        Bytes.set_int64_le b 12 1L;
        Bytes.set_int32_le b 20 0l;
        Bytes.set_int32_le b 24 0l);
    ignore (build_components pager);
    Pager.commit pager
  end
  else if Bytes.sub_string hdr 0 8 <> magic then fail "%s: corrupt store header (bad magic)" path
  else if Int32.to_int (Bytes.get_int32_le hdr 8) <> version then
    fail "%s: unsupported store version" path;
  let heap, dir = build_components pager in
  { pager; vfs; heap; dir; next_oid = hdr_read_next_oid pager; tx_depth = 0; path }

let path t = t.path

(** The underlying pager — the replication layer feeds from and applies
    through it directly. *)
let pager t = t.pager

(** The header LSN of the last page-dirtying commit (see {!Pager.lsn}). *)
let lsn t = Pager.lsn t.pager

let is_readonly t = Pager.is_readonly t.pager

(** Install the pager redo hook: called after every page-dirtying commit
    with the LSN-stamped after-image record (see {!Pager.set_redo_hook}). *)
let set_redo_hook t f = Pager.set_redo_hook t.pager f

let clear_redo_hook t = Pager.clear_redo_hook t.pager

(* --- transactions ---------------------------------------------------------- *)

let m_tx_commits =
  Pobs.Metrics.counter "pdb_store_tx_commits_total" ~help:"Store transactions committed"

let m_tx_aborts =
  Pobs.Metrics.counter "pdb_store_tx_aborts_total" ~help:"Store transactions aborted"

let in_tx t = t.tx_depth > 0

let begin_tx t =
  if t.tx_depth = 0 then begin
    Pager.begin_tx t.pager;
    (* Persist the oid high-water mark under the journal (first touch
       of the header appends its before-image).  [abort] below keeps
       the in-memory mark, so rolled-back transactions still never
       reuse an oid that was handed out. *)
    hdr_write_next_oid t.pager t.next_oid
  end;
  t.tx_depth <- t.tx_depth + 1

let commit t =
  if t.tx_depth <= 0 then fail "commit outside transaction";
  (* Decrement only after the pager commit succeeds: if it raises
     (ENOSPC, failed fsync, ...) the transaction is still open and the
     caller can — must — [abort] it. *)
  if t.tx_depth = 1 then begin
    hdr_write_next_oid t.pager t.next_oid;
    Pager.commit t.pager;
    Pobs.Metrics.inc m_tx_commits
  end;
  t.tx_depth <- t.tx_depth - 1

let abort t =
  if t.tx_depth <= 0 then fail "abort outside transaction";
  t.tx_depth <- 0;
  Pager.abort t.pager;
  Pobs.Metrics.inc m_tx_aborts;
  (* In-memory state may be stale after rollback: rebuild.  Keep the
     in-memory oid high-water mark: rollback restores the header's
     pre-transaction value, but oids handed out since must stay
     retired. *)
  let heap, dir = build_components t.pager in
  t.heap <- heap;
  t.dir <- dir;
  t.next_oid <- max t.next_oid (hdr_read_next_oid t.pager)

let close t =
  if t.tx_depth > 0 then abort t;
  (* Persist the oid high-water mark under the journal: an unjournaled
     header write here could be torn by a crash and take the whole
     store with it. *)
  if (not (Pager.is_readonly t.pager)) && hdr_read_next_oid t.pager <> t.next_oid then begin
    Pager.begin_tx t.pager;
    hdr_write_next_oid t.pager t.next_oid;
    Pager.commit t.pager
  end;
  Pager.close t.pager

let with_tx t f =
  begin_tx t;
  match
    let v = f () in
    (* commit must be inside the handler too: a commit that fails
       (ENOSPC, failed fsync) leaves the transaction open, and it must
       be rolled back before the error escapes. *)
    commit t;
    v
  with
  | v -> v
  | exception e ->
      if t.tx_depth > 0 then abort t;
      raise e

(* --- records ------------------------------------------------------------------ *)

let fresh_oid t =
  let oid = t.next_oid in
  t.next_oid <- t.next_oid + 1;
  oid

let key_of_oid oid = Int64.of_int oid

let put t ~oid (data : string) : unit =
  match Btree.find t.dir (key_of_oid oid) with
  | Some rid ->
      let rid' = Heap.update t.heap rid data in
      if not (Heap.rid_equal rid rid') then Btree.insert t.dir (key_of_oid oid) rid'
  | None ->
      let rid = Heap.insert t.heap data in
      Btree.insert t.dir (key_of_oid oid) rid

let get t ~oid : string option =
  match Btree.find t.dir (key_of_oid oid) with
  | Some rid -> Some (Heap.get t.heap rid)
  | None -> None

let mem t ~oid = Btree.mem t.dir (key_of_oid oid)

let delete t ~oid : bool =
  match Btree.find t.dir (key_of_oid oid) with
  | Some rid ->
      Heap.delete t.heap rid;
      Btree.delete t.dir (key_of_oid oid)
  | None -> false

(** Iterate all records in oid order. *)
let iter t (f : int -> string -> unit) =
  Btree.iter t.dir (fun k rid -> f (Int64.to_int k) (Heap.get t.heap rid))

let count t = Btree.cardinal t.dir

type stats = {
  pages : int;
  objects : int;
  page_reads : int;
  page_writes : int;
  cache_hits : int;
  cache_misses : int;
  evictions : int;
  journal_bytes : int;
}

let stats t =
  let s = Pager.stats t.pager in
  {
    pages = s.Pager.s_pages;
    objects = count t;
    page_reads = s.Pager.s_reads;
    page_writes = s.Pager.s_writes;
    cache_hits = s.Pager.s_hits;
    cache_misses = s.Pager.s_misses;
    evictions = s.Pager.s_evictions;
    journal_bytes = s.Pager.s_journal_bytes;
  }

(** One checksum scrub pass over the underlying file — every page
    verified against its CRC trailer without polluting the page cache
    (see {!Pager.scrub}). *)
let scrub ?batch_pages ?sleep_s t = Pager.scrub ?batch_pages ?sleep_s t.pager

(** Consistency check used by tests and the crash-torture harness:

    - the directory B-tree is structurally valid;
    - every directory entry resolves to a live heap record (blob chains
      are followed and length-checked by [Heap.get]);
    - every heap page holding a referenced record is structurally sound
      ({!Heap.validate_page}: header bounds, slot-array accounting,
      slot extents);
    - the free-page list stays inside the file, is cycle-free, and
      every page on it is marked free.

    Pages reachable from none of these (e.g. pages allocated by an
    uncommitted transaction that crashed) may hold arbitrary bytes;
    that is not corruption, merely leaked space that vacuum reclaims. *)
let check t =
  let n = Btree.check t.dir in
  let heap_pages = Hashtbl.create 64 in
  Btree.iter t.dir (fun _ rid ->
      if not (Hashtbl.mem heap_pages rid.Heap.page) then begin
        Heap.validate_page t.heap rid.Heap.page;
        Hashtbl.replace heap_pages rid.Heap.page ()
      end;
      ignore (Heap.get t.heap rid));
  let seen = Hashtbl.create 64 in
  let rec walk no =
    if no <> 0 then begin
      if no < 0 || no >= Pager.page_count t.pager then
        fail "free list escapes the file (page %d)" no;
      if Hashtbl.mem seen no then fail "free list cycle at page %d" no;
      Hashtbl.replace seen no ();
      let b = Pager.read t.pager no in
      if Bytes.get_uint8 b 0 <> kind_free then
        fail "free list page %d is not marked free (kind %d)" no (Bytes.get_uint8 b 0);
      walk (Int32.to_int (Bytes.get_int32_le b 1))
    end
  in
  walk (hdr_read_free_head t.pager);
  n

(** Vacuum: rewrite the store into a fresh compact file, dropping dead
    pages (fragmentation from deletes, lazily-deleted B-tree space,
    abandoned pages after aborts) and renaming it over the original.
    The store must not be inside a transaction.  Returns the new store
    handle — the old one is consumed.

    Crash-safe: a crash anywhere before the rename leaves the original
    file (and any journal it needs) untouched; the rename itself is
    atomic; and any stale journal for the original path is removed
    {e before} the rename, so a journal that predates the vacuum can
    never be replayed over the freshly written file. *)
let vacuum t : t =
  if in_tx t then fail "vacuum inside a transaction";
  let vfs = t.vfs in
  let tmp = t.path ^ ".vacuum" in
  if vfs.Vfs.exists tmp then vfs.Vfs.remove tmp;
  if vfs.Vfs.exists (tmp ^ ".journal") then vfs.Vfs.remove (tmp ^ ".journal");
  let fresh = open_ ~vfs tmp in
  (* The rebuild runs outside a transaction on purpose: journaling it
     would double the I/O, and a crash mid-rebuild only loses the tmp
     file, which the next vacuum removes. *)
  iter t (fun oid data -> put fresh ~oid data);
  fresh.next_oid <- t.next_oid;
  let path = t.path in
  close t;
  close fresh (* flushes, persists next_oid under the journal, fsyncs *);
  (* Commit point.  First drop any journal left over for [path]: after
     the rename it would hold before-images of the *old* file and
     replaying it over the new one would corrupt it. *)
  if vfs.Vfs.exists (path ^ ".journal") then vfs.Vfs.remove (path ^ ".journal");
  vfs.Vfs.rename tmp path;
  if vfs.Vfs.exists (tmp ^ ".journal") then vfs.Vfs.remove (tmp ^ ".journal");
  open_ ~vfs path
