(** The fleet front-end: one HTTP endpoint that load-balances reads
    across replicas, forwards writes to the primary, and fails over.

    Clients speak plain HTTP to the router; the router speaks the
    binary protocol to every backend through per-backend pipelined
    {!Pserver.Backend_pool}s, so one router connection fan-in does not
    become one backend connection fan-out.

    Routing policy:
    - [GET] goes to the least-loaded healthy replica that has already
      applied the client's [X-PDB-Min-LSN] token (the token is also
      forwarded, so the backend re-checks it — read-your-writes holds
      even when the router's health view is stale).  The primary is the
      fallback when no replica qualifies.  Reads are idempotent, so a
      connection failure or a 503 retries on a different backend with
      capped exponential backoff.
    - [POST] goes to the primary, once — mutations are not idempotent.
      With [sync_writes] the router acknowledges only after some
      healthy replica has applied the write's LSN {e on the same stream
      incarnation} (LSNs from different incarnations are not
      comparable), so a primary that dies right after acking cannot
      take acknowledged writes down with its incarnation.  With no
      healthy replica in view, semi-sync degrades to async rather than
      refusing writes.

    Failover: the {!Health} monitor detects sustained primary failure
    and triggers {!Promote.run_election}; dual-primary observations
    (an old primary rejoining after failover) are resolved in favour of
    the router's designated primary. *)

open Pserver

let m_requests =
  Pobs.Metrics.counter "pdb_router_requests_total"
    ~help:"Requests forwarded to backends"

let m_retries =
  Pobs.Metrics.counter "pdb_router_retries_total"
    ~help:"Read retries after a backend failure or 503"

let m_failed =
  Pobs.Metrics.counter "pdb_router_failed_total"
    ~help:"Requests answered with no backend available"

let m_writes =
  Pobs.Metrics.counter "pdb_router_writes_total"
    ~help:"Writes forwarded to the primary"

type t = {
  topo : Topology.t;
  mon : Health.monitor;
  sync_writes : bool;
  sync_timeout_s : float;
  max_read_attempts : int;
  em : Mutex.t; (* serialises elections *)
  routed : int Atomic.t;
  retried : int Atomic.t;
  failed : int Atomic.t;
  writes : int Atomic.t;
  mutable elections : int;
  mutable last_failover_ms : float; (* election duration; -1 = never *)
  mutable loop : Http_server.req Event_loop.t option;
}

(* One election, serialised: concurrent triggers (monitor tick plus a
   test poking us) collapse into one. *)
let failover (r : t) =
  Mutex.lock r.em;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock r.em)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      match Promote.run_election r.topo with
      | Ok _ ->
          r.elections <- r.elections + 1;
          r.last_failover_ms <- (Unix.gettimeofday () -. t0) *. 1000.
      | Error _ ->
          (* Nothing electable yet.  Re-arm the monitor's failover latch
             explicitly: it cleared on firing and only re-arms after a
             healthy primary is seen — which is exactly what does not
             exist right now — so without this a failed election would
             never be retried. *)
          r.mon.Health.armed <- true)

let create ?(sync_writes = false) ?(sync_timeout_s = 5.)
    ?(max_read_attempts = 4) ?(probe_every_s = 0.1) ?(fail_threshold = 3)
    (addrs : (string * int) list) : t =
  let topo = Topology.create addrs in
  let mon = Health.create ~every_s:probe_every_s ~fail_threshold topo in
  let r =
    {
      topo;
      mon;
      sync_writes;
      sync_timeout_s;
      max_read_attempts;
      em = Mutex.create ();
      routed = Atomic.make 0;
      retried = Atomic.make 0;
      failed = Atomic.make 0;
      writes = Atomic.make 0;
      elections = 0;
      last_failover_ms = -1.;
      loop = None;
    }
  in
  mon.Health.on_primary_down <- (fun () -> failover r);
  mon.Health.on_dual_primary <- (fun prims -> Promote.resolve_dual topo prims);
  (* Synchronous discovery pass so the first request already has a
     health view, and designate whoever currently leads. *)
  Health.probe_once mon;
  (match Topology.primary topo with
  | Some b -> topo.Topology.current_primary <- Some b.Topology.b_addr
  | None -> ());
  r

let close (r : t) =
  Health.stop r.mon;
  Topology.close r.topo

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let status_line = function
  | 200 -> "200 OK"
  | 400 -> "400 Bad Request"
  | 403 -> "403 Forbidden"
  | 404 -> "404 Not Found"
  | 405 -> "405 Method Not Allowed"
  | 408 -> "408 Request Timeout"
  | 500 -> "500 Internal Server Error"
  | 502 -> "502 Bad Gateway"
  | 503 -> "503 Service Unavailable"
  | s -> Printf.sprintf "%d Status" s

let header_opt name headers =
  Option.map String.trim (List.assoc_opt name headers)

(* Re-render a backend's binary-protocol answer as an HTTP response. *)
let render ~keep_alive (status, headers, body) : Event_loop.response =
  let content_type =
    Option.value
      (List.assoc_opt "content-type" headers)
      ~default:"text/plain; charset=utf-8"
  in
  let extra = List.filter (fun (k, _) -> k <> "content-type") headers in
  {
    Event_loop.rsp_data =
      Http_server.response_string ~content_type ~extra ~keep_alive
        ~status:(status_line status) ~body ();
    rsp_close = not keep_alive;
  }

let plain ~keep_alive ?extra status body : Event_loop.response =
  {
    Event_loop.rsp_data =
      Http_server.response_string ?extra ~keep_alive ~status ~body ();
    rsp_close = not keep_alive;
  }

let forward_get (r : t) ~keep_alive (req : Http_server.http_req) :
    Event_loop.response =
  let min_lsn =
    match header_opt "x-pdb-min-lsn" req.Http_server.r_headers with
    | Some v -> ( match int_of_string_opt v with Some n -> n | None -> 0)
    | None -> 0
  in
  (* forward the token: the backend re-checks, so rywr survives a stale
     router-side LSN view *)
  let fwd_headers =
    List.filter (fun (k, _) -> k = "x-pdb-min-lsn") req.Http_server.r_headers
  in
  let rec attempt n tried delay =
    match Topology.pick_read ~min_lsn ~exclude:tried r.topo with
    | None ->
        Atomic.incr r.failed;
        Pobs.Metrics.inc m_failed;
        plain ~keep_alive
          ~extra:[ ("Retry-After", "1") ]
          "503 Service Unavailable" "no backend available\n"
    | Some b -> (
        let retry msg =
          Atomic.incr r.retried;
          Pobs.Metrics.inc m_retries;
          if n + 1 < r.max_read_attempts then begin
            Thread.delay delay;
            attempt (n + 1) (b.Topology.b_id :: tried) (Float.min 0.5 (delay *. 2.))
          end
          else begin
            Atomic.incr r.failed;
            Pobs.Metrics.inc m_failed;
            plain ~keep_alive
              ~extra:[ ("Retry-After", "1") ]
              "503 Service Unavailable"
              (Printf.sprintf "no backend available (%s)\n" msg)
          end
        in
        match
          Backend_pool.http b.Topology.b_pool ~headers:fwd_headers ~meth:"GET"
            ~target:req.Http_server.r_target
        with
        | 503, _, _ -> retry "backend busy"
        | answer ->
            Atomic.incr r.routed;
            Pobs.Metrics.inc m_requests;
            render ~keep_alive answer
        | exception Client.Backend_down m -> retry m
        | exception Client.Protocol_error m -> retry m)
  in
  attempt 0 [] 0.01

(* Semi-sync confirmation: poll the healthy replicas until one reports
   having applied [lsn] on stream [stream] — the incarnation the acking
   primary committed it under.  LSNs are only comparable within one
   incarnation: a freshly promoted node restarts publication under a new
   stream id at an LSN that can collide with unreplicated commits of the
   dead incarnation, so a bare [p_lsn >= lsn] check can be satisfied by
   a backend that never saw the write.  The pong's own role and stream
   id are checked (not the cached health view, which races elections).
   Vacuously confirmed when no healthy replica is in view — semi-sync
   degrades to async rather than refusing writes. *)
let confirmed (r : t) ~(stream : int) (lsn : int) : bool =
  let deadline = Unix.gettimeofday () +. r.sync_timeout_s in
  let rec go () =
    let replicas =
      Array.to_list r.topo.Topology.backends
      |> List.filter (fun (b : Topology.backend) ->
             b.Topology.b_healthy && b.b_role = "replica")
    in
    if replicas = [] then true
    else if
      List.exists
        (fun (b : Topology.backend) ->
          match Backend_pool.ping ~force:true b.Topology.b_pool with
          | p ->
              b.b_lsn <- p.Client.p_lsn;
              p.Client.p_role = "replica"
              && (stream = 0 || p.Client.p_stream_id = stream)
              && p.Client.p_lsn >= lsn
          | exception _ -> false)
        replicas
    then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let forward_post (r : t) ~keep_alive (req : Http_server.http_req) :
    Event_loop.response =
  Atomic.incr r.writes;
  Pobs.Metrics.inc m_writes;
  match Topology.primary r.topo with
  | None ->
      Atomic.incr r.failed;
      Pobs.Metrics.inc m_failed;
      plain ~keep_alive
        ~extra:[ ("Retry-After", "1") ]
        "503 Service Unavailable" "no primary available\n"
  | Some b -> (
      match
        Backend_pool.http b.Topology.b_pool ~meth:req.Http_server.r_meth
          ~target:req.Http_server.r_target
      with
      | (200, headers, _) as answer ->
          Atomic.incr r.routed;
          Pobs.Metrics.inc m_requests;
          if r.sync_writes then begin
            let lsn =
              match header_opt "x-pdb-lsn" headers with
              | Some v -> Option.value (int_of_string_opt v) ~default:(-1)
              | None -> -1
            in
            if lsn < 0 || confirmed r ~stream:b.Topology.b_stream_id lsn then
              render ~keep_alive answer
            else
              plain ~keep_alive "502 Bad Gateway"
                "write not confirmed by any replica\n"
          end
          else render ~keep_alive answer
      | answer ->
          Atomic.incr r.routed;
          Pobs.Metrics.inc m_requests;
          render ~keep_alive answer
      | exception Client.Backend_down m ->
          Atomic.incr r.failed;
          Pobs.Metrics.inc m_failed;
          plain ~keep_alive
            ~extra:[ ("Retry-After", "1") ]
            "503 Service Unavailable"
            (Printf.sprintf "primary unreachable (%s)\n" m)
      | exception Client.Protocol_error m ->
          Atomic.incr r.failed;
          Pobs.Metrics.inc m_failed;
          plain ~keep_alive "502 Bad Gateway" (Printf.sprintf "primary answered garbage (%s)\n" m))

(* ------------------------------------------------------------------ *)
(* Router-local endpoints                                              *)
(* ------------------------------------------------------------------ *)

let usage =
  "prometheus cluster router\n\
   \n\
   GET  /stats             router + per-backend fleet status (JSON)\n\
   GET  /metrics           Prometheus text exposition\n\
   GET  <anything else>    load-balanced across healthy replicas\n\
   POST <mutation>         forwarded to the primary\n\
   \n\
   X-PDB-Min-LSN on a GET routes to a caught-up backend (read-your-writes).\n"

let stats_json (r : t) : string =
  let open Pobs.Json in
  let backends =
    Array.to_list
      (Array.map
         (fun (b : Topology.backend) ->
           Obj
             [
               ("addr", Str b.Topology.b_addr);
               ("role", Str b.b_role);
               ("healthy", Bool b.b_healthy);
               ("lsn", Int b.b_lsn);
               ("stream_id", Int b.b_stream_id);
               ("repl_port", Int b.b_repl_port);
               ("outstanding", Int (Backend_pool.outstanding b.Topology.b_pool));
               ("connections", Int (Backend_pool.connected b.Topology.b_pool));
               ("fail_streak", Int b.b_fail_streak);
             ])
         r.topo.Topology.backends)
  in
  let loop =
    match r.loop with
    | None -> []
    | Some t ->
        let ls = Event_loop.stats t in
        [
          ( "loop",
            Obj
              [
                ("backend", Str (Event_loop.backend_name t));
                ("accepted", Int ls.Event_loop.s_accepted);
                ("overloaded", Int ls.Event_loop.s_overloaded);
                ("timeouts", Int ls.Event_loop.s_timeouts);
                ("handled", Int ls.Event_loop.s_handled);
                ("open_connections", Int ls.Event_loop.s_open_conns);
              ] );
        ]
  in
  to_string
    (Obj
       ([
          ( "cluster",
            Obj
              [
                ( "primary",
                  match r.topo.Topology.current_primary with
                  | Some a -> Str a
                  | None -> Null );
                ("sync_writes", Bool r.sync_writes);
                ("routed", Int (Atomic.get r.routed));
                ("retried", Int (Atomic.get r.retried));
                ("failed", Int (Atomic.get r.failed));
                ("writes", Int (Atomic.get r.writes));
                ("elections", Int r.elections);
                ("last_failover_ms", Float r.last_failover_ms);
                ("backends", List backends);
              ] );
        ]
       @ loop))

let handle (r : t) (req : Http_server.http_req) : Event_loop.response =
  if req.Http_server.r_bad then
    plain ~keep_alive:false "400 Bad Request" "bad request\n"
  else begin
    let keep_alive = req.Http_server.r_keep_alive in
    let path =
      match String.index_opt req.Http_server.r_target '?' with
      | Some i -> String.sub req.Http_server.r_target 0 i
      | None -> req.Http_server.r_target
    in
    match (req.Http_server.r_meth, path) with
    | "GET", "/" -> plain ~keep_alive "200 OK" usage
    | "GET", "/stats" ->
        {
          Event_loop.rsp_data =
            Http_server.response_string
              ~content_type:"application/json; charset=utf-8" ~keep_alive
              ~status:"200 OK" ~body:(stats_json r) ();
          rsp_close = not keep_alive;
        }
    | "GET", "/metrics" ->
        {
          Event_loop.rsp_data =
            Http_server.response_string
              ~content_type:Http_server.metrics_content_type ~keep_alive
              ~status:"200 OK"
              ~body:(Pobs.Metrics.expose ())
              ();
          rsp_close = not keep_alive;
        }
    | "GET", _ -> forward_get r ~keep_alive req
    | "POST", _ -> forward_post r ~keep_alive req
    | _ -> plain ~keep_alive "405 Method Not Allowed" "method not allowed\n"
  end

(* ------------------------------------------------------------------ *)
(* Serving                                                             *)
(* ------------------------------------------------------------------ *)

(** Serve the router on [port] until [stop] is set or SIGTERM/SIGINT.
    Blocks.  Handler workers default to 8 — every handler blocks on
    backend round-trips, so the executor must be wider than the
    core count. *)
let serve ?(host = "127.0.0.1") ?stop ?ready ?(max_conns = 1024)
    ?(workers = 8) ?max_requests (r : t) ~port () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let stop = match stop with Some s -> s | None -> ref false in
  let install signum =
    try Some (signum, Sys.signal signum (Sys.Signal_handle (fun _ -> stop := true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let saved = List.filter_map install [ Sys.sigterm; Sys.sigint ] in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock (max 128 max_conns);
  let bound =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  Health.start r.mon;
  (match ready with Some f -> f bound | None -> ());
  let execute = function
    | Http_server.RHttp req -> handle r req
    | Http_server.RBin _ ->
        (* the router's client side is HTTP-only; backends speak binary *)
        { Event_loop.rsp_data = ""; rsp_close = true }
  in
  let t, worker_threads =
    Event_loop.create ~max_conns ~timeout_s:10. ~workers ~execute
      [ Http_server.http_listener sock ]
  in
  r.loop <- Some t;
  Printf.printf "prometheus: router on http://%s:%d/ (%d backends, %s)\n%!" host
    bound
    (Array.length r.topo.Topology.backends)
    (Event_loop.backend_name t);
  let continue () =
    (not !stop)
    &&
    match max_requests with
    | None -> true
    | Some m -> Event_loop.requests_handled t < m
  in
  Event_loop.run t worker_threads ~continue ();
  Unix.close sock;
  List.iter
    (fun (signum, prev) ->
      try Sys.set_signal signum prev with Invalid_argument _ | Sys_error _ -> ())
    saved;
  close r
