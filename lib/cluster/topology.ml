(** The router's view of the fleet: who exists, who is healthy, who
    leads, and — pure and separately testable — who {e should} lead.

    One {!backend} per configured address, each owning a pipelined
    {!Pserver.Backend_pool} to that backend's binary port.  Health and
    identity fields are refreshed by {!Health}; routing decisions
    ({!pick_read}, {!primary}) read them.

    The election rule lives here as a pure function, {!elect}: highest
    durable LSN wins, lowest address breaks ties.  Determinism is the
    split-brain defence — two routers that observe the same candidate
    set must choose the same winner, so concurrent elections converge
    on one primary instead of two. *)

open Pserver

type backend = {
  b_id : int;
  b_host : string;
  b_port : int; (* the backend's binary-protocol port *)
  b_addr : string; (* "host:port", the canonical identity *)
  b_pool : Backend_pool.t;
  mutable b_healthy : bool;
  mutable b_role : string; (* "primary" | "replica" | "unknown" *)
  mutable b_lsn : int;
  mutable b_stream_id : int;
  mutable b_repl_port : int; (* the Feed (or cascade) port it serves, -1 if none *)
  mutable b_fail_streak : int; (* consecutive failed probes *)
}

type t = {
  backends : backend array;
  mutable current_primary : string option; (* b_addr the router designated *)
}

let create (addrs : (string * int) list) : t =
  let backends =
    Array.of_list
      (List.mapi
         (fun i (host, port) ->
           {
             b_id = i;
             b_host = host;
             b_port = port;
             b_addr = Printf.sprintf "%s:%d" host port;
             b_pool = Backend_pool.create ~host ~port ();
             b_healthy = false;
             b_role = "unknown";
             b_lsn = 0;
             b_stream_id = 0;
             b_repl_port = -1;
             b_fail_streak = 0;
           })
         addrs)
  in
  { backends; current_primary = None }

let close (t : t) = Array.iter (fun b -> Backend_pool.close b.b_pool) t.backends

(** The election rule, pure: among [(address, durable_lsn)] candidates
    the highest LSN wins and the {e lowest} address breaks ties.  Total
    order over any candidate set — every router that sees the same set
    picks the same winner. *)
let elect (cands : (string * int) list) : string option =
  List.fold_left
    (fun acc (addr, lsn) ->
      match acc with
      | None -> Some (addr, lsn)
      | Some (best_addr, best_lsn) ->
          if lsn > best_lsn || (lsn = best_lsn && addr < best_addr) then
            Some (addr, lsn)
          else acc)
    None cands
  |> Option.map fst

let backend_by_addr (t : t) (addr : string) : backend option =
  Array.fold_left
    (fun acc b -> if b.b_addr = addr then Some b else acc)
    None t.backends

(** The backend currently serving as primary: the router's designated
    one when it still looks the part, else any healthy self-declared
    primary. *)
let primary (t : t) : backend option =
  let declared b = b.b_healthy && b.b_role = "primary" in
  match t.current_primary with
  | Some addr when Option.fold ~none:false ~some:declared (backend_by_addr t addr)
    ->
      backend_by_addr t addr
  | _ ->
      Array.fold_left
        (fun acc b -> match acc with Some _ -> acc | None -> if declared b then Some b else None)
        None t.backends

(* Healthy primaries beyond the designated one — the dual-primary
   signal the resolver acts on. *)
let healthy_primaries (t : t) : backend list =
  Array.fold_left
    (fun acc b -> if b.b_healthy && b.b_role = "primary" then b :: acc else acc)
    [] t.backends
  |> List.rev

(** Pick a backend for an idempotent read.  Healthy replicas first —
    already caught up to [min_lsn] when one is presented — by least
    outstanding requests (the pipelined pools make "outstanding" an
    honest load signal); the primary is the fallback when no replica
    qualifies.  [exclude] lists backend ids already tried this
    request. *)
let pick_read ?(min_lsn = 0) ?(exclude = []) (t : t) : backend option =
  let usable b =
    b.b_healthy && b.b_role <> "primary" && not (List.mem b.b_id exclude)
  in
  let caught_up b = usable b && b.b_lsn >= min_lsn in
  let least pred =
    Array.fold_left
      (fun acc b ->
        if not (pred b) then acc
        else
          match acc with
          | None -> Some b
          | Some best ->
              if Backend_pool.outstanding b.b_pool < Backend_pool.outstanding best.b_pool
              then Some b
              else acc)
      None t.backends
  in
  match least caught_up with
  | Some b -> Some b
  | None -> (
      match primary t with
      | Some p when not (List.mem p.b_id exclude) -> Some p
      | _ -> least usable)
