(** Role transitions: the node-side promote/demote state machine and
    the router-side election.

    A {!node} wraps one database file and is, at any moment, either
    {e leading} (read-write, publishing a {!Prepl.Feed}) or
    {e following} (read-only, applying a {!Prepl.Replica} session from
    an upstream feed).  The HTTP/binary front-end reads its serving
    context from an {!Atomic.t} cell per request, so a role flip is one
    [Atomic.set]: tear down the old machinery, build the new, swap the
    context — in-flight requests finish against the old context, the
    next request sees the new role.

    Promotion mints a fresh feed (and with it a fresh random stream id,
    via {!Prepl.Feed.create}).  A deposed primary that later rejoins as
    a follower presents its stale stream id in the replication [Hello];
    the new primary's feed answers with a full snapshot, so the old
    primary converges byte-identically — any writes it acknowledged but
    never replicated are discarded with its incarnation, which is
    exactly why the router only acknowledges semi-sync writes.

    A following node with [cascade] set republishes everything it
    applies through a detached feed on its own replication port, so
    downstream replicas can chain off it (primary → replica →
    replica).  The cascade feed inherits the upstream stream id, which
    keeps LSNs comparable across the whole tree.

    The election ({!run_election}) is router-driven: probe everyone,
    abort if any reachable backend still claims to lead, otherwise pick
    the winner with the pure {!Topology.elect} rule and send it a
    [promote] control verb, then point the remaining replicas at the
    winner with [follow]. *)

open Pserver
open Prepl
open Pmodel

let m_promotions =
  Pobs.Metrics.counter "pdb_cluster_promotions_total"
    ~help:"Follower-to-leader transitions on this node"

let m_demotions =
  Pobs.Metrics.counter "pdb_cluster_demotions_total"
    ~help:"Leader-to-follower transitions on this node"

let m_elections =
  Pobs.Metrics.counter "pdb_cluster_elections_total"
    ~help:"Elections this router has run"

type state =
  | Leading of {
      l_db : Database.t;
      l_feed : Feed.t;
      l_fsrv : Feed.server;
      l_pool : Reader_pool.t;
    }
  | Following of {
      f_sess : Replica.session;
      f_db : Database.t; (* read-only view for non-pool paths *)
      f_pool : Reader_pool.t;
    }

type node = {
  n_path : string;
  n_host : string;
  n_repl_port : int; (* feed port when leading, cascade port when following *)
  n_readers : int;
  n_max_lag_ms : float;
  n_cascade : bool;
  n_cell : Http_server.ctx Atomic.t;
  nm : Mutex.t; (* serialises role transitions *)
  cm : Mutex.t; (* guards [n_cascade_state] only — session callbacks use it *)
  mutable n_cascade_state : (Feed.t * Feed.server) option;
  mutable n_state : state;
  mutable n_transitions : int;
}

let parse_addr (spec : string) : (string * int, string) result =
  match String.rindex_opt spec ':' with
  | None -> Error (Printf.sprintf "bad address %S (want host:port)" spec)
  | Some i -> (
      let host = String.sub spec 0 i in
      match int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1)) with
      | Some port when host <> "" && port > 0 && port < 65536 -> Ok (host, port)
      | _ -> Error (Printf.sprintf "bad address %S (want host:port)" spec))

let with_nm node f =
  Mutex.lock node.nm;
  Fun.protect ~finally:(fun () -> Mutex.unlock node.nm) f

let with_cm node f =
  Mutex.lock node.cm;
  Fun.protect ~finally:(fun () -> Mutex.unlock node.cm) f

(* ------------------------------------------------------------------ *)
(* Follower plumbing                                                   *)
(* ------------------------------------------------------------------ *)

(* A reader-pool source over the applier: LSN under the applier lock,
   views opened read-only against the replica file (same idiom as the
   standalone replica command). *)
let follower_pool ~readers ~max_lag_ms ~path (apply : Replica.Apply.t) :
    Reader_pool.t =
  let src =
    {
      Reader_pool.src_lsn =
        (fun () ->
          Replica.Apply.with_lock apply (fun () ->
              match apply.Replica.Apply.pager with
              | Some p -> Pstore.Pager.lsn p
              | None -> -1));
      src_build =
        (fun n ->
          let db =
            Replica.Apply.with_lock apply (fun () ->
                Database.open_ ~readonly:true path)
          in
          (Array.make n db, [ db ]));
    }
  in
  Reader_pool.create ~max_lag_ms ~readers src

let wait_bootstrap ?(timeout_s = 30.) (sess : Replica.session) : bool =
  let apply = sess.Replica.apply in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if Replica.Apply.with_lock apply (fun () -> apply.Replica.Apply.pager <> None)
    then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

(* Snapshot the applied state for a cascade feed: stream id, LSN and the
   raw file image, all under the applier lock so no batch is mid-apply. *)
let cascade_image (apply : Replica.Apply.t) : (int * int * string) option =
  Replica.Apply.with_lock apply (fun () ->
      match apply.Replica.Apply.pager with
      | None -> None
      | Some p ->
          let lsn = Pstore.Pager.lsn p in
          let sid = apply.Replica.Apply.stream_id in
          let ic = open_in_bin apply.Replica.Apply.path in
          let len = in_channel_length ic in
          let len = len - (len mod Pstore.Pager.page_size) in
          let image = really_input_string ic len in
          close_in ic;
          Some (sid, lsn, image))

let stop_cascade node =
  let prev =
    with_cm node (fun () ->
        let p = node.n_cascade_state in
        node.n_cascade_state <- None;
        p)
  in
  match prev with
  | Some (_, srv) -> ( try Feed.stop_server srv with _ -> ())
  | None -> ()

let install_cascade node ~stream_id ~lsn ~image =
  stop_cascade node;
  match Feed.create_detached ~stream_id ~lsn ~image () with
  | feed ->
      let srv = Feed.serve feed ~host:node.n_host ~port:node.n_repl_port in
      with_cm node (fun () -> node.n_cascade_state <- Some (feed, srv))
  | exception _ -> () (* image not serveable yet; next snapshot rebuilds *)

(* Wire the session's republish hooks and bring the cascade feed up from
   the current applied image (if bootstrapped). *)
let attach_cascade node (sess : Replica.session) =
  sess.Replica.on_record <-
    (fun ~lsn ~pages ->
      with_cm node (fun () ->
          match node.n_cascade_state with
          | Some (feed, _) -> Feed.publish feed ~lsn ~pages
          | None -> ()));
  sess.Replica.on_snapshot <-
    (fun ~stream_id ~lsn ~image -> install_cascade node ~stream_id ~lsn ~image);
  match cascade_image sess.Replica.apply with
  | Some (stream_id, lsn, image) -> install_cascade node ~stream_id ~lsn ~image
  | None -> ()

let detach_cascade_hooks (sess : Replica.session) =
  sess.Replica.on_record <- (fun ~lsn:_ ~pages:_ -> ());
  sess.Replica.on_snapshot <- (fun ~stream_id:_ ~lsn:_ ~image:_ -> ())

(* ------------------------------------------------------------------ *)
(* Role transitions                                                    *)
(* ------------------------------------------------------------------ *)

let rec hooks (node : node) : Http_server.cluster_hooks =
  {
    Http_server.c_role =
      (fun () ->
        match node.n_state with Leading _ -> "primary" | Following _ -> "replica");
    c_lsn =
      (fun () ->
        match node.n_state with
        | Leading l -> Pstore.Store.lsn (Database.store l.l_db)
        | Following f -> Replica.Apply.last_lsn f.f_sess.Replica.apply);
    c_stream_id =
      (fun () ->
        match node.n_state with
        | Leading l -> Feed.stream_id l.l_feed
        | Following f -> Replica.Apply.stream_id f.f_sess.Replica.apply);
    c_repl_port =
      (fun () ->
        match node.n_state with
        | Leading l -> l.l_fsrv.Feed.port
        | Following _ ->
            if with_cm node (fun () -> Option.is_some node.n_cascade_state) then
              node.n_repl_port
            else -1);
    c_ctl =
      (fun ~verb ~arg ->
        match verb with
        | "promote" -> promote node
        | "demote" | "follow" -> follow node ~upstream:arg
        | _ -> Error (Printf.sprintf "unknown control verb %S" verb));
  }

(** Flip this node to primary.  Idempotent when already leading.  Under
    the transition lock: stop the replica session and its serving
    machinery, reopen the file read-write, mint a fresh feed (fresh
    stream id), start a writer and a primary-sourced reader pool, swap
    the serving context.  Returns the feed address followers should
    chain from. *)
and promote (node : node) : (string, string) result =
  with_nm node (fun () ->
      match node.n_state with
      | Leading l -> Ok (Printf.sprintf "%s:%d" node.n_host l.l_fsrv.Feed.port)
      | Following f -> (
          try
            Pobs.Metrics.inc m_promotions;
            (* Detach the cascade hooks FIRST: the session thread must
               not call into a feed we are about to stop. *)
            detach_cascade_hooks f.f_sess;
            stop_cascade node;
            (try Replica.stop f.f_sess with _ -> ());
            (try Reader_pool.stop f.f_pool with _ -> ());
            (try Database.close f.f_db with _ -> ());
            let old = Atomic.get node.n_cell in
            (match old.Http_server.x_writer with
            | Some w -> ( try Database.Writer.stop w with _ -> ())
            | None -> ());
            let db = Database.open_ node.n_path in
            let feed = Feed.create (Database.store db) in
            let fsrv = Feed.serve feed ~host:node.n_host ~port:node.n_repl_port in
            let writer = Database.Writer.start db in
            let pool =
              Reader_pool.create ~max_lag_ms:node.n_max_lag_ms
                ~readers:node.n_readers
                (Reader_pool.primary_source db)
            in
            let ctx =
              {
                old with
                Http_server.x_db = db;
                x_readonly = false;
                x_repl_status = Some (fun () -> Feed.status_json feed);
                x_pool = Some pool;
                x_writer = Some writer;
                x_cluster = Some (hooks node);
              }
            in
            Atomic.set node.n_cell ctx;
            node.n_state <- Leading { l_db = db; l_feed = feed; l_fsrv = fsrv; l_pool = pool };
            node.n_transitions <- node.n_transitions + 1;
            Ok (Printf.sprintf "%s:%d" node.n_host fsrv.Feed.port)
          with e -> Error ("promote failed: " ^ Printexc.to_string e)))

(** Flip this node to follower of [upstream] ("host:port" of a feed).
    Used both to demote a deposed primary and to re-point a replica at a
    newly elected one.  The old primary's stale stream id makes its
    replication [Hello] resolve to a full snapshot — byte-identical
    convergence with the new incarnation. *)
and follow (node : node) ~(upstream : string) : (string, string) result =
  match parse_addr upstream with
  | Error e -> Error e
  | Ok (uhost, uport) ->
      with_nm node (fun () ->
          match node.n_state with
          | Following f
            when f.f_sess.Replica.host = uhost && f.f_sess.Replica.port = uport
            ->
              Ok "already following"
          | st -> (
              try
                (match st with
                | Leading l ->
                    Pobs.Metrics.inc m_demotions;
                    (match (Atomic.get node.n_cell).Http_server.x_writer with
                    | Some w -> ( try Database.Writer.stop w with _ -> ())
                    | None -> ());
                    (try Feed.stop_server l.l_fsrv with _ -> ());
                    (try Feed.detach l.l_feed with _ -> ());
                    (try Reader_pool.stop l.l_pool with _ -> ());
                    (try Database.close l.l_db with _ -> ())
                | Following f ->
                    detach_cascade_hooks f.f_sess;
                    stop_cascade node;
                    (try Replica.stop f.f_sess with _ -> ());
                    (try Reader_pool.stop f.f_pool with _ -> ());
                    (try Database.close f.f_db with _ -> ()));
                setup_following node ~uhost ~uport
              with e -> Error ("follow failed: " ^ Printexc.to_string e)))

(* Bring up the follower machinery toward [uhost:uport].  Caller holds
   the transition lock and has torn the previous state down. *)
and setup_following (node : node) ~uhost ~uport : (string, string) result =
  let sess = Replica.start ~host:uhost ~port:uport node.n_path in
  if not (wait_bootstrap sess) then begin
    (try Replica.stop sess with _ -> ());
    Error (Printf.sprintf "bootstrap from %s:%d timed out" uhost uport)
  end
  else begin
    let apply = sess.Replica.apply in
    let pool =
      follower_pool ~readers:node.n_readers ~max_lag_ms:node.n_max_lag_ms
        ~path:node.n_path apply
    in
    let db =
      Replica.Apply.with_lock apply (fun () ->
          Database.open_ ~readonly:true node.n_path)
    in
    if node.n_cascade then attach_cascade node sess;
    let old = Atomic.get node.n_cell in
    let ctx =
      {
        old with
        Http_server.x_db = db;
        x_readonly = true;
        x_repl_status = Some (fun () -> Replica.status_json sess);
        x_pool = Some pool;
        x_writer = None;
        x_cluster = Some (hooks node);
      }
    in
    Atomic.set node.n_cell ctx;
    node.n_state <- Following { f_sess = sess; f_db = db; f_pool = pool };
    node.n_transitions <- node.n_transitions + 1;
    Ok (Printf.sprintf "following %s:%d" uhost uport)
  end

(* ------------------------------------------------------------------ *)
(* Construction and serving                                            *)
(* ------------------------------------------------------------------ *)

let create_leading ?(readers = 2) ?(max_lag_ms = 50.) ?(cascade = false) ~path
    ~host ~repl_port () : node =
  let db = Database.open_ path in
  let feed = Feed.create (Database.store db) in
  let fsrv = Feed.serve feed ~host ~port:repl_port in
  let pool =
    Reader_pool.create ~max_lag_ms ~readers (Reader_pool.primary_source db)
  in
  let ctx0 =
    {
      Http_server.x_db = db;
      x_readonly = false;
      x_repl_status = Some (fun () -> Feed.status_json feed);
      x_pool = Some pool;
      x_writer = None; (* the HTTP server starts its own at serve time *)
      x_serving = None;
      x_cluster = None;
    }
  in
  {
    n_path = path;
    n_host = host;
    n_repl_port = repl_port;
    n_readers = readers;
    n_max_lag_ms = max_lag_ms;
    n_cascade = cascade;
    n_cell = Atomic.make ctx0;
    nm = Mutex.create ();
    cm = Mutex.create ();
    n_cascade_state = None;
    n_state = Leading { l_db = db; l_feed = feed; l_fsrv = fsrv; l_pool = pool };
    n_transitions = 0;
  }

let create_following ?(readers = 2) ?(max_lag_ms = 50.) ?(cascade = false)
    ~path ~host ~repl_port ~upstream () : (node, string) result =
  match parse_addr upstream with
  | Error e -> Error e
  | Ok (uhost, uport) ->
      let sess = Replica.start ~host:uhost ~port:uport path in
      if not (wait_bootstrap sess) then begin
        (try Replica.stop sess with _ -> ());
        Error (Printf.sprintf "bootstrap from %s timed out" upstream)
      end
      else begin
        let apply = sess.Replica.apply in
        let pool = follower_pool ~readers ~max_lag_ms ~path apply in
        let db =
          Replica.Apply.with_lock apply (fun () ->
              Database.open_ ~readonly:true path)
        in
        let ctx0 =
          {
            Http_server.x_db = db;
            x_readonly = true;
            x_repl_status = Some (fun () -> Replica.status_json sess);
            x_pool = Some pool;
            x_writer = None;
            x_serving = None;
            x_cluster = None;
          }
        in
        let node =
          {
            n_path = path;
            n_host = host;
            n_repl_port = repl_port;
            n_readers = readers;
            n_max_lag_ms = max_lag_ms;
            n_cascade = cascade;
            n_cell = Atomic.make ctx0;
            nm = Mutex.create ();
            cm = Mutex.create ();
            n_cascade_state = None;
            n_state = Following { f_sess = sess; f_db = db; f_pool = pool };
            n_transitions = 0;
          }
        in
        if cascade then attach_cascade node sess;
        Ok node
      end

(** Serve the node's HTTP + binary front-end.  Blocks like
    {!Pserver.Http_server.serve}; the cluster hooks and the swappable
    context cell are wired in, so a [Ctl] verb arriving on the binary
    port can flip the node's role while this serve loop keeps running. *)
let serve ?max_requests ?stop ?ready ?binary_port ?binary_ready (node : node)
    ~port () =
  match node.n_state with
  | Leading l ->
      Http_server.serve ~host:node.n_host ?max_requests ?stop ?ready
        ?binary_port ?binary_ready
        ~repl_status:(fun () -> Feed.status_json l.l_feed)
        ~pool:l.l_pool ~cluster:(hooks node) ~ctx_cell:node.n_cell l.l_db ~port
        ()
  | Following f ->
      Http_server.serve ~host:node.n_host ?max_requests ?stop ?ready
        ?binary_port ?binary_ready ~readonly:true
        ~repl_status:(fun () -> Replica.status_json f.f_sess)
        ~pool:f.f_pool ~cluster:(hooks node) ~ctx_cell:node.n_cell f.f_db ~port
        ()

(** Tear the node down after its serve loop exits. *)
let shutdown (node : node) =
  with_nm node (fun () ->
      match node.n_state with
      | Leading l ->
          (match (Atomic.get node.n_cell).Http_server.x_writer with
          | Some w -> ( try Database.Writer.stop w with _ -> ())
          | None -> ());
          (try Feed.stop_server l.l_fsrv with _ -> ());
          (try Feed.detach l.l_feed with _ -> ());
          (try Reader_pool.stop l.l_pool with _ -> ());
          (try Database.close l.l_db with _ -> ())
      | Following f ->
          detach_cascade_hooks f.f_sess;
          stop_cascade node;
          (try Replica.stop f.f_sess with _ -> ());
          (try Reader_pool.stop f.f_pool with _ -> ());
          (try Database.close f.f_db with _ -> ()))

(* ------------------------------------------------------------------ *)
(* Router-side election                                                *)
(* ------------------------------------------------------------------ *)

(** Run one election over the fleet.  Probes every backend fresh (the
    cached health view may be seconds stale); aborts if any reachable
    backend still claims to be primary — the old primary rejoining
    mid-election must win by default, not be fenced off.  Otherwise the
    pure {!Topology.elect} rule picks the winner (highest durable LSN,
    lowest address on ties — every router that sees the same candidates
    picks the same node), the winner is told to [promote], and the
    remaining reachable replicas are pointed at its feed with [follow].
    Returns the new primary's feed address. *)
let run_election (topo : Topology.t) : (string, string) result =
  Pobs.Metrics.inc m_elections;
  let pongs =
    Array.map
      (fun (b : Topology.backend) ->
        match Backend_pool.ping b.Topology.b_pool with
        | p -> Some p
        | exception _ -> None)
      topo.Topology.backends
  in
  let claims_primary =
    Array.exists
      (function Some p -> p.Client.p_role = "primary" | None -> false)
      pongs
  in
  if claims_primary then Error "a primary is still reachable; election aborted"
  else begin
    let candidates = ref [] in
    Array.iteri
      (fun i (b : Topology.backend) ->
        match pongs.(i) with
        | Some p when p.Client.p_role = "replica" ->
            candidates := (b.Topology.b_addr, p.Client.p_lsn) :: !candidates
        | _ -> ())
      topo.Topology.backends;
    match Topology.elect !candidates with
    | None -> Error "no reachable replica to promote"
    | Some addr -> (
        let b = Option.get (Topology.backend_by_addr topo addr) in
        match Backend_pool.ctl b.Topology.b_pool ~verb:"promote" ~arg:"" with
        | Client.Ok repl_addr ->
            topo.Topology.current_primary <- Some addr;
            b.b_role <- "primary";
            Array.iteri
              (fun i (ob : Topology.backend) ->
                if ob.Topology.b_addr <> addr then
                  match pongs.(i) with
                  | Some p when p.Client.p_role = "replica" -> (
                      try
                        ignore
                          (Backend_pool.ctl ob.Topology.b_pool ~verb:"follow"
                             ~arg:repl_addr)
                      with _ -> ())
                  | _ -> ())
              topo.Topology.backends;
            Ok repl_addr
        | Client.Err m -> Error ("promote refused by " ^ addr ^ ": " ^ m)
        | exception e ->
            Error ("promote of " ^ addr ^ " failed: " ^ Printexc.to_string e))
  end

(** Resolve a dual-primary observation: the router's designated primary
    wins if it is among the claimants (LSNs from different stream
    incarnations are not comparable, so designation beats LSN);
    otherwise the election rule decides.  Losers are demoted to follow
    the winner's feed. *)
let resolve_dual (topo : Topology.t) (prims : Topology.backend list) : unit =
  match prims with
  | [] | [ _ ] -> ()
  | _ ->
      let winner =
        match topo.Topology.current_primary with
        | Some addr
          when List.exists (fun (b : Topology.backend) -> b.Topology.b_addr = addr) prims
          ->
            List.find (fun (b : Topology.backend) -> b.Topology.b_addr = addr) prims
        | _ -> (
            match
              Topology.elect
                (List.map
                   (fun (b : Topology.backend) -> (b.Topology.b_addr, b.b_lsn))
                   prims)
            with
            | Some a ->
                List.find (fun (b : Topology.backend) -> b.Topology.b_addr = a) prims
            | None -> List.hd prims)
      in
      topo.Topology.current_primary <- Some winner.Topology.b_addr;
      let w_repl =
        Printf.sprintf "%s:%d" winner.Topology.b_host winner.Topology.b_repl_port
      in
      List.iter
        (fun (b : Topology.backend) ->
          if b != winner then begin
            (try
               ignore (Backend_pool.ctl b.Topology.b_pool ~verb:"demote" ~arg:w_repl)
             with _ -> ());
            b.b_role <- "unknown"
          end)
        prims
