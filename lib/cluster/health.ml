(** Health checking: the probe loop that keeps {!Topology} honest and
    raises the failover triggers.

    Every backend is probed with a binary [Ping] each tick; a pong
    refreshes role, durable LSN, stream id and replication port.  A
    probe failure bumps a consecutive-failure streak; [fail_threshold]
    consecutive misses mark the backend unhealthy — one dropped packet
    or a slow GC pause must not trigger an election.

    Two conditions fire callbacks (from the monitor thread):
    - [on_primary_down]: the primary is unhealthy and at least one
      healthy replica is reachable — sustained failure, promote someone.
      Latched: it fires once per outage, re-arming only after a healthy
      primary is observed again.
    - [on_dual_primary]: two healthy backends both claim the primary
      role — the post-failover rejoin case; the resolver demotes the
      loser. *)

open Pserver

let g_healthy =
  Pobs.Metrics.gauge "pdb_cluster_backends_healthy"
    ~help:"Backends currently passing health checks"

let m_probes =
  Pobs.Metrics.counter "pdb_cluster_probes_total" ~help:"Health probes sent"

let m_probe_failures =
  Pobs.Metrics.counter "pdb_cluster_probe_failures_total"
    ~help:"Health probes that failed"

let m_primary_down =
  Pobs.Metrics.counter "pdb_cluster_primary_down_total"
    ~help:"Sustained primary failures detected"

type monitor = {
  topo : Topology.t;
  every_s : float;
  fail_threshold : int;
  mutable on_primary_down : unit -> unit;
  mutable on_dual_primary : Topology.backend list -> unit;
  mutable armed : bool; (* failover latch: fire once per outage *)
  running : bool ref;
  mutable thread : Thread.t option;
}

let create ?(every_s = 0.1) ?(fail_threshold = 3) (topo : Topology.t) : monitor
    =
  {
    topo;
    every_s;
    fail_threshold;
    on_primary_down = (fun () -> ());
    on_dual_primary = (fun _ -> ());
    armed = true;
    running = ref false;
    thread = None;
  }

(** One probe sweep.  Exposed for tests and for the router's initial
    synchronous discovery pass. *)
let probe_once (m : monitor) =
  Array.iter
    (fun (b : Topology.backend) ->
      Pobs.Metrics.inc m_probes;
      match Backend_pool.ping b.Topology.b_pool with
      | pong ->
          b.Topology.b_healthy <- true;
          b.b_fail_streak <- 0;
          b.b_role <- pong.Client.p_role;
          b.b_lsn <- pong.Client.p_lsn;
          b.b_stream_id <- pong.Client.p_stream_id;
          b.b_repl_port <- pong.Client.p_repl_port
      | exception (Client.Backend_down _ | Client.Protocol_error _) ->
          Pobs.Metrics.inc m_probe_failures;
          b.b_fail_streak <- b.b_fail_streak + 1;
          if b.b_fail_streak >= m.fail_threshold then b.Topology.b_healthy <- false)
    m.topo.Topology.backends;
  Pobs.Metrics.seti g_healthy
    (Array.fold_left
       (fun acc (b : Topology.backend) -> acc + if b.Topology.b_healthy then 1 else 0)
       0 m.topo.Topology.backends)

(* Evaluate the triggers after a sweep. *)
let evaluate (m : monitor) =
  let prims = Topology.healthy_primaries m.topo in
  let healthy_replica_exists =
    Array.exists
      (fun (b : Topology.backend) -> b.Topology.b_healthy && b.b_role <> "primary")
      m.topo.Topology.backends
  in
  (match prims with
  | [] when m.armed && healthy_replica_exists ->
      (* No reachable primary at all, but replicas answer: sustained
         primary failure. *)
      m.armed <- false;
      Pobs.Metrics.inc m_primary_down;
      m.on_primary_down ()
  | _ :: _ :: _ -> m.on_dual_primary prims
  | _ -> ());
  (* re-arm once a healthy primary is back *)
  if prims <> [] then m.armed <- true

let start (m : monitor) =
  if not !(m.running) then begin
    m.running := true;
    m.thread <-
      Some
        (Thread.create
           (fun () ->
             while !(m.running) do
               probe_once m;
               evaluate m;
               Thread.delay m.every_s
             done)
           ())
  end

let stop (m : monitor) =
  m.running := false;
  match m.thread with
  | Some th ->
      (try Thread.join th with _ -> ());
      m.thread <- None
  | None -> ()
