(** The Prometheus object layer.

    Sits on the {!Pstore.Store} substrate and implements the extended
    object model of thesis ch. 4: objects, extents, first-class
    relationship instances with semantic checks (exclusivity,
    sharability, lifetime dependency, constancy, cardinality),
    classification contexts, attribute inheritance (roles) and instance
    synonyms.  Every state change emits a primitive event on the
    {!Pevent.Bus} for the rules and view layers.

    All objects are mirrored in memory (write-through to the store);
    abort rebuilds the in-memory mirror from the rolled-back store. *)

open Pstore
open Pevent

exception Model_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Model_error s)) fmt

module OidSet = Set.Make (Int)

(** Secondary indexes are ordered maps over attribute values (under the
    same total order {!Value.compare_value} that the query operators
    [=], [<], [<=] use), so equality probes, range scans and
    LIKE-prefix scans all push down to the index layer.  The previous
    hash-table representation keyed on structural equality, which
    disagreed with [=] on mixed numerics ([VInt 1] vs [VFloat 1.]); the
    ordered map makes index answers exactly the rows an extent scan
    with the same predicate would keep. *)
module ValueMap = Map.Make (struct
  type t = Value.t

  let compare = Value.compare_value
end)

let schema_oid = 1 (* reserved oid holding the serialised schema *)
let synonym_class = "__synonym"

(** Layer-private state attached to the database record itself (the
    query layer's plan cache and counters, the graph layer's CSR
    snapshot managers).  Extensible so upper layers can store their own
    types without this module depending on them; each layer declares a
    constructor and files it under its own key via {!ext_set}.  Living
    on the record, the state shares the database's lifetime exactly —
    no global registry to cap, to leak strong references to closed
    databases, or to reset statistics behind an open database's back. *)
type ext = ..

type t = {
  store : Store.t;
  (* [Some s] marks a frozen snapshot view: reads come from the mirror
     built off [s], mutators are rejected, and [close] releases the
     snapshot instead of closing the (shared) store. *)
  view : Store.Snapshot.s option;
  schema : Meta.t;
  bus : Bus.t;
  (* in-memory mirror *)
  objects : (int, Obj.t) Hashtbl.t;
  extents : (string, OidSet.t ref) Hashtbl.t; (* exact class -> oids *)
  out_rels : (int, OidSet.t ref) Hashtbl.t; (* origin oid -> rel oids *)
  in_rels : (int, OidSet.t ref) Hashtbl.t; (* destination oid -> rel oids *)
  (* secondary attribute indexes: (class, attr) -> ordered value map -> oids *)
  indexes : (string * string, OidSet.t ValueMap.t ref) Hashtbl.t;
  (* bumped on create_index/drop_index and on class/relationship
     definition so cached query plans can detect that their access-path
     and extent-vs-expression choices went stale *)
  mutable index_epoch : int;
  (* layer-private state, keyed by layer (see {!type:ext}); [ext_mu]
     serialises get-or-init so concurrent readers over a shared
     snapshot view can't double-install a layer's state *)
  ext : (string, ext) Hashtbl.t;
  ext_mu : Mutex.t;
  (* instance synonyms: union-find parent map (rebuilt on open) *)
  syn_parent : (int, int) Hashtbl.t;
  (* oids touched in the current transaction, for deferred checks *)
  touched : (int, unit) Hashtbl.t;
  mutable tx_depth : int;
}

(* ---------------------------------------------------------------------- *)
(* Small helpers over the mirror                                           *)
(* ---------------------------------------------------------------------- *)

let set_of tbl key = match Hashtbl.find_opt tbl key with Some r -> !r | None -> OidSet.empty

let add_to tbl key oid =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := OidSet.add oid !r
  | None -> Hashtbl.replace tbl key (ref (OidSet.singleton oid))

let remove_from tbl key oid =
  match Hashtbl.find_opt tbl key with
  | Some r ->
      r := OidSet.remove oid !r;
      if OidSet.is_empty !r then Hashtbl.remove tbl key
  | None -> ()

let schema t = t.schema
let bus t = t.bus
let store t = t.store
let ext_find t key : ext option = Hashtbl.find_opt t.ext key
let ext_set t key (v : ext) = Hashtbl.replace t.ext key v

(** Atomically fetch the layer state under [key], installing [mk ()]
    on first use.  The lock covers lookup + install, so two domains
    racing on a shared snapshot view agree on one state value. *)
let ext_get_or_init t key (mk : unit -> ext) : ext =
  Mutex.lock t.ext_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.ext_mu)
    (fun () ->
      match Hashtbl.find_opt t.ext key with
      | Some v -> v
      | None ->
          let v = mk () in
          Hashtbl.replace t.ext key v;
          v)

let is_view t = t.view <> None

let check_writable t =
  if is_view t then fail "operation not permitted on a read-only snapshot view"
let is_subclass t = fun ~sub ~super -> Meta.is_subclass t.schema ~sub ~super

let get t oid : Obj.t option = Hashtbl.find_opt t.objects oid

let get_exn t oid =
  match get t oid with Some o -> o | None -> fail "no object with oid %d" oid

let class_of t oid = Option.map (fun (o : Obj.t) -> o.Obj.class_name) (get t oid)

let is_rel_instance t (o : Obj.t) = Meta.is_rel t.schema o.Obj.class_name

let touch t oid = if t.tx_depth > 0 then Hashtbl.replace t.touched oid ()

(* ---------------------------------------------------------------------- *)
(* Index maintenance                                                       *)
(* ---------------------------------------------------------------------- *)

let index_covers t ~index_class ~obj_class =
  Meta.is_subclass t.schema ~sub:obj_class ~super:index_class

let map_add table key oid =
  table :=
    ValueMap.update key
      (function Some s -> Some (OidSet.add oid s) | None -> Some (OidSet.singleton oid))
      !table

let map_remove table key oid =
  table :=
    ValueMap.update key
      (function
        | Some s ->
            let s = OidSet.remove oid s in
            if OidSet.is_empty s then None else Some s
        | None -> None)
      !table

let index_add t (o : Obj.t) =
  Hashtbl.iter
    (fun (cls, attr) table ->
      if index_covers t ~index_class:cls ~obj_class:o.Obj.class_name then
        map_add table (Obj.get o attr) o.Obj.oid)
    t.indexes

let index_remove t (o : Obj.t) =
  Hashtbl.iter
    (fun (cls, attr) table ->
      if index_covers t ~index_class:cls ~obj_class:o.Obj.class_name then
        map_remove table (Obj.get o attr) o.Obj.oid)
    t.indexes

let index_update t (o : Obj.t) attr ~old_v ~new_v =
  Hashtbl.iter
    (fun (cls, a) table ->
      if a = attr && index_covers t ~index_class:cls ~obj_class:o.Obj.class_name then begin
        map_remove table old_v o.Obj.oid;
        map_add table new_v o.Obj.oid
      end)
    t.indexes

(* ---------------------------------------------------------------------- *)
(* Mirror (re)construction                                                 *)
(* ---------------------------------------------------------------------- *)

let mirror_insert t (o : Obj.t) =
  Hashtbl.replace t.objects o.Obj.oid o;
  add_to t.extents o.Obj.class_name o.Obj.oid;
  if is_rel_instance t o then begin
    add_to t.out_rels (Obj.origin o) o.Obj.oid;
    add_to t.in_rels (Obj.destination o) o.Obj.oid
  end;
  if o.Obj.class_name = synonym_class then begin
    (* union the two endpoints *)
    let a = Value.as_ref (Obj.get o "a") and b = Value.as_ref (Obj.get o "b") in
    let rec root x = match Hashtbl.find_opt t.syn_parent x with Some p when p <> x -> root p | _ -> x in
    let ra = root a and rb = root b in
    if ra <> rb then Hashtbl.replace t.syn_parent (max ra rb) (min ra rb)
  end;
  index_add t o

let mirror_remove t (o : Obj.t) =
  Hashtbl.remove t.objects o.Obj.oid;
  remove_from t.extents o.Obj.class_name o.Obj.oid;
  if is_rel_instance t o then begin
    remove_from t.out_rels (Obj.origin o) o.Obj.oid;
    remove_from t.in_rels (Obj.destination o) o.Obj.oid
  end;
  index_remove t o

let rebuild_mirror t =
  Hashtbl.reset t.objects;
  Hashtbl.reset t.extents;
  Hashtbl.reset t.out_rels;
  Hashtbl.reset t.in_rels;
  Hashtbl.reset t.syn_parent;
  Hashtbl.iter (fun _ table -> table := ValueMap.empty) t.indexes;
  Store.iter t.store (fun oid data ->
      if oid <> schema_oid then mirror_insert t (Obj.decode ~oid data))

(* ---------------------------------------------------------------------- *)
(* Lifecycle                                                               *)
(* ---------------------------------------------------------------------- *)

let persist_schema t = Store.put t.store ~oid:schema_oid (Meta.encode t.schema)

let register_builtin_classes schema =
  if not (Meta.is_class schema synonym_class) then
    ignore
      (Meta.define_class schema synonym_class
         [ Meta.attr "a" (Value.TRef Meta.object_class); Meta.attr "b" (Value.TRef Meta.object_class) ])

let open_ ?cache_pages ?config ?vfs ?readonly path : t =
  let store = Store.open_ ?cache_pages ?config ?vfs ?readonly path in
  let ro = Store.is_readonly store in
  let schema = Meta.empty () in
  (match Store.get store ~oid:schema_oid with
  | Some data -> Meta.decode_into schema data
  | None ->
      if ro then fail "%s: readonly open of a store with no schema" path;
      let oid = Store.fresh_oid store in
      if oid <> schema_oid then fail "fresh store did not yield the schema oid (got %d)" oid);
  register_builtin_classes schema;
  let bus = Bus.create () in
  let t =
    {
      store;
      view = None;
      schema;
      bus;
      objects = Hashtbl.create 1024;
      extents = Hashtbl.create 64;
      out_rels = Hashtbl.create 1024;
      in_rels = Hashtbl.create 1024;
      indexes = Hashtbl.create 8;
      index_epoch = 0;
      ext = Hashtbl.create 4;
      ext_mu = Mutex.create ();
      syn_parent = Hashtbl.create 64;
      touched = Hashtbl.create 64;
      tx_depth = 0;
    }
  in
  Bus.set_subclass_pred bus (is_subclass t);
  (* A read-only handle (replica serving) must not write: the stored
     schema was decoded above and [register_builtin_classes] is
     idempotent, so skipping the persist loses nothing. *)
  if not ro then persist_schema t;
  rebuild_mirror t;
  t

let close t =
  match t.view with
  | Some s -> Store.Snapshot.release s
  | None -> Store.close t.store

(* ---------------------------------------------------------------------- *)
(* Snapshot views                                                          *)
(* ---------------------------------------------------------------------- *)

(* Build a full database view over a frozen store snapshot: its own
   schema, bus, mirror and layer state, all reconstructed from the
   snapshot's bytes, so it shares nothing mutable with the parent. *)
let of_store_snapshot ~(store : Store.t) (snap : Store.Snapshot.s)
    ~(index_defs : (string * string) list) : t =
  let schema = Meta.empty () in
  (match Store.Snapshot.get snap ~oid:schema_oid with
  | Some data -> Meta.decode_into schema data
  | None -> fail "snapshot: store has no schema record");
  register_builtin_classes schema;
  let bus = Bus.create () in
  let t =
    {
      (* the parent's handle, kept only for stats plumbing: every view
         read goes to the mirror, and [check_writable] fences writes *)
      store;
      view = Some snap;
      schema;
      bus;
      objects = Hashtbl.create 1024;
      extents = Hashtbl.create 64;
      out_rels = Hashtbl.create 1024;
      in_rels = Hashtbl.create 1024;
      indexes = Hashtbl.create 8;
      index_epoch = 0;
      ext = Hashtbl.create 4;
      ext_mu = Mutex.create ();
      syn_parent = Hashtbl.create 64;
      touched = Hashtbl.create 64;
      tx_depth = 0;
    }
  in
  Bus.set_subclass_pred bus (is_subclass t);
  Store.Snapshot.iter snap (fun oid data ->
      if oid <> schema_oid then mirror_insert t (Obj.decode ~oid data));
  (* Rebuild the parent's secondary indexes over the frozen mirror so
     cached plans made against the view see the same access paths. *)
  List.iter
    (fun (cls, attr) ->
      let table = ref ValueMap.empty in
      Hashtbl.replace t.indexes (cls, attr) table;
      Hashtbl.iter
        (fun _ o ->
          if index_covers t ~index_class:cls ~obj_class:o.Obj.class_name then
            map_add table (Obj.get o attr) o.Obj.oid)
        t.objects)
    index_defs;
  t

let index_defs t = Hashtbl.fold (fun k _ acc -> k :: acc) t.indexes []

(** Freeze the current committed state into a read-only database view.

    The view is a complete, self-contained {!t}: queries, extents,
    indexes and graph traversals all work, pinned at the store LSN the
    snapshot captured.  Mutators and transactions are rejected.
    [close] on the view releases the pinned page versions (it never
    touches the parent).  A view is built for one domain; to fan out
    across N domains either [snapshot_clone] it per domain or share one
    view — shared views are safe because all reads go to the immutable
    mirror and layer state is installed under {!ext_get_or_init}. *)
let snapshot (parent : t) : t =
  if is_view parent then fail "snapshot of a snapshot view";
  let defs = index_defs parent in
  of_store_snapshot ~store:parent.store (Store.snapshot parent.store) ~index_defs:defs

(** An independent view of the same frozen LSN (own mirror, own layer
    state) for another domain. *)
let snapshot_clone (v : t) : t =
  match v.view with
  | None -> fail "snapshot_clone of a live database"
  | Some s ->
      of_store_snapshot ~store:v.store (Store.Snapshot.clone s) ~index_defs:(index_defs v)

(** The LSN a snapshot view is frozen at. *)
let view_lsn t =
  match t.view with Some s -> Store.Snapshot.lsn s | None -> Store.lsn t.store

(* ---------------------------------------------------------------------- *)
(* Schema definition (persisted)                                           *)
(* ---------------------------------------------------------------------- *)

(* Schema definition bumps [index_epoch]: compiled plans bake in which
   names denote class extents (Plan.compile's extent-vs-expression
   choice), so a plan cached before a class existed must replan. *)
let define_class t ?supers ?abstract name attrs =
  check_writable t;
  let c = Meta.define_class t.schema ?supers ?abstract name attrs in
  t.index_epoch <- t.index_epoch + 1;
  persist_schema t;
  c

let define_rel t ?supers ?kind ?card_out ?card_in ?exclusive ?sharable ?lifetime_dep ?constant
    ?inherited_attrs ?attrs name ~origin ~destination =
  check_writable t;
  let r =
    Meta.define_rel t.schema ?supers ?kind ?card_out ?card_in ?exclusive ?sharable ?lifetime_dep
      ?constant ?inherited_attrs ?attrs name ~origin ~destination
  in
  t.index_epoch <- t.index_epoch + 1;
  persist_schema t;
  r

(* ---------------------------------------------------------------------- *)
(* Transactions                                                            *)
(* ---------------------------------------------------------------------- *)

let in_tx t = t.tx_depth > 0

let begin_tx t =
  check_writable t;
  if t.tx_depth = 0 then begin
    Store.begin_tx t.store;
    Hashtbl.reset t.touched;
    Bus.emit t.bus Event.Tx_begin
  end;
  t.tx_depth <- t.tx_depth + 1

(** Oids of objects created, updated or linked in the current
    transaction (used for deferred validation). *)
let touched_oids t = Hashtbl.fold (fun oid () acc -> oid :: acc) t.touched []

let commit t =
  if t.tx_depth <= 0 then fail "commit outside transaction";
  if t.tx_depth = 1 then begin
    (* The commit event runs deferred rules; they may raise to veto. *)
    Bus.emit t.bus Event.Tx_commit;
    Store.commit t.store;
    t.tx_depth <- 0;
    Hashtbl.reset t.touched
  end
  else t.tx_depth <- t.tx_depth - 1

let abort t =
  if t.tx_depth <= 0 then fail "abort outside transaction";
  t.tx_depth <- 0;
  Store.abort t.store;
  rebuild_mirror t;
  Hashtbl.reset t.touched;
  Bus.emit t.bus Event.Tx_abort

let with_tx t f =
  begin_tx t;
  match f () with
  | v ->
      (match commit t with
      | () -> v
      | exception e ->
          if t.tx_depth > 0 || Store.in_tx t.store then abort t;
          raise e)
  | exception e ->
      abort t;
      raise e

(* ---------------------------------------------------------------------- *)
(* Attribute validation                                                    *)
(* ---------------------------------------------------------------------- *)

let check_attr_value t ~owner_class (def : Meta.attr_def) (v : Value.t) =
  if
    not
      (Value.conforms ~is_subclass:(is_subclass t) ~class_of:(class_of t) v def.Meta.attr_ty)
  then
    fail "%s.%s: value %a does not conform to type %a" owner_class def.Meta.attr_name Value.pp v
      Value.pp_ty def.Meta.attr_ty

let validated_attrs t ~class_name (attrs : (string * Value.t) list) : (string * Value.t) list =
  let defs = Meta.all_attrs t.schema class_name in
  List.iter
    (fun (k, _) ->
      if Obj.is_reserved_attr k then ()
      else if not (List.exists (fun (d : Meta.attr_def) -> d.Meta.attr_name = k) defs) then
        fail "class %s has no attribute %s" class_name k)
    attrs;
  List.filter_map
    (fun (d : Meta.attr_def) ->
      let v =
        match List.assoc_opt d.Meta.attr_name attrs with
        | Some v -> v
        | None -> d.Meta.default
      in
      check_attr_value t ~owner_class:class_name d v;
      if d.Meta.required && Value.is_null v then
        fail "class %s: required attribute %s is null" class_name d.Meta.attr_name;
      if Value.is_null v then None else Some (d.Meta.attr_name, v))
    defs
  @ List.filter (fun (k, _) -> Obj.is_reserved_attr k) attrs

(* ---------------------------------------------------------------------- *)
(* Object creation / update / deletion                                     *)
(* ---------------------------------------------------------------------- *)

let persist t (o : Obj.t) = Store.put t.store ~oid:o.Obj.oid (Obj.encode o)

let create t class_name (attrs : (string * Value.t) list) : int =
  check_writable t;
  let cdef = Meta.class_exn t.schema class_name in
  if cdef.Meta.abstract then fail "cannot instantiate abstract class %s" class_name;
  let attrs = validated_attrs t ~class_name attrs in
  let oid = Store.fresh_oid t.store in
  let o = Obj.make ~oid ~class_name attrs in
  persist t o;
  mirror_insert t o;
  touch t oid;
  Bus.emit t.bus (Event.Obj_created { oid; class_name });
  oid

let update t oid attr (v : Value.t) : unit =
  check_writable t;
  let o = get_exn t oid in
  if Obj.is_reserved_attr attr then fail "attribute %s is reserved" attr;
  (match Meta.find_attr t.schema o.Obj.class_name attr with
  | None -> fail "class %s has no attribute %s" o.Obj.class_name attr
  | Some def ->
      check_attr_value t ~owner_class:o.Obj.class_name def v;
      if def.Meta.required && Value.is_null v then
        fail "class %s: required attribute %s cannot be set to null" o.Obj.class_name attr);
  (* constancy of relationship instances covers user attributes too *)
  (if is_rel_instance t o then
     let rdef = Meta.rel_exn t.schema o.Obj.class_name in
     if rdef.Meta.constant then fail "relationship %s is constant" o.Obj.class_name);
  let old_v = Obj.get o attr in
  Obj.set o attr v;
  persist t o;
  index_update t o attr ~old_v ~new_v:v;
  touch t oid;
  if is_rel_instance t o then
    Bus.emit t.bus
      (Event.Rel_updated
         { oid; rel_name = o.Obj.class_name; origin = Obj.origin o; destination = Obj.destination o; attr })
  else Bus.emit t.bus (Event.Obj_updated { oid; class_name = o.Obj.class_name; attr })

(* forward declaration for mutual recursion with cascade delete *)
let rec delete t oid : unit =
  check_writable t;
  match get t oid with
  | None -> () (* already gone (e.g. via a cascade) *)
  | Some o ->
      if is_rel_instance t o then delete_rel_instance t o
      else begin
        (* Remove all relationship instances touching this object; apply
           lifetime dependency along outgoing relationships. *)
        let outgoing = OidSet.elements (set_of t.out_rels oid) in
        let incoming = OidSet.elements (set_of t.in_rels oid) in
        let cascade_candidates = ref [] in
        List.iter
          (fun rel_oid ->
            match get t rel_oid with
            | None -> ()
            | Some r ->
                let rdef = Meta.rel_exn t.schema r.Obj.class_name in
                let dest = Obj.destination r in
                delete_rel_instance t r;
                if rdef.Meta.lifetime_dep then cascade_candidates := dest :: !cascade_candidates)
          outgoing;
        List.iter
          (fun rel_oid -> match get t rel_oid with None -> () | Some r -> delete_rel_instance t r)
          incoming;
        mirror_remove t o;
        ignore (Store.delete t.store ~oid);
        touch t oid;
        Bus.emit t.bus (Event.Obj_deleted { oid; class_name = o.Obj.class_name });
        (* a dependent destination survives only if another lifetime-
           dependent relationship still reaches it *)
        List.iter
          (fun dest ->
            match get t dest with
            | None -> ()
            | Some _ ->
                let still_supported =
                  OidSet.exists
                    (fun rel_oid ->
                      match get t rel_oid with
                      | None -> false
                      | Some r ->
                          (Meta.rel_exn t.schema r.Obj.class_name).Meta.lifetime_dep)
                    (set_of t.in_rels dest)
                in
                if not still_supported then delete t dest)
          !cascade_candidates
      end

and delete_rel_instance t (r : Obj.t) =
  mirror_remove t r;
  ignore (Store.delete t.store ~oid:r.Obj.oid);
  touch t r.Obj.oid;
  Bus.emit t.bus
    (Event.Rel_deleted
       {
         oid = r.Obj.oid;
         rel_name = r.Obj.class_name;
         origin = Obj.origin r;
         destination = Obj.destination r;
       })

(* ---------------------------------------------------------------------- *)
(* Relationships                                                           *)
(* ---------------------------------------------------------------------- *)

let rel_instances_between t ~rel_name ~origin ~destination =
  OidSet.filter
    (fun rel_oid ->
      match get t rel_oid with
      | Some r -> r.Obj.class_name = rel_name && Obj.destination r = destination
      | None -> false)
    (set_of t.out_rels origin)

(** Incoming instances of relationship class [rel_name] (including its
    sub-relationship-classes) at [destination], optionally filtered by
    classification context. *)
let incoming t ?context ~rel_name destination : Obj.t list =
  OidSet.fold
    (fun rel_oid acc ->
      match get t rel_oid with
      | Some r
        when Meta.is_subclass t.schema ~sub:r.Obj.class_name ~super:rel_name
             && (match context with None -> true | Some c -> Obj.context r = Some c) ->
          r :: acc
      | _ -> acc)
    (set_of t.in_rels destination)
    []

let outgoing t ?context ~rel_name origin : Obj.t list =
  OidSet.fold
    (fun rel_oid acc ->
      match get t rel_oid with
      | Some r
        when Meta.is_subclass t.schema ~sub:r.Obj.class_name ~super:rel_name
             && (match context with None -> true | Some c -> Obj.context r = Some c) ->
          r :: acc
      | _ -> acc)
    (set_of t.out_rels origin)
    []

(** All relationship instances touching [oid] (either end). *)
let rels_of t oid : Obj.t list =
  let collect set acc =
    OidSet.fold (fun r acc -> match get t r with Some o -> o :: acc | None -> acc) set acc
  in
  collect (set_of t.out_rels oid) (collect (set_of t.in_rels oid) [])

let check_endpoint t ~rel_name ~role ~expected oid =
  match class_of t oid with
  | None -> fail "%s: %s object #%d does not exist" rel_name role oid
  | Some c ->
      if not (Meta.is_subclass t.schema ~sub:c ~super:expected) then
        fail "%s: %s object #%d has class %s, expected %s" rel_name role oid c expected

let semantic_checks t (rdef : Meta.rel_def) ~origin ~destination ~context =
  let ctx = context in
  (* exclusivity: at most one incoming instance of this relationship
     class per destination within one context *)
  if rdef.Meta.exclusive then begin
    let existing = incoming t ?context:None ~rel_name:rdef.Meta.rel_name destination in
    let same_ctx = List.filter (fun r -> Obj.context r = ctx) existing in
    if same_ctx <> [] then
      fail "%s: destination #%d already classified in this context (exclusive relationship)"
        rdef.Meta.rel_name destination
  end;
  (* sharability: if not sharable, at most one incoming instance across
     all contexts *)
  if not rdef.Meta.sharable then begin
    let existing = incoming t ~rel_name:rdef.Meta.rel_name destination in
    if existing <> [] then
      fail "%s: destination #%d is already part of a non-sharable relationship"
        rdef.Meta.rel_name destination
  end;
  (* maximum cardinalities (minima are validated at commit) *)
  (match rdef.Meta.card_out.Meta.cmax with
  | Some m ->
      let n =
        List.length
          (List.filter
             (fun r -> Obj.context r = ctx)
             (outgoing t ~rel_name:rdef.Meta.rel_name origin))
      in
      if n >= m then
        fail "%s: origin #%d already has %d outgoing instances (max %d)" rdef.Meta.rel_name origin
          n m
  | None -> ());
  match rdef.Meta.card_in.Meta.cmax with
  | Some m ->
      let n =
        List.length
          (List.filter
             (fun r -> Obj.context r = ctx)
             (incoming t ~rel_name:rdef.Meta.rel_name destination))
      in
      if n >= m then
        fail "%s: destination #%d already has %d incoming instances (max %d)" rdef.Meta.rel_name
          destination n m
  | None -> ()

(** Create a relationship instance (a link) of class [rel_name] from
    [origin] to [destination], optionally inside classification context
    [context], with user attributes [attrs]. *)
let link t ?context ?(attrs = []) rel_name ~origin ~destination : int =
  check_writable t;
  let rdef = Meta.rel_exn t.schema rel_name in
  check_endpoint t ~rel_name ~role:"origin" ~expected:rdef.Meta.origin origin;
  check_endpoint t ~rel_name ~role:"destination" ~expected:rdef.Meta.destination destination;
  (match context with
  | Some c -> (
      match class_of t c with
      | Some cls when Meta.is_subclass t.schema ~sub:cls ~super:"Context" -> ()
      | _ -> fail "%s: #%d is not a classification context" rel_name c)
  | None -> ());
  semantic_checks t rdef ~origin ~destination ~context;
  let attrs = validated_attrs t ~class_name:rel_name attrs in
  let oid = Store.fresh_oid t.store in
  let reserved =
    [ (Obj.origin_attr, Value.VRef origin); (Obj.destination_attr, Value.VRef destination) ]
    @ match context with Some c -> [ (Obj.context_attr, Value.VRef c) ] | None -> []
  in
  let o = Obj.make ~oid ~class_name:rel_name (attrs @ reserved) in
  persist t o;
  mirror_insert t o;
  touch t oid;
  touch t origin;
  touch t destination;
  Bus.emit t.bus (Event.Rel_created { oid; rel_name; origin; destination });
  oid

(** Remove a link by its oid. *)
let unlink t rel_oid =
  check_writable t;
  match get t rel_oid with
  | Some r when is_rel_instance t r ->
      let rdef = Meta.rel_exn t.schema r.Obj.class_name in
      if rdef.Meta.constant then fail "relationship %s is constant: cannot unlink" r.Obj.class_name;
      touch t (Obj.origin r);
      touch t (Obj.destination r);
      delete_rel_instance t r
  | Some _ -> fail "#%d is not a relationship instance" rel_oid
  | None -> fail "no relationship with oid %d" rel_oid

(** Re-target a relationship instance (move a link).  Violates
    constancy if the relationship class is constant. *)
let retarget t rel_oid ?origin ?destination () =
  check_writable t;
  let r = get_exn t rel_oid in
  if not (is_rel_instance t r) then fail "#%d is not a relationship instance" rel_oid;
  let rdef = Meta.rel_exn t.schema r.Obj.class_name in
  if rdef.Meta.constant then fail "relationship %s is constant: cannot retarget" r.Obj.class_name;
  let new_origin = Option.value origin ~default:(Obj.origin r) in
  let new_destination = Option.value destination ~default:(Obj.destination r) in
  check_endpoint t ~rel_name:r.Obj.class_name ~role:"origin" ~expected:rdef.Meta.origin new_origin;
  check_endpoint t ~rel_name:r.Obj.class_name ~role:"destination" ~expected:rdef.Meta.destination
    new_destination;
  (* temporarily remove from adjacency so checks don't count self *)
  mirror_remove t r;
  (match semantic_checks t rdef ~origin:new_origin ~destination:new_destination ~context:(Obj.context r) with
  | () -> ()
  | exception e ->
      mirror_insert t r;
      raise e);
  Obj.set r Obj.origin_attr (Value.VRef new_origin);
  Obj.set r Obj.destination_attr (Value.VRef new_destination);
  persist t r;
  mirror_insert t r;
  touch t rel_oid;
  touch t new_origin;
  touch t new_destination;
  Bus.emit t.bus
    (Event.Rel_updated
       {
         oid = rel_oid;
         rel_name = r.Obj.class_name;
         origin = new_origin;
         destination = new_destination;
         attr = "__endpoints";
       })

(* ---------------------------------------------------------------------- *)
(* Extents                                                                 *)
(* ---------------------------------------------------------------------- *)

(** Extent of a class.  [deep] (default) includes subclasses, as in
    ODMG. *)
let extent t ?(deep = true) class_name : OidSet.t =
  if deep then
    let classes =
      if Meta.is_rel t.schema class_name then Meta.rel_subclasses t.schema class_name
      else Meta.subclasses t.schema class_name
    in
    List.fold_left (fun acc c -> OidSet.union acc (set_of t.extents c)) OidSet.empty classes
  else set_of t.extents class_name

let extent_list t ?deep class_name = OidSet.elements (extent t ?deep class_name)
let count t ?deep class_name = OidSet.cardinal (extent t ?deep class_name)

let iter_objects t f = Hashtbl.iter (fun _ o -> f o) t.objects

(* ---------------------------------------------------------------------- *)
(* Attribute access with role inheritance (thesis 4.4.5)                   *)
(* ---------------------------------------------------------------------- *)

(** Get an attribute of an object.  If the object itself has no such
    attribute, incoming relationship instances whose class declares the
    attribute as inherited are consulted: the object has acquired a
    role.  E.g. a specimen targeted by a [TypeOf] relationship acquires
    the relationship's [kind] attribute. *)
let get_attr t oid attr : Value.t =
  let o = get_exn t oid in
  match Obj.get o attr with
  | Value.VNull
    when not (List.exists (fun (d : Meta.attr_def) -> d.Meta.attr_name = attr)
                (Meta.all_attrs t.schema o.Obj.class_name)) -> (
      (* look for an inherited (role) attribute on incoming relationships *)
      let candidates =
        OidSet.fold
          (fun rel_oid acc ->
            match get t rel_oid with
            | Some r ->
                let rdef = Meta.rel_exn t.schema r.Obj.class_name in
                if List.mem attr rdef.Meta.inherited_attrs then Obj.get r attr :: acc else acc
            | None -> acc)
          (set_of t.in_rels oid)
          []
      in
      match candidates with
      | [] -> Value.VNull
      | [ v ] -> v
      | vs -> Value.vset vs (* several roles: the object sees the set *))
  | v -> v

(** Does [oid] currently play a role conferred by relationship class
    [rel_name] (i.e. is it the destination of such a relationship)? *)
let has_role t oid ~rel_name = incoming t ~rel_name oid <> []

(* ---------------------------------------------------------------------- *)
(* Classification contexts (thesis 4.6)                                    *)
(* ---------------------------------------------------------------------- *)

let create_context t ?(description = "") name : int =
  create t "Context" [ ("name", Value.VString name); ("description", Value.VString description) ]

let contexts t : (int * string) list =
  OidSet.fold
    (fun oid acc ->
      match get t oid with
      | Some o -> (oid, Value.as_string (Obj.get o "name")) :: acc
      | None -> acc)
    (extent t "Context") []

let find_context t name =
  List.find_map (fun (oid, n) -> if n = name then Some oid else None) (contexts t)

(** All relationship instances belonging to context [ctx]. *)
let context_rels t ctx : Obj.t list =
  Hashtbl.fold
    (fun _ o acc ->
      if is_rel_instance t o && Obj.context o = Some ctx then o :: acc else acc)
    t.objects []

(* ---------------------------------------------------------------------- *)
(* Instance synonyms (thesis 4.5)                                          *)
(* ---------------------------------------------------------------------- *)

let rec syn_root t x =
  match Hashtbl.find_opt t.syn_parent x with Some p when p <> x -> syn_root t p | _ -> x

(** Declare that two instances denote the same real-world entity. *)
let declare_synonym t a b : unit =
  ignore (get_exn t a);
  ignore (get_exn t b);
  ignore (create t synonym_class [ ("a", Value.VRef a); ("b", Value.VRef b) ])

let same_entity t a b = syn_root t a = syn_root t b

let synonym_set t a : OidSet.t =
  let ra = syn_root t a in
  Hashtbl.fold
    (fun oid _ acc -> if syn_root t oid = ra then OidSet.add oid acc else acc)
    t.syn_parent
    (OidSet.singleton a)

(* ---------------------------------------------------------------------- *)
(* Secondary indexes (index layer, thesis 6.1.4)                           *)
(* ---------------------------------------------------------------------- *)

let create_index t class_name attr =
  let key = (class_name, attr) in
  if not (Hashtbl.mem t.indexes key) then begin
    let table = ref ValueMap.empty in
    Hashtbl.replace t.indexes key table;
    t.index_epoch <- t.index_epoch + 1;
    iter_objects t (fun o ->
        if index_covers t ~index_class:class_name ~obj_class:o.Obj.class_name then
          map_add table (Obj.get o attr) o.Obj.oid)
  end

let drop_index t class_name attr =
  if Hashtbl.mem t.indexes (class_name, attr) then begin
    Hashtbl.remove t.indexes (class_name, attr);
    t.index_epoch <- t.index_epoch + 1
  end

let has_index t class_name attr = Hashtbl.mem t.indexes (class_name, attr)

(** Monotone counter bumped by {!create_index}/{!drop_index} and by
    {!define_class}/{!define_rel}; cached query plans carry the epoch
    they were compiled under and replan when it moves — plans bake in
    both access-path choices and which names denote class extents. *)
let index_epoch t = t.index_epoch

let index_lookup t class_name attr (v : Value.t) : OidSet.t option =
  match Hashtbl.find_opt t.indexes (class_name, attr) with
  | Some table -> Some (Option.value ~default:OidSet.empty (ValueMap.find_opt v !table))
  | None -> None

(** Ordered range scan over an index.  Bounds are [(value, inclusive)];
    a missing bound is unbounded on that side.  Returns [None] when no
    index exists on [(class_name, attr)].  The order is
    {!Value.compare_value} — the same total order the [<]/[<=] query
    operators use, so the result is exactly the candidate superset an
    extent scan with the same comparison predicates would keep. *)
let index_range t class_name attr ?lo ?hi () : OidSet.t option =
  match Hashtbl.find_opt t.indexes (class_name, attr) with
  | None -> None
  | Some table ->
      let above_lo k =
        match lo with
        | None -> true
        | Some (v, incl) ->
            let c = Value.compare_value v k in
            if incl then c <= 0 else c < 0
      and below_hi k =
        match hi with
        | None -> true
        | Some (v, incl) ->
            let c = Value.compare_value k v in
            if incl then c <= 0 else c < 0
      in
      let seq =
        match lo with
        | Some (v, _) -> ValueMap.to_seq_from v !table
        | None -> ValueMap.to_seq !table
      in
      let acc = ref OidSet.empty in
      let rec go s =
        match s () with
        | Seq.Nil -> ()
        | Seq.Cons ((k, oids), rest) ->
            (* keys ascend: the first key past [hi] ends the scan *)
            if below_hi k then begin
              if above_lo k then acc := OidSet.union !acc oids;
              go rest
            end
      in
      go seq;
      Some !acc

(** All oids whose indexed string value starts with [prefix] (the
    LIKE-'abc%' pushdown).  Strings sharing a prefix are contiguous
    under {!Value.compare_value}, so this is one bounded map walk.
    [None] when no index exists — or when the index holds any
    non-string key: evaluating [like] on such a row raises in the
    interpreter ([Value.as_string]), and a prefix scan that silently
    skipped the row would turn that error into a success.  Declining
    the pushdown keeps the optimized path bit-identical to the legacy
    one, error semantics included.  Strings are one contiguous block of
    the value order, so "only string keys" is just "both extreme keys
    are strings" — two O(log n) probes, no full scan. *)
let index_string_prefix t class_name attr prefix : OidSet.t option =
  match Hashtbl.find_opt t.indexes (class_name, attr) with
  | None -> None
  | Some table
    when (not (ValueMap.is_empty !table))
         && not
              (match (ValueMap.min_binding !table, ValueMap.max_binding !table) with
              | (Value.VString _, _), (Value.VString _, _) -> true
              | _ -> false) ->
      None
  | Some table ->
      let plen = String.length prefix in
      let acc = ref OidSet.empty in
      let rec go s =
        match s () with
        | Seq.Nil -> ()
        | Seq.Cons ((k, oids), rest) -> (
            match k with
            | Value.VString str
              when String.length str >= plen && String.sub str 0 plen = prefix ->
                acc := OidSet.union !acc oids;
                go rest
            | _ -> () (* past the contiguous prefix block *))
      in
      go (ValueMap.to_seq_from (Value.VString prefix) !table);
      Some !acc

(* ---------------------------------------------------------------------- *)
(* Deferred validation: minimum cardinalities                              *)
(* ---------------------------------------------------------------------- *)

(** Validate minimum-cardinality constraints for the objects touched in
    the current transaction.  Called by the rules layer at commit. *)
let validate_min_cards t : string list =
  let errors = ref [] in
  let check_obj oid =
    match get t oid with
    | None -> ()
    | Some o when is_rel_instance t o -> ()
    | Some o ->
        List.iter
          (fun (rdef : Meta.rel_def) ->
            (if rdef.Meta.card_out.Meta.cmin > 0
               && Meta.is_subclass t.schema ~sub:o.Obj.class_name ~super:rdef.Meta.origin
             then
               let n = List.length (outgoing t ~rel_name:rdef.Meta.rel_name oid) in
               if n < rdef.Meta.card_out.Meta.cmin then
                 errors :=
                   Format.asprintf "%s: origin #%d has %d outgoing instances, minimum %d"
                     rdef.Meta.rel_name oid n rdef.Meta.card_out.Meta.cmin
                   :: !errors);
            if rdef.Meta.card_in.Meta.cmin > 0
               && Meta.is_subclass t.schema ~sub:o.Obj.class_name ~super:rdef.Meta.destination
            then
              let n = List.length (incoming t ~rel_name:rdef.Meta.rel_name oid) in
              if n < rdef.Meta.card_in.Meta.cmin then
                errors :=
                  Format.asprintf "%s: destination #%d has %d incoming instances, minimum %d"
                    rdef.Meta.rel_name oid n rdef.Meta.card_in.Meta.cmin
                  :: !errors)
          (Meta.rels t.schema)
  in
  List.iter check_obj (touched_oids t);
  !errors

(* ---------------------------------------------------------------------- *)
(* Group writer                                                            *)
(* ---------------------------------------------------------------------- *)

(** Objects in the mirror (relationship instances included, the
    reserved schema record excluded).  Unlike {!Store.count}, which
    walks the live B-tree through the page cache, this is safe to call
    from any thread while a {!Writer} is running. *)
let object_count t = Hashtbl.length t.objects

(** Group-commit write routing for the model layer.

    [start] hands the store's write path to a {!Store.Group} writer
    domain; [submit] runs a mutation body in that domain as one soft
    transaction and blocks until it is durable, returning the commit
    LSN.  Concurrent submitters batch into shared fsync cycles.  A body
    that raises is rolled back (store pages soft-aborted, mirror
    rebuilt via the group's rollback hook) and its exception re-raised
    at the submitter.

    While a writer is running, the database must not be driven through
    [begin_tx]/[with_tx] or bare mutators from other threads — the
    writer domain owns the write path.  Bodies must not open
    database-level transactions either: each body already runs inside
    the group's transaction envelope, so deferred (commit-time) rule
    validation does not fire for them, exactly as for out-of-tx
    mutators. *)
module Writer = struct
  type db = t

  type w = { w_db : db; w_group : Store.Group.g }

  let start ?max_batch ?queue_cap (db : db) : w =
    check_writable db;
    if in_tx db then fail "writer start inside a transaction";
    let g =
      Store.Group.start ?max_batch ?queue_cap
        ~on_rollback:(fun () -> rebuild_mirror db)
        db.store
    in
    { w_db = db; w_group = g }

  (** Run a mutation body in the writer domain; blocks until durable
      and returns [(commit lsn, result)]. *)
  let submit (w : w) (f : db -> 'a) : int * 'a =
    let out = ref None in
    let lsn = Store.Group.submit w.w_group (fun _st -> out := Some (f w.w_db)) in
    match !out with Some v -> (lsn, v) | None -> assert false

  (** Run a read-only body in the writer domain, serialised with the
      mutation stream — the safe way to read the live handle while a
      writer is running.  The body's exception (if any) is returned
      rather than treated as a rollback: the body must not mutate. *)
  let read (w : w) (f : db -> 'a) : int * ('a, exn) result =
    let out = ref (Error Store.Group.Stopped) in
    let lsn =
      Store.Group.submit w.w_group (fun _st ->
          out := (try Ok (f w.w_db) with e -> Error e))
    in
    (lsn, !out)

  let stop (w : w) = Store.Group.stop w.w_group
  let stats (w : w) = Store.Group.group_stats w.w_group
end
