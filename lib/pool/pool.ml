(** POOL front-end: parse and run queries against a database.

    {[
      let open Pool_lang in
      let rows = Pool.query db "select p.name from Person p where p.age > 30" in
      ...
    ]} *)

open Pmodel

type plan = { ast : Ast.expr; used_index : bool }

let parse = Parser.parse

(** Execution configuration: {!Eval.default_config} runs the
    plan-then-run engine (index pushdown, hash joins, CSR traversal),
    {!Eval.legacy_config} the original tree-walking interpreter. *)
let default_config = Eval.default_config

let legacy_config = Eval.legacy_config

(** Run a POOL query string; returns the result value (a [VList] of
    rows for select queries). *)
let query ?(env = []) ?config (db : Database.t) (src : string) : Value.t =
  let ast = Parser.parse src in
  let st = Eval.make_state ?config db in
  Eval.eval st env ast

(** Run a query and return the rows of a select as a list. *)
let rows ?env ?config db src : Value.t list =
  match query ?env ?config db src with
  | Value.VList l | Value.VSet l | Value.VBag l -> l
  | v -> [ v ]

(** Run a query expected to produce a single scalar (e.g.
    [count(select ...)]). *)
let scalar ?env ?config db src : Value.t =
  match query ?env ?config db src with Value.VList [ v ] -> v | v -> v

(** Run a query and report whether an index probe was used — exposed
    for the index-ablation benchmark. *)
let query_explain ?(env = []) ?config db src : Value.t * [ `Index_probe | `Extent_scan ] =
  let ast = Parser.parse src in
  let st = Eval.make_state ?config db in
  let v = Eval.eval st env ast in
  ((v : Value.t), if st.Eval.index_probes > 0 then `Index_probe else `Extent_scan)

(** Compile a query and render its physical plan (EXPLAIN). *)
let explain ?(env = []) db src : string =
  match Parser.parse src with
  | Ast.Select s -> Plan.describe (Plan.compile db ~bound:(List.map fst env) s)
  | _ -> "expr"

(** Evaluate a boolean POOL expression — used by rule conditions. *)
let check ?(env = []) ?config db src : bool =
  match query ~env ?config db src with
  | Value.VBool b -> b
  | Value.VList l -> l <> []
  | v -> not (Value.is_null v)

(** Cumulative query-engine statistics for [db] (probes, range scans,
    hash joins, plan-cache hits/misses, CSR rebuilds). *)
let stats = Eval.db_stats
