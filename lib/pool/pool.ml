(** POOL front-end: parse and run queries against a database.

    {[
      let open Pool_lang in
      let rows = Pool.query db "select p.name from Person p where p.age > 30" in
      ...
    ]} *)

open Pmodel

type plan = { ast : Ast.expr; used_index : bool }

let parse = Parser.parse

(** Execution configuration: {!Eval.default_config} runs the
    plan-then-run engine (index pushdown, hash joins, CSR traversal),
    {!Eval.legacy_config} the original tree-walking interpreter. *)
let default_config = Eval.default_config

let legacy_config = Eval.legacy_config

let m_queries = Pobs.Metrics.counter "pdb_queries_total" ~help:"POOL queries run"

let m_query_errors =
  Pobs.Metrics.counter "pdb_query_errors_total" ~help:"POOL queries that raised"

let m_parse_ns = Pobs.Metrics.histogram "pdb_query_parse_ns" ~help:"POOL parse time"

(* One histogram per dominant access path, registered up front so all
   kinds appear in /metrics from the first scrape. *)
let exec_kinds = [ "hash_join"; "index_probe"; "range_scan"; "extent_scan"; "expr" ]

let m_exec_ns =
  List.map
    (fun k ->
      ( k,
        Pobs.Metrics.histogram "pdb_query_exec_ns" ~labels:[ ("kind", k) ]
          ~help:"POOL execution time by dominant access path" ))
    exec_kinds

(* The dominant access path actually taken, from the per-query state
   counters — no plan plumbing needed, and it is accurate for the
   legacy interpreter too. *)
let kind_of_state (st : Eval.state) : string =
  if st.Eval.hash_joins > 0 then "hash_join"
  else if st.Eval.index_probes > 0 then "index_probe"
  else if st.Eval.range_scans > 0 then "range_scan"
  else if st.Eval.extent_scans > 0 then "extent_scan"
  else "expr"

(** Run a POOL query string; returns the result value (a [VList] of
    rows for select queries). *)
let query ?(env = []) ?config (db : Database.t) (src : string) : Value.t =
  if not !Pobs.Metrics.enabled then begin
    (* metrics off: the untimed PR3 hot path, one branch of overhead *)
    let ast = Pobs.Trace.with_span "pool.parse" (fun () -> Parser.parse src) in
    let st = Eval.make_state ?config db in
    Pobs.Trace.with_span "pool.exec" (fun () -> Eval.eval st env ast)
  end
  else
    Pobs.Trace.with_span "pool.query" ~attrs:[ ("query", src) ] (fun () ->
        Pobs.Metrics.inc m_queries;
        match
          let ast =
            Pobs.Trace.with_span "pool.parse" (fun () ->
                Pobs.Metrics.time m_parse_ns (fun () -> Parser.parse src))
          in
          let st = Eval.make_state ?config db in
          let t0 = Pobs.Monotonic.now_ns () in
          let v = Pobs.Trace.with_span "pool.exec" (fun () -> Eval.eval st env ast) in
          let dur_ns = Pobs.Monotonic.now_ns () - t0 in
          let kind = kind_of_state st in
          (match List.assoc_opt kind m_exec_ns with
          | Some h -> Pobs.Metrics.observe_ns h dur_ns
          | None -> ());
          Pobs.Trace.add_attr "kind" kind;
          Pobs.Slowlog.note ~kind ~dur_ns src;
          v
        with
        | v -> v
        | exception e ->
            Pobs.Metrics.inc m_query_errors;
            raise e)

(** Run a query and return the rows of a select as a list. *)
let rows ?env ?config db src : Value.t list =
  match query ?env ?config db src with
  | Value.VList l | Value.VSet l | Value.VBag l -> l
  | v -> [ v ]

(** Run a query expected to produce a single scalar (e.g.
    [count(select ...)]). *)
let scalar ?env ?config db src : Value.t =
  match query ?env ?config db src with Value.VList [ v ] -> v | v -> v

(** Run a query and report whether an index probe was used — exposed
    for the index-ablation benchmark. *)
let query_explain ?(env = []) ?config db src : Value.t * [ `Index_probe | `Extent_scan ] =
  let ast = Parser.parse src in
  let st = Eval.make_state ?config db in
  let v = Eval.eval st env ast in
  ((v : Value.t), if st.Eval.index_probes > 0 then `Index_probe else `Extent_scan)

(** Compile a query and render its physical plan (EXPLAIN). *)
let explain ?(env = []) db src : string =
  match Parser.parse src with
  | Ast.Select s -> Plan.describe (Plan.compile db ~bound:(List.map fst env) s)
  | _ -> "expr"

(** Evaluate a boolean POOL expression — used by rule conditions. *)
let check ?(env = []) ?config db src : bool =
  match query ~env ?config db src with
  | Value.VBool b -> b
  | Value.VList l -> l <> []
  | v -> not (Value.is_null v)

(** Cumulative query-engine statistics for [db] (probes, range scans,
    hash joins, plan-cache hits/misses, CSR rebuilds). *)
let stats = Eval.db_stats
