(** POOL evaluator.

    A tree-walking evaluator over {!Pmodel.Value.t}.  Queries run
    against the object layer; relationship navigation and graph
    operators delegate to {!Pgraph}.  The [in context] clause scopes
    relationship navigation to one classification (thesis 4.6.2,
    5.1.1.3); an explicit [null] context argument escapes the scope.

    Query optimisation (thesis 6.1.5): under {!default_config} each
    select is compiled to a physical {!Plan.t} — index probes, ordered
    range / LIKE-prefix scans, hash joins for multi-range queries —
    and graph builtins walk {!Pgraph.Csr} adjacency snapshots.  Access
    paths only ever narrow the candidate set (in the same ascending
    oid order the extent scan uses) and the full WHERE clause is still
    evaluated per row, so results are bit-identical to the legacy
    interpreter, which {!legacy_config} keeps wired for ablation. *)

open Pmodel
module OidSet = Database.OidSet

exception Eval_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

(* Process-wide mirrors of the per-database [totals], for /metrics
   (DESIGN.md "Observability"). *)
let m_index_probes =
  Pobs.Metrics.counter "pdb_query_index_probes_total" ~help:"Index equality probes"

let m_range_scans =
  Pobs.Metrics.counter "pdb_query_range_scans_total" ~help:"Ordered index range/prefix scans"

let m_hash_joins = Pobs.Metrics.counter "pdb_query_hash_joins_total" ~help:"Hash joins built"

let m_extent_scans =
  Pobs.Metrics.counter "pdb_query_extent_scans_total" ~help:"Full extent scans"

let m_cache_hits =
  Pobs.Metrics.counter "pdb_plan_cache_hits_total" ~help:"Compiled-plan cache hits"

let m_cache_misses =
  Pobs.Metrics.counter "pdb_plan_cache_misses_total" ~help:"Compiled-plan cache misses"

(** Execution configuration, mirroring the [Pager.config] ablation
    pattern of the storage layer. *)
type config = {
  planner : bool; (* compile access paths + hash joins *)
  use_csr : bool; (* CSR adjacency snapshots for graph builtins *)
  plan_cache : bool; (* reuse compiled plans across queries *)
}

let default_config = { planner = true; use_csr = true; plan_cache = true }

(** Today's interpreter: nested extent loops, single first-range
    equality probe, per-hop adjacency queries. *)
let legacy_config = { planner = false; use_csr = false; plan_cache = false }

(** Cumulative per-database counters, reported by [pdb stats] and the
    server's [/stats]. *)
type totals = {
  t_index_probes : int Atomic.t;
  t_range_scans : int Atomic.t;
  t_hash_joins : int Atomic.t;
  t_extent_scans : int Atomic.t;
  t_cache_hits : int Atomic.t;
  t_cache_misses : int Atomic.t;
}

(* Plan-cache entries carry the index epoch they were compiled under;
   a moved epoch means an index was created or dropped, or a class or
   relationship was defined, and the plan must be rebuilt (counted as
   a miss). *)
type per_db = {
  totals : totals;
  cache : (string, int * Plan.t) Hashtbl.t;
  cache_mu : Mutex.t; (* queries may run on any domain over a shared view *)
}

(* Per-database state lives on the database record itself
   (Database.ext), so cumulative statistics and the plan cache share
   the database's lifetime exactly: no registry cap to evict a live
   database's counters, no strong reference keeping a closed database
   alive. *)
type Database.ext += Pool_state of per_db

let ext_key = "pool.eval"

let per_db db : per_db =
  match
    Database.ext_get_or_init db ext_key (fun () ->
        Pool_state
          {
            totals =
              {
                t_index_probes = Atomic.make 0;
                t_range_scans = Atomic.make 0;
                t_hash_joins = Atomic.make 0;
                t_extent_scans = Atomic.make 0;
                t_cache_hits = Atomic.make 0;
                t_cache_misses = Atomic.make 0;
              };
            cache = Hashtbl.create 64;
            cache_mu = Mutex.create ();
          })
  with
  | Pool_state p -> p
  | _ -> assert false

type db_stats = {
  index_probes : int;
  range_scans : int;
  hash_joins : int;
  extent_scans : int;
  plan_cache_hits : int;
  plan_cache_misses : int;
  adjacency_rebuilds : int;
}

(** Cumulative query-engine statistics for [db]. *)
let db_stats db : db_stats =
  let t = (per_db db).totals in
  {
    index_probes = Atomic.get t.t_index_probes;
    range_scans = Atomic.get t.t_range_scans;
    hash_joins = Atomic.get t.t_hash_joins;
    extent_scans = Atomic.get t.t_extent_scans;
    plan_cache_hits = Atomic.get t.t_cache_hits;
    plan_cache_misses = Atomic.get t.t_cache_misses;
    adjacency_rebuilds = Pgraph.Csr.rebuild_count db;
  }

type state = {
  db : Database.t;
  config : config;
  totals : totals;
  cache : (string, int * Plan.t) Hashtbl.t;
  cache_mu : Mutex.t;
  mutable plan_memo : (Ast.select * Plan.t) list;
      (* per-query physical-identity memo: a correlated subselect is
         planned once, not once per outer row *)
  mutable ctx : int option; (* current classification context *)
  mutable index_probes : int; (* per-query statistics, for explain/tests *)
  mutable extent_scans : int;
  mutable range_scans : int;
  mutable hash_joins : int;
}

let make_state ?(config = default_config) db =
  let p = per_db db in
  {
    db;
    config;
    totals = p.totals;
    cache = p.cache;
    cache_mu = p.cache_mu;
    plan_memo = [];
    ctx = None;
    index_probes = 0;
    extent_scans = 0;
    range_scans = 0;
    hash_joins = 0;
  }

type env = (string * Value.t) list

(* Per-binding execution mode, prepared once per select execution.
   Access-path candidates are invariant in the outer bindings, so they
   are hoisted; [Expr] sources are evaluated per outer row exactly as
   the legacy interpreter does. *)
type exec =
  | Candidates of Value.t list (* hoisted, ascending oid order *)
  | Hash_probe of (Value.t, int list ref) Hashtbl.t * Ast.expr * Value.t list
      (* build table, probe-key expression, full candidate list (the
         fallback when the probe key fails to evaluate — the nested
         loop then reproduces legacy error behaviour exactly) *)
  | Per_row of Ast.expr

(* Hash keys must agree with [Value.equal_value], which equates VInt
   with VFloat, -0. with 0., and any two NaNs.  Normalising to a
   canonical representative makes structural hashing/equality coincide
   with value equality. *)
let rec norm_key (v : Value.t) : Value.t =
  match v with
  | Value.VInt i -> Value.VFloat (float_of_int i)
  | Value.VFloat f ->
      if f <> f then Value.VFloat Float.nan else if f = 0. then Value.VFloat 0. else v
  | Value.VList l -> Value.VList (List.map norm_key l)
  | Value.VSet l -> Value.VSet (List.map norm_key l)
  | Value.VBag l -> Value.VBag (List.map norm_key l)
  | v -> v

(* --- helpers -------------------------------------------------------- *)

let elements = function
  | Value.VList l | Value.VSet l | Value.VBag l -> l
  | Value.VNull -> []
  | v -> [ v ]

let collection_or_singleton = function
  | (Value.VList _ | Value.VSet _ | Value.VBag _ | Value.VNull) as v -> elements v
  | v -> [ v ]

(* A descending fold builds the ascending element list directly — the
   oids are already sorted and unique, so the [VSet] invariant holds
   without the sort/dedup pass (and the intermediate list) of
   [Value.vset (List.map ... (OidSet.elements s))]. *)
let refs_of_oidset s =
  Value.VSet (Seq.fold_left (fun acc o -> Value.VRef o :: acc) [] (OidSet.to_rev_seq s))

let refs_of_objs objs =
  Value.VList (List.rev (List.rev_map (fun (o : Obj.t) -> Value.VRef o.Obj.oid) objs))

(* SQL LIKE matching: '%' = any sequence, '_' = any single char. *)
let like_match (s : string) (pat : string) : bool =
  let n = String.length s and m = String.length pat in
  (* dp.(j) = pattern prefix j matches current string prefix *)
  let dp = Array.make (m + 1) false in
  dp.(0) <- true;
  for j = 1 to m do
    dp.(j) <- dp.(j - 1) && pat.[j - 1] = '%'
  done;
  for i = 1 to n do
    let prev_diag = ref dp.(0) in
    dp.(0) <- false;
    for j = 1 to m do
      let cur = dp.(j) in
      (dp.(j) <-
         (match pat.[j - 1] with
         | '%' -> dp.(j - 1) || dp.(j) (* match empty or extend *)
         | '_' -> !prev_diag
         | c -> !prev_diag && c = s.[i - 1]));
      prev_diag := cur
    done
  done;
  dp.(m)

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let ends_with ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

(* allocation-free two-index scan (no [String.sub] per position) *)
let contains_sub s sub =
  let ls = String.length s and lx = String.length sub in
  if lx = 0 then true
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i + lx <= ls do
      let j = ref 0 in
      while !j < lx && String.unsafe_get s (!i + !j) = String.unsafe_get sub !j do
        incr j
      done;
      if !j = lx then found := true else incr i
    done;
    !found
  end

(** LIKE with fast paths: patterns whose wildcards sit only at the ends
    ([abc], [abc%], [%abc], [%abc%]) are answered by direct string
    scans; everything else falls back to the {!like_match} DP.  Both
    agree exactly — the property suite checks them against each
    other. *)
let like_eval (s : string) (pat : string) : bool =
  let m = String.length pat in
  let is_wild c = c = '%' || c = '_' in
  let inner_wild =
    let rec go i = i < m && ((i > 0 && i < m - 1 && is_wild pat.[i]) || go (i + 1)) in
    go 0
  in
  if inner_wild || (m > 0 && (pat.[0] = '_' || pat.[m - 1] = '_')) then like_match s pat
  else
    match (m > 0 && pat.[0] = '%', m > 0 && pat.[m - 1] = '%') with
    | false, false -> s = pat
    | false, true -> starts_with ~prefix:(String.sub pat 0 (m - 1)) s
    | true, false -> ends_with ~suffix:(String.sub pat 1 (m - 1)) s
    | true, true ->
        if m = 1 then true else contains_sub s (String.sub pat 1 (m - 2))

(* --- evaluation ------------------------------------------------------ *)

let rec eval (st : state) (env : env) (e : Ast.expr) : Value.t =
  match e with
  | Ast.Lit v -> v
  | Ast.Var x -> (
      match List.assoc_opt x env with
      | Some v -> v
      | None ->
          let schema = Database.schema st.db in
          if Meta.is_class schema x || Meta.is_rel schema x then begin
            st.extent_scans <- st.extent_scans + 1;
            Pobs.Metrics.inc m_extent_scans;
            refs_of_oidset (Database.extent st.db x)
          end
          else fail "unbound variable or unknown class: %s" x)
  | Ast.Path (e, attr) -> eval_path st (eval st env e) attr
  | Ast.Unop ("not", e) -> Value.VBool (not (Value.as_bool (eval st env e)))
  | Ast.Unop ("-", e) -> (
      match eval st env e with
      | Value.VInt i -> Value.VInt (-i)
      | Value.VFloat f -> Value.VFloat (-.f)
      | v -> fail "cannot negate %a" Value.pp v)
  | Ast.Unop (op, _) -> fail "unknown unary operator %s" op
  | Ast.Binop ("and", a, b) ->
      Value.VBool (Value.as_bool (eval st env a) && Value.as_bool (eval st env b))
  | Ast.Binop ("or", a, b) ->
      Value.VBool (Value.as_bool (eval st env a) || Value.as_bool (eval st env b))
  | Ast.Binop (op, a, b) -> eval_binop st op (eval st env a) (eval st env b)
  | Ast.Downcast (cls, e) -> eval_downcast st cls (eval st env e)
  | Ast.Call (f, args) -> eval_call st env f args
  | Ast.Select s -> eval_select st env s

and eval_path st (recv : Value.t) attr : Value.t =
  match recv with
  | Value.VRef oid -> eval_obj_attr st oid attr
  | Value.VList _ | Value.VSet _ | Value.VBag _ ->
      let results =
        List.concat_map
          (fun v -> collection_or_singleton (eval_path st v attr))
          (elements recv)
      in
      Value.VList results
  | Value.VNull -> Value.VNull
  | v -> fail "cannot navigate .%s on %a" attr Value.pp v

and eval_obj_attr st oid attr : Value.t =
  let o = Database.get_exn st.db oid in
  (* uniform treatment of relationship instances: their endpoints are
     plain navigable attributes *)
  if Database.is_rel_instance st.db o then
    match attr with
    | "origin" -> Value.VRef (Obj.origin o)
    | "destination" -> Value.VRef (Obj.destination o)
    | "context" -> ( match Obj.context o with Some c -> Value.VRef c | None -> Value.VNull)
    | _ -> Database.get_attr st.db oid attr
  else Database.get_attr st.db oid attr

and eval_binop _st op (a : Value.t) (b : Value.t) : Value.t =
  match op with
  | "=" -> Value.VBool (Value.equal_value a b)
  | "!=" -> Value.VBool (not (Value.equal_value a b))
  | "<" -> Value.VBool (Value.compare_value a b < 0)
  | "<=" -> Value.VBool (Value.compare_value a b <= 0)
  | ">" -> Value.VBool (Value.compare_value a b > 0)
  | ">=" -> Value.VBool (Value.compare_value a b >= 0)
  | "in" -> Value.VBool (List.exists (Value.equal_value a) (elements b))
  | "like" -> Value.VBool (like_eval (Value.as_string a) (Value.as_string b))
  | "union" -> Value.vset (elements a @ elements b)
  | "inter" ->
      let eb = elements b in
      Value.vset (List.filter (fun x -> List.exists (Value.equal_value x) eb) (elements a))
  | "except" ->
      let eb = elements b in
      Value.vset (List.filter (fun x -> not (List.exists (Value.equal_value x) eb)) (elements a))
  | "+" | "-" | "*" | "/" | "mod" -> eval_arith op a b
  | _ -> fail "unknown operator %s" op

and eval_arith op a b =
  match (op, a, b) with
  | "+", Value.VString x, Value.VString y -> Value.VString (x ^ y)
  | _, Value.VInt x, Value.VInt y -> (
      match op with
      | "+" -> Value.VInt (x + y)
      | "-" -> Value.VInt (x - y)
      | "*" -> Value.VInt (x * y)
      | "/" -> if y = 0 then fail "division by zero" else Value.VInt (x / y)
      | "mod" -> if y = 0 then fail "division by zero" else Value.VInt (x mod y)
      | _ -> assert false)
  | _, (Value.VInt _ | Value.VFloat _), (Value.VInt _ | Value.VFloat _) -> (
      let x = Value.as_float a and y = Value.as_float b in
      match op with
      | "+" -> Value.VFloat (x +. y)
      | "-" -> Value.VFloat (x -. y)
      | "*" -> Value.VFloat (x *. y)
      | "/" -> Value.VFloat (x /. y)
      | "mod" -> Value.VFloat (Float.rem x y)
      | _ -> assert false)
  | _ -> fail "cannot apply %s to %a and %a" op Value.pp a Value.pp b

and eval_downcast st cls (v : Value.t) : Value.t =
  let schema = Database.schema st.db in
  if not (Meta.is_class schema cls || Meta.is_rel schema cls) then fail "unknown class %s in downcast" cls;
  let keep = function
    | Value.VRef oid -> (
        match Database.class_of st.db oid with
        | Some c -> Meta.is_subclass schema ~sub:c ~super:cls
        | None -> false)
    | _ -> false
  in
  match v with
  | Value.VRef _ -> if keep v then v else Value.VNull
  | Value.VList l -> Value.VList (List.filter keep l)
  | Value.VSet l -> Value.vset (List.filter keep l)
  | Value.VBag l -> Value.vbag (List.filter keep l)
  | Value.VNull -> Value.VNull
  | v -> fail "cannot downcast %a" Value.pp v

and ctx_arg st (args : Value.t list) (expected_before : int) : int option =
  (* Relationship builtins accept an optional trailing context argument:
     absent -> current query context; VNull -> explicitly unscoped. *)
  if List.length args > expected_before then
    match List.nth args expected_before with
    | Value.VRef c -> Some c
    | Value.VNull -> None
    | v -> fail "context argument must be a context reference, got %a" Value.pp v
  else st.ctx

and eval_call st env f (arg_exprs : Ast.expr list) : Value.t =
  let args = lazy (List.map (eval st env) arg_exprs) in
  let arg n =
    let l = Lazy.force args in
    if n < List.length l then List.nth l n else fail "%s: missing argument %d" f (n + 1)
  in
  let oid_arg n = Value.as_ref (arg n) in
  let str_arg n = Value.as_string (arg n) in
  let int_arg n = Value.as_int (arg n) in
  let nargs () = List.length (Lazy.force args) in
  match f with
  (* collection builders *)
  | "list" -> Value.VList (Lazy.force args)
  | "set" -> Value.vset (Lazy.force args)
  | "bag" -> Value.vbag (Lazy.force args)
  | "elements" -> Value.VList (List.concat_map elements (elements (arg 0)))
  | "unique" -> Value.vset (elements (arg 0))
  | "first" -> ( match elements (arg 0) with [] -> Value.VNull | x :: _ -> x)
  | "isempty" -> Value.VBool (elements (arg 0) = [])
  | "exists" -> Value.VBool (elements (arg 0) <> [])
  | "isnull" -> Value.VBool (Value.is_null (arg 0))
  (* aggregates *)
  | "count" -> Value.VInt (List.length (elements (arg 0)))
  | "sum" ->
      List.fold_left (fun acc v -> eval_arith "+" acc v) (Value.VInt 0) (elements (arg 0))
  | "avg" -> (
      match elements (arg 0) with
      | [] -> Value.VNull
      | l ->
          let s = List.fold_left (fun acc v -> acc +. Value.as_float v) 0. l in
          Value.VFloat (s /. float_of_int (List.length l)))
  | "min" -> (
      match elements (arg 0) with
      | [] -> Value.VNull
      | x :: rest -> List.fold_left (fun a b -> if Value.compare_value b a < 0 then b else a) x rest)
  | "max" -> (
      match elements (arg 0) with
      | [] -> Value.VNull
      | x :: rest -> List.fold_left (fun a b -> if Value.compare_value b a > 0 then b else a) x rest)
  (* object introspection *)
  | "oid" -> Value.VInt (oid_arg 0)
  | "class_of" -> (
      match Database.class_of st.db (oid_arg 0) with
      | Some c -> Value.VString c
      | None -> Value.VNull)
  | "attr" -> Database.get_attr st.db (oid_arg 0) (str_arg 1)
  | "has_role" -> Value.VBool (Database.has_role st.db (oid_arg 0) ~rel_name:(str_arg 1))
  (* relationship navigation (uniform treatment, thesis 5.1.1.2) *)
  | "out" ->
      refs_of_objs (Database.outgoing st.db ?context:(ctx_arg st (Lazy.force args) 2) ~rel_name:(str_arg 1) (oid_arg 0))
  | "into" ->
      refs_of_objs (Database.incoming st.db ?context:(ctx_arg st (Lazy.force args) 2) ~rel_name:(str_arg 1) (oid_arg 0))
  | "targets" ->
      Value.VList
        (List.map
           (fun (r : Obj.t) -> Value.VRef (Obj.destination r))
           (Database.outgoing st.db ?context:(ctx_arg st (Lazy.force args) 2) ~rel_name:(str_arg 1) (oid_arg 0)))
  | "sources" ->
      Value.VList
        (List.map
           (fun (r : Obj.t) -> Value.VRef (Obj.origin r))
           (Database.incoming st.db ?context:(ctx_arg st (Lazy.force args) 2) ~rel_name:(str_arg 1) (oid_arg 0)))
  | "origin" -> Value.VRef (Obj.origin (Database.get_exn st.db (oid_arg 0)))
  | "destination" -> Value.VRef (Obj.destination (Database.get_exn st.db (oid_arg 0)))
  | "context_of" -> (
      match Obj.context (Database.get_exn st.db (oid_arg 0)) with
      | Some c -> Value.VRef c
      | None -> Value.VNull)
  (* graph exploration and extraction (thesis 5.1.1.3) *)
  | "traverse" ->
      let ctx = ctx_arg st (Lazy.force args) 4 in
      let max_depth = match arg 3 with Value.VNull -> None | v -> Some (Value.as_int v) in
      refs_of_oidset
        (Pgraph.Traverse.descendants st.db ?context:ctx ~csr:st.config.use_csr
           ~min_depth:(int_arg 2) ?max_depth ~rel:(str_arg 1) (oid_arg 0))
  | "closure" ->
      refs_of_oidset
        (Pgraph.Traverse.closure st.db ?context:(ctx_arg st (Lazy.force args) 2)
           ~csr:st.config.use_csr ~rel:(str_arg 1) (oid_arg 0))
  | "descendants" ->
      refs_of_oidset
        (Pgraph.Traverse.descendants st.db ?context:(ctx_arg st (Lazy.force args) 2)
           ~csr:st.config.use_csr ~rel:(str_arg 1) (oid_arg 0))
  | "ancestors" ->
      refs_of_oidset
        (Pgraph.Traverse.ancestors st.db ?context:(ctx_arg st (Lazy.force args) 2)
           ~csr:st.config.use_csr ~rel:(str_arg 1) (oid_arg 0))
  | "reachable" ->
      Value.VBool
        (Pgraph.Traverse.reachable st.db ?context:(ctx_arg st (Lazy.force args) 3)
           ~csr:st.config.use_csr ~rel:(str_arg 2) (oid_arg 0) (oid_arg 1))
  | "path" -> (
      match
        Pgraph.Traverse.shortest_path st.db ?context:(ctx_arg st (Lazy.force args) 3) ~rel:(str_arg 2)
          (oid_arg 0) (oid_arg 1)
      with
      | Some p -> Value.VList (List.map (fun o -> Value.VRef o) p)
      | None -> Value.VNull)
  | "graph" ->
      let g =
        Pgraph.Subgraph.extract st.db ?context:(ctx_arg st (Lazy.force args) 2)
          ~csr:st.config.use_csr ~rel:(str_arg 1) (oid_arg 0)
      in
      Value.VList
        [ refs_of_oidset g.Pgraph.Subgraph.nodes;
          Value.vset (List.map (fun o -> Value.VRef o) g.Pgraph.Subgraph.edges) ]
  | "nodes" -> (
      match elements (arg 0) with [ ns; _ ] -> ns | _ -> fail "nodes: expected a graph value")
  | "edges" -> (
      match elements (arg 0) with [ _; es ] -> es | _ -> fail "edges: expected a graph value")
  (* instance synonyms (thesis 4.5) *)
  | "synonyms" -> refs_of_oidset (Database.synonym_set st.db (oid_arg 0))
  | "same_entity" -> Value.VBool (Database.same_entity st.db (oid_arg 0) (oid_arg 1))
  (* strings *)
  | "strlen" -> Value.VInt (String.length (str_arg 0))
  | "lower" -> Value.VString (String.lowercase_ascii (str_arg 0))
  | "upper" -> Value.VString (String.uppercase_ascii (str_arg 0))
  | "startswith" -> Value.VBool (starts_with ~prefix:(str_arg 1) (str_arg 0))
  | "endswith" -> Value.VBool (ends_with ~suffix:(str_arg 1) (str_arg 0))
  | "contains" -> Value.VBool (contains_sub (str_arg 0) (str_arg 1))
  (* dates and numbers *)
  | "date" -> Value.VDate (Value.date ~month:(int_arg 1) ~day:(int_arg 2) (int_arg 0))
  | "year" -> ( match arg 0 with Value.VDate d -> Value.VInt d.Value.year | _ -> Value.VNull)
  | "month" -> ( match arg 0 with Value.VDate d -> Value.VInt d.Value.month | _ -> Value.VNull)
  | "day" -> ( match arg 0 with Value.VDate d -> Value.VInt d.Value.day | _ -> Value.VNull)
  | "abs" -> (
      match arg 0 with
      | Value.VInt i -> Value.VInt (abs i)
      | Value.VFloat f -> Value.VFloat (Float.abs f)
      | v -> fail "abs: not a number: %a" Value.pp v)
  | _ ->
      ignore (nargs ());
      fail "unknown function %s" f

(* --- select ----------------------------------------------------------- *)

(** Try to satisfy the first range via an index probe: look for a
    top-level conjunct [var.attr = constant] in the WHERE clause. *)
and index_probe st (s : Ast.select) : OidSet.t option =
  match (s.Ast.ranges, s.Ast.where) with
  | (Ast.Var cls, var) :: _, Some w when Meta.is_class (Database.schema st.db) cls ->
      let rec conjuncts e =
        match e with Ast.Binop ("and", a, b) -> conjuncts a @ conjuncts b | e -> [ e ]
      in
      let probe_of = function
        | Ast.Binop ("=", Ast.Path (Ast.Var v, attr), Ast.Lit value)
        | Ast.Binop ("=", Ast.Lit value, Ast.Path (Ast.Var v, attr))
          when v = var ->
            Some (attr, value)
        | _ -> None
      in
      List.find_map
        (fun c ->
          match probe_of c with
          | Some (attr, value) -> (
              match Database.index_lookup st.db cls attr value with
              | Some oids ->
                  st.index_probes <- st.index_probes + 1;
                  Pobs.Metrics.inc m_index_probes;
                  Some oids
              | None -> None)
          | None -> None)
        (conjuncts w)
  | _ -> None

(** Resolve a plan and its per-query caches: the per-state
    physical-identity memo avoids re-stringifying a correlated
    subselect per outer row; the per-db cache (keyed on normalised
    query text plus the names bound by the caller, the context clause
    being part of the text) reuses plans across queries until the
    index epoch moves. *)
and plan_for st (env : env) (s : Ast.select) : Plan.t =
  match List.find_opt (fun (s', _) -> s' == s) st.plan_memo with
  | Some (_, p) -> p
  | None ->
      let bound = List.map fst env in
      let p =
        if st.config.plan_cache then begin
          let key =
            Ast.to_string (Ast.Select s) ^ "|" ^ String.concat "," (List.sort_uniq compare bound)
          in
          let epoch = Database.index_epoch st.db in
          let cached =
            Mutex.lock st.cache_mu;
            let r =
              match Hashtbl.find_opt st.cache key with
              | Some (e, p) when e = epoch -> Some p
              | _ -> None
            in
            Mutex.unlock st.cache_mu;
            r
          in
          match cached with
          | Some p ->
              Atomic.incr st.totals.t_cache_hits;
              Pobs.Metrics.inc m_cache_hits;
              p
          | None ->
              Atomic.incr st.totals.t_cache_misses;
              Pobs.Metrics.inc m_cache_misses;
              (* compile outside the lock: concurrent misses duplicate
                 work, never block each other on the compiler *)
              let p =
                Pobs.Trace.with_span "pool.plan" (fun () -> Plan.compile st.db ~bound s)
              in
              Mutex.lock st.cache_mu;
              if Hashtbl.length st.cache > 512 then Hashtbl.reset st.cache;
              Hashtbl.replace st.cache key (epoch, p);
              Mutex.unlock st.cache_mu;
              p
        end
        else Pobs.Trace.with_span "pool.plan" (fun () -> Plan.compile st.db ~bound s)
      in
      st.plan_memo <- (s, p) :: st.plan_memo;
      p

(* Candidate oids for an access path, with statistics.  An index that
   disappeared since planning (the epoch check makes this rare, but a
   cacheless config can still race a drop) falls back to the extent —
   a superset, so correctness is unaffected. *)
and oidset_of_access st (a : Plan.access) : OidSet.t =
  let bump_probe () =
    st.index_probes <- st.index_probes + 1;
    Atomic.incr st.totals.t_index_probes;
    Pobs.Metrics.inc m_index_probes
  and bump_range () =
    st.range_scans <- st.range_scans + 1;
    Atomic.incr st.totals.t_range_scans;
    Pobs.Metrics.inc m_range_scans
  and bump_extent () =
    st.extent_scans <- st.extent_scans + 1;
    Atomic.incr st.totals.t_extent_scans;
    Pobs.Metrics.inc m_extent_scans
  in
  let fallback cls =
    bump_extent ();
    Database.extent st.db cls
  in
  match a with
  | Plan.Extent cls -> fallback cls
  | Plan.Probe { cls; attr; value } -> (
      match Database.index_lookup st.db cls attr value with
      | Some s ->
          bump_probe ();
          s
      | None -> fallback cls)
  | Plan.Range { cls; attr; lo; hi } -> (
      match Database.index_range st.db cls attr ?lo ?hi () with
      | Some s ->
          bump_range ();
          s
      | None -> fallback cls)
  | Plan.Prefix { cls; attr; prefix } -> (
      match Database.index_string_prefix st.db cls attr prefix with
      | Some s ->
          bump_range ();
          s
      | None -> fallback cls)
  | Plan.Src _ -> assert false (* handled by the caller *)

and prepare st (b : Plan.binding) : string * exec =
  match b.Plan.access with
  | Plan.Src e -> (b.Plan.var, Per_row e)
  | access -> (
      let oids = oidset_of_access st access in
      let cands = List.rev (OidSet.fold (fun o acc -> Value.VRef o :: acc) oids []) in
      match b.Plan.hash_key with
      | Some (attr, probe_expr) ->
          (* buckets are built in ascending oid order, preserving the
             candidate order of the nested loop they replace *)
          let tbl = Hashtbl.create 256 in
          OidSet.iter
            (fun oid ->
              let k = norm_key (eval_obj_attr st oid attr) in
              match Hashtbl.find_opt tbl k with
              | Some r -> r := oid :: !r
              | None -> Hashtbl.add tbl k (ref [ oid ]))
            oids;
          Hashtbl.iter (fun _ r -> r := List.rev !r) tbl;
          st.hash_joins <- st.hash_joins + 1;
          Atomic.incr st.totals.t_hash_joins;
          Pobs.Metrics.inc m_hash_joins;
          (b.Plan.var, Hash_probe (tbl, probe_expr, cands))
      | None -> (b.Plan.var, Candidates cands))

and eval_select st (env : env) (s : Ast.select) : Value.t =
  let saved_ctx = st.ctx in
  (match s.Ast.context with
  | Some c -> (
      match eval st env c with
      | Value.VRef ctx -> st.ctx <- Some ctx
      | Value.VNull -> st.ctx <- None
      | v -> fail "in context: expected a context reference, got %a" Value.pp v)
  | None -> ());
  Fun.protect
    ~finally:(fun () -> st.ctx <- saved_ctx)
    (fun () ->
      let rows = ref [] in
      let finish env =
        let keep =
          match s.Ast.where with Some w -> Value.as_bool (eval st env w) | None -> true
        in
        if keep then begin
          let row =
            match s.Ast.projections with
            | None -> (
                match s.Ast.ranges with
                | [ (_, v) ] -> List.assoc v env
                | rs -> Value.VList (List.map (fun (_, v) -> List.assoc v env) rs))
            | Some [ (e, _) ] -> eval st env e
            | Some ps -> Value.VList (List.map (fun (e, _) -> eval st env e) ps)
          in
          let sort_key = List.map (fun (e, asc) -> (eval st env e, asc)) s.Ast.order_by in
          rows := (row, sort_key) :: !rows
        end
      in
      (if st.config.planner then begin
         let plan = plan_for st env s in
         let execs = List.map (prepare st) plan.Plan.bindings in
         let rec bind env = function
           | [] -> finish env
           | (var, Candidates vs) :: rest ->
               List.iter (fun v -> bind ((var, v) :: env) rest) vs
           | (var, Per_row e) :: rest ->
               List.iter (fun v -> bind ((var, v) :: env) rest) (elements (eval st env e))
           | (var, Hash_probe (tbl, probe_expr, cands)) :: rest ->
               if cands <> [] then begin
                 match
                   try Some (norm_key (eval st env probe_expr)) with Eval_error _ -> None
                 with
                 | Some k -> (
                     match Hashtbl.find_opt tbl k with
                     | None -> ()
                     | Some oids ->
                         List.iter (fun o -> bind ((var, Value.VRef o) :: env) rest) !oids)
                 | None ->
                     (* probe key failed to evaluate: replay the nested
                        loop so the WHERE clause raises (or not) exactly
                        as the legacy interpreter would *)
                     List.iter (fun v -> bind ((var, v) :: env) rest) cands
               end
         in
         bind env execs
       end
       else begin
         let probe = index_probe st s in
         let rec bind env ranges =
           match ranges with
           | [] -> finish env
           | (src, var) :: rest ->
               let candidates =
                 match (probe, ranges == s.Ast.ranges) with
                 | Some oids, true ->
                     (* index probe replaces the first extent scan *)
                     List.map (fun o -> Value.VRef o) (OidSet.elements oids)
                 | _ -> elements (eval st env src)
               in
               List.iter (fun v -> bind ((var, v) :: env) rest) candidates
         in
         bind env s.Ast.ranges
       end);
      let rows = List.rev !rows in
      let rows =
        if s.Ast.order_by = [] then rows
        else
          List.stable_sort
            (fun (_, ka) (_, kb) ->
              let rec cmp a b =
                match (a, b) with
                | [], [] -> 0
                | (va, asc) :: ra, (vb, _) :: rb ->
                    let c = Value.compare_value va vb in
                    if c <> 0 then if asc then c else -c else cmp ra rb
                | _ -> 0
              in
              cmp ka kb)
            rows
      in
      let values = List.map fst rows in
      let values =
        if s.Ast.distinct then
          List.rev
            (List.fold_left
               (fun acc v -> if List.exists (Value.equal_value v) acc then acc else v :: acc)
               [] values)
        else values
      in
      Value.VList values)
