(** Recursive-descent parser for POOL. *)

open Lexer
module Value = Pmodel.Value

type state = { toks : (token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let peek2 st = if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1) else EOF
let pos st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let expect st tok what =
  if peek st = tok then advance st
  else fail (pos st) "expected %s, found %a" what pp_token (peek st)

let expect_ident st what =
  match peek st with
  | IDENT s ->
      advance st;
      s
  | t -> fail (pos st) "expected %s, found %a" what pp_token t

(* precedence climbing:
   or < and < not < comparison (= != < <= > >= in like) <
   union/except < inter < additive < multiplicative < unary < postfix *)

let rec parse_expr st : Ast.expr = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while peek st = KW "or" do
    advance st;
    lhs := Ast.Binop ("or", !lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_not st) in
  while peek st = KW "and" do
    advance st;
    lhs := Ast.Binop ("and", !lhs, parse_not st)
  done;
  !lhs

and parse_not st =
  if peek st = KW "not" then begin
    advance st;
    Ast.Unop ("not", parse_not st)
  end
  else parse_cmp st

and parse_cmp st =
  let lhs = parse_setop st in
  match peek st with
  | EQ ->
      advance st;
      Ast.Binop ("=", lhs, parse_setop st)
  | NEQ ->
      advance st;
      Ast.Binop ("!=", lhs, parse_setop st)
  | LT ->
      advance st;
      Ast.Binop ("<", lhs, parse_setop st)
  | LE ->
      advance st;
      Ast.Binop ("<=", lhs, parse_setop st)
  | GT ->
      advance st;
      Ast.Binop (">", lhs, parse_setop st)
  | GE ->
      advance st;
      Ast.Binop (">=", lhs, parse_setop st)
  | KW "like" ->
      advance st;
      Ast.Binop ("like", lhs, parse_setop st)
  | KW "between" ->
      (* [e between lo and hi] desugars to [e >= lo and e <= hi]; the
         bounds bind tighter than the logical [and] that separates them *)
      advance st;
      let lo = parse_setop st in
      expect st (KW "and") "and";
      let hi = parse_setop st in
      Ast.Binop ("and", Ast.Binop (">=", lhs, lo), Ast.Binop ("<=", lhs, hi))
  | KW "in" when peek2 st <> KW "context" ->
      advance st;
      Ast.Binop ("in", lhs, parse_setop st)
  | KW "not" when peek2 st = KW "in" ->
      advance st;
      advance st;
      Ast.Unop ("not", Ast.Binop ("in", lhs, parse_setop st))
  | _ -> lhs

and parse_setop st =
  let lhs = ref (parse_add st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | KW (("union" | "inter" | "except") as op) ->
        advance st;
        lhs := Ast.Binop (op, !lhs, parse_add st)
    | _ -> continue := false
  done;
  !lhs

and parse_add st =
  let lhs = ref (parse_mul st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | PLUS ->
        advance st;
        lhs := Ast.Binop ("+", !lhs, parse_mul st)
    | MINUS ->
        advance st;
        lhs := Ast.Binop ("-", !lhs, parse_mul st)
    | _ -> continue := false
  done;
  !lhs

and parse_mul st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | STAR ->
        advance st;
        lhs := Ast.Binop ("*", !lhs, parse_unary st)
    | SLASH ->
        advance st;
        lhs := Ast.Binop ("/", !lhs, parse_unary st)
    | KW "mod" ->
        advance st;
        lhs := Ast.Binop ("mod", !lhs, parse_unary st)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | MINUS ->
      advance st;
      Ast.Unop ("-", parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    if peek st = DOT then begin
      advance st;
      (* keywords are fine as attribute names after a dot (e.g.
         r.context) — the position is unambiguous *)
      let name =
        match peek st with
        | KW k ->
            advance st;
            k
        | _ -> expect_ident st "attribute or method name"
      in
      if peek st = LPAREN then begin
        (* method-style call: receiver becomes first argument *)
        advance st;
        let args = parse_args st in
        e := Ast.Call (name, !e :: args)
      end
      else e := Ast.Path (!e, name)
    end
    else continue := false
  done;
  !e

and parse_args st =
  if peek st = RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let a = parse_expr st in
      if peek st = COMMA then begin
        advance st;
        go (a :: acc)
      end
      else begin
        expect st RPAREN "')'";
        List.rev (a :: acc)
      end
    in
    go []
  end

and parse_primary st =
  match peek st with
  | INT i ->
      advance st;
      Ast.Lit (Value.VInt i)
  | FLOAT f ->
      advance st;
      Ast.Lit (Value.VFloat f)
  | STRING s ->
      advance st;
      Ast.Lit (Value.VString s)
  | KW "true" ->
      advance st;
      Ast.Lit (Value.VBool true)
  | KW "false" ->
      advance st;
      Ast.Lit (Value.VBool false)
  | KW "null" ->
      advance st;
      Ast.Lit Value.VNull
  | KW "select" -> Ast.Select (parse_select st)
  | KW "exists" ->
      (* exists(coll) or exists select ... *)
      advance st;
      if peek st = LPAREN then begin
        advance st;
        let args = parse_args st in
        Ast.Call ("exists", args)
      end
      else Ast.Call ("exists", [ parse_expr st ])
  | LBRACKET ->
      (* list literal *)
      advance st;
      if peek st = RBRACKET then begin
        advance st;
        Ast.Call ("list", [])
      end
      else begin
        let rec go acc =
          let a = parse_expr st in
          if peek st = COMMA then begin
            advance st;
            go (a :: acc)
          end
          else begin
            expect st RBRACKET "']'";
            List.rev (a :: acc)
          end
        in
        Ast.Call ("list", go [])
      end
  | IDENT name -> (
      advance st;
      match peek st with
      | LPAREN ->
          advance st;
          let args = parse_args st in
          Ast.Call (name, args)
      | _ -> Ast.Var name)
  | LPAREN -> (
      advance st;
      (* Downcast? "(ClassName) expr" — identifier followed by ')' then a
         primary-start token. *)
      match (peek st, peek2 st) with
      | IDENT cls, RPAREN
        when st.pos + 2 < Array.length st.toks
             && (match fst st.toks.(st.pos + 2) with
                | IDENT _ | LPAREN | KW "select" -> true
                | _ -> false) ->
          advance st;
          advance st;
          Ast.Downcast (cls, parse_unary st)
      | _ ->
          let e = parse_expr st in
          expect st RPAREN "')'";
          e)
  | t -> fail (pos st) "unexpected %a" pp_token t

and parse_select st : Ast.select =
  expect st (KW "select") "select";
  let distinct =
    if peek st = KW "distinct" then begin
      advance st;
      true
    end
    else false
  in
  let projections =
    if peek st = STAR then begin
      advance st;
      None
    end
    else begin
      let rec go acc =
        let e = parse_expr st in
        let alias =
          if peek st = KW "as" then begin
            advance st;
            Some (expect_ident st "alias")
          end
          else None
        in
        if peek st = COMMA then begin
          advance st;
          go ((e, alias) :: acc)
        end
        else List.rev ((e, alias) :: acc)
      in
      Some (go [])
    end
  in
  expect st (KW "from") "from";
  let rec parse_ranges acc =
    let src = parse_postfix st in
    let v = expect_ident st "range variable" in
    if peek st = COMMA then begin
      advance st;
      parse_ranges ((src, v) :: acc)
    end
    else List.rev ((src, v) :: acc)
  in
  let ranges = parse_ranges [] in
  let where =
    if peek st = KW "where" then begin
      advance st;
      Some (parse_expr st)
    end
    else None
  in
  let order_by =
    if peek st = KW "order" then begin
      advance st;
      expect st (KW "by") "by";
      let rec go acc =
        let e = parse_expr st in
        let asc =
          match peek st with
          | KW "asc" ->
              advance st;
              true
          | KW "desc" ->
              advance st;
              false
          | _ -> true
        in
        if peek st = COMMA then begin
          advance st;
          go ((e, asc) :: acc)
        end
        else List.rev ((e, asc) :: acc)
      in
      go []
    end
    else []
  in
  let context =
    if peek st = KW "in" && peek2 st = KW "context" then begin
      advance st;
      advance st;
      Some (parse_expr st)
    end
    else None
  in
  { distinct; projections; ranges; where; order_by; context }

(** Parse a full POOL query (a select statement or a bare expression). *)
let parse (src : string) : Ast.expr =
  let st = { toks = Array.of_list (tokenize src); pos = 0 } in
  let e = if peek st = KW "select" then Ast.Select (parse_select st) else parse_expr st in
  if peek st <> EOF then fail (pos st) "trailing input: %a" pp_token (peek st);
  e
