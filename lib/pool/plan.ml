(** POOL physical plans (thesis 6.1.5, extended).

    [compile] turns a [select] into a physical plan: one {!binding} per
    range variable, each with an access path and an optional hash-join
    key.  The evaluator executes the plan but always re-evaluates the
    *full* WHERE clause per candidate row, so an access path only needs
    to produce a {e superset} of the qualifying objects — in ascending
    oid order, which is also the order the legacy extent scan uses.
    That invariant is what makes optimized results bit-identical to the
    legacy interpreter: pushdown can never change which rows survive or
    how they are ordered, only how many candidates are inspected.

    Access paths recognised from top-level WHERE conjuncts over an
    unshadowed class-extent range [Var cls]:

    - [var.attr = lit]              -> {!constructor:Probe} (equality index)
    - [var.attr </<=/>/>= lit]      -> {!constructor:Range} (ordered index walk;
                                       conjuncts on the same attr combine)
    - [var.attr like 'abc%...']     -> {!constructor:Prefix} (contiguous string
                                       block of the ordered index)
    - [var.attr between a and b] parses as two range conjuncts

    Hash joins: a non-first range whose WHERE has a top-level conjunct
    [var.attr = e], where [e] depends on earlier range variables but
    not on [var] or later ones, is executed by building a hash table
    over the range's candidates keyed on [attr] (once), then probing
    with [e] per outer row — replacing the nested extent rescans.

    Plans contain no oids or values read from the data, only schema
    facts (which indexes exist, which names denote class extents), so a
    cached plan stays valid until {!Pmodel.Database.index_epoch} moves
    — bumped by index DDL and by class/relationship definition. *)

open Pmodel
module SSet = Set.Make (String)

type access =
  | Extent of string (* class extent scan, ascending oid *)
  | Probe of { cls : string; attr : string; value : Value.t }
  | Range of {
      cls : string;
      attr : string;
      lo : (Value.t * bool) option; (* value, inclusive *)
      hi : (Value.t * bool) option;
    }
  | Prefix of { cls : string; attr : string; prefix : string }
  | Src of Ast.expr (* arbitrary source expression, evaluated per outer row *)

type binding = {
  var : string;
  access : access;
  hash_key : (string * Ast.expr) option;
      (* (build attr of this range, probe expression over outer bindings) *)
}

type t = { bindings : binding list }

(* --- free variables (with range-variable shadowing) -------------------- *)

let rec free_vars (e : Ast.expr) : SSet.t =
  match e with
  | Ast.Lit _ -> SSet.empty
  | Ast.Var x -> SSet.singleton x
  | Ast.Path (e, _) | Ast.Unop (_, e) | Ast.Downcast (_, e) -> free_vars e
  | Ast.Binop (_, a, b) -> SSet.union (free_vars a) (free_vars b)
  | Ast.Call (_, args) ->
      List.fold_left (fun acc a -> SSet.union acc (free_vars a)) SSet.empty args
  | Ast.Select s ->
      (* range sources see the outer scope plus earlier range variables;
         every other clause sees all range variables *)
      let free, bound =
        List.fold_left
          (fun (free, bound) (src, v) ->
            (SSet.union free (SSet.diff (free_vars src) bound), SSet.add v bound))
          (SSet.empty, SSet.empty) s.Ast.ranges
      in
      let under e = SSet.diff (free_vars e) bound in
      let opt acc = function Some e -> SSet.union acc (under e) | None -> acc in
      let free = opt (opt free s.Ast.where) s.Ast.context in
      let free =
        match s.Ast.projections with
        | None -> free
        | Some ps -> List.fold_left (fun acc (e, _) -> SSet.union acc (under e)) free ps
      in
      List.fold_left (fun acc (e, _) -> SSet.union acc (under e)) free s.Ast.order_by

(* --- conjunct analysis -------------------------------------------------- *)

let rec conjuncts (e : Ast.expr) : Ast.expr list =
  match e with Ast.Binop ("and", a, b) -> conjuncts a @ conjuncts b | e -> [ e ]

(* literal prefix of a LIKE pattern, up to the first wildcard *)
let like_prefix (pat : string) : string =
  let n = String.length pat in
  let rec go i = if i < n && pat.[i] <> '%' && pat.[i] <> '_' then go (i + 1) else i in
  String.sub pat 0 (go 0)

(* tightest combination of two optional bounds *)
let tighter ~is_lo a b =
  match (a, b) with
  | None, b -> b
  | a, None -> a
  | Some ((va, ia) as ba), Some ((vb, ib) as bb) ->
      let c = Value.compare_value va vb in
      let take_a = if is_lo then c > 0 || (c = 0 && not ia) else c < 0 || (c = 0 && not ia) in
      Some (if take_a then ba else if c = 0 then (va, ia && ib) else bb)

(** Equality/range/prefix facts about [var.attr] found in one conjunct. *)
type fact =
  | Eq of string * Value.t
  | Lo of string * (Value.t * bool)
  | Hi of string * (Value.t * bool)
  | Like of string * string (* attr, literal prefix *)

let fact_of var (c : Ast.expr) : fact option =
  (* operators whose argument order can be inverted; [like] is NOT one:
     [lit like var.attr] matches the literal against the *stored
     pattern*, which no prefix scan over stored values can serve *)
  let inv = function
    | "=" -> Some "="
    | "<" -> Some ">"
    | "<=" -> Some ">="
    | ">" -> Some "<"
    | ">=" -> Some "<="
    | _ -> None
  in
  let norm =
    (* rewrite [lit OP var.attr] to [var.attr OP' lit] *)
    match c with
    | Ast.Binop (op, Ast.Lit v, Ast.Path (Ast.Var x, attr)) -> (
        match inv op with Some op' -> Some (op', x, attr, v) | None -> None)
    | Ast.Binop (op, Ast.Path (Ast.Var x, attr), Ast.Lit v) -> Some (op, x, attr, v)
    | _ -> None
  in
  match norm with
  | Some (op, x, attr, v) when x = var -> (
      match op with
      | "=" -> Some (Eq (attr, v))
      | "<" -> Some (Hi (attr, (v, false)))
      | "<=" -> Some (Hi (attr, (v, true)))
      | ">" -> Some (Lo (attr, (v, false)))
      | ">=" -> Some (Lo (attr, (v, true)))
      | "like" -> (
          match v with
          | Value.VString pat ->
              let p = like_prefix pat in
              if p = "" then None else Some (Like (attr, p))
          | _ -> None)
      | _ -> None)
  | _ -> None

(* --- compilation -------------------------------------------------------- *)

(** Pick the access path for range [(cls, var)] from the WHERE
    conjuncts.  Preference: equality probe, then LIKE prefix, then
    range — all conditional on an index existing. *)
let access_for db cls var (cs : Ast.expr list) : access =
  let facts = List.filter_map (fact_of var) cs in
  let indexed attr = Database.has_index db cls attr in
  let probe = List.find_map (function Eq (a, v) when indexed a -> Some (a, v) | _ -> None) facts in
  match probe with
  | Some (attr, value) -> Probe { cls; attr; value }
  | None -> (
      let prefix =
        List.find_map (function Like (a, p) when indexed a -> Some (a, p) | _ -> None) facts
      in
      match prefix with
      | Some (attr, prefix) -> Prefix { cls; attr; prefix }
      | None -> (
          (* combine all range facts per attribute; take the first
             indexed attribute that has at least one bound *)
          let attrs =
            List.filter_map (function Lo (a, _) | Hi (a, _) -> Some a | _ -> None) facts
          in
          let ranged =
            List.find_map
              (fun attr ->
                if not (indexed attr) then None
                else
                  let lo =
                    List.fold_left
                      (fun acc -> function
                        | Lo (a, b) when a = attr -> tighter ~is_lo:true acc (Some b)
                        | _ -> acc)
                      None facts
                  and hi =
                    List.fold_left
                      (fun acc -> function
                        | Hi (a, b) when a = attr -> tighter ~is_lo:false acc (Some b)
                        | _ -> acc)
                      None facts
                  in
                  if lo = None && hi = None then None else Some (attr, lo, hi))
              (List.sort_uniq compare attrs)
          in
          match ranged with
          | Some (attr, lo, hi) -> Range { cls; attr; lo; hi }
          | None -> Extent cls))

(** A hash-join key for range [var] (not the first range): a top-level
    conjunct [var.attr = e] (either side) where [e] mentions at least
    one earlier range variable and none of [var] or the later range
    variables — so the table over this range's candidates can be built
    once and probed with [e] per outer row. *)
let hash_key_for var ~outer_vars ~later_vars (cs : Ast.expr list) : (string * Ast.expr) option =
  let candidate attr e =
    let fv = free_vars e in
    if
      (not (SSet.mem var fv))
      && (not (SSet.exists (fun v -> SSet.mem v fv) later_vars))
      && SSet.exists (fun v -> SSet.mem v fv) outer_vars
    then Some (attr, e)
    else None
  in
  List.find_map
    (function
      | Ast.Binop ("=", Ast.Path (Ast.Var x, attr), e) when x = var -> candidate attr e
      | Ast.Binop ("=", e, Ast.Path (Ast.Var x, attr)) when x = var -> candidate attr e
      | _ -> None)
    cs

(** Compile [s] against the schema facts of [db].  [bound] is the set
    of variables already bound by the caller (query [env] plus outer
    range variables for correlated subselects): a range source [Var x]
    with [x] bound is a plain expression, not an extent. *)
let compile db ~bound (s : Ast.select) : t =
  let schema = Database.schema db in
  let cs = match s.Ast.where with Some w -> conjuncts w | None -> [] in
  let rec build outer_vars idx = function
    | [] -> []
    | (src, var) :: rest ->
        let later_vars = SSet.of_list (List.map snd rest) in
        let extent_cls =
          match src with
          | Ast.Var cls
            when (not (SSet.mem cls outer_vars))
                 && (not (List.mem cls bound))
                 && (Meta.is_class schema cls || Meta.is_rel schema cls) ->
              Some cls
          | _ -> None
        in
        (* a later range re-binding the same variable name makes the
           WHERE conjuncts refer to *that* binding — no pushdown then *)
        let shadowed = List.exists (fun (_, v) -> v = var) rest in
        let access =
          match extent_cls with
          | Some cls -> if shadowed then Extent cls else access_for db cls var cs
          | None -> Src src
        in
        let hash_key =
          if idx = 0 || extent_cls = None || shadowed then None
          else
            hash_key_for var
              ~outer_vars:(SSet.union outer_vars (SSet.of_list bound))
              ~later_vars cs
        in
        { var; access; hash_key } :: build (SSet.add var outer_vars) (idx + 1) rest
  in
  { bindings = build SSet.empty 0 s.Ast.ranges }

(* --- description (EXPLAIN-style, used by tests and the CLI) ------------- *)

let describe_access = function
  | Extent cls -> Printf.sprintf "extent(%s)" cls
  | Probe { cls; attr; _ } -> Printf.sprintf "probe(%s.%s)" cls attr
  | Range { cls; attr; lo; hi } ->
      Printf.sprintf "range(%s.%s%s%s)" cls attr
        (match lo with Some _ -> " lo" | None -> "")
        (match hi with Some _ -> " hi" | None -> "")
  | Prefix { cls; attr; prefix } -> Printf.sprintf "prefix(%s.%s,%S)" cls attr prefix
  | Src _ -> "expr"

let describe (t : t) : string =
  String.concat "; "
    (List.map
       (fun b ->
         Printf.sprintf "%s<-%s%s" b.var (describe_access b.access)
           (match b.hash_key with Some (attr, _) -> Printf.sprintf " hash(%s)" attr | None -> ""))
       t.bindings)
