(** Hand-rolled lexer for POOL. *)

exception Syntax_error of string * int (* message, position *)

let fail pos fmt = Format.kasprintf (fun s -> raise (Syntax_error (s, pos))) fmt

type token =
  | IDENT of string
  | STRING of string
  | INT of int
  | FLOAT of float
  | KW of string (* normalised lowercase keyword *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | STAR
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | SLASH
  | EOF

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "identifier %s" s
  | STRING s -> Format.fprintf ppf "string %S" s
  | INT i -> Format.fprintf ppf "int %d" i
  | FLOAT f -> Format.fprintf ppf "float %g" f
  | KW s -> Format.fprintf ppf "keyword %s" s
  | LPAREN -> Format.pp_print_string ppf "("
  | RPAREN -> Format.pp_print_string ppf ")"
  | LBRACKET -> Format.pp_print_string ppf "["
  | RBRACKET -> Format.pp_print_string ppf "]"
  | COMMA -> Format.pp_print_string ppf ","
  | DOT -> Format.pp_print_string ppf "."
  | STAR -> Format.pp_print_string ppf "*"
  | EQ -> Format.pp_print_string ppf "="
  | NEQ -> Format.pp_print_string ppf "!="
  | LT -> Format.pp_print_string ppf "<"
  | LE -> Format.pp_print_string ppf "<="
  | GT -> Format.pp_print_string ppf ">"
  | GE -> Format.pp_print_string ppf ">="
  | PLUS -> Format.pp_print_string ppf "+"
  | MINUS -> Format.pp_print_string ppf "-"
  | SLASH -> Format.pp_print_string ppf "/"
  | EOF -> Format.pp_print_string ppf "end of input"

let keywords =
  [
    "select"; "distinct"; "from"; "where"; "order"; "by"; "asc"; "desc"; "and"; "or"; "not";
    "in"; "like"; "between"; "context"; "as"; "true"; "false"; "null"; "mod"; "union"; "inter";
    "except"; "exists";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** Tokenise [src]; returns tokens with their source positions. *)
let tokenize (src : string) : (token * int) list =
  let n = String.length src in
  let toks = ref [] in
  let push t pos = toks := (t, pos) :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
      (* line comment *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      let word = String.sub src !i (!j - !i) in
      let lower = String.lowercase_ascii word in
      (* keywords are matched case-insensitively, but only for words
         written uniformly lower- or uppercase: mixed-case words like
         "In" or "Select" remain identifiers (class names may collide
         with keywords otherwise) *)
      let uniform = word = lower || word = String.uppercase_ascii word in
      if uniform && List.mem lower keywords then push (KW lower) pos else push (IDENT word) pos;
      i := !j
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit src.[!j] do
        incr j
      done;
      if !j < n && src.[!j] = '.' && !j + 1 < n && is_digit src.[!j + 1] then begin
        incr j;
        while !j < n && is_digit src.[!j] do
          incr j
        done;
        push (FLOAT (float_of_string (String.sub src !i (!j - !i)))) pos
      end
      else push (INT (int_of_string (String.sub src !i (!j - !i)))) pos;
      i := !j
    end
    else if c = '\'' || c = '"' then begin
      let quote = c in
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = quote then
          if !i + 1 < n && src.[!i + 1] = quote then begin
            Buffer.add_char buf quote;
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      if not !closed then fail pos "unterminated string literal";
      push (STRING (Buffer.contents buf)) pos
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "!=" | "<>" ->
          push NEQ pos;
          i := !i + 2
      | "<=" ->
          push LE pos;
          i := !i + 2
      | ">=" ->
          push GE pos;
          i := !i + 2
      | _ -> (
          incr i;
          match c with
          | '(' -> push LPAREN pos
          | ')' -> push RPAREN pos
          | '[' -> push LBRACKET pos
          | ']' -> push RBRACKET pos
          | ',' -> push COMMA pos
          | '.' -> push DOT pos
          | '*' -> push STAR pos
          | '=' -> push EQ pos
          | '<' -> push LT pos
          | '>' -> push GT pos
          | '+' -> push PLUS pos
          | '-' -> push MINUS pos
          | '/' -> push SLASH pos
          | _ -> fail pos "unexpected character %C" c)
    end
  done;
  push EOF n;
  List.rev !toks
