(** Minimal JSON values and the one shared string escaper.

    Every textual surface the observability layer (and the HTTP
    server) emits goes through this module instead of ad-hoc string
    concatenation, so an attribute value containing quotes, newlines
    or backslashes can never produce malformed output:

    - [`Json] escaping is full RFC 8259 string escaping, used by the
      server's [/stats] document, the slow-query log and span dumps;
    - [`Prom_label] escaping is the Prometheus text-exposition label
      escape set (backslash, double quote, line feed), used by
      {!Metrics.expose}.

    Serialisation note: JSON has no NaN/Infinity, so non-finite floats
    render as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Append [s] to [b] with the given escaping style (no surrounding
    quotes — the caller owns the delimiters). *)
let escape_to (b : Buffer.t) (style : [ `Json | `Prom_label ]) (s : string) : unit =
  String.iter
    (fun c ->
      match (c, style) with
      | '\\', _ -> Buffer.add_string b "\\\\"
      | '"', _ -> Buffer.add_string b "\\\""
      | '\n', _ -> Buffer.add_string b "\\n"
      (* Prometheus defines only the three escapes above; everything
         else passes through verbatim. *)
      | c, `Prom_label -> Buffer.add_char b c
      | '\t', `Json -> Buffer.add_string b "\\t"
      | '\r', `Json -> Buffer.add_string b "\\r"
      | '\b', `Json -> Buffer.add_string b "\\b"
      | '\012', `Json -> Buffer.add_string b "\\f"
      | c, `Json when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c, `Json -> Buffer.add_char b c)
    s

let escape (style : [ `Json | `Prom_label ]) (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  escape_to b style s;
  Buffer.contents b

(* Compact float syntax that always parses back as JSON: integers
   without the exponent noise, non-finite as null (handled by the
   caller), everything else shortest-round-trip-ish. *)
let float_repr (f : float) : string =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec to_buffer (b : Buffer.t) (v : t) : unit =
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string b (float_repr f)
      else Buffer.add_string b "null"
  | Str s ->
      Buffer.add_char b '"';
      escape_to b `Json s;
      Buffer.add_char b '"'
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b x)
        l;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_to b `Json k;
          Buffer.add_string b "\":";
          to_buffer b x)
        kvs;
      Buffer.add_char b '}'

let to_string (v : t) : string =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b
