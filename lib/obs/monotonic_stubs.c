/* CLOCK_MONOTONIC as integer nanoseconds, for Monotonic.now_ns.
   Returns 0 when the clock is unavailable so the OCaml side can fall
   back to the clamped wall clock. */
#include <stdint.h>
#include <time.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>

CAMLprim value pdb_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
#ifdef CLOCK_MONOTONIC
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
#endif
  return caml_copy_int64(0);
}
