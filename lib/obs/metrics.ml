(** Zero-dependency metrics registry: monotonic counters, gauges and
    fixed-bucket latency histograms, with Prometheus text exposition
    and a JSON mirror (tentpole of PR 4, see DESIGN.md
    "Observability").

    Design constraints, in order:

    - {b Near-zero cost when off.}  Every mutation is guarded by the
      process-wide {!enabled} flag: one ref read and a branch.  Timing
      helpers skip the clock reads entirely when disabled.
    - {b Cheap when on, and domain-safe.}  Samples live in [Atomic.t]
      cells so concurrent domains (snapshot readers, the group-commit
      writer) never lose or tear updates: integer paths are a single
      [fetch_and_add], float paths a short CAS loop.  Float cells box
      on update (one 2-word minor allocation) — the price of lock-free
      float accumulation; the integer histogram/counter hot paths stay
      allocation-free.
    - {b Idempotent registration.}  Handles are registered at module
      initialisation time all over the codebase; registering the same
      (name, labels) twice returns the first handle, so tests and
      layers can re-acquire handles by name.  Registration takes a
      registry-wide lock — it is rare and never on a hot path.

    The registry is process-wide by design ({!default}): it aggregates
    across every open database, matching what a scrape of the process
    should see.  Per-database figures stay in [Pager.stats] /
    [Pool.stats].  Fresh registries ({!create}) exist for tests. *)

type counter = { c_value : float Atomic.t }
type gauge = { g_value : float Atomic.t }

type histogram = {
  h_bounds : float array; (* ascending upper bucket bounds; +Inf is implicit *)
  h_counts : int Atomic.t array; (* one per bound plus the +Inf overflow, non-cumulative *)
  h_sum : float Atomic.t;
  h_total : int Atomic.t;
}

type sample = Counter of counter | Gauge of gauge | Histogram of histogram

type metric = {
  m_name : string;
  m_help : string;
  m_labels : (string * string) list; (* sorted by label name *)
  m_sample : sample;
}

type t = {
  mutable order : string list; (* family names, newest first *)
  families : (string, metric list ref) Hashtbl.t; (* name -> members, newest first *)
  index : (string * (string * string) list, metric) Hashtbl.t;
  reg_mu : Mutex.t; (* guards order/families/index *)
}

let create () : t =
  {
    order = [];
    families = Hashtbl.create 64;
    index = Hashtbl.create 64;
    reg_mu = Mutex.create ();
  }

(** The process-wide registry every layer registers into. *)
let default : t = create ()

(** Master switch.  [false] turns every counter increment, gauge set
    and histogram observation into a guarded no-op — the
    metrics-off side of the overhead ablation ([bench/main.exe obs]). *)
let enabled = ref true

(* Lock-free maximum-free float accumulate: CAS until our add lands. *)
let rec atomic_fadd (a : float Atomic.t) (x : float) : unit =
  let v = Atomic.get a in
  if not (Atomic.compare_and_set a v (v +. x)) then atomic_fadd a x

(** Default latency buckets, in nanoseconds: exponential ×4 from
    250 ns to 4 s — wide enough for a cache-hit page read and a
    spinning-disk fsync in the same histogram. *)
let default_ns_buckets =
  [|
    250.; 1_000.; 4_000.; 16_000.; 64_000.; 250_000.; 1_000_000.; 4_000_000.;
    16_000_000.; 64_000_000.; 250_000_000.; 1_000_000_000.; 4_000_000_000.;
  |]

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s

let register (reg : t) ~name ~help ~labels (make : unit -> sample) : metric =
  if not (valid_name name) then invalid_arg ("Metrics: invalid metric name " ^ name);
  List.iter
    (fun (k, _) ->
      if not (valid_name k) || String.contains k ':' then
        invalid_arg ("Metrics: invalid label name " ^ k))
    labels;
  let labels = List.sort compare labels in
  Mutex.lock reg.reg_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock reg.reg_mu)
    (fun () ->
      match Hashtbl.find_opt reg.index (name, labels) with
      | Some m -> m
      | None ->
          let m = { m_name = name; m_help = help; m_labels = labels; m_sample = make () } in
          (match Hashtbl.find_opt reg.families name with
          | Some members ->
              (* one family, one kind: a name cannot mix counter and gauge *)
              (match ((List.hd !members).m_sample, m.m_sample) with
              | Counter _, Counter _ | Gauge _, Gauge _ | Histogram _, Histogram _ -> ()
              | _ -> invalid_arg ("Metrics: kind mismatch for family " ^ name));
              members := m :: !members
          | None ->
              Hashtbl.replace reg.families name (ref [ m ]);
              reg.order <- name :: reg.order);
          Hashtbl.replace reg.index (name, labels) m;
          m)

let counter ?(registry = default) ?(labels = []) ~help name : counter =
  match
    (register registry ~name ~help ~labels (fun () -> Counter { c_value = Atomic.make 0. }))
      .m_sample
  with
  | Counter c -> c
  | _ -> invalid_arg ("Metrics: " ^ name ^ " is not a counter")

let gauge ?(registry = default) ?(labels = []) ~help name : gauge =
  match
    (register registry ~name ~help ~labels (fun () -> Gauge { g_value = Atomic.make 0. }))
      .m_sample
  with
  | Gauge g -> g
  | _ -> invalid_arg ("Metrics: " ^ name ^ " is not a gauge")

let histogram ?(registry = default) ?(labels = []) ?(buckets = default_ns_buckets) ~help name
    : histogram =
  let make () =
    let n = Array.length buckets in
    for i = 1 to n - 1 do
      if buckets.(i) <= buckets.(i - 1) then
        invalid_arg ("Metrics: bucket bounds must ascend in " ^ name)
    done;
    Histogram
      {
        h_bounds = Array.copy buckets;
        h_counts = Array.init (n + 1) (fun _ -> Atomic.make 0);
        h_sum = Atomic.make 0.;
        h_total = Atomic.make 0;
      }
  in
  match (register registry ~name ~help ~labels make).m_sample with
  | Histogram h -> h
  | _ -> invalid_arg ("Metrics: " ^ name ^ " is not a histogram")

(* --- mutation (all guarded by [enabled]) ------------------------------- *)

let add (c : counter) (x : float) : unit =
  if !enabled then begin
    if x < 0. then invalid_arg "Metrics.add: counters are monotonic";
    atomic_fadd c.c_value x
  end

let inc (c : counter) : unit = if !enabled then atomic_fadd c.c_value 1.
let addi (c : counter) (n : int) : unit = add c (float_of_int n)
let set (g : gauge) (v : float) : unit = if !enabled then Atomic.set g.g_value v
let seti (g : gauge) (n : int) : unit = set g (float_of_int n)

let observe (h : histogram) (x : float) : unit =
  if !enabled then begin
    let n = Array.length h.h_bounds in
    let i = ref 0 in
    while !i < n && x > h.h_bounds.(!i) do
      incr i
    done;
    ignore (Atomic.fetch_and_add h.h_counts.(!i) 1);
    atomic_fadd h.h_sum x;
    ignore (Atomic.fetch_and_add h.h_total 1)
  end

let observe_ns (h : histogram) (ns : int) : unit = observe h (float_of_int ns)

(** Run [f], observing its wall-clock duration in nanoseconds.  When
    metrics are disabled this is a single branch — no clock reads. *)
let time (h : histogram) (f : unit -> 'a) : 'a =
  if not !enabled then f ()
  else begin
    let t0 = Monotonic.now_ns () in
    Fun.protect ~finally:(fun () -> observe_ns h (Monotonic.now_ns () - t0)) f
  end

(* --- readers (tests, CLI) ---------------------------------------------- *)

let counter_value (c : counter) : float = Atomic.get c.c_value
let gauge_value (g : gauge) : float = Atomic.get g.g_value
let hist_total (h : histogram) : int = Atomic.get h.h_total
let hist_sum (h : histogram) : float = Atomic.get h.h_sum
let hist_counts (h : histogram) : int array = Array.map Atomic.get h.h_counts
let hist_bounds (h : histogram) : float array = Array.copy h.h_bounds

(** Estimate the [q]-quantile (0 < q <= 1) of a histogram from its
    bucket counts by linear interpolation inside the bucket the
    quantile rank falls in — the usual Prometheus [histogram_quantile]
    estimate.  Returns [nan] on an empty histogram; observations beyond
    the last finite bound are clamped to that bound. *)
let hist_quantile (h : histogram) (q : float) : float =
  let total = Atomic.get h.h_total in
  let n = Array.length h.h_bounds in
  if total = 0 || n = 0 || q <= 0. || q > 1. then nan
  else begin
    let rank = q *. float_of_int total in
    let rec go i acc =
      if i >= n then h.h_bounds.(n - 1)
      else
        let c = Atomic.get h.h_counts.(i) in
        let acc' = acc +. float_of_int c in
        if acc' >= rank then begin
          let lo = if i = 0 then 0. else h.h_bounds.(i - 1) in
          let hi = h.h_bounds.(i) in
          if c = 0 then hi else lo +. ((hi -. lo) *. ((rank -. acc) /. float_of_int c))
        end
        else go (i + 1) acc'
    in
    go 0 0.
  end

(* --- exposition --------------------------------------------------------- *)

let families_in_order (reg : t) : (string * metric list) list =
  Mutex.lock reg.reg_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock reg.reg_mu)
    (fun () ->
      List.rev_map
        (fun name -> (name, List.rev !(Hashtbl.find reg.families name)))
        reg.order)

let value_repr (v : float) : string =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Json.float_repr v

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

(* `{a="x",b="y"}` (or "" when empty), with [extra] appended last. *)
let labels_repr ?extra (labels : (string * string) list) : string =
  let all = labels @ (match extra with None -> [] | Some kv -> [ kv ]) in
  if all = [] then ""
  else begin
    let b = Buffer.create 64 in
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b k;
        Buffer.add_string b "=\"";
        Json.escape_to b `Prom_label v;
        Buffer.add_char b '"')
      all;
    Buffer.add_char b '}';
    Buffer.contents b
  end

(* HELP text escaping: the exposition format escapes backslash and
   line feed in help lines (no quotes involved). *)
let help_repr (s : string) : string =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** Render the registry in the Prometheus text exposition format
    (version 0.0.4): one [# HELP] / [# TYPE] header per family, then
    one sample line per counter/gauge, and for histograms the
    cumulative [_bucket{le=...}] series plus [_sum] and [_count].
    Histogram series are rendered from one snapshot of the bucket
    array, so concurrent observations cannot make the cumulative
    counts non-monotonic within a single scrape. *)
let expose ?(registry = default) () : string =
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, members) ->
      let head = List.hd members in
      if head.m_help <> "" then
        Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name (help_repr head.m_help));
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name (kind_name head.m_sample));
      List.iter
        (fun m ->
          match m.m_sample with
          | Counter c ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %s\n" name (labels_repr m.m_labels)
                   (value_repr (Atomic.get c.c_value)))
          | Gauge g ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %s\n" name (labels_repr m.m_labels)
                   (value_repr (Atomic.get g.g_value)))
          | Histogram h ->
              let counts = Array.map Atomic.get h.h_counts in
              let cum = ref 0 in
              Array.iteri
                (fun i cnt ->
                  cum := !cum + cnt;
                  let le =
                    if i < Array.length h.h_bounds then value_repr h.h_bounds.(i) else "+Inf"
                  in
                  Buffer.add_string b
                    (Printf.sprintf "%s_bucket%s %d\n" name
                       (labels_repr ~extra:("le", le) m.m_labels)
                       !cum))
                counts;
              Buffer.add_string b
                (Printf.sprintf "%s_sum%s %s\n" name (labels_repr m.m_labels)
                   (value_repr (Atomic.get h.h_sum)));
              Buffer.add_string b
                (Printf.sprintf "%s_count%s %d\n" name (labels_repr m.m_labels)
                   (Atomic.get h.h_total)))
        members)
    (families_in_order registry);
  Buffer.contents b

(** The same registry contents as a JSON value — the machine-readable
    half of the server's [/stats] document. *)
let expose_json ?(registry = default) () : Json.t =
  let sample_json (m : metric) : Json.t =
    let labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) m.m_labels) in
    match m.m_sample with
    | Counter c -> Json.Obj [ ("labels", labels); ("value", Json.Float (Atomic.get c.c_value)) ]
    | Gauge g -> Json.Obj [ ("labels", labels); ("value", Json.Float (Atomic.get g.g_value)) ]
    | Histogram h ->
        let counts = Array.map Atomic.get h.h_counts in
        let cum = ref 0 in
        let buckets =
          Array.to_list
            (Array.mapi
               (fun i cnt ->
                 cum := !cum + cnt;
                 let le =
                   if i < Array.length h.h_bounds then value_repr h.h_bounds.(i) else "+Inf"
                 in
                 (le, Json.Int !cum))
               counts)
        in
        Json.Obj
          [
            ("labels", labels);
            ("buckets", Json.Obj buckets);
            ("sum", Json.Float (Atomic.get h.h_sum));
            ("count", Json.Int (Atomic.get h.h_total));
          ]
  in
  Json.Obj
    (List.map
       (fun (name, members) ->
         let head = List.hd members in
         ( name,
           Json.Obj
             [
               ("type", Json.Str (kind_name head.m_sample));
               ("help", Json.Str head.m_help);
               ("values", Json.List (List.map sample_json members));
             ] ))
       (families_in_order registry))
