(** Slow-query log: a small ring of the most recent queries whose
    execution crossed {!threshold_ns} (default 10 ms).  Feeds the
    [slow_queries] array in the server's [/stats] document and the
    [pdb_slow_queries_total] counter. *)

type entry = { query : string; kind : string; dur_ns : int; at_ns : int }

let default_threshold_ns = 10_000_000
let threshold_ns = ref default_threshold_ns

(** Configure the slow-query threshold (also settable from the command
    line via [pdb --slowlog-ms]).  Negative values are clamped to 0 —
    "log every query". *)
let set_threshold_ns ns = threshold_ns := max 0 ns
let set_threshold_ms ms = set_threshold_ns (int_of_float (ms *. 1e6))
let cap = 64
let ring : entry option array = Array.make cap None
let write_pos = ref 0
let mu = Mutex.create () (* guards ring/write_pos: queries finish on any domain *)

let total =
  Metrics.counter "pdb_slow_queries_total"
    ~help:"Queries slower than the slow-query threshold"

let clear () =
  Mutex.lock mu;
  Array.fill ring 0 cap None;
  write_pos := 0;
  Mutex.unlock mu

(** Record [query] if it was slow enough; cheap no-op otherwise. *)
let note ~(kind : string) ~(dur_ns : int) (query : string) : unit =
  if !Metrics.enabled && dur_ns >= !threshold_ns then begin
    Metrics.inc total;
    let e = Some { query; kind; dur_ns; at_ns = Monotonic.now_ns () } in
    Mutex.lock mu;
    ring.(!write_pos mod cap) <- e;
    incr write_pos;
    Mutex.unlock mu
  end

(** Logged entries, oldest first. *)
let entries () : entry list =
  Mutex.lock mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mu)
    (fun () ->
      let n = min cap !write_pos in
      let first = !write_pos - n in
      List.filter_map (fun i -> ring.((first + i) mod cap)) (List.init n (fun i -> i)))

let to_json () : Json.t =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           [
             ("query", Json.Str e.query);
             ("kind", Json.Str e.kind);
             ("dur_ns", Json.Int e.dur_ns);
           ])
       (entries ()))
