(** Span-based tracer: a bounded ring buffer of finished spans.

    Disabled by default; when {!enabled} is off, {!with_span} is a
    single ref read and a tail call of the wrapped function — no
    allocation, no clock reads.  When on, each completed region is
    recorded as [{id; name; start_ns; dur_ns; parent; attrs}] in a
    fixed-capacity ring.  Span ids are unique and strictly increasing
    for the life of the process, so a parent link stays meaningful
    even after the parent span itself has been overwritten by ring
    wraparound: [parent = 0] means root, and a missing parent id just
    renders at depth zero in {!to_text}.

    Spans are recorded at {e completion} (children before parents),
    which is why rendering sorts by id — ids are allocated at span
    {e start}, restoring the natural outer-before-inner order.

    Domain safety: the finished-span ring is guarded by a mutex (span
    completion is not a hot path — it already pays two clock reads),
    span ids come from an [Atomic.t], and the open-span stack is
    {e domain-local} ([Domain.DLS]) so each domain nests its own spans
    without seeing another domain's parents. *)

type span = {
  id : int; (* unique, > 0, allocated at span start *)
  name : string;
  start_ns : int;
  dur_ns : int;
  parent : int; (* 0 = root *)
  attrs : (string * string) list;
}

(** Tracing switch, independent of [Metrics.enabled]. *)
let enabled = ref false

let dummy = { id = 0; name = ""; start_ns = 0; dur_ns = 0; parent = 0; attrs = [] }

let mu = Mutex.create () (* guards capacity/ring/write_pos *)
let capacity = ref 512
let ring : span array ref = ref (Array.make !capacity dummy)
let write_pos = ref 0 (* total spans ever recorded *)
let next_id = Atomic.make 0

let locked (f : unit -> 'a) : 'a =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* Spans started but not yet finished, innermost first — one stack
   per domain, so nesting is tracked where the spans actually run. *)
type open_span = { o_id : int; o_name : string; o_start : int; mutable o_attrs : (string * string) list }

let open_stack : open_span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(** Resize the ring and drop all recorded spans (open spans survive). *)
let set_capacity (n : int) : unit =
  if n < 1 then invalid_arg "Trace.set_capacity";
  locked (fun () ->
      capacity := n;
      ring := Array.make n dummy;
      write_pos := 0)

let clear () : unit =
  locked (fun () ->
      ring := Array.make !capacity dummy;
      write_pos := 0);
  Domain.DLS.get open_stack := []

let record (s : span) : unit =
  locked (fun () ->
      !ring.(!write_pos mod !capacity) <- s;
      incr write_pos)

(** Attach an attribute to the innermost open span of the calling
    domain (no-op when tracing is off or no span is open). *)
let add_attr (k : string) (v : string) : unit =
  if !enabled then
    match !(Domain.DLS.get open_stack) with
    | [] -> ()
    | o :: _ -> o.o_attrs <- (k, v) :: o.o_attrs

(** Run [f] inside a span named [name].  The span is recorded even if
    [f] raises (the exception is re-raised). *)
let with_span ?(attrs = []) (name : string) (f : unit -> 'a) : 'a =
  if not !enabled then f ()
  else begin
    let id = Atomic.fetch_and_add next_id 1 + 1 in
    let stack = Domain.DLS.get open_stack in
    let parent = match !stack with [] -> 0 | o :: _ -> o.o_id in
    let o = { o_id = id; o_name = name; o_start = Monotonic.now_ns (); o_attrs = List.rev attrs } in
    stack := o :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (match !stack with
        | top :: rest when top.o_id = id -> stack := rest
        | s -> stack := List.filter (fun x -> x.o_id <> id) s);
        record
          {
            id;
            name = o.o_name;
            start_ns = o.o_start;
            dur_ns = Monotonic.now_ns () - o.o_start;
            parent;
            attrs = List.rev o.o_attrs;
          })
      f
  end

(** Recorded spans, oldest first. *)
let spans () : span list =
  locked (fun () ->
      let cap = !capacity and total = !write_pos in
      let n = min cap total in
      let first = total - n in
      let r = !ring in
      List.init n (fun i -> r.((first + i) mod cap)))

(** How many spans have been evicted by ring wraparound. *)
let dropped () : int = locked (fun () -> max 0 (!write_pos - !capacity))

(** Total spans ever recorded (including dropped ones). *)
let recorded () : int = locked (fun () -> !write_pos)

(* --- text rendering (pdb trace) ---------------------------------------- *)

let span_attrs_repr (attrs : (string * string) list) : string =
  if attrs = [] then ""
  else begin
    let b = Buffer.create 64 in
    Buffer.add_string b "  {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_string b k;
        Buffer.add_string b "=\"";
        Json.escape_to b `Json v;
        Buffer.add_char b '"')
      attrs;
    Buffer.add_char b '}';
    Buffer.contents b
  end

let dur_repr (ns : int) : string =
  if ns >= 1_000_000_000 then Printf.sprintf "%.3fs" (float_of_int ns /. 1e9)
  else if ns >= 1_000_000 then Printf.sprintf "%.3fms" (float_of_int ns /. 1e6)
  else if ns >= 1_000 then Printf.sprintf "%.1fus" (float_of_int ns /. 1e3)
  else Printf.sprintf "%dns" ns

(** Render the buffer as an indented tree.  Sorting by id restores
    start order; depth is computed from parents still present in the
    buffer (evicted parents render their children at the root). *)
let to_text () : string =
  let all = List.sort (fun a b -> compare a.id b.id) (spans ()) in
  let depth = Hashtbl.create 64 in
  let b = Buffer.create 1024 in
  List.iter
    (fun s ->
      let d =
        match Hashtbl.find_opt depth s.parent with
        | Some pd -> pd + 1
        | None -> 0
      in
      Hashtbl.replace depth s.id d;
      Buffer.add_string b
        (Printf.sprintf "%s%s  %s%s\n" (String.make (2 * d) ' ') s.name (dur_repr s.dur_ns)
           (span_attrs_repr s.attrs)))
    all;
  (match dropped () with
  | 0 -> ()
  | n -> Buffer.add_string b (Printf.sprintf "(%d earlier spans dropped by ring wraparound)\n" n));
  Buffer.contents b

let span_json (s : span) : Json.t =
  Json.Obj
    [
      ("id", Json.Int s.id);
      ("name", Json.Str s.name);
      ("start_ns", Json.Int s.start_ns);
      ("dur_ns", Json.Int s.dur_ns);
      ("parent", Json.Int s.parent);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.attrs));
    ]

let to_json () : Json.t = Json.List (List.map span_json (spans ()))
