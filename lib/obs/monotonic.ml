(** A cheap, never-going-backwards nanosecond clock.

    The primary source is a one-line C stub over
    [clock_gettime(CLOCK_MONOTONIC)] — a true monotonic clock that
    wall-clock steps (NTP slew, manual reset) cannot skew, which
    matters now that spans from several domains are timed against each
    other.  If the stub reports the clock unavailable at start-up
    (exotic libc), we fall back to the historical seam:
    [Unix.gettimeofday] (a vDSO call, ~25 ns) converted to integer
    nanoseconds and clamped to be non-decreasing, so a backwards step
    freezes the reading instead of producing negative durations.

    The clamp state is an [Atomic.t]: several domains read the clock
    concurrently, and a plain ref would tear the published maximum.
    The fallback conversion goes through integer microseconds so the
    result is exact: multiplying seconds-as-float directly by 1e9
    would exceed the 53-bit mantissa and quantise readings by
    ~256 ns. *)

external clock_monotonic_ns : unit -> int64 = "pdb_clock_monotonic_ns"

(* Probe once at module init: 0 means the stub could not read
   CLOCK_MONOTONIC on this system. *)
let have_monotonic = clock_monotonic_ns () <> 0L
let last = Atomic.make 0

(* Publish [t] as the new maximum and return the largest reading any
   domain has seen — a CAS loop so concurrent readers never observe
   the clock going backwards. *)
let rec clamp (t : int) : int =
  let prev = Atomic.get last in
  if t <= prev then prev
  else if Atomic.compare_and_set last prev t then t
  else clamp t

(** Current time in integer nanoseconds, non-decreasing within the
    process.  Only differences are meaningful; the epoch is boot time
    on the monotonic path and the Unix epoch on the fallback, so
    callers must not rely on it. *)
let now_ns () : int =
  if have_monotonic then Int64.to_int (clock_monotonic_ns ())
  else
    let us = int_of_float (Unix.gettimeofday () *. 1e6) in
    clamp (us * 1000)
