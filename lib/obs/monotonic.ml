(** A cheap, never-going-backwards nanosecond clock.

    The stdlib offers no monotonic clock without C stubs, so this is
    [Unix.gettimeofday] (a vDSO call, ~25 ns) converted to integer
    nanoseconds and clamped to be non-decreasing: a wall-clock step
    backwards (NTP slew, manual reset) freezes the reading instead of
    producing negative durations.  Resolution is therefore the
    microsecond [gettimeofday] provides — coarse against a real
    [CLOCK_MONOTONIC], but plenty for the syscall- and query-level
    latencies the observability layer measures (see DESIGN.md
    "Observability").

    The conversion goes through integer microseconds so the result is
    exact: multiplying seconds-as-float directly by 1e9 would exceed
    the 53-bit mantissa and quantise readings by ~256 ns. *)

let last = ref 0

(** Current time in integer nanoseconds, non-decreasing within the
    process.  Only differences are meaningful; the epoch is the Unix
    epoch today but callers must not rely on that. *)
let now_ns () : int =
  let us = int_of_float (Unix.gettimeofday () *. 1e6) in
  let t = us * 1000 in
  if t > !last then last := t;
  !last
