(** Comparing classifications (thesis 2.1.3, 7.1.1 and the SSDBM'01
    companion paper "Two Approaches to Representing Multiple
    Overlapping Classifications").

    Two classifications of shared material are compared *through the
    material*: the only objective fixed points are the leaves
    (specimens).  This module reports, for two contexts over the same
    relationship class:

    - leaves present in one classification but not the other,
    - leaves placed under different parents (moved items),
    - pairs of groups with identical leaf sets (structural agreement),
    - an overall agreement score. *)

open Pmodel
module OidSet = Database.OidSet

type report = {
  only_in_a : OidSet.t; (* leaves classified only in context a *)
  only_in_b : OidSet.t;
  moved : (int * int * int) list; (* leaf, parent in a, parent in b *)
  agreeing_groups : (int * int) list; (* taxon in a, taxon in b with equal leaf sets *)
  agreement : float; (* fraction of shared leaves with matching parents, 0..1 *)
}

(* Leaf tests are set-based, so they can run off the CSR snapshot;
   [parent_in] stays on the legacy path because it observes list
   *order* (first parent), which the snapshot does not preserve. *)
let is_leaf db ?csr ~rel ctx n : bool =
  if Traverse.use_csr csr then not (Csr.has_out (Csr.get (Csr.handle db) ~context:ctx ~rel ()) n)
  else Traverse.children db ~context:ctx ~rel n = []

let leaves_of db ?csr ~rel ctx : OidSet.t =
  let nodes = Traverse.nodes_of_context db ~rel ctx in
  OidSet.filter (fun n -> is_leaf db ?csr ~rel ctx n) nodes

let parent_in db ~rel ctx leaf : int option =
  match Traverse.parents db ~context:ctx ~rel leaf with p :: _ -> Some p | [] -> None

(** Leaf set below [node] (the node itself when it is a leaf). *)
let leafset db ?csr ~rel ctx node : OidSet.t =
  let clo = Traverse.closure db ~context:ctx ?csr ~rel node in
  OidSet.filter (fun n -> is_leaf db ?csr ~rel ctx n) clo

let compare_contexts db ?csr ~rel ~ctx_a ~ctx_b () : report =
  let la = leaves_of db ?csr ~rel ctx_a in
  let lb = leaves_of db ?csr ~rel ctx_b in
  let shared = OidSet.inter la lb in
  let only_in_a = OidSet.diff la lb in
  let only_in_b = OidSet.diff lb la in
  let moved, same =
    OidSet.fold
      (fun leaf (moved, same) ->
        match (parent_in db ~rel ctx_a leaf, parent_in db ~rel ctx_b leaf) with
        | Some pa, Some pb ->
            (* parents are distinct objects across contexts only when the
               classifications use distinct group objects; when groups are
               shared, equality is direct.  Either way compare by leafset
               to stay objective. *)
            if
              pa = pb
              || OidSet.equal (leafset db ?csr ~rel ctx_a pa) (leafset db ?csr ~rel ctx_b pb)
            then (moved, same + 1)
            else ((leaf, pa, pb) :: moved, same)
        | _ -> (moved, same))
      shared ([], 0)
  in
  (* group-level agreement: pairs of internal nodes with equal leaf sets *)
  let internal ctx =
    OidSet.filter
      (fun n -> not (is_leaf db ?csr ~rel ctx n))
      (Traverse.nodes_of_context db ~rel ctx)
  in
  let ia = internal ctx_a and ib = internal ctx_b in
  let agreeing_groups =
    OidSet.fold
      (fun ga acc ->
        let sa = leafset db ?csr ~rel ctx_a ga in
        OidSet.fold
          (fun gb acc ->
            if (not (OidSet.is_empty sa)) && OidSet.equal sa (leafset db ?csr ~rel ctx_b gb) then
              (ga, gb) :: acc
            else acc)
          ib acc)
      ia []
  in
  let n_shared = OidSet.cardinal shared in
  let agreement = if n_shared = 0 then 1.0 else float_of_int same /. float_of_int n_shared in
  { only_in_a; only_in_b; moved; agreeing_groups; agreement }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>only in a: %d@ only in b: %d@ moved: %d@ agreeing groups: %d@ agreement: %.2f@]"
    (OidSet.cardinal r.only_in_a) (OidSet.cardinal r.only_in_b) (List.length r.moved)
    (List.length r.agreeing_groups) r.agreement
