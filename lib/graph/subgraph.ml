(** Graphs as manipulable entities (thesis req. 1: "see graphs as an
    entity and manipulate that entity as a whole").

    A subgraph is a set of nodes plus the relationship instances
    (edges) among them.  Subgraphs can be extracted from a root within
    a classification context, compared, and copied into a fresh
    context — the operation underlying taxonomic revisions, where an
    existing classification is duplicated to serve as the starting
    point of a new one. *)

open Pmodel
module OidSet = Database.OidSet

type t = { nodes : OidSet.t; edges : int list (* relationship instance oids *) }

let empty = { nodes = OidSet.empty; edges = [] }
let node_count g = OidSet.cardinal g.nodes
let edge_count g = List.length g.edges

(** Extract the subgraph reachable from [root] through [rel] edges
    (restricted to [context] if given).  Includes the root. *)
let extract db ?context ?csr ~rel root : t =
  if Traverse.use_csr csr then begin
    let s = Csr.get (Csr.handle db) ?context ~rel () in
    let nodes = Csr.descendants s ~min_depth:0 root in
    { nodes; edges = Csr.closure_edges s nodes }
  end
  else begin
    let nodes = Traverse.closure db ?context ~csr:false ~rel root in
    let edges =
      OidSet.fold
        (fun n acc ->
          List.fold_left
            (fun acc (r : Obj.t) ->
              if OidSet.mem (Obj.destination r) nodes then r.Obj.oid :: acc else acc)
            acc
            (Database.outgoing db ?context ~rel_name:rel n))
        nodes []
    in
    { nodes; edges }
  end

(** The full graph of a classification context. *)
let of_context db ~rel ctx : t =
  let nodes = Traverse.nodes_of_context db ~rel ctx in
  let edges =
    List.filter_map
      (fun (r : Obj.t) ->
        if Meta.is_subclass (Database.schema db) ~sub:r.Obj.class_name ~super:rel then
          Some r.Obj.oid
        else None)
      (Database.context_rels db ctx)
  in
  { nodes; edges }

(** Copy all edges of [g] into classification context [into]: the
    nodes are shared (classification is orthogonal to the classified
    data), only the classification structure is duplicated.  Edge
    attributes are carried over.  Returns the oids of the new edges. *)
let copy_into db (g : t) ~into : int list =
  List.map
    (fun edge_oid ->
      let r = Database.get_exn db edge_oid in
      let attrs =
        List.filter (fun (k, _) -> not (Obj.is_reserved_attr k)) (Obj.fields r)
      in
      Database.link db ~context:into ~attrs r.Obj.class_name ~origin:(Obj.origin r)
        ~destination:(Obj.destination r))
    g.edges

(* --- comparisons (thesis 7.1: comparing classifications) --------------- *)

(** Nodes present in both subgraphs — e.g. specimens shared by two
    classifications. *)
let shared_nodes a b = OidSet.inter a.nodes b.nodes

(** Jaccard overlap of the node sets: |a ∩ b| / |a ∪ b|. *)
let overlap a b : float =
  let inter = OidSet.cardinal (OidSet.inter a.nodes b.nodes) in
  let union = OidSet.cardinal (OidSet.union a.nodes b.nodes) in
  if union = 0 then 0. else float_of_int inter /. float_of_int union

(** Structural equality of two subgraphs up to shared nodes: same node
    sets and same (origin, destination, class) edge triples. *)
let same_structure db a b : bool =
  let key oid =
    let r = Database.get_exn db oid in
    (Obj.origin r, Obj.destination r, r.Obj.class_name)
  in
  OidSet.equal a.nodes b.nodes
  && List.sort compare (List.map key a.edges) = List.sort compare (List.map key b.edges)
