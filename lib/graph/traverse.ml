(** Graph exploration over relationship instances.

    Relationship instances form a directed graph whose nodes are
    objects and whose edges are the instances of a relationship class
    (or of all relationship classes).  Classifications are subgraphs
    selected by a context (thesis 4.6); this module provides the
    recursive exploration primitives required by taxonomy (thesis
    req. 9): bounded and unbounded descent, ancestors, reachability,
    roots/leaves and cycle detection.

    Edge direction convention: the *origin* of a relationship instance
    is the container/parent (e.g. a circumscription taxon), the
    *destination* the member/child. *)

open Pmodel
module OidSet = Database.OidSet

(** Whether to take the CSR-snapshot fast path: an explicit [?csr]
    argument wins, otherwise the module-level {!Csr.enabled} switch
    (the ablation lever) decides. *)
let use_csr = function Some b -> b | None -> !Csr.enabled

(** Destinations of outgoing edges of [oid]. *)
let children db ?context ~rel oid : int list =
  List.map Obj.destination (Database.outgoing db ?context ~rel_name:rel oid)

(** Origins of incoming edges of [oid]. *)
let parents db ?context ~rel oid : int list =
  List.map Obj.origin (Database.incoming db ?context ~rel_name:rel oid)

(** Breadth-first descent.  Returns all nodes reachable from [root]
    through outgoing [rel] edges at depth [>= min_depth] and
    [<= max_depth] (defaults: 1 and unbounded — i.e. proper
    descendants).  Safe on cyclic graphs. *)
let descendants db ?context ?csr ?(min_depth = 1) ?max_depth ~rel root : OidSet.t =
  if use_csr csr then
    Csr.descendants (Csr.get (Csr.handle db) ?context ~rel ()) ~min_depth ?max_depth root
  else begin
    let result = ref OidSet.empty in
    let visited = Hashtbl.create 64 in
    let q = Queue.create () in
    Queue.add (root, 0) q;
    Hashtbl.replace visited root ();
    while not (Queue.is_empty q) do
      let node, d = Queue.pop q in
      if d >= min_depth then result := OidSet.add node !result;
      let descend = match max_depth with None -> true | Some m -> d < m in
      if descend then
        List.iter
          (fun c ->
            if not (Hashtbl.mem visited c) then begin
              Hashtbl.replace visited c ();
              Queue.add (c, d + 1) q
            end)
          (children db ?context ~rel node)
    done;
    (* the root itself is included only if min_depth = 0 *)
    if min_depth > 0 then OidSet.remove root !result else !result
  end

(** Ancestors, symmetric to {!descendants}. *)
let ancestors db ?context ?csr ?(min_depth = 1) ?max_depth ~rel node : OidSet.t =
  if use_csr csr then
    Csr.ancestors (Csr.get (Csr.handle db) ?context ~rel ()) ~min_depth ?max_depth node
  else begin
    let result = ref OidSet.empty in
    let visited = Hashtbl.create 64 in
    let q = Queue.create () in
    Queue.add (node, 0) q;
    Hashtbl.replace visited node ();
    while not (Queue.is_empty q) do
      let n, d = Queue.pop q in
      if d >= min_depth then result := OidSet.add n !result;
      let ascend = match max_depth with None -> true | Some m -> d < m in
      if ascend then
        List.iter
          (fun p ->
            if not (Hashtbl.mem visited p) then begin
              Hashtbl.replace visited p ();
              Queue.add (p, d + 1) q
            end)
          (parents db ?context ~rel n)
    done;
    if min_depth > 0 then OidSet.remove node !result else !result
  end

(** Transitive closure: descendants including the root. *)
let closure db ?context ?csr ~rel root : OidSet.t =
  descendants db ?context ?csr ~min_depth:0 ~rel root

let reachable db ?context ?csr ~rel src dst : bool =
  OidSet.mem dst (descendants db ?context ?csr ~rel src)

(** Shortest path (as a node list, src first) through outgoing [rel]
    edges, or [None]. *)
let shortest_path db ?context ~rel src dst : int list option =
  if src = dst then Some [ src ]
  else begin
    let pred = Hashtbl.create 64 in
    let q = Queue.create () in
    Queue.add src q;
    Hashtbl.replace pred src src;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let n = Queue.pop q in
      List.iter
        (fun c ->
          if not (Hashtbl.mem pred c) then begin
            Hashtbl.replace pred c n;
            if c = dst then found := true else Queue.add c q
          end)
        (children db ?context ~rel n)
    done;
    if not !found then None
    else begin
      let rec build n acc = if n = src then src :: acc else build (Hashtbl.find pred n) (n :: acc) in
      Some (build dst [])
    end
  end

(** Nodes of [universe] with no incoming [rel] edge (in [context]). *)
let roots db ?context ?csr ~rel (universe : OidSet.t) : int list =
  if use_csr csr then begin
    let s = Csr.get (Csr.handle db) ?context ~rel () in
    OidSet.elements (OidSet.filter (fun o -> not (Csr.has_in s o)) universe)
  end
  else OidSet.elements (OidSet.filter (fun o -> parents db ?context ~rel o = []) universe)

(** Nodes of [universe] with no outgoing [rel] edge (in [context]). *)
let leaves db ?context ?csr ~rel (universe : OidSet.t) : int list =
  if use_csr csr then begin
    let s = Csr.get (Csr.handle db) ?context ~rel () in
    OidSet.elements (OidSet.filter (fun o -> not (Csr.has_out s o)) universe)
  end
  else OidSet.elements (OidSet.filter (fun o -> children db ?context ~rel o = []) universe)

(** All nodes participating in [rel] edges of [context]. *)
let nodes_of_context db ~rel ctx : OidSet.t =
  List.fold_left
    (fun acc r ->
      if Meta.is_subclass (Database.schema db) ~sub:r.Obj.class_name ~super:rel then
        OidSet.add (Obj.origin r) (OidSet.add (Obj.destination r) acc)
      else acc)
    OidSet.empty
    (Database.context_rels db ctx)

(** Cycle detection among [rel] edges restricted to [context]. *)
let has_cycle db ?context ~rel (universe : OidSet.t) : bool =
  let state = Hashtbl.create 64 in
  (* 0 = in progress, 1 = done *)
  let rec visit n =
    match Hashtbl.find_opt state n with
    | Some 0 -> true
    | Some _ -> false
    | None ->
        Hashtbl.replace state n 0;
        let cyc = List.exists visit (children db ?context ~rel n) in
        Hashtbl.replace state n 1;
        cyc
  in
  OidSet.exists visit universe

(** Depth-first fold over the tree/graph below [root]; [f] receives
    (node, depth, accumulator).  Each node visited once. *)
let fold_dfs db ?context ~rel root ~init ~f =
  let visited = Hashtbl.create 64 in
  let rec go acc node depth =
    if Hashtbl.mem visited node then acc
    else begin
      Hashtbl.replace visited node ();
      let acc = f acc node depth in
      List.fold_left (fun acc c -> go acc c (depth + 1)) acc (children db ?context ~rel node)
    end
  in
  go init root 0
