(** CSR adjacency snapshots for graph traversal.

    Every traversal hop in the legacy path re-queries
    [Database.outgoing]/[incoming]: a hash lookup, an [OidSet] fold, an
    object fetch and a subclass check *per edge per hop*, allocating a
    fresh [Obj.t list] each time.  For the recursive exploration at the
    heart of taxonomic workloads (thesis 5.1.1.3) that cost dominates.

    This module snapshots the adjacency of one [(context, relationship
    class)] pair into compressed-sparse-row form — flat int arrays of
    offsets, neighbour slots and edge oids, both directions — built
    lazily on first traversal and reused until invalidated.  The
    subclass and context filtering happens once at build time; a
    traversal hop is then an array slice walk with no allocation.

    Invalidation goes through the existing event bus: any relationship
    create/update/delete, and transaction abort (whose mirror rebuild
    can change the graph wholesale), drop all snapshots for the
    database.  Snapshots never observe uncommitted staleness because
    the object layer emits the event in the same call that mutates the
    mirror, before any query can run.

    The optimised evaluator enables snapshots per query via
    [Eval.config]; the module-level {!enabled} switch is the coarse
    ablation lever used by benchmarks. *)

open Pmodel
open Pevent
module OidSet = Database.OidSet

type snapshot = {
  node_count : int;
  node_of : int array; (* slot -> oid, ascending *)
  slot_of : (int, int) Hashtbl.t; (* oid -> slot *)
  (* outgoing edges, CSR: edges of slot s are indices out_off.(s) ..
     out_off.(s+1) - 1 of out_tgt (destination slot) and out_edge
     (relationship-instance oid) *)
  out_off : int array;
  out_tgt : int array;
  out_edge : int array;
  (* incoming edges, symmetric *)
  in_off : int array;
  in_src : int array;
  in_edge : int array;
}

type t = {
  db : Database.t;
  snaps : (string * int option, snapshot) Hashtbl.t; (* (rel, context) *)
  mu : Mutex.t; (* guards [snaps]/[rebuilds]: traversals may run on any domain *)
  mutable rebuilds : int; (* snapshots built (adjacency_rebuilds stat) *)
}

(** Coarse ablation switch consulted when a traversal is not given an
    explicit [~csr] argument (benchmarks flip it; the evaluator passes
    its config instead). *)
let enabled = ref true

(* ---------------------------------------------------------------------- *)
(* Snapshot construction                                                   *)
(* ---------------------------------------------------------------------- *)

let build db ?context ~rel () : snapshot =
  let schema = Database.schema db in
  (* collect the matching edges once; subclass/context checks happen
     here and never again *)
  let edges = ref [] and edge_count = ref 0 in
  Database.iter_objects db (fun o ->
      if
        Database.is_rel_instance db o
        && Meta.is_subclass schema ~sub:o.Obj.class_name ~super:rel
        && (match context with None -> true | Some c -> Obj.context o = Some c)
      then begin
        edges := (Obj.origin o, Obj.destination o, o.Obj.oid) :: !edges;
        incr edge_count
      end);
  let edges = !edges and m = !edge_count in
  let node_set =
    List.fold_left (fun s (a, b, _) -> OidSet.add a (OidSet.add b s)) OidSet.empty edges
  in
  let n = OidSet.cardinal node_set in
  let node_of = Array.make (max n 1) 0 in
  let slot_of = Hashtbl.create (2 * n + 1) in
  let i = ref 0 in
  OidSet.iter
    (fun oid ->
      node_of.(!i) <- oid;
      Hashtbl.replace slot_of oid !i;
      incr i)
    node_set;
  (* counting sort into CSR, both directions *)
  let out_off = Array.make (n + 1) 0 and in_off = Array.make (n + 1) 0 in
  List.iter
    (fun (a, b, _) ->
      let sa = Hashtbl.find slot_of a and sb = Hashtbl.find slot_of b in
      out_off.(sa + 1) <- out_off.(sa + 1) + 1;
      in_off.(sb + 1) <- in_off.(sb + 1) + 1)
    edges;
  for s = 1 to n do
    out_off.(s) <- out_off.(s) + out_off.(s - 1);
    in_off.(s) <- in_off.(s) + in_off.(s - 1)
  done;
  let out_cur = Array.sub out_off 0 n and in_cur = Array.sub in_off 0 n in
  let out_tgt = Array.make m 0 and out_edge = Array.make m 0 in
  let in_src = Array.make m 0 and in_edge = Array.make m 0 in
  List.iter
    (fun (a, b, e) ->
      let sa = Hashtbl.find slot_of a and sb = Hashtbl.find slot_of b in
      let jo = out_cur.(sa) in
      out_cur.(sa) <- jo + 1;
      out_tgt.(jo) <- sb;
      out_edge.(jo) <- e;
      let ji = in_cur.(sb) in
      in_cur.(sb) <- ji + 1;
      in_src.(ji) <- sa;
      in_edge.(ji) <- e)
    edges;
  { node_count = n; node_of; slot_of; out_off; out_tgt; out_edge; in_off; in_src; in_edge }

(* ---------------------------------------------------------------------- *)
(* Per-database managers                                                   *)
(* ---------------------------------------------------------------------- *)

let create db : t =
  let t = { db; snaps = Hashtbl.create 8; mu = Mutex.create (); rebuilds = 0 } in
  let _ : Bus.sub_id =
    Bus.subscribe (Database.bus db) ~name:"csr-invalidate"
      (Event.Any_of [ Event.rel_change; Event.On_abort ])
      (fun _ ->
        Mutex.lock t.mu;
        Hashtbl.reset t.snaps;
        Mutex.unlock t.mu)
  in
  t

(* The manager lives on the database record itself (Database.ext), so
   it — snapshots, bus subscription and the rebuild counter — shares
   the database's lifetime exactly: no registry cap to silently reset a
   live database's statistics, no strong reference keeping a closed
   database (and its store) alive. *)
type Database.ext += Csr_manager of t

let ext_key = "graph.csr"

let handle db : t =
  match Database.ext_get_or_init db ext_key (fun () -> Csr_manager (create db)) with
  | Csr_manager m -> m
  | _ -> assert false

let m_rebuilds =
  Pobs.Metrics.counter "pdb_csr_rebuilds_total" ~help:"CSR adjacency snapshots built"

let m_build_ns = Pobs.Metrics.histogram "pdb_csr_build_ns" ~help:"CSR snapshot build time"

(** The snapshot for [(context, rel)], building it on first use. *)
let get (t : t) ?context ~rel () : snapshot =
  let key = (rel, context) in
  let cached =
    Mutex.lock t.mu;
    let r = Hashtbl.find_opt t.snaps key in
    Mutex.unlock t.mu;
    r
  in
  match cached with
  | Some s -> s
  | None ->
      (* build outside the lock: an invalidation racing the build can
         only make this snapshot redundant, never stale — the bus event
         fires before any query can observe the new graph *)
      let s = Pobs.Metrics.time m_build_ns (fun () -> build t.db ?context ~rel ()) in
      Mutex.lock t.mu;
      t.rebuilds <- t.rebuilds + 1;
      Hashtbl.replace t.snaps key s;
      Mutex.unlock t.mu;
      Pobs.Metrics.inc m_rebuilds;
      s

(** Snapshots built so far for [db] (0 if none were ever requested) —
    the [adjacency_rebuilds] statistic. *)
let rebuild_count db : int =
  match Database.ext_find db ext_key with Some (Csr_manager m) -> m.rebuilds | _ -> 0

(* ---------------------------------------------------------------------- *)
(* Traversals over a snapshot                                              *)
(* ---------------------------------------------------------------------- *)

(** BFS from [root] along [`Out] (descendants) or [`In] (ancestors)
    edges, collecting nodes at depth within [min_depth, max_depth] —
    the same contract as the legacy {!Traverse.descendants}. *)
let bfs (s : snapshot) ~dir ?(min_depth = 1) ?max_depth root : OidSet.t =
  match Hashtbl.find_opt s.slot_of root with
  | None ->
      (* the root touches no matching edge: it is its own closure *)
      if min_depth = 0 then OidSet.singleton root else OidSet.empty
  | Some slot0 ->
      let off, nbr =
        match dir with `Out -> (s.out_off, s.out_tgt) | `In -> (s.in_off, s.in_src)
      in
      let visited = Bytes.make s.node_count '\000' in
      let queue = Array.make s.node_count 0 in
      let depth = Array.make s.node_count 0 in
      let head = ref 0 and tail = ref 0 in
      let push slot d =
        Bytes.unsafe_set visited slot '\001';
        queue.(!tail) <- slot;
        depth.(!tail) <- d;
        incr tail
      in
      push slot0 0;
      let acc = ref OidSet.empty in
      while !head < !tail do
        let slot = queue.(!head) in
        let d = depth.(!head) in
        incr head;
        if d >= min_depth then acc := OidSet.add s.node_of.(slot) !acc;
        let descend = match max_depth with None -> true | Some m -> d < m in
        if descend then
          for j = off.(slot) to off.(slot + 1) - 1 do
            let t = nbr.(j) in
            if Bytes.unsafe_get visited t = '\000' then push t (d + 1)
          done
      done;
      if min_depth > 0 then OidSet.remove root !acc else !acc

let descendants s ?min_depth ?max_depth root = bfs s ~dir:`Out ?min_depth ?max_depth root
let ancestors s ?min_depth ?max_depth root = bfs s ~dir:`In ?min_depth ?max_depth root

(** Has [slot]-indexed node [oid] any matching outgoing (resp.
    incoming) edge?  Used by roots/leaves. *)
let has_out (s : snapshot) oid =
  match Hashtbl.find_opt s.slot_of oid with
  | None -> false
  | Some slot -> s.out_off.(slot + 1) > s.out_off.(slot)

let has_in (s : snapshot) oid =
  match Hashtbl.find_opt s.slot_of oid with
  | None -> false
  | Some slot -> s.in_off.(slot + 1) > s.in_off.(slot)

(** Edge oids of the subgraph reachable from [root]: the closure is
    out-closed, so these are exactly the outgoing edges of its nodes.
    Returned ascending by edge oid. *)
let closure_edges (s : snapshot) (nodes : OidSet.t) : int list =
  let acc = ref [] in
  OidSet.iter
    (fun oid ->
      match Hashtbl.find_opt s.slot_of oid with
      | None -> ()
      | Some slot ->
          for j = s.out_off.(slot) to s.out_off.(slot + 1) - 1 do
            acc := s.out_edge.(j) :: !acc
          done)
    nodes;
  List.sort_uniq compare !acc
