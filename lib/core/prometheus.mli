(** Prometheus: an extended object-oriented database with first-class
    relationships and multiple overlapping classifications.

    This is the public API of the system.  It wraps the layered
    architecture (storage, events, object layer, graph layer, rules,
    POOL/PCL languages, views) behind one module; power users can drop
    to the underlying layers through {!database}, {!engine} and
    {!bus}.

    Concepts:
    - {b objects} are instances of schema classes, addressed by oid;
    - {b relationship instances} (links) are first-class objects of
      relationship classes, carrying their own attributes and
      semantics (kind, exclusivity, sharability, lifetime dependency,
      constancy, cardinalities);
    - {b contexts} name classifications: links tagged with a context
      form one classification, and exclusivity is scoped per context,
      so the same objects participate in many overlapping
      classifications;
    - {b rules} observe every change and can veto (aborting the
      transaction), warn, repair, or ask. *)

type t
(** A database session handle. *)

(** {1 Values and types} *)

type value = Pmodel.Value.t =
  | VNull
  | VInt of int
  | VFloat of float
  | VString of string
  | VBool of bool
  | VDate of Pmodel.Value.date
  | VRef of int  (** reference to an object by oid *)
  | VList of value list
  | VSet of value list  (** sorted, duplicate-free *)
  | VBag of value list  (** sorted *)

type ty = Pmodel.Value.ty =
  | TInt
  | TFloat
  | TString
  | TBool
  | TDate
  | TRef of string  (** target class name *)
  | TList of ty
  | TSet of ty
  | TBag of ty
  | TAny

type rel_kind = Pmodel.Meta.rel_kind = Aggregation | Association

exception Violation of { rule : string; message : string }
(** Raised when a rule with the Abort action is violated; inside
    {!with_tx} the transaction is rolled back before re-raising. *)

val attr :
  ?required:bool -> ?default:value -> string -> ty -> Pmodel.Meta.attr_def
(** [attr name ty] declares an attribute for {!define_class} /
    {!define_rel}. *)

val card : ?cmin:int -> ?cmax:int -> unit -> Pmodel.Meta.card
(** Cardinality bound: [card ~cmin:1 ~cmax:4 ()]; omitted [cmax] means
    unbounded.  Maxima are enforced immediately, minima at commit. *)

val vset : value list -> value
(** Build a [VSet] (sorts, removes duplicates). *)

val vstr : string -> value
val vint : int -> value
val vdate : ?month:int -> ?day:int -> int -> Pmodel.Value.date

(** {1 Lifecycle} *)

val open_ : ?cache_pages:int -> ?check_min_cards:bool -> string -> t
(** Open (creating if needed) the database at a path.  [cache_pages]
    sizes the storage buffer pool; [check_min_cards] (default true)
    arms commit-time validation of relationship minimum
    cardinalities. *)

val close : t -> unit

val database : t -> Pmodel.Database.t
(** Escape hatch to the object layer. *)

val engine : t -> Prules.Engine.t
val schema : t -> Pmodel.Meta.t
val bus : t -> Pevent.Bus.t
val stats : t -> Pstore.Store.stats

(** {1 Schema definition} *)

val define_class :
  t ->
  ?supers:string list ->
  ?abstract:bool ->
  string ->
  Pmodel.Meta.attr_def list ->
  Pmodel.Meta.class_def
(** Define a class (persisted).  Classes without explicit supers extend
    [Object]. *)

val define_rel :
  t ->
  ?supers:string list ->
  ?kind:rel_kind ->
  ?card_out:Pmodel.Meta.card ->
  ?card_in:Pmodel.Meta.card ->
  ?exclusive:bool ->
  ?sharable:bool ->
  ?lifetime_dep:bool ->
  ?constant:bool ->
  ?inherited_attrs:string list ->
  ?attrs:Pmodel.Meta.attr_def list ->
  string ->
  origin:string ->
  destination:string ->
  Pmodel.Meta.rel_def
(** Define a relationship class (persisted).  Semantics:
    - [exclusive]: a destination has at most one incoming instance of
      this class {e within each classification context};
    - [sharable:false]: at most one incoming instance across {e all}
      contexts (aggregations only);
    - [lifetime_dep]: deleting the origin cascades to destinations that
      lose their last lifetime-dependent support (aggregations only);
    - [constant]: endpoints and attributes frozen after creation;
    - [inherited_attrs]: attributes of this relationship visible as
      derived (role) attributes on destination objects. *)

(** {1 Transactions} *)

val with_tx : t -> (unit -> 'a) -> 'a
(** Run in a transaction; any exception (including rule {!Violation},
    possibly raised at commit by deferred rules) aborts and
    re-raises.  Nestable: only the outermost commits. *)

val begin_tx : t -> unit
val commit : t -> unit
val abort : t -> unit

val whatif : t -> (unit -> 'a) -> 'a
(** What-if scenario: run speculative changes, return the computed
    result, roll everything back (thesis 7.1.4). *)

(** {1 Objects} *)

val create : t -> string -> (string * value) list -> int
(** [create t "Person" [("name", vstr "Ada")]] validates attributes
    against the class, applies defaults, persists and returns the new
    oid. *)

val get : t -> int -> Pmodel.Obj.t option
val get_exn : t -> int -> Pmodel.Obj.t

val get_attr : t -> int -> string -> value
(** Attribute access with role acquisition: attributes the object's
    class does not declare are looked up on incoming relationship
    instances that declare them inherited. *)

val update : t -> int -> string -> value -> unit
val delete : t -> int -> unit
(** Deleting an object removes all relationship instances touching it
    and cascades along lifetime-dependent aggregations. *)

val class_of : t -> int -> string option
val extent : t -> ?deep:bool -> string -> Pmodel.Database.OidSet.t
val extent_list : t -> ?deep:bool -> string -> int list
val count : t -> ?deep:bool -> string -> int

(** {1 Relationships} *)

val link :
  t ->
  ?context:int ->
  ?attrs:(string * value) list ->
  string ->
  origin:int ->
  destination:int ->
  int
(** Create a relationship instance; returns its oid.  All semantic
    checks of the relationship class run first. *)

val unlink : t -> int -> unit
val retarget : t -> int -> ?origin:int -> ?destination:int -> unit -> unit

val outgoing : t -> ?context:int -> rel_name:string -> int -> Pmodel.Obj.t list
(** Outgoing instances of a relationship class (and its
    sub-relationship-classes) at an origin, optionally scoped to one
    context. *)

val incoming : t -> ?context:int -> rel_name:string -> int -> Pmodel.Obj.t list
val rels_of : t -> int -> Pmodel.Obj.t list
val has_role : t -> int -> rel_name:string -> bool

(** {1 Classifications (contexts)} *)

val create_context : t -> ?description:string -> string -> int
val contexts : t -> (int * string) list
val find_context : t -> string -> int option
val context_rels : t -> int -> Pmodel.Obj.t list

(** {1 Instance synonyms} *)

val declare_synonym : t -> int -> int -> unit
(** Declare that two instances denote the same real-world entity
    (thesis 4.5). Transitive. *)

val same_entity : t -> int -> int -> bool
val synonym_set : t -> int -> Pmodel.Database.OidSet.t

(** {1 Indexes} *)

val create_index : t -> string -> string -> unit
(** [create_index t "Person" "name"]: secondary index used by POOL
    equality probes; maintained on update, covers subclasses. *)

val drop_index : t -> string -> string -> unit

(** {1 Queries (POOL)} *)

val query : ?env:(string * value) list -> t -> string -> value
(** Run a POOL query.  [env] binds free variables, e.g.
    [query ~env:[("x", VRef oid)] t "count(x.targets('ChildOf'))"]. *)

val rows : ?env:(string * value) list -> t -> string -> value list
val scalar : ?env:(string * value) list -> t -> string -> value
val check : ?env:(string * value) list -> t -> string -> bool

val check_query : t -> string -> string list
(** Static type/shape check of a query (thesis 5.1.2.4); returns
    human-readable errors, [[]] when clean. *)

(** {1 Rules and PCL} *)

val add_rule : t -> Prules.Rule.t -> unit
val add_rules : t -> Prules.Rule.t list -> unit
val remove_rule : t -> string -> unit
val rule_warnings : t -> (string * string) list
val clear_warnings : t -> unit

val pcl : t -> string -> Prules.Rule.t
(** Install a PCL constraint, e.g.
    [pcl t "context Family inv suffix: endswith(self.name, 'aceae')"]. *)

(** {1 Views} *)

val define_view :
  t -> name:string -> query:string -> ?materialised:bool -> unit -> int

val drop_view : t -> string -> unit
val view : t -> ?env:(string * value) list -> string -> value
val view_rows : t -> ?env:(string * value) list -> string -> value list
val views : t -> (string * string) list

(** {1 Graph operations} *)

val descendants :
  t ->
  ?context:int ->
  ?csr:bool ->
  ?min_depth:int ->
  ?max_depth:int ->
  rel:string ->
  int ->
  Pmodel.Database.OidSet.t

val ancestors :
  t ->
  ?context:int ->
  ?csr:bool ->
  ?min_depth:int ->
  ?max_depth:int ->
  rel:string ->
  int ->
  Pmodel.Database.OidSet.t

val closure : t -> ?context:int -> ?csr:bool -> rel:string -> int -> Pmodel.Database.OidSet.t
val subgraph : t -> ?context:int -> ?csr:bool -> rel:string -> int -> Pgraph.Subgraph.t
val subgraph_of_context : t -> rel:string -> int -> Pgraph.Subgraph.t
val copy_subgraph : t -> Pgraph.Subgraph.t -> into:int -> int list
