(** The event bus: routes primitive events to subscribers.

    Subscribers register an {!Event.spec} and a handler.  Composite
    specifications carry per-subscription trackers which are reset at
    transaction boundaries (commit or abort), so a sequence pattern
    cannot straddle transactions. *)

type sub_id = int

type subscription = {
  id : sub_id;
  name : string;
  tracker : Event.Tracker.t;
  handler : Event.primitive -> unit;
  mutable active : bool;
}

type t = {
  mutable subs : subscription list; (* newest first; iterated in subscription order *)
  mutable next_id : int;
  mutable is_subclass : Event.subclass_pred;
  mutable emitting : int; (* re-entrancy depth, for diagnostics *)
}

let create ?(is_subclass = fun ~sub:_ ~super:_ -> false) () =
  { subs = []; next_id = 1; is_subclass; emitting = 0 }

(** The schema is loaded after the bus exists; the object layer injects
    the real subclass predicate here. *)
let set_subclass_pred t p = t.is_subclass <- p

let subscribe t ?(name = "") spec handler : sub_id =
  let id = t.next_id in
  t.next_id <- id + 1;
  let sub = { id; name; tracker = Event.Tracker.create spec; handler; active = true } in
  t.subs <- sub :: t.subs;
  id

let unsubscribe t id =
  List.iter (fun s -> if s.id = id then s.active <- false) t.subs;
  t.subs <- List.filter (fun s -> s.active) t.subs

let subscriber_count t = List.length t.subs

let m_emitted =
  Pobs.Metrics.counter "pdb_events_emitted_total" ~help:"Primitive events emitted on the bus"

let m_deliveries =
  Pobs.Metrics.counter "pdb_event_deliveries_total"
    ~help:"Handler invocations (matched subscriptions)"

let emit t (ev : Event.primitive) : unit =
  Pobs.Metrics.inc m_emitted;
  (* Transaction boundaries reset composite trackers. *)
  (match ev with
  | Event.Tx_commit | Event.Tx_abort | Event.Tx_begin ->
      List.iter (fun s -> Event.Tracker.reset s.tracker) t.subs
  | _ -> ());
  t.emitting <- t.emitting + 1;
  Fun.protect
    ~finally:(fun () -> t.emitting <- t.emitting - 1)
    (fun () ->
      (* Iterate over a snapshot: handlers may (un)subscribe. *)
      let snapshot = List.rev t.subs in
      List.iter
        (fun s ->
          if s.active && Event.Tracker.feed s.tracker t.is_subclass ev then begin
            Pobs.Metrics.inc m_deliveries;
            s.handler ev
          end)
        snapshot)
