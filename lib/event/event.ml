(** Primitive database events.

    The event layer is the lowest layer of the Prometheus architecture
    (thesis ch. 6.1.1): every state change in the object layer is
    reported as a primitive event, which the rules layer (and the index
    and view layers) observe through the {!Bus}. *)

type primitive =
  | Obj_created of { oid : int; class_name : string }
  | Obj_updated of { oid : int; class_name : string; attr : string }
  | Obj_deleted of { oid : int; class_name : string }
  | Rel_created of { oid : int; rel_name : string; origin : int; destination : int }
  | Rel_updated of { oid : int; rel_name : string; origin : int; destination : int; attr : string }
  | Rel_deleted of { oid : int; rel_name : string; origin : int; destination : int }
  | Tx_begin
  | Tx_commit
  | Tx_abort
  | Custom of { tag : string; payload : (string * string) list }

let pp_primitive ppf = function
  | Obj_created { oid; class_name } -> Format.fprintf ppf "create %s#%d" class_name oid
  | Obj_updated { oid; class_name; attr } -> Format.fprintf ppf "update %s#%d.%s" class_name oid attr
  | Obj_deleted { oid; class_name } -> Format.fprintf ppf "delete %s#%d" class_name oid
  | Rel_created { oid; rel_name; origin; destination } ->
      Format.fprintf ppf "link %s#%d (%d -> %d)" rel_name oid origin destination
  | Rel_updated { oid; rel_name; attr; _ } -> Format.fprintf ppf "relupdate %s#%d.%s" rel_name oid attr
  | Rel_deleted { oid; rel_name; origin; destination } ->
      Format.fprintf ppf "unlink %s#%d (%d -> %d)" rel_name oid origin destination
  | Tx_begin -> Format.fprintf ppf "tx-begin"
  | Tx_commit -> Format.fprintf ppf "tx-commit"
  | Tx_abort -> Format.fprintf ppf "tx-abort"
  | Custom { tag; _ } -> Format.fprintf ppf "custom %s" tag

(** Event specifications: the patterns rules subscribe to.  [None]
    class/attribute selectors act as wildcards.  Class selectors match
    subclasses through the [is_subclass] predicate supplied to the
    matcher (the event layer itself is schema-agnostic).  Composite
    specifications ([Seq], [Both]) accumulate state between events and
    are reset at transaction boundaries. *)
type spec =
  | On_create of string option
  | On_update of string option * string option
  | On_delete of string option
  | On_rel_create of string option
  | On_rel_update of string option * string option
  | On_rel_delete of string option
  | On_commit
  | On_abort
  | On_custom of string
  | Any_of of spec list
  | Seq of spec list (* fires when all sub-specs matched, in order *)
  | Both of spec * spec (* fires when both matched, any order *)

(** Any change to the relationship graph: link, retarget/attr update,
    unlink.  The spec derived caches over the adjacency structure (the
    index layer's CSR snapshots, materialised views) subscribe with —
    combined with {!On_abort}, whose mirror rebuild can resurrect edges
    no per-edge event described. *)
let rel_change : spec =
  Any_of [ On_rel_create None; On_rel_update (None, None); On_rel_delete None ]

type subclass_pred = sub:string -> super:string -> bool

let class_matches (is_subclass : subclass_pred) (sel : string option) (cls : string) =
  match sel with None -> true | Some super -> cls = super || is_subclass ~sub:cls ~super

let attr_matches sel attr = match sel with None -> true | Some a -> a = attr

(** Does primitive event [ev] match *atomic* spec [spec]? (Composite
    specs are handled by {!Tracker}.) *)
let rec matches (is_subclass : subclass_pred) (spec : spec) (ev : primitive) : bool =
  match (spec, ev) with
  | On_create sel, Obj_created { class_name; _ } -> class_matches is_subclass sel class_name
  | On_update (sel, asel), Obj_updated { class_name; attr; _ } ->
      class_matches is_subclass sel class_name && attr_matches asel attr
  | On_delete sel, Obj_deleted { class_name; _ } -> class_matches is_subclass sel class_name
  | On_rel_create sel, Rel_created { rel_name; _ } -> class_matches is_subclass sel rel_name
  | On_rel_update (sel, asel), Rel_updated { rel_name; attr; _ } ->
      class_matches is_subclass sel rel_name && attr_matches asel attr
  | On_rel_delete sel, Rel_deleted { rel_name; _ } -> class_matches is_subclass sel rel_name
  | On_commit, Tx_commit -> true
  | On_abort, Tx_abort -> true
  | On_custom tag, Custom { tag = t; _ } -> tag = t
  | Any_of specs, ev -> List.exists (fun s -> matches is_subclass s ev) specs
  | (Seq _ | Both _), _ -> false (* composite: never matched atomically *)
  | _ -> false

(** Stateful tracker for one (possibly composite) spec. *)
module Tracker = struct
  type state =
    | Atomic of spec
    | In_seq of spec list * spec list (* done, remaining *)
    | In_both of (spec * bool) * (spec * bool)

  type t = { spec : spec; mutable state : state }

  let reset t =
    t.state <-
      (match t.spec with
      | Seq specs -> In_seq ([], specs)
      | Both (a, b) -> In_both ((a, false), (b, false))
      | s -> Atomic s)

  let create spec =
    let t = { spec; state = Atomic spec } in
    reset t;
    t

  (** Feed an event; returns [true] if the (composite) spec fired. *)
  let feed t is_subclass ev : bool =
    match t.state with
    | Atomic s -> matches is_subclass s ev
    | In_seq (done_, remaining) -> (
        match remaining with
        | [] ->
            reset t;
            false
        | next :: rest ->
            if matches is_subclass next ev then
              if rest = [] then begin
                reset t;
                true
              end
              else begin
                t.state <- In_seq (next :: done_, rest);
                false
              end
            else false)
    | In_both ((a, fa), (b, fb)) ->
        let fa = fa || matches is_subclass a ev in
        let fb = fb || matches is_subclass b ev in
        if fa && fb then begin
          reset t;
          true
        end
        else begin
          t.state <- In_both ((a, fa), (b, fb));
          false
        end
end
