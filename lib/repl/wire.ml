(** The replication wire protocol: length-prefixed, CRC-protected frames.

    {v
      off 0 : u32  magic "PDRL"
      off 4 : u8   frame type
      off 5 : u32  payload length
      off 9 : payload bytes
      then  : u32  CRC-32 of the payload
    v}

    Payloads (all little-endian, via {!Pstore.Codec}):

    - [Hello]    (replica → primary): [i64 stream_id | i64 last_lsn] —
      the replica announces which stream it last followed and the LSN
      its file is durably at; the primary answers by resuming the delta
      stream past that LSN, or by sending a full [Snapshot] when it
      cannot (unknown stream, backlog evicted, replica ahead).
    - [Snapshot] (primary → replica): [i64 stream_id | i64 lsn | string
      file bytes] — a consistent image of the whole database file at
      [lsn].
    - [Delta]    (primary → replica): [i64 lsn | u32 npages |
      (i64 page_no | page bytes)*] — one committed transaction's
      after-images (see {!Pstore.Pager.redo_record}).
    - [Ack]      (replica → primary): [i64 lsn] — durably applied.
    - [PageFetch] (replica → primary): [i64 lsn | u32 npages | i64*] —
      the replica found corrupt pages and asks for clean copies
      consistent with its applied [lsn].
    - [PageData] (primary → replica): [i64 lsn | u32 npages |
      (i64 page_no | page bytes)*] — the requested images, or an
      {e empty} page list when the primary cannot serve them at that
      LSN (the refusal that sends the replica to re-bootstrap).

    Anything malformed — bad magic, unknown type, oversized payload,
    CRC mismatch, or a mid-frame EOF — raises {!Wire_error}; the
    connection is abandoned and the replica's reconnect/resume protocol
    recovers, so a torn frame can never be half-applied. *)

open Pstore

exception Wire_error of string

let err fmt = Format.kasprintf (fun s -> raise (Wire_error s)) fmt

let magic = 0x5044524C (* "PDRL" *)
let header_size = 9

(** Upper bound on a payload: a snapshot of a ~1 GiB database file.
    Anything larger is treated as a corrupt length field. *)
let max_payload = 1 lsl 30

type frame =
  | Hello of { stream_id : int; last_lsn : int }
  | Snapshot of { stream_id : int; lsn : int; data : string }
  | Delta of { lsn : int; pages : (int * string) list }
  | Ack of { lsn : int }
  | PageFetch of { lsn : int; pages : int list }
  | PageData of { lsn : int; pages : (int * string) list }

let type_byte = function
  | Hello _ -> 1
  | Snapshot _ -> 2
  | Delta _ -> 3
  | Ack _ -> 4
  | PageFetch _ -> 5
  | PageData _ -> 6

let encode_payload (f : frame) : string =
  let e = Codec.Enc.create () in
  (match f with
  | Hello { stream_id; last_lsn } ->
      Codec.Enc.int e stream_id;
      Codec.Enc.int e last_lsn
  | Snapshot { stream_id; lsn; data } ->
      Codec.Enc.int e stream_id;
      Codec.Enc.int e lsn;
      Codec.Enc.string e data
  | Delta { lsn; pages } ->
      Codec.Enc.int e lsn;
      Codec.Enc.u32 e (List.length pages);
      List.iter
        (fun (no, data) ->
          if String.length data <> Pager.page_size then
            err "delta page %d has %d bytes (want %d)" no (String.length data)
              Pager.page_size;
          Codec.Enc.int e no;
          Codec.Enc.raw e data)
        pages
  | Ack { lsn } -> Codec.Enc.int e lsn
  | PageFetch { lsn; pages } ->
      Codec.Enc.int e lsn;
      Codec.Enc.u32 e (List.length pages);
      List.iter (fun no -> Codec.Enc.int e no) pages
  | PageData { lsn; pages } ->
      Codec.Enc.int e lsn;
      Codec.Enc.u32 e (List.length pages);
      List.iter
        (fun (no, data) ->
          if String.length data <> Pager.page_size then
            err "page-data page %d has %d bytes (want %d)" no
              (String.length data) Pager.page_size;
          Codec.Enc.int e no;
          Codec.Enc.raw e data)
        pages);
  Codec.Enc.to_string e

let decode_payload ty (payload : string) : frame =
  let d = Codec.Dec.of_string payload in
  try
    let f =
      match ty with
      | 1 ->
          let stream_id = Codec.Dec.int d in
          let last_lsn = Codec.Dec.int d in
          Hello { stream_id; last_lsn }
      | 2 ->
          let stream_id = Codec.Dec.int d in
          let lsn = Codec.Dec.int d in
          let data = Codec.Dec.string d in
          Snapshot { stream_id; lsn; data }
      | 3 ->
          let lsn = Codec.Dec.int d in
          let n = Codec.Dec.u32 d in
          let pages =
            List.init n (fun _ ->
                let no = Codec.Dec.int d in
                Codec.Dec.need d Pager.page_size;
                let data = String.sub payload d.Codec.Dec.pos Pager.page_size in
                d.Codec.Dec.pos <- d.Codec.Dec.pos + Pager.page_size;
                (no, data))
          in
          Delta { lsn; pages }
      | 4 -> Ack { lsn = Codec.Dec.int d }
      | 5 ->
          let lsn = Codec.Dec.int d in
          let n = Codec.Dec.u32 d in
          let pages = List.init n (fun _ -> Codec.Dec.int d) in
          PageFetch { lsn; pages }
      | 6 ->
          let lsn = Codec.Dec.int d in
          let n = Codec.Dec.u32 d in
          let pages =
            List.init n (fun _ ->
                let no = Codec.Dec.int d in
                Codec.Dec.need d Pager.page_size;
                let data = String.sub payload d.Codec.Dec.pos Pager.page_size in
                d.Codec.Dec.pos <- d.Codec.Dec.pos + Pager.page_size;
                (no, data))
          in
          PageData { lsn; pages }
      | ty -> err "unknown frame type %d" ty
    in
    if Codec.Dec.remaining d <> 0 then err "trailing bytes in frame payload";
    f
  with Codec.Corrupt m -> err "corrupt payload: %s" m

(** The complete on-wire encoding of a frame.  A payload over
    {!max_payload} (a snapshot of a > 1 GiB database) raises here, on
    the {e sender}: the receiver would reject the length field anyway,
    and failing at the source is the only place the error is visible. *)
let encode (f : frame) : string =
  let payload = encode_payload f in
  if String.length payload > max_payload then
    err "frame payload of %d bytes exceeds the %d-byte limit"
      (String.length payload) max_payload;
  let e = Codec.Enc.create ~size:(header_size + String.length payload + 4) () in
  Codec.Enc.u32 e magic;
  Codec.Enc.u8 e (type_byte f);
  Codec.Enc.u32 e (String.length payload);
  Codec.Enc.raw e payload;
  Codec.Enc.u32 e (Int32.to_int (Codec.Crc32.digest payload) land 0xffffffff);
  Codec.Enc.to_string e

let to_link (l : Link.t) (f : frame) : unit =
  let s = encode f in
  Link.really_send l (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

(** Read one frame off the link.  Mid-frame EOF surfaces as
    {!Link.Link_down} (the transport died); structural damage — the
    bytes arrived but are not a frame — as {!Wire_error}. *)
let from_link (l : Link.t) : frame =
  let hdr = Bytes.create header_size in
  Link.really_recv l hdr ~off:0 ~len:header_size;
  let m = Int32.to_int (Bytes.get_int32_le hdr 0) land 0xffffffff in
  if m <> magic then err "bad frame magic 0x%08x" m;
  let ty = Bytes.get_uint8 hdr 4 in
  let len = Int32.to_int (Bytes.get_int32_le hdr 5) land 0xffffffff in
  if len > max_payload then err "frame payload of %d bytes exceeds limit" len;
  let body = Bytes.create (len + 4) in
  Link.really_recv l body ~off:0 ~len:(len + 4);
  let payload = Bytes.sub_string body 0 len in
  let crc = Int32.to_int (Bytes.get_int32_le body len) land 0xffffffff in
  if Int32.to_int (Codec.Crc32.digest payload) land 0xffffffff <> crc then
    err "frame CRC mismatch";
  decode_payload ty payload
