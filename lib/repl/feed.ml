(** The primary's replication feed.

    Installs the pager redo hook on a store and turns the stream of
    committed after-image records into something replicas can subscribe
    to:

    - a {b mirror}: an in-memory copy of the database file, kept current
      by applying every redo record to it.  Snapshots for bootstrapping
      replicas are cut from the mirror under the feed mutex, so they are
      always a consistent committed image and never race the live pager
      (which is single-threaded and must not be touched from sender
      threads).  Cost: one copy of the database in RAM — the price of
      lock-free primaries; documented in DESIGN.md "Replication".
    - a {b backlog}: a byte-capped queue of recent redo records.  A
      reconnecting replica whose last LSN is still covered resumes with
      deltas; one that fell off the tail (or followed a different
      stream incarnation) gets a fresh snapshot.
    - a random {b stream id}, minted per feed: LSNs are only comparable
      within one stream incarnation.  A vacuum or restore replaces the
      file wholesale, so `pdb` mints a new feed (new id) and every
      replica re-bootstraps instead of applying deltas over a file with
      a different history.

    The hook runs on the committing thread strictly after the commit
    point and only takes the feed mutex — the commit hot path gains one
    lock and one page-set copy per transaction. *)

open Pstore

let m_shipped_records =
  Pobs.Metrics.counter "pdb_repl_shipped_records_total"
    ~help:"Redo records sent to replicas"

let m_shipped_bytes =
  Pobs.Metrics.counter "pdb_repl_shipped_bytes_total"
    ~help:"Encoded delta bytes sent to replicas"

let m_snapshots =
  Pobs.Metrics.counter "pdb_repl_snapshots_total"
    ~help:"Full snapshots sent to bootstrapping replicas"

let g_lag_lsns =
  Pobs.Metrics.gauge "pdb_repl_lag_lsns"
    ~help:"Primary LSN minus the slowest connected replica's acked LSN"

let g_lag_ns =
  Pobs.Metrics.gauge "pdb_repl_lag_ns"
    ~help:"Commit-to-ack latency of the most recent acked record"

let g_backlog_bytes =
  Pobs.Metrics.gauge "pdb_repl_backlog_bytes" ~help:"Redo backlog size in bytes"

let m_page_fetches =
  Pobs.Metrics.counter "pdb_repl_page_fetches_total"
    ~help:"Clean page images served to replicas repairing corruption"

let m_page_fetch_refusals =
  Pobs.Metrics.counter "pdb_repl_page_fetch_refusals_total"
    ~help:"Page-fetch requests refused (LSN not serveable from the mirror)"

type record = {
  r_lsn : int;
  r_pages : (int * string) list;
  r_bytes : int; (* page payload bytes, for backlog accounting *)
  r_at_ns : int; (* capture time, for lag-in-ns *)
}

type conn = {
  conn_id : int;
  mutable sent_lsn : int;
  mutable acked_lsn : int;
  mutable conn_alive : bool;
}

type t = {
  store : Store.t option; (* None: a detached (cascade) feed, fed by [publish] *)
  stream_id : int;
  mutable mirror : Bytes.t; (* page-multiple; first [mirror_pages] pages valid *)
  mutable mirror_pages : int;
  mutable lsn : int;
  backlog : record Queue.t;
  mutable backlog_bytes : int;
  backlog_cap : int;
  mutable snapshots_sent : int;
  mutable records_captured : int;
  mutable pages_served : int;
  mutable fetch_refusals : int;
  mutable conns : conn list;
  mutable next_conn_id : int;
  m : Mutex.t;
}

let fresh_stream_id () =
  let bits =
    Int64.to_int (Int64.bits_of_float (Unix.gettimeofday ()))
    lxor (Unix.getpid () lsl 17)
  in
  let id = bits land max_int in
  if id = 0 then 1 else id

(* LSN of the oldest record still in the backlog; when the backlog is
   empty everything up to [t.lsn] is "covered" vacuously. *)
let backlog_start t =
  match Queue.peek_opt t.backlog with Some r -> r.r_lsn | None -> t.lsn + 1

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let ingest t ~(lsn : int) ~(pages : (int * string) list) =
  locked t (fun () ->
      (* grow the mirror to cover the record's highest page *)
      let maxp = List.fold_left (fun acc (no, _) -> max acc no) (-1) pages in
      if maxp >= t.mirror_pages then begin
        let need = (maxp + 1) * Pager.page_size in
        if Bytes.length t.mirror < need then begin
          let b = Bytes.make (max need (2 * Bytes.length t.mirror)) '\000' in
          Bytes.blit t.mirror 0 b 0 (t.mirror_pages * Pager.page_size);
          t.mirror <- b
        end;
        t.mirror_pages <- maxp + 1
      end;
      List.iter
        (fun (no, data) ->
          Bytes.blit_string data 0 t.mirror (no * Pager.page_size) Pager.page_size)
        pages;
      t.lsn <- lsn;
      let bytes = List.length pages * Pager.page_size in
      Queue.add
        { r_lsn = lsn; r_pages = pages; r_bytes = bytes;
          r_at_ns = Pobs.Monotonic.now_ns () }
        t.backlog;
      t.records_captured <- t.records_captured + 1;
      t.backlog_bytes <- t.backlog_bytes + bytes;
      while t.backlog_bytes > t.backlog_cap && Queue.length t.backlog > 1 do
        let dropped = Queue.pop t.backlog in
        t.backlog_bytes <- t.backlog_bytes - dropped.r_bytes
      done;
      Pobs.Metrics.seti g_backlog_bytes t.backlog_bytes)

let on_commit t (r : Pager.redo_record) = ingest t ~lsn:r.Pager.lsn ~pages:r.Pager.pages

(** Feed an applied record into a {e detached} feed — the cascade path:
    a replica republishes every delta it applies so downstream replicas
    can subscribe to it instead of the primary. *)
let publish t ~lsn ~pages = ingest t ~lsn ~pages

(** Create a feed over [store] and install its redo hook.  Must be
    called with no transaction in progress: the mirror is seeded from
    the pager's current pages, which are only a committed image between
    transactions. *)
let create ?(backlog_cap_bytes = 64 * 1024 * 1024) (store : Store.t) : t =
  if Store.in_tx store then
    invalid_arg "Feed.create: store has a transaction in progress";
  let pager = Store.pager store in
  let pages = Pager.page_count pager in
  let mirror = Bytes.make (pages * Pager.page_size) '\000' in
  for no = 0 to pages - 1 do
    Bytes.blit (Pager.read pager no) 0 mirror (no * Pager.page_size) Pager.page_size
  done;
  let t =
    {
      store = Some store;
      stream_id = fresh_stream_id ();
      mirror;
      mirror_pages = pages;
      lsn = Pager.lsn pager;
      backlog = Queue.create ();
      backlog_bytes = 0;
      backlog_cap = backlog_cap_bytes;
      snapshots_sent = 0;
      records_captured = 0;
      pages_served = 0;
      fetch_refusals = 0;
      conns = [];
      next_conn_id = 1;
      m = Mutex.create ();
    }
  in
  Store.set_redo_hook store (fun r -> on_commit t r);
  t

(** A feed with no store of its own: the mirror is seeded from a
    snapshot [image] at [lsn], the stream identity is {e inherited} —
    a cascading replica serves the same stream its upstream does, so a
    downstream replica's LSNs stay comparable when it re-attaches
    anywhere in the tree.  New records arrive via {!publish}. *)
let create_detached ?(backlog_cap_bytes = 64 * 1024 * 1024) ~stream_id ~lsn
    ~(image : string) () : t =
  let mirror = Bytes.of_string image in
  if Bytes.length mirror mod Pager.page_size <> 0 then
    invalid_arg "Feed.create_detached: image is not a whole number of pages";
  {
    store = None;
    stream_id;
    mirror;
    mirror_pages = Bytes.length mirror / Pager.page_size;
    lsn;
    backlog = Queue.create ();
    backlog_bytes = 0;
    backlog_cap = backlog_cap_bytes;
    snapshots_sent = 0;
    records_captured = 0;
    pages_served = 0;
    fetch_refusals = 0;
    conns = [];
    next_conn_id = 1;
    m = Mutex.create ();
  }

let detach t = match t.store with Some s -> Store.clear_redo_hook s | None -> ()
let lsn t = locked t (fun () -> t.lsn)
let stream_id t = t.stream_id

(** Cut a consistent snapshot (stamped with its LSN) from the mirror. *)
let snapshot t : int * string =
  locked t (fun () ->
      t.snapshots_sent <- t.snapshots_sent + 1;
      Pobs.Metrics.inc m_snapshots;
      (t.lsn, Bytes.sub_string t.mirror 0 (t.mirror_pages * Pager.page_size)))

(** Decide how to serve a replica that last saw ([stream_id], [last_lsn]):
    resume the delta stream iff it followed {e this} stream, is not
    ahead of us, and everything past its LSN is still in the backlog. *)
let plan t ~stream_id ~last_lsn : [ `Resume | `Snapshot ] =
  locked t (fun () ->
      if
        stream_id = t.stream_id && last_lsn <= t.lsn
        && last_lsn >= backlog_start t - 1
      then `Resume
      else `Snapshot)

(** Backlog records with LSN strictly greater than [after], in order. *)
let deltas_after t ~after : record list =
  locked t (fun () ->
      Queue.fold (fun acc r -> if r.r_lsn > after then r :: acc else acc) [] t.backlog
      |> List.rev)

(** What the sender should push next for a connection whose stream is at
    [after]: the backlog tail — but {e only} when the backlog still
    starts at or before [after + 1].  LSNs are dense, so a backlog that
    was evicted past [after] has lost records this connection never saw;
    shipping the survivors would silently skip the evicted pages and
    diverge the replica.  In that case the connection restarts from a
    fresh snapshot.  The check and the read happen under one lock so an
    eviction cannot slip between them. *)
let next_batch t ~after : [ `Deltas of record list | `Snapshot of int * string ] =
  locked t (fun () ->
      if after >= backlog_start t - 1 then
        `Deltas
          (Queue.fold
             (fun acc r -> if r.r_lsn > after then r :: acc else acc)
             [] t.backlog
          |> List.rev)
      else begin
        t.snapshots_sent <- t.snapshots_sent + 1;
        Pobs.Metrics.inc m_snapshots;
        `Snapshot (t.lsn, Bytes.sub_string t.mirror 0 (t.mirror_pages * Pager.page_size))
      end)

(** Serve clean copies of [pages] {e as they were at [lsn]} — the
    repair path for a replica that found corrupt pages.  The mirror is
    at [t.lsn], so the request is serveable only when the mirror's
    content for those pages provably equals their content at [lsn]:
    either [lsn = t.lsn], or every backlog record in ([lsn], [t.lsn]]
    is present and touches none of the requested pages.  Anything else
    — replica ahead, backlog evicted past [lsn], a requested page
    rewritten since, or a page beyond the mirror — returns [None] and
    the replica falls back to a full re-bootstrap.  LSN-consistency
    over availability: a page from the future spliced into an older
    file would diverge silently. *)
let pages_at t ~lsn ~(pages : int list) : (int * string) list option =
  locked t (fun () ->
      let untouched_since r =
        r.r_lsn <= lsn
        || List.for_all (fun (no, _) -> not (List.mem no pages)) r.r_pages
      in
      let serveable =
        lsn = t.lsn
        || (lsn < t.lsn
           && backlog_start t <= lsn + 1
           && Queue.fold (fun acc r -> acc && untouched_since r) true t.backlog)
      in
      let in_range = List.for_all (fun no -> no >= 0 && no < t.mirror_pages) pages in
      if serveable && in_range then begin
        t.pages_served <- t.pages_served + List.length pages;
        Pobs.Metrics.addi m_page_fetches (List.length pages);
        Some
          (List.map
             (fun no ->
               (no, Bytes.sub_string t.mirror (no * Pager.page_size) Pager.page_size))
             pages)
      end
      else begin
        t.fetch_refusals <- t.fetch_refusals + 1;
        Pobs.Metrics.inc m_page_fetch_refusals;
        None
      end)

(* Lag gauges: LSN distance to the slowest live connection, and the
   commit-to-ack time of the record just acked. *)
let note_ack t (conn : conn) lsn =
  locked t (fun () ->
      conn.acked_lsn <- max conn.acked_lsn lsn;
      (match
         Queue.fold (fun acc r -> if r.r_lsn = lsn then Some r else acc) None t.backlog
       with
      | Some r -> Pobs.Metrics.seti g_lag_ns (Pobs.Monotonic.now_ns () - r.r_at_ns)
      | None -> ());
      let live = List.filter (fun c -> c.conn_alive) t.conns in
      let slowest =
        List.fold_left (fun acc c -> min acc c.acked_lsn) max_int live
      in
      if slowest < max_int then Pobs.Metrics.seti g_lag_lsns (t.lsn - slowest))

let register_conn t : conn =
  locked t (fun () ->
      let c =
        { conn_id = t.next_conn_id; sent_lsn = 0; acked_lsn = 0; conn_alive = true }
      in
      t.next_conn_id <- t.next_conn_id + 1;
      t.conns <- c :: t.conns;
      c)

let drop_conn t (c : conn) =
  locked t (fun () ->
      c.conn_alive <- false;
      t.conns <- List.filter (fun c' -> c'.conn_id <> c.conn_id) t.conns)

(* --- the per-replica sender loop --------------------------------------- *)

(* Headroom for the Snapshot frame's non-data fields (ints + string
   header) under the wire payload cap. *)
let max_snapshot_bytes = Wire.max_payload - 64

(* A database bigger than the wire's payload cap cannot be framed as a
   snapshot; replicas would reject the frame and re-request it forever.
   Fail loudly here on the primary — the only place an operator can see
   why bootstrap never completes. *)
let send_snapshot t link ~lsn ~(data : string) =
  if String.length data > max_snapshot_bytes then begin
    Printf.eprintf
      "repl: snapshot at lsn %d is %d bytes, over the %d-byte wire frame cap; \
       replicas cannot bootstrap from this primary\n%!"
      lsn (String.length data) Wire.max_payload;
    raise (Wire.Wire_error "snapshot exceeds the wire frame cap")
  end;
  Wire.to_link link (Wire.Snapshot { stream_id = t.stream_id; lsn; data })

(** Serve one replica connection until the link dies or [running] goes
    false.  Handshake (resume or snapshot), then a loop that drains
    inbound acks without blocking and pushes any backlog past what this
    connection has seen; if the backlog gets evicted past this
    connection, the stream restarts with a fresh snapshot rather than
    skipping records. *)
let handle_conn t (link : Link.t) ~(running : bool ref) =
  let conn = register_conn t in
  Fun.protect
    ~finally:(fun () ->
      drop_conn t conn;
      link.Link.close ())
    (fun () ->
      match Wire.from_link link with
      | Wire.Hello { stream_id; last_lsn } ->
          let start =
            match plan t ~stream_id ~last_lsn with
            | `Resume -> last_lsn
            | `Snapshot ->
                let lsn, data = snapshot t in
                send_snapshot t link ~lsn ~data;
                lsn
          in
          conn.sent_lsn <- start;
          conn.acked_lsn <- start;
          while !running do
            while link.Link.poll 0. do
              match Wire.from_link link with
              | Wire.Ack { lsn } -> note_ack t conn lsn
              | Wire.PageFetch { lsn; pages } ->
                  (* Repair request: answer with clean images at the
                     replica's LSN, or an empty page list — the typed
                     refusal that sends it to re-bootstrap. *)
                  let served = Option.value (pages_at t ~lsn ~pages) ~default:[] in
                  Wire.to_link link (Wire.PageData { lsn; pages = served })
              | _ -> raise (Wire.Wire_error "unexpected frame from replica")
            done;
            match next_batch t ~after:conn.sent_lsn with
            | `Deltas [] -> Thread.delay 0.02
            | `Deltas pending ->
                List.iter
                  (fun r ->
                    let f = Wire.Delta { lsn = r.r_lsn; pages = r.r_pages } in
                    let s = Wire.encode f in
                    Link.really_send link
                      (Bytes.unsafe_of_string s)
                      ~off:0 ~len:(String.length s);
                    Pobs.Metrics.inc m_shipped_records;
                    Pobs.Metrics.addi m_shipped_bytes (String.length s);
                    conn.sent_lsn <- r.r_lsn)
                  pending
            | `Snapshot (lsn, data) ->
                (* the backlog no longer covers this connection *)
                send_snapshot t link ~lsn ~data;
                conn.sent_lsn <- lsn
          done;
          (* Shutdown drain: a repair fetch that arrived as [running]
             dropped must still get an answer — an unanswered
             [PageFetch] leaves the fetching replica waiting out its
             timeout.  Answer the typed refusal (empty page list): the
             feed is going away, so "re-bootstrap elsewhere" is the
             honest verdict.  [stop_server] holds the link open for a
             grace window so this can actually be sent. *)
          (try
             while link.Link.poll 0. do
               match Wire.from_link link with
               | Wire.Ack { lsn } -> note_ack t conn lsn
               | Wire.PageFetch { lsn; _ } ->
                   locked t (fun () ->
                       t.fetch_refusals <- t.fetch_refusals + 1;
                       Pobs.Metrics.inc m_page_fetch_refusals);
                   Wire.to_link link (Wire.PageData { lsn; pages = [] })
               | _ -> ()
             done
           with Link.Link_down _ | Wire.Wire_error _ -> ())
      | _ -> raise (Wire.Wire_error "expected Hello"))

(* --- the TCP server ----------------------------------------------------- *)

type server = {
  feed : t;
  port : int;
  running : bool ref;
  listener : Link.listener;
  mutable acceptor : Thread.t option;
  mutable threads : Thread.t list; (* handler threads; guarded by [sm] *)
  mutable links : Link.t list; (* their live links; guarded by [sm] *)
  sm : Mutex.t;
}

(* Cap on how long one send may block on a stalled replica before the
   link is declared down (full TCP buffer on a wedged peer).  Dropping
   such a replica is safe: it reconnects and resumes from its LSN. *)
let sender_timeout_s = 30.

(** Listen on [port] (0 = ephemeral; see {!server.port} for the actual
    one) and serve each replica on its own thread. *)
let serve ?(host = "127.0.0.1") t ~port : server =
  let listener = Link.listen ~host ~port in
  let running = ref true in
  let srv =
    { feed = t; port = listener.Link.bound_port; running; listener;
      acceptor = None; threads = []; links = []; sm = Mutex.create () }
  in
  let reg f =
    Mutex.lock srv.sm;
    Fun.protect ~finally:(fun () -> Mutex.unlock srv.sm) f
  in
  let acceptor =
    Thread.create
      (fun () ->
        (* Bounded wait before each accept: a thread parked in accept(2)
           would never notice [stop_server] closing the listener. *)
        while !running do
          if Link.poll_listener listener 0.25 && !running then
            match Link.accept ~sndtimeo:sender_timeout_s listener with
            | link ->
                reg (fun () -> srv.links <- link :: srv.links);
                let th =
                  Thread.create
                    (fun () ->
                      (try handle_conn t link ~running
                       with Link.Link_down _ | Wire.Wire_error _ | Pager.Io_error _ -> ());
                      reg (fun () ->
                          srv.links <- List.filter (fun l -> l != link) srv.links))
                    ()
                in
                reg (fun () -> srv.threads <- th :: srv.threads)
            | exception Link.Link_down _ -> () (* listener closed: loop re-checks [running] *)
        done)
      ()
  in
  srv.acceptor <- Some acceptor;
  srv

(** Stop accepting, let the handlers run their shutdown drains, then
    wake any straggler — [shutdown], not [close], so a thread blocked
    mid-send on a stalled replica fails over to {!Link.Link_down}
    instead of wedging the join — and wait for all of them.  The
    acceptor is joined first, so no new connection can register behind
    the teardown's back.

    The grace window matters for correctness, not politeness: a handler
    that noticed [running] dropping may still owe a refusal to an
    in-flight [PageFetch]; shutting its link down first would strand
    the fetching replica until its own timeout. *)
let stop_server (srv : server) =
  srv.running := false;
  Link.close_listener srv.listener;
  (match srv.acceptor with
  | Some th -> ( try Thread.join th with _ -> ())
  | None -> ());
  (* handlers deregister their link as they exit; wait briefly for the
     drains to finish before forcing the rest down *)
  let deadline = Unix.gettimeofday () +. 1.0 in
  let links_left () =
    Mutex.lock srv.sm;
    let l = srv.links in
    Mutex.unlock srv.sm;
    l
  in
  while links_left () <> [] && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  List.iter (fun l -> try l.Link.shutdown () with _ -> ()) (links_left ());
  Mutex.lock srv.sm;
  let threads = srv.threads in
  Mutex.unlock srv.sm;
  List.iter (fun th -> try Thread.join th with _ -> ()) threads

(** The primary half of the [/repl] admin document. *)
let status_json t : string =
  locked t (fun () ->
      let open Pobs.Json in
      to_string
        (Obj
           [
             ("role", Str "primary");
             ("stream_id", Int t.stream_id);
             ("lsn", Int t.lsn);
             ("records_captured", Int t.records_captured);
             ("backlog_records", Int (Queue.length t.backlog));
             ("backlog_bytes", Int t.backlog_bytes);
             ("snapshots_sent", Int t.snapshots_sent);
             ("repair_pages_served", Int t.pages_served);
             ("repair_refusals", Int t.fetch_refusals);
             ( "connections",
               List
                 (List.map
                    (fun c ->
                      Obj
                        [
                          ("id", Int c.conn_id);
                          ("sent_lsn", Int c.sent_lsn);
                          ("acked_lsn", Int c.acked_lsn);
                        ])
                    t.conns) );
           ]))
