(** The replica: snapshot bootstrap, atomic delta apply, reconnect.

    The applier owns a {e pager} — not a [Store] — on the replica file:
    applying a delta means replaying foreign page images, and doing that
    under an open store would desync its in-memory directory/heap state.
    Serving reads is a separate concern: the HTTP side opens its own
    {e read-only} store/database handle over the same file and refreshes
    it (under {!with_lock}) when the applied LSN advances.

    Apply protocol, per delta: skip if the record's LSN is not ahead of
    the file's; otherwise begin a pager transaction, grow the file to
    cover the record's pages, blit every after-image, and commit with
    the record's own LSN.  The pager's undo journal makes this atomic
    and the commit fsyncs make it durable — a crash mid-apply recovers
    to the {e previous} LSN's image on reopen, never a torn mix — and
    only then is the LSN acked to the primary.

    Snapshot bootstrap writes the image to a side file, fsyncs, removes
    any stale journal (before-images of the {e old} file must never
    replay over the new one), and renames into place — the same
    crash-ordering discipline as [Store.vacuum].  The stream id is
    remembered in a tiny sidecar ([<path>.replid]) rather than in the
    file itself, keeping the replica file byte-identical to the
    primary's. *)

open Pstore

let m_applied_records =
  Pobs.Metrics.counter "pdb_repl_applied_records_total"
    ~help:"Redo records applied by the replica"

let m_applied_bytes =
  Pobs.Metrics.counter "pdb_repl_applied_bytes_total"
    ~help:"After-image bytes applied by the replica"

let m_reconnects =
  Pobs.Metrics.counter "pdb_repl_reconnects_total"
    ~help:"Replica reconnect attempts after a link failure"

let m_snapshots_applied =
  Pobs.Metrics.counter "pdb_repl_snapshots_applied_total"
    ~help:"Full snapshots installed by the replica"

let m_page_repairs =
  Pobs.Metrics.counter "pdb_repl_page_repairs_total"
    ~help:"Corrupt pages repaired in place from the primary"

let m_repair_failures =
  Pobs.Metrics.counter "pdb_repl_page_repair_failures_total"
    ~help:"Page repairs that failed or were refused (degraded to re-bootstrap)"

exception Replica_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Replica_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Applier                                                             *)
(* ------------------------------------------------------------------ *)

module Apply = struct
  type t = {
    vfs : Vfs.t;
    path : string;
    mutable pager : Pager.t option; (* None until the first snapshot lands *)
    mutable stream_id : int; (* 0 = never bootstrapped *)
    mutable applied_records : int;
    mutable snapshots_loaded : int;
    mutable repaired_pages : int;
    m : Mutex.t;
  }

  let sidecar path = path ^ ".replid"

  (* The sidecar holds the stream id as a decimal line.  Written via
     write-fsync-rename so it can never be half-written. *)
  let read_sidecar (vfs : Vfs.t) path =
    if not (vfs.Vfs.exists (sidecar path)) then 0
    else begin
      let fd = vfs.Vfs.open_file (sidecar path) in
      let len = fd.Vfs.size () in
      let buf = Bytes.create len in
      let n = fd.Vfs.pread ~buf ~off:0 ~len ~at:0 in
      fd.Vfs.close ();
      try int_of_string (String.trim (Bytes.sub_string buf 0 n)) with _ -> 0
    end

  let write_sidecar (vfs : Vfs.t) path id =
    let tmp = sidecar path ^ ".tmp" in
    let fd = vfs.Vfs.open_file ~trunc:true tmp in
    let s = Bytes.of_string (string_of_int id ^ "\n") in
    let pos = ref 0 in
    while !pos < Bytes.length s do
      let n = fd.Vfs.pwrite ~buf:s ~off:!pos ~len:(Bytes.length s - !pos) ~at:!pos in
      if n <= 0 then fail "sidecar write made no progress";
      pos := !pos + n
    done;
    fd.Vfs.fsync ();
    fd.Vfs.close ();
    vfs.Vfs.rename tmp (sidecar path)

  (** Open (or prepare to bootstrap) the replica state at [path].  An
      existing file is opened through the normal pager path, so a crash
      mid-apply is rolled back by journal recovery right here. *)
  let create ?(vfs = Vfs.unix) path : t =
    let stream_id = read_sidecar vfs path in
    let pager = if vfs.Vfs.exists path then Some (Pager.open_file ~vfs path) else None in
    {
      vfs;
      path;
      pager;
      stream_id;
      applied_records = 0;
      snapshots_loaded = 0;
      repaired_pages = 0;
      m = Mutex.create ();
    }

  (** Run [f] under the applier mutex.  The HTTP side uses this to
      refresh its read-only store without racing a batch mid-apply. *)
  let with_lock t f =
    Mutex.lock t.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

  let last_lsn t =
    with_lock t (fun () -> match t.pager with Some p -> Pager.lsn p | None -> 0)

  let stream_id t = t.stream_id

  let install_snapshot t ~stream_id ~lsn ~(data : string) =
    with_lock t (fun () ->
        (match t.pager with
        | Some p -> Pager.close p
        | None -> ());
        t.pager <- None;
        let vfs = t.vfs in
        let tmp = t.path ^ ".snap" in
        let fd = vfs.Vfs.open_file ~trunc:true tmp in
        let buf = Bytes.unsafe_of_string data in
        let pos = ref 0 in
        while !pos < Bytes.length buf do
          let n =
            fd.Vfs.pwrite ~buf ~off:!pos ~len:(Bytes.length buf - !pos) ~at:!pos
          in
          if n <= 0 then fail "snapshot write made no progress";
          pos := !pos + n
        done;
        fd.Vfs.fsync ();
        fd.Vfs.close ();
        (* A journal left by the previous incarnation holds before-images
           of the *old* file; replaying it over the snapshot would corrupt
           it.  Remove it before the rename commit point. *)
        if vfs.Vfs.exists (t.path ^ ".journal") then vfs.Vfs.remove (t.path ^ ".journal");
        vfs.Vfs.rename tmp t.path;
        write_sidecar vfs t.path stream_id;
        t.stream_id <- stream_id;
        t.snapshots_loaded <- t.snapshots_loaded + 1;
        Pobs.Metrics.inc m_snapshots_applied;
        let p = Pager.open_file ~vfs t.path in
        if Pager.lsn p <> lsn then
          Printf.eprintf "replica: snapshot header lsn %d != announced %d\n%!"
            (Pager.lsn p) lsn;
        t.pager <- Some p)

  (** Apply one delta; returns the file's LSN afterwards (unchanged when
      the record was a duplicate from a resumed stream).  LSNs are dense
      — every page-dirtying commit is exactly [previous + 1] — so a
      record that skips ahead means records were lost upstream (e.g.
      evicted from the primary's backlog); applying it would silently
      diverge.  Reject it instead: the session drops the link and the
      re-handshake gets a fresh snapshot. *)
  let apply_delta t ~lsn ~(pages : (int * string) list) : int =
    with_lock t (fun () ->
        match t.pager with
        | None -> fail "delta before any snapshot: replica has no database file"
        | Some p ->
            if lsn <= Pager.lsn p then Pager.lsn p
            else if lsn > Pager.lsn p + 1 then
              fail "delta lsn %d skips past %d: records lost upstream" lsn
                (Pager.lsn p)
            else begin
              Pager.begin_tx p;
              (try
                 List.iter
                   (fun (no, data) ->
                     while no >= Pager.page_count p do
                       ignore (Pager.allocate p)
                     done;
                     Pager.with_write p no (fun b ->
                         Bytes.blit_string data 0 b 0 Pager.page_size))
                   pages;
                 Pager.commit ~lsn p
               with e ->
                 (try Pager.abort p with _ -> ());
                 raise e);
              t.applied_records <- t.applied_records + 1;
              Pobs.Metrics.inc m_applied_records;
              Pobs.Metrics.addi m_applied_bytes (List.length pages * Pager.page_size);
              Pager.lsn p
            end)

  (** Splice clean page images (fetched from the primary) over corrupt
      pages, as one journalled transaction that leaves the LSN where it
      is — the images are {e at} the file's LSN, not past it.

      Order matters: each image's own trailer is verified first (the
      fetch crossed a CRC-framed link, but defence in depth is the
      point of this PR); the pages are then quarantined so journalling
      their damaged before-images does not re-raise; and after the
      commit the quarantine is lifted and every page is re-read from
      disk and re-verified to prove the repair landed.  Page 0 is
      refused here — its LSN/flag fields are what repair consistency is
      judged against, so a damaged header can only re-bootstrap. *)
  let apply_repair t ~lsn ~(pages : (int * string) list) : unit =
    with_lock t (fun () ->
        match t.pager with
        | None -> fail "repair before any snapshot: replica has no database file"
        | Some p ->
            if lsn <> Pager.lsn p then
              fail "repair images are at lsn %d but the file is at %d" lsn
                (Pager.lsn p);
            List.iter
              (fun (no, data) ->
                if String.length data <> Pager.page_size then
                  fail "repair page %d has %d bytes (want %d)" no
                    (String.length data) Pager.page_size;
                if no <= 0 || no >= Pager.page_count p then
                  fail "repair page %d out of range" no;
                if Pager.checksums_enabled p then
                  Pager.verify_image ~page:no (Bytes.of_string data))
              pages;
            List.iter (fun (no, _) -> Pager.quarantine p no) pages;
            Pager.begin_tx p;
            (try
               List.iter
                 (fun (no, data) ->
                   Pager.with_write p no (fun b ->
                       Bytes.blit_string data 0 b 0 Pager.page_size))
                 pages;
               Pager.commit ~lsn:(Pager.lsn p) p
             with e ->
               (try Pager.abort p with _ -> ());
               Pobs.Metrics.inc m_repair_failures;
               raise e);
            List.iter (fun (no, _) -> Pager.unquarantine p no) pages;
            List.iter (fun (no, _) -> Pager.verify_page p no) pages;
            t.repaired_pages <- t.repaired_pages + List.length pages;
            Pobs.Metrics.addi m_page_repairs (List.length pages))

  (** One checksum pass over the replica file (see {!Pager.scrub});
      [None] when no snapshot has been installed yet. *)
  let scrub t : Pager.scrub_report option =
    with_lock t (fun () -> Option.map Pager.scrub t.pager)

  let quarantined t =
    with_lock t (fun () ->
        match t.pager with Some p -> Pager.quarantined p | None -> [])

  (** Degrade to PR 5 re-bootstrap: forget the stream (sidecar id 0) so
      the next [Hello] is answered with a full snapshot, and drop the
      pager — the damaged file stays on disk until the snapshot rename
      replaces it wholesale. *)
  let force_rebootstrap t =
    with_lock t (fun () ->
        (match t.pager with
        | Some p -> ( try Pager.close p with _ -> ())
        | None -> ());
        t.pager <- None;
        t.stream_id <- 0;
        write_sidecar t.vfs t.path 0;
        Pobs.Metrics.inc m_repair_failures)

  let close t =
    with_lock t (fun () ->
        (match t.pager with Some p -> Pager.close p | None -> ());
        t.pager <- None)
end

(* ------------------------------------------------------------------ *)
(* Client session: connect, handshake, apply, ack, reconnect           *)
(* ------------------------------------------------------------------ *)

let backoff_initial = 0.05
let backoff_cap = 2.0

(* How long a repair waits for the primary's [PageData] before giving
   up on this connection (the reconnect path retries from scratch). *)
let fetch_timeout_s = 10.

(* ------------------------------------------------------------------ *)
(* Peer repair: fetch clean pages over an open link                    *)
(* ------------------------------------------------------------------ *)

(** Repair [pages] of [apply]'s file in place through [link]: send
    [PageFetch] at the applied LSN, wait for the matching [PageData]
    (buffering and afterwards replaying any [Delta]s that race it),
    verify + splice + re-verify via {!Apply.apply_repair}.

    Degrades to re-bootstrap — sidecar reset so the next [Hello] gets a
    snapshot — exactly when repair is impossible: the header page is
    among the damage, or the primary refuses (gone past our LSN, page
    beyond its mirror, backlog evicted).  A timeout merely drops the
    connection; the damage is still quarantined and the next session
    retries. *)
let repair_via (apply : Apply.t) (link : Link.t) (pages : int list) : unit =
  if List.mem 0 pages then begin
    Apply.force_rebootstrap apply;
    fail "header page corrupt: repair impossible, re-bootstrapping"
  end;
  let lsn = Apply.last_lsn apply in
  Wire.to_link link (Wire.PageFetch { lsn; pages });
  let buffered = Queue.create () in
  let deadline = Unix.gettimeofday () +. fetch_timeout_s in
  let rec await () =
    let left = deadline -. Unix.gettimeofday () in
    if left <= 0. then begin
      Pobs.Metrics.inc m_repair_failures;
      fail "timed out waiting for page data from the primary"
    end;
    if not (link.Link.poll (Float.min left 0.25)) then await ()
    else
      match Wire.from_link link with
      | Wire.PageData { lsn = l; pages = imgs } ->
          if imgs = [] then begin
            Apply.force_rebootstrap apply;
            fail "primary refused page fetch at lsn %d: re-bootstrapping" l
          end;
          Apply.apply_repair apply ~lsn:l ~pages:imgs
      | Wire.Delta { lsn; pages } ->
          (* committed while we waited; ordered before the reply only
             by chance of thread interleaving on the primary *)
          Queue.add (lsn, pages) buffered;
          await ()
      | Wire.Snapshot { stream_id; lsn; data } ->
          (* the primary restarted the stream under us; installing the
             snapshot rewrites the whole file and supersedes the repair *)
          Apply.install_snapshot apply ~stream_id ~lsn ~data
      | _ -> raise (Wire.Wire_error "unexpected frame from primary")
  in
  await ();
  (* Deltas that raced the repair are all ≤ the primary's LSN at reply
     time; duplicates are skipped by the applier's LSN check. *)
  Queue.iter (fun (lsn, pages) -> ignore (Apply.apply_delta apply ~lsn ~pages)) buffered

type session = {
  apply : Apply.t;
  host : string;
  port : int;
  running : bool ref;
  mutable link : Link.t option;
  mutable connected : bool;
  mutable made_progress : bool; (* did the last run_once reach the stream? *)
  mutable reconnects : int;
  mutable last_error : string;
  mutable on_applied : int -> unit; (* called (outside the lock) after the LSN advances *)
  (* Cascade hooks: republish what this replica applies so it can feed
     downstream replicas (chained replication).  [on_record] fires only
     for deltas that actually advanced the file; [on_snapshot] fires
     after a snapshot install, with the stream id and raw image, so the
     cascade feed can be rebuilt around the new incarnation. *)
  mutable on_record : lsn:int -> pages:(int * string) list -> unit;
  mutable on_snapshot : stream_id:int -> lsn:int -> image:string -> unit;
  mutable thread : Thread.t option;
  scrub_every_s : float option; (* in-session background scrub period *)
  mutable scrubs_run : int;
  mutable last_scrub_at : float;
}

(* One connection's lifetime: hello, then apply-and-ack until the link
   dies or the session is stopped. *)
let run_once (s : session) =
  let link = Link.connect ~host:s.host ~port:s.port in
  s.link <- Some link;
  Fun.protect
    ~finally:(fun () ->
      s.connected <- false;
      s.link <- None;
      link.Link.close ())
    (fun () ->
      Wire.to_link link
        (Wire.Hello { stream_id = Apply.stream_id s.apply; last_lsn = Apply.last_lsn s.apply });
      s.connected <- true;
      s.made_progress <- true;
      s.last_error <- "";
      while !(s.running) do
        (* Periodic in-session scrub: walk the file's checksums and
           repair whatever has rotted through the live link. *)
        (match s.scrub_every_s with
        | Some every when Unix.gettimeofday () -. s.last_scrub_at >= every -> (
            s.last_scrub_at <- Unix.gettimeofday ();
            s.scrubs_run <- s.scrubs_run + 1;
            match Apply.scrub s.apply with
            | Some { Pager.scrub_corrupt = (_ :: _) as bad; _ } ->
                repair_via s.apply link (List.map (fun (no, _, _) -> no) bad)
            | _ -> ())
        | _ -> ());
        (* Bounded poll so a stop request is noticed promptly even on an
           idle stream. *)
        if link.Link.poll 0.25 then begin
          let applied =
            match Wire.from_link link with
            | Wire.Snapshot { stream_id; lsn; data } ->
                Apply.install_snapshot s.apply ~stream_id ~lsn ~data;
                s.on_snapshot ~stream_id ~lsn ~image:data;
                lsn
            | Wire.Delta { lsn; pages } ->
                let before = Apply.last_lsn s.apply in
                let a =
                  (* At-rest rot surfaces here as [Page_corrupt] when the
                     apply journals the damaged before-image.  The apply
                     aborted cleanly; repair the page from the peer and
                     re-apply the same record. *)
                  try Apply.apply_delta s.apply ~lsn ~pages
                  with Pager.Page_corrupt { page; _ } ->
                    repair_via s.apply link [ page ];
                    Apply.apply_delta s.apply ~lsn ~pages
                in
                if a > before then s.on_record ~lsn ~pages;
                a
            | _ -> raise (Wire.Wire_error "unexpected frame from primary")
          in
          (* Ack only what is durably applied; duplicates re-ack the
             current LSN, which the primary treats as a no-op. *)
          Wire.to_link link (Wire.Ack { lsn = applied });
          s.on_applied applied
        end
      done)

(** Start the replication client: a background thread that follows
    [host:port] and keeps the file at [path] in sync, reconnecting with
    capped exponential backoff (50 ms doubling to 2 s) and resuming from
    the file's last durable LSN.  [scrub_every_s] turns on an in-session
    background scrub: every that many seconds the file's checksums are
    walked and corrupt pages repaired from the primary. *)
let start ?(vfs = Vfs.unix) ?scrub_every_s ~host ~port path : session =
  let s =
    {
      apply = Apply.create ~vfs path;
      host;
      port;
      running = ref true;
      link = None;
      connected = false;
      made_progress = false;
      reconnects = 0;
      last_error = "";
      on_applied = (fun _ -> ());
      on_record = (fun ~lsn:_ ~pages:_ -> ());
      on_snapshot = (fun ~stream_id:_ ~lsn:_ ~image:_ -> ());
      thread = None;
      scrub_every_s;
      scrubs_run = 0;
      last_scrub_at = Unix.gettimeofday ();
    }
  in
  let th =
    Thread.create
      (fun () ->
        let delay = ref backoff_initial in
        while !(s.running) do
          s.made_progress <- false;
          (match run_once s with
          | () -> ()
          | exception (Link.Link_down m | Wire.Wire_error m | Replica_error m) ->
              s.last_error <- m
          | exception Pager.Io_error { op; path; _ } ->
              s.last_error <- Printf.sprintf "io error: %s %s" op path
          | exception e -> s.last_error <- Printexc.to_string e);
          (* a run that reached the stream resets the backoff — keyed on
             the flag, not on [last_error], which the failure that ended
             the run has already overwritten *)
          if s.made_progress then delay := backoff_initial;
          if !(s.running) then begin
            s.reconnects <- s.reconnects + 1;
            Pobs.Metrics.inc m_reconnects;
            Thread.delay !delay;
            delay := min (!delay *. 2.) backoff_cap
          end
        done)
      ()
  in
  s.thread <- Some th;
  s

let stop (s : session) =
  s.running := false;
  (* shutdown, not close: it wakes a thread blocked mid-recv without
     racing the session thread's own close of the same descriptor *)
  (match s.link with Some l -> (try l.Link.shutdown () with _ -> ()) | None -> ());
  (match s.thread with Some th -> (try Thread.join th with _ -> ()) | None -> ());
  Apply.close s.apply

(* ------------------------------------------------------------------ *)
(* Offline scrub-and-repair (the [pdb scrub --from] path)              *)
(* ------------------------------------------------------------------ *)

(** Scrub the replica file at [path] and repair any corruption from the
    primary at [host:port], without starting a session: one scrub pass,
    one connection, then close.  Outcomes:

    - [`Clean n] — all [n] scanned pages verified; nothing sent.
    - [`Repaired pages] — those pages were fetched, spliced and
      re-verified; the file is clean again.
    - [`Rebootstrapped lsn] — repair was impossible (header page
      damaged, primary refused, or the primary answered the handshake
      with a snapshot) and a full snapshot at [lsn] was installed
      instead.

    Anything else — primary unreachable, timeout, wire damage — raises
    ({!Link.Link_down}, {!Wire.Wire_error} or {!Replica_error}); the
    file keeps its quarantine and a later run can retry. *)
let scrub_repair ?(vfs = Vfs.unix) ~host ~port path :
    [ `Clean of int | `Repaired of int list | `Rebootstrapped of int ] =
  let with_link f =
    let link = Link.connect ~host ~port in
    Fun.protect ~finally:(fun () -> link.Link.close ()) (fun () -> f link)
  in
  (* Full re-bootstrap: a [Hello] for stream 0 is unanswerable by
     deltas, so the primary must send a snapshot. *)
  let bootstrap (apply : Apply.t) =
    with_link (fun link ->
        Wire.to_link link (Wire.Hello { stream_id = 0; last_lsn = 0 });
        match Wire.from_link link with
        | Wire.Snapshot { stream_id; lsn; data } ->
            Apply.install_snapshot apply ~stream_id ~lsn ~data;
            Wire.to_link link (Wire.Ack { lsn });
            `Rebootstrapped lsn
        | _ -> raise (Wire.Wire_error "expected a snapshot from the primary"))
  in
  match Apply.create ~vfs path with
  | exception Pager.Page_corrupt _ ->
      (* The header page is damaged: the file cannot even be opened.
         Degrade straight to re-bootstrap. *)
      Pobs.Metrics.inc m_repair_failures;
      let apply =
        Apply.
          {
            vfs;
            path;
            pager = None;
            stream_id = 0;
            applied_records = 0;
            snapshots_loaded = 0;
            repaired_pages = 0;
            m = Mutex.create ();
          }
      in
      Fun.protect ~finally:(fun () -> Apply.close apply) (fun () -> bootstrap apply)
  | apply ->
      Fun.protect
        ~finally:(fun () -> Apply.close apply)
        (fun () ->
          match Apply.scrub apply with
          | None -> fail "no replica file at %s" path
          | Some { Pager.scrub_scanned; scrub_corrupt = []; _ } -> `Clean scrub_scanned
          | Some { Pager.scrub_corrupt = bad; _ } ->
              let pages = List.map (fun (no, _, _) -> no) bad in
              if List.mem 0 pages then begin
                Apply.force_rebootstrap apply;
                bootstrap apply
              end
              else
                with_link (fun link ->
                    Wire.to_link link
                      (Wire.Hello
                         {
                           stream_id = Apply.stream_id apply;
                           last_lsn = Apply.last_lsn apply;
                         });
                    match repair_via apply link pages with
                    | () -> `Repaired pages
                    | exception Replica_error _ when Apply.stream_id apply = 0 ->
                        (* repair_via degraded (refusal): re-bootstrap now
                           rather than leaving a quarantined file behind *)
                        bootstrap apply))

(** The replica half of the [/repl] admin document. *)
let status_json (s : session) : string =
  let open Pobs.Json in
  to_string
    (Obj
       [
         ("role", Str "replica");
         ("primary", Str (Printf.sprintf "%s:%d" s.host s.port));
         ("stream_id", Int (Apply.stream_id s.apply));
         ("applied_lsn", Int (Apply.last_lsn s.apply));
         ("applied_records", Int s.apply.Apply.applied_records);
         ("snapshots_loaded", Int s.apply.Apply.snapshots_loaded);
         ("repaired_pages", Int s.apply.Apply.repaired_pages);
         ("quarantined_pages", List (List.map (fun no -> Int no) (Apply.quarantined s.apply)));
         ("scrubs_run", Int s.scrubs_run);
         ("connected", Bool s.connected);
         ("reconnects", Int s.reconnects);
         ("last_error", Str s.last_error);
       ])
