(** Byte-stream seam between primary and replica.

    Replication traffic flows through a {!t} — a record of closures over
    send/recv/poll/close — in the same spirit as {!Pstore.Vfs}: the real
    implementation wraps a TCP socket, and tests substitute in-memory
    links that tear frames, cut the connection after N bytes, or replay
    a recorded stream, so the reconnect/resume protocol can be proven
    correct without a network (see [test/test_repl.ml]).

    Contract: [send]/[recv] are single-shot and may transfer fewer bytes
    than asked; [recv] returns 0 when the peer has closed; [poll t]
    says whether a [recv] would make progress within [t] seconds.  Any
    transport failure surfaces as {!Link_down} — never a raw
    [Unix_error]. *)

(** The connection is gone: the peer vanished, the OS refused, or a
    fault-injecting link decided to cut the wire.  Both ends treat it
    the same way — abandon the connection and let the replica's
    reconnect loop take over. *)
exception Link_down of string

type t = {
  send : Bytes.t -> off:int -> len:int -> int;
  recv : Bytes.t -> off:int -> len:int -> int;  (** 0 = peer closed *)
  poll : float -> bool;
  close : unit -> unit;
  shutdown : unit -> unit;
      (** Force any thread blocked in [send]/[recv] on this link to fail
          with {!Link_down}, {e without} releasing the descriptor — safe
          to call from another thread (a cross-thread [close] would race
          fd reuse, and on Linux does not even wake a blocked writer). *)
}

let down fmt = Format.kasprintf (fun s -> raise (Link_down s)) fmt

(* --- exact-transfer helpers (short transfers retried) ----------------- *)

let really_send (l : t) buf ~off ~len =
  let pos = ref 0 in
  while !pos < len do
    let n = l.send buf ~off:(off + !pos) ~len:(len - !pos) in
    if n <= 0 then down "send made no progress";
    pos := !pos + n
  done

(** Read exactly [len] bytes; {!Link_down} if the peer closes mid-way.
    A clean close *before the first byte* also raises — framing above us
    treats any mid-stream EOF as a cut link. *)
let really_recv (l : t) buf ~off ~len =
  let pos = ref 0 in
  while !pos < len do
    let n = l.recv buf ~off:(off + !pos) ~len:(len - !pos) in
    if n = 0 then down "peer closed (got %d of %d bytes)" !pos len;
    pos := !pos + n
  done

(* --- TCP --------------------------------------------------------------- *)

(* A peer that vanishes mid-send must surface as EPIPE → Link_down, not
   deliver a process-killing SIGPIPE; set once per endpoint creation. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* [Unix.inet_addr_of_string] raises [Failure] on anything that is not a
   numeric literal, so hostnames ("localhost", DNS names) go through
   getaddrinfo.  Every failure mode becomes {!Link_down}. *)
let resolve host port =
  match Unix.inet_addr_of_string host with
  | addr -> Unix.ADDR_INET (addr, port)
  | exception Failure _ -> (
      match
        Unix.getaddrinfo host (string_of_int port)
          [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
      with
      | { Unix.ai_addr = Unix.ADDR_INET _ as addr; _ } :: _ -> addr
      | _ -> down "cannot resolve host %S" host
      | exception _ -> down "cannot resolve host %S" host)

let of_fd fd : t =
  let closed = ref false in
  (* serializes close/shutdown: a cross-thread [shutdown] must never
     touch the descriptor after the owner's [close] released it *)
  let cm = Mutex.create () in
  let rec send buf ~off ~len =
    match Unix.write fd buf off len with
    | n -> n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> send buf ~off ~len
    | exception Unix.Unix_error (e, _, _) -> down "send: %s" (Unix.error_message e)
  in
  let rec recv buf ~off ~len =
    match Unix.read fd buf off len with
    | n -> n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv buf ~off ~len
    | exception Unix.Unix_error (e, _, _) -> down "recv: %s" (Unix.error_message e)
  in
  let poll timeout =
    match Unix.select [ fd ] [] [] timeout with
    | [], _, _ -> false
    | _ -> true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  in
  let close () =
    Mutex.lock cm;
    if not !closed then begin
      closed := true;
      (try Unix.close fd with Unix.Unix_error _ -> ())
    end;
    Mutex.unlock cm
  in
  let shutdown () =
    Mutex.lock cm;
    if not !closed then (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    Mutex.unlock cm
  in
  { send; recv; poll; close; shutdown }

let connect ~host ~port : t =
  ignore_sigpipe ();
  let addr = resolve host port in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd addr;
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (match e with
     | Unix.Unix_error (er, _, _) ->
         down "connect %s:%d: %s" host port (Unix.error_message er)
     | e -> down "connect %s:%d: %s" host port (Printexc.to_string e)));
  of_fd fd

type listener = { l_fd : Unix.file_descr; bound_port : int }

let listen ~host ~port : listener =
  ignore_sigpipe ();
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (resolve host port);
  Unix.listen fd 16;
  let bound_port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  { l_fd = fd; bound_port }

(** Is a connection waiting on [l] within [timeout] seconds?  An accept
    loop must wait here rather than block in [accept]: on Linux a thread
    parked in [accept(2)] is {e not} woken when another thread closes
    the listening descriptor, so a blocking accept could never be shut
    down. *)
let poll_listener (l : listener) timeout =
  match Unix.select [ l.l_fd ] [] [] timeout with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  | exception Unix.Unix_error (_, _, _) -> false

(** [sndtimeo] caps how long a [send] may block on a stalled peer (full
    TCP buffer): past it the write fails with {!Link_down} instead of
    wedging the sender thread forever. *)
let accept ?sndtimeo (l : listener) : t =
  let rec go () =
    match Unix.accept l.l_fd with
    | fd, _addr ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        (match sndtimeo with
        | Some s -> (
            try Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
            with Unix.Unix_error _ | Invalid_argument _ -> ())
        | None -> ());
        of_fd fd
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (e, _, _) -> down "accept: %s" (Unix.error_message e)
  in
  go ()

let close_listener (l : listener) = try Unix.close l.l_fd with Unix.Unix_error _ -> ()

(* --- in-memory pair ---------------------------------------------------- *)

(* One direction of an in-memory duplex link: a chunk queue guarded by a
   mutex/condition so the bench can run a writer and an applier thread
   over it without sockets. *)
type chan = {
  q : string Queue.t;
  mutable pos : int; (* consumed bytes of the front chunk *)
  m : Mutex.t;
  c : Condition.t;
  mutable chan_closed : bool;
}

let chan () = { q = Queue.create (); pos = 0; m = Mutex.create (); c = Condition.create (); chan_closed = false }

let chan_send ch buf ~off ~len =
  Mutex.lock ch.m;
  if ch.chan_closed then begin
    Mutex.unlock ch.m;
    down "send on closed in-memory link"
  end;
  Queue.add (Bytes.sub_string buf off len) ch.q;
  Condition.broadcast ch.c;
  Mutex.unlock ch.m;
  len

let chan_recv ch buf ~off ~len =
  Mutex.lock ch.m;
  while Queue.is_empty ch.q && not ch.chan_closed do
    Condition.wait ch.c ch.m
  done;
  let n =
    if Queue.is_empty ch.q then 0
    else begin
      let front = Queue.peek ch.q in
      let avail = String.length front - ch.pos in
      let n = min len avail in
      Bytes.blit_string front ch.pos buf off n;
      ch.pos <- ch.pos + n;
      if ch.pos >= String.length front then begin
        ignore (Queue.pop ch.q);
        ch.pos <- 0
      end;
      n
    end
  in
  Mutex.unlock ch.m;
  n

(* No timed condition wait in the stdlib: poll by short sleeps. *)
let chan_poll ch timeout =
  let ready () =
    Mutex.lock ch.m;
    let r = (not (Queue.is_empty ch.q)) || ch.chan_closed in
    Mutex.unlock ch.m;
    r
  in
  if ready () then true
  else if timeout <= 0. then false
  else begin
    let deadline = Unix.gettimeofday () +. timeout in
    let rec wait () =
      if ready () then true
      else if Unix.gettimeofday () >= deadline then false
      else begin
        Thread.delay 0.002;
        wait ()
      end
    in
    wait ()
  end

let chan_close ch =
  Mutex.lock ch.m;
  ch.chan_closed <- true;
  Condition.broadcast ch.c;
  Mutex.unlock ch.m

(** An in-memory duplex pair: bytes sent on one endpoint arrive at the
    other.  Thread-safe; closing either endpoint EOFs both directions. *)
let pair () : t * t =
  let a2b = chan () and b2a = chan () in
  let mk tx rx =
    let close () =
      chan_close tx;
      chan_close rx
    in
    {
      send = (fun buf ~off ~len -> chan_send tx buf ~off ~len);
      recv = (fun buf ~off ~len -> chan_recv rx buf ~off ~len);
      poll = (fun timeout -> chan_poll rx timeout);
      close;
      shutdown = close (* in-memory: closing the chans wakes both sides *);
    }
  in
  (mk a2b b2a, mk b2a a2b)

(** A replayed inbound stream for deterministic tests: [recv] serves the
    bytes of [s] (optionally only the first [cut] bytes, then behaves as
    a vanished peer), [send] appends to an internal buffer returned by
    the second component. *)
let of_string ?cut (s : string) : t * Buffer.t =
  let sent = Buffer.create 256 in
  let limit = match cut with Some c -> min c (String.length s) | None -> String.length s in
  let pos = ref 0 in
  let recv buf ~off ~len =
    if !pos >= limit then
      if limit < String.length s then down "link cut at byte %d" limit else 0
    else begin
      let n = min len (limit - !pos) in
      Bytes.blit_string s !pos buf off n;
      pos := !pos + n;
      n
    end
  in
  ( {
      send =
        (fun buf ~off ~len ->
          Buffer.add_subbytes sent buf off len;
          len);
      recv;
      poll = (fun _ -> !pos < String.length s);
      close = (fun () -> ());
      shutdown = (fun () -> ());
    },
    sent )
