#!/bin/sh
# CI gate: build, full test suite (includes the smoke crash sweep),
# bench smoke (micro + storage hot paths + query engine, which emit
# BENCH_PR2.json and BENCH_PR3.json), then the long fixed-seed
# crash-torture sweep.  Equivalent to `dune build @ci` plus the bench
# smoke.  Pass `smoke` to skip the long sweep.
set -e
cd "$(dirname "$0")"
dune build
dune runtest

# bench smoke: the harness must run end to end, and the storage section
# must emit a well-formed BENCH_PR2.json trajectory record
dune exec bench/main.exe -- micro >/dev/null
rm -f BENCH_PR2.json
dune exec bench/main.exe -- storage >/dev/null
[ -s BENCH_PR2.json ] || { echo "ci: BENCH_PR2.json missing or empty" >&2; exit 1; }
head -c 1 BENCH_PR2.json | grep -q '{' || { echo "ci: BENCH_PR2.json is not a JSON object" >&2; exit 1; }
tail -c 2 BENCH_PR2.json | grep -q '}' || { echo "ci: BENCH_PR2.json is not a JSON object" >&2; exit 1; }
for key in commit_tx_per_s churn_pages_per_s journal_mib_per_s best_commit_speedup environments acceptance; do
  grep -q "\"$key\"" BENCH_PR2.json || { echo "ci: BENCH_PR2.json missing key $key" >&2; exit 1; }
done

# the query section must emit a well-formed BENCH_PR3.json trajectory
# record comparing the compiled-plan engine against the legacy
# interpreter
rm -f BENCH_PR3.json
dune exec bench/main.exe -- query >/dev/null
[ -s BENCH_PR3.json ] || { echo "ci: BENCH_PR3.json missing or empty" >&2; exit 1; }
head -c 1 BENCH_PR3.json | grep -q '{' || { echo "ci: BENCH_PR3.json is not a JSON object" >&2; exit 1; }
tail -c 2 BENCH_PR3.json | grep -q '}' || { echo "ci: BENCH_PR3.json is not a JSON object" >&2; exit 1; }
for key in deep_descent pool_descent join_heavy range_predicate like_prefix workloads workloads_at_2x acceptance; do
  grep -q "\"$key\"" BENCH_PR3.json || { echo "ci: BENCH_PR3.json missing key $key" >&2; exit 1; }
done

if [ "${1:-full}" != "smoke" ]; then
  CRASH_TORTURE=long dune exec test/test_crash.exe -- -e
fi
echo "ci: OK"
