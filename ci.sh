#!/bin/sh
# CI gate: build, full test suite (includes the smoke crash sweep),
# then the long fixed-seed crash-torture sweep.  Equivalent to
# `dune build @ci`.  Pass `smoke` to skip the long sweep.
set -e
cd "$(dirname "$0")"
dune build
dune runtest
if [ "${1:-full}" != "smoke" ]; then
  CRASH_TORTURE=long dune exec test/test_crash.exe -- -e
fi
echo "ci: OK"
