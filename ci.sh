#!/bin/sh
# CI gate: build, full test suite (includes the smoke crash sweep),
# bench smoke (micro + storage hot paths, which emits BENCH_PR2.json),
# then the long fixed-seed crash-torture sweep.  Equivalent to
# `dune build @ci` plus the bench smoke.  Pass `smoke` to skip the
# long sweep.
set -e
cd "$(dirname "$0")"
dune build
dune runtest

# bench smoke: the harness must run end to end, and the storage section
# must emit a well-formed BENCH_PR2.json trajectory record
dune exec bench/main.exe -- micro >/dev/null
rm -f BENCH_PR2.json
dune exec bench/main.exe -- storage >/dev/null
[ -s BENCH_PR2.json ] || { echo "ci: BENCH_PR2.json missing or empty" >&2; exit 1; }
head -c 1 BENCH_PR2.json | grep -q '{' || { echo "ci: BENCH_PR2.json is not a JSON object" >&2; exit 1; }
tail -c 2 BENCH_PR2.json | grep -q '}' || { echo "ci: BENCH_PR2.json is not a JSON object" >&2; exit 1; }
for key in commit_tx_per_s churn_pages_per_s journal_mib_per_s best_commit_speedup environments acceptance; do
  grep -q "\"$key\"" BENCH_PR2.json || { echo "ci: BENCH_PR2.json missing key $key" >&2; exit 1; }
done

if [ "${1:-full}" != "smoke" ]; then
  CRASH_TORTURE=long dune exec test/test_crash.exe -- -e
fi
echo "ci: OK"
