#!/bin/sh
# CI gate: build, full test suite (includes the smoke crash,
# replication and bit-rot sweeps), bench smoke (micro + storage hot
# paths + query engine + observability overhead + replication + page
# integrity + mvcc + serving + loadgen + cluster, which emit
# BENCH_PR2.json .. BENCH_PR10.json into a temp dir — the committed trajectory records in
# the repo tree are never touched), then the long fixed-seed
# crash-torture, replication fault and bit-rot sweeps.  Equivalent to
# `dune build @ci` plus the bench smoke.  Pass `smoke` to skip the
# long sweeps.
#
# Set BENCH_OUT to keep the emitted bench records (CI uploads them as
# workflow artifacts); unset, they go to a temp dir removed on exit.
set -e
cd "$(dirname "$0")"

fail() {
  echo "ci: $*" >&2
  exit 1
}

# check_bench_json FILE KEY... — the trajectory record must exist,
# parse as a JSON object, contain every KEY, and must not record a
# failed acceptance gate ("pass": false anywhere).  Validation is done
# by the bench harness's own JSON reader (`bench/main.exe validate`),
# not a grep over the raw bytes.
check_bench_json() {
  file="$1"
  shift
  [ -s "$file" ] || fail "$(basename "$file") missing or empty"
  dune exec bench/main.exe -- validate "$file" "$@" \
    || fail "$(basename "$file") failed validation"
}

dune build
dune runtest

# bench smoke: each section must run end to end and emit a well-formed
# trajectory record with its acceptance gate passing
if [ -n "${BENCH_OUT:-}" ]; then
  mkdir -p "$BENCH_OUT"
else
  BENCH_OUT="$(mktemp -d)"
  trap 'rm -rf "$BENCH_OUT"' EXIT INT TERM
fi

# snapshot the committed trajectory records so we can prove the bench
# smoke never clobbers them (it must write only into $BENCH_OUT)
records_digest() {
  cat BENCH_PR2.json BENCH_PR3.json BENCH_PR4.json BENCH_PR5.json \
    BENCH_PR6.json BENCH_PR7.json BENCH_PR8.json BENCH_PR9.json \
    BENCH_PR10.json 2>/dev/null | cksum
}
digest_before="$(records_digest)"

dune exec bench/main.exe -- micro >/dev/null

# storage hot paths (PR2): legacy vs optimized pager
dune exec bench/main.exe -- storage --out "$BENCH_OUT" >/dev/null
check_bench_json "$BENCH_OUT/BENCH_PR2.json" \
  commit_tx_per_s churn_pages_per_s journal_mib_per_s best_commit_speedup \
  environments acceptance

# query engine (PR3): compiled plans vs the legacy interpreter
dune exec bench/main.exe -- query --out "$BENCH_OUT" >/dev/null
check_bench_json "$BENCH_OUT/BENCH_PR3.json" \
  deep_descent pool_descent join_heavy range_predicate like_prefix \
  workloads workloads_at_2x acceptance

# observability overhead (PR4): metrics on vs off on the gated workloads
dune exec bench/main.exe -- obs --out "$BENCH_OUT" >/dev/null
check_bench_json "$BENCH_OUT/BENCH_PR4.json" \
  pr2_commit_tx pr3_deep_descent pr3_join_heavy pr3_range_predicate \
  workloads max_overhead_pct acceptance

# replication (PR5): ship/apply throughput and live-pair convergence
dune exec bench/main.exe -- repl --out "$BENCH_OUT" >/dev/null
check_bench_json "$BENCH_OUT/BENCH_PR5.json" \
  ship_encode apply_replay steady_state_lag mean_lag_lsns \
  final_lsn_equal files_identical workloads acceptance

# page integrity (PR6): verified-read overhead, scrub throughput,
# bit-rot detection
dune exec bench/main.exe -- integrity --out "$BENCH_OUT" >/dev/null
check_bench_json "$BENCH_OUT/BENCH_PR6.json" \
  verified_read cold_scan scrub detection overhead_pct \
  workloads acceptance

# mvcc (PR7): snapshot reader scaling across domains (gated, core-aware)
# and group-commit throughput (reported)
dune exec bench/main.exe -- mvcc --out "$BENCH_OUT" >/dev/null
check_bench_json "$BENCH_OUT/BENCH_PR7.json" \
  reader_scaling speedup_4_vs_1 cores group_commit \
  serial_commits_per_s group_commits_per_s workloads acceptance

# snapshot serving (PR8): reader-pool QPS vs single-handle serving
# (gated, core-aware) and read-your-writes under a write-heavy mix
# (violations gated at zero)
dune exec bench/main.exe -- serving --out "$BENCH_OUT" >/dev/null
check_bench_json "$BENCH_OUT/BENCH_PR8.json" \
  serving_scaling speedup_pool4_vs_single cores write_mix \
  rywr_violations pool_read_p99_ms workloads acceptance

# event-loop serving (PR9): connection-scaling curve HTTP vs binary
# (gated, core-aware) and the admission-control probe (connections
# dropped without a 503 gated at zero)
dune exec bench/main.exe -- loadgen --out "$BENCH_OUT" >/dev/null
check_bench_json "$BENCH_OUT/BENCH_PR9.json" \
  connection_scaling admission_control qps_http_close_256 \
  qps_binary_batch_256 speedup_batch_vs_close_256 cores \
  p99_binary_batch_256_ms dropped_without_503 workloads acceptance

# cluster tier (PR10): aggregate routed GET QPS vs replica count
# (gated, core-aware), tail latency with one lagging replica (stale
# answers gated at zero), and failover time from primary kill to the
# first successful routed write (acknowledged-write loss and
# read-your-writes violations gated at zero)
dune exec bench/main.exe -- cluster --out "$BENCH_OUT" >/dev/null
check_bench_json "$BENCH_OUT/BENCH_PR10.json" \
  replica_scaling lagging_replica failover qps_1_replica qps_4_replicas \
  scaling_4_vs_1 lagging_p99_ms failover_ms acked_writes_lost \
  rywr_violations replica_promoted cores workloads acceptance

# the bench smoke must leave the committed trajectory records untouched
[ "$(records_digest)" = "$digest_before" ] \
  || fail "bench smoke clobbered committed trajectory records"

if [ "${1:-full}" != "smoke" ]; then
  CRASH_TORTURE=long dune exec test/test_crash.exe -- -e
  REPL_TORTURE=long dune exec test/test_repl.exe -- -e
  SCRUB_TORTURE=long dune exec test/test_integrity.exe -- -e
  LOADGEN=soak dune exec bench/main.exe -- loadgen --out "$BENCH_OUT" >/dev/null
  check_bench_json "$BENCH_OUT/BENCH_PR9.json" \
    speedup_batch_vs_close_256 dropped_without_503 acceptance
fi
echo "ci: OK"
