lib/views/view.ml: Bus Database Event Format Hashtbl List Meta Obj Pevent Pmodel Pool_lang Value
