(** The views layer (thesis 6.1.3).

    A view is a named, persistent POOL query.  Views are stored as
    ordinary objects (class [__view]) so they survive restarts, travel
    with the database, and can themselves be queried.  Evaluation is
    either fresh or *materialised*: a materialised view caches its
    result and subscribes to the event bus, invalidating the cache when
    any object or relationship changes (a coarse but sound policy —
    thesis 3.2.2 notes the cost trade-offs of view maintenance).

    Views give classifications one of their main uses: a stored query
    like "the classification of taxonomist X" can be consulted as if it
    were a base collection. *)

open Pmodel
open Pevent

exception View_error of string

let fail fmt = Format.kasprintf (fun s -> raise (View_error s)) fmt

let view_class = "__view"

type t = {
  db : Database.t;
  cache : (string, Value.t) Hashtbl.t; (* materialised results *)
  mutable invalidations : int; (* statistics *)
  mutable sub : Bus.sub_id option;
}

let ensure_schema db =
  let schema = Database.schema db in
  if not (Meta.is_class schema view_class) then
    ignore
      (Database.define_class db view_class
         [
           Meta.attr "name" Value.TString ~required:true;
           Meta.attr "query" Value.TString ~required:true;
           Meta.attr "materialised" Value.TBool ~default:(Value.VBool false);
         ])

let create (db : Database.t) : t =
  ensure_schema db;
  let t = { db; cache = Hashtbl.create 16; invalidations = 0; sub = None } in
  (* Any mutation invalidates materialised results.  View definitions
     themselves are objects, so this also covers view redefinition. *)
  let id =
    Bus.subscribe (Database.bus db) ~name:"__views_invalidate"
      (Event.Any_of
         [
           Event.On_create None;
           Event.On_update (None, None);
           Event.On_delete None;
           Event.On_rel_create None;
           Event.On_rel_update (None, None);
           Event.On_rel_delete None;
         ])
      (fun _ ->
        if Hashtbl.length t.cache > 0 then begin
          Hashtbl.reset t.cache;
          t.invalidations <- t.invalidations + 1
        end)
  in
  t.sub <- Some id;
  t

let find_view t name : Obj.t option =
  Database.OidSet.fold
    (fun oid acc ->
      match acc with
      | Some _ -> acc
      | None -> (
          match Database.get t.db oid with
          | Some o when Obj.get o "name" = Value.VString name -> Some o
          | _ -> None))
    (Database.extent t.db view_class)
    None

(** Define (or redefine) a view.  The query is parsed now, so an
    invalid definition fails fast. *)
let define t ~name ~query ?(materialised = false) () : int =
  ignore (Pool_lang.Parser.parse query);
  (match find_view t name with
  | Some o -> Database.delete t.db o.Obj.oid
  | None -> ());
  Database.create t.db view_class
    [
      ("name", Value.VString name);
      ("query", Value.VString query);
      ("materialised", Value.VBool materialised);
    ]

let drop t name =
  match find_view t name with
  | Some o -> Database.delete t.db o.Obj.oid
  | None -> fail "no view named %s" name

let list t : (string * string) list =
  Database.OidSet.fold
    (fun oid acc ->
      match Database.get t.db oid with
      | Some o -> (Value.as_string (Obj.get o "name"), Value.as_string (Obj.get o "query")) :: acc
      | None -> acc)
    (Database.extent t.db view_class)
    []
  |> List.sort compare

(** Evaluate a view by name. *)
let query ?(env = []) t name : Value.t =
  match find_view t name with
  | None -> fail "no view named %s" name
  | Some o -> (
      let q = Value.as_string (Obj.get o "query") in
      let materialised = Obj.get o "materialised" = Value.VBool true in
      if not materialised then Pool_lang.Pool.query ~env t.db q
      else
        match Hashtbl.find_opt t.cache name with
        | Some v -> v
        | None ->
            let v = Pool_lang.Pool.query ~env t.db q in
            Hashtbl.replace t.cache name v;
            v)

let rows ?env t name : Value.t list =
  match query ?env t name with Value.VList l | Value.VSet l | Value.VBag l -> l | v -> [ v ]

let is_cached t name = Hashtbl.mem t.cache name
let invalidations t = t.invalidations
