(** The ICBN rank hierarchy (thesis fig. 1).

    Primary ranks are compulsory in classifications; secondary and sub
    ranks are optional, but the relative order must always be
    respected.  Ranks are shared between the nomenclatural and the
    classification sides of the taxonomic model (thesis fig. 6). *)

type t =
  | Regnum
  | Subregnum
  | Divisio
  | Subdivisio
  | Classis
  | Subclassis
  | Ordo
  | Subordo
  | Familia
  | Subfamilia
  | Tribus
  | Subtribus
  | Genus
  | Subgenus
  | Sectio
  | Subsectio
  | Series
  | Subseries
  | Species
  | Subspecies
  | Varietas
  | Subvarietas
  | Forma
  | Subforma

let all =
  [
    Regnum; Subregnum; Divisio; Subdivisio; Classis; Subclassis; Ordo; Subordo; Familia;
    Subfamilia; Tribus; Subtribus; Genus; Subgenus; Sectio; Subsectio; Series; Subseries;
    Species; Subspecies; Varietas; Subvarietas; Forma; Subforma;
  ]

(** Position in the hierarchy; smaller = higher (more general). *)
let order = function
  | Regnum -> 0
  | Subregnum -> 1
  | Divisio -> 2
  | Subdivisio -> 3
  | Classis -> 4
  | Subclassis -> 5
  | Ordo -> 6
  | Subordo -> 7
  | Familia -> 8
  | Subfamilia -> 9
  | Tribus -> 10
  | Subtribus -> 11
  | Genus -> 12
  | Subgenus -> 13
  | Sectio -> 14
  | Subsectio -> 15
  | Series -> 16
  | Subseries -> 17
  | Species -> 18
  | Subspecies -> 19
  | Varietas -> 20
  | Subvarietas -> 21
  | Forma -> 22
  | Subforma -> 23

let primary = [ Regnum; Divisio; Classis; Ordo; Familia; Genus; Species ]
let is_primary r = List.mem r primary

let is_sub = function
  | Subregnum | Subdivisio | Subclassis | Subordo | Subfamilia | Subtribus | Subgenus
  | Subsectio | Subseries | Subspecies | Subvarietas | Subforma ->
      true
  | _ -> false

let to_string = function
  | Regnum -> "Regnum"
  | Subregnum -> "Subregnum"
  | Divisio -> "Divisio"
  | Subdivisio -> "Subdivisio"
  | Classis -> "Classis"
  | Subclassis -> "Subclassis"
  | Ordo -> "Ordo"
  | Subordo -> "Subordo"
  | Familia -> "Familia"
  | Subfamilia -> "Subfamilia"
  | Tribus -> "Tribus"
  | Subtribus -> "Subtribus"
  | Genus -> "Genus"
  | Subgenus -> "Subgenus"
  | Sectio -> "Sectio"
  | Subsectio -> "Subsectio"
  | Series -> "Series"
  | Subseries -> "Subseries"
  | Species -> "Species"
  | Subspecies -> "Subspecies"
  | Varietas -> "Varietas"
  | Subvarietas -> "Subvarietas"
  | Forma -> "Forma"
  | Subforma -> "Subforma"

let of_string s =
  List.find_opt (fun r -> String.lowercase_ascii (to_string r) = String.lowercase_ascii s) all

let of_string_exn s =
  match of_string s with Some r -> r | None -> invalid_arg (Printf.sprintf "unknown rank %S" s)

(** [strictly_above a b]: may a taxon at rank [a] directly or
    indirectly contain a taxon at rank [b]? *)
let strictly_above a b = order a < order b

(** Binomial (multinomial) names start at Species (thesis 2.1.2):
    names at Species rank and below are combinations that require a
    genus-level placement. *)
let is_multinomial r = order r >= order Species

(** Names between Series and Species (Species excluded) start with a
    capital letter; at and below Species they start lowercase (thesis
    2.1.2).  Above Series all names are capitalised as well. *)
let requires_capital r = order r < order Species

(** Mandatory suffix of names published at this rank, if any. *)
let required_suffix = function
  | Familia -> Some "aceae"
  | Subfamilia -> Some "oideae"
  | Tribus -> Some "eae"
  | Subtribus -> Some "inea"
  | _ -> None

(** The 8 conserved family names exempt from the -aceae rule. *)
let family_exceptions =
  [ "Palmae"; "Gramineae"; "Cruciferae"; "Leguminosae"; "Guttiferae"; "Umbelliferae"; "Labiatae"; "Compositae" ]
