(** The Prometheus taxonomic schema (thesis fig. 6, [Pullan '00]).

    Nomenclature and classification are deliberately separated:

    - the *nomenclatural side* holds [Name] (nomenclatural taxa, NTs),
      [Author], [Publication], the typification relationship [HasType]
      and the placement relationship [PlacedIn];
    - the *classification side* holds [Taxon] (circumscription taxa,
      CTs) and the [Circumscribes] aggregation, whose instances are
      tagged with a classification context — one context per published
      or working classification, which is how multiple overlapping
      classifications coexist;
    - the two sides meet at [Specimen]s (type specimens) and ranks.

    [Circumscribes] is exclusive *per context*: within one
    classification an item belongs to one group, while across
    classifications the same specimen may be classified many ways. *)

open Pmodel

let specimen = "Specimen"
let author = "Author"
let publication = "Publication"
let name = "Name"
let working_name = "WorkingName"
let taxon = "Taxon"
let circumscribes = "Circumscribes"
let has_type = "HasType"
let placed_in = "PlacedIn"
let published_in = "PublishedIn"
let authored_by = "AuthoredBy"
let ascribed_name = "AscribedName"
let calculated_name = "CalculatedName"
let has_working_name = "HasWorkingName"

let type_kinds = [ "holotype"; "lectotype"; "neotype"; "isotype"; "syntype" ]

(** Kinds of taxonomic type that can name a group (an isotype or
    syntype cannot, thesis 2.1.2). *)
let naming_type_kinds = [ "holotype"; "lectotype"; "neotype" ]

(** Install the taxonomic schema into a database (idempotent). *)
let install (db : Database.t) : unit =
  let schema = Database.schema db in
  if not (Meta.is_class schema taxon) then begin
    ignore
      (Database.define_class db specimen
         [
           Meta.attr "collector" Value.TString;
           Meta.attr "number" Value.TInt;
           Meta.attr "herbarium" Value.TString;
           Meta.attr "collected" Value.TDate;
         ]);
    ignore
      (Database.define_class db author
         [ Meta.attr "name" Value.TString; Meta.attr "abbreviation" Value.TString ]);
    ignore
      (Database.define_class db publication
         [ Meta.attr "title" Value.TString; Meta.attr "year" Value.TInt ]);
    ignore
      (Database.define_class db name
         [
           Meta.attr "epithet" Value.TString ~required:true;
           Meta.attr "rank" Value.TString ~required:true;
           Meta.attr "year" Value.TInt;
           Meta.attr "status" Value.TString ~default:(Value.VString "valid");
         ]);
    ignore (Database.define_class db working_name [ Meta.attr "text" Value.TString ]);
    ignore
      (Database.define_class db taxon
         [ Meta.attr "rank" Value.TString ~required:true; Meta.attr "notes" Value.TString ]);
    (* classification side *)
    ignore
      (Database.define_rel db circumscribes ~origin:taxon ~destination:Meta.object_class
         ~kind:Meta.Aggregation ~exclusive:true
         ~attrs:[ Meta.attr "reason" Value.TString ] (* traceability (req. 4) *));
    (* nomenclatural side *)
    ignore
      (Database.define_rel db has_type ~origin:name ~destination:Meta.object_class
         ~attrs:[ Meta.attr "kind" Value.TString ~required:true ]
         ~inherited_attrs:[ "kind" ] (* role acquisition: type specimens *));
    ignore (Database.define_rel db placed_in ~origin:name ~destination:name);
    ignore (Database.define_rel db published_in ~origin:name ~destination:publication);
    ignore
      (Database.define_rel db authored_by ~origin:name ~destination:author
         ~attrs:[ Meta.attr "in_brackets" Value.TBool ~default:(Value.VBool false) ]);
    (* bridges between the two sides *)
    ignore (Database.define_rel db ascribed_name ~origin:taxon ~destination:name);
    ignore (Database.define_rel db calculated_name ~origin:taxon ~destination:name);
    ignore
      (Database.define_rel db has_working_name ~origin:taxon ~destination:working_name
         ~kind:Meta.Aggregation ~lifetime_dep:true ~sharable:false)
  end

let rank_of db oid : Rank.t option =
  match Database.get_attr db oid "rank" with
  | Value.VString s -> Rank.of_string s
  | _ -> None

let rank_of_exn db oid =
  match rank_of db oid with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "object #%d has no valid rank" oid)

let is_specimen db oid = Database.class_of db oid = Some specimen
let is_taxon db oid = Database.class_of db oid = Some taxon
let is_name db oid = Database.class_of db oid = Some name
