(** Historical classifications (thesis 2.3, 7.1.2).

    For old published classifications, specimen information is often
    unavailable; the taxonomic database must still represent them.  A
    historical classification is taxa-only: circumscription taxa carry
    *ascribed* names (the names as published) and are nested following
    the published arrangement; no specimens, hence no automatic name
    derivation — but rank rules still apply and the classification can
    be compared name-wise with others.

    This module reconstructs such a classification from the
    nomenclatural placement hierarchy: given a set of names, each name
    becomes a taxon (ascribed), and a name placed in another yields a
    circumscription link in the new context. *)

open Pmodel
module S = Tax_schema

type t = {
  ctx : int;
  taxa : (int * int) list; (* name oid, taxon oid *)
  roots : int list;
}

(** Build a historical classification context from [names], following
    their [PlacedIn] hierarchy.  Names whose placement target is not in
    [names] become roots. *)
let from_placements db ~(names : int list) ?(classification_name = "historical") () : t =
  let ctx = Classify.create_classification db classification_name in
  let in_set = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace in_set n ()) names;
  (* one taxon per name, at the name's rank *)
  let taxa =
    List.map
      (fun n ->
        let rank = Nomen.rank db n in
        let t = Classify.create_taxon db ~rank ~notes:"historical" () in
        ignore (Classify.ascribe_name db ~taxon:t ~name:n);
        (n, t))
      names
  in
  let taxon_of n = List.assoc n taxa in
  let roots = ref [] in
  List.iter
    (fun (n, t) ->
      match Nomen.placement db n with
      | Some parent when Hashtbl.mem in_set parent ->
          ignore
            (Classify.circumscribe db ~ctx ~group:(taxon_of parent) ~item:t
               ~reason:"published placement" ())
      | _ -> roots := t :: !roots)
    taxa;
  { ctx; taxa; roots = List.rev !roots }

(** Can this classification support automatic name derivation?  Only
    if type specimens are recorded below it (thesis 2.3: without type
    information the system can only check structural rules). *)
let supports_derivation db (t : t) : bool =
  List.exists
    (fun (_, taxon) ->
      not (Database.OidSet.is_empty (Classify.specimens_of db ~ctx:t.ctx taxon)))
    t.taxa

(** Name-based comparison against another classification (the only
    comparison available without specimens). *)
let compare_by_name db (t : t) ~other_ctx : (int * int) list =
  Synonymy.find_by_name db ~ctx_a:t.ctx ~ctx_b:other_ctx
