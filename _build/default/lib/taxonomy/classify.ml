(** The classification side: circumscription taxa and classifications.

    A classification is a Prometheus context; its structure is the set
    of [Circumscribes] relationship instances tagged with that context.
    Because [Circumscribes] is exclusive per context, each item (a
    specimen or a lower taxon) belongs to exactly one group within one
    classification, while remaining free to be classified differently
    in other classifications — multiple overlapping classifications
    (thesis 2.1.3, 4.6). *)

open Pmodel
module S = Tax_schema
module OidSet = Database.OidSet

let vstr s = Value.VString s

(** Start a new classification (a context).  [description] typically
    records author and publication of the classification. *)
let create_classification db ?(description = "") name : int =
  Database.create_context db ~description name

(** Create a circumscription taxon at [rank]. *)
let create_taxon db ~(rank : Rank.t) ?(notes = "") () : int =
  Database.create db S.taxon [ ("rank", vstr (Rank.to_string rank)); ("notes", vstr notes) ]

(** Place [item] (a specimen or a taxon) into [group] within
    classification [ctx].  [reason] records the motivation —
    traceability, thesis req. 4. *)
let circumscribe db ~ctx ~group ~item ?(reason = "") () : int =
  Database.link db S.circumscribes ~context:ctx ~origin:group ~destination:item
    ~attrs:[ ("reason", vstr reason) ]

(** Items directly circumscribed by [group] in [ctx]. *)
let members db ~ctx group : int list =
  List.map Obj.destination (Database.outgoing db ~context:ctx ~rel_name:S.circumscribes group)

(** The group containing [item] in [ctx], if any. *)
let group_of db ~ctx item : int option =
  match Database.incoming db ~context:ctx ~rel_name:S.circumscribes item with
  | r :: _ -> Some (Obj.origin r)
  | [] -> None

(** All specimens circumscribed (at any depth) under [group] in [ctx]
    — the recursive collection at the heart of naming and comparison
    (thesis req. 9). *)
let specimens_of db ~ctx group : OidSet.t =
  OidSet.filter
    (fun o -> S.is_specimen db o)
    (Pgraph.Traverse.closure db ~context:ctx ~rel:S.circumscribes group)

(** Direct sub-taxa of [group] in [ctx]. *)
let subtaxa db ~ctx group : int list = List.filter (S.is_taxon db) (members db ~ctx group)

(** All taxa participating in classification [ctx]. *)
let taxa_of_classification db ctx : OidSet.t =
  OidSet.filter (S.is_taxon db)
    (Pgraph.Traverse.nodes_of_context db ~rel:S.circumscribes ctx)

(** Top-level taxa of a classification. *)
let roots db ctx : int list =
  Pgraph.Traverse.roots db ~context:ctx ~rel:S.circumscribes (taxa_of_classification db ctx)

(** Attach an ascribed (published, historical) name to a taxon. *)
let ascribe_name db ~taxon ~name : int =
  Database.link db S.ascribed_name ~origin:taxon ~destination:name

(** The calculated (derived) name of a taxon, if derivation ran. *)
let calculated_name db taxon : int option =
  match Database.outgoing db ~rel_name:S.calculated_name taxon with
  | r :: _ -> Some (Obj.destination r)
  | [] -> None

let ascribed_name_of db taxon : int option =
  match Database.outgoing db ~rel_name:S.ascribed_name taxon with
  | r :: _ -> Some (Obj.destination r)
  | [] -> None

(** Give a taxon a provisional working name, used during a revision
    before names are derived (thesis 2.3). *)
let set_working_name db ~taxon text : unit =
  (* replace any existing working name (lifetime-dependent aggregation) *)
  List.iter
    (fun (r : Obj.t) -> Database.delete db (Obj.destination r))
    (Database.outgoing db ~rel_name:S.has_working_name taxon);
  let wn = Database.create db S.working_name [ ("text", vstr text) ] in
  ignore (Database.link db S.has_working_name ~origin:taxon ~destination:wn)

let working_name db taxon : string option =
  match Database.outgoing db ~rel_name:S.has_working_name taxon with
  | r :: _ -> (
      match Database.get_attr db (Obj.destination r) "text" with
      | Value.VString s -> Some s
      | _ -> None)
  | [] -> None

(** Copy a whole classification into a fresh context — the starting
    point of a revision (thesis 2.1.1, 7.1.4).  Returns the new
    context. *)
let start_revision db ~from_ctx name : int =
  let ctx = create_classification db name in
  let g = Pgraph.Subgraph.of_context db ~rel:S.circumscribes from_ctx in
  ignore (Pgraph.Subgraph.copy_into db g ~into:ctx);
  ctx

(** Move [item] to a different [group] within [ctx] (reclassification
    during a revision). *)
let move db ~ctx ~item ~group ?(reason = "") () : unit =
  (match Database.incoming db ~context:ctx ~rel_name:S.circumscribes item with
  | r :: _ -> Database.unlink db r.Obj.oid
  | [] -> ());
  ignore (circumscribe db ~ctx ~group ~item ~reason ())
