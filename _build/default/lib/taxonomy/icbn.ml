(** ICBN rules as Prometheus rules (thesis 7.1.3.2, figs. 35–40).

    Object rules constrain names; relationship rules constrain
    typification, placement and classification structure.  All are
    expressed over the generic rules layer, demonstrating that the
    code of nomenclature is representable in the database rather than
    in application code. *)

open Pmodel
module S = Tax_schema
module R = Prules.Rule

let get_str db oid attr =
  match Database.get_attr db oid attr with Value.VString s -> Some s | _ -> None

let rank_of db oid = Option.bind (get_str db oid "rank") Rank.of_string

(* --- object rules (figs. 35–37) ------------------------------------------ *)

(** Family (and subfamily/tribe/subtribe) names must bear the rank's
    mandatory suffix, save the eight conserved exceptions. *)
let name_suffix_rule =
  R.invariant "icbn_name_suffix" ~class_name:S.name
    ~message:"names above genus must carry their rank's mandatory suffix (ICBN)"
    (fun db (o : Obj.t) ->
      match rank_of db o.Obj.oid with
      | Some r -> (
          match Rank.required_suffix r with
          | Some suffix -> (
              match get_str db o.Obj.oid "epithet" with
              | Some e ->
                  List.mem e Rank.family_exceptions
                  || (String.length e >= String.length suffix
                     && String.sub e (String.length e - String.length suffix)
                          (String.length suffix)
                        = suffix)
              | None -> true)
          | None -> true)
      | None -> true)

(** Names above Species are capitalised; Species epithets and below
    start lowercase (fig. 36: genus name rule). *)
let name_capitalisation_rule =
  R.invariant "icbn_capitalisation" ~class_name:S.name
    ~message:"capitalisation must follow the name's rank (ICBN)"
    (fun db (o : Obj.t) ->
      match (rank_of db o.Obj.oid, get_str db o.Obj.oid "epithet") with
      | Some r, Some e when String.length e > 0 ->
          let c = e.[0] in
          if Rank.requires_capital r then c = Char.uppercase_ascii c
          else c = Char.lowercase_ascii c
      | _ -> true)

(** Genus names may contain a hyphen; other ranks must be single,
    unhyphenated words (thesis 2.1.2). *)
let single_word_rule =
  R.invariant "icbn_single_word" ~class_name:S.name
    ~message:"epithets are single words (hyphen allowed at Genus rank only)"
    (fun db (o : Obj.t) ->
      match (rank_of db o.Obj.oid, get_str db o.Obj.oid "epithet") with
      | Some r, Some e ->
          (not (String.contains e ' ')) && (r = Rank.Genus || not (String.contains e '-'))
      | _ -> true)

(** Every name should be typified (fig. 37) — checked at commit, as a
    name is created before its type designation; violation is a
    warning because historical names may lack types until
    lectotypification. *)
let type_existence_rule =
  R.invariant "icbn_type_existence" ~class_name:S.name ~timing:R.Deferred ~on_violation:R.Warn
    ~message:"a name should have a taxonomic type (lectotypify historical names)"
    (fun db (o : Obj.t) -> Database.outgoing db ~rel_name:S.has_type o.Obj.oid <> [])

(* --- relationship rules (figs. 38–40) ------------------------------------- *)

(** A name has at most one holotype, one lectotype and one neotype; any
    number of isotypes/syntypes (thesis 2.1.2). *)
let unique_primary_type_rule =
  R.relationship_rule "icbn_unique_primary_type" ~rel_name:S.has_type
    ~message:"a name can have only one holotype, lectotype or neotype"
    (fun db (r : Obj.t) ->
      match Obj.get r "kind" with
      | Value.VString kind when List.mem kind S.naming_type_kinds ->
          let same_kind =
            List.filter
              (fun (other : Obj.t) ->
                other.Obj.oid <> r.Obj.oid && Obj.get other "kind" = Value.VString kind)
              (Database.outgoing db ~rel_name:S.has_type (Obj.origin r))
          in
          same_kind = []
      | _ -> true)

(** Placement: a name is placed in a name of strictly higher rank
    (fig. 40: a Species epithet is placed in a Genus). *)
let placement_rank_rule =
  R.relationship_rule "icbn_placement_ranks" ~rel_name:S.placed_in
    ~message:"a name must be placed in a name of strictly higher rank"
    (fun db (r : Obj.t) ->
      match (rank_of db (Obj.origin r), rank_of db (Obj.destination r)) with
      | Some ro, Some rd -> Rank.strictly_above rd ro
      | _ -> false)

(** Classification structure: a taxon is circumscribed only by a taxon
    of strictly higher rank (figs. 38–39: Species below Genus, Series
    below Sectio, ...).  Specimens may be circumscribed by any rank. *)
let circumscription_rank_rule =
  R.relationship_rule "icbn_circumscription_ranks" ~rel_name:S.circumscribes
    ~message:"groups must be nested in strictly descending rank order (ICBN)"
    (fun db (r : Obj.t) ->
      let dst = Obj.destination r in
      if not (S.is_taxon db dst) then true
      else
        match (rank_of db (Obj.origin r), rank_of db dst) with
        | Some ro, Some rd -> Rank.strictly_above ro rd
        | _ -> false)

(** Multinomial names (Species and below) must carry a placement so
    the combination can be rendered — deferred so that a name can be
    created and placed within one transaction. *)
let multinomial_placement_rule =
  R.invariant "icbn_multinomial_placement" ~class_name:S.name ~timing:R.Deferred
    ~on_violation:R.Warn
    ~message:"multinomial names should be placed in a genus-level name"
    (fun db (o : Obj.t) ->
      match rank_of db o.Obj.oid with
      | Some r when Rank.is_multinomial r ->
          Database.outgoing db ~rel_name:S.placed_in o.Obj.oid <> []
      | _ -> true)

(** Tautonyms are inadmissible in botany (unlike zoology): a species
    epithet must differ from the genus name it is combined with —
    "Linaria linaria" is invalid. *)
let tautonym_rule =
  R.relationship_rule "icbn_no_tautonym" ~rel_name:S.placed_in
    ~message:"tautonyms (epithet repeating the genus name) are invalid in botany (ICBN)"
    (fun db (r : Obj.t) ->
      match (get_str db (Obj.origin r) "epithet", get_str db (Obj.destination r) "epithet") with
      | Some e, Some g ->
          String.lowercase_ascii e <> String.lowercase_ascii g
          || rank_of db (Obj.origin r) <> Some Rank.Species
      | _ -> true)

(** A combination cannot have been published before the name it is
    placed in (warn: historical data can carry transcription errors,
    and taxonomists must be able to record them). *)
let combination_year_rule =
  R.relationship_rule "icbn_combination_year" ~rel_name:S.placed_in ~on_violation:R.Warn
    ~message:"a combination should not predate the name it is placed in"
    (fun db (r : Obj.t) ->
      match
        ( Database.get_attr db (Obj.origin r) "year",
          Database.get_attr db (Obj.destination r) "year" )
      with
      | Value.VInt child, Value.VInt parent -> child >= parent
      | _ -> true)

(** The full ICBN rule set. *)
let rules =
  [
    name_suffix_rule;
    name_capitalisation_rule;
    single_word_rule;
    type_existence_rule;
    unique_primary_type_rule;
    placement_rank_rule;
    circumscription_rank_rule;
    multinomial_placement_rule;
    tautonym_rule;
    combination_year_rule;
  ]

(** Install the ICBN rules into an engine. *)
let install engine = Prules.Engine.add_rules engine rules
