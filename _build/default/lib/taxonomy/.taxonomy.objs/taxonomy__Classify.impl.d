lib/taxonomy/classify.ml: Database List Obj Pgraph Pmodel Rank Tax_schema Value
