lib/taxonomy/nomen.ml: Database List Obj Option Pmodel Printf Rank String Tax_schema Value
