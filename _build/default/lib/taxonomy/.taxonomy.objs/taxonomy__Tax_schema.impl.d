lib/taxonomy/tax_schema.ml: Database Meta Pmodel Printf Rank Value
