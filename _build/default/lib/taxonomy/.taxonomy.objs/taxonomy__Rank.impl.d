lib/taxonomy/rank.ml: List Printf String
