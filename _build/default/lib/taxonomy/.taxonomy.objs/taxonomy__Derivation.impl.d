lib/taxonomy/derivation.ml: Classify Database Hashtbl List Nomen Obj Pmodel Printf Queue Rank String Tax_schema Value
