lib/taxonomy/synonymy.ml: Classify Database Derivation Format List Nomen Option Pmodel Rank Tax_schema
