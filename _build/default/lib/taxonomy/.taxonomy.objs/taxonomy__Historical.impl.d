lib/taxonomy/historical.ml: Classify Database Hashtbl List Nomen Pmodel Synonymy Tax_schema
