lib/taxonomy/flora_gen.ml: Array Classify List Nomen Pmodel Random Rank String Tax_schema Value
