lib/taxonomy/icbn.ml: Char Database List Obj Option Pmodel Prules Rank String Tax_schema Value
