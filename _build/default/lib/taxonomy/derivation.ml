(** Automatic derivation of names from classifications (thesis 2.1.2,
    fig. 3).

    The ICBN process, faithfully:

    - Work top-down from the root of the classification.
    - For each group, collect *all* specimens described at any level
      below it (recursing through the classification until specimens
      are reached — the depth may vary between branches).
    - Among them, keep the *naming* type specimens (holotype,
      lectotype or neotype targets of [HasType]).
    - From each type specimen, traverse the nomenclatural type
      hierarchy bottom-up (specimen -> species name -> genus name ...)
      collecting candidate names published at the group's rank.
    - The oldest validly published candidate becomes the group's name.
    - Multinomial names (Species and below) must additionally be a
      published *combination* with the derived parent genus name: if
      the oldest candidate is placed in a different genus, a new
      combination is published (epithet kept, basionym author
      bracketed) — e.g. Apium repens (Jacq.)Lag. under Heliosciadium
      becomes the new Heliosciadium repens (Jacq.).
    - A group with no type specimen elects one (the oldest available
      specimen) and publishes a fresh name, seeded from the group's
      working name if present. *)

open Pmodel
module S = Tax_schema
module OidSet = Database.OidSet

type outcome =
  | Existing of int (* an already-published name was selected *)
  | New_combination of { name : int; basionym : int } (* epithet moved to a new genus *)
  | New_name of { name : int; elected_type : int } (* no type found: elected + published *)

let name_of_outcome = function
  | Existing n -> n
  | New_combination { name; _ } -> name
  | New_name { name; _ } -> name

type assignment = { taxon : int; rank : Rank.t; outcome : outcome }

(** Candidate names at [rank] reachable upward through the type
    hierarchy from [spec] (a type specimen). *)
let candidates_at_rank db ~rank spec : int list =
  let target_order = Rank.order rank in
  let seen = Hashtbl.create 16 in
  let result = ref [] in
  let rec walk frontier =
    match frontier with
    | [] -> ()
    | _ ->
        let names =
          List.concat_map (fun target -> Nomen.typified_by db target) frontier
          |> List.filter (fun n -> not (Hashtbl.mem seen n))
        in
        List.iter (fun n -> Hashtbl.replace seen n ()) names;
        List.iter
          (fun n ->
            let r = Nomen.rank db n in
            if Rank.order r = target_order then result := n :: !result)
          names;
        (* keep climbing only through names above or at the target rank *)
        let next = List.filter (fun n -> Rank.order (Nomen.rank db n) >= target_order) names in
        walk next
  in
  walk [ spec ];
  List.sort_uniq compare !result

(** Naming type specimens among a specimen set: targets of a
    holotype/lectotype/neotype designation. *)
let naming_types db (specs : OidSet.t) : int list =
  OidSet.fold
    (fun s acc ->
      let kinds =
        List.concat_map
          (fun (r : Obj.t) ->
            match Obj.get r "kind" with Value.VString k -> [ k ] | _ -> [])
          (Database.incoming db ~rel_name:S.has_type s)
      in
      if List.exists (fun k -> List.mem k S.naming_type_kinds) kinds then s :: acc else acc)
    specs []

(** The name a multinomial combination is placed in: the derived name
    of the nearest ancestor at the combination's anchor rank — Genus
    for Species-rank names, Species for infraspecific names (thesis
    2.1.2: trinomials such as varieties combine with their species). *)
let combination_anchor_rank (rank : Rank.t) : Rank.t =
  if Rank.order rank > Rank.order Rank.Species then Rank.Species else Rank.Genus

let combination_parent db ~ctx assignments taxon ~(rank : Rank.t) : int option =
  let anchor = combination_anchor_rank rank in
  let rec up t =
    match Classify.group_of db ~ctx t with
    | None -> None
    | Some parent -> (
        match Hashtbl.find_opt assignments parent with
        | Some name when Nomen.rank db name = anchor -> Some name
        | _ -> up parent)
  in
  up taxon

(** Shape a fallback epithet so it satisfies the ICBN conventions of
    its rank: single unhyphenated word, rank-appropriate
    capitalisation, mandatory suffix for supra-generic ranks. *)
let well_formed_epithet ~rank (base : string) : string =
  let base =
    String.concat "" (String.split_on_char ' ' base)
    |> String.split_on_char '-' |> String.concat ""
  in
  let base = if base = "" then "innominatum" else base in
  let base =
    if Rank.requires_capital rank then String.capitalize_ascii base
    else String.uncapitalize_ascii base
  in
  match Rank.required_suffix rank with
  | Some suffix
    when not
           (String.length base >= String.length suffix
           && String.sub base (String.length base - String.length suffix) (String.length suffix)
              = suffix) ->
      base ^ suffix
  | _ -> base

let elect_type_specimen db (specs : OidSet.t) : int option =
  (* the oldest collected specimen; ties (and missing dates) break by oid *)
  let key s =
    match Database.get_attr db s "collected" with
    | Value.VDate d -> (d.Value.year, d.Value.month, d.Value.day, s)
    | _ -> (max_int, 0, 0, s)
  in
  match List.sort (fun a b -> compare (key a) (key b)) (OidSet.elements specs) with
  | [] -> None
  | s :: _ -> Some s

(** Derive names for every taxon of classification [ctx] reachable
    from [root], in rank order (top-down).  Returns the assignments
    and records them as [CalculatedName] links.  [year] stamps newly
    published names; [author] (an Author oid) signs them. *)
let derive db ~ctx ~root ?(year = 2000) ?author () : assignment list =
  let order =
    (* top-down: BFS over the classification *)
    let q = Queue.create () in
    let seen = Hashtbl.create 64 in
    let acc = ref [] in
    Queue.add root q;
    Hashtbl.replace seen root ();
    while not (Queue.is_empty q) do
      let t = Queue.pop q in
      if S.is_taxon db t then acc := t :: !acc;
      List.iter
        (fun c ->
          if not (Hashtbl.mem seen c) then begin
            Hashtbl.replace seen c ();
            Queue.add c q
          end)
        (Classify.members db ~ctx t)
    done;
    List.rev !acc
  in
  let assignments : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let results = ref [] in
  List.iter
    (fun t ->
      let rank = S.rank_of_exn db t in
      let specs = Classify.specimens_of db ~ctx t in
      let types = naming_types db specs in
      let candidates = List.concat_map (candidates_at_rank db ~rank) types in
      let outcome =
        match Nomen.oldest db candidates with
        | Some best when Rank.is_multinomial rank -> (
            (* combination check against the derived anchor name *)
            match combination_parent db ~ctx assignments t ~rank with
            | Some genus_name -> (
                match Nomen.placement db best with
                | Some g when g = genus_name -> Existing best
                | _ ->
                    (* the combination <genus, epithet> has never been
                       published: publish it now *)
                    let basionym_author =
                      match Nomen.authors db best with (a, _) :: _ -> Some a | [] -> None
                    in
                    let fresh =
                      Nomen.create_name db ~epithet:(Nomen.epithet db best) ~rank ~year
                        ?author ?basionym_author ~placed_in:genus_name ()
                    in
                    (* the new name inherits the basionym's type *)
                    (match Nomen.types db best with
                    | (target, _) :: _ ->
                        ignore (Nomen.set_type db ~name:fresh ~target ~kind:"lectotype")
                    | [] -> ());
                    New_combination { name = fresh; basionym = best })
            | None -> Existing best)
        | Some best -> Existing best
        | None -> (
            (* no usable type: elect one and publish a new name *)
            match elect_type_specimen db specs with
            | Some s ->
                let epithet =
                  well_formed_epithet ~rank
                    (match Classify.working_name db t with
                    | Some w -> w
                    | None -> Printf.sprintf "taxon%d" t)
                in
                let placed_in =
                  if Rank.is_multinomial rank then
                    combination_parent db ~ctx assignments t ~rank
                  else None
                in
                let fresh = Nomen.create_name db ~epithet ~rank ~year ?author ?placed_in () in
                ignore (Nomen.set_type db ~name:fresh ~target:s ~kind:"holotype");
                New_name { name = fresh; elected_type = s }
            | None ->
                (* a taxon with no specimens below it at all: publish a
                   bare name (historical, taxa-only classifications) *)
                let epithet =
                  well_formed_epithet ~rank
                    (match Classify.working_name db t with
                    | Some w -> w
                    | None -> Printf.sprintf "taxon%d" t)
                in
                let fresh = Nomen.create_name db ~epithet ~rank ~year ?author () in
                New_name { name = fresh; elected_type = 0 })
      in
      let name = name_of_outcome outcome in
      Hashtbl.replace assignments t name;
      (* record the calculated name, replacing an earlier derivation *)
      List.iter
        (fun (r : Obj.t) -> Database.unlink db r.Obj.oid)
        (Database.outgoing db ~rel_name:S.calculated_name t);
      ignore (Database.link db S.calculated_name ~origin:t ~destination:name);
      results := { taxon = t; rank; outcome } :: !results)
    order;
  List.rev !results
