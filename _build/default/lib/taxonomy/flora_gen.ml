(** Synthetic flora generator.

    Substitutes for the Royal Botanic Garden herbarium datasets used in
    the thesis's taxonomic evaluation: a parameterised, deterministic
    generator producing a realistic structure — families containing
    genera containing species, each species circumscribing several
    specimens, names typified by specimens, and optionally a second
    overlapping classification obtained by perturbing the first (as a
    later revision would). *)

open Pmodel
module S = Tax_schema

type params = {
  families : int;
  genera_per_family : int;
  species_per_genus : int;
  specimens_per_species : int;
  seed : int;
}

let default = { families = 2; genera_per_family = 3; species_per_genus = 5; specimens_per_species = 3; seed = 42 }

type flora = {
  ctx : int;
  root_taxa : int list; (* family-level taxa *)
  species_taxa : int list;
  genus_taxa : int list;
  specimens : int list;
  species_names : int list;
  author : int;
}

let syllables = [| "al"; "be"; "cor"; "dan"; "el"; "fo"; "gra"; "hel"; "ia"; "ka"; "lu"; "mor"; "nit"; "os"; "pra"; "qua"; "ros"; "sti"; "tu"; "ve" |]

let word rng n_syll =
  String.concat "" (List.init n_syll (fun _ -> syllables.(Random.State.int rng (Array.length syllables))))

let capitalize s = String.capitalize_ascii s

(** Generate a flora and one classification of it. *)
let generate db ?(params = default) ?(name = "generated-classification") () : flora =
  let rng = Random.State.make [| params.seed |] in
  let author = Nomen.create_author db ~name:"Generated Author" ~abbreviation:"Gen." in
  let ctx = Classify.create_classification db name in
  let specimens = ref [] in
  let species_taxa = ref [] in
  let genus_taxa = ref [] in
  let species_names = ref [] in
  let root_taxa = ref [] in
  for _f = 1 to params.families do
    let fam_epithet = capitalize (word rng 2) ^ "aceae" in
    let fam_name = Nomen.create_name db ~epithet:fam_epithet ~rank:Rank.Familia ~year:(1750 + Random.State.int rng 100) ~author () in
    let fam_taxon = Classify.create_taxon db ~rank:Rank.Familia () in
    ignore (Classify.ascribe_name db ~taxon:fam_taxon ~name:fam_name);
    root_taxa := fam_taxon :: !root_taxa;
    for _g = 1 to params.genera_per_family do
      let gen_epithet = capitalize (word rng 2) in
      let gen_year = 1753 + Random.State.int rng 150 in
      let gen_name = Nomen.create_name db ~epithet:gen_epithet ~rank:Rank.Genus ~year:gen_year ~author () in
      let gen_taxon = Classify.create_taxon db ~rank:Rank.Genus () in
      ignore (Classify.ascribe_name db ~taxon:gen_taxon ~name:gen_name);
      ignore (Classify.circumscribe db ~ctx ~group:fam_taxon ~item:gen_taxon ());
      genus_taxa := gen_taxon :: !genus_taxa;
      let first_species_name = ref None in
      for _s = 1 to params.species_per_genus do
        let sp_epithet = word rng 3 in
        let sp_year = gen_year + Random.State.int rng 50 in
        let sp_name =
          Nomen.create_name db ~epithet:sp_epithet ~rank:Rank.Species ~year:sp_year ~author
            ~placed_in:gen_name ()
        in
        species_names := sp_name :: !species_names;
        if !first_species_name = None then first_species_name := Some sp_name;
        let sp_taxon = Classify.create_taxon db ~rank:Rank.Species () in
        ignore (Classify.ascribe_name db ~taxon:sp_taxon ~name:sp_name);
        ignore (Classify.circumscribe db ~ctx ~group:gen_taxon ~item:sp_taxon ());
        species_taxa := sp_taxon :: !species_taxa;
        for k = 1 to params.specimens_per_species do
          let sp =
            Nomen.create_specimen db ~collector:(capitalize (word rng 2)) ~number:(Random.State.int rng 100000)
              ~herbarium:"E"
              ~collected:(Value.date ~month:(1 + Random.State.int rng 12) ~day:(1 + Random.State.int rng 28)
                            (1800 + Random.State.int rng 200))
              ()
          in
          specimens := sp :: !specimens;
          ignore (Classify.circumscribe db ~ctx ~group:sp_taxon ~item:sp ());
          (* the first specimen of each species is its holotype *)
          if k = 1 then ignore (Nomen.set_type db ~name:sp_name ~target:sp ~kind:"holotype")
        done
      done;
      (* the genus is typified by its first species name *)
      (match !first_species_name with
      | Some sn -> ignore (Nomen.set_type db ~name:gen_name ~target:sn ~kind:"holotype")
      | None -> ());
      (* and the family by its first genus name *)
      if Nomen.types db fam_name = [] then
        ignore (Nomen.set_type db ~name:fam_name ~target:gen_name ~kind:"holotype")
    done
  done;
  {
    ctx;
    root_taxa = List.rev !root_taxa;
    species_taxa = List.rev !species_taxa;
    genus_taxa = List.rev !genus_taxa;
    specimens = List.rev !specimens;
    species_names = List.rev !species_names;
    author;
  }

(** Produce a second, overlapping classification by copying the first
    and moving a fraction of the species to sibling genera — the
    "later revision" scenario. *)
let perturb db (f : flora) ?(fraction = 0.3) ?(name = "revision") () : int =
  let rng = Random.State.make [| f.ctx; 7 |] in
  let ctx2 = Classify.start_revision db ~from_ctx:f.ctx name in
  let genera = Array.of_list f.genus_taxa in
  List.iter
    (fun sp_taxon ->
      if Random.State.float rng 1.0 < fraction && Array.length genera > 1 then begin
        let target = genera.(Random.State.int rng (Array.length genera)) in
        match Classify.group_of db ~ctx:ctx2 sp_taxon with
        | Some g when g <> target ->
            Classify.move db ~ctx:ctx2 ~item:sp_taxon ~group:target
              ~reason:"revision: moved on morphological grounds" ()
        | _ -> ()
      end)
    f.species_taxa;
  ctx2
