(** Synonym detection across classifications (thesis 2.1.3, 2.3).

    Unlike name-based models, Prometheus *infers* synonymy from
    circumscriptions: two taxa are synonyms when their specimen sets
    overlap.  The overlap can be complete (full synonyms) or partial
    (pro parte); synonyms sharing a naming type specimen are
    homotypic, otherwise heterotypic. *)

open Pmodel
module S = Tax_schema
module OidSet = Database.OidSet

type extent_kind = Full | Pro_parte
type type_kind = Homotypic | Heterotypic

type synonym = {
  taxon_a : int;
  taxon_b : int;
  extent : extent_kind;
  typ : type_kind;
  shared_specimens : int;
}

let pp_synonym ppf s =
  Format.fprintf ppf "#%d ~ #%d (%s, %s, %d shared)" s.taxon_a s.taxon_b
    (match s.extent with Full -> "full" | Pro_parte -> "pro parte")
    (match s.typ with Homotypic -> "homotypic" | Heterotypic -> "heterotypic")
    s.shared_specimens

(** Naming type specimens within a specimen set. *)
let types_in db (specs : OidSet.t) : OidSet.t =
  OidSet.of_list (Derivation.naming_types db specs)

let classify_pair db ~ctx_a ~ctx_b a b : synonym option =
  let sa = Classify.specimens_of db ~ctx:ctx_a a in
  let sb = Classify.specimens_of db ~ctx:ctx_b b in
  let inter = OidSet.inter sa sb in
  if OidSet.is_empty inter then None
  else
    let extent = if OidSet.equal sa sb then Full else Pro_parte in
    let ta = types_in db sa and tb = types_in db sb in
    let typ = if OidSet.is_empty (OidSet.inter ta tb) then Heterotypic else Homotypic in
    Some { taxon_a = a; taxon_b = b; extent; typ; shared_specimens = OidSet.cardinal inter }

(** All synonym pairs between two classifications: for each pair of
    taxa with overlapping circumscriptions, the synonymy verdict. *)
let find db ~ctx_a ~ctx_b : synonym list =
  let ta = OidSet.elements (Classify.taxa_of_classification db ctx_a) in
  let tb = OidSet.elements (Classify.taxa_of_classification db ctx_b) in
  List.concat_map
    (fun a -> List.filter_map (fun b -> classify_pair db ~ctx_a ~ctx_b a b) tb)
    ta

(** Name-based synonym detection, the (weaker) approach of other
    models: taxa whose attached names share epithet and rank. *)
let find_by_name db ~ctx_a ~ctx_b : (int * int) list =
  let name_key db t =
    let n =
      match Classify.calculated_name db t with
      | Some n -> Some n
      | None -> Classify.ascribed_name_of db t
    in
    Option.map (fun n -> (Nomen.epithet db n, Rank.to_string (Nomen.rank db n))) n
  in
  let ta = OidSet.elements (Classify.taxa_of_classification db ctx_a) in
  let tb = OidSet.elements (Classify.taxa_of_classification db ctx_b) in
  List.concat_map
    (fun a ->
      match name_key db a with
      | None -> []
      | Some ka ->
          List.filter_map
            (fun b -> if name_key db b = Some ka then Some (a, b) else None)
            tb)
    ta

(** A single-specimen overlap between groups in different
    classifications may indicate a misplaced specimen (thesis 2.3):
    report suspicious pro-parte synonyms. *)
let suspicious_overlaps db ~ctx_a ~ctx_b : synonym list =
  List.filter (fun s -> s.extent = Pro_parte && s.shared_specimens = 1) (find db ~ctx_a ~ctx_b)
