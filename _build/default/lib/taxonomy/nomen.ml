(** The nomenclatural side: creation and rendering of names (NTs).

    A nomenclatural taxon is only meaningful as the combination of its
    constituents — epithet, rank, author, publication, types,
    placement (thesis 2.4.1 req. 5).  This module provides builders
    for that composite and the full-name rendering rules of the ICBN:
    binomial composition through the placement hierarchy and
    bracketed basionym authors for recombinations (thesis 2.1.2). *)

open Pmodel
module S = Tax_schema

let vstr s = Value.VString s
let vint i = Value.VInt i

let create_author db ~name ~abbreviation : int =
  Database.create db S.author [ ("name", vstr name); ("abbreviation", vstr abbreviation) ]

let create_publication db ~title ~year : int =
  Database.create db S.publication [ ("title", vstr title); ("year", vint year) ]

let create_specimen db ?(collector = "") ?(number = 0) ?(herbarium = "") ?collected () : int =
  Database.create db S.specimen
    ([ ("collector", vstr collector); ("number", vint number); ("herbarium", vstr herbarium) ]
    @ match collected with Some d -> [ ("collected", Value.VDate d) ] | None -> [])

(** Publish a name.  [placed_in] is the nomenclatural placement (e.g.
    the genus name a species epithet is combined with) — a record of
    combination use, not a classification statement.  [basionym_author]
    is rendered in brackets (recombinations). *)
let create_name db ~epithet ~(rank : Rank.t) ?year ?author ?basionym_author ?publication
    ?placed_in () : int =
  let n =
    Database.create db S.name
      ([ ("epithet", vstr epithet); ("rank", vstr (Rank.to_string rank)) ]
      @ match year with Some y -> [ ("year", vint y) ] | None -> [])
  in
  (match author with
  | Some a -> ignore (Database.link db S.authored_by ~origin:n ~destination:a)
  | None -> ());
  (match basionym_author with
  | Some a ->
      ignore
        (Database.link db S.authored_by ~origin:n ~destination:a
           ~attrs:[ ("in_brackets", Value.VBool true) ])
  | None -> ());
  (match publication with
  | Some p -> ignore (Database.link db S.published_in ~origin:n ~destination:p)
  | None -> ());
  (match placed_in with
  | Some g -> ignore (Database.link db S.placed_in ~origin:n ~destination:g)
  | None -> ());
  n

(** Designate [target] (a specimen, or a lower-rank name) as a
    taxonomic type of [name]. *)
let set_type db ~name ~target ~kind : int =
  if not (List.mem kind S.type_kinds) then
    invalid_arg (Printf.sprintf "unknown type kind %S" kind);
  Database.link db S.has_type ~origin:name ~destination:target ~attrs:[ ("kind", vstr kind) ]

let epithet db n = Value.as_string (Database.get_attr db n "epithet")

let year db n =
  match Database.get_attr db n "year" with Value.VInt y -> Some y | _ -> None

let rank db n = Tax_schema.rank_of_exn db n

(** The name this name is nomenclaturally placed in, if any. *)
let placement db n : int option =
  match Database.outgoing db ~rel_name:S.placed_in n with
  | r :: _ -> Some (Obj.destination r)
  | [] -> None

(** Taxonomic types of a name: (target oid, kind) pairs. *)
let types db n : (int * string) list =
  List.map
    (fun r -> (Obj.destination r, Value.as_string (Obj.get r "kind")))
    (Database.outgoing db ~rel_name:S.has_type n)

(** Authors: (author oid, bracketed?) pairs. *)
let authors db n : (int * bool) list =
  List.map
    (fun r ->
      ( Obj.destination r,
        match Obj.get r "in_brackets" with Value.VBool b -> b | _ -> false ))
    (Database.outgoing db ~rel_name:S.authored_by n)

let author_string db n : string =
  let abbrev a =
    match Database.get_attr db a "abbreviation" with
    | Value.VString s when s <> "" -> s
    | _ -> Value.as_string (Database.get_attr db a "name")
  in
  let bracketed, plain = List.partition snd (authors db n) in
  let b = String.concat "" (List.map (fun (a, _) -> "(" ^ abbrev a ^ ")") bracketed) in
  let p = String.concat " " (List.map (fun (a, _) -> abbrev a) plain) in
  String.trim (b ^ p)

(** Full rendered name.  Multinomial names (Species and below) are
    combined with their genus-level placement: "Apium graveolens L.";
    recombinations render the basionym author in brackets:
    "Heliosciadium repens (Jacq.) Koch". *)
let full_name db n : string =
  (* walk the placement chain upwards, collecting epithets:
     "Apium graveolens var. dulce" renders genus, species, own epithet *)
  let rec chain n depth =
    if depth > 8 then [ epithet db n ]
    else
      let e = epithet db n in
      if Rank.is_multinomial (rank db n) then
        match placement db n with Some p -> chain p (depth + 1) @ [ e ] | None -> [ e ]
      else [ e ]
  in
  let infra_marker r =
    match r with
    | Rank.Subspecies -> Some "subsp."
    | Rank.Varietas | Rank.Subvarietas -> Some "var."
    | Rank.Forma | Rank.Subforma -> Some "f."
    | _ -> None
  in
  let r = rank db n in
  let parts = chain n 0 in
  let base =
    match (infra_marker r, List.rev parts) with
    | Some marker, own :: rest -> String.concat " " (List.rev rest @ [ marker; own ])
    | _ -> String.concat " " parts
  in
  let a = author_string db n in
  if a = "" then base else base ^ " " ^ a

(** All names typified (directly) by [target]. *)
let typified_by db target : int list =
  List.map Obj.origin (Database.incoming db ~rel_name:S.has_type target)
  |> List.sort_uniq compare

(** Oldest validly published name among [names] (by year, then oid for
    determinism).  Names without a year sort last. *)
let oldest db names : int option =
  let key n = (Option.value (year db n) ~default:max_int, n) in
  match List.sort (fun a b -> compare (key a) (key b)) names with
  | [] -> None
  | n :: _ -> Some n
