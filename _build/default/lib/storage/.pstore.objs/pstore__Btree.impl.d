lib/storage/btree.ml: Bytes Format Heap Int32 Int64 Option Pager
