lib/storage/heap.ml: Buffer Bytes Codec Format Hashtbl Int32 List Pager String
