lib/storage/store.ml: Btree Bytes Format Heap Int32 Int64 Pager Sys
