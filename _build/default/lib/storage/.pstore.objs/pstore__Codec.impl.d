lib/storage/codec.ml: Array Buffer Bytes Char Format Int32 Int64 Lazy String
