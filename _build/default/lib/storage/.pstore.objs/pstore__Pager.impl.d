lib/storage/pager.ml: Bytes Codec Format Hashtbl Int32 Int64 List String Sys Unix
