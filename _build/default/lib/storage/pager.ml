(** Page cache and transactional page I/O.

    The pager owns the database file and an undo journal.  All access to
    the file goes through fixed-size pages ({!page_size} bytes).  A
    transaction protocol provides atomic multi-page updates:

    - Before a page is modified for the first time inside a transaction,
      its before-image is appended to the journal file.
    - Dirty pages may be written back to the main file at any time
      (steal), but only after the journal containing their before-image
      has been fsynced.
    - [commit] flushes all dirty pages, fsyncs the main file, then
      truncates the journal (the commit point).
    - [abort] (or crash recovery on open) copies the before-images from
      the journal back into the main file.

    Page 0 is reserved for the store header and is managed like any
    other page (so header updates are also journaled and thus atomic). *)

let page_size = 4096

exception Pager_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Pager_error s)) fmt

type page = {
  no : int;
  data : Bytes.t;
  mutable dirty : bool;
  mutable lru : int; (* last-touch tick, for eviction *)
}

type t = {
  fd : Unix.file_descr;
  path : string;
  journal_path : string;
  mutable page_count : int;
  cache : (int, page) Hashtbl.t;
  mutable cache_cap : int;
  mutable tick : int;
  (* transaction state *)
  mutable in_tx : bool;
  mutable journaled : (int, unit) Hashtbl.t; (* pages whose before-image is in the journal *)
  mutable jfd : Unix.file_descr option;
  mutable journal_synced : bool;
  mutable tx_new_pages : (int, unit) Hashtbl.t; (* pages allocated in this tx *)
  (* statistics *)
  mutable reads : int;
  mutable writes : int;
  mutable hits : int;
  mutable misses : int;
}

let really_pread fd buf off file_off =
  ignore (Unix.lseek fd file_off Unix.SEEK_SET);
  let rec go pos remaining =
    if remaining > 0 then begin
      let n = Unix.read fd buf (off + pos) remaining in
      if n = 0 then Bytes.fill buf (off + pos) remaining '\000'
      else go (pos + n) (remaining - n)
    end
  in
  go 0 page_size

let really_write fd buf =
  let len = Bytes.length buf in
  let rec go pos =
    if pos < len then begin
      let n = Unix.write fd buf pos (len - pos) in
      go (pos + n)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

(* Journal frame layout: magic u32 | page_no i64 | crc32 u32 | page bytes *)
let journal_frame_magic = 0x4A524E4C (* "JRNL" *)
let journal_frame_size = 4 + 8 + 4 + page_size

let journal_append t page_no (data : Bytes.t) =
  let jfd =
    match t.jfd with
    | Some fd -> fd
    | None ->
        let fd =
          Unix.openfile t.journal_path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
        in
        t.jfd <- Some fd;
        fd
  in
  let e = Codec.Enc.create ~size:journal_frame_size () in
  Codec.Enc.u32 e journal_frame_magic;
  Codec.Enc.i64 e (Int64.of_int page_no);
  Codec.Enc.u32 e (Int32.to_int (Codec.Crc32.digest_bytes data) land 0xffffffff);
  Codec.Enc.raw e (Bytes.to_string data);
  ignore (Unix.lseek jfd 0 Unix.SEEK_END);
  really_write jfd (Bytes.of_string (Codec.Enc.to_string e));
  t.journal_synced <- false

let journal_truncate t =
  (match t.jfd with
  | Some fd ->
      Unix.ftruncate fd 0;
      Unix.fsync fd
  | None -> ());
  Hashtbl.reset t.journaled;
  Hashtbl.reset t.tx_new_pages;
  t.journal_synced <- true

let journal_sync t =
  if not t.journal_synced then begin
    (match t.jfd with Some fd -> Unix.fsync fd | None -> ());
    t.journal_synced <- true
  end

(* Read all valid frames from the journal file at [path]; returns the
   frames in order.  Stops at the first corrupt/truncated frame. *)
let journal_read_frames path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let frames = ref [] in
    (try
       let buf = really_input_string ic len in
       let d = Codec.Dec.of_string buf in
       let continue = ref true in
       while !continue && Codec.Dec.remaining d >= journal_frame_size do
         let magic = Codec.Dec.u32 d in
         let page_no = Int64.to_int (Codec.Dec.i64 d) in
         let crc = Codec.Dec.u32 d in
         let start = d.Codec.Dec.pos in
         let data = String.sub buf start page_size in
         d.Codec.Dec.pos <- start + page_size;
         if
           magic = journal_frame_magic
           && Int32.to_int (Codec.Crc32.digest data) land 0xffffffff = crc
         then frames := (page_no, data) :: !frames
         else continue := false
       done
     with _ -> ());
    close_in ic;
    List.rev !frames
  end

(* ------------------------------------------------------------------ *)
(* Cache management                                                    *)
(* ------------------------------------------------------------------ *)

let write_page_to_disk t (p : page) =
  (* A dirty page must never hit the disk before its before-image is
     durable in the journal. *)
  if t.in_tx && Hashtbl.mem t.journaled p.no then journal_sync t;
  ignore (Unix.lseek t.fd (p.no * page_size) Unix.SEEK_SET);
  really_write t.fd p.data;
  t.writes <- t.writes + 1;
  p.dirty <- false

let evict_if_needed t =
  if Hashtbl.length t.cache > t.cache_cap then begin
    (* Evict the ~25% least recently used pages. *)
    let pages = Hashtbl.fold (fun _ p acc -> p :: acc) t.cache [] in
    let sorted = List.sort (fun a b -> compare a.lru b.lru) pages in
    let n_evict = max 1 (List.length sorted / 4) in
    List.iteri
      (fun i p ->
        if i < n_evict && p.no <> 0 then begin
          if p.dirty then write_page_to_disk t p;
          Hashtbl.remove t.cache p.no
        end)
      sorted
  end

let load_page t no =
  match Hashtbl.find_opt t.cache no with
  | Some p ->
      t.tick <- t.tick + 1;
      p.lru <- t.tick;
      t.hits <- t.hits + 1;
      p
  | None ->
      t.misses <- t.misses + 1;
      let data = Bytes.create page_size in
      if no < t.page_count then begin
        really_pread t.fd data 0 (no * page_size);
        t.reads <- t.reads + 1
      end
      else Bytes.fill data 0 page_size '\000';
      t.tick <- t.tick + 1;
      let p = { no; data; dirty = false; lru = t.tick } in
      Hashtbl.replace t.cache no p;
      evict_if_needed t;
      p

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let recover_from_journal path journal_path =
  let frames = journal_read_frames journal_path in
  if frames <> [] then begin
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
    List.iter
      (fun (page_no, data) ->
        ignore (Unix.lseek fd (page_no * page_size) Unix.SEEK_SET);
        really_write fd (Bytes.of_string data))
      frames;
    Unix.fsync fd;
    Unix.close fd
  end;
  if Sys.file_exists journal_path then Sys.remove journal_path

let open_file ?(cache_pages = 2048) path =
  let journal_path = path ^ ".journal" in
  let existed = Sys.file_exists path in
  if existed then recover_from_journal path journal_path;
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let page_count = (size + page_size - 1) / page_size in
  {
    fd;
    path;
    journal_path;
    page_count = max page_count 1;
    cache = Hashtbl.create 1024;
    cache_cap = cache_pages;
    tick = 0;
    in_tx = false;
    journaled = Hashtbl.create 64;
    jfd = None;
    journal_synced = true;
    tx_new_pages = Hashtbl.create 16;
    reads = 0;
    writes = 0;
    hits = 0;
    misses = 0;
  }

let page_count t = t.page_count

(** Read access to a page.  The returned bytes must not be mutated; use
    {!with_write} for mutation. *)
let read t no : Bytes.t =
  if no < 0 || no >= t.page_count then fail "read: page %d out of range (count %d)" no t.page_count;
  (load_page t no).data

(** Mutate page [no].  Inside a transaction the before-image is
    journaled on first touch. *)
let with_write t no (f : Bytes.t -> 'a) : 'a =
  if no < 0 || no >= t.page_count then fail "write: page %d out of range (count %d)" no t.page_count;
  let p = load_page t no in
  if t.in_tx && (not (Hashtbl.mem t.journaled no)) && not (Hashtbl.mem t.tx_new_pages no)
  then begin
    journal_append t no p.data;
    Hashtbl.replace t.journaled no ()
  end;
  p.dirty <- true;
  f p.data

(** Allocate a fresh page at the end of the file; returns its number.
    The page is zero-filled. *)
let allocate t : int =
  let no = t.page_count in
  t.page_count <- t.page_count + 1;
  let data = Bytes.make page_size '\000' in
  t.tick <- t.tick + 1;
  let p = { no; data; dirty = true; lru = t.tick } in
  Hashtbl.replace t.cache no p;
  if t.in_tx then Hashtbl.replace t.tx_new_pages no ();
  evict_if_needed t;
  no

let flush_all t =
  Hashtbl.iter (fun _ p -> if p.dirty then write_page_to_disk t p) t.cache;
  Unix.fsync t.fd

let begin_tx t =
  if t.in_tx then fail "nested transactions are not supported at the pager level";
  (* Checkpoint: pre-transaction state must be durable on disk, because
     abort discards the cache and reconstructs state from the file plus
     the journal's before-images. *)
  flush_all t;
  t.in_tx <- true;
  Hashtbl.reset t.journaled;
  Hashtbl.reset t.tx_new_pages

let commit t =
  if not t.in_tx then fail "commit outside transaction";
  flush_all t;
  journal_truncate t;
  t.in_tx <- false

let abort t =
  if not t.in_tx then fail "abort outside transaction";
  (* Drop all cached state, then restore before-images from the journal. *)
  (match t.jfd with
  | Some fd ->
      Unix.fsync fd;
      Unix.close fd;
      t.jfd <- None
  | None -> ());
  Hashtbl.reset t.cache;
  recover_from_journal t.path t.journal_path;
  Hashtbl.reset t.journaled;
  Hashtbl.reset t.tx_new_pages;
  t.journal_synced <- true;
  let size = (Unix.fstat t.fd).Unix.st_size in
  t.page_count <- max ((size + page_size - 1) / page_size) 1;
  t.in_tx <- false

let close t =
  if t.in_tx then abort t;
  flush_all t;
  (match t.jfd with Some fd -> Unix.close fd | None -> ());
  t.jfd <- None;
  Unix.close t.fd

type stats = { s_reads : int; s_writes : int; s_hits : int; s_misses : int; s_pages : int }

let stats t =
  { s_reads = t.reads; s_writes = t.writes; s_hits = t.hits; s_misses = t.misses; s_pages = t.page_count }
