(** The persistent object store: the storage substrate Prometheus sits on.

    In the thesis the prototype was layered on the commercial POET
    OODBMS; this module is our substitute substrate.  It exposes a flat
    transactional map from object identifiers (oids) to byte records:

    - records are stored in a slotted-page {!Heap},
    - an oid -> rid directory is kept in a persistent {!Btree},
    - atomic commit/abort is provided by the {!Pager} undo journal,
    - freed pages are recycled through a free-page list rooted in the
      header page.

    Header page (page 0) layout:
    {v
      off 0  : 8-byte magic "PROMDB01"
      off 8  : u32 version
      off 12 : i64 next_oid
      off 20 : u32 directory btree root page
      off 24 : u32 free-page list head
    v} *)

exception Store_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Store_error s)) fmt

let magic = "PROMDB01"
let version = 1
let kind_free = 5

type t = {
  pager : Pager.t;
  mutable heap : Heap.t;
  mutable dir : Btree.t;
  mutable next_oid : int;
  mutable tx_depth : int; (* supports nested begin via counting *)
  path : string;
}

(* --- header accessors -------------------------------------------------- *)

let hdr_read_next_oid pager = Int64.to_int (Bytes.get_int64_le (Pager.read pager 0) 12)

let hdr_write_next_oid pager v =
  Pager.with_write pager 0 (fun b -> Bytes.set_int64_le b 12 (Int64.of_int v))

let hdr_read_dir_root pager = Int32.to_int (Bytes.get_int32_le (Pager.read pager 0) 20)

let hdr_write_dir_root pager v =
  Pager.with_write pager 0 (fun b -> Bytes.set_int32_le b 20 (Int32.of_int v))

let hdr_read_free_head pager = Int32.to_int (Bytes.get_int32_le (Pager.read pager 0) 24)

let hdr_write_free_head pager v =
  Pager.with_write pager 0 (fun b -> Bytes.set_int32_le b 24 (Int32.of_int v))

(* --- free-page list ----------------------------------------------------- *)

let alloc_page pager () =
  let head = hdr_read_free_head pager in
  if head <> 0 then begin
    let next =
      let b = Pager.read pager head in
      Int32.to_int (Bytes.get_int32_le b 1)
    in
    hdr_write_free_head pager next;
    Pager.with_write pager head (fun b -> Bytes.fill b 0 Pager.page_size '\000');
    head
  end
  else Pager.allocate pager

let free_page pager no =
  let head = hdr_read_free_head pager in
  Pager.with_write pager no (fun b ->
      Bytes.fill b 0 Pager.page_size '\000';
      Bytes.set_uint8 b 0 kind_free;
      Bytes.set_int32_le b 1 (Int32.of_int head));
  hdr_write_free_head pager no

(* --- lifecycle ----------------------------------------------------------- *)

let build_components pager =
  let pa = { Heap.alloc_page = alloc_page pager; free_page = free_page pager } in
  let heap = Heap.create pager pa in
  let dir =
    Btree.create pager ~root:(hdr_read_dir_root pager)
      ~set_root:(fun r -> hdr_write_dir_root pager r)
      ~alloc_page:(alloc_page pager)
  in
  (heap, dir)

let open_ ?cache_pages path =
  let pager = Pager.open_file ?cache_pages path in
  let hdr = Pager.read pager 0 in
  let fresh = Bytes.sub_string hdr 0 8 <> magic in
  if fresh then
    Pager.with_write pager 0 (fun b ->
        Bytes.fill b 0 Pager.page_size '\000';
        Bytes.blit_string magic 0 b 0 8;
        Bytes.set_int32_le b 8 (Int32.of_int version);
        Bytes.set_int64_le b 12 1L;
        Bytes.set_int32_le b 20 0l;
        Bytes.set_int32_le b 24 0l)
  else if Int32.to_int (Bytes.get_int32_le hdr 8) <> version then
    fail "%s: unsupported store version" path;
  let heap, dir = build_components pager in
  { pager; heap; dir; next_oid = hdr_read_next_oid pager; tx_depth = 0; path }

let close t =
  hdr_write_next_oid t.pager t.next_oid;
  Pager.close t.pager

let path t = t.path

(* --- transactions ---------------------------------------------------------- *)

let in_tx t = t.tx_depth > 0

let begin_tx t =
  if t.tx_depth = 0 then begin
    (* Persist the current next_oid *before* the transaction starts, so
       that the header before-image captured inside the transaction (and
       hence the state restored by abort) reflects oids already handed
       out, avoiding oid reuse after rollback. *)
    hdr_write_next_oid t.pager t.next_oid;
    Pager.begin_tx t.pager
  end;
  t.tx_depth <- t.tx_depth + 1

let commit t =
  if t.tx_depth <= 0 then fail "commit outside transaction";
  t.tx_depth <- t.tx_depth - 1;
  if t.tx_depth = 0 then begin
    hdr_write_next_oid t.pager t.next_oid;
    Pager.commit t.pager
  end

let abort t =
  if t.tx_depth <= 0 then fail "abort outside transaction";
  t.tx_depth <- 0;
  Pager.abort t.pager;
  (* In-memory state may be stale after rollback: rebuild. *)
  let heap, dir = build_components t.pager in
  t.heap <- heap;
  t.dir <- dir;
  t.next_oid <- hdr_read_next_oid t.pager

let with_tx t f =
  begin_tx t;
  match f () with
  | v ->
      commit t;
      v
  | exception e ->
      if t.tx_depth > 0 then abort t;
      raise e

(* --- records ------------------------------------------------------------------ *)

let fresh_oid t =
  let oid = t.next_oid in
  t.next_oid <- t.next_oid + 1;
  oid

let key_of_oid oid = Int64.of_int oid

let put t ~oid (data : string) : unit =
  match Btree.find t.dir (key_of_oid oid) with
  | Some rid ->
      let rid' = Heap.update t.heap rid data in
      if not (Heap.rid_equal rid rid') then Btree.insert t.dir (key_of_oid oid) rid'
  | None ->
      let rid = Heap.insert t.heap data in
      Btree.insert t.dir (key_of_oid oid) rid

let get t ~oid : string option =
  match Btree.find t.dir (key_of_oid oid) with
  | Some rid -> Some (Heap.get t.heap rid)
  | None -> None

let mem t ~oid = Btree.mem t.dir (key_of_oid oid)

let delete t ~oid : bool =
  match Btree.find t.dir (key_of_oid oid) with
  | Some rid ->
      Heap.delete t.heap rid;
      Btree.delete t.dir (key_of_oid oid)
  | None -> false

(** Iterate all records in oid order. *)
let iter t (f : int -> string -> unit) =
  Btree.iter t.dir (fun k rid -> f (Int64.to_int k) (Heap.get t.heap rid))

let count t = Btree.cardinal t.dir

type stats = { pages : int; objects : int; page_reads : int; page_writes : int; cache_hits : int; cache_misses : int }

let stats t =
  let s = Pager.stats t.pager in
  {
    pages = s.Pager.s_pages;
    objects = count t;
    page_reads = s.Pager.s_reads;
    page_writes = s.Pager.s_writes;
    cache_hits = s.Pager.s_hits;
    cache_misses = s.Pager.s_misses;
  }

(** Consistency check used by tests: the directory B-tree is structurally
    valid and every directory entry resolves to a live heap record. *)
let check t =
  let n = Btree.check t.dir in
  Btree.iter t.dir (fun _ rid -> ignore (Heap.get t.heap rid));
  n

(** Vacuum: rewrite the store into a fresh compact file, dropping dead
    pages (fragmentation from deletes, lazily-deleted B-tree space,
    abandoned pages after aborts) and renaming it over the original.
    The store must not be inside a transaction.  Returns the new store
    handle — the old one is consumed. *)
let vacuum t : t =
  if in_tx t then fail "vacuum inside a transaction";
  let tmp = t.path ^ ".vacuum" in
  if Sys.file_exists tmp then Sys.remove tmp;
  if Sys.file_exists (tmp ^ ".journal") then Sys.remove (tmp ^ ".journal");
  let fresh = open_ tmp in
  (* preserve oids exactly *)
  iter t (fun oid data -> put fresh ~oid data);
  fresh.next_oid <- t.next_oid;
  hdr_write_next_oid fresh.pager fresh.next_oid;
  Pager.flush_all fresh.pager;
  let path = t.path in
  close t;
  close fresh;
  Sys.rename tmp path;
  if Sys.file_exists (tmp ^ ".journal") then Sys.remove (tmp ^ ".journal");
  open_ path
