(** Binary encoding and decoding of primitive values.

    All multi-byte quantities are little-endian.  Strings are
    length-prefixed with an unsigned 32-bit length.  This module is the
    single place in the storage substrate that defines the on-disk
    representation of scalars; higher layers (object serialisation,
    B-tree nodes, page headers) build on it. *)

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

(** Encoder: an append-only buffer of bytes. *)
module Enc = struct
  type t = Buffer.t

  let create ?(size = 256) () : t = Buffer.create size
  let to_string (t : t) = Buffer.contents t
  let length (t : t) = Buffer.length t
  let u8 t v = Buffer.add_uint8 t (v land 0xff)
  let u16 t v = Buffer.add_uint16_le t (v land 0xffff)
  let u32 t v = Buffer.add_int32_le t (Int32.of_int v)
  let i64 t v = Buffer.add_int64_le t v
  let int t v = Buffer.add_int64_le t (Int64.of_int v)
  let bool t v = u8 t (if v then 1 else 0)
  let float t v = Buffer.add_int64_le t (Int64.bits_of_float v)

  let string t s =
    u32 t (String.length s);
    Buffer.add_string t s

  let raw t s = Buffer.add_string t s
end

(** Decoder: a cursor over an immutable string. *)
module Dec = struct
  type t = { src : string; mutable pos : int }

  let of_string ?(pos = 0) src = { src; pos }
  let remaining t = String.length t.src - t.pos
  let eof t = remaining t <= 0

  let need t n =
    if remaining t < n then
      corrupt "decoder underrun: need %d bytes, have %d" n (remaining t)

  let u8 t =
    need t 1;
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2;
    let v = String.get_uint16_le t.src t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    need t 4;
    let v = Int32.to_int (String.get_int32_le t.src t.pos) in
    t.pos <- t.pos + 4;
    v land 0xffffffff

  let i64 t =
    need t 8;
    let v = String.get_int64_le t.src t.pos in
    t.pos <- t.pos + 8;
    v

  let int t = Int64.to_int (i64 t)
  let bool t = u8 t <> 0
  let float t = Int64.float_of_bits (i64 t)

  let string t =
    let n = u32 t in
    need t n;
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s
end

(** CRC-32 (IEEE 802.3 polynomial), used to validate journal frames. *)
module Crc32 = struct
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref (Int32.of_int n) in
           for _ = 0 to 7 do
             if Int32.logand !c 1l <> 0l then
               c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else c := Int32.shift_right_logical !c 1
           done;
           !c))

  let digest_sub s pos len =
    let table = Lazy.force table in
    let c = ref 0xFFFFFFFFl in
    for i = pos to pos + len - 1 do
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xffl) in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
    done;
    Int32.logxor !c 0xFFFFFFFFl

  let digest s = digest_sub s 0 (String.length s)
  let digest_bytes b = digest (Bytes.unsafe_to_string b)
end
