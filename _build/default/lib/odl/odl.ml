(** ODL — a textual schema definition language.

    The Prometheus model is defined "with reference to ODMG" (thesis
    ch. 4.2); this module provides the corresponding schema definition
    syntax, extended with the Prometheus relationship semantics of
    ch. 4.3–4.4, so that a whole schema can be loaded from a file:

    {v
      class Person {
        attribute string name;
        attribute int age = 0;
        required attribute string surname;
      }

      abstract class LegalEntity {}
      class Company extends LegalEntity {
        attribute string name;
      }

      relationship WorksFor (Person -> Company) {
        association;
        attribute int salary;
        card out 0..*;
        card in 0..100;
      }

      relationship ChildOf (Taxon -> Taxon) {
        aggregation;
        exclusive;
        lifetime dependent;
        attribute string reason;
        inherited attribute string reason;
      }
    v}

    Types: [int], [float], [string], [bool], [date], [ref<Class>],
    [set<T>], [list<T>], [bag<T>], [any].  Comments: [-- to end of line].
    Defaults follow [=] and use POOL literal syntax. *)

open Pmodel

exception Odl_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Odl_error s)) fmt

(* Reuse the POOL lexer: ODL's tokens are a subset (identifiers,
   literals, punctuation); ODL keywords arrive as IDENTs or POOL KWs. *)
module L = Pool_lang.Lexer

type state = { toks : (L.token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let word st =
  (* treat POOL keywords as plain words in ODL *)
  match peek st with
  | L.IDENT s ->
      advance st;
      Some s
  | L.KW s ->
      advance st;
      Some s
  | _ -> None

let expect_word st w =
  match word st with
  | Some s when String.lowercase_ascii s = w -> ()
  | Some s -> fail "ODL: expected '%s', found '%s'" w s
  | None -> fail "ODL: expected '%s'" w

let expect_tok st tok what =
  if peek st = tok then advance st else fail "ODL: expected %s" what

let ident st what =
  match peek st with
  | L.IDENT s ->
      advance st;
      s
  | t -> fail "ODL: expected %s, found %s" what (Format.asprintf "%a" L.pp_token t)

(* --- types --------------------------------------------------------------- *)

let rec parse_ty st : Value.ty =
  match word st with
  | Some "int" -> Value.TInt
  | Some "float" -> Value.TFloat
  | Some "string" -> Value.TString
  | Some "bool" -> Value.TBool
  | Some "date" -> Value.TDate
  | Some "any" -> Value.TAny
  | Some "ref" ->
      expect_tok st L.LT "'<'";
      let c = ident st "class name" in
      expect_tok st L.GT "'>'";
      Value.TRef c
  | Some "set" -> parse_coll st (fun t -> Value.TSet t)
  | Some "list" -> parse_coll st (fun t -> Value.TList t)
  | Some "bag" -> parse_coll st (fun t -> Value.TBag t)
  | Some w -> fail "ODL: unknown type %s" w
  | None -> fail "ODL: expected a type"

and parse_coll st wrap =
  expect_tok st L.LT "'<'";
  let t = parse_ty st in
  expect_tok st L.GT "'>'";
  wrap t

(* --- attribute declarations ------------------------------------------------ *)

let parse_default st : Value.t =
  match peek st with
  | L.INT i ->
      advance st;
      Value.VInt i
  | L.MINUS ->
      advance st;
      (match peek st with
      | L.INT i ->
          advance st;
          Value.VInt (-i)
      | L.FLOAT f ->
          advance st;
          Value.VFloat (-.f)
      | _ -> fail "ODL: expected a number after '-'")
  | L.FLOAT f ->
      advance st;
      Value.VFloat f
  | L.STRING s ->
      advance st;
      Value.VString s
  | L.KW "true" ->
      advance st;
      Value.VBool true
  | L.KW "false" ->
      advance st;
      Value.VBool false
  | L.KW "null" ->
      advance st;
      Value.VNull
  | _ -> fail "ODL: expected a literal default value"

(* "attribute <ty> <name> [= default] ;" with optional leading "required" *)
let parse_attribute st ~required : Meta.attr_def =
  let ty = parse_ty st in
  let name = ident st "attribute name" in
  let default = if peek st = L.EQ then (advance st; parse_default st) else Value.VNull in
  expect_word st ";";
  Meta.attr ~required ~default name ty

(* --- class bodies ----------------------------------------------------------- *)

(* Statements end with ';' — the POOL lexer has no ';' token, so we
   pre-split on ';' textually?  No: simpler, we add ';' handling by
   treating it as a lexer-rejected character.  Instead ODL uses the
   convention that declarations are newline/keyword delimited; to keep
   the familiar surface we accept both.  We therefore preprocess the
   source, replacing ';' with ' '. *)

type decl =
  | Dclass of Meta.class_def
  | Drel of {
      name : string;
      origin : string;
      destination : string;
      kind : Meta.rel_kind option;
      exclusive : bool;
      sharable : bool option;
      lifetime_dep : bool;
      constant : bool;
      card_out : Meta.card option;
      card_in : Meta.card option;
      attrs : Meta.attr_def list;
      inherited : string list;
      supers : string list;
    }

let parse_card st : Meta.card =
  let lo = match peek st with
    | L.INT i -> advance st; i
    | _ -> fail "ODL: expected cardinality lower bound"
  in
  (* "lo..hi" arrives as INT DOT DOT (INT|STAR) *)
  expect_tok st L.DOT "'..'";
  expect_tok st L.DOT "'..'";
  match peek st with
  | L.INT hi ->
      advance st;
      Meta.card ~cmin:lo ~cmax:hi ()
  | L.STAR ->
      advance st;
      Meta.card ~cmin:lo ()
  | _ -> fail "ODL: expected upper bound or '*'"

let parse_class st ~abstract : decl =
  let name = ident st "class name" in
  let supers =
    match peek st with
    | L.IDENT "extends" ->
        advance st;
        let rec go acc =
          let s = ident st "superclass" in
          if peek st = L.COMMA then begin
            advance st;
            go (s :: acc)
          end
          else List.rev (s :: acc)
        in
        go []
    | _ -> []
  in
  expect_word st "{";
  let attrs = ref [] in
  let continue = ref true in
  while !continue do
    match peek st with
    | L.IDENT "attribute" ->
        advance st;
        attrs := parse_attribute st ~required:false :: !attrs
    | L.IDENT "required" ->
        advance st;
        expect_word st "attribute";
        attrs := parse_attribute st ~required:true :: !attrs
    | L.IDENT "}" | L.KW "}" ->
        advance st;
        continue := false
    | t -> fail "ODL: unexpected %s in class body" (Format.asprintf "%a" L.pp_token t)
  done;
  Dclass { Meta.class_name = name; supers; attrs = List.rev !attrs; abstract }

let parse_rel st : decl =
  let name = ident st "relationship name" in
  let supers =
    match peek st with
    | L.IDENT "extends" ->
        advance st;
        [ ident st "super relationship" ]
    | _ -> []
  in
  expect_tok st L.LPAREN "'('";
  let origin = ident st "origin class" in
  (* "->" arrives as MINUS GT *)
  expect_tok st L.MINUS "'->'";
  expect_tok st L.GT "'->'";
  let destination = ident st "destination class" in
  expect_tok st L.RPAREN "')'";
  expect_word st "{";
  let kind = ref None in
  let exclusive = ref false in
  let sharable = ref None in
  let lifetime = ref false in
  let constant = ref false in
  let card_out = ref None in
  let card_in = ref None in
  let attrs = ref [] in
  let inherited = ref [] in
  let continue = ref true in
  while !continue do
    match peek st with
    | L.IDENT "aggregation" ->
        advance st;
        kind := Some Meta.Aggregation;
        expect_word st ";"
    | L.IDENT "association" ->
        advance st;
        kind := Some Meta.Association;
        expect_word st ";"
    | L.IDENT "exclusive" ->
        advance st;
        exclusive := true;
        expect_word st ";"
    | L.IDENT "sharable" ->
        advance st;
        sharable := Some true;
        expect_word st ";"
    | L.KW "not" ->
        advance st;
        expect_word st "sharable";
        sharable := Some false;
        expect_word st ";"
    | L.IDENT "lifetime" ->
        advance st;
        expect_word st "dependent";
        lifetime := true;
        expect_word st ";"
    | L.IDENT "constant" ->
        advance st;
        constant := true;
        expect_word st ";"
    | L.IDENT "card" -> (
        advance st;
        match word st with
        | Some "out" ->
            card_out := Some (parse_card st);
            expect_word st ";"
        | Some "in" ->
            card_in := Some (parse_card st);
            expect_word st ";"
        | _ -> fail "ODL: expected 'out' or 'in' after 'card'")
    | L.KW "in" -> (
        (* "card in" can tokenize 'in' as a keyword *)
        advance st;
        fail "ODL: unexpected 'in'")
    | L.IDENT "attribute" ->
        advance st;
        attrs := parse_attribute st ~required:false :: !attrs
    | L.IDENT "required" ->
        advance st;
        expect_word st "attribute";
        attrs := parse_attribute st ~required:true :: !attrs
    | L.IDENT "inherited" ->
        advance st;
        expect_word st "attribute";
        let _ty = parse_ty st in
        let n = ident st "attribute name" in
        inherited := n :: !inherited;
        expect_word st ";"
    | L.IDENT "}" | L.KW "}" ->
        advance st;
        continue := false
    | t -> fail "ODL: unexpected %s in relationship body" (Format.asprintf "%a" L.pp_token t)
  done;
  (* inherited attributes must also be declared as attributes; declare
     them implicitly when missing *)
  let attrs_all =
    List.fold_left
      (fun acc n ->
        if List.exists (fun (a : Meta.attr_def) -> a.Meta.attr_name = n) acc then acc
        else acc @ [ Meta.attr n Value.TAny ])
      (List.rev !attrs) (List.rev !inherited)
  in
  Drel
    {
      name;
      origin;
      destination;
      kind = !kind;
      exclusive = !exclusive;
      sharable = !sharable;
      lifetime_dep = !lifetime;
      constant = !constant;
      card_out = !card_out;
      card_in = !card_in;
      attrs = attrs_all;
      inherited = List.rev !inherited;
      supers;
    }

(* ';', '{' and '}' are not POOL tokens: pad them with spaces and lex
   them as one-character identifiers via a pre-pass.  Characters inside
   string literals (and line comments) are left untouched so default
   values like "a;b" survive. *)
let preprocess (src : string) : string =
  let b = Buffer.create (String.length src + 32) in
  let n = String.length src in
  let i = ref 0 in
  let in_quote = ref '\000' in
  let in_comment = ref false in
  while !i < n do
    let c = src.[!i] in
    (if !in_comment then begin
       Buffer.add_char b c;
       if c = '\n' then in_comment := false
     end
     else if !in_quote <> '\000' then begin
       Buffer.add_char b c;
       if c = !in_quote then in_quote := '\000'
     end
     else
       match c with
       | '\'' | '"' ->
           in_quote := c;
           Buffer.add_char b c
       | '-' when !i + 1 < n && src.[!i + 1] = '-' ->
           in_comment := true;
           Buffer.add_char b c
       | ';' -> Buffer.add_string b " __SEMI__ "
       | '{' -> Buffer.add_string b " __LBRACE__ "
       | '}' -> Buffer.add_string b " __RBRACE__ "
       | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let retoken (toks : (L.token * int) list) : (L.token * int) list =
  List.map
    (fun (t, p) ->
      match t with
      | L.IDENT "__SEMI__" -> (L.IDENT ";", p)
      | L.IDENT "__LBRACE__" -> (L.IDENT "{", p)
      | L.IDENT "__RBRACE__" -> (L.IDENT "}", p)
      | t -> (t, p))
    toks

let parse (src : string) : decl list =
  let toks = retoken (L.tokenize (preprocess src)) in
  let st = { toks = Array.of_list toks; pos = 0 } in
  let decls = ref [] in
  let continue = ref true in
  while !continue do
    match peek st with
    | L.EOF -> continue := false
    | L.IDENT "class" ->
        advance st;
        decls := parse_class st ~abstract:false :: !decls
    | L.IDENT "abstract" ->
        advance st;
        expect_word st "class";
        decls := parse_class st ~abstract:true :: !decls
    | L.IDENT "relationship" ->
        advance st;
        decls := parse_rel st :: !decls
    | t -> fail "ODL: expected 'class', 'abstract class' or 'relationship', found %s"
             (Format.asprintf "%a" L.pp_token t)
  done;
  List.rev !decls

(** Parse [src] and install the declarations into [db] (classes first,
    then relationships, so forward references within the file work). *)
let load (db : Database.t) (src : string) : unit =
  let decls = parse src in
  List.iter
    (function
      | Dclass c ->
          ignore
            (Database.define_class db ~supers:c.Meta.supers ~abstract:c.Meta.abstract
               c.Meta.class_name c.Meta.attrs)
      | Drel _ -> ())
    decls;
  List.iter
    (function
      | Dclass _ -> ()
      | Drel r ->
          ignore
            (Database.define_rel db r.name ~origin:r.origin ~destination:r.destination
               ?kind:r.kind ~exclusive:r.exclusive ?sharable:r.sharable
               ~lifetime_dep:r.lifetime_dep ~constant:r.constant ?card_out:r.card_out
               ?card_in:r.card_in ~attrs:r.attrs ~inherited_attrs:r.inherited
               ~supers:r.supers))
    decls

let load_file (db : Database.t) (path : string) : unit =
  let ic = open_in path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  load db src

(* ---------------------------------------------------------------------- *)
(* Printing: schema -> ODL text (export / round-trip)                      *)
(* ---------------------------------------------------------------------- *)

let rec ty_to_string : Value.ty -> string = function
  | Value.TInt -> "int"
  | Value.TFloat -> "float"
  | Value.TString -> "string"
  | Value.TBool -> "bool"
  | Value.TDate -> "date"
  | Value.TAny -> "any"
  | Value.TRef c -> Printf.sprintf "ref<%s>" c
  | Value.TSet t -> Printf.sprintf "set<%s>" (ty_to_string t)
  | Value.TList t -> Printf.sprintf "list<%s>" (ty_to_string t)
  | Value.TBag t -> Printf.sprintf "bag<%s>" (ty_to_string t)

let default_to_string : Value.t -> string option = function
  | Value.VNull -> None
  | Value.VInt i -> Some (string_of_int i)
  | Value.VFloat f -> Some (Printf.sprintf "%g" f)
  | Value.VString s -> Some (Printf.sprintf "'%s'" (String.concat "''" (String.split_on_char '\'' s)))
  | Value.VBool b -> Some (string_of_bool b)
  | _ -> None (* collection defaults are not expressible in ODL *)

let attr_to_string (a : Meta.attr_def) : string =
  Printf.sprintf "  %sattribute %s %s%s;"
    (if a.Meta.required then "required " else "")
    (ty_to_string a.Meta.attr_ty) a.Meta.attr_name
    (match default_to_string a.Meta.default with Some d -> " = " ^ d | None -> "")

let card_to_string (c : Meta.card) : string =
  Printf.sprintf "%d..%s" c.Meta.cmin
    (match c.Meta.cmax with Some m -> string_of_int m | None -> "*")

(** Render a schema as ODL text.  Built-in classes are omitted; the
    output round-trips through {!load}. *)
let print (schema : Meta.t) : string =
  let b = Buffer.create 1024 in
  let is_builtin n =
    n = Meta.object_class || (String.length n > 0 && n.[0] = '_') || n = "Context"
  in
  (* classes in dependency order: supers before subclasses *)
  let printed = Hashtbl.create 16 in
  let rec emit_class (c : Meta.class_def) =
    if not (Hashtbl.mem printed c.Meta.class_name || is_builtin c.Meta.class_name) then begin
      Hashtbl.replace printed c.Meta.class_name ();
      List.iter
        (fun s -> match Meta.find_class schema s with Some sc -> emit_class sc | None -> ())
        c.Meta.supers;
      let supers = List.filter (fun s -> not (is_builtin s)) c.Meta.supers in
      Buffer.add_string b
        (Printf.sprintf "%sclass %s%s {\n"
           (if c.Meta.abstract then "abstract " else "")
           c.Meta.class_name
           (if supers = [] then "" else " extends " ^ String.concat ", " supers));
      List.iter (fun a -> Buffer.add_string b (attr_to_string a ^ "\n")) c.Meta.attrs;
      Buffer.add_string b "}\n\n"
    end
  in
  List.iter emit_class (List.sort compare (Meta.classes schema));
  List.iter
    (fun (r : Meta.rel_def) ->
      Buffer.add_string b
        (Printf.sprintf "relationship %s%s (%s -> %s) {\n" r.Meta.rel_name
           (match r.Meta.rel_supers with [] -> "" | s :: _ -> " extends " ^ s)
           r.Meta.origin r.Meta.destination);
      Buffer.add_string b
        (match r.Meta.kind with
        | Meta.Aggregation -> "  aggregation;\n"
        | Meta.Association -> "  association;\n");
      if r.Meta.exclusive then Buffer.add_string b "  exclusive;\n";
      if not r.Meta.sharable then Buffer.add_string b "  not sharable;\n";
      if r.Meta.lifetime_dep then Buffer.add_string b "  lifetime dependent;\n";
      if r.Meta.constant then Buffer.add_string b "  constant;\n";
      if r.Meta.card_out <> Meta.many then
        Buffer.add_string b (Printf.sprintf "  card out %s;\n" (card_to_string r.Meta.card_out));
      if r.Meta.card_in <> Meta.many then
        Buffer.add_string b (Printf.sprintf "  card in %s;\n" (card_to_string r.Meta.card_in));
      List.iter (fun a -> Buffer.add_string b (attr_to_string a ^ "\n")) r.Meta.rel_attrs;
      List.iter
        (fun n ->
          let ty =
            match List.find_opt (fun (a : Meta.attr_def) -> a.Meta.attr_name = n) r.Meta.rel_attrs with
            | Some a -> ty_to_string a.Meta.attr_ty
            | None -> "any"
          in
          Buffer.add_string b (Printf.sprintf "  inherited attribute %s %s;\n" ty n))
        r.Meta.inherited_attrs;
      Buffer.add_string b "}\n\n")
    (List.sort compare (Meta.rels schema));
  Buffer.contents b
