lib/odl/odl.ml: Array Buffer Database Format Hashtbl List Meta Pmodel Pool_lang Printf String Value
