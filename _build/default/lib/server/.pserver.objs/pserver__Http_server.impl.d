lib/server/http_server.ml: Buffer Char Database List Meta Pmodel Pool_lang Printexc Printf Pstore String Unix Value
