lib/graph/compare.ml: Database Format List Pmodel Traverse
