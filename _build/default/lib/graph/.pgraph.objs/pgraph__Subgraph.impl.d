lib/graph/subgraph.ml: Database List Meta Obj Pmodel Traverse
