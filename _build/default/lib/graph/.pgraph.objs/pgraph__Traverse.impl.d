lib/graph/traverse.ml: Database Hashtbl List Meta Obj Pmodel Queue
