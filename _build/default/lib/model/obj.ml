(** Runtime representation of persistent objects.

    Every persistent entity — plain objects, relationship instances,
    classification contexts — is an [Obj.t]: an oid, a class name and
    an attribute map.  Relationship instances store their endpoints and
    classification context in reserved attributes ({!origin_attr},
    {!destination_attr}, {!context_attr}), which makes relationships
    first-class queryable objects (thesis ch. 4.3) while reusing the
    same storage representation. *)

module SMap = Map.Make (String)
open Pstore

type t = { oid : int; class_name : string; mutable attrs : Value.t SMap.t }

let origin_attr = "__origin"
let destination_attr = "__destination"
let context_attr = "__context"

let is_reserved_attr a = a = origin_attr || a = destination_attr || a = context_attr

let make ~oid ~class_name attrs =
  { oid; class_name; attrs = List.fold_left (fun m (k, v) -> SMap.add k v m) SMap.empty attrs }

let get (t : t) attr = match SMap.find_opt attr t.attrs with Some v -> v | None -> Value.VNull
let set (t : t) attr v = t.attrs <- SMap.add attr v t.attrs
let fields (t : t) = SMap.bindings t.attrs

let origin t = Value.as_ref (get t origin_attr)
let destination t = Value.as_ref (get t destination_attr)

let context t =
  match get t context_attr with Value.VRef o -> Some o | _ -> None

let pp ppf t =
  Format.fprintf ppf "@[<hv 2>%s#%d{%a}@]" t.class_name t.oid
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (k, v) -> Format.fprintf ppf "%s=%a" k Value.pp v))
    (fields t)

(* --- serialisation ------------------------------------------------------ *)

let encode (t : t) : string =
  let e = Codec.Enc.create () in
  Codec.Enc.string e t.class_name;
  Codec.Enc.u16 e (SMap.cardinal t.attrs);
  SMap.iter
    (fun k v ->
      Codec.Enc.string e k;
      Value.encode e v)
    t.attrs;
  Codec.Enc.to_string e

let decode ~oid (s : string) : t =
  let d = Codec.Dec.of_string s in
  let class_name = Codec.Dec.string d in
  let n = Codec.Dec.u16 d in
  let attrs = ref SMap.empty in
  for _ = 1 to n do
    let k = Codec.Dec.string d in
    let v = Value.decode d in
    attrs := SMap.add k v !attrs
  done;
  { oid; class_name; attrs = !attrs }
