(** The Prometheus meta-model: class and relationship definitions.

    Follows thesis ch. 4.2–4.4.  A schema holds plain (object) classes
    and relationship classes.  Relationship classes are first-class:
    they have their own attributes, a kind (aggregation/association),
    and built-in semantic attributes (exclusivity, sharability,
    lifetime dependency, constancy, cardinalities, attribute
    inheritance for role acquisition). *)

open Pstore

exception Schema_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Schema_error s)) fmt

type attr_def = {
  attr_name : string;
  attr_ty : Value.ty;
  required : bool; (* must be non-null once the enclosing transaction commits *)
  default : Value.t;
}

let attr ?(required = false) ?(default = Value.VNull) attr_name attr_ty =
  { attr_name; attr_ty; required; default }

type class_def = {
  class_name : string;
  supers : string list;
  attrs : attr_def list; (* own attributes, excluding inherited *)
  abstract : bool;
}

(** Relationship kind (thesis 4.4.1–4.4.2). *)
type rel_kind = Aggregation | Association

let pp_rel_kind ppf = function
  | Aggregation -> Format.pp_print_string ppf "aggregation"
  | Association -> Format.pp_print_string ppf "association"

(** Cardinality bound for one side of a relationship class. *)
type card = { cmin : int; cmax : int option }

let card ?(cmin = 0) ?cmax () = { cmin; cmax }
let many = { cmin = 0; cmax = None }
let exactly_one = { cmin = 1; cmax = Some 1 }
let at_most_one = { cmin = 0; cmax = Some 1 }

let pp_card ppf c =
  match c.cmax with
  | None -> Format.fprintf ppf "%d..*" c.cmin
  | Some m -> Format.fprintf ppf "%d..%d" c.cmin m

type rel_def = {
  rel_name : string;
  rel_supers : string list; (* relationship classes can be specialised *)
  origin : string; (* class name *)
  destination : string; (* class name *)
  kind : rel_kind;
  (* how many outgoing instances an origin object may have *)
  card_out : card;
  (* how many incoming instances a destination object may have *)
  card_in : card;
  (* built-in semantic attributes (thesis 4.4.3, figs. 12-16):
     - exclusive: within one classification context a destination has at
       most one incoming instance of this relationship class;
     - sharable: if false, a destination has at most one incoming
       instance of this class across *all* contexts;
     - lifetime_dep: destination existence depends on the relationship
       (deleting the origin cascades, thesis "dependency");
     - constant: endpoints cannot be re-targeted after creation. *)
  exclusive : bool;
  sharable : bool;
  lifetime_dep : bool;
  constant : bool;
  (* attribute inheritance / roles (thesis 4.4.5): relationship
     attributes listed here are visible as derived attributes on the
     destination object. *)
  inherited_attrs : string list;
  rel_attrs : attr_def list;
}

(** Allowed combinations of built-in behaviours (thesis Table 3):
    aggregations may be lifetime-dependent and non-sharable;
    associations must be sharable and must not be lifetime-dependent
    (a pure association never owns its destination). *)
let check_rel_combination (r : rel_def) =
  match r.kind with
  | Aggregation -> ()
  | Association ->
      if r.lifetime_dep then
        fail "relationship %s: an association cannot be lifetime-dependent" r.rel_name;
      if not r.sharable then
        fail "relationship %s: an association must be sharable" r.rel_name

let rel ?(supers = []) ?(kind = Association) ?(card_out = many) ?(card_in = many)
    ?(exclusive = false) ?(sharable = true) ?(lifetime_dep = false) ?(constant = false)
    ?(inherited_attrs = []) ?(attrs = []) rel_name ~origin ~destination =
  let r =
    {
      rel_name;
      rel_supers = supers;
      origin;
      destination;
      kind;
      card_out;
      card_in;
      exclusive;
      sharable;
      lifetime_dep;
      constant;
      inherited_attrs;
      rel_attrs = attrs;
    }
  in
  check_rel_combination r;
  r

(* ---------------------------------------------------------------------- *)
(* Schema                                                                  *)
(* ---------------------------------------------------------------------- *)

type t = {
  classes : (string, class_def) Hashtbl.t;
  rels : (string, rel_def) Hashtbl.t;
}

let object_class = "Object"

(** Built-in classes present in every schema. *)
let builtin_classes =
  [
    { class_name = object_class; supers = []; attrs = []; abstract = true };
    (* classification contexts (thesis 4.6.2) *)
    {
      class_name = "Context";
      supers = [ object_class ];
      attrs = [ attr "name" Value.TString; attr "description" Value.TString ];
      abstract = false;
    };
  ]

let empty () =
  let t = { classes = Hashtbl.create 64; rels = Hashtbl.create 64 } in
  List.iter (fun c -> Hashtbl.replace t.classes c.class_name c) builtin_classes;
  t

let find_class t name = Hashtbl.find_opt t.classes name
let find_rel t name = Hashtbl.find_opt t.rels name

let class_exn t name =
  match find_class t name with Some c -> c | None -> fail "unknown class %s" name

let rel_exn t name =
  match find_rel t name with Some r -> r | None -> fail "unknown relationship class %s" name

let is_class t name = Hashtbl.mem t.classes name
let is_rel t name = Hashtbl.mem t.rels name

let classes t = Hashtbl.fold (fun _ c acc -> c :: acc) t.classes []
let rels t = Hashtbl.fold (fun _ r acc -> r :: acc) t.rels []

(** All (transitive) superclasses of a class, excluding itself. *)
let rec superclasses t name : string list =
  match find_class t name with
  | None -> []
  | Some c ->
      List.concat_map (fun s -> s :: superclasses t s) c.supers |> List.sort_uniq compare

let rec rel_superclasses t name : string list =
  match find_rel t name with
  | None -> []
  | Some r ->
      List.concat_map (fun s -> s :: rel_superclasses t s) r.rel_supers
      |> List.sort_uniq compare

(** [is_subclass t ~sub ~super]: reflexive-transitive subclassing over
    both object classes and relationship classes. *)
let is_subclass t ~sub ~super =
  sub = super
  || List.mem super (superclasses t sub)
  || List.mem super (rel_superclasses t sub)
  || (super = object_class && (is_class t sub || is_rel t sub))

(** Direct and transitive subclasses of [name] (including itself). *)
let subclasses t name : string list =
  Hashtbl.fold
    (fun n _ acc -> if is_subclass t ~sub:n ~super:name then n :: acc else acc)
    t.classes []

let rel_subclasses t name : string list =
  Hashtbl.fold
    (fun n _ acc -> if is_subclass t ~sub:n ~super:name then n :: acc else acc)
    t.rels []

(** All attributes of a class or relationship class, including
    inherited ones.  Subclass definitions override superclass
    definitions of the same name (covariant redefinition). *)
let all_attrs t name : attr_def list =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add a =
    if not (Hashtbl.mem seen a.attr_name) then begin
      Hashtbl.replace seen a.attr_name ();
      out := a :: !out
    end
  in
  let rec walk n =
    (match find_class t n with
    | Some c ->
        List.iter add c.attrs;
        List.iter walk c.supers
    | None -> ());
    match find_rel t n with
    | Some r ->
        List.iter add r.rel_attrs;
        List.iter walk r.rel_supers
    | None -> ()
  in
  walk name;
  List.rev !out

let find_attr t name attr_name =
  List.find_opt (fun a -> a.attr_name = attr_name) (all_attrs t name)

(* ---------------------------------------------------------------------- *)
(* Schema definition with validation                                       *)
(* ---------------------------------------------------------------------- *)

let add_class t (c : class_def) =
  if Hashtbl.mem t.classes c.class_name || Hashtbl.mem t.rels c.class_name then
    fail "class %s already defined" c.class_name;
  List.iter
    (fun s -> if not (Hashtbl.mem t.classes s) then fail "class %s: unknown superclass %s" c.class_name s)
    c.supers;
  let c =
    if c.supers = [] && c.class_name <> object_class then { c with supers = [ object_class ] }
    else c
  in
  Hashtbl.replace t.classes c.class_name c

let define_class t ?(supers = []) ?(abstract = false) class_name attrs =
  add_class t { class_name; supers; attrs; abstract };
  class_exn t class_name

let add_rel t (r : rel_def) =
  if Hashtbl.mem t.rels r.rel_name || Hashtbl.mem t.classes r.rel_name then
    fail "relationship class %s already defined" r.rel_name;
  if not (Hashtbl.mem t.classes r.origin) then
    fail "relationship %s: unknown origin class %s" r.rel_name r.origin;
  if not (Hashtbl.mem t.classes r.destination) then
    fail "relationship %s: unknown destination class %s" r.rel_name r.destination;
  List.iter
    (fun s ->
      match Hashtbl.find_opt t.rels s with
      | None -> fail "relationship %s: unknown super relationship %s" r.rel_name s
      | Some super ->
          (* covariance: endpoints of the sub-relationship must conform *)
          if not (is_subclass t ~sub:r.origin ~super:super.origin) then
            fail "relationship %s: origin %s does not specialise %s" r.rel_name r.origin super.origin;
          if not (is_subclass t ~sub:r.destination ~super:super.destination) then
            fail "relationship %s: destination %s does not specialise %s" r.rel_name r.destination
              super.destination)
    r.rel_supers;
  check_rel_combination r;
  List.iter
    (fun a ->
      if not (List.exists (fun d -> d.attr_name = a) r.rel_attrs) then
        fail "relationship %s: inherited attribute %s is not a relationship attribute" r.rel_name a)
    r.inherited_attrs;
  Hashtbl.replace t.rels r.rel_name r

let define_rel t ?supers ?kind ?card_out ?card_in ?exclusive ?sharable ?lifetime_dep ?constant
    ?inherited_attrs ?attrs rel_name ~origin ~destination =
  let r =
    rel ?supers ?kind ?card_out ?card_in ?exclusive ?sharable ?lifetime_dep ?constant
      ?inherited_attrs ?attrs rel_name ~origin ~destination
  in
  add_rel t r;
  r

(* ---------------------------------------------------------------------- *)
(* Serialisation (the schema itself is stored in the database)             *)
(* ---------------------------------------------------------------------- *)

let encode_attr e (a : attr_def) =
  Codec.Enc.string e a.attr_name;
  Value.encode_ty e a.attr_ty;
  Codec.Enc.bool e a.required;
  Value.encode e a.default

let decode_attr d =
  let attr_name = Codec.Dec.string d in
  let attr_ty = Value.decode_ty d in
  let required = Codec.Dec.bool d in
  let default = Value.decode d in
  { attr_name; attr_ty; required; default }

let encode_string_list e l =
  Codec.Enc.u16 e (List.length l);
  List.iter (Codec.Enc.string e) l

let decode_string_list d =
  let n = Codec.Dec.u16 d in
  List.init n (fun _ -> Codec.Dec.string d)

let encode_card e c =
  Codec.Enc.u32 e c.cmin;
  match c.cmax with
  | None -> Codec.Enc.bool e false
  | Some m ->
      Codec.Enc.bool e true;
      Codec.Enc.u32 e m

let decode_card d =
  let cmin = Codec.Dec.u32 d in
  let cmax = if Codec.Dec.bool d then Some (Codec.Dec.u32 d) else None in
  { cmin; cmax }

let encode t : string =
  let e = Codec.Enc.create ~size:4096 () in
  let user_classes = List.filter (fun c -> not (List.exists (fun b -> b.class_name = c.class_name) builtin_classes)) (classes t) in
  Codec.Enc.u32 e (List.length user_classes);
  List.iter
    (fun c ->
      Codec.Enc.string e c.class_name;
      encode_string_list e c.supers;
      Codec.Enc.bool e c.abstract;
      Codec.Enc.u16 e (List.length c.attrs);
      List.iter (encode_attr e) c.attrs)
    user_classes;
  let rels = rels t in
  Codec.Enc.u32 e (List.length rels);
  List.iter
    (fun r ->
      Codec.Enc.string e r.rel_name;
      encode_string_list e r.rel_supers;
      Codec.Enc.string e r.origin;
      Codec.Enc.string e r.destination;
      Codec.Enc.u8 e (match r.kind with Aggregation -> 0 | Association -> 1);
      encode_card e r.card_out;
      encode_card e r.card_in;
      Codec.Enc.bool e r.exclusive;
      Codec.Enc.bool e r.sharable;
      Codec.Enc.bool e r.lifetime_dep;
      Codec.Enc.bool e r.constant;
      encode_string_list e r.inherited_attrs;
      Codec.Enc.u16 e (List.length r.rel_attrs);
      List.iter (encode_attr e) r.rel_attrs)
    rels;
  Codec.Enc.to_string e

let decode_into t (s : string) =
  let d = Codec.Dec.of_string s in
  let nclasses = Codec.Dec.u32 d in
  (* two passes not needed if stored in definition order; we sort
     topologically by inserting repeatedly *)
  let pending = ref [] in
  for _ = 1 to nclasses do
    let class_name = Codec.Dec.string d in
    let supers = decode_string_list d in
    let abstract = Codec.Dec.bool d in
    let nattrs = Codec.Dec.u16 d in
    let attrs = List.init nattrs (fun _ -> decode_attr d) in
    pending := { class_name; supers; attrs; abstract } :: !pending
  done;
  let rec drain classes =
    if classes <> [] then begin
      let ready, blocked =
        List.partition (fun c -> List.for_all (fun s -> Hashtbl.mem t.classes s) c.supers) classes
      in
      if ready = [] then fail "schema decode: cyclic or dangling class hierarchy";
      List.iter (fun c -> Hashtbl.replace t.classes c.class_name c) ready;
      drain blocked
    end
  in
  drain (List.rev !pending);
  let nrels = Codec.Dec.u32 d in
  for _ = 1 to nrels do
    let rel_name = Codec.Dec.string d in
    let rel_supers = decode_string_list d in
    let origin = Codec.Dec.string d in
    let destination = Codec.Dec.string d in
    let kind = match Codec.Dec.u8 d with 0 -> Aggregation | _ -> Association in
    let card_out = decode_card d in
    let card_in = decode_card d in
    let exclusive = Codec.Dec.bool d in
    let sharable = Codec.Dec.bool d in
    let lifetime_dep = Codec.Dec.bool d in
    let constant = Codec.Dec.bool d in
    let inherited_attrs = decode_string_list d in
    let nattrs = Codec.Dec.u16 d in
    let rel_attrs = List.init nattrs (fun _ -> decode_attr d) in
    Hashtbl.replace t.rels rel_name
      {
        rel_name;
        rel_supers;
        origin;
        destination;
        kind;
        card_out;
        card_in;
        exclusive;
        sharable;
        lifetime_dep;
        constant;
        inherited_attrs;
        rel_attrs;
      }
  done
