(** Values and types of the Prometheus object model.

    The model follows ODMG (thesis ch. 4.2): atomic literals, dates,
    object references (by oid), and the three ODMG collection
    constructors (set, bag, list).  Sets are kept sorted and
    duplicate-free under {!compare}. *)

type oid = int

type ty =
  | TInt
  | TFloat
  | TString
  | TBool
  | TDate
  | TRef of string (* target class name *)
  | TList of ty
  | TSet of ty
  | TBag of ty
  | TAny

let rec pp_ty ppf = function
  | TInt -> Format.pp_print_string ppf "int"
  | TFloat -> Format.pp_print_string ppf "float"
  | TString -> Format.pp_print_string ppf "string"
  | TBool -> Format.pp_print_string ppf "bool"
  | TDate -> Format.pp_print_string ppf "date"
  | TRef c -> Format.fprintf ppf "ref<%s>" c
  | TList t -> Format.fprintf ppf "list<%a>" pp_ty t
  | TSet t -> Format.fprintf ppf "set<%a>" pp_ty t
  | TBag t -> Format.fprintf ppf "bag<%a>" pp_ty t
  | TAny -> Format.pp_print_string ppf "any"

type date = { year : int; month : int; day : int }

let date ?(month = 1) ?(day = 1) year = { year; month; day }

let compare_date a b =
  match compare a.year b.year with
  | 0 -> ( match compare a.month b.month with 0 -> compare a.day b.day | c -> c)
  | c -> c

type t =
  | VNull
  | VInt of int
  | VFloat of float
  | VString of string
  | VBool of bool
  | VDate of date
  | VRef of oid
  | VList of t list
  | VSet of t list (* sorted, duplicate-free *)
  | VBag of t list (* sorted *)

let rec compare_value (a : t) (b : t) : int =
  match (a, b) with
  | VNull, VNull -> 0
  | VNull, _ -> -1
  | _, VNull -> 1
  | VInt x, VInt y -> compare x y
  | VInt x, VFloat y -> compare (float_of_int x) y
  | VFloat x, VInt y -> compare x (float_of_int y)
  | VFloat x, VFloat y -> compare x y
  | VString x, VString y -> compare x y
  | VBool x, VBool y -> compare x y
  | VDate x, VDate y -> compare_date x y
  | VRef x, VRef y -> compare x y
  | VList x, VList y | VSet x, VSet y | VBag x, VBag y -> compare_list x y
  | _ ->
      (* heterogeneous: order by constructor tag *)
      compare (tag a) (tag b)

and compare_list x y =
  match (x, y) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | a :: x, b :: y -> ( match compare_value a b with 0 -> compare_list x y | c -> c)

and tag = function
  | VNull -> 0
  | VInt _ -> 1
  | VFloat _ -> 2
  | VString _ -> 3
  | VBool _ -> 4
  | VDate _ -> 5
  | VRef _ -> 6
  | VList _ -> 7
  | VSet _ -> 8
  | VBag _ -> 9

let equal_value a b = compare_value a b = 0

(* Smart constructors for collections *)
let vset items = VSet (List.sort_uniq compare_value items)
let vbag items = VBag (List.sort compare_value items)
let vlist items = VList items

let rec pp ppf = function
  | VNull -> Format.pp_print_string ppf "null"
  | VInt i -> Format.pp_print_int ppf i
  | VFloat f -> Format.pp_print_float ppf f
  | VString s -> Format.fprintf ppf "%S" s
  | VBool b -> Format.pp_print_bool ppf b
  | VDate d -> Format.fprintf ppf "%04d-%02d-%02d" d.year d.month d.day
  | VRef o -> Format.fprintf ppf "#%d" o
  | VList l -> Format.fprintf ppf "[%a]" pp_items l
  | VSet l -> Format.fprintf ppf "{%a}" pp_items l
  | VBag l -> Format.fprintf ppf "bag{%a}" pp_items l

and pp_items ppf l =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp ppf l

let to_string v = Format.asprintf "%a" pp v

(* --- truthiness and coercions used by POOL and rules ------------------- *)

let is_null = function VNull -> true | _ -> false

let as_bool = function
  | VBool b -> b
  | VNull -> false
  | v -> invalid_arg (Format.asprintf "value %a is not a boolean" pp v)

let as_int = function
  | VInt i -> i
  | v -> invalid_arg (Format.asprintf "value %a is not an int" pp v)

let as_float = function
  | VFloat f -> f
  | VInt i -> float_of_int i
  | v -> invalid_arg (Format.asprintf "value %a is not a float" pp v)

let as_string = function
  | VString s -> s
  | v -> invalid_arg (Format.asprintf "value %a is not a string" pp v)

let as_ref = function
  | VRef o -> o
  | v -> invalid_arg (Format.asprintf "value %a is not a reference" pp v)

let as_elements = function
  | VList l | VSet l | VBag l -> l
  | VNull -> []
  | v -> invalid_arg (Format.asprintf "value %a is not a collection" pp v)

(* --- dynamic type checking -------------------------------------------- *)

(** [conforms ~is_subclass v ty] — dynamic typing: does value [v] fit
    type [ty]?  [VNull] conforms to every type (attributes are
    nullable, as in ODMG where relationships model optionality). *)
let rec conforms ~(is_subclass : sub:string -> super:string -> bool)
    ~(class_of : oid -> string option) (v : t) (ty : ty) : bool =
  match (v, ty) with
  | VNull, _ -> true
  | _, TAny -> true
  | VInt _, TInt -> true
  | VInt _, TFloat -> true (* int widens to float *)
  | VFloat _, TFloat -> true
  | VString _, TString -> true
  | VBool _, TBool -> true
  | VDate _, TDate -> true
  | VRef o, TRef cls -> (
      match class_of o with
      | None -> false
      | Some c -> c = cls || is_subclass ~sub:c ~super:cls)
  | VList l, TList t | VSet l, TSet t | VBag l, TBag t ->
      List.for_all (fun v -> conforms ~is_subclass ~class_of v t) l
  | _ -> false

(* --- serialisation ------------------------------------------------------ *)

open Pstore

let rec encode (e : Codec.Enc.t) (v : t) : unit =
  match v with
  | VNull -> Codec.Enc.u8 e 0
  | VInt i ->
      Codec.Enc.u8 e 1;
      Codec.Enc.int e i
  | VFloat f ->
      Codec.Enc.u8 e 2;
      Codec.Enc.float e f
  | VString s ->
      Codec.Enc.u8 e 3;
      Codec.Enc.string e s
  | VBool b ->
      Codec.Enc.u8 e 4;
      Codec.Enc.bool e b
  | VDate d ->
      Codec.Enc.u8 e 5;
      Codec.Enc.u16 e d.year;
      Codec.Enc.u8 e d.month;
      Codec.Enc.u8 e d.day
  | VRef o ->
      Codec.Enc.u8 e 6;
      Codec.Enc.int e o
  | VList l -> encode_coll e 7 l
  | VSet l -> encode_coll e 8 l
  | VBag l -> encode_coll e 9 l

and encode_coll e tag l =
  Codec.Enc.u8 e tag;
  Codec.Enc.u32 e (List.length l);
  List.iter (encode e) l

let rec decode (d : Codec.Dec.t) : t =
  match Codec.Dec.u8 d with
  | 0 -> VNull
  | 1 -> VInt (Codec.Dec.int d)
  | 2 -> VFloat (Codec.Dec.float d)
  | 3 -> VString (Codec.Dec.string d)
  | 4 -> VBool (Codec.Dec.bool d)
  | 5 ->
      let year = Codec.Dec.u16 d in
      let month = Codec.Dec.u8 d in
      let day = Codec.Dec.u8 d in
      VDate { year; month; day }
  | 6 -> VRef (Codec.Dec.int d)
  | 7 -> VList (decode_coll d)
  | 8 -> VSet (decode_coll d)
  | 9 -> VBag (decode_coll d)
  | n -> Codec.corrupt "unknown value tag %d" n

and decode_coll d =
  let n = Codec.Dec.u32 d in
  List.init n (fun _ -> decode d)

(* --- type serialisation -------------------------------------------------- *)

let rec encode_ty e = function
  | TInt -> Codec.Enc.u8 e 0
  | TFloat -> Codec.Enc.u8 e 1
  | TString -> Codec.Enc.u8 e 2
  | TBool -> Codec.Enc.u8 e 3
  | TDate -> Codec.Enc.u8 e 4
  | TRef c ->
      Codec.Enc.u8 e 5;
      Codec.Enc.string e c
  | TList t ->
      Codec.Enc.u8 e 6;
      encode_ty e t
  | TSet t ->
      Codec.Enc.u8 e 7;
      encode_ty e t
  | TBag t ->
      Codec.Enc.u8 e 8;
      encode_ty e t
  | TAny -> Codec.Enc.u8 e 9

let rec decode_ty d =
  match Codec.Dec.u8 d with
  | 0 -> TInt
  | 1 -> TFloat
  | 2 -> TString
  | 3 -> TBool
  | 4 -> TDate
  | 5 -> TRef (Codec.Dec.string d)
  | 6 -> TList (decode_ty d)
  | 7 -> TSet (decode_ty d)
  | 8 -> TBag (decode_ty d)
  | 9 -> TAny
  | n -> Codec.corrupt "unknown type tag %d" n
