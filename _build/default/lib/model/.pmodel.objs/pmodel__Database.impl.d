lib/model/database.ml: Bus Event Format Hashtbl Int List Meta Obj Option Pevent Pstore Set Store Value
