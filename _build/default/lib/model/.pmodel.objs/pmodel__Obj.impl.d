lib/model/obj.ml: Codec Format List Map Pstore String Value
