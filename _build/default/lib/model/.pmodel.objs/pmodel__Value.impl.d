lib/model/value.ml: Codec Format List Pstore
