lib/model/meta.ml: Codec Format Hashtbl List Pstore Value
