lib/pcl/pcl.ml: Array Ast Database Eval Format Lexer Obj Option Parser Pevent Pmodel Pool_lang Prules String Value
