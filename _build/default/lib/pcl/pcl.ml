(** PCL — the Prometheus Constraint Language (thesis 5.2.3).

    A small OCL-inspired surface language for declaring constraints,
    translated into Prometheus ECA rules (thesis fig. 25).  Conditions
    are POOL boolean expressions over [self]:

    {v
      context Family inv family_suffix:
        endswith(self.name, 'aceae')

      context PlacedIn linkinv placement_ranks when true:
        self.origin.rank != self.destination.rank
    v}

    Grammar:
    {v
      pcl     := 'context' IDENT kind [ 'warn' ] IDENT [ 'when' expr ] ':' expr
      kind    := 'inv' | 'linkinv' | 'pre' | 'post'
    v}
    - [inv]     — class invariant, checked immediately on create/update;
    - [linkinv] — relationship rule, checked on link/retarget;
    - [pre]     — immediate rule (vetoes the operation via tx abort);
    - [post]    — deferred rule, checked at commit;
    - [warn]    — downgrade violation from abort to warning. *)

open Pool_lang
open Pmodel

exception Pcl_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Pcl_error s)) fmt

type kind = Inv | Linkinv | Pre | Post

type t = {
  pcl_name : string;
  target : string; (* class or relationship class *)
  kind : kind;
  warn : bool;
  applicability : Ast.expr option;
  condition : Ast.expr;
  source : string;
}

(* --- parsing ----------------------------------------------------------- *)

(* The ':' separator is not a POOL token, so split the declaration
   header from the condition textually at the first ':' that is outside
   quotes. *)
let split_on_colon (src : string) : string * string =
  let n = String.length src in
  let rec go i in_quote quote_char =
    if i >= n then fail "PCL: missing ':' separator"
    else
      match src.[i] with
      | ('\'' | '"') as c ->
          if in_quote && c = quote_char then go (i + 1) false ' '
          else if in_quote then go (i + 1) in_quote quote_char
          else go (i + 1) true c
      | ':' when not in_quote -> (String.sub src 0 i, String.sub src (i + 1) (n - i - 1))
      | _ -> go (i + 1) in_quote quote_char
  in
  go 0 false ' '

let parse_rule (src : string) : t =
  let header, body = split_on_colon src in
  let toks = Array.of_list (Lexer.tokenize header) in
  let st = { Parser.toks; pos = 0 } in
  let expect_kw kw =
    match Parser.peek st with
    | Lexer.KW k when k = kw -> Parser.advance st
    | t -> fail "PCL: expected '%s', found %a" kw Lexer.pp_token t
  in
  let ident what =
    match Parser.peek st with
    | Lexer.IDENT s ->
        Parser.advance st;
        s
    | t -> fail "PCL: expected %s, found %a" what Lexer.pp_token t
  in
  expect_kw "context";
  let target = ident "class name" in
  let kind =
    match ident "rule kind (inv/linkinv/pre/post)" with
    | "inv" -> Inv
    | "linkinv" -> Linkinv
    | "pre" -> Pre
    | "post" -> Post
    | k -> fail "PCL: unknown rule kind %s" k
  in
  let warn =
    match Parser.peek st with
    | Lexer.IDENT "warn" ->
        Parser.advance st;
        true
    | _ -> false
  in
  let pcl_name = ident "rule name" in
  let applicability =
    match Parser.peek st with
    | Lexer.IDENT "when" ->
        Parser.advance st;
        Some (Parser.parse_expr st)
    | _ -> None
  in
  (match Parser.peek st with
  | Lexer.EOF -> ()
  | t -> fail "PCL: trailing input in header: %a" Lexer.pp_token t);
  let condition = Parser.parse body in
  { pcl_name; target; kind; warn; applicability; condition; source = src }

(* --- translation to Prometheus rules (thesis fig. 25) ------------------ *)

let eval_with_self db expr oid =
  let st = Eval.make_state db in
  match Eval.eval st [ ("self", Value.VRef oid) ] expr with
  | Value.VBool b -> b
  | Value.VNull -> false
  | v -> fail "PCL condition must be boolean, got %a" Value.pp v

let oid_of_event (ev : Pevent.Event.primitive) =
  match ev with
  | Pevent.Event.Obj_created { oid; _ }
  | Pevent.Event.Obj_updated { oid; _ }
  | Pevent.Event.Obj_deleted { oid; _ }
  | Pevent.Event.Rel_created { oid; _ }
  | Pevent.Event.Rel_updated { oid; _ }
  | Pevent.Event.Rel_deleted { oid; _ } ->
      Some oid
  | _ -> None

(** Translate a parsed PCL declaration into a Prometheus rule. *)
let translate (t : t) : Prules.Rule.t =
  let on_violation = if t.warn then Prules.Rule.Warn else Prules.Rule.Abort in
  let applicability =
    Option.map
      (fun expr db ev ->
        match oid_of_event ev with
        | Some oid when Database.get db oid <> None -> eval_with_self db expr oid
        | _ -> false)
      t.applicability
  in
  let cond db (o : Obj.t) = eval_with_self db t.condition o.Obj.oid in
  match t.kind with
  | Inv ->
      let r =
        Prules.Rule.invariant ~on_violation ~message:t.source t.pcl_name ~class_name:t.target cond
      in
      { r with Prules.Rule.applicability }
  | Linkinv ->
      let r =
        Prules.Rule.relationship_rule ~on_violation ~message:t.source t.pcl_name
          ~rel_name:t.target cond
      in
      { r with Prules.Rule.applicability }
  | Pre ->
      let r =
        Prules.Rule.invariant ~timing:Prules.Rule.Immediate ~on_violation ~message:t.source
          t.pcl_name ~class_name:t.target cond
      in
      { r with Prules.Rule.applicability }
  | Post ->
      let r =
        Prules.Rule.invariant ~timing:Prules.Rule.Deferred ~on_violation ~message:t.source
          t.pcl_name ~class_name:t.target cond
      in
      { r with Prules.Rule.applicability }

(** Parse a PCL declaration and install it in a rule engine. *)
let install engine (src : string) : Prules.Rule.t =
  let rule = translate (parse_rule src) in
  Prules.Engine.add_rule engine rule;
  rule
