(** Rule definitions: Event–Condition(applicability)–Condition/Action.

    Follows thesis ch. 5.2: a Prometheus rule has an activation event,
    an optional *condition of applicability* (if it does not hold, the
    rule simply does not apply — distinct from a violation), the
    constraint proper, a scheduling mode (immediate or deferred to
    commit), and a violation action.  The thesis's taxonomy of rules
    (invariants, pre-/post-conditions, relationship rules) is provided
    as constructors. *)

open Pevent
open Pmodel

type timing = Immediate | Deferred

(** What happens when the condition evaluates to false. *)
type violation_action =
  | Abort (* raise {!Violation}; the enclosing transaction aborts *)
  | Warn (* record a warning and continue *)
  | Repair of (Database.t -> Event.primitive -> unit) (* corrective action *)
  | Interactive of (string -> bool)
    (* ask the user (callback receives the message); [false] aborts.
       Supports the thesis's interactive rules for taxonomists. *)

type t = {
  name : string;
  event : Event.spec;
  applicability : (Database.t -> Event.primitive -> bool) option;
  condition : Database.t -> Event.primitive -> bool;
  timing : timing;
  on_violation : violation_action;
  priority : int; (* lower runs first *)
  message : string;
}

exception Violation of { rule : string; message : string }

let violation ~rule ~message = Violation { rule; message }

let () =
  Printexc.register_printer (function
    | Violation { rule; message } -> Some (Printf.sprintf "Rule violation [%s]: %s" rule message)
    | _ -> None)

let make ?(applicability = None) ?(timing = Immediate) ?(on_violation = Abort) ?(priority = 100)
    ?message name event condition =
  {
    name;
    event;
    applicability;
    condition;
    timing;
    on_violation;
    priority;
    message = Option.value message ~default:name;
  }

(* --- rule-kind constructors (thesis 5.2.1.4) --------------------------- *)

(** Invariant over a class: checked whenever an instance of
    [class_name] is created or updated.  The condition receives the
    object. *)
let invariant ?timing ?on_violation ?priority ?message name ~class_name
    (cond : Database.t -> Obj.t -> bool) =
  make ?timing ?on_violation ?priority ?message name
    (Event.Any_of [ Event.On_create (Some class_name); Event.On_update (Some class_name, None) ])
    (fun db ev ->
      match ev with
      | Event.Obj_created { oid; _ } | Event.Obj_updated { oid; _ } -> (
          (* the object may have been deleted again before a deferred check *)
          match Database.get db oid with Some o -> cond db o | None -> true)
      | _ -> true)

(** Pre-condition on an operation.  The object layer emits events after
    the mutation; an immediate Abort rule therefore realises the
    pre-condition by vetoing the enclosing transaction, which restores
    the pre-state (thesis 5.2.2.2: automatic transaction abortion). *)
let precondition ?priority ?message name event cond =
  make ~timing:Immediate ~on_violation:Abort ?priority ?message name event cond

(** Post-condition: checked at commit over the final state. *)
let postcondition ?on_violation ?priority ?message name event cond =
  make ~timing:Deferred ?on_violation ?priority ?message name event cond

(** Relationship rule (thesis 5.2.1.4.4 and figs. 38–40): fires on
    creation or re-targeting of instances of a relationship class; the
    condition receives the relationship instance. *)
let relationship_rule ?timing ?on_violation ?priority ?message name ~rel_name
    (cond : Database.t -> Obj.t -> bool) =
  make ?timing ?on_violation ?priority ?message name
    (Event.Any_of
       [ Event.On_rel_create (Some rel_name); Event.On_rel_update (Some rel_name, None) ])
    (fun db ev ->
      match ev with
      | Event.Rel_created { oid; _ } | Event.Rel_updated { oid; _ } -> (
          match Database.get db oid with Some r -> cond db r | None -> true)
      | _ -> true)
