lib/rules/rule.ml: Database Event Obj Option Pevent Pmodel Printexc Printf
