lib/rules/engine.ml: Bus Database Event Format Fun List Logs Pevent Pmodel Queue Rule String
