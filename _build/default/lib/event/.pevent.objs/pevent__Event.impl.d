lib/event/event.ml: Format List
