lib/event/bus.ml: Event Fun List
