(** OO7 benchmark operations, implemented twice:

    - {!Prom}: over Prometheus first-class relationships (the system
      under evaluation);
    - {!Raw}: over the raw store with embedded references (the
      underlying-storage baseline).

    The operation set mirrors the thesis's three groups (7.2.1.2):
    raw performance (traversals T1–T6), queries (Q1–Q8 subset) and
    structural modifications (S1 insert, S2 delete).  The exact
    workload definitions are recorded in EXPERIMENTS.md. *)

open Pmodel
module S = Oo7_schema

let vint i = Value.VInt i

(* ==================================================================== *)
(* Prometheus backend                                                    *)
(* ==================================================================== *)

module Prom = struct
  type ctx = { db : Database.t; h : S.handles }

  let components db ba =
    List.map Obj.destination (Database.outgoing db ~rel_name:S.uses_private ba)
    @ List.map Obj.destination (Database.outgoing db ~rel_name:S.uses_shared ba)

  let rec assemblies db a acc =
    match Database.class_of db a with
    | Some c when c = S.complex_assembly ->
        List.fold_left
          (fun acc r -> assemblies db (Obj.destination r) acc)
          acc
          (Database.outgoing db ~rel_name:S.sub_assembly a)
    | Some c when c = S.base_assembly -> a :: acc
    | _ -> acc

  let base_assemblies { db; h } =
    match Database.outgoing db ~rel_name:S.design_root h.S.module_oid with
    | r :: _ -> assemblies db (Obj.destination r) []
    | [] -> []

  let dfs_composite db comp (f : int -> unit) : int =
    match Database.outgoing db ~rel_name:S.root_part comp with
    | [] -> 0
    | r :: _ ->
        let root = Obj.destination r in
        let visited = Hashtbl.create 64 in
        let count = ref 0 in
        let rec go a =
          if not (Hashtbl.mem visited a) then begin
            Hashtbl.replace visited a ();
            incr count;
            f a;
            List.iter
              (fun (c : Obj.t) -> go (Obj.destination c))
              (Database.outgoing db ~rel_name:S.connects a)
          end
        in
        go root;
        !count

  (** T1: full traversal — assemblies to composite parts to the atomic
      part graph; returns the number of atomic-part visits. *)
  let t1 ({ db; _ } as c) : int =
    List.fold_left
      (fun acc ba ->
        List.fold_left (fun acc comp -> acc + dfs_composite db comp (fun _ -> ())) acc
          (components db ba))
      0 (base_assemblies c)

  (** T2: full traversal with an update (swap x and y) on every atomic
      part visited. *)
  let t2 ({ db; _ } as c) : int =
    List.fold_left
      (fun acc ba ->
        List.fold_left
          (fun acc comp ->
            acc
            + dfs_composite db comp (fun a ->
                  let x = Database.get_attr db a "x" and y = Database.get_attr db a "y" in
                  Database.update db a "x" y;
                  Database.update db a "y" x))
          acc (components db ba))
      0 (base_assemblies c)

  (** T3: traversal updating the (possibly indexed) buildDate. *)
  let t3 ({ db; _ } as c) : int =
    List.fold_left
      (fun acc ba ->
        List.fold_left
          (fun acc comp ->
            acc
            + dfs_composite db comp (fun a ->
                  match Database.get_attr db a "buildDate" with
                  | Value.VInt d -> Database.update db a "buildDate" (vint (d + 1))
                  | _ -> ()))
          acc (components db ba))
      0 (base_assemblies c)

  (** T5: the figure-44 traversal — like T1 but touching composites
      once each (visits every composite's atomic graph exactly once,
      independent of assembly sharing), so its cost is proportional to
      database size. *)
  let t5 { db; h } : int =
    Array.fold_left (fun acc comp -> acc + dfs_composite db comp (fun _ -> ())) 0 h.S.composites

  (** T6: traversal touching only composite roots. *)
  let t6 ({ db; _ } as c) : int =
    List.fold_left
      (fun acc ba ->
        List.fold_left
          (fun acc comp ->
            acc + match Database.outgoing db ~rel_name:S.root_part comp with [] -> 0 | _ -> 1)
          acc (components db ba))
      0 (base_assemblies c)

  (** Q1: exact-match lookups of [n] atomic parts by id (uses the
      secondary index when one has been created). *)
  let q1 { db; h } ~n : int =
    let total = Array.length h.S.atomics in
    let found = ref 0 in
    for k = 1 to n do
      let target_id = Database.get_attr db h.S.atomics.(k * total / (n + 1)) "id" in
      match Database.index_lookup db S.atomic_part "id" target_id with
      | Some s -> if not (Database.OidSet.is_empty s) then incr found
      | None ->
          (* extent scan *)
          let ext = Database.extent db S.atomic_part in
          if
            Database.OidSet.exists
              (fun a -> Database.get_attr db a "id" = target_id)
              ext
          then incr found
    done;
    !found

  (** Q2/Q3: range selection on buildDate covering [pct] percent. *)
  let q_range { db; h } ~pct : int =
    ignore h;
    let lo = 0 and hi = 10000 * pct / 100 in
    let n = ref 0 in
    Database.OidSet.iter
      (fun a ->
        match Database.get_attr db a "buildDate" with
        | Value.VInt d when d >= lo && d < hi -> incr n
        | _ -> ())
      (Database.extent db S.atomic_part);
    !n

  (** Q4: document title lookup. *)
  let q4 { db; h } : int =
    let title = Database.get_attr db h.S.documents.(Array.length h.S.documents / 2) "title" in
    let n = ref 0 in
    Database.OidSet.iter
      (fun d -> if Database.get_attr db d "title" = title then incr n)
      (Database.extent db S.document);
    !n

  (** Q7: full extent scan of atomic parts (reads an attribute of each,
      like a projection would). *)
  let q7 { db; _ } : int =
    let n = ref 0 in
    Database.OidSet.iter
      (fun a -> match Database.get_attr db a "id" with Value.VInt _ -> incr n | _ -> ())
      (Database.extent db S.atomic_part);
    !n

  (** Q8: navigation join — atomic parts whose composite's document is
      longer than [len]. *)
  let q8 { db; _ } ~len : int =
    let n = ref 0 in
    Database.OidSet.iter
      (fun comp ->
        match Database.outgoing db ~rel_name:S.has_doc comp with
        | r :: _ ->
            let doc = Obj.destination r in
            (match Database.get_attr db doc "text" with
            | Value.VString t when String.length t > len ->
                n := !n + List.length (Database.outgoing db ~rel_name:S.has_part comp)
            | _ -> ())
        | [] -> ())
      (Database.extent db S.composite_part);
    !n

  (** A POOL version of Q7, exercising the query layer end to end. *)
  let q7_pool { db; _ } : int =
    match Pool_lang.Pool.query db "count(select a from AtomicPart a)" with
    | Value.VInt n -> n
    | _ -> 0

  (** S1: structural insert — create [k] composite parts (document +
      atomic graph) and attach each to a random base assembly.
      Returns the new composite oids (for S2). *)
  let s1 ({ db; h } as c) ~k ~parts_per_comp : int list =
    let rng = Random.State.make [| 99 |] in
    ignore h;
    let bas = Array.of_list (base_assemblies c) in
    List.init k (fun _ ->
        let comp = Database.create db S.composite_part [ ("id", vint 0); ("buildDate", vint 1) ] in
        let doc = Database.create db S.document [ ("title", Value.VString "new"); ("text", Value.VString "t") ] in
        ignore (Database.link db S.has_doc ~origin:comp ~destination:doc);
        let parts =
          Array.init parts_per_comp (fun i ->
              let a =
                Database.create db S.atomic_part
                  [ ("id", vint 0); ("x", vint i); ("y", vint i); ("buildDate", vint 1) ]
              in
              ignore (Database.link db S.has_part ~origin:comp ~destination:a);
              a)
        in
        ignore (Database.link db S.root_part ~origin:comp ~destination:parts.(0));
        Array.iteri
          (fun i a ->
            ignore
              (Database.link db S.connects ~origin:a
                 ~destination:parts.((i + 1) mod parts_per_comp)))
          parts;
        let ba = bas.(Random.State.int rng (Array.length bas)) in
        ignore (Database.link db S.uses_private ~origin:ba ~destination:comp);
        comp)

  (** S2: structural delete — remove composites; lifetime dependency
      cascades to their parts and documents automatically. *)
  let s2 { db; _ } comps : unit = List.iter (fun c -> Database.delete db c) comps
end

(* ==================================================================== *)
(* Raw-store backend                                                    *)
(* ==================================================================== *)

module Raw = struct
  type ctx = { t : Oo7_raw.t; h : S.handles }

  let rec assemblies t a acc =
    let o = Oo7_raw.get t a in
    if o.Obj.class_name = S.complex_assembly then
      List.fold_left (fun acc c -> assemblies t c acc) acc (Oo7_raw.refs t a "sub")
    else a :: acc

  let base_assemblies { t; h } =
    match Oo7_raw.refs t h.S.module_oid "designRoot" with
    | r :: _ -> assemblies t r []
    | [] -> []

  let dfs_composite t comp (f : int -> unit) : int =
    match Oo7_raw.refs t comp "rootPart" with
    | [] -> 0
    | root :: _ ->
        let visited = Hashtbl.create 64 in
        let count = ref 0 in
        let rec go a =
          if not (Hashtbl.mem visited a) then begin
            Hashtbl.replace visited a ();
            incr count;
            f a;
            List.iter go (Oo7_raw.refs t a "conns")
          end
        in
        go root;
        !count

  let t1 ({ t; _ } as c) : int =
    List.fold_left
      (fun acc ba ->
        List.fold_left
          (fun acc comp -> acc + dfs_composite t comp (fun _ -> ()))
          acc (Oo7_raw.refs t ba "components"))
      0 (base_assemblies c)

  let t2 ({ t; _ } as c) : int =
    List.fold_left
      (fun acc ba ->
        List.fold_left
          (fun acc comp ->
            acc
            + dfs_composite t comp (fun a ->
                  let x = Oo7_raw.get_attr t a "x" and y = Oo7_raw.get_attr t a "y" in
                  Oo7_raw.set t a "x" y;
                  Oo7_raw.set t a "y" x))
          acc (Oo7_raw.refs t ba "components"))
      0 (base_assemblies c)

  let t3 ({ t; _ } as c) : int =
    List.fold_left
      (fun acc ba ->
        List.fold_left
          (fun acc comp ->
            acc
            + dfs_composite t comp (fun a ->
                  match Oo7_raw.get_attr t a "buildDate" with
                  | Value.VInt d -> Oo7_raw.set t a "buildDate" (vint (d + 1))
                  | _ -> ()))
          acc (Oo7_raw.refs t ba "components"))
      0 (base_assemblies c)

  let t5 { t; h } : int =
    Array.fold_left (fun acc comp -> acc + dfs_composite t comp (fun _ -> ())) 0 h.S.composites

  let t6 ({ t; _ } as c) : int =
    List.fold_left
      (fun acc ba ->
        List.fold_left
          (fun acc comp -> acc + match Oo7_raw.refs t comp "rootPart" with [] -> 0 | _ -> 1)
          acc (Oo7_raw.refs t ba "components"))
      0 (base_assemblies c)

  let q1 { t; h } ~n : int =
    let total = Array.length h.S.atomics in
    let found = ref 0 in
    for k = 1 to n do
      let target_id = Oo7_raw.get_attr t h.S.atomics.(k * total / (n + 1)) "id" in
      if Array.exists (fun a -> Oo7_raw.get_attr t a "id" = target_id) h.S.atomics then
        incr found
    done;
    !found

  let q_range { t; h } ~pct : int =
    let lo = 0 and hi = 10000 * pct / 100 in
    Array.fold_left
      (fun acc a ->
        match Oo7_raw.get_attr t a "buildDate" with
        | Value.VInt d when d >= lo && d < hi -> acc + 1
        | _ -> acc)
      0 h.S.atomics

  let q4 { t; h } : int =
    let title = Oo7_raw.get_attr t h.S.documents.(Array.length h.S.documents / 2) "title" in
    Array.fold_left
      (fun acc d -> if Oo7_raw.get_attr t d "title" = title then acc + 1 else acc)
      0 h.S.documents

  let q7 { t; h } : int =
    Array.fold_left
      (fun acc a -> match Oo7_raw.get_attr t a "id" with Value.VInt _ -> acc + 1 | _ -> acc)
      0 h.S.atomics

  let q8 { t; h } ~len : int =
    Array.fold_left
      (fun acc comp ->
        match Oo7_raw.refs t comp "doc" with
        | doc :: _ -> (
            match Oo7_raw.get_attr t doc "text" with
            | Value.VString s when String.length s > len ->
                acc + List.length (Oo7_raw.refs t comp "parts")
            | _ -> acc)
        | [] -> acc)
      0 h.S.composites

  let s1 ({ t; _ } as c) ~k ~parts_per_comp : int list =
    let rng = Random.State.make [| 99 |] in
    let bas = Array.of_list (base_assemblies c) in
    List.init k (fun _ ->
        let doc = Oo7_raw.create t S.document [ ("title", Value.VString "new"); ("text", Value.VString "t") ] in
        let parts =
          Array.init parts_per_comp (fun i ->
              Oo7_raw.create t S.atomic_part
                [ ("id", vint 0); ("x", vint i); ("y", vint i); ("buildDate", vint 1); ("conns", Value.VList []) ])
        in
        Array.iteri
          (fun i a -> Oo7_raw.push_ref t a "conns" parts.((i + 1) mod parts_per_comp))
          parts;
        let comp =
          Oo7_raw.create t S.composite_part
            [
              ("id", vint 0);
              ("buildDate", vint 1);
              ("doc", Value.VRef doc);
              ("rootPart", Value.VRef parts.(0));
              ("parts", Value.VList (Array.to_list (Array.map (fun a -> Value.VRef a) parts)));
            ]
        in
        let ba = bas.(Random.State.int rng (Array.length bas)) in
        Oo7_raw.push_ref t ba "components" comp;
        comp)

  (** Raw delete must do by hand what lifetime dependency automates:
      delete parts and document, then scrub the assembly references. *)
  let s2 ({ t; _ } as c) comps : unit =
    let bas = base_assemblies c in
    List.iter
      (fun comp ->
        List.iter (fun a -> Oo7_raw.delete t a) (Oo7_raw.refs t comp "parts");
        List.iter (fun d -> Oo7_raw.delete t d) (Oo7_raw.refs t comp "doc");
        List.iter
          (fun ba ->
            if List.mem comp (Oo7_raw.refs t ba "components") then
              Oo7_raw.remove_ref t ba "components" comp)
          bas;
        Oo7_raw.delete t comp)
      comps
end
