(** The raw-store baseline for the OO7 benchmark.

    This is the "underlying storage system" Prometheus is compared
    against in the thesis (there: POET; here: our {!Pstore.Store}).
    Objects are plain records with *embedded references* (oid lists in
    attributes) — no relationship instances, no semantic checks, no
    events, no rules, no extents.  A write-through object cache mirrors
    the caching the object layer enjoys, so the comparison isolates the
    cost of the relationship machinery rather than deserialisation. *)

open Pstore
open Pmodel
module S = Oo7_schema

type t = { store : Store.t; cache : (int, Obj.t) Hashtbl.t }

let open_ ?cache_pages path = { store = Store.open_ ?cache_pages path; cache = Hashtbl.create 4096 }
let close t = Store.close t.store

let vint i = Value.VInt i
let vstr s = Value.VString s
let vref o = Value.VRef o

let persist t (o : Obj.t) = Store.put t.store ~oid:o.Obj.oid (Obj.encode o)

let create t class_name attrs : int =
  let oid = Store.fresh_oid t.store in
  let o = Obj.make ~oid ~class_name attrs in
  persist t o;
  Hashtbl.replace t.cache oid o;
  oid

let get t oid : Obj.t =
  match Hashtbl.find_opt t.cache oid with
  | Some o -> o
  | None -> (
      match Store.get t.store ~oid with
      | Some data ->
          let o = Obj.decode ~oid data in
          Hashtbl.replace t.cache oid o;
          o
      | None -> invalid_arg (Printf.sprintf "raw: no object %d" oid))

let set t oid attr v =
  let o = get t oid in
  Obj.set o attr v;
  persist t o

let get_attr t oid attr = Obj.get (get t oid) attr

let refs t oid attr : int list =
  match get_attr t oid attr with
  | Value.VList l | Value.VSet l -> List.filter_map (function Value.VRef o -> Some o | _ -> None) l
  | Value.VRef o -> [ o ]
  | _ -> []

let push_ref t oid attr target =
  let l = match get_attr t oid attr with Value.VList l -> l | _ -> [] in
  set t oid attr (Value.VList (vref target :: l))

let remove_ref t oid attr target =
  let l = match get_attr t oid attr with Value.VList l -> l | _ -> [] in
  set t oid attr (Value.VList (List.filter (fun v -> v <> vref target) l))

let delete t oid =
  Hashtbl.remove t.cache oid;
  ignore (Store.delete t.store ~oid)

(** Generate the same logical OO7 database as {!Oo7_gen}, with embedded
    references. *)
let generate (t : t) (p : S.params) : S.handles =
  let rng = Random.State.make [| p.S.seed |] in
  let next_id = ref 0 in
  let id () =
    incr next_id;
    !next_id
  in
  let atomics = ref [] in
  let documents = ref [] in
  let composites =
    Array.init p.S.num_comp_per_module (fun _ ->
        let doc =
          create t S.document
            [ ("title", vstr "doc"); ("text", vstr (String.make p.S.doc_size 'd')) ]
        in
        documents := doc :: !documents;
        let parts =
          Array.init p.S.num_atomic_per_comp (fun _ ->
              let a =
                create t S.atomic_part
                  [
                    ("id", vint (id ()));
                    ("x", vint (Random.State.int rng 100000));
                    ("y", vint (Random.State.int rng 100000));
                    ("buildDate", vint (Random.State.int rng 10000));
                    ("conns", Value.VList []);
                  ]
              in
              atomics := a :: !atomics;
              a)
        in
        let n = Array.length parts in
        Array.iteri
          (fun i a ->
            for k = 0 to p.S.num_conn_per_atomic - 1 do
              let target = if k = 0 then parts.((i + 1) mod n) else parts.(Random.State.int rng n) in
              push_ref t a "conns" target
            done)
          parts;
        create t S.composite_part
          [
            ("id", vint (id ()));
            ("buildDate", vint (Random.State.int rng 10000));
            ("doc", vref doc);
            ("rootPart", vref parts.(0));
            ("parts", Value.VList (Array.to_list (Array.map vref parts)));
          ])
  in
  let base_assemblies = ref [] in
  let rec build_assembly level =
    if level >= p.S.num_assm_levels then begin
      let comps = ref [] in
      for _ = 1 to p.S.num_comp_per_assm do
        let c = composites.(Random.State.int rng (Array.length composites)) in
        if not (List.mem c !comps) then comps := c :: !comps
      done;
      let ba =
        create t S.base_assembly
          [ ("id", vint (id ())); ("components", Value.VList (List.map vref !comps)) ]
      in
      base_assemblies := ba :: !base_assemblies;
      ba
    end
    else begin
      let children = List.init p.S.num_assm_per_assm (fun _ -> build_assembly (level + 1)) in
      create t S.complex_assembly
        [ ("id", vint (id ())); ("sub", Value.VList (List.map vref children)) ]
    end
  in
  let root = build_assembly 1 in
  let module_oid = create t S.module_cls [ ("id", vint (id ())); ("designRoot", vref root) ] in
  {
    S.module_oid;
    root_assembly = root;
    base_assemblies = Array.of_list (List.rev !base_assemblies);
    composites;
    atomics = Array.of_list (List.rev !atomics);
    documents = Array.of_list (List.rev !documents);
  }
