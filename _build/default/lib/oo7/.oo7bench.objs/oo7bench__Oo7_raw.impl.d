lib/oo7/oo7_raw.ml: Array Hashtbl List Obj Oo7_schema Pmodel Printf Pstore Random Store String Value
