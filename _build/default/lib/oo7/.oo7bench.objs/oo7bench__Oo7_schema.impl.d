lib/oo7/oo7_schema.ml: Database Meta Pmodel Value
