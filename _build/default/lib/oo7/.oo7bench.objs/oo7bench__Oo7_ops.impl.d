lib/oo7/oo7_ops.ml: Array Database Hashtbl List Obj Oo7_raw Oo7_schema Pmodel Pool_lang Random String Value
