lib/oo7/oo7_gen.ml: Array Database List Obj Oo7_schema Pmodel Printf Random String Value
