(** OO7 database generation on Prometheus (first-class relationships). *)

open Pmodel
module S = Oo7_schema

let vint i = Value.VInt i
let vstr s = Value.VString s

(** Build an OO7 database in [db]; the schema must be installed.
    Deterministic for a given [params.seed]. *)
let generate (db : Database.t) (p : S.params) : S.handles =
  let rng = Random.State.make [| p.S.seed |] in
  let next_id = ref 0 in
  let id () =
    incr next_id;
    !next_id
  in
  let atomics = ref [] in
  let documents = ref [] in
  (* composite parts with their atomic-part graphs *)
  let composites =
    Array.init p.S.num_comp_per_module (fun _ ->
        let comp =
          Database.create db S.composite_part
            [ ("id", vint (id ())); ("buildDate", vint (Random.State.int rng 10000)) ]
        in
        let doc =
          Database.create db S.document
            [
              ("title", vstr (Printf.sprintf "Composite Part %d" comp));
              ("text", vstr (String.make p.S.doc_size 'd'));
            ]
        in
        documents := doc :: !documents;
        ignore (Database.link db S.has_doc ~origin:comp ~destination:doc);
        let parts =
          Array.init p.S.num_atomic_per_comp (fun _ ->
              let a =
                Database.create db S.atomic_part
                  [
                    ("id", vint (id ()));
                    ("x", vint (Random.State.int rng 100000));
                    ("y", vint (Random.State.int rng 100000));
                    ("buildDate", vint (Random.State.int rng 10000));
                  ]
              in
              ignore (Database.link db S.has_part ~origin:comp ~destination:a);
              atomics := a :: !atomics;
              a)
        in
        ignore (Database.link db S.root_part ~origin:comp ~destination:parts.(0));
        (* connections: ring plus random chords, as in OO7 *)
        let n = Array.length parts in
        Array.iteri
          (fun i a ->
            for k = 0 to p.S.num_conn_per_atomic - 1 do
              let target = if k = 0 then parts.((i + 1) mod n) else parts.(Random.State.int rng n) in
              ignore
                (Database.link db S.connects ~origin:a ~destination:target
                   ~attrs:
                     [ ("ctype", vstr "wire"); ("length", vint (Random.State.int rng 1000)) ])
            done)
          parts;
        comp)
  in
  (* assembly hierarchy *)
  let base_assemblies = ref [] in
  let rec build_assembly level =
    if level >= p.S.num_assm_levels then begin
      let ba = Database.create db S.base_assembly [ ("id", vint (id ())) ] in
      base_assemblies := ba :: !base_assemblies;
      for _ = 1 to p.S.num_comp_per_assm do
        let comp = composites.(Random.State.int rng (Array.length composites)) in
        let rel = if Random.State.bool rng then S.uses_shared else S.uses_private in
        (* the same composite may already be linked to this assembly:
           skip duplicates to keep generation idempotent *)
        if
          not
            (List.exists
               (fun (r : Obj.t) -> Obj.destination r = comp)
               (Database.outgoing db ~rel_name:rel ba))
        then ignore (Database.link db rel ~origin:ba ~destination:comp)
      done;
      ba
    end
    else begin
      let ca = Database.create db S.complex_assembly [ ("id", vint (id ())) ] in
      for _ = 1 to p.S.num_assm_per_assm do
        let child = build_assembly (level + 1) in
        ignore (Database.link db S.sub_assembly ~origin:ca ~destination:child)
      done;
      ca
    end
  in
  let root = build_assembly 1 in
  let module_oid = Database.create db S.module_cls [ ("id", vint (id ())) ] in
  ignore (Database.link db S.design_root ~origin:module_oid ~destination:root);
  {
    S.module_oid;
    root_assembly = root;
    base_assemblies = Array.of_list (List.rev !base_assemblies);
    composites;
    atomics = Array.of_list (List.rev !atomics);
    documents = Array.of_list (List.rev !documents);
  }
