(** The OO7-inspired benchmark schema (thesis 7.2.1, figs. 41–43).

    The thesis benchmarks Prometheus against its underlying storage
    system with a database "inspired by OO7" [Carey '93]: modules made
    of assembly hierarchies, whose base assemblies use composite
    parts; each composite part owns a document and a graph of atomic
    parts linked by connections.

    Two implementations share this logical schema:
    - {!Oo7_gen} builds it with Prometheus first-class relationships;
    - {!Oo7_raw} builds the same data directly on the raw store with
      embedded references (the "underlying storage system" baseline,
      standing in for POET). *)

open Pmodel

type params = {
  num_atomic_per_comp : int;
  num_conn_per_atomic : int;
  num_comp_per_module : int;
  num_assm_per_assm : int;
  num_assm_levels : int;
  num_comp_per_assm : int;
  doc_size : int;
  seed : int;
}

(** A deliberately small default so unit tests stay fast. *)
let tiny =
  {
    num_atomic_per_comp = 10;
    num_conn_per_atomic = 3;
    num_comp_per_module = 20;
    num_assm_per_assm = 3;
    num_assm_levels = 3;
    num_comp_per_assm = 3;
    doc_size = 200;
    seed = 1;
  }

(** Closer to OO7 "small" in structure (scaled down to container
    budgets). *)
let small =
  {
    num_atomic_per_comp = 20;
    num_conn_per_atomic = 3;
    num_comp_per_module = 50;
    num_assm_per_assm = 3;
    num_assm_levels = 4;
    num_comp_per_assm = 3;
    doc_size = 500;
    seed = 1;
  }

(** Scale a parameter set by growing the number of composite parts —
    the axis used for the figure 44–46 size sweeps. *)
let with_composites p n = { p with num_comp_per_module = n }

type handles = {
  module_oid : int;
  root_assembly : int;
  base_assemblies : int array;
  composites : int array;
  atomics : int array;
  documents : int array;
}

let atomic_part = "AtomicPart"
let composite_part = "CompositePart"
let document = "Document"
let assembly = "Assembly"
let base_assembly = "BaseAssembly"
let complex_assembly = "ComplexAssembly"
let module_cls = "Module"
let connects = "Connects"
let root_part = "RootPart"
let has_part = "HasPart"
let has_doc = "HasDoc"
let uses_private = "UsesPrivate"
let uses_shared = "UsesShared"
let sub_assembly = "SubAssembly"
let design_root = "DesignRoot"

(** Install the Prometheus version of the schema (fig. 48). *)
let install (db : Database.t) : unit =
  let schema = Database.schema db in
  if not (Meta.is_class schema atomic_part) then begin
    let id = Meta.attr "id" Value.TInt in
    let build_date = Meta.attr "buildDate" Value.TInt in
    ignore
      (Database.define_class db atomic_part
         [ id; Meta.attr "x" Value.TInt; Meta.attr "y" Value.TInt; build_date ]);
    ignore (Database.define_class db composite_part [ id; build_date ]);
    ignore
      (Database.define_class db document
         [ Meta.attr "title" Value.TString; Meta.attr "text" Value.TString ]);
    ignore (Database.define_class db assembly ~abstract:true [ id ]);
    ignore (Database.define_class db base_assembly ~supers:[ assembly ] []);
    ignore (Database.define_class db complex_assembly ~supers:[ assembly ] []);
    ignore (Database.define_class db module_cls [ id ]);
    ignore
      (Database.define_rel db connects ~origin:atomic_part ~destination:atomic_part
         ~attrs:[ Meta.attr "ctype" Value.TString; Meta.attr "length" Value.TInt ]);
    ignore
      (Database.define_rel db root_part ~origin:composite_part ~destination:atomic_part
         ~card_out:(Meta.card ~cmax:1 ()));
    ignore
      (Database.define_rel db has_part ~origin:composite_part ~destination:atomic_part
         ~kind:Meta.Aggregation ~lifetime_dep:true ~sharable:false);
    ignore
      (Database.define_rel db has_doc ~origin:composite_part ~destination:document
         ~kind:Meta.Aggregation ~lifetime_dep:true ~sharable:false ~card_out:(Meta.card ~cmax:1 ()));
    ignore (Database.define_rel db uses_private ~origin:base_assembly ~destination:composite_part);
    ignore (Database.define_rel db uses_shared ~origin:base_assembly ~destination:composite_part);
    ignore
      (Database.define_rel db sub_assembly ~origin:complex_assembly ~destination:assembly
         ~kind:Meta.Aggregation ~lifetime_dep:true ~sharable:false);
    ignore
      (Database.define_rel db design_root ~origin:module_cls ~destination:complex_assembly
         ~kind:Meta.Aggregation ~lifetime_dep:true ~sharable:false)
  end
