(** Prometheus: an extended object-oriented database with first-class
    relationships and multiple overlapping classifications.

    This module is the public facade over the layered architecture of
    thesis ch. 6: storage substrate ({!Pstore}), event layer
    ({!Pevent}), object layer ({!Pmodel.Database}), graph/view layer
    ({!Pgraph}), rules layer ({!Prules}), query layer ({!Pool_lang})
    and the PCL constraint language ({!Pcl_lang}).

    {2 Quickstart}

    {[
      let p = Prometheus.open_ "garden.db" in
      ignore (Prometheus.define_class p "Taxon" [ Prometheus.attr "name" TString ]);
      ignore (Prometheus.define_rel p "ChildOf" ~origin:"Taxon" ~destination:"Taxon"
                ~kind:Aggregation ~exclusive:true);
      let ctx = Prometheus.create_context p "Linnaeus 1753" in
      ...
      let v = Prometheus.query p "select t.name from Taxon t" in
      Prometheus.close p
    ]} *)

open Pmodel

type t = { db : Database.t; engine : Prules.Engine.t; views : Pviews.View.t }

(* Re-exports so users need only this module for common work. *)

type value = Value.t =
  | VNull
  | VInt of int
  | VFloat of float
  | VString of string
  | VBool of bool
  | VDate of Value.date
  | VRef of int
  | VList of Value.t list
  | VSet of Value.t list
  | VBag of Value.t list

type ty = Value.ty =
  | TInt
  | TFloat
  | TString
  | TBool
  | TDate
  | TRef of string
  | TList of ty
  | TSet of ty
  | TBag of ty
  | TAny

type rel_kind = Meta.rel_kind = Aggregation | Association

exception Violation = Prules.Rule.Violation

let attr = Meta.attr
let card = Meta.card
let vset = Value.vset
let vstr s = Value.VString s
let vint i = Value.VInt i
let vdate = Value.date

(* --- lifecycle ---------------------------------------------------------- *)

let open_ ?cache_pages ?(check_min_cards = true) path : t =
  let db = Database.open_ ?cache_pages path in
  let engine = Prules.Engine.create ~check_min_cards db in
  let views = Pviews.View.create db in
  { db; engine; views }

let close t = Database.close t.db
let database t = t.db
let engine t = t.engine
let schema t = Database.schema t.db
let bus t = Database.bus t.db
let stats t = Pstore.Store.stats (Database.store t.db)

(* --- schema -------------------------------------------------------------- *)

let define_class t = Database.define_class t.db
let define_rel t = Database.define_rel t.db

(* --- transactions ---------------------------------------------------------- *)

(** Run [f] in a transaction.  Any exception — including a rule
    {!Violation} raised by an immediate or deferred (commit-time) rule —
    aborts the transaction and re-raises. *)
let with_tx t f = Database.with_tx t.db f

let begin_tx t = Database.begin_tx t.db
let commit t = Database.commit t.db
let abort t = Database.abort t.db

(** What-if scenario (thesis 7.1.4): run speculative changes, observe
    the outcome, then roll everything back.  Returns [f]'s result. *)
let whatif t (f : unit -> 'a) : 'a =
  Database.begin_tx t.db;
  match f () with
  | v ->
      Database.abort t.db;
      v
  | exception e ->
      Database.abort t.db;
      raise e

(* --- objects -------------------------------------------------------------- *)

let create t = Database.create t.db
let get t = Database.get t.db
let get_exn t = Database.get_exn t.db
let get_attr t = Database.get_attr t.db
let update t = Database.update t.db
let delete t = Database.delete t.db
let class_of t = Database.class_of t.db
let extent t = Database.extent t.db
let extent_list t = Database.extent_list t.db
let count t = Database.count t.db

(* --- relationships ---------------------------------------------------------- *)

let link t = Database.link t.db
let unlink t = Database.unlink t.db
let retarget t = Database.retarget t.db
let outgoing t = Database.outgoing t.db
let incoming t = Database.incoming t.db
let rels_of t = Database.rels_of t.db
let has_role t = Database.has_role t.db

(* --- contexts (classifications) ---------------------------------------------- *)

let create_context t = Database.create_context t.db
let contexts t = Database.contexts t.db
let find_context t = Database.find_context t.db
let context_rels t = Database.context_rels t.db

(* --- synonyms ------------------------------------------------------------------ *)

let declare_synonym t = Database.declare_synonym t.db
let same_entity t = Database.same_entity t.db
let synonym_set t = Database.synonym_set t.db

(* --- indexes ------------------------------------------------------------------- *)

let create_index t = Database.create_index t.db
let drop_index t = Database.drop_index t.db

(* --- queries (POOL) --------------------------------------------------------------- *)

let query ?env t src = Pool_lang.Pool.query ?env t.db src
let rows ?env t src = Pool_lang.Pool.rows ?env t.db src
let scalar ?env t src = Pool_lang.Pool.scalar ?env t.db src
let check ?env t src = Pool_lang.Pool.check ?env t.db src

(* --- rules ------------------------------------------------------------------------ *)

let add_rule t rule = Prules.Engine.add_rule t.engine rule
let add_rules t rules = Prules.Engine.add_rules t.engine rules
let remove_rule t name = Prules.Engine.remove_rule t.engine name
let rule_warnings t = Prules.Engine.warnings t.engine
let clear_warnings t = Prules.Engine.clear_warnings t.engine

(** Install a PCL constraint, e.g.
    [pcl t "context Family inv suffix: endswith(self.name, 'aceae')"]. *)
let pcl t src = Pcl_lang.Pcl.install t.engine src

(* --- views (thesis 6.1.3) ---------------------------------------------------------- *)

let define_view t ~name ~query ?materialised () =
  Pviews.View.define t.views ~name ~query ?materialised ()

let drop_view t name = Pviews.View.drop t.views name
let view t ?env name = Pviews.View.query ?env t.views name
let view_rows t ?env name = Pviews.View.rows ?env t.views name
let views t = Pviews.View.list t.views

(* --- static query checking (thesis 5.1.2.4) ------------------------------------------ *)

let check_query t src : string list =
  List.map
    (fun (e : Pool_lang.Typecheck.error) ->
      Printf.sprintf "%s (in %s)" e.Pool_lang.Typecheck.message e.Pool_lang.Typecheck.expr)
    (Pool_lang.Typecheck.check_string (Database.schema t.db) src)

(* --- graph operations ---------------------------------------------------------------- *)

let descendants t = Pgraph.Traverse.descendants t.db
let ancestors t = Pgraph.Traverse.ancestors t.db
let closure t = Pgraph.Traverse.closure t.db
let subgraph t = Pgraph.Subgraph.extract t.db
let subgraph_of_context t = Pgraph.Subgraph.of_context t.db
let copy_subgraph t = Pgraph.Subgraph.copy_into t.db
