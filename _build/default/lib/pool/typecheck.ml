(** Static checking of POOL queries (thesis 5.1.2.4).

    A best-effort pass over the AST run before evaluation: it resolves
    range variables to classes where possible, and reports

    - unknown classes/extents in [from] clauses and downcasts,
    - navigation to attributes that no class in scope declares,
    - unknown builtin functions and wrong arities,
    - unknown relationship class names in string literals passed to
      relationship builtins.

    POOL is dynamically typed at heart (ODMG collections may mix
    subtypes, and role attributes are not statically declared), so the
    checker flags only errors that are certain, and stays silent on
    anything that could legally succeed at runtime — e.g. attributes
    reachable through role acquisition are accepted. *)

open Pmodel

type error = { message : string; expr : string }

let err expr fmt = Format.kasprintf (fun message -> { message; expr = Ast.to_string expr }) fmt

(** Static approximation of an expression's type. *)
type sty =
  | Known_class of string (* an object of this class *)
  | Coll_of of sty
  | Scalar
  | Unknown

(* name, minimum arity, maximum arity (None = unbounded) *)
let builtins =
  [
    ("list", 0, None); ("set", 0, None); ("bag", 0, None); ("elements", 1, Some 1);
    ("unique", 1, Some 1); ("first", 1, Some 1); ("isempty", 1, Some 1); ("exists", 1, Some 1);
    ("isnull", 1, Some 1); ("count", 1, Some 1); ("sum", 1, Some 1); ("avg", 1, Some 1);
    ("min", 1, Some 1); ("max", 1, Some 1); ("oid", 1, Some 1); ("class_of", 1, Some 1);
    ("attr", 2, Some 2); ("has_role", 2, Some 2); ("out", 2, Some 3); ("into", 2, Some 3);
    ("targets", 2, Some 3); ("sources", 2, Some 3); ("origin", 1, Some 1);
    ("destination", 1, Some 1); ("context_of", 1, Some 1); ("traverse", 4, Some 5);
    ("closure", 2, Some 3); ("descendants", 2, Some 3); ("ancestors", 2, Some 3);
    ("reachable", 3, Some 4); ("path", 3, Some 4); ("graph", 2, Some 3); ("nodes", 1, Some 1);
    ("edges", 1, Some 1); ("synonyms", 1, Some 1); ("same_entity", 2, Some 2);
    ("strlen", 1, Some 1); ("lower", 1, Some 1); ("upper", 1, Some 1);
    ("startswith", 2, Some 2); ("endswith", 2, Some 2); ("contains", 2, Some 2);
    ("date", 3, Some 3); ("year", 1, Some 1); ("month", 1, Some 1); ("day", 1, Some 1);
    ("abs", 1, Some 1);
  ]

let rel_name_position = [ ("out", 1); ("into", 1); ("targets", 1); ("sources", 1); ("traverse", 1); ("closure", 1); ("descendants", 1); ("ancestors", 1); ("reachable", 2); ("path", 2); ("graph", 1) ]

let rec check_expr schema (env : (string * sty) list) (e : Ast.expr) (errors : error list ref) :
    sty =
  match e with
  | Ast.Lit (Value.VRef _) -> Unknown
  | Ast.Lit _ -> Scalar
  | Ast.Var x -> (
      match List.assoc_opt x env with
      | Some t -> t
      | None ->
          if Meta.is_class schema x || Meta.is_rel schema x then Coll_of (Known_class x)
          else begin
            errors := err e "unknown variable or class %s" x :: !errors;
            Unknown
          end)
  | Ast.Path (recv, attr) -> (
      let rt = check_expr schema env recv errors in
      let check_class cls =
        (* endpoints of relationship instances are always navigable *)
        if Meta.is_rel schema cls && List.mem attr [ "origin"; "destination"; "context" ] then
          Unknown
        else
          match Meta.find_attr schema cls attr with
          | Some d -> (
              match d.Meta.attr_ty with
              | Value.TRef c -> Known_class c
              | Value.TList t | Value.TSet t | Value.TBag t -> (
                  match t with Value.TRef c -> Coll_of (Known_class c) | _ -> Coll_of Scalar)
              | _ -> Scalar)
          | None ->
              (* could still be a role attribute inherited from an
                 incoming relationship declaring it; only error when no
                 relationship class inherits an attribute of this name *)
              let some_role =
                List.exists (fun (r : Meta.rel_def) -> List.mem attr r.Meta.inherited_attrs)
                  (Meta.rels schema)
              in
              if not some_role then
                errors := err e "class %s has no attribute %s" cls attr :: !errors;
              Unknown
      in
      match rt with
      | Known_class cls -> check_class cls
      | Coll_of (Known_class cls) -> Coll_of (check_class cls)
      | _ -> Unknown)
  | Ast.Unop (_, a) ->
      ignore (check_expr schema env a errors);
      Scalar
  | Ast.Binop (op, a, b) ->
      let _ = check_expr schema env a errors in
      let tb = check_expr schema env b errors in
      if op = "in" then Scalar
      else if List.mem op [ "union"; "inter"; "except" ] then tb
      else Scalar
  | Ast.Downcast (cls, a) ->
      if not (Meta.is_class schema cls || Meta.is_rel schema cls) then
        errors := err e "unknown class %s in downcast" cls :: !errors;
      let ta = check_expr schema env a errors in
      (match ta with Coll_of _ -> Coll_of (Known_class cls) | _ -> Known_class cls)
  | Ast.Call (f, args) -> (
      (match List.assoc_opt f (List.map (fun (n, lo, hi) -> (n, (lo, hi))) builtins) with
      | None -> errors := err e "unknown function %s" f :: !errors
      | Some (lo, hi) ->
          let n = List.length args in
          if n < lo || (match hi with Some h -> n > h | None -> false) then
            errors :=
              err e "%s expects %d%s arguments, got %d" f lo
                (match hi with Some h when h <> lo -> Printf.sprintf "..%d" h | _ -> "")
                n
              :: !errors);
      (* relationship-name literals *)
      (match List.assoc_opt f rel_name_position with
      | Some pos when pos < List.length args -> (
          match List.nth args pos with
          | Ast.Lit (Value.VString rel) when not (Meta.is_rel schema rel) ->
              errors := err e "unknown relationship class %s" rel :: !errors
          | _ -> ())
      | _ -> ());
      List.iter (fun a -> ignore (check_expr schema env a errors)) args;
      match f with
      | "targets" | "sources" | "nodes" | "closure" | "descendants" | "ancestors" | "traverse" ->
          Coll_of Unknown
      | "out" | "into" -> (
          match args with
          | _ :: Ast.Lit (Value.VString rel) :: _ when Meta.is_rel schema rel ->
              Coll_of (Known_class rel)
          | _ -> Coll_of Unknown)
      | _ -> Unknown)
  | Ast.Select s -> check_select schema env s errors

and check_select schema env (s : Ast.select) errors : sty =
  (* ranges bind left to right *)
  let env =
    List.fold_left
      (fun env (src, var) ->
        let st = check_expr schema env src errors in
        let bound = match st with Coll_of t -> t | t -> t in
        (var, bound) :: env)
      env s.Ast.ranges
  in
  (match s.Ast.where with Some w -> ignore (check_expr schema env w errors) | None -> ());
  List.iter (fun (e, _) -> ignore (check_expr schema env e errors)) s.Ast.order_by;
  (match s.Ast.context with Some c -> ignore (check_expr schema env c errors) | None -> ());
  match s.Ast.projections with
  | None -> Coll_of Unknown
  | Some [ (e, _) ] -> Coll_of (check_expr schema env e errors)
  | Some ps ->
      List.iter (fun (e, _) -> ignore (check_expr schema env e errors)) ps;
      Coll_of Unknown

(** Check a parsed query against [schema]; [env] lists externally bound
    variables.  Returns the list of static errors (empty = clean). *)
let check ?(env = []) (schema : Meta.t) (e : Ast.expr) : error list =
  let errors = ref [] in
  ignore (check_expr schema (List.map (fun v -> (v, Unknown)) env) e errors);
  List.rev !errors

(** Parse then check a query string. *)
let check_string ?env schema (src : string) : error list =
  check ?env schema (Parser.parse src)
